# Convenience wrapper around dune; `make check` is the PR gate CI runs.

.PHONY: all build test check bench bench-json coverage trace profile-domains fabric tune clean

all: build

build:
	dune build

test:
	dune runtest

check: build test

bench:
	dune exec bench/main.exe -- tables

bench-json:
	dune exec bench/main.exe -- --json

# before/after loop-fission fused-kernel coverage of the bundled apps,
# then the regression gate against the committed COVERAGE.json manifest
coverage:
	dune exec bench/main.exe -- coverage

# profile the bundled example on 4 simulated ranks; load trace.json in
# https://ui.perfetto.dev or chrome://tracing
trace:
	dune exec bin/autocfd_cli.exe -- trace examples/heat2d.f --parts 2x2 \
	  --out trace.json --metrics metrics.json

# kernel-level profile of the real shared-memory Domains execution (one
# OCaml 5 domain per rank), with the >= 95% attribution gate armed
profile-domains:
	dune exec bin/autocfd_cli.exe -- profile examples/heat2d.f --parts 2x2 \
	  --engine domains --check

# the distributed-sweep chaos gate: master + 3 socket worker processes,
# one SIGKILLed mid-sweep; tables must stay byte-identical with >= 1
# requeue, and a worker-less master must degrade rather than hang
fabric:
	dune exec bench/main.exe -- fabric --check

# the auto-tuning gate: three byte-identical passes over the tune
# tables (serial/no-cache, parallel cold, parallel warm with 100%
# hits), winner must beat every hand-picked paper config, frontier
# must be Pareto-minimal
tune:
	dune exec bench/main.exe -- tune --check

clean:
	dune clean
