(** The Auto-CFD pre-compiler command line.

    {v
    autocfd analyze file.f --parts 4x1x1     dependency/sync analysis report
    autocfd analyze file.f --report          full markdown report (incl. the
                                             measured per-rank / per-sync tables)
    autocfd parallelize file.f --parts 2x2   emit the SPMD program
    autocfd run file.f --parts 2x2 [--json]  run sequential vs simulated SPMD
    autocfd trace file.f --parts 2x2 \
        --out trace.json                     profile the simulated execution:
                                             Chrome trace_event JSON (load in
                                             Perfetto / chrome://tracing), plus
                                             --metrics m.json for the compact
                                             per-rank / per-sync metrics
    autocfd profile file.f --parts 2x2       kernel-level profile: hot-nest
                                             table (top-N by self time, share
                                             of compute, flop throughput),
                                             per-sync-point latency histograms
                                             and pool utilization; --json /
                                             --prom for machine-readable and
                                             Prometheus output, --check for
                                             the >= 95% attribution gate
    autocfd tables [1-5|all] [--json]        regenerate the paper's tables
    autocfd tune file.f [--grid wide]        auto-search the configuration
                                             space (rank count x partition
                                             shape x sync combining x fission
                                             x engine/fusion): winner plus
                                             Pareto frontier over predicted
                                             time / comm volume / memory
    autocfd demo [aerofoil|sprayer]          dump a bundled case study source

    Every program-running verb accepts --spec FILE (a Runspec JSON
    document) as the single source of configuration; individual flags
    override single fields, and run --json echoes the resolved spec.
    v} *)

open Cmdliner
module D = Autocfd.Driver
module A = Autocfd_analysis
module S = Autocfd_syncopt
module Obs = Autocfd_obs

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_parts s =
  try
    let parts =
      String.split_on_char 'x' (String.lowercase_ascii s)
      |> List.map String.trim |> List.map int_of_string |> Array.of_list
    in
    if Array.length parts = 0 || Array.exists (fun p -> p < 1) parts then
      failwith "bad";
    Ok parts
  with _ ->
    Error (`Msg (Printf.sprintf "bad partition spec %S (expected e.g. 4x1x1)" s))

let parts_conv =
  Arg.conv
    ( parse_parts,
      fun ppf parts ->
        Format.pp_print_string ppf
          (String.concat "x" (Array.to_list (Array.map string_of_int parts)))
    )

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Sequential Fortran CFD source file (with c\\$acfd directives).")

let parts_arg =
  Arg.(value & opt (some parts_conv) None
       & info [ "p"; "parts" ] ~docv:"PARTS"
           ~doc:"Partition shape, e.g. 4x1x1. Default: automatic for --nprocs.")

let nprocs_arg =
  Arg.(value & opt (some int) None
       & info [ "n"; "nprocs" ] ~docv:"N"
           ~doc:"Number of processors for the automatic partition search \
                 (default 4, or whatever --spec says).")

let fission_arg =
  Arg.(value & flag
       & info [ "no-fission" ]
           ~doc:"Disable the loop-fission pass (mixed DO nests are not \
                 distributed into independent sub-nests before analysis \
                 and execution).")

let spec_arg =
  Arg.(value & opt (some file) None
       & info [ "spec" ] ~docv:"FILE"
           ~doc:"Runspec JSON file: the single source of configuration \
                 (engine, partition shape or rank count, sync combining, \
                 fission, fusion, faults...).  Command-line flags override \
                 individual fields.  `run --json` echoes the resolved \
                 spec, so any run's output names the spec that reproduces \
                 it.")

(* one resolved Runspec per invocation: --spec FILE (default
   Runspec.default), then each explicitly given flag overrides its
   field *)
let resolve_spec ?parts ?nprocs ?(no_fission = false) ?engine spec_file =
  let base =
    match spec_file with
    | None -> Autocfd.Runspec.default
    | Some path -> (
        match Autocfd.Runspec.of_json (Obs.Json.of_string (read_file path))
        with
        | spec -> spec
        | exception Obs.Json.Parse_error msg ->
            Printf.eprintf "autocfd: bad runspec %s: %s\n" path msg;
            exit 1)
  in
  let ( |? ) v f = match v with Some x -> f x | None -> Fun.id in
  base
  |> (nprocs |? Autocfd.Runspec.with_nprocs)
  |> (parts |? fun p -> Autocfd.Runspec.with_parts (Some p))
  |> (if no_fission then Autocfd.Runspec.with_fission false else Fun.id)
  |> (engine |? Autocfd.Runspec.with_engine)

let load_and_plan spec file =
  let t = D.load ~spec (read_file file) in
  (t, D.plan ~spec t)

let shape parts =
  String.concat " x " (Array.to_list (Array.map string_of_int parts))

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)

let analyze file spec_file parts nprocs no_fission report =
  let spec = resolve_spec ?parts ?nprocs ~no_fission spec_file in
  if report then
    let _, plan = load_and_plan spec file in
    print_string (Autocfd.Report.markdown plan)
  else
  let t, plan = load_and_plan spec file in
  let gi = t.D.gi in
  Format.printf "flow field: %a@." A.Grid_info.pp gi;
  Format.printf "partition:  %s (%d subtasks)@."
    (shape (Autocfd_partition.Topology.parts plan.D.topo))
    (Autocfd_partition.Topology.nranks plan.D.topo);
  Format.printf "@.field loop heads:@.";
  List.iter2
    (fun (s : A.Field_loop.summary) (_, strat) ->
      let types =
        String.concat " "
          (List.map
             (fun (v, _) ->
               Printf.sprintf "%s:%s" v
                 (match A.Field_loop.ltype s v with
                 | A.Field_loop.A -> "A"
                 | A.Field_loop.R -> "R"
                 | A.Field_loop.C -> "C"
                 | A.Field_loop.O -> "O"))
             s.A.Field_loop.fs_uses)
      in
      let strat_str =
        match strat with
        | A.Mirror.Serial -> "serial (replicated)"
        | A.Mirror.Block -> "block-parallel"
        | A.Mirror.Pipeline dims ->
            Printf.sprintf "mirror-image pipeline on dims {%s}"
              (String.concat ","
                 (List.map (fun (d, _) -> string_of_int d) dims))
      in
      Format.printf "  line %-5d do %-8s -> %-40s [%s]@."
        s.A.Field_loop.fs_loop.A.Loops.lp_line
        s.A.Field_loop.fs_loop.A.Loops.lp_var strat_str types)
    plan.D.summaries plan.D.strategies;
  Format.printf "@.S_LDP: %d dependent pairs (%d self-dependent)@."
    (List.length plan.D.sldp.A.Sldp.pairs)
    (List.length (A.Sldp.self_pairs plan.D.sldp));
  Format.printf
    "synchronization points: %d before optimization, %d after (%.0f%% \
     reduction)@."
    plan.D.opt.S.Optimizer.before plan.D.opt.S.Optimizer.after
    (100. *. S.Optimizer.reduction_pct plan.D.opt);
  Format.printf "@.combined synchronization points:@.";
  List.iteri
    (fun i (g : S.Combine.group) ->
      Format.printf "  #%d: %d regions merged, %d halo transfers@." (i + 1)
        (List.length g.S.Combine.gr_regions)
        (List.length g.S.Combine.gr_transfers))
    plan.D.opt.S.Optimizer.groups

let parallelize file spec_file parts nprocs no_fission mpi output =
  let spec = resolve_spec ?parts ?nprocs ~no_fission spec_file in
  let _, plan = load_and_plan spec file in
  let text = if mpi then D.mpi_source plan else D.spmd_source plan in
  match output with
  | None -> print_string text
  | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s\n" path

let engine_name = function
  | Autocfd_interp.Spmd.Tree -> "tree"
  | Autocfd_interp.Spmd.Compiled -> "compiled"
  | Autocfd_interp.Spmd.Fused -> "fused"
  | Autocfd_interp.Spmd.Domains -> "domains"

(* program state (gathered arrays, scalars, per-rank flops, output)
   bit-identical — the Domains-vs-simulator equivalence contract, which
   deliberately excludes stats (Domains stats are measured wall clock) *)
let same_program_state (a : Autocfd_interp.Spmd.result)
    (b : Autocfd_interp.Spmd.result) =
  let module I = Autocfd_interp in
  List.length a.I.Spmd.gathered = List.length b.I.Spmd.gathered
  && List.for_all2
       (fun (na, aa) (nb, ab) -> na = nb && aa.I.Value.data = ab.I.Value.data)
       a.I.Spmd.gathered b.I.Spmd.gathered
  && a.I.Spmd.scalars = b.I.Spmd.scalars
  && a.I.Spmd.flops_per_rank = b.I.Spmd.flops_per_rank
  && a.I.Spmd.output = b.I.Spmd.output

(* The run verb goes through the sweep scheduler as a single job, so a
   repeated `autocfd run` of an unchanged source is a cache hit: the
   stored result document carries everything both renderings and the
   divergence exit code need. *)
let run_cmd file spec_file parts nprocs no_fission engine json jobs use_cache
    cache_dir =
  let module J = Obs.Json in
  let module Sched = Autocfd_sched in
  let source = read_file file in
  let tracer = if json then Some (Obs.Trace.create ()) else None in
  let run_spec =
    Autocfd.Runspec.with_tracer tracer
      (resolve_spec ?parts ?nprocs ~no_fission ?engine spec_file)
  in
  let engine = run_spec.Autocfd.Runspec.engine in
  let job =
    Sched.Job.make
      ~label:(Printf.sprintf "run %s" (Filename.basename file))
      (* the serialized resolved spec IS the run-describing half of the
         key: one JSON value names everything that shapes the result *)
      ~key:
        (J.Obj
           [
             ("verb", J.Str "run");
             ("spec", Autocfd.Runspec.to_json run_spec);
             ("src", J.Str (Sched.Job.digest source));
           ])
      (fun () ->
        let t = D.load ~spec:run_spec source in
        let plan = D.plan ~spec:run_spec t in
        let seq = D.run_seq t in
        let par = D.run ~spec:run_spec plan in
        (* a Domains run is additionally held to bit-identity against
           the simulated cluster (the CI equivalence gate) *)
        let bit_identical =
          match engine with
          | Autocfd_interp.Spmd.Domains ->
              let reference =
                D.run
                  ~spec:
                    Autocfd.Runspec.(
                      run_spec
                      |> with_engine Autocfd_interp.Spmd.Fused
                      |> with_tracer None)
                  plan
              in
              J.Bool (same_program_state reference par)
          | _ -> J.Null
        in
        let stats = par.Autocfd_interp.Spmd.stats in
        let divergence = D.max_divergence seq par in
        let worst =
          List.fold_left (fun acc (_, d) -> Float.max acc d) 0.0 divergence
        in
        let strs l = J.List (List.map (fun s -> J.Str s) l) in
        J.Obj
          [
            ("schema", J.Str "autocfd-run/2");
            ("spec", Autocfd.Runspec.to_json run_spec);
            ("ranks", J.Int (Autocfd_partition.Topology.nranks plan.D.topo));
            ("engine", J.Str (engine_name engine));
            ("bit_identical", bit_identical);
            ("seq_output", strs seq.D.sq_output);
            ("output", strs par.Autocfd_interp.Spmd.output);
            ("messages", J.Int stats.Autocfd_mpsim.Sim.messages);
            ("bytes", J.Int stats.Autocfd_mpsim.Sim.bytes);
            ("collectives", J.Int stats.Autocfd_mpsim.Sim.collectives);
            ( "divergence",
              J.Obj (List.map (fun (n, d) -> (n, J.Float d)) divergence) );
            ("equivalent", J.Bool (worst < 1e-9));
            ( "metrics",
              match tracer with
              | Some tr -> Obs.Metrics.to_json (Obs.Metrics.of_trace tr)
              | None -> J.Null );
          ])
  in
  let cache =
    if use_cache then
      try Some (Sched.Cache.create ~dir:cache_dir ())
      with Sys_error msg ->
        Printf.eprintf "autocfd: unusable cache directory: %s\n" msg;
        exit 1
    else None
  in
  let results, stats = Sched.Pool.run ~jobs ?cache [ job ] in
  Printf.eprintf "scheduler: %d hit(s), %d miss(es)\n%!"
    stats.Sched.Pool.ps_hits stats.Sched.Pool.ps_misses;
  let doc =
    match results.(0) with
    | Ok doc -> doc
    | Error msg ->
        Printf.eprintf "run failed: %s\n" msg;
        exit 1
  in
  let field name =
    match J.member name doc with
    | Some v -> v
    | None ->
        Printf.eprintf "corrupt run document: missing %S\n" name;
        exit 1
  in
  let str_list name =
    match field name with
    | J.List l ->
        List.filter_map (function J.Str s -> Some s | _ -> None) l
    | _ -> []
  in
  let int_field name = match field name with J.Int i -> i | _ -> 0 in
  let equivalent = field "equivalent" = J.Bool true in
  (* absent on pre-engine cached documents and non-domains runs *)
  let bit_identical =
    match J.member "bit_identical" doc with
    | Some (J.Bool b) -> Some b
    | _ -> None
  in
  let divergence =
    match field "divergence" with
    | J.Obj fields ->
        List.map (fun (n, d) -> (n, J.to_float_exn d)) fields
    | _ -> []
  in
  (if json then
     (* the stored document minus the human-only sequential echo, plus
        this invocation's scheduler statistics (not cached: they describe
        the pool run that produced or fetched the document) *)
     let doc =
       match doc with
       | J.Obj fields ->
           J.Obj
             (List.filter (fun (n, _) -> n <> "seq_output") fields
             @ [
                 ( "sched",
                   Autocfd.Report.sched_summary_json [ ("run", stats) ] );
               ])
       | d -> d
     in
     print_endline (J.pretty doc)
   else begin
     Format.printf "sequential output:@.";
     List.iter (Format.printf "  %s@.") (str_list "seq_output");
     Format.printf "parallel output (%d simulated ranks):@."
       (int_field "ranks");
     List.iter (Format.printf "  %s@.") (str_list "output");
     Format.printf "messages: %d (%d bytes), collectives: %d@."
       (int_field "messages") (int_field "bytes") (int_field "collectives");
     Format.printf "max |sequential - parallel| per status array:@.";
     List.iter
       (fun (name, d) -> Format.printf "  %-10s %.3g@." name d)
       divergence;
     (match bit_identical with
     | Some true ->
         Format.printf "PASS: domains run bit-identical to the simulator@."
     | Some false ->
         Format.printf "FAIL: domains run diverges from the simulator@."
     | None -> ());
     if equivalent then Format.printf "PASS: numerically equivalent@."
     else
       Format.printf "FAIL: parallel run diverges (%.3g)@."
         (List.fold_left (fun acc (_, d) -> Float.max acc d) 0.0 divergence)
   end);
  if (not equivalent) || bit_identical = Some false then exit 1

(* trace and profile charge the reference machine's calibrated costs
   unless the spec already names a machine *)
let with_default_machine spec =
  match spec.Autocfd.Runspec.machine with
  | Some _ -> spec
  | None ->
      Autocfd.Runspec.with_machine
        (Some Autocfd_perfmodel.Model.pentium_cluster) spec

let trace_cmd file spec_file parts nprocs no_fission engine out metrics_out =
  let tracer = Obs.Trace.create () in
  let spec =
    resolve_spec ?parts ?nprocs ~no_fission ?engine spec_file
    |> with_default_machine
    |> Autocfd.Runspec.with_tracer (Some tracer)
  in
  let _, plan = load_and_plan spec file in
  let result = D.run ~spec plan in
  write_file out (Obs.Chrome.to_string tracer);
  let m = Obs.Metrics.of_trace tracer in
  (match metrics_out with
  | Some path -> write_file path (Obs.Json.pretty (Obs.Metrics.to_json m))
  | None -> ());
  let stats = result.Autocfd_interp.Spmd.stats in
  Printf.printf
    "%d ranks, %d trace events; %.3f s simulated (%d messages, %d bytes)\n"
    (Obs.Trace.nranks tracer) (Obs.Trace.length tracer)
    stats.Autocfd_mpsim.Sim.elapsed stats.Autocfd_mpsim.Sim.messages
    stats.Autocfd_mpsim.Sim.bytes;
  Array.iter
    (fun (r : Obs.Metrics.rank_row) ->
      Printf.printf
        "  rank %d: compute %.3f s, comm %.3f s, blocked %.3f s\n"
        r.Obs.Metrics.rr_rank r.Obs.Metrics.rr_compute r.Obs.Metrics.rr_comm
        r.Obs.Metrics.rr_blocked)
    m.Obs.Metrics.ranks

let profile_cmd file spec_file parts nprocs no_fission engine top json prom
    check min_cov =
  let spec =
    resolve_spec ?parts ?nprocs ~no_fission ?engine spec_file
    |> with_default_machine
  in
  let _, plan = load_and_plan spec file in
  let label = Printf.sprintf "profile %s" (Filename.basename file) in
  let p = Autocfd.Profile.run ~spec ~label plan in
  if json then
    print_endline (Obs.Json.pretty (Autocfd.Profile.to_json ~top p))
  else if prom then print_string (Autocfd.Profile.to_prometheus p)
  else print_string (Autocfd.Profile.render ~top p);
  if check then begin
    let cov = Autocfd.Profile.coverage p in
    if cov < min_cov then begin
      Printf.eprintf
        "FAIL: %.2f%% of compute time attributed to named nests (need >= \
         %.2f%%)\n"
        (100. *. cov) (100. *. min_cov);
      exit 1
    end
    else
      Printf.printf
        "OK: %.2f%% of compute time attributed to %d named nests\n"
        (100. *. cov)
        (List.length p.Autocfd.Profile.pf_metrics.Obs.Metrics.kernels)
  end

let report file spec_file parts nprocs no_fission output =
  let spec = resolve_spec ?parts ?nprocs ~no_fission spec_file in
  let _, plan = load_and_plan spec file in
  let text = Autocfd.Report.markdown plan in
  match output with
  | None -> print_string text
  | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s\n" path

(* sweep wiring shared by the tables and tune verbs: a persistent cache
   unless disabled, plus an optional distributed fabric with [workers]
   spawned worker processes *)
let make_sweep ~jobs ~workers ~use_cache ~cache_dir =
  let module Fabric = Autocfd_sched.Fabric in
  let cache =
    if use_cache then
      try Some (Autocfd_sched.Cache.create ~dir:cache_dir ())
      with Sys_error msg ->
        Printf.eprintf "autocfd: unusable cache directory: %s\n" msg;
        exit 1
    else None
  in
  let fabric =
    if workers <= 0 then None
    else begin
      let sock =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "autocfd-fabric-%d.sock" (Unix.getpid ()))
      in
      let fb = Fabric.create ~listen:(Fabric.Unix_path sock) () in
      let addr = Fabric.addr_to_string (Fabric.addr fb) in
      for _ = 1 to workers do
        ignore
          (Fabric.spawn_worker fb
             ~argv:[| Sys.executable_name; "worker"; "--connect"; addr |])
      done;
      Some fb
    end
  in
  (Autocfd.Experiments.sweep ~jobs ?cache ?fabric (), fabric)

let finish_sweep sw fabric =
  let module E = Autocfd.Experiments in
  let module Fabric = Autocfd_sched.Fabric in
  let stats = E.sweep_stats sw in
  if stats <> [] then
    prerr_string
      (Autocfd.Report.sched_summary ~stale:(E.sweep_stale sw) stats);
  match fabric with
  | Some fb ->
      prerr_string (Autocfd.Report.fabric_summary (Fabric.stats fb));
      Fabric.shutdown fb
  | None -> ()

let tables which json jobs workers use_cache cache_dir =
  let module E = Autocfd.Experiments in
  let sw, fabric = make_sweep ~jobs ~workers ~use_cache ~cache_dir in
  (if json then print_endline (Obs.Json.pretty (E.tables_json ~sweep:sw ()))
   else
     let print1 () = print_string (E.render_table1 (E.table1 ~sweep:sw ())) in
     let print2 () =
       print_string
         (E.render_perf ~title:"Table 2: aerofoil 99x41x13"
            (E.table2 ~sweep:sw ()))
     in
     let print3 () =
       print_string
         (E.render_perf ~title:"Table 3: sprayer 300x100"
            (E.table3 ~sweep:sw ()))
     in
     let print4 () = print_string (E.render_table4 (E.table4 ~sweep:sw ())) in
     let print5 () = print_string (E.render_table5 (E.table5 ~sweep:sw ())) in
     match which with
     | "1" -> print1 ()
     | "2" -> print2 ()
     | "3" -> print3 ()
     | "4" -> print4 ()
     | "5" -> print5 ()
     | "all" ->
         print1 (); print_newline ();
         print2 (); print_newline ();
         print3 (); print_newline ();
         print4 (); print_newline ();
         print5 ()
     | other -> Printf.eprintf "unknown table %S\n" other; exit 1);
  finish_sweep sw fabric

(* auto-tune one program: every point of the configuration product
   space, dispatched as cached (and optionally distributed) jobs, pruned
   to the Pareto frontier *)
let tune file spec_file grid json jobs workers use_cache cache_dir =
  let module E = Autocfd.Experiments in
  let module T = Autocfd.Tune in
  let sw, fabric = make_sweep ~jobs ~workers ~use_cache ~cache_dir in
  let base = resolve_spec spec_file in
  let source = read_file file in
  (* wide-grid Domains points execute the program for real; narrower
     grids are pure model predictions *)
  let measure_source = match grid with T.Wide -> Some source | _ -> None in
  let r =
    E.tune_program ~grid ~base ~sweep:sw ?measure_source
      ~program:(Filename.basename file) ~source ()
  in
  (if json then print_endline (Obs.Json.pretty (T.result_to_json r))
   else print_string (T.render r));
  finish_sweep sw fabric

(* one fabric worker process: connect back to the master, resolve each
   assigned spec through the shared Experiments dispatcher, stream the
   results home.  Normally spawned by the master itself (tables
   --workers / bench --workers), but any host that can reach the socket
   may contribute. *)
let worker connect id =
  let module Fabric = Autocfd_sched.Fabric in
  match Fabric.addr_of_string connect with
  | Error msg ->
      Printf.eprintf "autocfd worker: %s\n" msg;
      exit 1
  | Ok addr -> (
      match
        Fabric.serve ~connect:addr ?id
          ~resolve:Autocfd.Experiments.exec_spec ()
      with
      | Ok () -> ()
      | Error msg ->
          Printf.eprintf "autocfd worker: %s\n" msg;
          exit 1)

let demo which =
  match which with
  | "aerofoil" -> print_string (Autocfd_apps.Aerofoil.source ())
  | "sprayer" -> print_string (Autocfd_apps.Sprayer.source ())
  | "cavity" -> print_string (Autocfd_apps.Cavity.source ())
  | other ->
      Printf.eprintf "unknown demo %S (aerofoil|sprayer|cavity)\n" other;
      exit 1

(* ------------------------------------------------------------------ *)

let analyze_cmd =
  let report =
    Arg.(value & flag
         & info [ "report" ]
             ~doc:"Emit the full markdown report instead of the plain-text \
                   summary (same output as the 'report' verb, including the \
                   measured per-rank time breakdown and per-sync-point \
                   traffic tables).")
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Dependency and synchronization analysis report")
    Term.(const analyze $ file_arg $ spec_arg $ parts_arg $ nprocs_arg
          $ fission_arg $ report)

let parallelize_cmd =
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Output file.")
  in
  let mpi =
    Arg.(value & flag
         & info [ "mpi" ]
             ~doc:"Emit complete Fortran 77 + MPI source (with generated \
                   pack/exchange subroutines) instead of the annotated \
                   SPMD form.")
  in
  Cmd.v
    (Cmd.info "parallelize"
       ~doc:"Transform a sequential CFD program into an SPMD program")
    Term.(const parallelize $ file_arg $ spec_arg $ parts_arg $ nprocs_arg
          $ fission_arg $ mpi $ output)

let json_flag ~what =
  Arg.(value & flag & info [ "json" ] ~doc:("Emit " ^ what ^ " as JSON."))

let jobs_arg =
  Arg.(value & opt int (Autocfd_sched.Pool.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the sweep scheduler (default: all \
                 recommended cores).")

let no_cache_arg =
  Arg.(value & flag
       & info [ "no-cache" ]
           ~doc:"Disable the persistent content-addressed result cache.")

let cache_dir_arg =
  Arg.(value & opt string "_autocfd_cache"
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Result cache directory (default: _autocfd_cache).")

let engine_arg =
  let parse = function
    | "tree" -> Ok Autocfd_interp.Spmd.Tree
    | "compiled" -> Ok Autocfd_interp.Spmd.Compiled
    | "fused" -> Ok Autocfd_interp.Spmd.Fused
    | "domains" -> Ok Autocfd_interp.Spmd.Domains
    | s ->
        Error
          (`Msg
             (Printf.sprintf "bad engine %S (tree|compiled|fused|domains)" s))
  in
  let print ppf e = Format.pp_print_string ppf (engine_name e) in
  Arg.(value & opt (some (conv (parse, print))) None
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Execution engine: tree, compiled, fused (default, or \
                 whatever --spec says) or domains (real shared-memory \
                 execution on OCaml 5 domains).  The compiled, fused and \
                 domains engines emit per-nest kernel summaries.")

let run_cmd_ =
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Execute the program sequentially and on the simulated cluster \
          (or for real on OCaml 5 domains with --engine domains, which \
          additionally gates on bit-identity against the simulator), and \
          compare the results (memoized: a repeated run of an unchanged \
          source is served from the result cache)")
    Term.(const run_cmd $ file_arg $ spec_arg $ parts_arg $ nprocs_arg
          $ fission_arg $ engine_arg
          $ json_flag ~what:"the comparison and per-rank metrics"
          $ jobs_arg
          $ Term.app (const not) no_cache_arg
          $ cache_dir_arg)

let trace_cmd_ =
  let out =
    Arg.(value & opt string "trace.json"
         & info [ "o"; "out" ] ~docv:"OUT"
             ~doc:"Chrome trace_event output file (load in Perfetto or \
                   chrome://tracing).")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Also write the compact per-rank / per-sync-point metrics \
                   JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Profile the program on the simulated cluster: execute it with the \
          reference machine's calibrated network and per-flop cost while \
          recording every compute, send/recv, collective and blocked \
          interval, then export a Chrome trace_event JSON timeline (one \
          track per rank) plus optional machine-readable metrics.  With \
          --engine domains the timeline is the real shared-memory \
          execution's wall clock on a dedicated process lane")
    Term.(const trace_cmd $ file_arg $ spec_arg $ parts_arg $ nprocs_arg
          $ fission_arg $ engine_arg $ out $ metrics)

let profile_cmd_ =
  let top =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"N"
             ~doc:"Rows of the hot-nest table (default 10).")
  in
  let prom =
    Arg.(value & flag
         & info [ "prom" ]
             ~doc:"Emit the unified metrics registry in Prometheus text \
                   exposition format instead of the human-readable profile.")
  in
  let check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Exit nonzero unless at least $(b,--min-coverage) of the \
                   virtual compute time is attributed to named field-loop \
                   nests (the CI attribution gate).")
  in
  let min_cov =
    Arg.(value & opt float 0.95
         & info [ "min-coverage" ] ~docv:"FRAC"
             ~doc:"Attribution threshold for --check (default 0.95).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Kernel-level profile of the program on the simulated reference \
          cluster: run it through the sweep pool with tracing enabled, then \
          print the hot-nest table (top-N field-loop nests by self time, \
          with share of total compute and flop/byte throughput), \
          per-sync-point latency histograms and scheduler utilization.  \
          --json emits the full machine-readable profile, --prom the \
          unified metrics registry in Prometheus text format.")
    Term.(const profile_cmd $ file_arg $ spec_arg $ parts_arg $ nprocs_arg
          $ fission_arg $ engine_arg
          $ top
          $ json_flag ~what:"the full profile document"
          $ prom $ check $ min_cov)

let report_cmd =
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Emit a markdown pre-compilation report (loops, S_LDP, \
             synchronization points, modelled performance)")
    Term.(const report $ file_arg $ spec_arg $ parts_arg $ nprocs_arg
          $ fission_arg $ output)

let workers_arg =
  Arg.(value & opt int 0
       & info [ "workers" ] ~docv:"N"
           ~doc:"Spawn $(docv) fabric worker processes and run the sweep \
                 over the distributed fabric (leases, retries, crash \
                 recovery) instead of the in-process pool.  0 (default) \
                 stays in-process.")

let tables_cmd =
  let which =
    Arg.(value & pos 0 string "all" & info [] ~docv:"N" ~doc:"1-5 or 'all'.")
  in
  Cmd.v (Cmd.info "tables" ~doc:"Regenerate the paper's evaluation tables")
    Term.(const tables $ which
          $ json_flag ~what:"every table (1-5) plus model validation"
          $ jobs_arg $ workers_arg
          $ Term.app (const not) no_cache_arg
          $ cache_dir_arg)

let tune_cmd =
  let grid =
    let parse s =
      match Autocfd.Tune.grid_of_string s with
      | Ok g -> Ok g
      | Error msg -> Error (`Msg msg)
    in
    let print ppf g =
      Format.pp_print_string ppf (Autocfd.Tune.grid_to_string g)
    in
    Arg.(value & opt (conv (parse, print)) Autocfd.Tune.Default
         & info [ "grid" ] ~docv:"GRID"
             ~doc:"Search-space width: narrow (single smoke-test point), \
                   default (every rank count and feasible partition shape \
                   x sync-combining strategy) or wide (adds odd rank \
                   counts, fission/fusion ablations and the real Domains \
                   engine with measured wall clock).")
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Auto-search the full configuration space of a program: every \
          rank count, feasible partition shape, synchronization-combining \
          strategy (and on the wide grid: fission/fusion ablations and \
          the real Domains engine) is one cached job through the sweep \
          scheduler; the result is the winning configuration plus the \
          Pareto frontier over predicted time, communication volume and \
          per-rank memory.  Each frontier row's spec is a complete \
          Runspec: feed it back with --spec to reproduce that exact run.")
    Term.(const tune $ file_arg $ spec_arg $ grid
          $ json_flag ~what:"the winner and Pareto frontier"
          $ jobs_arg $ workers_arg
          $ Term.app (const not) no_cache_arg
          $ cache_dir_arg)

let worker_cmd =
  let connect =
    Arg.(required & opt (some string) None
         & info [ "connect" ] ~docv:"ADDR"
             ~doc:"Fabric master address: a Unix-domain socket path \
                   (unix:/path or /path) or host:port.")
  in
  let id =
    Arg.(value & opt (some string) None
         & info [ "id" ] ~docv:"NAME"
             ~doc:"Worker name reported to the master (default: \
                   host/pid-derived).")
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Run one fabric worker: connect to a sweep master, heartbeat \
          while executing each leased job spec, and stream result JSON \
          back in checksummed frames.  Exits nonzero with a one-line \
          diagnostic when the master is unreachable.")
    Term.(const worker $ connect $ id)

let demo_cmd =
  let which =
    Arg.(value & pos 0 string "sprayer"
         & info [] ~docv:"NAME" ~doc:"aerofoil, sprayer or cavity.")
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Print a bundled case-study Fortran source")
    Term.(const demo $ which)

let () =
  let doc = "Auto-CFD: parallelizing pre-compiler for Fortran CFD programs" in
  let info = Cmd.info "autocfd" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
                    [ analyze_cmd; parallelize_cmd; run_cmd_; trace_cmd_;
                      profile_cmd_; report_cmd; tables_cmd; tune_cmd;
                      worker_cmd; demo_cmd ]))
