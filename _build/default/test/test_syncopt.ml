(** Tests for synchronization optimization (paper §5): block layout,
    upper-bound region generation with loop hoisting (Fig. 5) and branch
    rules (Fig. 7), interprocedural combining (Fig. 8), and the optimal
    vs first-fit combining strategies (Fig. 6) — including a qcheck
    cross-check of the greedy against brute-force minimal stabbing. *)

open Autocfd_fortran
module A = Autocfd_analysis
module P = Autocfd_partition
module S = Autocfd_syncopt

let pipeline src parts =
  let p = Parser.parse src in
  let gi = A.Grid_info.of_program p in
  let u = Inline.program p in
  let loops = A.Loops.build u in
  let summaries = A.Field_loop.analyze_unit gi u in
  let topo = P.Topology.create ~grid:gi.A.Grid_info.grid ~parts in
  let sldp = A.Sldp.compute gi topo loops summaries in
  let layout = S.Layout.of_unit u in
  (u, sldp, layout)

let optimize ?combine src parts =
  let _, sldp, layout = pipeline src parts in
  S.Optimizer.run ?combine sldp ~layout

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let test_layout_structure () =
  let u =
    Ast.main_unit
      (Parser.parse
         {|
      program t
      integer i
      real x
      x = 0.0
      do i = 1, 3
        if (x .lt. 1.0) then
          x = x + 1.0
        else
          x = x - 1.0
        end if
      end do
      end
|})
  in
  let l = S.Layout.of_unit u in
  (* top block + loop body + 2 branch blocks *)
  Alcotest.(check int) "four blocks" 4 (S.Layout.nblocks l);
  Alcotest.(check bool) "top owner" true (S.Layout.owner l 0 = S.Layout.Top);
  Alcotest.(check int) "top has 2 statements" 2
    (Array.length (S.Layout.stmts l 0));
  (* slot clocks strictly increase within a block *)
  for b = 0 to S.Layout.nblocks l - 1 do
    let n = Array.length (S.Layout.stmts l b) in
    for i = 0 to n - 1 do
      Alcotest.(check bool) "clock monotone" true
        (S.Layout.slot_clock l b i < S.Layout.slot_clock l b (i + 1))
    done
  done

(* ------------------------------------------------------------------ *)
(* Region generation: hoisting (Fig. 5)                                *)
(* ------------------------------------------------------------------ *)

let test_region_hoists_out_of_reader_free_loops () =
  (* The A-loop is nested inside two loops that contain no R-type loop:
     the starting point hoists to the top level (Fig. 5(a)). *)
  let src =
    {|
c$acfd grid(m)
c$acfd status(u, w)
      program t
      parameter (m = 16)
      real u(m), w(m)
      integer i, r, s
      do r = 1, 3
        do s = 1, 3
          do i = 1, m
            u(i) = float(r + s + i)
          end do
        end do
      end do
      do i = 2, m - 1
        w(i) = u(i-1) + u(i+1)
      end do
      end
|}
  in
  let _, sldp, layout = pipeline src [| 2 |] in
  let regions =
    S.Region.generate sldp ~layout (A.Sldp.eliminate_redundant sldp)
  in
  match regions with
  | [ r ] ->
      (* hoisted to the top-level block (block 0) *)
      Alcotest.(check int) "top-level block" 0 r.S.Region.rg_block;
      (* legal span: after the r-loop (index 0) and before the reader
         (index 1): exactly slot 1 *)
      Alcotest.(check int) "first slot" 1 r.S.Region.rg_first;
      Alcotest.(check int) "last slot" 1 r.S.Region.rg_last
  | rs -> Alcotest.failf "expected 1 region, got %d" (List.length rs)

let test_region_stays_when_reader_inside_loop () =
  (* A-loop and R-loop inside the same time loop: the region must stay
     inside the loop body. *)
  let src =
    {|
c$acfd grid(m)
c$acfd status(u, w)
      program t
      parameter (m = 16)
      real u(m), w(m)
      integer i, it
      do it = 1, 3
        do i = 1, m
          u(i) = float(i + it)
        end do
        do i = 2, m - 1
          w(i) = u(i-1) + u(i+1)
        end do
      end do
      end
|}
  in
  let _, sldp, layout = pipeline src [| 2 |] in
  let regions =
    S.Region.generate sldp ~layout (A.Sldp.eliminate_redundant sldp)
  in
  Alcotest.(check bool) "at least one region" true (regions <> []);
  List.iter
    (fun r ->
      match S.Layout.owner layout r.S.Region.rg_block with
      | S.Layout.Loop_body _ -> ()
      | _ -> Alcotest.fail "region escaped the carrying loop")
    regions

let test_region_ends_before_goto () =
  (* §5.2 rule 1: the region ends before a goto *)
  let src =
    {|
c$acfd grid(m)
c$acfd status(u, w)
      program t
      parameter (m = 16)
      real u(m), w(m)
      real x
      integer i
      do i = 1, m
        u(i) = float(i)
      end do
      x = 1.0
      if (x .gt. 0.0) goto 300
      x = 2.0
 300  continue
      do i = 2, m - 1
        w(i) = u(i-1)
      end do
      end
|}
  in
  let _, sldp, layout = pipeline src [| 2 |] in
  let regions =
    S.Region.generate sldp ~layout (A.Sldp.eliminate_redundant sldp)
  in
  match regions with
  | [ r ] ->
      (* statements in the top block: u-loop(0), x=1(1), if-goto(2),
         x=2... wait x=2 is inside?  the logical IF holds the goto; the
         region is [1..2]: it must not extend past the goto statement *)
      Alcotest.(check int) "ends at the goto statement" 2 r.S.Region.rg_last
  | rs -> Alcotest.failf "expected 1 region, got %d" (List.length rs)

let test_region_branch_rules () =
  (* §5.2 rule 2: an if-else containing an R-type loop ends the region
     before the branch *)
  let src =
    {|
c$acfd grid(m)
c$acfd status(u, w)
      program t
      parameter (m = 16)
      real u(m), w(m)
      real x
      integer i
      do i = 1, m
        u(i) = float(i)
      end do
      x = 1.0
      if (x .gt. 0.0) then
        do i = 2, m - 1
          w(i) = u(i-1)
        end do
      end if
      x = 2.0
      end
|}
  in
  let _, sldp, layout = pipeline src [| 2 |] in
  let regions =
    S.Region.generate sldp ~layout (A.Sldp.eliminate_redundant sldp)
  in
  match regions with
  | [ r ] ->
      (* stops before the IF (statement index 2 in the top block) *)
      Alcotest.(check int) "ends before the branch" 2 r.S.Region.rg_last;
      Alcotest.(check int) "starts after the A-loop" 1 r.S.Region.rg_first
  | rs -> Alcotest.failf "expected 1 region, got %d" (List.length rs)

let test_region_hoists_out_of_branch () =
  (* §5.2 rule 3 / Fig. 7(e): an A-loop inside a branch can hoist out
     when no R-type loop shares the branch *)
  let src =
    {|
c$acfd grid(m)
c$acfd status(u, w)
      program t
      parameter (m = 16)
      real u(m), w(m)
      real x
      integer i
      x = 1.0
      if (x .gt. 0.0) then
        do i = 1, m
          u(i) = float(i)
        end do
      else
        do i = 1, m
          u(i) = 0.0
        end do
      end if
      do i = 2, m - 1
        w(i) = u(i-1)
      end do
      end
|}
  in
  let _, sldp, layout = pipeline src [| 2 |] in
  let regions =
    S.Region.generate sldp ~layout (A.Sldp.eliminate_redundant sldp)
  in
  Alcotest.(check bool) "regions exist" true (regions <> []);
  List.iter
    (fun r ->
      Alcotest.(check int) "hoisted to top" 0 r.S.Region.rg_block)
    regions

(* ------------------------------------------------------------------ *)
(* Combining (Fig. 6)                                                  *)
(* ------------------------------------------------------------------ *)

let test_combining_merges_overlaps () =
  (* three independent A-loops followed by three R-loops: all six pairs'
     regions overlap between the last writer and first reader *)
  let src =
    {|
c$acfd grid(m)
c$acfd status(a, b, c, w)
      program t
      parameter (m = 16)
      real a(m), b(m), c(m), w(m)
      integer i
      do i = 1, m
        a(i) = 1.0
      end do
      do i = 1, m
        b(i) = 2.0
      end do
      do i = 1, m
        c(i) = 3.0
      end do
      do i = 2, m - 1
        w(i) = a(i-1) + b(i-1) + c(i-1)
      end do
      end
|}
  in
  let r = optimize src [| 2 |] in
  Alcotest.(check int) "three pairs before" 3 r.S.Optimizer.before;
  Alcotest.(check int) "one combined point" 1 r.S.Optimizer.after;
  (match r.S.Optimizer.groups with
  | [ g ] ->
      Alcotest.(check int) "three regions merged" 3
        (List.length g.S.Combine.gr_regions);
      let arrays =
        List.sort_uniq compare
          (List.map (fun t -> t.Ast.xfer_array) g.S.Combine.gr_transfers)
      in
      Alcotest.(check (list string)) "all three arrays aggregated"
        [ "a"; "b"; "c" ] arrays
  | _ -> Alcotest.fail "expected one group")

let test_minimum_stabbing () =
  Alcotest.(check int) "disjoint" 3
    (S.Combine.minimum_stabbing_count [ (0, 1); (2, 3); (4, 5) ]);
  Alcotest.(check int) "nested" 1
    (S.Combine.minimum_stabbing_count [ (0, 10); (2, 8); (4, 6) ]);
  Alcotest.(check int) "fig 6 shape" 2
    (S.Combine.minimum_stabbing_count
       [ (0, 3); (1, 4); (2, 5); (6, 9); (7, 10); (8, 11) ])

let prop_greedy_is_minimal =
  (* brute force over all candidate point sets on small instances *)
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 6)
        (let* lo = int_range 0 12 in
         let* len = int_range 0 5 in
         return (lo, lo + len)))
  in
  QCheck.Test.make ~count:200 ~name:"greedy stabbing count is minimal"
    (QCheck.make
       ~print:(fun l ->
         String.concat ";"
           (List.map (fun (a, b) -> Printf.sprintf "[%d,%d]" a b) l))
       gen)
    (fun intervals ->
      let greedy = S.Combine.minimum_stabbing_count intervals in
      (* brute force: try all subsets of candidate points (interval
         endpoints suffice) of size < greedy *)
      let points =
        List.sort_uniq compare
          (List.concat_map (fun (a, b) -> [ a; b ]) intervals)
      in
      let covers pts =
        List.for_all
          (fun (a, b) -> List.exists (fun p -> a <= p && p <= b) pts)
          intervals
      in
      let rec subsets k = function
        | [] -> if k = 0 then [ [] ] else []
        | x :: rest ->
            if k = 0 then [ [] ]
            else
              List.map (fun s -> x :: s) (subsets (k - 1) rest)
              @ subsets k rest
      in
      let beatable =
        greedy > 0
        && List.exists covers (subsets (greedy - 1) points)
      in
      covers points && not beatable)

let test_interprocedural_fig8 () =
  (* main calls a twice and b once; all three writer instances combine
     into one synchronization before the reader *)
  let src =
    {|
c$acfd grid(m)
c$acfd status(u, w)
      program t
      parameter (m = 16)
      real u(m), w(m)
      common /f/ u, w
      integer i
      do i = 1, m
        u(i) = float(i)
      end do
      call a
      call b
      call a
      do i = 2, m - 1
        w(i) = u(i-1) + u(i+1)
      end do
      end

      subroutine a
      parameter (m = 16)
      real u(m), w(m)
      common /f/ u, w
      integer i
      do i = 2, m - 1
        u(i) = u(i) * 1.5
      end do
      return
      end

      subroutine b
      parameter (m = 16)
      real u(m), w(m)
      common /f/ u, w
      integer i
      do i = 2, m - 1
        u(i) = u(i) + 1.0
      end do
      return
      end
|}
  in
  let r = optimize src [| 2 |] in
  (* 4 writer instances (init + a + b + a) x 1 reader crossing = 4 pairs *)
  Alcotest.(check int) "before counts each call site" 4 r.S.Optimizer.before;
  Alcotest.(check int) "combined into one" 1 r.S.Optimizer.after

let test_first_fit_never_better () =
  (* on the real case studies first-fit can never beat optimal *)
  List.iter
    (fun (src, parts) ->
      let opt = optimize src parts in
      let ff = optimize ~combine:S.Optimizer.First_fit src parts in
      Alcotest.(check bool) "optimal <= first-fit" true
        (opt.S.Optimizer.after <= ff.S.Optimizer.after))
    [
      (Autocfd_apps.Sprayer.source ~ni:40 ~nj:20 (), [| 2; 2 |]);
      (Autocfd_apps.Aerofoil.source ~ni:16 ~nj:10 ~nk:6 (), [| 2; 2; 1 |]);
    ]

let test_reduction_pct () =
  let r = optimize (Autocfd_apps.Sprayer.source ~ni:40 ~nj:20 ()) [| 4; 1 |] in
  let pct = S.Optimizer.reduction_pct r in
  Alcotest.(check bool) "about 80-95% reduction" true
    (pct > 0.7 && pct < 1.0)


(* ------------------------------------------------------------------ *)
(* Invariants over randomized programs                                 *)
(* ------------------------------------------------------------------ *)

(* random multi-stage stencil programs: a few writer loops, reader loops
   and boundary fixups in a time loop *)
let gen_program =
  QCheck.Gen.(
    let* seed = int_range 1 999 in
    let* stages = int_range 2 5 in
    let* bc = bool in
    let body =
      List.init stages (fun k ->
          let src = if k mod 2 = 0 then "a" else "b" in
          let dst = if k mod 2 = 0 then "b" else "a" in
          Printf.sprintf
            {|        do i = 2, m - 1
          do j = 2, n - 1
            %s(i, j) = 0.3%d * (%s(i-1, j) + %s(i+1, j) + %s(i, j-1))
          end do
        end do|}
            dst ((seed + k) mod 9) src src src)
      |> String.concat "\n"
    in
    let bc_code =
      if bc then
        {|        do j = 1, n
          a(1, j) = a(2, j)
        end do|}
      else ""
    in
    return
      (Printf.sprintf
         {|
c$acfd grid(m, n)
c$acfd status(a, b)
      program rnd
      parameter (m = 14, n = 12)
      real a(m, n), b(m, n)
      integer i, j, it
      do i = 1, m
        do j = 1, n
          a(i, j) = float(i + j + %d)
          b(i, j) = 0.0
        end do
      end do
      do it = 1, 3
%s
%s
      end do
      write(*,*) a(3, 3)
      end
|}
         seed bc_code body))

let prop_region_group_invariants =
  QCheck.Test.make ~count:60 ~name:"region/group invariants hold"
    (QCheck.make ~print:Fun.id gen_program)
    (fun src ->
      let _, sldp, layout = pipeline src [| 2; 2 |] in
      let surviving = A.Sldp.eliminate_redundant sldp in
      let regions = S.Region.generate sldp ~layout surviving in
      let ok_regions =
        List.for_all
          (fun r -> r.S.Region.rg_first <= r.S.Region.rg_last)
          regions
      in
      let groups = S.Combine.optimal ~layout regions in
      let ff = S.Combine.first_fit ~layout regions in
      (* every region lands in exactly one group *)
      let total_members =
        List.fold_left
          (fun acc g -> acc + List.length g.S.Combine.gr_regions)
          0 groups
      in
      (* the chosen slot lies inside every member region, same block *)
      let ok_slots =
        List.for_all
          (fun g ->
            List.for_all
              (fun r ->
                r.S.Region.rg_block = g.S.Combine.gr_block
                && g.S.Combine.gr_slot >= r.S.Region.rg_first
                && g.S.Combine.gr_slot <= r.S.Region.rg_last)
              g.S.Combine.gr_regions)
          groups
      in
      ok_regions && ok_slots
      && total_members = List.length regions
      && List.length groups <= List.length regions
      && List.length groups <= List.length ff)

let prop_optimal_matches_stabbing =
  QCheck.Test.make ~count:60
    ~name:"optimal group count equals minimal interval stabbing"
    (QCheck.make ~print:Fun.id gen_program)
    (fun src ->
      let _, sldp, layout = pipeline src [| 2; 1 |] in
      let surviving = A.Sldp.eliminate_redundant sldp in
      let regions = S.Region.generate sldp ~layout surviving in
      let groups = S.Combine.optimal ~layout regions in
      (* per block, the group count equals the minimal stabbing count *)
      let blocks =
        List.sort_uniq compare (List.map (fun r -> r.S.Region.rg_block) regions)
      in
      List.for_all
        (fun b ->
          let intervals =
            List.filter_map
              (fun r ->
                if r.S.Region.rg_block = b then
                  Some (r.S.Region.rg_first, r.S.Region.rg_last)
                else None)
              regions
          in
          let expected = S.Combine.minimum_stabbing_count intervals in
          let got =
            List.length
              (List.filter (fun g -> g.S.Combine.gr_block = b) groups)
          in
          got = expected)
        blocks)


let suite =
  [
    ("layout structure", `Quick, test_layout_structure);
    ("region hoists out of loops", `Quick, test_region_hoists_out_of_reader_free_loops);
    ("region stays in carrying loop", `Quick, test_region_stays_when_reader_inside_loop);
    ("region ends before goto", `Quick, test_region_ends_before_goto);
    ("region branch rules", `Quick, test_region_branch_rules);
    ("region hoists out of branch", `Quick, test_region_hoists_out_of_branch);
    ("combining merges overlaps", `Quick, test_combining_merges_overlaps);
    ("minimum stabbing", `Quick, test_minimum_stabbing);
    QCheck_alcotest.to_alcotest prop_greedy_is_minimal;
    QCheck_alcotest.to_alcotest prop_region_group_invariants;
    QCheck_alcotest.to_alcotest prop_optimal_matches_stabbing;
    ("interprocedural fig 8", `Quick, test_interprocedural_fig8);
    ("first-fit never better", `Quick, test_first_fit_never_better);
    ("reduction pct", `Quick, test_reduction_pct);
  ]
