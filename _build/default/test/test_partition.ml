(** Tests for grid partitioning (paper §4.1): balanced demarcation lines,
    full disjoint coverage, neighbor relations, communication volume, and
    the automatic partition search. *)

open Autocfd_partition

let test_block_basics () =
  let b = Block.make ~lo:[| 1; 5 |] ~hi:[| 10; 9 |] in
  Alcotest.(check int) "ndims" 2 (Block.ndims b);
  Alcotest.(check int) "extent 0" 10 (Block.extent b 0);
  Alcotest.(check int) "extent 1" 5 (Block.extent b 1);
  Alcotest.(check int) "points" 50 (Block.points b);
  Alcotest.(check int) "face 0" 5 (Block.face_points b 0);
  Alcotest.(check int) "face 1" 10 (Block.face_points b 1);
  Alcotest.(check bool) "contains" true (Block.contains b [| 10; 9 |]);
  Alcotest.(check bool) "not contains" false (Block.contains b [| 11; 9 |])

let test_split_balance () =
  (* the paper: subgrids sized as equally as possible *)
  let t = Topology.create ~grid:[| 99; 41; 13 |] ~parts:[| 4; 2; 1 |] in
  Alcotest.(check int) "nranks" 8 (Topology.nranks t);
  let sizes = List.init 8 (fun r -> Block.points (Topology.block t r)) in
  let mn = List.fold_left min max_int sizes
  and mx = List.fold_left max 0 sizes in
  (* 99 = 25+25+25+24; 41 = 21+20: imbalance bounded by one line *)
  Alcotest.(check bool) "balanced" true
    (float_of_int mx /. float_of_int mn < 1.1);
  Alcotest.(check int) "max = min_block via api" mx (Topology.max_block_points t);
  Alcotest.(check int) "min via api" mn (Topology.min_block_points t)

let test_cover_disjoint () =
  let t = Topology.create ~grid:[| 10; 7 |] ~parts:[| 3; 2 |] in
  (* every point owned exactly once *)
  let counts = Hashtbl.create 70 in
  for r = 0 to Topology.nranks t - 1 do
    let b = Topology.block t r in
    for i = b.Block.lo.(0) to b.Block.hi.(0) do
      for j = b.Block.lo.(1) to b.Block.hi.(1) do
        let k = (i, j) in
        Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
      done
    done
  done;
  Alcotest.(check int) "all points covered" 70 (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ c -> Alcotest.(check int) "owned once" 1 c)
    counts

let test_owner_matches_block () =
  let t = Topology.create ~grid:[| 9; 9 |] ~parts:[| 2; 3 |] in
  for i = 1 to 9 do
    for j = 1 to 9 do
      let r = Topology.owner t [| i; j |] in
      Alcotest.(check bool) "owner's block contains point" true
        (Block.contains (Topology.block t r) [| i; j |])
    done
  done

let test_rank_coords_roundtrip () =
  let t = Topology.create ~grid:[| 8; 8; 8 |] ~parts:[| 2; 2; 2 |] in
  for r = 0 to 7 do
    Alcotest.(check int) "roundtrip" r
      (Topology.rank_of_coords t (Topology.coords_of_rank t r))
  done

let test_neighbors () =
  let t = Topology.create ~grid:[| 12; 12 |] ~parts:[| 3; 2 |] in
  (* rank 0 = coords (0,0) *)
  Alcotest.(check bool) "no minus neighbor at edge" true
    (Topology.neighbor t ~rank:0 ~dim:0 ~dir:Topology.Minus = None);
  (match Topology.neighbor t ~rank:0 ~dim:0 ~dir:Topology.Plus with
  | Some r -> Alcotest.(check int) "plus neighbor" 2 r
  | None -> Alcotest.fail "expected a neighbor");
  (* symmetry: if b is a's +d neighbor then a is b's -d neighbor *)
  for r = 0 to Topology.nranks t - 1 do
    for d = 0 to 1 do
      match Topology.neighbor t ~rank:r ~dim:d ~dir:Topology.Plus with
      | Some n ->
          Alcotest.(check (option int)) "symmetric" (Some r)
            (Topology.neighbor t ~rank:n ~dim:d ~dir:Topology.Minus)
      | None -> ()
    done
  done

let test_is_cut () =
  let t = Topology.create ~grid:[| 10; 10; 10 |] ~parts:[| 4; 1; 2 |] in
  Alcotest.(check bool) "dim 0 cut" true (Topology.is_cut t 0);
  Alcotest.(check bool) "dim 1 uncut" false (Topology.is_cut t 1);
  Alcotest.(check (list int)) "cut dims" [ 0; 2 ] (Topology.cut_dims t)

let test_comm_points () =
  (* paper §6.2: on 2 procs cutting the 99-dim, each processor
     communicates one demarcation plane = 41*13 points *)
  let t2 = Topology.create ~grid:[| 99; 41; 13 |] ~parts:[| 2; 1; 1 |] in
  Alcotest.(check int) "2 procs: one face" (41 * 13)
    (Topology.comm_points_per_rank t2 ~depth:[| 1; 1; 1 |]);
  (* on 4x1x1 an interior processor has two faces *)
  let t4 = Topology.create ~grid:[| 99; 41; 13 |] ~parts:[| 4; 1; 1 |] in
  Alcotest.(check int) "4 procs: two faces" (2 * 41 * 13)
    (Topology.comm_points_per_rank t4 ~depth:[| 1; 1; 1 |]);
  (* the paper's 2x2x1 example: 45x13 + 21x13 per processor *)
  let t22 = Topology.create ~grid:[| 99; 41; 13 |] ~parts:[| 2; 2; 1 |] in
  let per_rank = Topology.comm_points_per_rank t22 ~depth:[| 1; 1; 1 |] in
  Alcotest.(check bool) "2x2x1 worst-case close to paper's 1.6x figure" true
    (per_rank >= (21 * 13) + (40 * 13) && per_rank <= (21 * 13) + (50 * 13))

let test_factorizations () =
  Alcotest.(check int) "4 into 2" 3 (List.length (Topology.factorizations 4 2));
  Alcotest.(check bool) "contains 2x2" true
    (List.mem [| 2; 2 |] (Topology.factorizations 4 2));
  Alcotest.(check int) "6 into 3" 9 (List.length (Topology.factorizations 6 3));
  List.iter
    (fun f -> Alcotest.(check int) "product" 6 (Array.fold_left ( * ) 1 f))
    (Topology.factorizations 6 3)

let test_search_prefers_long_dimension () =
  (* cutting the longest dimension minimizes the demarcation plane *)
  let best = Topology.search ~grid:[| 99; 41; 13 |] ~nprocs:2 ~depth:[| 1; 1; 1 |] in
  Alcotest.(check bool) "cuts dim 0" true (best = [| 2; 1; 1 |]);
  let best4 = Topology.search ~grid:[| 300; 100 |] ~nprocs:4 ~depth:[| 1; 1 |] in
  (* 4x1 communicates two 100-point planes, 2x2 communicates 150+50: both
     are minimal at 200 points/rank; 1x4 (two 300-point planes) must lose *)
  Alcotest.(check bool) "sprayer 4 procs" true
    (best4 = [| 4; 1 |] || best4 = [| 2; 2 |]);
  let t14 = Topology.create ~grid:[| 300; 100 |] ~parts:[| 1; 4 |] in
  let tbest = Topology.create ~grid:[| 300; 100 |] ~parts:best4 in
  Alcotest.(check bool) "beats 1x4" true
    (Topology.comm_points_per_rank tbest ~depth:[| 1; 1 |]
    < Topology.comm_points_per_rank t14 ~depth:[| 1; 1 |])

let test_invalid_partitions () =
  Alcotest.(check bool) "too many parts rejected" true
    (match Topology.create ~grid:[| 4 |] ~parts:[| 5 |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "zero parts rejected" true
    (match Topology.create ~grid:[| 4 |] ~parts:[| 0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* qcheck: random topologies keep the cover/disjoint/balance invariants *)
let gen_topo =
  QCheck.Gen.(
    let* nd = int_range 1 3 in
    let* grid = array_repeat nd (int_range 4 30) in
    let* parts =
      array_repeat nd (int_range 1 4) >>= fun p ->
      return (Array.mapi (fun i x -> min x grid.(i)) p)
    in
    return (grid, parts))

let arb_topo =
  QCheck.make
    ~print:(fun (g, p) ->
      Printf.sprintf "grid=[%s] parts=[%s]"
        (String.concat ";" (Array.to_list (Array.map string_of_int g)))
        (String.concat ";" (Array.to_list (Array.map string_of_int p))))
    gen_topo

let prop_blocks_cover =
  QCheck.Test.make ~count:200 ~name:"blocks cover the grid exactly once"
    arb_topo (fun (grid, parts) ->
      let t = Topology.create ~grid ~parts in
      let total =
        List.fold_left
          (fun acc r -> acc + Block.points (Topology.block t r))
          0
          (List.init (Topology.nranks t) Fun.id)
      in
      total = Array.fold_left ( * ) 1 grid)

let prop_balance =
  QCheck.Test.make ~count:200 ~name:"per-dimension imbalance is at most one line"
    arb_topo (fun (grid, parts) ->
      let t = Topology.create ~grid ~parts in
      List.for_all
        (fun r ->
          let b = Topology.block t r in
          Array.for_all Fun.id
            (Array.init (Array.length grid) (fun d ->
                 let e = Block.extent b d in
                 let q = grid.(d) / parts.(d) in
                 e = q || e = q + 1)))
        (List.init (Topology.nranks t) Fun.id))

let prop_owner_total =
  QCheck.Test.make ~count:100 ~name:"owner is defined for every grid point"
    arb_topo (fun (grid, parts) ->
      let t = Topology.create ~grid ~parts in
      let ok = ref true in
      let rec go idx d =
        if d = Array.length grid then begin
          let r = Topology.owner t idx in
          if not (Block.contains (Topology.block t r) idx) then ok := false
        end
        else
          for x = 1 to grid.(d) do
            idx.(d) <- x;
            go idx (d + 1)
          done
      in
      go (Array.make (Array.length grid) 1) 0;
      !ok)


let test_total_comm_points () =
  let t = Topology.create ~grid:[| 10; 10 |] ~parts:[| 2; 1 |] in
  (* two ranks, one face of 10 points each, depth 1 *)
  Alcotest.(check int) "total both sides" 20
    (Topology.total_comm_points t ~depth:[| 1; 1 |]);
  let t3 = Topology.create ~grid:[| 12; 10 |] ~parts:[| 3; 1 |] in
  (* edge ranks 1 face, middle rank 2 faces: 4 x 10 *)
  Alcotest.(check int) "total with interior" 40
    (Topology.total_comm_points t3 ~depth:[| 1; 1 |])

let test_block_of_coords_matches_rank () =
  let t = Topology.create ~grid:[| 9; 6 |] ~parts:[| 3; 2 |] in
  for r = 0 to Topology.nranks t - 1 do
    let c = Topology.coords_of_rank t r in
    Alcotest.(check bool) "same block" true
      (Block.equal (Topology.block t r) (Topology.block_of_coords t c))
  done


let suite =
  [
    ("block basics", `Quick, test_block_basics);
    ("split balance", `Quick, test_split_balance);
    ("cover disjoint", `Quick, test_cover_disjoint);
    ("owner matches block", `Quick, test_owner_matches_block);
    ("rank/coords roundtrip", `Quick, test_rank_coords_roundtrip);
    ("neighbors", `Quick, test_neighbors);
    ("is_cut", `Quick, test_is_cut);
    ("comm points", `Quick, test_comm_points);
    ("total comm points", `Quick, test_total_comm_points);
    ("block of coords", `Quick, test_block_of_coords_matches_rank);
    ("factorizations", `Quick, test_factorizations);
    ("search prefers long dimension", `Quick, test_search_prefers_long_dimension);
    ("invalid partitions", `Quick, test_invalid_partitions);
    QCheck_alcotest.to_alcotest prop_blocks_cover;
    QCheck_alcotest.to_alcotest prop_balance;
    QCheck_alcotest.to_alcotest prop_owner_total;
  ]
