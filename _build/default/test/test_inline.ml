(** Tests for whole-program inlining (§5.3 substrate): parameter
    substitution, COMMON positional matching, label renumbering, RETURN
    handling, and error cases. *)

open Autocfd_fortran

let parse = Parser.parse

let inline src = Inline.program (parse src)

let run_inlined src ?(input = []) () =
  let u = inline src in
  let m = Autocfd_interp.Machine.create ~input u in
  Autocfd_interp.Machine.run m;
  m

let test_simple_call () =
  let m =
    run_inlined
      {|
      program t
      real x
      common /c/ x
      x = 1.0
      call bump
      call bump
      write(*,*) x
      end

      subroutine bump
      real x
      common /c/ x
      x = x + 1.0
      return
      end
|}
      ()
  in
  Alcotest.(check (list string)) "x bumped twice" [ "3" ]
    (Autocfd_interp.Machine.output m)

let test_no_calls_remain () =
  let u =
    inline
      {|
      program t
      real x
      common /c/ x
      call a
      end
      subroutine a
      real x
      common /c/ x
      x = 1.0
      call b
      return
      end
      subroutine b
      real x
      common /c/ x
      x = x + 1.0
      return
      end
|}
  in
  Ast.iter_stmts
    (fun st ->
      match st.Ast.s_kind with
      | Ast.Call (n, _) -> Alcotest.failf "CALL %s remains after inlining" n
      | _ -> ())
    u.Ast.u_body

let test_dummy_scalar_substitution () =
  let m =
    run_inlined
      {|
      program t
      real y
      y = 0.0
      call setval(y, 2.5)
      write(*,*) y
      end

      subroutine setval(out, v)
      real out, v
      out = v * 2.0
      return
      end
|}
      ()
  in
  Alcotest.(check (list string)) "out param written" [ "5" ]
    (Autocfd_interp.Machine.output m)

let test_array_dummy () =
  let m =
    run_inlined
      {|
      program t
      parameter (n = 4)
      real a(n)
      integer i
      do i = 1, n
        a(i) = 0.0
      end do
      call fill(a, 3.0)
      write(*,*) a(1), a(4)
      end

      subroutine fill(arr, v)
      parameter (n = 4)
      real arr(n), v
      integer i
      do i = 1, n
        arr(i) = v
      end do
      return
      end
|}
      ()
  in
  Alcotest.(check (list string)) "array filled" [ "3 3" ]
    (Autocfd_interp.Machine.output m)

let test_common_positional_renaming () =
  (* the callee names the COMMON members differently: storage must still
     be shared positionally *)
  let m =
    run_inlined
      {|
      program t
      real p, q
      common /blk/ p, q
      p = 1.0
      q = 2.0
      call swapped
      write(*,*) p, q
      end

      subroutine swapped
      real alpha, beta
      common /blk/ alpha, beta
      alpha = alpha + 10.0
      beta = beta + 20.0
      return
      end
|}
      ()
  in
  Alcotest.(check (list string)) "positional common" [ "11 22" ]
    (Autocfd_interp.Machine.output m)

let test_local_renaming_no_capture () =
  (* both units use a local named tmp: they must not collide *)
  let m =
    run_inlined
      {|
      program t
      real tmp, r
      common /c/ r
      tmp = 5.0
      call f
      write(*,*) tmp, r
      end

      subroutine f
      real tmp, r
      common /c/ r
      tmp = 100.0
      r = tmp
      return
      end
|}
      ()
  in
  Alcotest.(check (list string)) "no capture" [ "5 100" ]
    (Autocfd_interp.Machine.output m)

let test_label_renumbering () =
  (* both units use label 10: inlining must keep the loops separate *)
  let m =
    run_inlined
      {|
      program t
      real s
      common /c/ s
      integer i
      s = 0.0
      do 10 i = 1, 3
        s = s + 1.0
 10   continue
      call g
      write(*,*) s
      end

      subroutine g
      real s
      common /c/ s
      integer i
      do 10 i = 1, 4
        s = s + 10.0
 10   continue
      return
      end
|}
      ()
  in
  Alcotest.(check (list string)) "labels independent" [ "43" ]
    (Autocfd_interp.Machine.output m)

let test_early_return () =
  let m =
    run_inlined
      {|
      program t
      real x
      common /c/ x
      x = 1.0
      call maybe
      write(*,*) x
      end

      subroutine maybe
      real x
      common /c/ x
      if (x .gt. 0.0) return
      x = -99.0
      return
      end
|}
      ()
  in
  Alcotest.(check (list string)) "early return taken" [ "1" ]
    (Autocfd_interp.Machine.output m)

let test_recursion_rejected () =
  Alcotest.(check bool) "recursion detected" true
    (match
       inline
         {|
      program t
      call a
      end
      subroutine a
      call b
      return
      end
      subroutine b
      call a
      return
      end
|}
     with
    | exception Failure _ -> true
    | _ -> false)

let test_missing_subroutine () =
  Alcotest.(check bool) "missing callee" true
    (match inline "      program t\n      call nope\n      end\n" with
    | exception Failure _ -> true
    | _ -> false)

let test_expression_argument () =
  let m =
    run_inlined
      {|
      program t
      real y
      y = 0.0
      call addto(y, 2.0 + 3.0)
      write(*,*) y
      end

      subroutine addto(out, v)
      real out, v
      out = out + v
      return
      end
|}
      ()
  in
  Alcotest.(check (list string)) "expression arg" [ "5" ]
    (Autocfd_interp.Machine.output m)

let test_assign_to_expression_dummy_rejected () =
  Alcotest.(check bool) "cannot assign an expression dummy" true
    (match
       inline
         {|
      program t
      call bad(1.0 + 2.0)
      end
      subroutine bad(v)
      real v
      v = 0.0
      return
      end
|}
     with
    | exception Failure _ -> true
    | _ -> false)

let suite =
  [
    ("simple call", `Quick, test_simple_call);
    ("no calls remain", `Quick, test_no_calls_remain);
    ("dummy scalar substitution", `Quick, test_dummy_scalar_substitution);
    ("array dummy", `Quick, test_array_dummy);
    ("common positional renaming", `Quick, test_common_positional_renaming);
    ("local renaming no capture", `Quick, test_local_renaming_no_capture);
    ("label renumbering", `Quick, test_label_renumbering);
    ("early return", `Quick, test_early_return);
    ("recursion rejected", `Quick, test_recursion_rejected);
    ("missing subroutine", `Quick, test_missing_subroutine);
    ("expression argument", `Quick, test_expression_argument);
    ("assign to expression dummy", `Quick, test_assign_to_expression_dummy_rejected);
  ]
