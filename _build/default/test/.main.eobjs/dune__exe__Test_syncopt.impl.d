test/test_syncopt.ml: Alcotest Array Ast Autocfd_analysis Autocfd_apps Autocfd_fortran Autocfd_partition Autocfd_syncopt Fun Inline List Parser Printf QCheck QCheck_alcotest String
