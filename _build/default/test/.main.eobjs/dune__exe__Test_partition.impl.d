test/test_partition.ml: Alcotest Array Autocfd_partition Block Fun Hashtbl List Option Printf QCheck QCheck_alcotest String Topology
