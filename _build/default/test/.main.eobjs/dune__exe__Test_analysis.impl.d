test/test_analysis.ml: Alcotest Array Ast Autocfd_analysis Autocfd_codegen Autocfd_fortran Autocfd_interp Autocfd_partition Inline List Parser Printf String
