test/test_fortran.ml: Alcotest Ast Autocfd_fortran Autocfd_interp Directive Float Fmt Format Fun Inline Lexer List Loc Option Parser Pretty Printf QCheck QCheck_alcotest String Token
