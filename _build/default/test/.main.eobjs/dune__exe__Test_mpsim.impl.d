test/test_mpsim.ml: Alcotest Array Autocfd_mpsim List Netmodel Sim
