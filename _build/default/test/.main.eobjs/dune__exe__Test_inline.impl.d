test/test_inline.ml: Alcotest Ast Autocfd_fortran Autocfd_interp Inline Parser
