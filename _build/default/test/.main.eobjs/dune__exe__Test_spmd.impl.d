test/test_spmd.ml: Alcotest Array Autocfd Autocfd_fortran Autocfd_interp Autocfd_mpsim Float List Printf QCheck QCheck_alcotest String
