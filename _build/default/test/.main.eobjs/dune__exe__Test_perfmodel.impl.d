test/test_perfmodel.ml: Alcotest Autocfd Autocfd_apps Autocfd_partition Autocfd_perfmodel List Option Printf
