test/test_apps.ml: Alcotest Array Autocfd Autocfd_analysis Autocfd_apps Autocfd_interp Autocfd_syncopt Float List Printf String
