test/test_mpi_backend.ml: Alcotest Ast Autocfd Autocfd_apps Autocfd_fortran List Loc Parser String
