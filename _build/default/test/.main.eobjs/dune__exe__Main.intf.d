test/main.mli:
