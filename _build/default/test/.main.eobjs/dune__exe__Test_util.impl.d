test/test_util.ml: Alcotest Array Autocfd_util Fun Interval List Prng QCheck QCheck_alcotest String Table
