test/test_interp.ml: Alcotest Autocfd_fortran Autocfd_interp Hashtbl Inline Parser QCheck QCheck_alcotest
