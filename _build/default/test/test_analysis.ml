(** Tests for the analysis library: constant environment, directive
    resolution, the loop-tree definitions 6.1-6.4, the A/R/C/O field-loop
    taxonomy of Fig. 1, stencil/offset extraction, S_LDP dependency pairs
    computed after partitioning, and the mirror-image decomposition. *)

open Autocfd_fortran
module A = Autocfd_analysis
module P = Autocfd_partition

let parse = Parser.parse

let unit_of src = Ast.main_unit (parse src)

(* ------------------------------------------------------------------ *)
(* Env                                                                 *)
(* ------------------------------------------------------------------ *)

let test_env_eval () =
  let env = A.Env.of_alist [ ("n", 10); ("m", 3) ] in
  let e s = A.Env.eval_int env (Parser.parse_expr_string s) in
  Alcotest.(check (option int)) "const" (Some 7) (e "7");
  Alcotest.(check (option int)) "param" (Some 10) (e "n");
  Alcotest.(check (option int)) "arith" (Some 23) (e "2*n + m");
  Alcotest.(check (option int)) "intdiv" (Some 3) (e "n/m");
  Alcotest.(check (option int)) "pow" (Some 1000) (e "n ** m");
  Alcotest.(check (option int)) "max" (Some 10) (e "max(n, m)");
  Alcotest.(check (option int)) "mod" (Some 1) (e "mod(n, m)");
  Alcotest.(check (option int)) "unknown" None (e "n + x");
  Alcotest.(check (option int)) "negative" (Some (-7)) (e "m - n")

let test_env_of_unit_chained () =
  let u =
    unit_of
      {|
      program t
      parameter (n = 8, m = n * 2, k = m + 1)
      end
|}
  in
  let env = A.Env.of_unit u in
  Alcotest.(check (option int)) "chained params" (Some 17)
    (A.Env.lookup env "k")

(* ------------------------------------------------------------------ *)
(* Grid_info                                                           *)
(* ------------------------------------------------------------------ *)

let packed_src =
  {|
c$acfd grid(ni, nj)
c$acfd status(u, q)
c$acfd dist(u, 2)
      program t
      parameter (ni = 12, nj = 8)
      real u(ni, nj), q(ni, nj, 5)
      u(1, 1) = 0.0
      end
|}

let test_grid_info_resolution () =
  let gi = A.Grid_info.of_program (parse packed_src) in
  Alcotest.(check int) "ndims" 2 (A.Grid_info.ndims gi);
  Alcotest.(check bool) "grid extents" true (gi.A.Grid_info.grid = [| 12; 8 |]);
  Alcotest.(check (option int)) "u dim 0" (Some 0)
    (A.Grid_info.grid_dim_of gi "u" 0);
  Alcotest.(check (option int)) "u dim 1" (Some 1)
    (A.Grid_info.grid_dim_of gi "u" 1);
  (* the packed 3rd dimension of q is not a status dimension *)
  Alcotest.(check (option int)) "q packed dim" None
    (A.Grid_info.grid_dim_of gi "q" 2);
  Alcotest.(check int) "dist override" 2 (A.Grid_info.distance gi "u");
  Alcotest.(check int) "dist default" 1 (A.Grid_info.distance gi "q")

let test_grid_info_errors () =
  let bad_missing_grid = "      program t\n      end\n" in
  Alcotest.(check bool) "missing grid directive" true
    (match A.Grid_info.of_program (parse bad_missing_grid) with
    | exception Failure _ -> true
    | _ -> false);
  let bad_array =
    "c$acfd grid(n)\nc$acfd status(zz)\n      program t\n\
     \      parameter (n = 4)\n      end\n"
  in
  Alcotest.(check bool) "undeclared status array" true
    (match A.Grid_info.of_program (parse bad_array) with
    | exception Failure _ -> true
    | _ -> false)

let test_status_explicit_dims () =
  let src =
    {|
c$acfd grid(n)
c$acfd status(w:1)
      program t
      parameter (n = 6)
      real w(n, 4)
      w(1, 1) = 0.0
      end
|}
  in
  let gi = A.Grid_info.of_program (parse src) in
  Alcotest.(check (option int)) "explicit first dim" (Some 0)
    (A.Grid_info.grid_dim_of gi "w" 0);
  Alcotest.(check (option int)) "rest packed" None
    (A.Grid_info.grid_dim_of gi "w" 1)

(* ------------------------------------------------------------------ *)
(* Loops: definitions 6.1-6.4                                          *)
(* ------------------------------------------------------------------ *)

let loops_src =
  {|
      program t
      integer i, j, k, m
      real x
      do i = 1, 10
        do j = 1, 10
          x = 1.0
        end do
        do k = 1, 10
          x = 2.0
        end do
      end do
      do m = 1, 5
        x = 3.0
      end do
      end
|}

let test_loop_tree () =
  let u = unit_of loops_src in
  let t = A.Loops.build u in
  let loops = A.Loops.loops t in
  Alcotest.(check int) "four loops" 4 (List.length loops);
  let by_var v =
    List.find (fun l -> l.A.Loops.lp_var = v) loops
  in
  let li = by_var "i" and lj = by_var "j" and lk = by_var "k"
  and lm = by_var "m" in
  (* Def 6.1 / 6.2 *)
  Alcotest.(check bool) "j inner of i" true
    (A.Loops.is_inner t ~inner:lj.A.Loops.lp_id ~outer:li.A.Loops.lp_id);
  Alcotest.(check bool) "j direct inner of i" true
    (A.Loops.is_direct_inner t ~inner:lj.A.Loops.lp_id ~outer:li.A.Loops.lp_id);
  Alcotest.(check bool) "m not inner of i" false
    (A.Loops.is_inner t ~inner:lm.A.Loops.lp_id ~outer:li.A.Loops.lp_id);
  (* Def 6.3: j and k adjacent; i and m adjacent (both top level) *)
  Alcotest.(check bool) "j || k" true
    (A.Loops.adjacent t lj.A.Loops.lp_id lk.A.Loops.lp_id);
  Alcotest.(check bool) "i || m" true
    (A.Loops.adjacent t li.A.Loops.lp_id lm.A.Loops.lp_id);
  Alcotest.(check bool) "i not || j" false
    (A.Loops.adjacent t li.A.Loops.lp_id lj.A.Loops.lp_id);
  (* Def 6.4: i is not simple (contains adjacent j,k); j, k, m are *)
  Alcotest.(check bool) "i not simple" false (A.Loops.is_simple t li.A.Loops.lp_id);
  Alcotest.(check bool) "j simple" true (A.Loops.is_simple t lj.A.Loops.lp_id);
  Alcotest.(check bool) "m simple" true (A.Loops.is_simple t lm.A.Loops.lp_id);
  Alcotest.(check int) "top level" 2 (List.length (A.Loops.top_level t))

(* ------------------------------------------------------------------ *)
(* Field loops: the Fig. 1 taxonomy                                    *)
(* ------------------------------------------------------------------ *)

let fig1_src =
  {|
c$acfd grid(m, n)
c$acfd status(v, w)
      program fig1
      parameter (m = 10, n = 8)
      real v(m, n), w(m, n)
      real x
      integer i, j
c  A-type: assignment only
      do i = 1, m
        do j = 1, n
          v(i, j) = 0.5
        end do
      end do
c  R-type: reference only
      do i = 1, m
        do j = 1, n
          w(i, j) = v(i, j) + 1.0
        end do
      end do
c  C-type: combined
      do i = 2, m - 1
        do j = 1, n
          v(i, j) = v(i-1, j) * 0.5
        end do
      end do
c  O-type: unrelated
      do i = 1, 3
        x = float(i)
      end do
      write(*,*) x
      end
|}

let fig1_summaries () =
  let p = parse fig1_src in
  let gi = A.Grid_info.of_program p in
  (gi, A.Field_loop.analyze_unit gi (Ast.main_unit p))

let test_fig1_classification () =
  let _, summaries = fig1_summaries () in
  Alcotest.(check int) "three field loop heads" 3 (List.length summaries);
  let types =
    List.map (fun s -> A.Field_loop.ltype s "v") summaries
  in
  Alcotest.(check bool) "A then R then C" true
    (types = [ A.Field_loop.A; A.Field_loop.R; A.Field_loop.C ]);
  (* the second loop assigns w *)
  Alcotest.(check bool) "w assigned in loop 2" true
    (A.Field_loop.ltype (List.nth summaries 1) "w" = A.Field_loop.A);
  Alcotest.(check bool) "w O-type in loop 1" true
    (A.Field_loop.ltype (List.hd summaries) "w" = A.Field_loop.O)

let test_offsets_and_self_dependence () =
  let _, summaries = fig1_summaries () in
  let third = List.nth summaries 2 in
  Alcotest.(check bool) "self dependent" true
    (A.Field_loop.self_dependent third "v");
  let first = List.hd summaries in
  Alcotest.(check bool) "A-type not self dependent" false
    (A.Field_loop.self_dependent first "v");
  match List.assoc_opt "v" third.A.Field_loop.fs_uses with
  | Some u ->
      Alcotest.(check (list int)) "read offsets dim 0" [ -1 ]
        u.A.Field_loop.au_read_offsets.(0);
      Alcotest.(check (list int)) "write offsets dim 0" [ 0 ]
        u.A.Field_loop.au_write_offsets.(0)
  | None -> Alcotest.fail "expected use of v"

let test_var_dim_mapping () =
  let _, summaries = fig1_summaries () in
  let s = List.hd summaries in
  Alcotest.(check bool) "i -> dim 0, j -> dim 1" true
    (List.sort compare s.A.Field_loop.fs_var_dims = [ ("i", 0); ("j", 1) ]);
  Alcotest.(check (list int)) "swept dims" [ 0; 1 ]
    s.A.Field_loop.fs_swept_dims

let test_fixed_reads_and_reductions () =
  let src =
    {|
c$acfd grid(m, n)
c$acfd status(v)
      program t
      parameter (m = 10, n = 8)
      real v(m, n)
      real errmax, total
      integer i, j
      do j = 1, n
        v(1, j) = v(2, j)
      end do
      errmax = 0.0
      total = 0.0
      do i = 1, m
        do j = 1, n
          errmax = max(errmax, abs(v(i, j)))
          total = total + v(i, j)
        end do
      end do
      write(*,*) errmax, total
      end
|}
  in
  let p = parse src in
  let gi = A.Grid_info.of_program p in
  let summaries = A.Field_loop.analyze_unit gi (Ast.main_unit p) in
  Alcotest.(check int) "two heads" 2 (List.length summaries);
  let bc = List.hd summaries in
  (match List.assoc_opt "v" bc.A.Field_loop.fs_uses with
  | Some u ->
      Alcotest.(check bool) "fixed write (0,1)" true
        (List.mem (0, 1) u.A.Field_loop.au_fixed_writes);
      Alcotest.(check bool) "fixed read (0,2)" true
        (List.mem (0, 2) u.A.Field_loop.au_fixed_reads)
  | None -> Alcotest.fail "v use");
  let red = List.nth summaries 1 in
  let ops =
    List.map (fun r -> (r.A.Field_loop.red_var, r.A.Field_loop.red_op))
      red.A.Field_loop.fs_reductions
  in
  Alcotest.(check bool) "max and sum reductions" true
    (List.mem ("errmax", `Max) ops && List.mem ("total", `Sum) ops)

let test_hazard_dims () =
  (* writing plane jf+1 while reading plane jf that the loop also writes *)
  let src =
    {|
c$acfd grid(m, n)
c$acfd status(v)
      program t
      parameter (m = 10, n = 8, jf = 4)
      real v(m, n)
      integer i
      do i = 2, m - 1
        v(i, jf) = v(i, jf) + 1.0
        v(i, jf+1) = v(i, jf) * 0.5
      end do
      end
|}
  in
  let p = parse src in
  let gi = A.Grid_info.of_program p in
  let summaries = A.Field_loop.analyze_unit gi (Ast.main_unit p) in
  let s = List.hd summaries in
  Alcotest.(check (list int)) "hazard on dim 1" [ 1 ]
    s.A.Field_loop.fs_hazard_dims;
  (* the safe single-plane self-update has no hazard *)
  let safe =
    {|
c$acfd grid(m, n)
c$acfd status(v)
      program t
      parameter (m = 10, n = 8, jf = 4)
      real v(m, n)
      integer i
      do i = 2, m - 1
        v(i, jf) = v(i, jf) + 1.0
      end do
      end
|}
  in
  let p = parse safe in
  let gi = A.Grid_info.of_program p in
  let summaries = A.Field_loop.analyze_unit gi (Ast.main_unit p) in
  Alcotest.(check (list int)) "no hazard" []
    (List.hd summaries).A.Field_loop.fs_hazard_dims

(* ------------------------------------------------------------------ *)
(* S_LDP: analysis after partitioning                                  *)
(* ------------------------------------------------------------------ *)

let jacobi_src =
  {|
c$acfd grid(m, n)
c$acfd status(u, unew)
      program t
      parameter (m = 12, n = 10)
      real u(m, n), unew(m, n)
      integer i, j, it
      do i = 1, m
        do j = 1, n
          u(i, j) = 1.0
        end do
      end do
      do it = 1, 5
        do i = 2, m - 1
          do j = 2, n - 1
            unew(i, j) = 0.25 * (u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1))
          end do
        end do
        do i = 2, m - 1
          do j = 2, n - 1
            u(i, j) = unew(i, j)
          end do
        end do
      end do
      end
|}

let sldp_of src parts =
  let p = parse src in
  let gi = A.Grid_info.of_program p in
  let u = Inline.program p in
  let loops = A.Loops.build u in
  let summaries = A.Field_loop.analyze_unit gi u in
  let topo = P.Topology.create ~grid:gi.A.Grid_info.grid ~parts in
  A.Sldp.compute gi topo loops summaries

let test_sldp_jacobi () =
  let sldp = sldp_of jacobi_src [| 2; 1 |] in
  (* pairs: init -> jacobi (forward), copy -> jacobi (backward);
     unew is read at offset 0 only: no pair for it *)
  Alcotest.(check int) "two pairs" 2 (List.length sldp.A.Sldp.pairs);
  let kinds =
    List.map (fun p -> p.A.Sldp.dp_kind) sldp.A.Sldp.pairs
  in
  Alcotest.(check bool) "forward + backward" true
    (List.exists (fun k -> k = A.Sldp.Forward) kinds
    && List.exists (function A.Sldp.Backward _ -> true | _ -> false) kinds);
  List.iter
    (fun p ->
      Alcotest.(check (list string)) "carries only u" [ "u" ]
        (List.map fst p.A.Sldp.dp_arrays))
    sldp.A.Sldp.pairs

let test_sldp_partition_awareness () =
  (* a loop whose reads cross only dimension 0 generates no pairs when
     only dimension 1 is cut: this is "analysis after partitioning" *)
  let src =
    {|
c$acfd grid(m, n)
c$acfd status(u, w)
      program t
      parameter (m = 12, n = 10)
      real u(m, n), w(m, n)
      integer i, j, it
      do i = 1, m
        do j = 1, n
          u(i, j) = 1.0
        end do
      end do
      do it = 1, 3
        do i = 2, m - 1
          do j = 1, n
            w(i, j) = u(i-1, j) + u(i+1, j)
          end do
        end do
        do i = 1, m
          do j = 1, n
            u(i, j) = w(i, j)
          end do
        end do
      end do
      end
|}
  in
  let cut0 = sldp_of src [| 2; 1 |] in
  let cut1 = sldp_of src [| 1; 2 |] in
  Alcotest.(check bool) "pairs when dim 0 cut" true
    (List.length cut0.A.Sldp.pairs > 0);
  Alcotest.(check int) "no pairs when only dim 1 cut" 0
    (List.length cut1.A.Sldp.pairs);
  Alcotest.(check int) "count_before respects dims" 0
    (A.Sldp.count_before cut1)

let test_sldp_self_pair () =
  let src =
    {|
c$acfd grid(m, n)
c$acfd status(v)
      program t
      parameter (m = 12, n = 10)
      real v(m, n)
      integer i, j, it
      do i = 1, m
        do j = 1, n
          v(i, j) = 1.0
        end do
      end do
      do it = 1, 3
        do i = 2, m - 1
          do j = 2, n - 1
            v(i, j) = 0.25 * (v(i-1,j) + v(i+1,j) + v(i,j-1) + v(i,j+1))
          end do
        end do
      end do
      end
|}
  in
  let sldp = sldp_of src [| 2; 2 |] in
  let selfs = A.Sldp.self_pairs sldp in
  Alcotest.(check int) "one self pair" 1 (List.length selfs);
  (* plus the wrap-around backward pair feeding the next sweep's halo *)
  Alcotest.(check bool) "backward self exchange pair exists" true
    (List.exists
       (fun p ->
         (match p.A.Sldp.dp_kind with A.Sldp.Backward _ -> true | _ -> false)
         && p.A.Sldp.dp_assign == p.A.Sldp.dp_ref)
       sldp.A.Sldp.pairs)

let test_eliminate_redundant () =
  (* two writers before one reader: only the later writer's pair remains *)
  let src =
    {|
c$acfd grid(m)
c$acfd status(u, w)
      program t
      parameter (m = 16)
      real u(m), w(m)
      integer i
      do i = 1, m
        u(i) = 1.0
      end do
      do i = 2, m - 1
        u(i) = u(i) + 1.0
      end do
      do i = 2, m - 1
        w(i) = u(i-1) + u(i+1)
      end do
      end
|}
  in
  let sldp = sldp_of src [| 2 |] in
  Alcotest.(check int) "two pairs before" 2 (List.length sldp.A.Sldp.pairs);
  let surviving = A.Sldp.eliminate_redundant sldp in
  Alcotest.(check int) "one pair survives" 1 (List.length surviving);
  (* the survivor is the second (nearest) writer *)
  let p = List.hd surviving in
  Alcotest.(check bool) "nearest writer kept" true
    (p.A.Sldp.dp_assign.A.Field_loop.fs_loop.A.Loops.lp_enter
    > (List.hd sldp.A.Sldp.summaries).A.Field_loop.fs_loop.A.Loops.lp_enter)

let test_dep_info_depth_and_dirs () =
  let src =
    {|
c$acfd grid(m)
c$acfd status(u, w)
      program t
      parameter (m = 16)
      real u(m), w(m)
      integer i
      do i = 1, m
        u(i) = 1.0
      end do
      do i = 3, m - 2
        w(i) = u(i-2) + u(i+1)
      end do
      end
|}
  in
  let sldp = sldp_of src [| 2 |] in
  match sldp.A.Sldp.pairs with
  | [ p ] -> (
      match List.assoc_opt "u" p.A.Sldp.dp_arrays with
      | Some info ->
          Alcotest.(check int) "depth 2" 2 info.A.Sldp.di_depth.(0);
          Alcotest.(check bool) "minus dir" true info.A.Sldp.di_minus.(0);
          Alcotest.(check bool) "plus dir" true info.A.Sldp.di_plus.(0)
      | None -> Alcotest.fail "expected u info")
  | ps -> Alcotest.failf "expected 1 pair, got %d" (List.length ps)

(* ------------------------------------------------------------------ *)
(* Mirror-image decomposition                                          *)
(* ------------------------------------------------------------------ *)

let strategy_of src parts =
  let p = parse src in
  let gi = A.Grid_info.of_program p in
  let u = Inline.program p in
  let summaries = A.Field_loop.analyze_unit gi u in
  let topo = P.Topology.create ~grid:gi.A.Grid_info.grid ~parts in
  let env = A.Env.of_unit u in
  let cut g = P.Topology.is_cut topo g in
  List.map
    (fun s -> A.Mirror.strategy ~ndims:(A.Grid_info.ndims gi) env ~cut s)
    summaries

let gs_loop body =
  Printf.sprintf
    {|
c$acfd grid(m, n)
c$acfd status(v)
      program t
      parameter (m = 12, n = 10)
      real v(m, n)
      integer i, j
      do i = 2, m - 1
        do j = 2, n - 1
          %s
        end do
      end do
      end
|}
    body

let test_strategy_jacobi_block () =
  (* reading another array: plain block parallelism *)
  let src =
    {|
c$acfd grid(m, n)
c$acfd status(v, w)
      program t
      parameter (m = 12, n = 10)
      real v(m, n), w(m, n)
      integer i, j
      do i = 2, m - 1
        do j = 2, n - 1
          w(i, j) = v(i-1, j) + v(i+1, j)
        end do
      end do
      end
|}
  in
  Alcotest.(check bool) "block" true
    (strategy_of src [| 2; 2 |] = [ A.Mirror.Block ])

let test_strategy_gauss_seidel_pipeline () =
  let src = gs_loop "v(i,j) = 0.25 * (v(i-1,j) + v(i+1,j) + v(i,j-1) + v(i,j+1))" in
  (match strategy_of src [| 2; 2 |] with
  | [ A.Mirror.Pipeline dims ] ->
      Alcotest.(check bool) "pipeline both dims" true
        (List.map fst dims = [ 0; 1 ])
  | _ -> Alcotest.fail "expected pipeline");
  (* uncut dims need no pipelining *)
  match strategy_of src [| 2; 1 |] with
  | [ A.Mirror.Pipeline [ (0, Ast.Dplus) ] ] -> ()
  | _ -> Alcotest.fail "expected pipeline on dim 0 only"

let test_strategy_anti_only_block () =
  (* reads only upward: pure mirror image, the pre-sweep exchange
     suffices, no pipeline *)
  let src = gs_loop "v(i,j) = 0.5 * (v(i+1,j) + v(i,j+1))" in
  Alcotest.(check bool) "anti-only is block" true
    (strategy_of src [| 2; 2 |] = [ A.Mirror.Block ])

let test_strategy_descending_sweep () =
  let src =
    {|
c$acfd grid(m, n)
c$acfd status(v)
      program t
      parameter (m = 12, n = 10)
      real v(m, n)
      integer i, j
      do i = m - 1, 2, -1
        do j = 2, n - 1
          v(i,j) = 0.5 * (v(i+1,j) + v(i,j-1))
        end do
      end do
      end
|}
  in
  (* descending in i: reading i+1 is the flow direction -> pipeline Dminus *)
  match strategy_of src [| 2; 1 |] with
  | [ A.Mirror.Pipeline [ (0, Ast.Dminus) ] ] -> ()
  | _ -> Alcotest.fail "expected descending pipeline"

let test_strategy_diagonal_illegal () =
  (* u(i+1, j-1) is flow (j dominates) but crosses i-blocks upward:
     coarse pipelining is illegal when i is cut -> Serial *)
  let src =
    {|
c$acfd grid(m, n)
c$acfd status(v)
      program t
      parameter (m = 12, n = 10)
      real v(m, n)
      integer i, j
      do j = 2, n - 1
        do i = 2, m - 1
          v(i,j) = 0.5 * (v(i, j-1) + v(i+1, j-1))
        end do
      end do
      end
|}
  in
  Alcotest.(check bool) "serial when i cut" true
    (strategy_of src [| 2; 1 |] = [ A.Mirror.Serial ]);
  (* legal when only j is cut (all j components of flow vectors <= 0) *)
  match strategy_of src [| 1; 2 |] with
  | [ A.Mirror.Pipeline [ (1, Ast.Dplus) ] ] -> ()
  | _ -> Alcotest.fail "expected pipeline on dim 1"

let test_decompose_vectors () =
  let src = gs_loop "v(i,j) = 0.25 * (v(i-1,j) + v(i+1,j) + v(i,j-1) + v(i,j+1))" in
  let p = parse src in
  let gi = A.Grid_info.of_program p in
  let u = Inline.program p in
  let summaries = A.Field_loop.analyze_unit gi u in
  let env = A.Env.of_unit u in
  match A.Mirror.decompose ~ndims:2 env (List.hd summaries) "v" with
  | Some de ->
      let flow, anti =
        List.partition (fun (_, c) -> c = A.Mirror.Flow) de.A.Mirror.de_vectors
      in
      Alcotest.(check int) "two flow vectors" 2 (List.length flow);
      Alcotest.(check int) "two anti vectors" 2 (List.length anti);
      Alcotest.(check bool) "flow are -1 offsets" true
        (List.for_all
           (fun (v, _) -> Array.fold_left ( + ) 0 v = -1)
           flow)
  | None -> Alcotest.fail "expected decomposition"

let test_serial_directive () =
  let src =
    {|
c$acfd grid(m, n)
c$acfd status(v, w)
      program t
      parameter (m = 12, n = 10)
      real v(m, n), w(m, n)
      integer i, j
c$acfd serial
      do i = 2, m - 1
        do j = 2, n - 1
          w(i, j) = v(i-1, j)
        end do
      end do
      end
|}
  in
  Alcotest.(check bool) "forced serial" true
    (strategy_of src [| 2; 2 |] = [ A.Mirror.Serial ])


(* ------------------------------------------------------------------ *)
(* Loop skewing (paper's wavefront alternative for Fig. 3(a))          *)
(* ------------------------------------------------------------------ *)

let run_outputs src =
  let u = Autocfd_fortran.Inline.program (Autocfd_fortran.Parser.parse src) in
  let m = Autocfd_interp.Machine.create u in
  Autocfd_interp.Machine.run m;
  (Autocfd_interp.Machine.output m, m)

let skew_and_run src expected_count =
  let p = Autocfd_fortran.Parser.parse src in
  let gi = A.Grid_info.of_program p in
  let u = Autocfd_fortran.Inline.program p in
  let u', n = Autocfd_codegen.Skew.transform_unit gi u in
  Alcotest.(check int) "nests skewed" expected_count n;
  let m = Autocfd_interp.Machine.create u' in
  Autocfd_interp.Machine.run m;
  (Autocfd_interp.Machine.output m, m)

let gs_src =
  {|
c$acfd grid(m, n)
c$acfd status(v)
      program t
      parameter (m = 13, n = 11)
      real v(m, n)
      integer i, j, it
      do i = 1, m
        do j = 1, n
          v(i, j) = float(i * 2 + j)
        end do
      end do
      do it = 1, 4
        do i = 2, m - 1
          do j = 2, n - 1
            v(i,j) = 0.25 * (v(i-1,j) + v(i+1,j) + v(i,j-1) + v(i,j+1))
          end do
        end do
      end do
      write(*,*) v(m/2, n/2), v(2, 2), v(m-1, n-1)
      end
|}

let test_skew_gauss_seidel_equivalent () =
  let out0, m0 = run_outputs gs_src in
  let out1, m1 = skew_and_run gs_src 1 in
  Alcotest.(check (list string)) "same printed values" out0 out1;
  let v0 = Autocfd_interp.Machine.array m0 "v" in
  let v1 = Autocfd_interp.Machine.array m1 "v" in
  Alcotest.(check (float 0.0)) "bit-identical field" 0.0
    (Autocfd_interp.Value.max_abs_diff v0 v1)

let test_skew_recurrence_equivalent () =
  (* Fig. 3(a): one-directional recurrence *)
  let src =
    {|
c$acfd grid(m, n)
c$acfd status(v)
      program t
      parameter (m = 12, n = 9)
      real v(m, n)
      integer i, j
      do i = 1, m
        do j = 1, n
          v(i, j) = float(i + j)
        end do
      end do
      do i = 2, m
        do j = 2, n
          v(i, j) = 0.5 * (v(i-1, j) + v(i, j-1))
        end do
      end do
      write(*,*) v(m, n)
      end
|}
  in
  let out0, _ = run_outputs src in
  let out1, _ = skew_and_run src 1 in
  Alcotest.(check (list string)) "same result" out0 out1

let test_skew_rejects_illegal_diagonal () =
  (* read of v(i+1, j-1): distance (1,-1) becomes (0,-1) after skewing —
     illegal, the nest must be left alone *)
  let src =
    {|
c$acfd grid(m, n)
c$acfd status(v)
      program t
      parameter (m = 12, n = 9)
      real v(m, n)
      integer i, j
      do i = 1, m
        do j = 1, n
          v(i, j) = float(i * j)
        end do
      end do
      do i = 2, m - 1
        do j = 2, n - 1
          v(i, j) = 0.5 * (v(i, j-1) + v(i+1, j-1))
        end do
      end do
      write(*,*) v(2, 2)
      end
|}
  in
  let _, n =
    let p = Autocfd_fortran.Parser.parse src in
    let gi = A.Grid_info.of_program p in
    Autocfd_codegen.Skew.transform_unit gi
      (Autocfd_fortran.Inline.program p)
  in
  Alcotest.(check int) "illegal nest not skewed" 0 n

let test_skew_rejects_non_self_dependent () =
  (* a Jacobi loop has nothing to skew *)
  let src =
    {|
c$acfd grid(m, n)
c$acfd status(v, w)
      program t
      parameter (m = 12, n = 9)
      real v(m, n), w(m, n)
      integer i, j
      do i = 1, m
        do j = 1, n
          v(i, j) = 1.0
          w(i, j) = 0.0
        end do
      end do
      do i = 2, m - 1
        do j = 2, n - 1
          w(i, j) = v(i-1, j) + v(i, j-1)
        end do
      end do
      end
|}
  in
  let _, n =
    let p = Autocfd_fortran.Parser.parse src in
    let gi = A.Grid_info.of_program p in
    Autocfd_codegen.Skew.transform_unit gi
      (Autocfd_fortran.Inline.program p)
  in
  Alcotest.(check int) "jacobi not skewed" 0 n

let test_skew_output_shape () =
  (* the skewed source contains the diagonal loop over acfdsk *)
  let p = Autocfd_fortran.Parser.parse gs_src in
  let gi = A.Grid_info.of_program p in
  let u, _ =
    Autocfd_codegen.Skew.transform_unit gi (Autocfd_fortran.Inline.program p)
  in
  let text = Autocfd_fortran.Pretty.unit_ u in
  let contains needle =
    let nh = String.length text and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "diagonal loop" true (contains "do acfdsk = ");
  Alcotest.(check bool) "substituted index" true (contains "v(acfdsk-j");
  (* and it still re-parses *)
  match Autocfd_fortran.Parser.parse text with
  | _ -> ()
  | exception Autocfd_fortran.Loc.Error (loc, msg) ->
      Alcotest.failf "skewed source does not re-parse at %a: %s"
        Autocfd_fortran.Loc.pp loc msg


let suite =
  [
    ("env eval", `Quick, test_env_eval);
    ("env chained params", `Quick, test_env_of_unit_chained);
    ("grid_info resolution", `Quick, test_grid_info_resolution);
    ("grid_info errors", `Quick, test_grid_info_errors);
    ("status explicit dims", `Quick, test_status_explicit_dims);
    ("loop tree defs 6.1-6.4", `Quick, test_loop_tree);
    ("fig1 A/R/C/O", `Quick, test_fig1_classification);
    ("offsets + self dependence", `Quick, test_offsets_and_self_dependence);
    ("var-dim mapping", `Quick, test_var_dim_mapping);
    ("fixed reads + reductions", `Quick, test_fixed_reads_and_reductions);
    ("hazard dims", `Quick, test_hazard_dims);
    ("sldp jacobi", `Quick, test_sldp_jacobi);
    ("sldp partition awareness", `Quick, test_sldp_partition_awareness);
    ("sldp self pair", `Quick, test_sldp_self_pair);
    ("eliminate redundant", `Quick, test_eliminate_redundant);
    ("dep info depth/dirs", `Quick, test_dep_info_depth_and_dirs);
    ("strategy: jacobi block", `Quick, test_strategy_jacobi_block);
    ("strategy: gauss-seidel pipeline", `Quick, test_strategy_gauss_seidel_pipeline);
    ("strategy: anti-only block", `Quick, test_strategy_anti_only_block);
    ("strategy: descending sweep", `Quick, test_strategy_descending_sweep);
    ("strategy: diagonal illegal", `Quick, test_strategy_diagonal_illegal);
    ("decompose vectors", `Quick, test_decompose_vectors);
    ("serial directive", `Quick, test_serial_directive);
    ("skew: gauss-seidel equivalent", `Quick, test_skew_gauss_seidel_equivalent);
    ("skew: recurrence equivalent", `Quick, test_skew_recurrence_equivalent);
    ("skew: rejects illegal diagonal", `Quick, test_skew_rejects_illegal_diagonal);
    ("skew: rejects non-self-dependent", `Quick, test_skew_rejects_non_self_dependent);
    ("skew: output shape", `Quick, test_skew_output_shape);
  ]
