examples/cavity.mli:
