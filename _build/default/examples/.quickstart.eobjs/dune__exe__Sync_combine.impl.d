examples/sync_combine.ml: Autocfd Autocfd_fortran Autocfd_interp Autocfd_syncopt Float List Printf String
