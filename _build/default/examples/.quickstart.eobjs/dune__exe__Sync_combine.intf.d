examples/sync_combine.mli:
