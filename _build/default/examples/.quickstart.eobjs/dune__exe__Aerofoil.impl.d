examples/aerofoil.ml: Array Autocfd Autocfd_analysis Autocfd_apps Autocfd_interp Autocfd_perfmodel Autocfd_syncopt Float List Printf String
