examples/quickstart.mli:
