examples/quickstart.ml: Autocfd Autocfd_interp Autocfd_mpsim Autocfd_syncopt List Printf String
