examples/aerofoil.mli:
