examples/cavity.ml: Array Autocfd Autocfd_analysis Autocfd_apps Autocfd_interp Autocfd_syncopt Float List Printf
