examples/sprayer.mli:
