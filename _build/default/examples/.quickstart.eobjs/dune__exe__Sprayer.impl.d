examples/sprayer.ml: Array Autocfd Autocfd_apps Autocfd_interp Float List Printf
