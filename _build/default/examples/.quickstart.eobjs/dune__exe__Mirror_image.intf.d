examples/mirror_image.mli:
