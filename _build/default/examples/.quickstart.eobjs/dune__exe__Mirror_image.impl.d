examples/mirror_image.ml: Array Autocfd Autocfd_analysis Autocfd_codegen Autocfd_fortran Autocfd_interp Float List Printf String
