lib/analysis/env.pp.ml: Ast Autocfd_fortran Float Hashtbl List Option Pretty Printf
