lib/analysis/sldp.pp.mli: Autocfd_partition Field_loop Format Grid_info Loops Topology
