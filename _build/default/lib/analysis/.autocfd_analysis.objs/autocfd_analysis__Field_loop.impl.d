lib/analysis/field_loop.pp.ml: Array Ast Autocfd_fortran Env Fun Grid_info Hashtbl List Loops Option Ppx_deriving_runtime
