lib/analysis/field_loop.pp.mli: Ast Autocfd_fortran Env Grid_info Loops Ppx_deriving_runtime
