lib/analysis/mirror.pp.ml: Array Ast Autocfd_fortran Env Field_loop Fun List Loops Option
