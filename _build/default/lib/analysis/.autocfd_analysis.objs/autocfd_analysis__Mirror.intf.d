lib/analysis/mirror.pp.mli: Ast Autocfd_fortran Env Field_loop
