lib/analysis/grid_info.pp.mli: Ast Autocfd_fortran Format
