lib/analysis/loops.pp.mli: Ast Autocfd_fortran
