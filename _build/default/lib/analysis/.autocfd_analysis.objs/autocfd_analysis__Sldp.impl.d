lib/analysis/sldp.pp.ml: Array Autocfd_fortran Autocfd_partition Field_loop Format Fun Grid_info Hashtbl List Loops Printf String Topology
