lib/analysis/loops.pp.ml: Ast Autocfd_fortran Hashtbl List Option
