lib/analysis/env.pp.mli: Ast Autocfd_fortran
