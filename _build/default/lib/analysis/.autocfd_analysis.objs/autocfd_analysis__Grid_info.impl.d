lib/analysis/grid_info.pp.ml: Array Ast Autocfd_fortran Directive Env Format List Option Printf String
