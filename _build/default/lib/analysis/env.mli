(** Compile-time constant environment of a program unit: PARAMETER
    constants, used to evaluate array bounds and grid extents. *)

open Autocfd_fortran

type t

val of_unit : Ast.program_unit -> t
(** Builds the environment from the unit's PARAMETER statements (evaluated
    in order, so later parameters may reference earlier ones). *)

val of_alist : (string * int) list -> t
val lookup : t -> string -> int option

val eval_int : t -> Ast.expr -> int option
(** Fold an expression to an integer constant if possible (integer
    arithmetic, parameters, intrinsic [max]/[min]/[abs]/[mod]). *)

val eval_int_exn : t -> Ast.expr -> int
(** @raise Failure when the expression is not compile-time constant. *)
