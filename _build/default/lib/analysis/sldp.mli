(** The set of field-loop dependency pairs, S_LDP (paper §4.2), computed
    {e after partitioning}: a pair is recorded only when the reference
    actually crosses a demarcation line of the chosen partition.

    Pairs relate field-loop heads of the {e inlined} program, so call sites
    contribute one instance each (§5.3). *)

open Autocfd_partition

(** Data one pair must communicate for one array. *)
type dep_info = {
  di_dims : int list;  (** cut grid dimensions the dependence crosses *)
  di_depth : int array;  (** halo depth needed per grid dimension *)
  di_minus : bool array;  (** per dim: reads reach lower neighbors *)
  di_plus : bool array;  (** per dim: reads reach upper neighbors *)
}

type kind =
  | Forward  (** the A-loop precedes the R-loop in program order *)
  | Backward of int
      (** the dependence wraps around the back edge of the enclosing loop
          with this statement id — either a DO statement or the GOTO of a
          backward-jump (while-style) loop *)
  | Self  (** self-dependent field loop (paper Fig. 3) *)

type pair = {
  dp_assign : Field_loop.summary;
  dp_ref : Field_loop.summary;
  dp_arrays : (string * dep_info) list;
  dp_kind : kind;
}

type t = {
  pairs : pair list;  (** complete S_LDP (before optimization) *)
  loops : Loops.t;
  summaries : Field_loop.summary list;
  gi : Grid_info.t;
  topo : Topology.t;
  virtual_spans : (int * (int * int)) list;
      (** backward-GOTO iteration loops: (goto statement id, clock span
          from the labelled target to the jump) — carrying loops for
          Backward pairs just like DO loops (the paper's while-loop
          optimization) *)
}

val compute :
  Grid_info.t -> Topology.t -> Loops.t -> Field_loop.summary list -> t
(** [compute gi topo loops summaries] builds S_LDP for one (inlined)
    program unit. *)

val non_self : t -> pair list
val self_pairs : t -> pair list

val eliminate_redundant : t -> pair list
(** Drops a pair when another assignment to the same data executes between
    the pair's endpoints (the classical redundant-synchronization
    elimination the paper contrasts with); keeps [Self] pairs out. *)

val pair_dims : pair -> int list
(** Cut dimensions a pair crosses (union over its arrays). *)

val count_before : t -> int
(** Synchronization points before optimization — one per (pair, crossed
    dimension), the paper's Table 1 "before" column (the near-additivity
    of the paper's two-dimensional partitions shows each preliminary
    synchronization talks to the neighbors along one dimension). *)

val carrying_span : t -> int -> int * int
(** Clock span of a Backward pair's carrying loop (DO or virtual). *)

val merge_info : dep_info -> dep_info -> dep_info
val pp_pair : Format.formatter -> pair -> unit

val crossing_info :
  Grid_info.t -> Topology.t -> string -> Field_loop.summary -> dep_info option
(** What a reader loop needs of one array across the partition's
    demarcation lines; [None] when nothing crosses.  Exposed for the
    synchronization optimizer. *)
