open Autocfd_fortran

type t = (string, int) Hashtbl.t

let rec eval_int env (e : Ast.expr) =
  let open Ast in
  let lift2 f a b =
    match (eval_int env a, eval_int env b) with
    | Some x, Some y -> f x y
    | _ -> None
  in
  match e with
  | Const_int i -> Some i
  | Const_real f when Float.is_integer f -> Some (int_of_float f)
  | Const_real _ | Const_bool _ | Const_str _ -> None
  | Var v -> Hashtbl.find_opt env v
  | Unop (Neg, a) -> Option.map (fun x -> -x) (eval_int env a)
  | Unop (Lnot, _) -> None
  | Binop (Add, a, b) -> lift2 (fun x y -> Some (x + y)) a b
  | Binop (Sub, a, b) -> lift2 (fun x y -> Some (x - y)) a b
  | Binop (Mul, a, b) -> lift2 (fun x y -> Some (x * y)) a b
  | Binop (Div, a, b) -> lift2 (fun x y -> if y = 0 then None else Some (x / y)) a b
  | Binop (Pow, a, b) ->
      lift2
        (fun x y ->
          if y < 0 then None
          else
            let rec pow acc n = if n = 0 then acc else pow (acc * x) (n - 1) in
            Some (pow 1 y))
        a b
  | Binop ((Lt | Le | Gt | Ge | Eq | Ne | And | Or), _, _) -> None
  | Ref ("max", [ a; b ]) | Ref ("max0", [ a; b ]) ->
      lift2 (fun x y -> Some (max x y)) a b
  | Ref ("min", [ a; b ]) | Ref ("min0", [ a; b ]) ->
      lift2 (fun x y -> Some (min x y)) a b
  | Ref ("abs", [ a ]) -> Option.map abs (eval_int env a)
  | Ref ("mod", [ a; b ]) ->
      lift2 (fun x y -> if y = 0 then None else Some (x mod y)) a b
  | Ref _ -> None
  | Local_lo _ | Local_hi _ -> None

let of_unit (u : Ast.program_unit) =
  let env = Hashtbl.create 16 in
  List.iter
    (fun (name, e) ->
      match eval_int env e with
      | Some v -> Hashtbl.replace env name v
      | None -> ())
    u.Ast.u_consts;
  env

let of_alist l =
  let env = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace env k v) l;
  env

let lookup env name = Hashtbl.find_opt env name

let eval_int_exn env e =
  match eval_int env e with
  | Some v -> v
  | None ->
      failwith
        (Printf.sprintf "Env.eval_int_exn: not a constant expression: %s"
           (Pretty.expr e))
