(** Loop structure of one program unit: the inner/outer/adjacent/simple
    relations of the paper's Definitions 6.1–6.4, plus a pre-order traversal
    clock used to express synchronization regions as intervals. *)

open Autocfd_fortran

type loop = {
  lp_id : int;  (** statement id of the DO statement *)
  lp_var : string;
  lp_line : int;
  lp_depth : int;  (** 0 for outermost loops of the unit body *)
  lp_parent : int option;  (** direct outer loop (Def. 6.2) *)
  lp_children : int list;  (** direct inner loops, in order *)
  lp_enter : int;  (** clock at the start of the loop body *)
  lp_exit : int;  (** clock just after the loop *)
  lp_stmt : Ast.stmt;
}

type t

val build : Ast.program_unit -> t
val unit_of : t -> Ast.program_unit
val loops : t -> loop list
(** All loops in pre-order. *)

val loop : t -> int -> loop
(** @raise Not_found for a statement id that is not a DO loop. *)

val find_loop : t -> int -> loop option

val clock : t -> int -> int * int
(** [(enter, exit)] clock span of any statement. *)

val enclosing_loops : t -> int -> loop list
(** Loops containing a statement, innermost first. *)

val is_inner : t -> inner:int -> outer:int -> bool
(** Definition 6.1: [inner]'s extended body is strictly contained in
    [outer]'s. *)

val is_direct_inner : t -> inner:int -> outer:int -> bool
(** Definition 6.2. *)

val adjacent : t -> int -> int -> bool
(** Definition 6.3: same direct outer loop (or both outermost). *)

val is_simple : t -> int -> bool
(** Definition 6.4: a loop containing no pair of adjacent inner loops —
    i.e. at most a single chain of nested loops. *)

val top_level : t -> loop list
(** Loops with no outer loop. *)
