open Autocfd_fortran

type dep_class = Flow | Anti

type dim_deps = { dd_dim : int; dd_flow : int list; dd_anti : int list }

type decomposition = {
  de_array : string;
  de_vectors : (int array * dep_class) list;
  de_dims : dim_deps list;
}

type strategy =
  | Serial
  | Block
  | Pipeline of (int * Ast.direction) list

(* the DO statement of the nest whose variable sweeps grid dimension [g] *)
let sweep_loop (s : Field_loop.summary) g =
  let var =
    List.find_opt (fun (_, g') -> g' = g) s.Field_loop.fs_var_dims
    |> Option.map fst
  in
  match var with
  | None -> None
  | Some v ->
      let found = ref None in
      Ast.iter_stmts
        (fun st ->
          match st.Ast.s_kind with
          | Ast.Do d when d.Ast.do_var = v && !found = None -> found := Some d
          | _ -> ())
        [ s.Field_loop.fs_loop.Loops.lp_stmt ];
      !found

let sweep_step env s g =
  match sweep_loop s g with
  | None -> None
  | Some d -> (
      match d.Ast.do_step with
      | None -> Some 1
      | Some e -> (
          match Env.eval_int env e with
          | Some k when k = 1 || k = -1 -> Some k
          | _ -> None))

let nest_dim_order (s : Field_loop.summary) =
  let dims = ref [] in
  Ast.iter_stmts
    (fun st ->
      match st.Ast.s_kind with
      | Ast.Do d -> (
          match List.assoc_opt d.Ast.do_var s.Field_loop.fs_var_dims with
          | Some g when not (List.mem g !dims) -> dims := g :: !dims
          | _ -> ())
      | _ -> ())
    [ s.Field_loop.fs_loop.Loops.lp_stmt ];
  List.rev !dims

let self_arrays (s : Field_loop.summary) =
  List.filter_map
    (fun (v, _) -> if Field_loop.self_dependent s v then Some v else None)
    s.Field_loop.fs_uses

(* joint offset vector of one read reference; [None] when any status
   dimension is not affine in its canonical sweep variable *)
let vector_of_ref ~ndims (s : Field_loop.summary) indices =
  let vec = Array.make ndims 0 in
  let ok = ref true in
  List.iter
    (fun (g, kind) ->
      match kind with
      | Field_loop.Affine (x, off) -> (
          match List.assoc_opt x s.Field_loop.fs_var_dims with
          | Some g' when g' = g -> vec.(g) <- off
          | _ -> ok := false)
      | Field_loop.Fixed _ | Field_loop.Opaque -> ok := false)
    indices;
  if !ok then Some vec else None

let decompose ~ndims env (s : Field_loop.summary) v =
  if not (Field_loop.self_dependent s v) then None
  else begin
    let nest = nest_dim_order s in
    let step g = Option.value ~default:1 (sweep_step env s g) in
    let refs =
      List.filter_map
        (fun (v', indices) ->
          if v' = v then vector_of_ref ~ndims s indices else None)
        s.Field_loop.fs_read_refs
    in
    let all_affine =
      List.for_all (fun (v', _) -> v' <> v)
        (List.filter
           (fun (v', indices) ->
             v' = v && vector_of_ref ~ndims s indices = None)
           s.Field_loop.fs_read_refs)
    in
    (* classify by iteration order: the first non-zero component in nest
       order decides (offset * step < 0 means earlier iteration) *)
    let classify vec =
      let rec go = function
        | [] -> None (* zero vector: the point itself *)
        | g :: rest ->
            let sgn = vec.(g) * step g in
            if sgn < 0 then Some Flow
            else if sgn > 0 then Some Anti
            else go rest
      in
      go nest
    in
    let vectors =
      List.filter_map
        (fun vec -> Option.map (fun c -> (vec, c)) (classify vec))
        refs
      |> List.sort_uniq compare
    in
    let vectors = if all_affine then vectors else [] in
    let dims =
      List.filter_map
        (fun g ->
          let flow =
            List.filter_map
              (fun (vec, c) ->
                if c = Flow && vec.(g) <> 0 then Some vec.(g) else None)
              vectors
            |> List.sort_uniq compare
          in
          let anti =
            List.filter_map
              (fun (vec, c) ->
                if c = Anti && vec.(g) <> 0 then Some vec.(g) else None)
              vectors
            |> List.sort_uniq compare
          in
          if flow = [] && anti = [] then None
          else Some { dd_dim = g; dd_flow = flow; dd_anti = anti })
        (List.init ndims Fun.id)
    in
    Some { de_array = v; de_vectors = vectors; de_dims = dims }
  end

let strategy ~ndims env ~cut (s : Field_loop.summary) =
  if s.Field_loop.fs_serial || s.Field_loop.fs_irregular then Serial
  else begin
    let decomps = List.filter_map (decompose ~ndims env s) (self_arrays s) in
    let step g = sweep_step env s g in
    let cut_dims = List.filter cut (List.init ndims Fun.id) in
    (* a self-dependent array with no analyzable vectors is unsafe *)
    let unanalyzable =
      List.exists (fun de -> de.de_vectors = []) decomps
      && decomps <> []
    in
    let violations de =
      List.exists
        (fun (vec, c) ->
          let bad_dim =
            List.exists
              (fun d ->
                match step d with
                | None -> vec.(d) <> 0
                | Some st -> (
                    let sgn = vec.(d) * st in
                    match c with
                    | Flow -> sgn > 0 (* flow must not cross blocks upward *)
                    | Anti -> sgn < 0 (* anti must not cross downward *)))
              cut_dims
          in
          (* a flow vector crossing two cut dimensions at once needs fresh
             corner values from a diagonal block, which the pipeline's
             face planes do not carry *)
          let diagonal_flow =
            c = Flow
            && List.length (List.filter (fun d -> vec.(d) <> 0) cut_dims) >= 2
          in
          bad_dim || diagonal_flow)
        de.de_vectors
    in
    let pipeline_dims =
      List.concat_map
        (fun de ->
          List.filter_map
            (fun d ->
              let needs_pipe =
                List.exists
                  (fun (vec, c) ->
                    c = Flow
                    && (match step d with
                       | Some st -> vec.(d) * st < 0
                       | None -> false))
                  de.de_vectors
              in
              if needs_pipe then
                match step d with
                | Some st ->
                    Some (d, if st >= 0 then Ast.Dplus else Ast.Dminus)
                | None -> None
              else None)
            cut_dims)
        decomps
      |> List.sort_uniq compare
    in
    let conflicting_dirs =
      let dims_only = List.map fst pipeline_dims in
      List.length dims_only <> List.length (List.sort_uniq compare dims_only)
    in
    let fixed_hazard =
      List.exists (fun g -> List.mem g cut_dims)
        s.Field_loop.fs_hazard_dims
    in
    if unanalyzable || conflicting_dirs || fixed_hazard
       || List.exists violations decomps
    then Serial
    else if pipeline_dims = [] then Block
    else Pipeline pipeline_dims
  end
