(** Mirror-image decomposition of self-dependent field loops
    (paper §4.2, Figs. 3 and 4) and the parallelization strategy decision
    for every field loop head.

    The dependence graph of a self-dependent loop is decomposed by access
    direction into the {e flow} subgraph (reads of already-updated points,
    i.e. dependences in lexicographic iteration order) and its {e mirror
    image} (reads of not-yet-updated points).  The flow subgraph forces
    pipelined (wavefront) execution along each cut dimension it crosses;
    the mirror subgraph is satisfied by the pre-sweep halo exchange of old
    values.

    Legality is judged on {e joint offset vectors} (not per-dimension
    marginals): a flow dependence such as [u(i+1, j-1)] is earlier in
    iteration order (the j loop dominates) yet crosses blocks {e upward} in
    i — coarse block pipelining is illegal when i is cut, and the loop
    falls back to [Serial] (replicated execution behind an allgather). *)

open Autocfd_fortran

type dep_class = Flow | Anti

type dim_deps = {
  dd_dim : int;
  dd_flow : int list;  (** offsets of flow vectors in this dimension *)
  dd_anti : int list;
}

type decomposition = {
  de_array : string;
  de_vectors : (int array * dep_class) list;
      (** joint offset vectors over grid dimensions, classified *)
  de_dims : dim_deps list;
}

type strategy =
  | Serial
  | Block
  | Pipeline of (int * Ast.direction) list

val sweep_step : Env.t -> Field_loop.summary -> int -> int option
(** Step direction (+1/-1) of the nest loop sweeping a grid dimension. *)

val nest_dim_order : Field_loop.summary -> int list
(** Grid dimensions in loop-nest order, outermost first. *)

val decompose :
  ndims:int -> Env.t -> Field_loop.summary -> string -> decomposition option
(** [None] when the loop is not self-dependent on that array.  A
    self-dependent reference that is not fully affine yields a
    decomposition with an empty vector list — callers must treat it as
    unanalyzable. *)

val self_arrays : Field_loop.summary -> string list

val strategy :
  ndims:int -> Env.t -> cut:(int -> bool) -> Field_loop.summary -> strategy
(** The parallel schedule for a field loop head under a partition:
    [Pipeline] along cut dimensions crossed by flow vectors when legal,
    [Block] when only mirror-image (anti) crossings exist, [Serial] when
    coarse pipelining would violate a joint dependence vector, the loop is
    irregular, or the user forced [c$acfd serial]. *)
