(** Resolution of the [c$acfd] directives against the program: flow-field
    extents and the status arrays with their status-dimension mapping
    (paper §4.2 cases 4 and 5: packed high-dimensional arrays and
    dependency distances). *)

open Autocfd_fortran

type status_array = {
  sa_name : string;
  sa_rank : int;  (** declared number of array dimensions *)
  sa_dims : int option array;
      (** for each array dimension, the grid (status) dimension it sweeps,
          or [None] for an extended (packed) dimension *)
}

type t = {
  grid_names : string list;  (** parameter names of the grid extents *)
  grid : int array;  (** resolved flow-field extents *)
  status : status_array list;
  dist_overrides : (string * int) list;
  serial_lines : int list;  (** lines after which the next DO stays serial *)
}

val of_program : Ast.program -> t
(** @raise Failure when a directive names an unknown parameter or an
    undeclared array. *)

val ndims : t -> int
val is_status : t -> string -> bool
val find_status : t -> string -> status_array option

val grid_dim_of : t -> string -> int -> int option
(** [grid_dim_of t array k] is the grid dimension swept by array dimension
    [k] of [array] ([None] for packed/extended dimensions or non-status
    arrays). *)

val distance : t -> string -> int
(** Dependency distance for an array: the [dist()] override, default 1. *)

val pp : Format.formatter -> t -> unit
