(** Field-loop identification and A/R/C/O classification (paper Fig. 1),
    plus per-loop access summaries for the status arrays: stencil offsets
    per grid dimension, fixed boundary planes, scalar reductions.

    A {e field loop head} is an outermost loop whose nest sweeps at least
    one status dimension of the flow field; all dependency analysis is done
    between field loop heads. *)

open Autocfd_fortran

(** How one status dimension is indexed in a reference. *)
type index_kind =
  | Affine of string * int  (** loop variable + constant offset *)
  | Fixed of int  (** compile-time constant plane: boundary code *)
  | Opaque  (** anything else — treated conservatively *)
[@@deriving show, eq]

type ltype = A | R | C | O [@@deriving show, eq]

(** Use of one status array inside a loop nest. *)
type array_use = {
  au_assigned : bool;
  au_referenced : bool;
  au_read_offsets : int list array;
      (** per grid dimension, sorted distinct affine read offsets *)
  au_write_offsets : int list array;
  au_fixed_reads : (int * int) list;  (** (grid dim, plane) *)
  au_fixed_writes : (int * int) list;
  au_opaque_read_dims : int list;
  au_opaque_write_dims : int list;
}

(** A recognized scalar reduction inside a field loop:
    [s = max(s, e)], [s = min(s, e)] or [s = s + e]. *)
type reduction = { red_var : string; red_op : [ `Max | `Min | `Sum ] }
[@@deriving show, eq]

type summary = {
  fs_loop : Loops.loop;  (** the head DO statement *)
  fs_unit : string;
  fs_var_dims : (string * int) list;
      (** nest loop variable -> grid dimension it sweeps (only variables
          with a unique consistent mapping) *)
  fs_swept_dims : int list;  (** grid dimensions swept by the nest *)
  fs_uses : (string * array_use) list;  (** per status array *)
  fs_read_refs : (string * (int * index_kind) list) list;
      (** every status-array read reference with its per-grid-dimension
          index kinds: the joint offset vectors for mirror-image
          legality analysis *)
  fs_reductions : reduction list;
  fs_has_call : bool;  (** the nest contains subroutine calls *)
  fs_irregular : bool;
      (** conflicting variable/dimension mapping or opaque indices — the
          loop must stay sequential/replicated *)
  fs_serial : bool;  (** user forced c$acfd serial *)
  fs_hazard_dims : int list;
      (** dims where the loop chains fixed planes or mixes an affine
          sweep with fixed-plane reads — unsafe to distribute *)
}

val ltype : summary -> string -> ltype
(** Classification of the head loop w.r.t. one status array. *)

val self_dependent : summary -> string -> bool
(** Assigned and referenced with a non-zero offset in the same nest —
    paper Fig. 3. *)

val analyze_unit : Grid_info.t -> Ast.program_unit -> summary list
(** Field-loop heads of a unit, in program order. *)

val index_kind_of_expr :
  Env.t -> loop_vars:string list -> Ast.expr -> index_kind
(** Exposed for tests. *)
