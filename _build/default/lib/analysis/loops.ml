open Autocfd_fortran

type loop = {
  lp_id : int;
  lp_var : string;
  lp_line : int;
  lp_depth : int;
  lp_parent : int option;
  lp_children : int list;
  lp_enter : int;
  lp_exit : int;
  lp_stmt : Ast.stmt;
}

type t = {
  unit_ : Ast.program_unit;
  table : (int, loop) Hashtbl.t;
  order : int list;
  clocks : (int, int * int) Hashtbl.t;
  parents : (int, int list) Hashtbl.t;  (* stmt id -> enclosing loop ids *)
}

let build (u : Ast.program_unit) =
  let table = Hashtbl.create 64 in
  let clocks = Hashtbl.create 256 in
  let parents = Hashtbl.create 256 in
  let order = ref [] in
  let tick =
    let counter = ref 0 in
    fun () ->
      incr counter;
      !counter
  in
  (* [stack] is the chain of enclosing loop ids, innermost first *)
  let rec walk_block stack depth block =
    List.iter (walk_stmt stack depth) block
  and walk_stmt stack depth st =
    let enter = tick () in
    Hashtbl.replace parents st.Ast.s_id stack;
    (match st.Ast.s_kind with
    | Ast.Do d ->
        walk_block (st.Ast.s_id :: stack) (depth + 1) d.Ast.do_body;
        let exit = tick () in
        Hashtbl.replace clocks st.Ast.s_id (enter, exit);
        order := st.Ast.s_id :: !order;
        Hashtbl.replace table st.Ast.s_id
          {
            lp_id = st.Ast.s_id;
            lp_var = d.Ast.do_var;
            lp_line = st.Ast.s_line;
            lp_depth = depth;
            lp_parent = (match stack with [] -> None | p :: _ -> Some p);
            lp_children = [];  (* filled in a second pass *)
            lp_enter = enter;
            lp_exit = exit;
            lp_stmt = st;
          }
    | Ast.If (branches, els) ->
        List.iter (fun (_, b) -> walk_block stack depth b) branches;
        Option.iter (walk_block stack depth) els;
        let exit = tick () in
        Hashtbl.replace clocks st.Ast.s_id (enter, exit)
    | _ ->
        let exit = tick () in
        Hashtbl.replace clocks st.Ast.s_id (enter, exit))
  in
  walk_block [] 0 u.Ast.u_body;
  let order = List.rev !order in
  (* second pass: direct inner loops, in program order (this also catches
     loops hidden inside IF branches of the body) *)
  List.iter
    (fun id ->
      let l = Hashtbl.find table id in
      let children =
        List.filter
          (fun cid -> (Hashtbl.find table cid).lp_parent = Some id)
          order
      in
      Hashtbl.replace table id { l with lp_children = children })
    order;
  { unit_ = u; table; order; clocks; parents }

let unit_of t = t.unit_
let loops t = List.map (Hashtbl.find t.table) t.order
let loop t id = Hashtbl.find t.table id
let find_loop t id = Hashtbl.find_opt t.table id
let clock t id = Hashtbl.find t.clocks id

let enclosing_loops t id =
  match Hashtbl.find_opt t.parents id with
  | None -> []
  | Some ids -> List.map (loop t) ids

let is_inner t ~inner ~outer =
  let i = loop t inner and o = loop t outer in
  o.lp_enter < i.lp_enter && i.lp_exit < o.lp_exit

let is_direct_inner t ~inner ~outer =
  is_inner t ~inner ~outer && (loop t inner).lp_parent = Some outer

let adjacent t a b =
  a <> b && (loop t a).lp_parent = (loop t b).lp_parent

let is_simple t id =
  (* no two descendant loops of [id] are adjacent: every loop nested in
     [id] has at most one direct inner loop, and [id] itself has at most
     one *)
  let rec chain_ok lid =
    match (loop t lid).lp_children with
    | [] -> true
    | [ c ] -> chain_ok c
    | _ -> false
  in
  chain_ok id

let top_level t =
  List.filter (fun l -> l.lp_parent = None) (loops t)
