open Autocfd_fortran

type status_array = {
  sa_name : string;
  sa_rank : int;
  sa_dims : int option array;
}

type t = {
  grid_names : string list;
  grid : int array;
  status : status_array list;
  dist_overrides : (string * int) list;
  serial_lines : int list;
}

let find_decl program name =
  let in_unit u =
    List.find_opt (fun d -> d.Ast.d_name = name) u.Ast.u_decls
  in
  let units =
    (* prefer the main unit's declaration *)
    let mains, subs =
      List.partition (fun u -> u.Ast.u_kind = Ast.Main) program.Ast.p_units
    in
    mains @ subs
  in
  List.find_map in_unit units

let resolve_status program grid (name, explicit) =
  match find_decl program name with
  | None -> failwith (Printf.sprintf "status array '%s' is not declared" name)
  | Some decl ->
      let rank = List.length decl.Ast.d_dims in
      let owner =
        List.find
          (fun u -> List.exists (fun d -> d.Ast.d_name = name) u.Ast.u_decls)
          program.Ast.p_units
      in
      let env = Env.of_unit owner in
      let extents =
        List.map
          (fun (lo, hi) ->
            match (Env.eval_int env lo, Env.eval_int env hi) with
            | Some l, Some h -> Some (h - l + 1)
            | _ -> None)
          decl.Ast.d_dims
      in
      let sa_dims =
        match explicit with
        | Some k ->
            if k > rank then
              failwith
                (Printf.sprintf "status(%s:%d): array has only %d dimensions"
                   name k rank);
            Array.init rank (fun i -> if i < k then Some i else None)
        | None ->
            (* match declared extents against grid extents, in order *)
            let next = ref 0 in
            Array.of_list
              (List.map
                 (fun ext ->
                   if !next < Array.length grid && ext = Some grid.(!next)
                   then begin
                     let g = !next in
                     incr next;
                     Some g
                   end
                   else None)
                 extents)
      in
      if not (Array.exists Option.is_some sa_dims) then
        failwith
          (Printf.sprintf
             "status array '%s': no dimension matches the grid extents \
              (declare it over the grid parameters or use status(%s:k))"
             name name);
      { sa_name = name; sa_rank = rank; sa_dims }

let of_program (program : Ast.program) =
  let dirs = program.Ast.p_directives in
  let grid_names = Directive.grids dirs in
  if grid_names = [] then
    failwith "missing directive: c$acfd grid(...) is required";
  let main =
    match List.find_opt (fun u -> u.Ast.u_kind = Ast.Main) program.Ast.p_units with
    | Some u -> u
    | None -> failwith "program has no main unit"
  in
  let env = Env.of_unit main in
  let grid =
    Array.of_list
      (List.map
         (fun n ->
           match Env.lookup env n with
           | Some v -> v
           | None ->
               failwith
                 (Printf.sprintf
                    "grid extent '%s' is not a PARAMETER of the main unit" n))
         grid_names)
  in
  let status_specs = Directive.status_arrays dirs in
  if status_specs = [] then
    failwith "missing directive: c$acfd status(...) is required";
  let status = List.map (resolve_status program grid) status_specs in
  {
    grid_names;
    grid;
    status;
    dist_overrides = Directive.dist_overrides dirs;
    serial_lines = Directive.serial_lines dirs;
  }

let ndims t = Array.length t.grid

let find_status t name =
  List.find_opt (fun s -> s.sa_name = name) t.status

let is_status t name = Option.is_some (find_status t name)

let grid_dim_of t name k =
  match find_status t name with
  | None -> None
  | Some s -> if k < s.sa_rank then s.sa_dims.(k) else None

let distance t name =
  match List.assoc_opt name t.dist_overrides with
  | Some d -> d
  | None -> 1

let pp ppf t =
  Format.fprintf ppf "grid %s = %s; status arrays: %s"
    (String.concat " x " t.grid_names)
    (String.concat " x " (Array.to_list (Array.map string_of_int t.grid)))
    (String.concat ", "
       (List.map
          (fun s ->
            Printf.sprintf "%s(%s)" s.sa_name
              (String.concat ","
                 (Array.to_list
                    (Array.map
                       (function Some g -> string_of_int g | None -> "*")
                       s.sa_dims))))
          t.status))
