open Autocfd_partition

type dep_info = {
  di_dims : int list;
  di_depth : int array;
  di_minus : bool array;
  di_plus : bool array;
}

type kind = Forward | Backward of int | Self

type pair = {
  dp_assign : Field_loop.summary;
  dp_ref : Field_loop.summary;
  dp_arrays : (string * dep_info) list;
  dp_kind : kind;
}

type t = {
  pairs : pair list;
  loops : Loops.t;
  summaries : Field_loop.summary list;
  gi : Grid_info.t;
  topo : Topology.t;
  virtual_spans : (int * (int * int)) list;
}

(* Crossing analysis: what does reader [r] need of array [v] across the
   partition's demarcation lines? *)
let crossing_info gi topo v (r : Field_loop.summary) =
  match List.assoc_opt v r.Field_loop.fs_uses with
  | None -> None
  | Some u when not u.Field_loop.au_referenced -> None
  | Some u ->
      let nd = Grid_info.ndims gi in
      let dist = Grid_info.distance gi v in
      let depth = Array.make nd 0 in
      let minus = Array.make nd false in
      let plus = Array.make nd false in
      for g = 0 to nd - 1 do
        if Topology.is_cut topo g then begin
          List.iter
            (fun off ->
              if off < 0 then begin
                minus.(g) <- true;
                depth.(g) <- max depth.(g) (-off)
              end
              else if off > 0 then begin
                plus.(g) <- true;
                depth.(g) <- max depth.(g) off
              end)
            u.Field_loop.au_read_offsets.(g);
          (* a fixed-plane read of a cut dimension: the plane's neighbors
             need it — conservative halo of the declared distance *)
          if List.exists (fun (g', _) -> g' = g) u.Field_loop.au_fixed_reads
          then begin
            minus.(g) <- true;
            plus.(g) <- true;
            depth.(g) <- max depth.(g) dist
          end;
          if List.mem g u.Field_loop.au_opaque_read_dims then begin
            minus.(g) <- true;
            plus.(g) <- true;
            depth.(g) <- max depth.(g) dist
          end
        end
      done;
      let dims =
        List.filter
          (fun g -> minus.(g) || plus.(g))
          (List.init nd Fun.id)
      in
      if dims = [] then None
      else
        Some { di_dims = dims; di_depth = depth; di_minus = minus;
               di_plus = plus }

let assigns v (a : Field_loop.summary) =
  match List.assoc_opt v a.Field_loop.fs_uses with
  | Some u -> u.Field_loop.au_assigned
  | None -> false

let arrays_of summaries =
  List.concat_map
    (fun (s : Field_loop.summary) -> List.map fst s.Field_loop.fs_uses)
    summaries
  |> List.sort_uniq compare

let enter (s : Field_loop.summary) = s.Field_loop.fs_loop.Loops.lp_enter

(* backward-GOTO iteration loops: a GOTO jumping to an earlier labelled
   statement under the same enclosing-loop chain forms a while-style
   carrying loop spanning [target, goto] *)
let virtual_spans loops (u : Autocfd_fortran.Ast.program_unit) =
  let module Ast = Autocfd_fortran.Ast in
  (* labelled statements with their clock and loop chain *)
  let labels = Hashtbl.create 16 in
  Ast.iter_stmts
    (fun st ->
      match st.Ast.s_label with
      | Some l -> Hashtbl.replace labels l st.Ast.s_id
      | None -> ())
    u.Ast.u_body;
  let spans = ref [] in
  Ast.iter_stmts
    (fun st ->
      match st.Ast.s_kind with
      | Ast.Goto l -> (
          match Hashtbl.find_opt labels l with
          | Some target_id ->
              let t_enter, _ = Loops.clock loops target_id in
              let g_enter, g_exit = Loops.clock loops st.Ast.s_id in
              let chain sid =
                List.map
                  (fun (lp : Loops.loop) -> lp.Loops.lp_id)
                  (Loops.enclosing_loops loops sid)
              in
              if t_enter < g_enter && chain target_id = chain st.Ast.s_id
              then spans := (st.Ast.s_id, (t_enter, g_exit)) :: !spans
          | None -> ())
      | _ -> ())
    u.Ast.u_body;
  !spans

(* innermost common enclosing loop of two heads; falls back to the
   smallest backward-GOTO span containing both *)
let common_loop loops vspans (a : Field_loop.summary) (b : Field_loop.summary) =
  let anc s =
    List.map
      (fun (l : Loops.loop) -> l.Loops.lp_id)
      (Loops.enclosing_loops loops s.Field_loop.fs_loop.Loops.lp_id)
  in
  let aa = anc a in
  match List.find_opt (fun id -> List.mem id aa) (anc b) with
  | Some id -> Some id
  | None ->
      let span_of (s : Field_loop.summary) =
        (s.Field_loop.fs_loop.Loops.lp_enter, s.Field_loop.fs_loop.Loops.lp_exit)
      in
      let ae, ax = span_of a and be, bx = span_of b in
      List.filter
        (fun (_, (lo, hi)) -> lo <= ae && ax <= hi && lo <= be && bx <= hi)
        vspans
      |> List.sort
           (fun (_, (l1, h1)) (_, (l2, h2)) -> compare (h1 - l1) (h2 - l2))
      |> function
      | (id, _) :: _ -> Some id
      | [] -> None

let merge_info i1 i2 =
  let nd = Array.length i1.di_depth in
  {
    di_dims = List.sort_uniq compare (i1.di_dims @ i2.di_dims);
    di_depth = Array.init nd (fun g -> max i1.di_depth.(g) i2.di_depth.(g));
    di_minus = Array.init nd (fun g -> i1.di_minus.(g) || i2.di_minus.(g));
    di_plus = Array.init nd (fun g -> i1.di_plus.(g) || i2.di_plus.(g));
  }

let compute gi topo loops summaries =
  let vspans = virtual_spans loops (Loops.unit_of loops) in
  let arrays = arrays_of summaries in
  let pairs = ref [] in
  let add a r v info kind =
    (* merge into an existing pair with the same endpoints and kind *)
    let same p =
      p.dp_assign == a && p.dp_ref == r
      && (match (p.dp_kind, kind) with
         | Forward, Forward | Self, Self -> true
         | Backward x, Backward y -> x = y
         | _ -> false)
    in
    match List.find_opt same !pairs with
    | Some p ->
        let arrays' =
          match List.assoc_opt v p.dp_arrays with
          | Some i0 ->
              (v, merge_info i0 info)
              :: List.remove_assoc v p.dp_arrays
          | None -> (v, info) :: p.dp_arrays
        in
        pairs :=
          { p with dp_arrays = List.sort compare arrays' }
          :: List.filter (fun q -> not (same q)) !pairs
    | None ->
        pairs := { dp_assign = a; dp_ref = r; dp_arrays = [ (v, info) ];
                   dp_kind = kind } :: !pairs
  in
  List.iter
    (fun v ->
      let writers = List.filter (assigns v) summaries in
      List.iter
        (fun (r : Field_loop.summary) ->
          match crossing_info gi topo v r with
          | None -> ()
          | Some info ->
              List.iter
                (fun (a : Field_loop.summary) ->
                  if a == r then begin
                    if Field_loop.self_dependent r v then begin
                      add a r v info Self;
                      (* the mirror-image (anti-direction) reads of the next
                         execution need the pre-sweep halo of old values:
                         a backward dependence around the enclosing loop *)
                      match common_loop loops vspans a r with
                      | Some l -> add a r v info (Backward l)
                      | None -> ()
                    end
                  end
                  else if enter a < enter r then add a r v info Forward
                  else
                    match common_loop loops vspans a r with
                    | Some l -> add a r v info (Backward l)
                    | None -> ())
                writers)
        summaries)
    arrays;
  (* stable order: by reference loop, then assign loop *)
  let pairs =
    List.sort
      (fun p q ->
        compare
          (enter p.dp_ref, enter p.dp_assign)
          (enter q.dp_ref, enter q.dp_assign))
      !pairs
  in
  { pairs; loops; summaries; gi; topo; virtual_spans = vspans }

let carrying_span t id =
  match List.assoc_opt id t.virtual_spans with
  | Some span -> span
  | None -> Loops.clock t.loops id

let non_self t = List.filter (fun p -> p.dp_kind <> Self) t.pairs
let self_pairs t = List.filter (fun p -> p.dp_kind = Self) t.pairs

(* A preliminary synchronization point communicates with the neighbors
   along one dimension; a pair crossing two cut dimensions therefore needs
   two synchronizations before optimization.  This matches the paper's
   Table 1, where the "before" counts of two-dimensional partitions are
   nearly the sum of the one-dimensional ones. *)
let pair_dims p =
  List.concat_map (fun (_, info) -> info.di_dims) p.dp_arrays
  |> List.sort_uniq compare

let count_before t =
  List.fold_left (fun acc p -> acc + List.length (pair_dims p)) 0 (non_self t)

(* Redundancy: pair (a, r) on array v is covered when another writer of v
   executes between a and r — an exchange after that writer also carries
   a's data (halo exchanges always send the owner's current planes). *)
let eliminate_redundant t =
  let writers v =
    List.filter (assigns v) t.summaries |> List.map enter
  in
  let covered p v =
    let ea = enter p.dp_assign and er = enter p.dp_ref in
    match p.dp_kind with
    | Self -> false
    | Forward ->
        List.exists (fun w -> w > ea && w < er) (writers v)
    | Backward l ->
        (* execution order wraps around the carrying loop's back edge:
           a ... (end of loop body) ... r — only writers INSIDE that loop
           can execute in between *)
        let l_enter, l_exit = carrying_span t l in
        List.exists
          (fun w -> l_enter < w && w < l_exit && (w > ea || w < er))
          (writers v)
  in
  non_self t
  |> List.filter_map (fun p ->
         let arrays =
           List.filter (fun (v, _) -> not (covered p v)) p.dp_arrays
         in
         if arrays = [] then None else Some { p with dp_arrays = arrays })

let pp_pair ppf p =
  let name (s : Field_loop.summary) =
    Printf.sprintf "L%d@%d" s.Field_loop.fs_loop.Loops.lp_id
      s.Field_loop.fs_loop.Loops.lp_line
  in
  let kind =
    match p.dp_kind with
    | Forward -> "forward"
    | Backward l -> Printf.sprintf "backward(via loop %d)" l
    | Self -> "self"
  in
  Format.fprintf ppf "%s -> %s [%s] {%s}" (name p.dp_assign) (name p.dp_ref)
    kind
    (String.concat ", " (List.map fst p.dp_arrays))
