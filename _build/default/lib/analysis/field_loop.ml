open Autocfd_fortran

type index_kind = Affine of string * int | Fixed of int | Opaque
[@@deriving show, eq]

type ltype = A | R | C | O [@@deriving show, eq]

type array_use = {
  au_assigned : bool;
  au_referenced : bool;
  au_read_offsets : int list array;
  au_write_offsets : int list array;
  au_fixed_reads : (int * int) list;
  au_fixed_writes : (int * int) list;
  au_opaque_read_dims : int list;
  au_opaque_write_dims : int list;
}

type reduction = { red_var : string; red_op : [ `Max | `Min | `Sum ] }
[@@deriving show, eq]

type summary = {
  fs_loop : Loops.loop;
  fs_unit : string;
  fs_var_dims : (string * int) list;
  fs_swept_dims : int list;
  fs_uses : (string * array_use) list;
  fs_read_refs : (string * (int * index_kind) list) list;
      (** every status-array read reference with its per-grid-dimension
          index kinds — the joint offset vectors the mirror-image
          decomposition needs (a per-dimension summary would lose
          diagonal dependences like [u(i+1, j-1)]) *)
  fs_reductions : reduction list;
  fs_has_call : bool;
  fs_irregular : bool;
  fs_serial : bool;
  fs_hazard_dims : int list;
      (** dims with fixed-plane chains (see [fixed_hazard_dims]) *)
}

let index_kind_of_expr env ~loop_vars (e : Ast.expr) =
  match e with
  | Ast.Var x when List.mem x loop_vars -> Affine (x, 0)
  | Ast.Binop (Ast.Add, Ast.Var x, off) when List.mem x loop_vars -> (
      match Env.eval_int env off with
      | Some k -> Affine (x, k)
      | None -> Opaque)
  | Ast.Binop (Ast.Add, off, Ast.Var x) when List.mem x loop_vars -> (
      match Env.eval_int env off with
      | Some k -> Affine (x, k)
      | None -> Opaque)
  | Ast.Binop (Ast.Sub, Ast.Var x, off) when List.mem x loop_vars -> (
      match Env.eval_int env off with
      | Some k -> Affine (x, -k)
      | None -> Opaque)
  | e -> (
      match Env.eval_int env e with
      | Some k -> Fixed k
      | None -> Opaque)

(* ------------------------------------------------------------------ *)
(* Raw access collection within one loop nest                          *)
(* ------------------------------------------------------------------ *)

type raw_access = {
  ra_array : string;
  ra_write : bool;
  ra_opaque_all : bool;  (** whole-array access (bare name) *)
  ra_indices : (int * index_kind) list;  (** grid dim -> kind *)
  ra_stmt : int;  (** statement sequence number within the nest *)
}

type collect_ctx = {
  gi : Grid_info.t;
  env : Env.t;
  loop_vars : string list;
  mutable accesses : raw_access list;
  mutable has_call : bool;
  mutable reductions : reduction list;
  mutable stmt_seq : int;
}

let record ctx ~write name args =
  match Grid_info.find_status ctx.gi name with
  | None -> ()
  | Some sa ->
      let indices =
        List.filteri (fun k _ -> k < sa.Grid_info.sa_rank) args
        |> List.mapi (fun k idx ->
               match sa.Grid_info.sa_dims.(k) with
               | None -> None
               | Some g ->
                   Some
                     (g, index_kind_of_expr ctx.env ~loop_vars:ctx.loop_vars idx))
        |> List.filter_map Fun.id
      in
      ctx.accesses <-
        { ra_array = name; ra_write = write; ra_opaque_all = false;
          ra_indices = indices; ra_stmt = ctx.stmt_seq }
        :: ctx.accesses

let record_whole ctx ~write name =
  if Grid_info.is_status ctx.gi name then
    ctx.accesses <-
      { ra_array = name; ra_write = write; ra_opaque_all = true;
        ra_indices = []; ra_stmt = ctx.stmt_seq }
      :: ctx.accesses

(* reads inside an arbitrary expression *)
let collect_expr_reads ctx e =
  Ast.fold_exprs
    (fun () e ->
      match e with
      | Ast.Ref (name, args) when not (Ast.is_intrinsic name) ->
          record ctx ~write:false name args
      | _ -> ())
    () e

let recognize_reduction (lhs : Ast.expr) (rhs : Ast.expr) =
  match lhs with
  | Ast.Var s ->
      let is_s = function Ast.Var s' -> s' = s | _ -> false in
      (match rhs with
      | Ast.Ref (("max" | "amax1"), [ a; b ]) when is_s a || is_s b ->
          Some { red_var = s; red_op = `Max }
      | Ast.Ref (("min" | "amin1"), [ a; b ]) when is_s a || is_s b ->
          Some { red_var = s; red_op = `Min }
      | Ast.Binop (Ast.Add, a, b) when is_s a || is_s b ->
          Some { red_var = s; red_op = `Sum }
      | _ -> None)
  | _ -> None

let rec collect_block ctx block = List.iter (collect_stmt ctx) block

and collect_stmt ctx st =
  ctx.stmt_seq <- ctx.stmt_seq + 1;
  match st.Ast.s_kind with
  | Ast.Assign (lhs, rhs) ->
      (match lhs with
      | Ast.Ref (name, args) ->
          record ctx ~write:true name args;
          (* index expressions of the lhs are reads *)
          List.iter (collect_expr_reads ctx) args
      | Ast.Var name when Grid_info.is_status ctx.gi name ->
          record_whole ctx ~write:true name
      | _ -> ());
      collect_expr_reads ctx rhs;
      (match recognize_reduction lhs rhs with
      | Some r when not (List.mem r ctx.reductions) ->
          ctx.reductions <- r :: ctx.reductions
      | _ -> ())
  | Ast.If (branches, els) ->
      List.iter
        (fun (c, b) ->
          collect_expr_reads ctx c;
          collect_block ctx b)
        branches;
      Option.iter (collect_block ctx) els
  | Ast.Do d ->
      collect_expr_reads ctx d.Ast.do_lo;
      collect_expr_reads ctx d.Ast.do_hi;
      Option.iter (collect_expr_reads ctx) d.Ast.do_step;
      collect_block ctx d.Ast.do_body
  | Ast.Call (_, args) ->
      ctx.has_call <- true;
      List.iter
        (fun a ->
          match a with
          | Ast.Var name when Grid_info.is_status ctx.gi name ->
              (* whole array passed to a subroutine: assume read+write *)
              record_whole ctx ~write:false name;
              record_whole ctx ~write:true name
          | a -> collect_expr_reads ctx a)
        args
  | Ast.Read items ->
      List.iter
        (fun it ->
          match it with
          | Ast.Var name when Grid_info.is_status ctx.gi name ->
              record_whole ctx ~write:true name
          | Ast.Ref (name, args) when not (Ast.is_intrinsic name) ->
              record ctx ~write:true name args;
              List.iter (collect_expr_reads ctx) args
          | _ -> ())
        items
  | Ast.Write items -> List.iter (collect_expr_reads ctx) items
  | Ast.Goto _ | Ast.Continue | Ast.Return | Ast.Stop | Ast.Comm _
  | Ast.Pipeline_recv _ | Ast.Pipeline_send _ ->
      ()

(* ------------------------------------------------------------------ *)
(* Summarizing a nest                                                  *)
(* ------------------------------------------------------------------ *)

let nest_loop_vars (head : Ast.stmt) =
  let vars = ref [] in
  Ast.iter_stmts
    (fun st ->
      match st.Ast.s_kind with
      | Ast.Do d -> if not (List.mem d.Ast.do_var !vars) then
          vars := d.Ast.do_var :: !vars
      | _ -> ())
    [ head ];
  List.rev !vars

let sorted_uniq l = List.sort_uniq compare l

exception Conflict

let var_dim_mapping accesses =
  (* loop variable -> grid dimension; raise Conflict on inconsistency *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun ra ->
      List.iter
        (fun (g, kind) ->
          match kind with
          | Affine (x, _) -> (
              match Hashtbl.find_opt tbl x with
              | None -> Hashtbl.replace tbl x g
              | Some g' when g' = g -> ()
              | Some _ -> raise Conflict)
          | Fixed _ | Opaque -> ())
        ra.ra_indices)
    accesses;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare

let empty_use ndims =
  {
    au_assigned = false;
    au_referenced = false;
    au_read_offsets = Array.make ndims [];
    au_write_offsets = Array.make ndims [];
    au_fixed_reads = [];
    au_fixed_writes = [];
    au_opaque_read_dims = [];
    au_opaque_write_dims = [];
  }

let summarize_uses gi accesses =
  let ndims = Grid_info.ndims gi in
  let tbl = Hashtbl.create 8 in
  let get name =
    match Hashtbl.find_opt tbl name with
    | Some u -> u
    | None -> empty_use ndims
  in
  let all_dims = List.init ndims Fun.id in
  List.iter
    (fun ra ->
      let u = get ra.ra_array in
      let u =
        if ra.ra_write then { u with au_assigned = true }
        else { u with au_referenced = true }
      in
      let u =
        if ra.ra_opaque_all then
          if ra.ra_write then
            { u with au_opaque_write_dims = all_dims }
          else { u with au_opaque_read_dims = all_dims }
        else
          List.fold_left
            (fun u (g, kind) ->
              match (kind, ra.ra_write) with
              | Affine (_, off), false ->
                  u.au_read_offsets.(g) <-
                    sorted_uniq (off :: u.au_read_offsets.(g));
                  u
              | Affine (_, off), true ->
                  u.au_write_offsets.(g) <-
                    sorted_uniq (off :: u.au_write_offsets.(g));
                  u
              | Fixed p, false ->
                  { u with au_fixed_reads =
                             sorted_uniq ((g, p) :: u.au_fixed_reads) }
              | Fixed p, true ->
                  { u with au_fixed_writes =
                             sorted_uniq ((g, p) :: u.au_fixed_writes) }
              | Opaque, false ->
                  { u with au_opaque_read_dims =
                             sorted_uniq (g :: u.au_opaque_read_dims) }
              | Opaque, true ->
                  { u with au_opaque_write_dims =
                             sorted_uniq (g :: u.au_opaque_write_dims) })
            u ra.ra_indices
      in
      Hashtbl.replace tbl ra.ra_array u)
    accesses;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

(* Grid dimensions where the loop chains values across fixed planes or
   mixes an affine sweep with fixed-plane reads — distributing such a loop
   along that dimension would read values a remote rank just produced (or
   mid-sweep values), so the code generator must fall back to Serial when
   the dimension is cut. *)
let fixed_hazard_dims accesses =
  (* all fixed planes written anywhere in the nest, per dim *)
  let written_fixed =
    List.concat_map
      (fun ra ->
        if not ra.ra_write then []
        else
          List.filter_map
            (fun (g, k) -> match k with Fixed p -> Some (g, p) | _ -> None)
            ra.ra_indices)
      accesses
  in
  let hazards = ref [] in
  let by_stmt = Hashtbl.create 16 in
  List.iter
    (fun ra ->
      let cur =
        Option.value ~default:[] (Hashtbl.find_opt by_stmt ra.ra_stmt)
      in
      Hashtbl.replace by_stmt ra.ra_stmt (ra :: cur))
    accesses;
  Hashtbl.iter
    (fun _ ras ->
      let writes = List.filter (fun ra -> ra.ra_write) ras in
      let reads = List.filter (fun ra -> not ra.ra_write) ras in
      List.iter
        (fun w ->
          List.iter
            (fun (g, k) ->
              match k with
              | Fixed p2 ->
                  (* writing plane p2 while reading a different plane p of
                     dim g that this loop also writes *)
                  List.iter
                    (fun r ->
                      List.iter
                        (fun (g', k') ->
                          match k' with
                          | Fixed p
                            when g' = g && p <> p2
                                 && List.mem (g, p) written_fixed ->
                              hazards := g :: !hazards
                          | _ -> ())
                        r.ra_indices)
                    reads
              | Affine _ ->
                  (* an affine sweep of dim g that reads any fixed plane of
                     g may read mid-sweep or distant values *)
                  List.iter
                    (fun r ->
                      List.iter
                        (fun (g', k') ->
                          match k' with
                          | Fixed _ when g' = g -> hazards := g :: !hazards
                          | _ -> ())
                        r.ra_indices)
                    reads
              | _ -> ())
            w.ra_indices)
        writes)
    by_stmt;
  List.sort_uniq compare !hazards

let ltype s array =
  match List.assoc_opt array s.fs_uses with
  | None -> O
  | Some u -> (
      match (u.au_assigned, u.au_referenced) with
      | true, true -> C
      | true, false -> A
      | false, true -> R
      | false, false -> O)

let self_dependent s array =
  match List.assoc_opt array s.fs_uses with
  | None -> false
  | Some u ->
      u.au_assigned && u.au_referenced
      && (Array.exists (List.exists (fun off -> off <> 0)) u.au_read_offsets
         || u.au_opaque_read_dims <> [])

let analyze_unit gi (u : Ast.program_unit) =
  let env = Env.of_unit u in
  let ltree = Loops.build u in
  let summarize (l : Loops.loop) =
    let head = l.Loops.lp_stmt in
    let loop_vars = nest_loop_vars head in
    let body =
      match head.Ast.s_kind with
      | Ast.Do d -> d.Ast.do_body
      | _ -> assert false
    in
    let ctx =
      { gi; env; loop_vars; accesses = []; has_call = false;
        reductions = []; stmt_seq = 0 }
    in
    collect_block ctx body;
    let var_dims, conflict =
      try (var_dim_mapping ctx.accesses, false) with Conflict -> ([], true)
    in
    let uses = summarize_uses gi ctx.accesses in
    let opaque_status_use =
      List.exists
        (fun (_, au) ->
          au.au_opaque_read_dims <> [] || au.au_opaque_write_dims <> [])
        uses
    in
    let swept = sorted_uniq (List.map snd var_dims) in
    let read_refs =
      List.filter_map
        (fun ra ->
          if ra.ra_write || ra.ra_opaque_all then None
          else Some (ra.ra_array, ra.ra_indices))
        (List.rev ctx.accesses)
    in
    {
      fs_loop = l;
      fs_unit = u.Ast.u_name;
      fs_var_dims = var_dims;
      fs_swept_dims = swept;
      fs_uses = uses;
      fs_read_refs = read_refs;
      fs_reductions = List.rev ctx.reductions;
      fs_has_call = ctx.has_call;
      fs_irregular = conflict || opaque_status_use;
      fs_serial = false;
      fs_hazard_dims = fixed_hazard_dims ctx.accesses;
    }
  in
  (* a loop sweeps the field if its own variable maps to a grid dimension;
     heads are sweep loops with no sweeping ancestor *)
  let summaries = Hashtbl.create 32 in
  let get_summary l =
    match Hashtbl.find_opt summaries l.Loops.lp_id with
    | Some s -> s
    | None ->
        let s = summarize l in
        Hashtbl.replace summaries l.Loops.lp_id s;
        s
  in
  let sweeps l =
    let s = get_summary l in
    List.mem_assoc l.Loops.lp_var s.fs_var_dims
  in
  let heads =
    List.filter
      (fun l ->
        sweeps l
        && not
             (List.exists sweeps (Loops.enclosing_loops ltree l.Loops.lp_id)))
      (Loops.loops ltree)
  in
  let serial_lines = gi.Grid_info.serial_lines in
  let heads_in_order =
    List.sort (fun a b -> compare a.Loops.lp_enter b.Loops.lp_enter) heads
  in
  List.map
    (fun l ->
      let s = get_summary l in
      let serial =
        List.exists
          (fun dl ->
            dl < l.Loops.lp_line
            && not
                 (List.exists
                    (fun l' ->
                      l'.Loops.lp_line > dl
                      && l'.Loops.lp_line < l.Loops.lp_line)
                    heads_in_order))
          serial_lines
      in
      { s with fs_serial = serial })
    heads_in_order
