(** Case study 1 of the paper: the aerofoil simulation (§6) — a 3-D
    incompressible pseudo-compressibility model with the structural
    features the paper calls out: mirror-image self-dependent SOR pressure
    sweeps, a wavefront boundary-layer march, a packed status array,
    dependency-distance-2 smoothing, direction-specific boundary
    subroutines (far-field called twice per step, the Fig. 8 pattern), and
    global Sum/Min/Max reductions. *)

val source :
  ?ni:int ->
  ?nj:int ->
  ?nk:int ->
  ?ntime:int ->
  ?npres:int ->
  ?uinf:float ->
  unit ->
  string
(** Defaults match the paper's Table 2 grid (99 x 41 x 13); [ntime] outer
    steps, [npres] pressure SOR sweeps per step, [uinf] free-stream
    velocity. *)

val default : string
