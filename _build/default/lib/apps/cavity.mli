(** Lid-driven cavity flow — the community-standard CFD validation
    problem, bundled as a third demonstration program: point-SOR
    stream-function solve (mirror-image pipelined), Thom vorticity walls,
    and a backward-GOTO convergence loop (recognized as a virtual carrying
    loop by the analysis). *)

val source :
  ?n:int -> ?maxit:int -> ?npsi:int -> ?ulid:float -> unit -> string
(** [n] x [n] cavity, at most [maxit] outer steps, [npsi] SOR sweeps per
    step, lid speed [ulid]. *)

val default : string
