(** Lid-driven cavity flow — the classic CFD validation problem, included
    as a third demonstration program (the paper mentions "several case
    studies"; this one is the community-standard benchmark).

    2-D stream-function / vorticity in a square cavity whose lid moves at
    unit speed.  Structurally it complements the two paper case studies:

    - the stream-function Poisson equation is solved by {e point SOR
      sweeps} (self-dependent, mirror-image decomposition);
    - the outer time iteration is a {e backward-GOTO while loop} (the
      classic F77 convergence pattern), exercising the virtual carrying
      loop analysis;
    - all four walls carry Thom vorticity conditions (fixed-plane boundary
      code in both directions). *)

let header ~n =
  Printf.sprintf
    {|      parameter (n = %d)
      real psi(n, n), omg(n, n), w1(n, n)
      common /cav/ psi, omg, w1
      real re, dt, sor, eps, errmax, ulid
      common /par/ re, dt, sor, eps, errmax, ulid|}
    n

let source ?(n = 33) ?(maxit = 40) ?(npsi = 6) ?(ulid = 1.0) () =
  let h = header ~n in
  Printf.sprintf
    {|c  lid-driven cavity flow (stream function / vorticity)
c$acfd grid(n, n2)
c$acfd status(psi, omg, w1)
      program cavity
%s
      parameter (n2 = %d, maxit = %d, npsi = %d)
      integer it, kp
      re = 100.0
      dt = 0.01
      sor = 1.4
      eps = 1.0e-5
      ulid = %f
      call init
      it = 0
 500  continue
      it = it + 1
      call wallbc
      call vort
      call resid
      call update
      do 400 kp = 1, npsi
        call psisor
 400  continue
      if (errmax .gt. eps .and. it .lt. maxit) goto 500
      write(*,*) it, errmax
      end

c ------------------------------------------------------------------
      subroutine init
%s
      integer i, j
      do 10 i = 1, n
        do 10 j = 1, n
          psi(i, j) = 0.0
          omg(i, j) = 0.0
          w1(i, j) = 0.0
 10   continue
      return
      end

c ------------------------------------------------------------------
c  Thom vorticity conditions on all four walls; the moving lid is the
c  j = n wall
      subroutine wallbc
%s
      integer i, j
      do 20 i = 2, n - 1
        omg(i, 1) = 2.0 * (psi(i, 1) - psi(i, 2))
        omg(i, n) = 2.0 * (psi(i, n) - psi(i, n-1)) - 2.0 * ulid
 20   continue
      do 25 j = 2, n - 1
        omg(1, j) = 2.0 * (psi(1, j) - psi(2, j))
        omg(n, j) = 2.0 * (psi(n, j) - psi(n-1, j))
 25   continue
      return
      end

c ------------------------------------------------------------------
c  explicit vorticity transport step into w1 (velocities from psi
c  central differences, inline)
      subroutine vort
%s
      integer i, j
      real uu, vv, adv, dif
      do 30 i = 2, n - 1
        do 30 j = 2, n - 1
          uu = 0.5 * (psi(i, j+1) - psi(i, j-1))
          vv = -0.5 * (psi(i+1, j) - psi(i-1, j))
          adv = uu * 0.5 * (omg(i+1, j) - omg(i-1, j))
     &        + vv * 0.5 * (omg(i, j+1) - omg(i, j-1))
          dif = (omg(i+1, j) + omg(i-1, j) + omg(i, j+1) + omg(i, j-1)
     &        - 4.0 * omg(i, j)) / re
          w1(i, j) = omg(i, j) + dt * (dif - adv)
 30   continue
      return
      end

c ------------------------------------------------------------------
c  convergence residual before the update
      subroutine resid
%s
      integer i, j
      errmax = 0.0
      do 40 i = 2, n - 1
        do 40 j = 2, n - 1
          errmax = max(errmax, abs(w1(i, j) - omg(i, j)))
 40   continue
      return
      end

c ------------------------------------------------------------------
      subroutine update
%s
      integer i, j
      do 50 i = 2, n - 1
        do 50 j = 2, n - 1
          omg(i, j) = w1(i, j)
 50   continue
      return
      end

c ------------------------------------------------------------------
c  one SOR sweep of the psi Poisson equation: self-dependent in both
c  lexicographic directions (mirror-image decomposition)
      subroutine psisor
%s
      integer i, j
      real pnew
      do 60 i = 2, n - 1
        do 60 j = 2, n - 1
          pnew = 0.25 * (psi(i+1, j) + psi(i-1, j) + psi(i, j+1)
     &         + psi(i, j-1) + omg(i, j))
          psi(i, j) = (1.0 - sor) * psi(i, j) + sor * pnew
 60   continue
      return
      end
|}
    h n maxit npsi ulid h h h h h h

let default = source ()
