lib/apps/aerofoil.ml: Printf
