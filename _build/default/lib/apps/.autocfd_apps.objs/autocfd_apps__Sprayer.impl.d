lib/apps/sprayer.ml: Printf
