lib/apps/aerofoil.mli:
