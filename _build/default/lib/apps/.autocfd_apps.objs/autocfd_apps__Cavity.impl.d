lib/apps/cavity.ml: Printf
