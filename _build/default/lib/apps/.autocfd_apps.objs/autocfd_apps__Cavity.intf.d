lib/apps/cavity.mli:
