lib/apps/sprayer.mli:
