(** Case study 2 of the paper: "flow simulation of sprayers" — air velocity
    around a sprayer fan, for varying fan speeds and positions (§6).

    A 2-D stream-function / vorticity model on an [ni x nj] rectangular
    duct with a fan modelled as a momentum source column.  The program is
    written in the classic many-small-subroutines F77 style of the paper's
    6,100-line case study: per-stage subroutines communicating through
    COMMON, direction-specific boundary sweeps (which is what makes the
    Table 1 "before" counts differ between 4x1 and 1x4 partitions), an
    inner Poisson iteration, and a global convergence reduction. *)

(* declarations shared by every unit (COMMON storage) *)
let header ~ni ~nj ~jfan =
  Printf.sprintf
    {|      parameter (ni = %d, nj = %d, jfan = %d)
      real psi(ni, nj), omg(ni, nj), u(ni, nj), v(ni, nj)
      real w1(ni, nj), w2(ni, nj), vt(ni, nj), conc(ni, nj)
      common /flow/ psi, omg, u, v, w1, w2, vt, conc
      real dt, rnu, ufan, relax, eps, errmax
      common /par/ dt, rnu, ufan, relax, eps, errmax|}
    ni nj jfan

let source ?(ni = 300) ?(nj = 100) ?(ntime = 60) ?(npsi = 8) ?(jfan = 0)
    ?(ufan = 1.0) () =
  let jfan = if jfan > 0 then jfan else nj / 2 in
  let h = header ~ni ~nj ~jfan in
  Printf.sprintf
    {|c  sprayer flow simulation (Auto-CFD case study 2)
c$acfd grid(ni, nj)
c$acfd status(psi, omg, u, v, w1, w2, vt, conc)
      program sprayer
%s
      parameter (ntime = %d, npsi = %d)
      integer it, kit
      dt = 0.05
      rnu = 0.04
      ufan = %f
      relax = 0.8
      eps = 1.0e-6
      call init
      call fansrc
      do 500 it = 1, ntime
        call inletbc
        call wallbc
        call eddyvis
        call vorttr
        call resid
        call vortup
        call smoothu
        call deficit
        call outflow
        do 400 kit = 1, npsi
          call psisol
 400    continue
        call veloc
        call swirl
        call droplet
        call settle
        call fansrc
        if (errmax .lt. eps) goto 900
 500  continue
 900  continue
      write(*,*) it, errmax
      end

c ------------------------------------------------------------------
      subroutine init
%s
      integer i, j
      do 10 i = 1, ni
        do 10 j = 1, nj
          psi(i, j) = 0.1 * float(j - 1) / float(nj - 1)
          omg(i, j) = 0.0
          u(i, j) = 0.1
          v(i, j) = 0.0
          w1(i, j) = 0.0
          w2(i, j) = 0.0
          vt(i, j) = 0.0
          conc(i, j) = 0.0
 10   continue
      return
      end

c ------------------------------------------------------------------
c  fan momentum source: a column of forced vorticity at the fan
c  position (j-direction reads only)
      subroutine fansrc
%s
      integer i
      do 20 i = 2, ni - 1
        omg(i, jfan) = omg(i, jfan)
     &      + 0.5 * ufan * (psi(i, jfan+1) - psi(i, jfan-1))
        u(i, jfan) = u(i, jfan) + 0.05 * ufan
 20   continue
      return
      end

c ------------------------------------------------------------------
c  inlet/outlet boundaries: i-direction reads only
      subroutine inletbc
%s
      integer j
      do 30 j = 1, nj
        psi(1, j) = psi(2, j)
        omg(1, j) = omg(2, j)
        u(1, j) = 0.1
        psi(ni, j) = psi(ni-1, j)
        omg(ni, j) = omg(ni-1, j)
        u(ni, j) = u(ni-1, j)
 30   continue
      return
      end

c ------------------------------------------------------------------
c  no-slip walls: j-direction reads only (Thom's vorticity condition)
      subroutine wallbc
%s
      integer i
      do 40 i = 1, ni
        psi(i, 1) = 0.0
        omg(i, 1) = 2.0 * (psi(i, 1) - psi(i, 2))
        v(i, 1) = 0.0
        psi(i, nj) = 0.1
        omg(i, nj) = 2.0 * (psi(i, nj) - psi(i, nj-1))
        v(i, nj) = 0.0
 40   continue
      return
      end

c ------------------------------------------------------------------
c  algebraic eddy viscosity from the local shear
      subroutine eddyvis
%s
      integer i, j
      real sxy
      do 50 i = 2, ni - 1
        do 50 j = 2, nj - 1
          sxy = abs(u(i, j+1) - u(i, j-1)) + abs(v(i+1, j) - v(i-1, j))
          vt(i, j) = rnu + 0.002 * sxy
 50   continue
      return
      end

c ------------------------------------------------------------------
c  vorticity transport: explicit step into the scratch array w1
      subroutine vorttr
%s
      integer i, j
      real adv, dif
      do 60 i = 2, ni - 1
        do 60 j = 2, nj - 1
          adv = u(i, j) * (omg(i+1, j) - omg(i-1, j)) * 0.5
     &        + v(i, j) * (omg(i, j+1) - omg(i, j-1)) * 0.5
          dif = vt(i, j) * (omg(i+1, j) + omg(i-1, j) + omg(i, j+1)
     &        + omg(i, j-1) - 4.0 * omg(i, j))
          w1(i, j) = omg(i, j) + dt * (dif - adv)
 60   continue
      return
      end

c ------------------------------------------------------------------
c  vorticity update with under-relaxation (w1 is read at offset 0:
c  no communication is needed for it here)
      subroutine vortup
%s
      integer i, j
      do 70 i = 2, ni - 1
        do 70 j = 2, nj - 1
          omg(i, j) = (1.0 - relax) * omg(i, j) + relax * w1(i, j)
 70   continue
      return
      end

c ------------------------------------------------------------------
c  one Jacobi sweep of the stream-function Poisson equation
      subroutine psisol
%s
      integer i, j
      do 80 i = 2, ni - 1
        do 80 j = 2, nj - 1
          w2(i, j) = 0.25 * (psi(i+1, j) + psi(i-1, j)
     &             + psi(i, j+1) + psi(i, j-1) + omg(i, j))
 80   continue
      do 85 i = 2, ni - 1
        do 85 j = 2, nj - 1
          psi(i, j) = w2(i, j)
 85   continue
      return
      end

c ------------------------------------------------------------------
c  velocities from the stream function
      subroutine veloc
%s
      integer i, j
      do 90 i = 2, ni - 1
        do 90 j = 2, nj - 1
          u(i, j) = 0.5 * (psi(i, j+1) - psi(i, j-1))
          v(i, j) = -0.5 * (psi(i+1, j) - psi(i-1, j))
 90   continue
      return
      end


c ------------------------------------------------------------------
c  4th-difference streamwise smoothing of u (i-direction reads at
c  dependency distance 2)
      subroutine smoothu
%s
      integer i, j
      do 100 i = 3, ni - 2
        do 100 j = 2, nj - 1
          w2(i, j) = u(i, j) + 0.01 * (u(i-2, j) + u(i+2, j)
     &             - 4.0 * (u(i-1, j) + u(i+1, j)) + 6.0 * u(i, j))
 100  continue
      do 105 i = 3, ni - 2
        do 105 j = 2, nj - 1
          u(i, j) = w2(i, j)
 105  continue
      return
      end

c ------------------------------------------------------------------
c  convective outflow condition (i-direction reads only)
      subroutine outflow
%s
      integer j
      do 110 j = 2, nj - 1
        u(ni, j) = u(ni-1, j) - 0.1 * (u(ni-1, j) - u(ni-2, j))
        v(ni, j) = v(ni-1, j)
        conc(ni, j) = conc(ni-1, j)
 110  continue
      return
      end

c ------------------------------------------------------------------
c  swirl correction behind the fan (j-direction reads only)
      subroutine swirl
%s
      integer i
      do 120 i = 2, ni - 1
        v(i, jfan) = v(i, jfan)
     &      + 0.02 * ufan * (u(i, jfan+1) - u(i, jfan-1))
 120  continue
      do 125 i = 2, ni - 1
        v(i, jfan+1) = 0.5 * (v(i, jfan) + v(i, jfan+2))
 125  continue
      return
      end

c ------------------------------------------------------------------
c  droplet concentration transport (reads in both directions) with a
c  source at the fan column
      subroutine droplet
%s
      integer i, j
      real adv, dif
      do 130 i = 2, ni - 1
        do 130 j = 2, nj - 1
          adv = u(i, j) * (conc(i+1, j) - conc(i-1, j)) * 0.5
     &        + v(i, j) * (conc(i, j+1) - conc(i, j-1)) * 0.5
          dif = 0.01 * (conc(i+1, j) + conc(i-1, j) + conc(i, j+1)
     &        + conc(i, j-1) - 4.0 * conc(i, j))
          w1(i, j) = conc(i, j) + dt * (dif - adv)
 130  continue
      do 135 i = 2, ni - 1
        do 135 j = 2, nj - 1
          conc(i, j) = w1(i, j)
 135  continue
      do 138 i = 2, ni - 1
        conc(i, jfan) = conc(i, jfan) + 0.01 * ufan
 138  continue
      return
      end

c ------------------------------------------------------------------
c  gravitational settling of droplets (j-direction reads only)
      subroutine settle
%s
      integer i, j
      do 140 i = 2, ni - 1
        do 140 j = 2, nj - 1
          conc(i, j) = conc(i, j)
     &        + 0.02 * dt * (conc(i, j+1) - conc(i, j))
 140  continue
      return
      end

c ------------------------------------------------------------------
c  wake momentum-deficit smoothing of v (i-direction reads only)
      subroutine deficit
%s
      integer i, j
      do 150 i = 2, ni - 1
        do 150 j = 2, nj - 1
          w1(i, j) = v(i, j) + 0.05 * (v(i+1, j) - 2.0 * v(i, j)
     &             + v(i-1, j))
 150  continue
      do 155 i = 2, ni - 1
        do 155 j = 2, nj - 1
          v(i, j) = w1(i, j)
 155  continue
      return
      end

c ------------------------------------------------------------------
c  convergence residual: max vorticity change this step
      subroutine resid
%s
      integer i, j
      errmax = 0.0
      do 95 i = 2, ni - 1
        do 95 j = 2, nj - 1
          errmax = max(errmax, abs(w1(i, j) - omg(i, j)))
 95   continue
      return
      end
|}
    h ntime npsi ufan h h h h h h h h h h h h h h h h

let default = source ()
