(** Case study 2 of the paper: the sprayer flow simulation (§6) — a 2-D
    stream-function/vorticity model of the air flow through a duct with a
    fan source column, written in the supported Fortran subset with the
    classic one-subroutine-per-stage structure. *)

val source :
  ?ni:int ->
  ?nj:int ->
  ?ntime:int ->
  ?npsi:int ->
  ?jfan:int ->
  ?ufan:float ->
  unit ->
  string
(** [source ()] is the complete Fortran text.  Defaults match the paper's
    Table 3 configuration: a 300 x 100 grid ([ni] x [nj]), [ntime] outer
    steps, [npsi] inner Poisson sweeps per step, the fan at row [jfan]
    (default [nj/2]) with speed [ufan]. *)

val default : string
(** [source ()] with all defaults. *)
