(** Case study 1 of the paper: an aerofoil simulation (§6) — the velocity
    distribution over the aerofoil surface plus a boundary-layer analysis.

    A 3-D incompressible pseudo-compressibility model on an
    [ni x nj x nk] body-fitted (here: rectangular with a surface bump)
    grid.  The structural features the paper calls out are all present:

    - {e self-dependent field loops}: the pressure SOR sweep [psor] reads
      the same array it assigns in both lexicographic directions —
      parallelizable only with mirror-image decomposition (Fig. 3(b));
      the boundary-layer march [blayer] is self-dependent in one
      direction only (Fig. 3(a), wavefront);
    - a {e packed status array} [q(ni,nj,nk,3)] whose 4th dimension is not
      a status dimension (§4.2 case 4);
    - {e dependency distance 2} in the streamwise smoothing (§4.2 case 5);
    - direction-specific boundary sections (§4.2 cases 2 and 3);
    - the far-field boundary subroutine is called twice per step, the
      Fig. 8 multi-subroutine combining pattern. *)

let header ~ni ~nj ~nk =
  Printf.sprintf
    {|      parameter (ni = %d, nj = %d, nk = %d)
      real u(ni, nj, nk), v(ni, nj, nk), w(ni, nj, nk)
      real p(ni, nj, nk), d(ni, nj, nk)
      real q(ni, nj, nk, 3)
      common /flow/ u, v, w, p, d, q
      real dt, rnu, sor, eps, resmax, uinf, cl, cd, dtmin
      common /par/ dt, rnu, sor, eps, resmax, uinf, cl, cd, dtmin|}
    ni nj nk

let source ?(ni = 99) ?(nj = 41) ?(nk = 13) ?(ntime = 20) ?(npres = 4)
    ?(uinf = 1.0) () =
  let h = header ~ni ~nj ~nk in
  Printf.sprintf
    {|c  aerofoil simulation (Auto-CFD case study 1)
c$acfd grid(ni, nj, nk)
c$acfd status(u, v, w, p, d, q)
      program aerofoil
%s
      parameter (ntime = %d, npres = %d)
      integer it, kp
      dt = 0.02
      rnu = 0.05
      sor = 1.2
      eps = 1.0e-6
      uinf = %f
      call init
      do 500 it = 1, ntime
        call farbc
        call surfbc
        call spanbc
        call rhs
        call advanc
        call diverg
        do 400 kp = 1, npres
          call psor
 400    continue
        call correc
        call blayer
        call wallfn
        call smooth
        call spanav
        call farbc
        call forces
        call cflmin
        call resid
        if (resmax .lt. eps) goto 900
 500  continue
 900  continue
      write(*,*) it, resmax
      end

c ------------------------------------------------------------------
      subroutine init
%s
      integer i, j, k, m
      real yb
      do 10 i = 1, ni
        do 10 j = 1, nj
          do 10 k = 1, nk
            u(i, j, k) = uinf
            v(i, j, k) = 0.0
            w(i, j, k) = 0.0
            p(i, j, k) = 0.0
            d(i, j, k) = 0.0
 10   continue
      do 12 i = 1, ni
        do 12 j = 1, nj
          do 12 k = 1, nk
            do 12 m = 1, 3
              q(i, j, k, m) = 0.0
 12   continue
c  aerofoil bump: slow the flow near the surface around mid-chord
      do 15 i = 1, ni
        do 15 k = 1, nk
          yb = float(i - ni/2) / float(ni)
          u(i, 1, k) = 0.0
          u(i, 2, k) = uinf * (0.2 + yb * yb)
 15   continue
      return
      end

c ------------------------------------------------------------------
c  far-field boundaries (i-direction reads only); called twice per
c  step, as in the paper's Fig. 8 pattern
      subroutine farbc
%s
      integer j, k
      do 20 j = 1, nj
        do 20 k = 1, nk
          u(1, j, k) = uinf
          v(1, j, k) = 0.0
          p(1, j, k) = p(2, j, k)
          u(ni, j, k) = u(ni-1, j, k)
          v(ni, j, k) = v(ni-1, j, k)
          p(ni, j, k) = 0.0
 20   continue
      return
      end

c ------------------------------------------------------------------
c  aerofoil surface (j-direction reads only): no-slip wall and normal
c  pressure extrapolation
      subroutine surfbc
%s
      integer i, k
      do 30 i = 1, ni
        do 30 k = 1, nk
          u(i, 1, k) = 0.0
          v(i, 1, k) = 0.0
          w(i, 1, k) = 0.0
          p(i, 1, k) = p(i, 2, k)
          u(i, nj, k) = uinf
          p(i, nj, k) = p(i, nj-1, k)
 30   continue
      return
      end

c ------------------------------------------------------------------
c  spanwise symmetry planes (k-direction reads only)
      subroutine spanbc
%s
      integer i, j
      do 40 i = 1, ni
        do 40 j = 1, nj
          u(i, j, 1) = u(i, j, 2)
          v(i, j, 1) = v(i, j, 2)
          w(i, j, 1) = 0.0
          p(i, j, 1) = p(i, j, 2)
          u(i, j, nk) = u(i, j, nk-1)
          v(i, j, nk) = v(i, j, nk-1)
          w(i, j, nk) = 0.0
          p(i, j, nk) = p(i, j, nk-1)
 40   continue
      return
      end

c ------------------------------------------------------------------
c  momentum right-hand sides into the packed array q(.,.,.,m)
      subroutine rhs
%s
      integer i, j, k
      real adv, dif, upw, vt2
      do 50 i = 2, ni - 1
        do 50 j = 2, nj - 1
          do 50 k = 2, nk - 1
            adv = u(i,j,k) * (u(i+1,j,k) - u(i-1,j,k)) * 0.5
     &          + v(i,j,k) * (u(i,j+1,k) - u(i,j-1,k)) * 0.5
     &          + w(i,j,k) * (u(i,j,k+1) - u(i,j,k-1)) * 0.5
            dif = rnu * (u(i+1,j,k) + u(i-1,j,k) + u(i,j+1,k)
     &          + u(i,j-1,k) + u(i,j,k+1) + u(i,j,k-1)
     &          - 6.0 * u(i,j,k))
            upw = abs(u(i,j,k)) * (u(i+1,j,k) - 2.0 * u(i,j,k)
     &          + u(i-1,j,k)) * 0.25
     &          + abs(v(i,j,k)) * (u(i,j+1,k) - 2.0 * u(i,j,k)
     &          + u(i,j-1,k)) * 0.25
     &          + abs(w(i,j,k)) * (u(i,j,k+1) - 2.0 * u(i,j,k)
     &          + u(i,j,k-1)) * 0.25
            vt2 = rnu * (1.0 + 0.1 * (abs(u(i+1,j,k) - u(i-1,j,k))
     &          + abs(v(i,j+1,k) - v(i,j-1,k))
     &          + abs(w(i,j,k+1) - w(i,j,k-1))))
            q(i, j, k, 1) = dif * vt2 / rnu - adv + upw
 50   continue
      do 52 i = 2, ni - 1
        do 52 j = 2, nj - 1
          do 52 k = 2, nk - 1
            adv = u(i,j,k) * (v(i+1,j,k) - v(i-1,j,k)) * 0.5
     &          + v(i,j,k) * (v(i,j+1,k) - v(i,j-1,k)) * 0.5
     &          + w(i,j,k) * (v(i,j,k+1) - v(i,j,k-1)) * 0.5
            dif = rnu * (v(i+1,j,k) + v(i-1,j,k) + v(i,j+1,k)
     &          + v(i,j-1,k) + v(i,j,k+1) + v(i,j,k-1)
     &          - 6.0 * v(i,j,k))
            upw = abs(u(i,j,k)) * (v(i+1,j,k) - 2.0 * v(i,j,k)
     &          + v(i-1,j,k)) * 0.25
     &          + abs(v(i,j,k)) * (v(i,j+1,k) - 2.0 * v(i,j,k)
     &          + v(i,j-1,k)) * 0.25
     &          + abs(w(i,j,k)) * (v(i,j,k+1) - 2.0 * v(i,j,k)
     &          + v(i,j,k-1)) * 0.25
            vt2 = rnu * (1.0 + 0.1 * (abs(u(i+1,j,k) - u(i-1,j,k))
     &          + abs(v(i,j+1,k) - v(i,j-1,k))
     &          + abs(w(i,j,k+1) - w(i,j,k-1))))
            q(i, j, k, 2) = dif * vt2 / rnu - adv + upw
 52   continue
      do 54 i = 2, ni - 1
        do 54 j = 2, nj - 1
          do 54 k = 2, nk - 1
            adv = u(i,j,k) * (w(i+1,j,k) - w(i-1,j,k)) * 0.5
     &          + v(i,j,k) * (w(i,j+1,k) - w(i,j-1,k)) * 0.5
     &          + w(i,j,k) * (w(i,j,k+1) - w(i,j,k-1)) * 0.5
            dif = rnu * (w(i+1,j,k) + w(i-1,j,k) + w(i,j+1,k)
     &          + w(i,j-1,k) + w(i,j,k+1) + w(i,j,k-1)
     &          - 6.0 * w(i,j,k))
            upw = abs(u(i,j,k)) * (w(i+1,j,k) - 2.0 * w(i,j,k)
     &          + w(i-1,j,k)) * 0.25
     &          + abs(v(i,j,k)) * (w(i,j+1,k) - 2.0 * w(i,j,k)
     &          + w(i,j-1,k)) * 0.25
     &          + abs(w(i,j,k)) * (w(i,j,k+1) - 2.0 * w(i,j,k)
     &          + w(i,j,k-1)) * 0.25
            vt2 = rnu * (1.0 + 0.1 * (abs(u(i+1,j,k) - u(i-1,j,k))
     &          + abs(v(i,j+1,k) - v(i,j-1,k))
     &          + abs(w(i,j,k+1) - w(i,j,k-1))))
            q(i, j, k, 3) = dif * vt2 / rnu - adv + upw
 54   continue
      return
      end

c ------------------------------------------------------------------
c  explicit predictor step (reads the packed q at offset 0)
      subroutine advanc
%s
      integer i, j, k
      do 60 i = 2, ni - 1
        do 60 j = 2, nj - 1
          do 60 k = 2, nk - 1
            u(i, j, k) = u(i, j, k) + dt * q(i, j, k, 1)
            v(i, j, k) = v(i, j, k) + dt * q(i, j, k, 2)
            w(i, j, k) = w(i, j, k) + dt * q(i, j, k, 3)
 60   continue
      return
      end

c ------------------------------------------------------------------
c  divergence of the predicted velocity
      subroutine diverg
%s
      integer i, j, k
      do 70 i = 2, ni - 1
        do 70 j = 2, nj - 1
          do 70 k = 2, nk - 1
            d(i, j, k) = 0.5 * ((u(i+1,j,k) - u(i-1,j,k))
     &                 + (v(i,j+1,k) - v(i,j-1,k))
     &                 + (w(i,j,k+1) - w(i,j,k-1))) / dt
 70   continue
      return
      end

c ------------------------------------------------------------------
c  one pressure SOR sweep: a self-dependent field loop with
c  dependences both along and against the lexicographic order —
c  the mirror-image decomposition case (Fig. 3(b))
      subroutine psor
%s
      integer i, j, k
      real pnew
      do 80 i = 2, ni - 1
        do 80 j = 2, nj - 1
          do 80 k = 2, nk - 1
            pnew = (p(i+1,j,k) + p(i-1,j,k) + p(i,j+1,k) + p(i,j-1,k)
     &            + p(i,j,k+1) + p(i,j,k-1) - d(i,j,k)) / 6.0
            p(i, j, k) = (1.0 - sor) * p(i, j, k) + sor * pnew
 80   continue
      return
      end

c ------------------------------------------------------------------
c  projection: subtract the pressure gradient
      subroutine correc
%s
      integer i, j, k
      do 90 i = 2, ni - 1
        do 90 j = 2, nj - 1
          do 90 k = 2, nk - 1
            u(i,j,k) = u(i,j,k) - 0.5 * dt * (p(i+1,j,k) - p(i-1,j,k))
            v(i,j,k) = v(i,j,k) - 0.5 * dt * (p(i,j+1,k) - p(i,j-1,k))
            w(i,j,k) = w(i,j,k) - 0.5 * dt * (p(i,j,k+1) - p(i,j,k-1))
 90   continue
      return
      end

c ------------------------------------------------------------------
c  boundary-layer analysis: an implicit-flavoured march away from the
c  surface — self-dependent in one direction only (Fig. 3(a)),
c  parallelizable by wavefront pipelining
      subroutine blayer
%s
      integer i, j, k
      real cf
      cf = 0.3
      do 95 j = 2, nj / 2
        do 95 i = 2, ni - 1
          do 95 k = 2, nk - 1
            u(i, j, k) = (1.0 - cf) * u(i, j, k)
     &                 + cf * (u(i, j-1, k) + rnu * (u(i+1, j, k)
     &                 - 2.0 * u(i, j, k) + u(i-1, j, k)))
            v(i, j, k) = (1.0 - cf) * v(i, j, k)
     &                 + cf * (v(i, j-1, k) + rnu * (v(i+1, j, k)
     &                 - 2.0 * v(i, j, k) + v(i-1, j, k)))
            w(i, j, k) = (1.0 - cf) * w(i, j, k)
     &                 + cf * (w(i, j-1, k) + rnu * (w(i+1, j, k)
     &                 - 2.0 * w(i, j, k) + w(i-1, j, k)))
 95   continue
      return
      end

c ------------------------------------------------------------------
c  4th-difference streamwise smoothing (dependency distance 2)
      subroutine smooth
%s
      integer i, j, k
      do 100 i = 3, ni - 2
        do 100 j = 2, nj - 1
          do 100 k = 2, nk - 1
            d(i, j, k) = u(i, j, k) + 0.02 * (u(i-2, j, k)
     &                 + u(i+2, j, k) - 4.0 * (u(i-1, j, k)
     &                 + u(i+1, j, k)) + 6.0 * u(i, j, k))
 100  continue
      do 105 i = 3, ni - 2
        do 105 j = 2, nj - 1
          do 105 k = 2, nk - 1
            u(i, j, k) = d(i, j, k)
 105  continue
      return
      end


c ------------------------------------------------------------------
c  wall-function correction in the near-wall layer (j-direction reads
c  of all three velocity components)
      subroutine wallfn
%s
      integer i, k
      real tw
      do 96 i = 2, ni - 1
        do 96 k = 2, nk - 1
          tw = u(i, 2, k) - u(i, 1, k)
          u(i, 2, k) = u(i, 2, k) - 0.05 * (tw - rnu * (u(i, 3, k)
     &               - u(i, 2, k)))
          v(i, 2, k) = 0.5 * (v(i, 1, k) + v(i, 3, k))
          w(i, 2, k) = 0.5 * (w(i, 1, k) + w(i, 3, k))
 96   continue
      return
      end

c ------------------------------------------------------------------
c  spanwise averaging smoothing (k-direction reads only)
      subroutine spanav
%s
      integer i, j, k
      do 107 i = 2, ni - 1
        do 107 j = 2, nj - 1
          do 107 k = 2, nk - 1
            d(i, j, k) = 0.25 * (w(i, j, k-1) + 2.0 * w(i, j, k)
     &                 + w(i, j, k+1))
 107  continue
      do 108 i = 2, ni - 1
        do 108 j = 2, nj - 1
          do 108 k = 2, nk - 1
            w(i, j, k) = d(i, j, k)
 108  continue
      return
      end


c ------------------------------------------------------------------
c  lift and drag: pressure integrals over the aerofoil surface
c  (j = 1 plane) — global Sum reductions
      subroutine forces
%s
      integer i, k
      real yb
      cl = 0.0
      cd = 0.0
      do 109 i = 2, ni - 1
        do 109 k = 2, nk - 1
          yb = 2.0 * float(i - ni/2) / float(ni)
          cl = cl + p(i, 1, k)
          cd = cd + p(i, 1, k) * yb
 109  continue
      return
      end

c ------------------------------------------------------------------
c  stability time-step bound: a global Min reduction over the field
      subroutine cflmin
%s
      integer i, j, k
      real speed
      dtmin = 1.0
      do 115 i = 2, ni - 1
        do 115 j = 2, nj - 1
          do 115 k = 2, nk - 1
            speed = abs(u(i,j,k)) + abs(v(i,j,k)) + abs(w(i,j,k))
     &            + 0.001
            dtmin = min(dtmin, 0.5 / speed)
 115  continue
      return
      end

c ------------------------------------------------------------------
c  convergence residual: max divergence magnitude
      subroutine resid
%s
      integer i, j, k
      resmax = 0.0
      do 110 i = 2, ni - 1
        do 110 j = 2, nj - 1
          do 110 k = 2, nk - 1
            resmax = max(resmax, abs(d(i, j, k)))
 110  continue
      return
      end
|}
    h ntime npres uinf h h h h h h h h h h h h h h h h

let default = source ()
