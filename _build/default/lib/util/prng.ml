type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64, used to seed the xoshiro state *)
let splitmix seed =
  let z = Int64.add !seed 0x9E3779B97F4A7C15L in
  seed := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let s = ref (Int64.of_int seed) in
  let s0 = splitmix s in
  let s1 = splitmix s in
  let s2 = splitmix s in
  let s3 = splitmix s in
  { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (next t) land max_int in
  create seed

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.to_int (next t) land max_int in
  r mod bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next t) 1L = 1L
let choose t a = a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
