(** Deterministic splittable pseudo-random generator (xoshiro256 starstar).

    Used everywhere randomness is needed so that test and benchmark output is
    reproducible without touching the global [Random] state. *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** An independent child stream; the parent advances. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
