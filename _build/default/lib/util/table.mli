(** ASCII table rendering for the benchmark harness — prints rows in the same
    layout as the paper's tables. *)

type t

val create : title:string -> headers:string list -> t
val add_row : t -> string list -> unit
(** @raise Invalid_argument when the row width differs from the header. *)

val render : t -> string
val print : t -> unit

(** Cell formatting helpers. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_pct : float -> string
(** [cell_pct 0.56] is ["56%"]. *)
