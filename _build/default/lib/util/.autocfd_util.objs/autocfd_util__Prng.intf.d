lib/util/prng.mli:
