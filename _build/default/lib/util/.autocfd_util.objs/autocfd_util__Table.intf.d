lib/util/table.mli:
