type t = {
  title : string;
  headers : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~headers = { title; headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d"
         (List.length t.headers) (List.length row));
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line row =
    "| "
    ^ String.concat " | " (List.map2 pad row widths)
    ^ " |"
  in
  let sep =
    "+"
    ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (line r);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let print t = print_string (render t)
let cell_int = string_of_int
let cell_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f
let cell_pct f = Printf.sprintf "%.0f%%" (f *. 100.)
