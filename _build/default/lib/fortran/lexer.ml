type token = { tok : Token.t; tline : int }

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_ident_char c = is_alpha c || is_digit c || c = '_' || c = '$'

(* Dot-delimited operator words: .lt. .and. .true. ... *)
let dot_words =
  [
    ("lt", Token.Lt); ("le", Token.Le); ("gt", Token.Gt); ("ge", Token.Ge);
    ("eq", Token.Eq); ("ne", Token.Ne); ("and", Token.And); ("or", Token.Or);
    ("not", Token.Not); ("true", Token.True); ("false", Token.False);
  ]

(* [dot_word_at s i] recognizes a dot-operator starting at the '.' at
   index [i]; returns (token, length including both dots). *)
let dot_word_at s i =
  let n = String.length s in
  let j = ref (i + 1) in
  while !j < n && is_alpha s.[!j] do incr j done;
  if !j < n && s.[!j] = '.' && !j > i + 1 then
    let word = String.lowercase_ascii (String.sub s (i + 1) (!j - i - 1)) in
    match List.assoc_opt word dot_words with
    | Some tok -> Some (tok, !j - i + 1)
    | None -> None
  else None

(* Lex a number starting at [i]; stops before a dot-operator such as the
   ".lt." in "1.lt.2".  Returns (token, next index). *)
let lex_number line s i =
  let n = String.length s in
  let j = ref i in
  while !j < n && is_digit s.[!j] do incr j done;
  let has_frac = ref false in
  (if !j < n && s.[!j] = '.' then
     match dot_word_at s !j with
     | Some _ -> () (* "1.lt.2": the dot belongs to the operator *)
     | None ->
         has_frac := true;
         incr j;
         while !j < n && is_digit s.[!j] do incr j done);
  let has_exp = ref false in
  (if !j < n && (match Char.lowercase_ascii s.[!j] with
                 | 'e' | 'd' -> true
                 | _ -> false)
   then
     let k = ref (!j + 1) in
     let () = if !k < n && (s.[!k] = '+' || s.[!k] = '-') then incr k in
     if !k < n && is_digit s.[!k] then begin
       has_exp := true;
       incr k;
       while !k < n && is_digit s.[!k] do incr k done;
       j := !k
     end);
  let text = String.sub s i (!j - i) in
  if !has_frac || !has_exp then
    let text =
      String.map (fun c -> if c = 'd' || c = 'D' then 'e' else c) text
    in
    match float_of_string_opt text with
    | Some f -> (Token.Real f, !j)
    | None -> Loc.errorf (Loc.make line i) "malformed real literal %S" text
  else
    match int_of_string_opt text with
    | Some k -> (Token.Int k, !j)
    | None -> Loc.errorf (Loc.make line i) "malformed integer literal %S" text

let tokens_of_line line s =
  let n = String.length s in
  let out = ref [] in
  let emit tok = out := { tok; tline = line } :: !out in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if is_digit c then begin
      let tok, j = lex_number line s !i in
      emit tok;
      i := j
    end
    else if is_alpha c || c = '_' then begin
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do incr j done;
      emit (Token.Ident (String.lowercase_ascii (String.sub s !i (!j - !i))));
      i := !j
    end
    else if c = '\'' then begin
      (* string literal with '' escaping *)
      let buf = Buffer.create 16 in
      let j = ref (!i + 1) in
      let closed = ref false in
      while not !closed && !j < n do
        if s.[!j] = '\'' then
          if !j + 1 < n && s.[!j + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            j := !j + 2
          end
          else begin
            closed := true;
            incr j
          end
        else begin
          Buffer.add_char buf s.[!j];
          incr j
        end
      done;
      if not !closed then
        Loc.errorf (Loc.make line !i) "unterminated string literal";
      emit (Token.Str (Buffer.contents buf));
      i := !j
    end
    else if c = '.' then begin
      match dot_word_at s !i with
      | Some (tok, len) ->
          emit tok;
          i := !i + len
      | None ->
          if !i + 1 < n && is_digit s.[!i + 1] then begin
            (* leading-dot real like .5e3 — lex_number handles it since its
               integer-part loop accepts zero digits *)
            let tok, j = lex_number line s !i in
            emit tok;
            i := j
          end
          else Loc.errorf (Loc.make line !i) "unexpected '.'"
    end
    else begin
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match two with
      | "**" -> emit Token.Power; i := !i + 2
      | "<=" -> emit Token.Le; i := !i + 2
      | ">=" -> emit Token.Ge; i := !i + 2
      | "==" -> emit Token.Eq; i := !i + 2
      | "/=" -> emit Token.Ne; i := !i + 2
      | _ -> (
          (match c with
          | '+' -> emit Token.Plus
          | '-' -> emit Token.Minus
          | '*' -> emit Token.Star
          | '/' -> emit Token.Slash
          | '(' -> emit Token.Lparen
          | ')' -> emit Token.Rparen
          | ',' -> emit Token.Comma
          | ':' -> emit Token.Colon
          | '=' -> emit Token.Assign
          | '<' -> emit Token.Lt
          | '>' -> emit Token.Gt
          | _ -> Loc.errorf (Loc.make line !i) "unexpected character %C" c);
          incr i)
    end
  done;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Logical-line assembly                                               *)
(* ------------------------------------------------------------------ *)

type raw_line = { rline : int; rtext : string }

let is_comment_line s =
  String.length s > 0
  && (s.[0] = 'c' || s.[0] = 'C' || s.[0] = '*' || String.trim s = ""
     || (String.trim s <> "" && (String.trim s).[0] = '!'))

(* Strip a trailing '!' comment, respecting string literals. *)
let strip_bang s =
  let n = String.length s in
  let rec scan i in_str =
    if i >= n then s
    else if in_str then
      if s.[i] = '\'' then scan (i + 1) false else scan (i + 1) true
    else if s.[i] = '\'' then scan (i + 1) true
    else if s.[i] = '!' then String.sub s 0 i
    else scan (i + 1) false
  in
  scan 0 false

(* Fixed-form continuation: nonblank, non-'0' character in column 6 with
   columns 1-5 blank. *)
let is_fixed_continuation s =
  String.length s >= 6
  && (let pre = String.sub s 0 5 in
      String.for_all (fun c -> c = ' ') pre)
  && s.[5] <> ' ' && s.[5] <> '0'

let assemble source =
  let lines = String.split_on_char '\n' source in
  let directives = ref [] in
  let logical = ref [] in
  let pending = Buffer.create 80 in
  let pending_line = ref 0 in
  let flush_pending () =
    if Buffer.length pending > 0 then begin
      logical := { rline = !pending_line; rtext = Buffer.contents pending }
                 :: !logical;
      Buffer.clear pending
    end
  in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      match Directive.recognize raw with
      | Some payload ->
          directives := Directive.parse ~line:lineno payload :: !directives
      | None ->
          if is_comment_line raw then ()
          else
            let body = strip_bang raw in
            if String.trim body = "" then ()
            else if is_fixed_continuation body then begin
              if Buffer.length pending = 0 then
                Loc.errorf (Loc.make lineno 6)
                  "continuation line without a preceding statement";
              Buffer.add_char pending ' ';
              Buffer.add_string pending
                (String.sub body 6 (String.length body - 6))
            end
            else begin
              let trimmed = String.trim body in
              (* free-form leading '&' continuation *)
              if String.length trimmed > 0 && trimmed.[0] = '&'
                 && Buffer.length pending > 0
              then begin
                Buffer.add_char pending ' ';
                Buffer.add_string pending
                  (String.sub trimmed 1 (String.length trimmed - 1))
              end
              else begin
                flush_pending ();
                pending_line := lineno;
                Buffer.add_string pending body
              end;
              (* trailing '&' continuation: keep accumulating *)
              let cur = Buffer.contents pending in
              let cur = String.trim cur in
              if String.length cur > 0 && cur.[String.length cur - 1] = '&'
              then begin
                Buffer.clear pending;
                Buffer.add_string pending
                  (String.sub cur 0 (String.length cur - 1))
              end
            end)
    lines;
  flush_pending ();
  (List.rev !logical, List.rev !directives)

(* Extract a leading statement label: digits followed by whitespace. *)
let split_label s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n && (s.[!i] = ' ' || s.[!i] = '\t') do incr i done;
  let start = !i in
  while !i < n && is_digit s.[!i] do incr i done;
  if !i > start && !i < n && (s.[!i] = ' ' || s.[!i] = '\t') then
    let label = int_of_string (String.sub s start (!i - start)) in
    (Some label, String.sub s !i (n - !i))
  else (None, s)

let tokenize source =
  let logical, directives = assemble source in
  let toks =
    List.concat_map
      (fun { rline; rtext } ->
        let label, rest = split_label rtext in
        let lead =
          match label with
          | Some l -> [ { tok = Token.Label l; tline = rline } ]
          | None -> []
        in
        lead @ tokens_of_line rline rest
        @ [ { tok = Token.Newline; tline = rline } ])
      logical
  in
  (toks @ [ { tok = Token.Eof; tline = 0 } ], directives)
