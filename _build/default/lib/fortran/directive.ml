(** [c$acfd] user directives — the "minimum number of user directives"
    Auto-CFD requires (the paper's Appendix 1 equivalent).

    Syntax, one directive per comment line:
    {v
    c$acfd grid(ni, nj, nk)      names of the flow-field extent constants
    c$acfd status(u, v, p, q:3)  status arrays; [name:k] = first k dims are
                                 status dimensions (default: inferred by
                                 matching declared extents to the grid)
    c$acfd dist(a, 2)            dependency distance override for array a
    c$acfd serial                keep the next DO loop sequential
    v} *)

type kind =
  | Grid of string list
  | Status of (string * int option) list
  | Dist of string * int
  | Serial
[@@deriving show { with_path = false }, eq]

type t = { dir_line : int; dir_kind : kind }
[@@deriving show { with_path = false }, eq]

let prefix = "$acfd"

(** [recognize line] is the directive payload when [line] is a [c$acfd]
    comment (case-insensitive, 'c', 'C' or '*' in column 1, or a '!$acfd'
    free-form comment). *)
let recognize line =
  let line = String.trim line in
  let lower = String.lowercase_ascii line in
  let matches pre = String.length lower > String.length pre
                    && String.sub lower 0 (String.length pre) = pre in
  if matches ("c" ^ prefix) || matches ("*" ^ prefix) || matches ("!" ^ prefix)
  then
    let payload =
      String.sub line (1 + String.length prefix)
        (String.length line - 1 - String.length prefix)
    in
    (* [c$acfd>] marks generated annotations, not user directives *)
    if String.length payload > 0 && payload.[0] = '>' then None
    else Some payload
  else None

exception Parse_error of int * string

let split_args s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun x -> x <> "")

(* payload looks like "  grid(ni, nj, nk)" or "  serial" *)
let parse ~line payload =
  let payload = String.trim (String.lowercase_ascii payload) in
  let name, args =
    match String.index_opt payload '(' with
    | None -> (payload, [])
    | Some i ->
        if payload.[String.length payload - 1] <> ')' then
          raise (Parse_error (line, "unterminated directive argument list"));
        let name = String.trim (String.sub payload 0 i) in
        let inner =
          String.sub payload (i + 1) (String.length payload - i - 2)
        in
        (name, split_args inner)
  in
  let kind =
    match name with
    | "grid" ->
        if args = [] then raise (Parse_error (line, "grid() needs arguments"));
        Grid args
    | "status" ->
        let parse_one a =
          match String.split_on_char ':' a with
          | [ n ] -> (n, None)
          | [ n; k ] -> (
              match int_of_string_opt (String.trim k) with
              | Some k when k > 0 -> (String.trim n, Some k)
              | _ -> raise (Parse_error (line, "bad status dimension count")))
          | _ -> raise (Parse_error (line, "bad status() argument: " ^ a))
        in
        Status (List.map parse_one args)
    | "dist" -> (
        match args with
        | [ a; k ] -> (
            match int_of_string_opt k with
            | Some k when k > 0 -> Dist (a, k)
            | _ -> raise (Parse_error (line, "dist() distance must be > 0")))
        | _ -> raise (Parse_error (line, "dist(array, k) expects 2 arguments")))
    | "serial" -> Serial
    | other -> raise (Parse_error (line, "unknown directive: " ^ other))
  in
  { dir_line = line; dir_kind = kind }

let grids dirs =
  List.concat_map
    (fun d -> match d.dir_kind with Grid g -> g | _ -> [])
    dirs

let status_arrays dirs =
  List.concat_map
    (fun d -> match d.dir_kind with Status s -> s | _ -> [])
    dirs

let dist_overrides dirs =
  List.filter_map
    (fun d -> match d.dir_kind with Dist (a, k) -> Some (a, k) | _ -> None)
    dirs

let serial_lines dirs =
  List.filter_map
    (fun d -> match d.dir_kind with Serial -> Some d.dir_line | _ -> None)
    dirs
