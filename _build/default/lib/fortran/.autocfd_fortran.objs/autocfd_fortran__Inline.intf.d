lib/fortran/inline.pp.mli: Ast
