lib/fortran/token.pp.ml: Ppx_deriving_runtime Printf
