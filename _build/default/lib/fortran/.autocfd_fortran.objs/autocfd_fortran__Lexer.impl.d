lib/fortran/lexer.pp.ml: Buffer Char Directive List Loc String Token
