lib/fortran/parser.pp.mli: Ast
