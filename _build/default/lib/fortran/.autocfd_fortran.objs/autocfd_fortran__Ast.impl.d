lib/fortran/ast.pp.ml: Directive List Option Ppx_deriving_runtime String
