lib/fortran/pretty.pp.ml: Ast Buffer Float List Printf String
