lib/fortran/pretty.pp.mli: Ast
