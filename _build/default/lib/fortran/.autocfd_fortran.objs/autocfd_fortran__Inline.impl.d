lib/fortran/inline.pp.ml: Ast Hashtbl List Option Printf String
