lib/fortran/loc.pp.ml: Format Ppx_deriving_runtime
