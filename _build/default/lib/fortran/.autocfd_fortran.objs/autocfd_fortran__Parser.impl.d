lib/fortran/parser.pp.ml: Array Ast Lexer List Loc Token
