lib/fortran/lexer.pp.mli: Directive Token
