lib/fortran/directive.pp.ml: List Ppx_deriving_runtime String
