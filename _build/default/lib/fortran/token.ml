(** Tokens of the Fortran-77 subset.  Keywords are not reserved: they are
    lexed as [Ident] and recognized contextually by the parser, as in real
    Fortran. *)

type t =
  | Int of int
  | Real of float
  | Str of string
  | Ident of string  (** lower-cased *)
  | Label of int  (** statement label in the label field *)
  | Plus
  | Minus
  | Star
  | Slash
  | Power  (** ** *)
  | Lparen
  | Rparen
  | Comma
  | Colon
  | Assign  (** = *)
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or
  | Not
  | True
  | False
  | Newline  (** end of logical line *)
  | Eof
[@@deriving show { with_path = false }, eq]

let to_string = function
  | Int i -> string_of_int i
  | Real f -> string_of_float f
  | Str s -> Printf.sprintf "'%s'" s
  | Ident s -> s
  | Label i -> Printf.sprintf "label %d" i
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Power -> "**"
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Colon -> ":"
  | Assign -> "="
  | Lt -> ".lt."
  | Le -> ".le."
  | Gt -> ".gt."
  | Ge -> ".ge."
  | Eq -> ".eq."
  | Ne -> ".ne."
  | And -> ".and."
  | Or -> ".or."
  | Not -> ".not."
  | True -> ".true."
  | False -> ".false."
  | Newline -> "<newline>"
  | Eof -> "<eof>"
