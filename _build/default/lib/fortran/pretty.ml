open Ast

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Pow -> "**"
  | Lt -> " .lt. "
  | Le -> " .le. "
  | Gt -> " .gt. "
  | Ge -> " .ge. "
  | Eq -> " .eq. "
  | Ne -> " .ne. "
  | And -> " .and. "
  | Or -> " .or. "

(* binding strength, mirroring the parser's precedence ladder *)
let prec = function
  | Or -> 1
  | And -> 2
  | Lt | Le | Gt | Ge | Eq | Ne -> 3
  | Add | Sub -> 4
  | Mul | Div -> 5
  | Pow -> 7

let float_str f =
  if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if String.contains s '.' || String.contains s 'e'
       || String.contains s 'n' (* nan/inf *)
    then s
    else s ^ ".0"

let rec expr_prec p e =
  match e with
  | Const_int i -> if i < 0 then Printf.sprintf "(%d)" i else string_of_int i
  | Const_real f ->
      if f < 0.0 then "(" ^ float_str f ^ ")" else float_str f
  | Const_bool true -> ".true."
  | Const_bool false -> ".false."
  | Const_str s ->
      "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"
  | Var v -> v
  | Ref (name, args) ->
      Printf.sprintf "%s(%s)" name
        (String.concat ", " (List.map (expr_prec 0) args))
  | Unop (Neg, a) ->
      let s = "-" ^ expr_prec 6 a in
      if p > 4 then "(" ^ s ^ ")" else s
  | Unop (Lnot, a) ->
      let s = ".not. " ^ expr_prec 3 a in
      if p > 2 then "(" ^ s ^ ")" else s
  | Binop (op, a, b) ->
      let q = prec op in
      (* relationals are non-associative in Fortran: parenthesize nested
         comparisons on both sides; ** is right-associative *)
      let left_p, right_p =
        match op with
        | Lt | Le | Gt | Ge | Eq | Ne -> (q + 1, q + 1)
        | Pow -> (q + 1, q)
        (* the parser is left-associative: a right operand at the same
           precedence level must be parenthesized to round-trip *)
        | Sub | Div | Add | Mul | And | Or -> (q, q + 1)
      in
      let s = expr_prec left_p a ^ binop_str op ^ expr_prec right_p b in
      if p > q then "(" ^ s ^ ")" else s
  | Local_lo (d, e) -> Printf.sprintf "max(%s, acfd_lo%d)" (expr_prec 0 e) d
  | Local_hi (d, e) -> Printf.sprintf "min(%s, acfd_hi%d)" (expr_prec 0 e) d

let expr e = expr_prec 0 e

let dir_str = function Dplus -> "+" | Dminus -> "-"

let transfer_str t =
  Printf.sprintf "%s[dim %d, dir %s, depth %d]" t.xfer_array t.xfer_dim
    (dir_str t.xfer_dir) t.xfer_depth

let comm_str = function
  | Exchange ts ->
      Printf.sprintf "call acfd_exchange(%s)"
        (String.concat ", " (List.map transfer_str ts))
  | Allreduce_max v -> Printf.sprintf "call acfd_allreduce_max(%s)" v
  | Allreduce_min v -> Printf.sprintf "call acfd_allreduce_min(%s)" v
  | Allreduce_sum v -> Printf.sprintf "call acfd_allreduce_sum(%s)" v
  | Broadcast vs ->
      Printf.sprintf "call acfd_broadcast(%s)" (String.concat ", " vs)
  | Allgather vs ->
      Printf.sprintf "call acfd_allgather(%s)" (String.concat ", " vs)
  | Barrier -> "call acfd_barrier()"

let sched_comment = function
  | Sched_seq -> None
  | Sched_block d -> Some (Printf.sprintf "c$acfd> block-partitioned on grid dim %d" d)
  | Sched_pipeline { dim; dir } ->
      Some
        (Printf.sprintf "c$acfd> pipelined on grid dim %d, direction %s" dim
           (dir_str dir))

let rec stmt ?(indent = 6) st =
  let pad = String.make indent ' ' in
  let label_pad =
    match st.s_label with
    | Some l ->
        let ls = string_of_int l in
        let fill = max 1 (indent - String.length ls) in
        ls ^ String.make fill ' '
    | None -> pad
  in
  match st.s_kind with
  | Assign (lhs, rhs) -> label_pad ^ expr lhs ^ " = " ^ expr rhs
  | Continue -> label_pad ^ "continue"
  | Goto l -> label_pad ^ "goto " ^ string_of_int l
  | Return -> label_pad ^ "return"
  | Stop -> label_pad ^ "stop"
  | Call (name, []) -> label_pad ^ "call " ^ name
  | Call (name, args) ->
      label_pad ^ Printf.sprintf "call %s(%s)" name
        (String.concat ", " (List.map expr args))
  | Read items ->
      label_pad ^ "read(*,*) " ^ String.concat ", " (List.map expr items)
  | Write items ->
      label_pad ^ "write(*,*) " ^ String.concat ", " (List.map expr items)
  | Comm c -> label_pad ^ comm_str c
  | Pipeline_recv { dim; dir; arrays } ->
      label_pad
      ^ Printf.sprintf "call acfd_pipe_recv(%d, '%s', %s)" dim (dir_str dir)
          (String.concat ", "
             (List.map (fun (a, d) -> Printf.sprintf "%s:%d" a d) arrays))
  | Pipeline_send { dim; dir; arrays } ->
      label_pad
      ^ Printf.sprintf "call acfd_pipe_send(%d, '%s', %s)" dim (dir_str dir)
          (String.concat ", "
             (List.map (fun (a, d) -> Printf.sprintf "%s:%d" a d) arrays))
  | Do d ->
      let head =
        label_pad
        ^ Printf.sprintf "do %s = %s, %s%s" d.do_var (expr d.do_lo)
            (expr d.do_hi)
            (match d.do_step with None -> "" | Some s -> ", " ^ expr s)
      in
      let head =
        match sched_comment d.do_sched with
        | None -> head
        | Some c -> c ^ "\n" ^ head
      in
      head ^ "\n"
      ^ block ~indent:(indent + 2) d.do_body
      ^ "\n" ^ pad ^ "end do"
  | If (branches, els) -> (
      match (branches, els) with
      | [ (cond, [ ({ s_kind = (Assign _ | Goto _ | Call _ | Continue
                              | Return | Stop); s_label = None; _ } as s) ]) ],
        None ->
          (* logical IF on one line *)
          label_pad ^ "if (" ^ expr cond ^ ") " ^ String.trim (stmt ~indent:0 s)
      | _ ->
          let first_cond, first_block =
            match branches with
            | (c, b) :: _ -> (c, b)
            | [] -> invalid_arg "Pretty.stmt: IF with no branches"
          in
          let buf = Buffer.create 128 in
          Buffer.add_string buf
            (label_pad ^ "if (" ^ expr first_cond ^ ") then\n");
          Buffer.add_string buf (block ~indent:(indent + 2) first_block);
          List.iter
            (fun (c, b) ->
              Buffer.add_string buf
                ("\n" ^ pad ^ "else if (" ^ expr c ^ ") then\n");
              Buffer.add_string buf (block ~indent:(indent + 2) b))
            (List.tl branches);
          (match els with
          | Some b ->
              Buffer.add_string buf ("\n" ^ pad ^ "else\n");
              Buffer.add_string buf (block ~indent:(indent + 2) b)
          | None -> ());
          Buffer.add_string buf ("\n" ^ pad ^ "end if");
          Buffer.contents buf)

and block ?(indent = 6) stmts =
  String.concat "\n" (List.map (stmt ~indent) stmts)

let dtype_str = function
  | Integer -> "integer"
  | Real -> "real"
  | Double -> "double precision"
  | Logical -> "logical"

let decl_str d =
  let dims =
    match d.d_dims with
    | [] -> ""
    | dims ->
        "("
        ^ String.concat ", "
            (List.map
               (fun (lo, hi) ->
                 match lo with
                 | Const_int 1 -> expr hi
                 | _ -> expr lo ^ ":" ^ expr hi)
               dims)
        ^ ")"
  in
  Printf.sprintf "      %s %s%s" (dtype_str d.d_type) d.d_name dims

let decl = decl_str

let data_value = function
  (* DATA values cannot carry parentheses: print signs directly *)
  | Const_int i -> string_of_int i
  | Const_real f -> float_str f
  | v -> expr_prec 0 v

let unit_ u =
  let buf = Buffer.create 1024 in
  (match u.u_kind with
  | Main -> Buffer.add_string buf (Printf.sprintf "      program %s\n" u.u_name)
  | Subroutine [] ->
      Buffer.add_string buf (Printf.sprintf "      subroutine %s\n" u.u_name)
  | Subroutine params ->
      Buffer.add_string buf
        (Printf.sprintf "      subroutine %s(%s)\n" u.u_name
           (String.concat ", " params)));
  if u.u_consts <> [] then
    Buffer.add_string buf
      (Printf.sprintf "      parameter (%s)\n"
         (String.concat ", "
            (List.map (fun (n, e) -> n ^ " = " ^ expr e) u.u_consts)));
  List.iter
    (fun d -> Buffer.add_string buf (decl_str d ^ "\n"))
    u.u_decls;
  List.iter
    (fun (name, vars) ->
      let slash = if name = "" then " " else "/" ^ name ^ "/ " in
      Buffer.add_string buf
        (Printf.sprintf "      common %s%s\n" slash (String.concat ", " vars)))
    u.u_commons;
  List.iter
    (fun (name, values) ->
      Buffer.add_string buf
        (Printf.sprintf "      data %s /%s/\n" name
           (String.concat ", " (List.map data_value values))))
    u.u_data;
  Buffer.add_string buf (block u.u_body);
  if u.u_body <> [] then Buffer.add_char buf '\n';
  Buffer.add_string buf "      end\n";
  Buffer.contents buf

let program p = String.concat "\n" (List.map unit_ p.p_units)
