(** Lexer for the Fortran-77 subset.

    The lexer is line-oriented: it first assembles logical lines (handling
    column-1 comments, '!' trailing comments, '&' and column-6 continuations,
    and statement labels), extracts [c$acfd] directives, then tokenizes each
    logical line, separating them with {!Token.Newline}. *)

type token = { tok : Token.t; tline : int }

val tokenize : string -> token list * Directive.t list
(** [tokenize source] is the token stream (terminated by [Eof]) and the
    directives found in comments.
    @raise Loc.Error on malformed input.
    @raise Directive.Parse_error on a malformed directive. *)

val tokens_of_line : int -> string -> token list
(** Tokenize a single pre-assembled logical line (no newline/eof appended).
    Exposed for tests. *)
