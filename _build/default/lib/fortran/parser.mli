(** Recursive-descent parser for the Fortran-77 subset.

    Produces a structured {!Ast.program}: labelled DO loops (including nests
    sharing a terminal label) are turned into structured [Do] statements,
    IF/ELSE IF/ELSE chains into [If], and declarations are collected per
    program unit. *)

val parse : string -> Ast.program
(** Parse complete source text.
    @raise Loc.Error on syntax errors.
    @raise Directive.Parse_error on malformed [c$acfd] directives. *)

val parse_expr_string : string -> Ast.expr
(** Parse a single expression (used by tests). *)
