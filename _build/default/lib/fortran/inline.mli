(** Whole-program inlining: expands every CALL site with the callee's body,
    producing a single main unit.

    The pre-compiler analyzes and restructures the inlined program: this is
    how synchronization regions are hoisted out of subroutines and combined
    across call sites (paper §5.3, Fig. 8) — each call site contributes its
    own loop instances, exactly like the paper counts "two synchronizations
    in subroutine a" for two calls.

    Renaming: callee locals are prefixed with ["<unit>_"]; COMMON variables
    keep their names (shared storage); dummy parameters are substituted by
    the actual arguments.  Labels are renumbered per call instance.

    Restrictions (checked): no recursion; an array-valued dummy parameter
    must receive a bare variable; a dummy assigned in the callee must
    receive a variable. *)

val program : Ast.program -> Ast.program_unit
(** @raise Failure on recursion, a missing subroutine, or an
    unsupported argument binding. *)
