(** Pretty-printer: regenerates Fortran source text from the AST.

    Pre-compiler output (the generated SPMD program) is printed with the
    communication statements rendered as [call acfd_*] message-passing calls,
    mirroring the paper's "parallel CFD source program with communication
    statements". Plain programs round-trip: [parse (program p)] is
    structurally equal to [p]. *)

val expr : Ast.expr -> string
val stmt : ?indent:int -> Ast.stmt -> string
val block : ?indent:int -> Ast.block -> string
val decl : Ast.decl -> string
val data_value : Ast.expr -> string
val unit_ : Ast.program_unit -> string
val program : Ast.program -> string
