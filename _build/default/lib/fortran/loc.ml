(** Source locations (1-based line numbers of the original file). *)

type t = { line : int; col : int } [@@deriving show { with_path = false }, eq]

let none = { line = 0; col = 0 }
let make line col = { line; col }
let pp_short ppf t = Format.fprintf ppf "line %d" t.line

(** A parse or analysis diagnostic. *)
exception Error of t * string

let errorf loc fmt =
  Format.kasprintf (fun msg -> raise (Error (loc, msg))) fmt

let pp_error ppf (loc, msg) =
  Format.fprintf ppf "%a: %s" pp_short loc msg
