lib/perfmodel/model.ml: Array Ast Autocfd_analysis Autocfd_fortran Autocfd_mpsim Autocfd_partition Float List Option
