lib/perfmodel/model.mli: Ast Autocfd_analysis Autocfd_fortran Autocfd_mpsim Autocfd_partition
