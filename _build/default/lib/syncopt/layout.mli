(** Block layout of a program unit: every statement list (the unit body,
    loop bodies, IF branches) gets a dense block id assigned in pre-order,
    and every statement a (block, index) coordinate.

    Synchronization regions are contiguous ranges of insertion slots within
    a single block; slot [i] of a block is the gap before its [i]-th
    statement (slot [length] is the gap at the end). *)

open Autocfd_fortran

type block_id = int

type owner =
  | Top  (** the unit body *)
  | Loop_body of int  (** statement id of the owning DO *)
  | Branch of int * int  (** (IF statement id, branch index) *)
  | Else of int  (** (IF statement id) *)

type t

val of_unit : Ast.program_unit -> t
val nblocks : t -> int
val owner : t -> block_id -> owner
val stmts : t -> block_id -> Ast.stmt array
val parent : t -> block_id -> (block_id * int) option
(** Enclosing block and the index of the owning statement within it;
    [None] for the top block. *)

val coord : t -> int -> block_id * int
(** [(block, index)] of a statement id.  @raise Not_found. *)

val slot_clock : t -> block_id -> int -> int
(** Monotone clock value of a slot, used for sorting and reporting: the
    clock of the gap before statement [i] (or after the last). *)

val enclosing_loop : t -> block_id -> int option
(** Statement id of the innermost DO whose body (transitively, through IF
    branches) contains this block. *)
