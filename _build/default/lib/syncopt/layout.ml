open Autocfd_fortran

type block_id = int

type owner =
  | Top
  | Loop_body of int
  | Branch of int * int
  | Else of int

type binfo = {
  bi_owner : owner;
  bi_stmts : Ast.stmt array;
  bi_parent : (block_id * int) option;
  bi_slots : int array;  (* clock per insertion slot, length n+1 *)
  bi_loop : int option;  (* innermost enclosing DO statement id *)
}

type t = {
  blocks : binfo array;
  coords : (int, block_id * int) Hashtbl.t;
}

let of_unit (u : Ast.program_unit) =
  let blocks = ref [] in
  let nblocks = ref 0 in
  let coords = Hashtbl.create 256 in
  let tick =
    let c = ref 0 in
    fun () -> incr c; !c
  in
  let rec walk_block ~owner ~parent ~loop stmts =
    let id = !nblocks in
    incr nblocks;
    (* reserve the slot *)
    blocks := (id, None) :: !blocks;
    let arr = Array.of_list stmts in
    let slots = Array.make (Array.length arr + 1) 0 in
    Array.iteri
      (fun i st ->
        slots.(i) <- tick ();
        Hashtbl.replace coords st.Ast.s_id (id, i);
        walk_stmt ~block:id ~index:i ~loop st)
      arr;
    slots.(Array.length arr) <- tick ();
    let info =
      { bi_owner = owner; bi_stmts = arr; bi_parent = parent;
        bi_slots = slots; bi_loop = loop }
    in
    blocks :=
      List.map (fun (i, b) -> if i = id then (i, Some info) else (i, b))
        !blocks;
    id
  and walk_stmt ~block ~index ~loop st =
    match st.Ast.s_kind with
    | Ast.Do d ->
        ignore
          (walk_block ~owner:(Loop_body st.Ast.s_id)
             ~parent:(Some (block, index)) ~loop:(Some st.Ast.s_id)
             d.Ast.do_body)
    | Ast.If (branches, els) ->
        List.iteri
          (fun bi (_, b) ->
            ignore
              (walk_block ~owner:(Branch (st.Ast.s_id, bi))
                 ~parent:(Some (block, index)) ~loop b))
          branches;
        Option.iter
          (fun b ->
            ignore
              (walk_block ~owner:(Else st.Ast.s_id)
                 ~parent:(Some (block, index)) ~loop b))
          els
    | _ -> ()
  in
  ignore (walk_block ~owner:Top ~parent:None ~loop:None u.Ast.u_body);
  let n = !nblocks in
  let arr = Array.make n None in
  List.iter (fun (i, b) -> arr.(i) <- b) !blocks;
  let blocks =
    Array.map
      (function
        | Some b -> b
        | None -> assert false)
      arr
  in
  { blocks; coords }

let nblocks t = Array.length t.blocks
let owner t id = t.blocks.(id).bi_owner
let stmts t id = t.blocks.(id).bi_stmts
let parent t id = t.blocks.(id).bi_parent
let coord t sid = Hashtbl.find t.coords sid
let slot_clock t id i = t.blocks.(id).bi_slots.(i)
let enclosing_loop t id = t.blocks.(id).bi_loop
