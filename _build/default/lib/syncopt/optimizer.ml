module Sldp = Autocfd_analysis.Sldp

type combine_strategy = Optimal | First_fit

type result = {
  before : int;
  after : int;
  regions : Region.t list;
  groups : Combine.group list;
  self_pairs : Sldp.pair list;
}

let run ?(combine = Optimal) (sldp : Sldp.t) ~layout =
  let before = Sldp.count_before sldp in
  let surviving = Sldp.eliminate_redundant sldp in
  let regions = Region.generate sldp ~layout surviving in
  let groups =
    match combine with
    | Optimal -> Combine.optimal ~layout regions
    | First_fit -> Combine.first_fit ~layout regions
  in
  {
    before;
    after = List.length groups;
    regions;
    groups;
    self_pairs = Sldp.self_pairs sldp;
  }

let reduction_pct r =
  if r.before = 0 then 0.0
  else float_of_int (r.before - r.after) /. float_of_int r.before
