(** Upper-bound synchronization regions (paper §5.1.1, §5.2).

    For each dependent field-loop pair the legal placement range of its
    synchronization point is computed by (1) hoisting the starting point out
    of loops and branches that contain no dependent R-type loop, then (2)
    scanning forward to the first dependent R-type loop, goto, or dependent
    branch — the result is a contiguous range of insertion slots within a
    single block. *)

type t = {
  rg_pair : Autocfd_analysis.Sldp.pair;
  rg_block : Layout.block_id;
  rg_first : int;  (** first legal slot (inclusive) *)
  rg_last : int;  (** last legal slot (inclusive) *)
  rg_clock : int;  (** clock of the first slot, for sorting/reporting *)
}

val generate :
  Autocfd_analysis.Sldp.t ->
  layout:Layout.t ->
  Autocfd_analysis.Sldp.pair list ->
  t list
(** Regions for the given (non-self) pairs of the inlined unit. *)

val pp : Format.formatter -> t -> unit
