(** The full synchronization-optimization pipeline of paper §5:
    redundant-pair elimination → upper-bound region generation →
    combining of non-redundant synchronizations. *)

type combine_strategy = Optimal | First_fit

type result = {
  before : int;  (** |S_LDP| — synchronization points before optimization *)
  after : int;  (** combined synchronization points *)
  regions : Region.t list;  (** regions of the surviving pairs *)
  groups : Combine.group list;
  self_pairs : Autocfd_analysis.Sldp.pair list;
      (** self-dependent loops, parallelized by mirror-image pipelining
          rather than block synchronization *)
}

val run :
  ?combine:combine_strategy ->
  Autocfd_analysis.Sldp.t ->
  layout:Layout.t ->
  result

val reduction_pct : result -> float
(** The paper's "percentage of optimization" column:
    (before - after) / before. *)
