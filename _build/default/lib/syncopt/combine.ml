open Autocfd_fortran
module Sldp = Autocfd_analysis.Sldp

type group = {
  gr_block : Layout.block_id;
  gr_slot : int;
  gr_clock : int;
  gr_regions : Region.t list;
  gr_transfers : Ast.transfer list;
}

let transfers_of_regions regions =
  (* array -> merged dep_info *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (r : Region.t) ->
      List.iter
        (fun (v, info) ->
          match Hashtbl.find_opt tbl v with
          | None -> Hashtbl.replace tbl v info
          | Some i0 -> Hashtbl.replace tbl v (Sldp.merge_info i0 info))
        r.Region.rg_pair.Sldp.dp_arrays)
    regions;
  Hashtbl.fold
    (fun v (info : Sldp.dep_info) acc ->
      List.fold_left
        (fun acc g ->
          let acc =
            (* a reader reaching its lower neighbor receives planes that
               flow upward: every rank sends its high face to dir + *)
            if info.Sldp.di_minus.(g) then
              { Ast.xfer_array = v; xfer_dim = g; xfer_dir = Ast.Dplus;
                xfer_depth = info.Sldp.di_depth.(g) }
              :: acc
            else acc
          in
          if info.Sldp.di_plus.(g) then
            { Ast.xfer_array = v; xfer_dim = g; xfer_dir = Ast.Dminus;
              xfer_depth = info.Sldp.di_depth.(g) }
            :: acc
          else acc)
        acc info.Sldp.di_dims)
    tbl []
  |> List.sort_uniq compare

let close_group ~layout block lo hi regions =
  ignore lo;
  {
    gr_block = block;
    gr_slot = hi;
    gr_clock = Layout.slot_clock layout block hi;
    gr_regions = List.rev regions;
    gr_transfers = transfers_of_regions regions;
  }

let optimal ~layout regions =
  let sorted =
    List.sort
      (fun (a : Region.t) (b : Region.t) ->
        compare
          (a.Region.rg_block, a.Region.rg_first, a.Region.rg_last)
          (b.Region.rg_block, b.Region.rg_first, b.Region.rg_last))
      regions
  in
  let groups = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | Some (block, lo, hi, rs) ->
        groups := close_group ~layout block lo hi rs :: !groups;
        current := None
    | None -> ()
  in
  List.iter
    (fun (r : Region.t) ->
      match !current with
      | Some (block, lo, hi, rs)
        when block = r.Region.rg_block && r.Region.rg_first <= hi ->
          current :=
            Some
              ( block,
                max lo r.Region.rg_first,
                min hi r.Region.rg_last,
                r :: rs )
      | _ ->
          flush ();
          current :=
            Some (r.Region.rg_block, r.Region.rg_first, r.Region.rg_last, [ r ]))
    sorted;
  flush ();
  List.rev !groups
  |> List.sort (fun a b -> compare (a.gr_block, a.gr_slot) (b.gr_block, b.gr_slot))

(* Fig. 6(c)-style baseline: regions join the first open group they
   overlap, in program order, without the sorted running-intersection
   discipline. *)
let first_fit ~layout regions =
  let ordered =
    List.sort
      (fun (a : Region.t) (b : Region.t) ->
        compare a.Region.rg_clock b.Region.rg_clock)
      regions
  in
  let open_groups : (Layout.block_id * int ref * int ref * Region.t list ref) list ref =
    ref []
  in
  List.iter
    (fun (r : Region.t) ->
      let rec place = function
        | [] ->
            open_groups :=
              !open_groups
              @ [ (r.Region.rg_block, ref r.Region.rg_first,
                   ref r.Region.rg_last, ref [ r ]) ]
        | (block, lo, hi, rs) :: rest ->
            if
              block = r.Region.rg_block
              && r.Region.rg_first <= !hi
              && r.Region.rg_last >= !lo
            then begin
              lo := max !lo r.Region.rg_first;
              hi := min !hi r.Region.rg_last;
              rs := r :: !rs
            end
            else place rest
      in
      place !open_groups)
    ordered;
  List.map
    (fun (block, lo, hi, rs) -> close_group ~layout block !lo !hi !rs)
    !open_groups
  |> List.sort (fun a b -> compare (a.gr_block, a.gr_slot) (b.gr_block, b.gr_slot))

let minimum_stabbing_count intervals =
  (* classic greedy on (lo, hi) inclusive intervals *)
  let sorted = List.sort (fun (_, h1) (_, h2) -> compare h1 h2) intervals in
  let count = ref 0 in
  let last_point = ref min_int in
  List.iter
    (fun (lo, hi) ->
      if lo > !last_point then begin
        incr count;
        last_point := hi
      end)
    sorted;
  !count
