lib/syncopt/region.pp.mli: Autocfd_analysis Format Layout
