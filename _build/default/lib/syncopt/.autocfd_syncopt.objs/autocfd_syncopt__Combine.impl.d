lib/syncopt/combine.pp.ml: Array Ast Autocfd_analysis Autocfd_fortran Hashtbl Layout List Region
