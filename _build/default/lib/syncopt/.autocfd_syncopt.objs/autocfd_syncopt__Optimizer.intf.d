lib/syncopt/optimizer.pp.mli: Autocfd_analysis Combine Layout Region
