lib/syncopt/region.pp.ml: Array Ast Autocfd_analysis Autocfd_fortran Format Hashtbl Layout List Option
