lib/syncopt/combine.pp.mli: Autocfd_fortran Layout Region
