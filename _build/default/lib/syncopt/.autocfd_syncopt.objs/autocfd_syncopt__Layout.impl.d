lib/syncopt/layout.pp.ml: Array Ast Autocfd_fortran Hashtbl List Option
