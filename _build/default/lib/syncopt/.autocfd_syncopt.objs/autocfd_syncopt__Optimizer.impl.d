lib/syncopt/optimizer.pp.ml: Autocfd_analysis Combine List Region
