lib/syncopt/layout.pp.mli: Ast Autocfd_fortran
