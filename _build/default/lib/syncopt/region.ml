open Autocfd_fortran
module FL = Autocfd_analysis.Field_loop
module L = Autocfd_analysis.Loops
module Sldp = Autocfd_analysis.Sldp

type t = {
  rg_pair : Sldp.pair;
  rg_block : Layout.block_id;
  rg_first : int;
  rg_last : int;
  rg_clock : int;
}

(* spans (enter, exit) of every crossing reader head, per array *)
let crossing_reader_spans (sldp : Sldp.t) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (s : FL.summary) ->
      List.iter
        (fun (v, _) ->
          match Sldp.crossing_info sldp.Sldp.gi sldp.Sldp.topo v s with
          | Some _ ->
              let l = s.FL.fs_loop in
              let span = (l.L.lp_enter, l.L.lp_exit) in
              let cur = Option.value ~default:[] (Hashtbl.find_opt tbl v) in
              Hashtbl.replace tbl v (span :: cur)
          | None -> ())
        s.FL.fs_uses)
    sldp.Sldp.summaries;
  tbl

let generate (sldp : Sldp.t) ~layout pairs =
  let reader_spans = crossing_reader_spans sldp in
  let clock_of sid = L.clock sldp.Sldp.loops sid in
  (* does the clock span (lo, hi) contain a crossing reader of any array
     of the pair? *)
  let span_has_reader arrays (lo, hi) =
    List.exists
      (fun (v, _) ->
        match Hashtbl.find_opt reader_spans v with
        | None -> false
        | Some spans ->
            List.exists (fun (e, x) -> lo <= e && x <= hi) spans)
      arrays
  in
  let stmt_span st = clock_of st.Ast.s_id in
  let block_span block =
    let stmts = Layout.stmts layout block in
    if Array.length stmts = 0 then None
    else
      let e, _ = stmt_span stmts.(0) in
      let _, x = stmt_span stmts.(Array.length stmts - 1) in
      Some (e, x)
  in
  let contains_goto_or_exit st =
    let found = ref false in
    Ast.iter_stmts
      (fun s ->
        match s.Ast.s_kind with
        | Ast.Goto _ | Ast.Return | Ast.Stop -> found := true
        | _ -> ())
      [ st ];
    !found
  in
  let region_of_pair (p : Sldp.pair) =
    let arrays = p.Sldp.dp_arrays in
    let a_head = p.Sldp.dp_assign.FL.fs_loop in
    let a_block, a_idx = Layout.coord layout a_head.L.lp_id in
    (* the carrying loop a Backward pair must stay inside (a DO loop or a
       backward-GOTO span) *)
    let carry_span =
      match p.Sldp.dp_kind with
      | Sldp.Backward l -> Some (Sldp.carrying_span sldp l)
      | Sldp.Forward | Sldp.Self -> None
    in
    (* hoist the starting point (§5.1.1 + §5.2 rule 3) *)
    let rec hoist block slot =
      match Layout.parent layout block with
      | None -> (block, slot)
      | Some (pblock, pidx) ->
          let blocked =
            match Layout.owner layout block with
            | Layout.Top -> true
            | Layout.Loop_body lid ->
                (* stop at the Backward pair's carrying loop: hoisting out
                   of any loop that contains the carrying span would leave
                   the carried region *)
                let le, lx = clock_of lid in
                (match carry_span with
                | Some (ce, cx) -> le <= ce && cx <= lx
                | None -> false)
                || span_has_reader arrays (clock_of lid)
            | Layout.Branch _ | Layout.Else _ -> (
                (* movable out unless an R-type loop is inside this very
                   branch (Fig. 7(d)/(e)) *)
                match block_span block with
                | None -> false
                | Some span -> span_has_reader arrays span)
          in
          if blocked then (block, slot) else hoist pblock (pidx + 1)
    in
    let block, first = hoist a_block (a_idx + 1) in
    (* forward scan for the region end (§5.1.1 cases 1/2, §5.2 rules 1/2) *)
    let stmts = Layout.stmts layout block in
    let n = Array.length stmts in
    let rec scan i =
      if i >= n then n
      else
        let st = stmts.(i) in
        if span_has_reader arrays (stmt_span st) then i
        else if contains_goto_or_exit st then i
        else scan (i + 1)
    in
    let last = scan first in
    {
      rg_pair = p;
      rg_block = block;
      rg_first = first;
      rg_last = last;
      rg_clock = Layout.slot_clock layout block first;
    }
  in
  List.map region_of_pair pairs

let pp ppf r =
  Format.fprintf ppf "region(block %d, slots %d..%d) for %a" r.rg_block
    r.rg_first r.rg_last Sldp.pp_pair r.rg_pair
