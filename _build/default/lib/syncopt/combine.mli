(** Combining synchronization regions (paper §5.1.2, Fig. 6).

    [optimal] is the paper's algorithm: sort the upper-bound regions by
    their first position and grow a running intersection, closing a group
    exactly when the next region no longer intersects it — this yields the
    minimum number of combined synchronization points (interval
    point-stabbing).

    [first_fit] is the suboptimal strategy of Fig. 6(c), kept as an
    ablation baseline: each region joins the first already-open group it
    overlaps, which can produce more groups than the minimum. *)

type group = {
  gr_block : Layout.block_id;
  gr_slot : int;  (** chosen insertion slot (latest common position) *)
  gr_clock : int;
  gr_regions : Region.t list;
  gr_transfers : Autocfd_fortran.Ast.transfer list;
      (** merged communication: the aggregated data items *)
}

val optimal : layout:Layout.t -> Region.t list -> group list
val first_fit : layout:Layout.t -> Region.t list -> group list

val transfers_of_regions : Region.t list -> Autocfd_fortran.Ast.transfer list
(** Union of the halo traffic of all pairs in a group. *)

val minimum_stabbing_count : (int * int) list -> int
(** Textbook minimum point-stabbing size of a set of integer intervals;
    exposed so tests can cross-check [optimal] against brute force. *)
