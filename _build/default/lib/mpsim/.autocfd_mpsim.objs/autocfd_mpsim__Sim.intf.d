lib/mpsim/sim.mli: Netmodel
