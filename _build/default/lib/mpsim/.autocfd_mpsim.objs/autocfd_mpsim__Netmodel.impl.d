lib/mpsim/netmodel.ml:
