lib/mpsim/netmodel.mli:
