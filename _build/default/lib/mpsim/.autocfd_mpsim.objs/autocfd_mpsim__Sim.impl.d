lib/mpsim/sim.ml: Array Buffer Effect Float Hashtbl List Netmodel Option Printf Queue
