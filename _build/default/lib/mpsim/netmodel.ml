type t = {
  latency : float;
  bandwidth : float;
  send_overhead : float;
  recv_overhead : float;
}

let ethernet_100 =
  {
    latency = 1.0e-4;
    bandwidth = 11.0e6;
    send_overhead = 3.0e-5;
    recv_overhead = 3.0e-5;
  }

let fast =
  { latency = 1.0e-7; bandwidth = 1.0e10; send_overhead = 0.; recv_overhead = 0. }

let free = { latency = 0.; bandwidth = infinity; send_overhead = 0.; recv_overhead = 0. }

let message_time t ~bytes =
  if t.bandwidth = infinity then t.latency
  else t.latency +. (float_of_int bytes /. t.bandwidth)
