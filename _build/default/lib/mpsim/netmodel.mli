(** Virtual-time cost model of the interconnect.

    The paper's testbed is a dedicated network of 6 Pentium workstations on
    Ethernet (2003): the defaults below reflect TCP/IP on 100 Mbit Ethernet
    of that era. *)

type t = {
  latency : float;  (** end-to-end message latency floor, seconds *)
  bandwidth : float;  (** sustained point-to-point bandwidth, bytes/s *)
  send_overhead : float;  (** CPU time charged to the sender, seconds *)
  recv_overhead : float;  (** CPU time charged to the receiver, seconds *)
}

val ethernet_100 : t
(** ~100 us latency, ~11 MB/s — 2003-era switched 100 Mb Ethernet. *)

val fast : t
(** A low-latency model for tests: negligible costs. *)

val free : t
(** Zero-cost network: pure correctness runs. *)

val message_time : t -> bytes:int -> float
(** Wire time of one message. *)
