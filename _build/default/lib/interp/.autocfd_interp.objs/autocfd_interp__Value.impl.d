lib/interp/value.ml: Array Float Format Printf
