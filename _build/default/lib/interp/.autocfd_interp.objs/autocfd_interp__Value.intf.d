lib/interp/value.mli: Format
