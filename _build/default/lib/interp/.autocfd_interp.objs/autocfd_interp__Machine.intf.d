lib/interp/machine.mli: Ast Autocfd_fortran Value
