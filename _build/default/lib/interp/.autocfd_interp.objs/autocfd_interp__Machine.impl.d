lib/interp/machine.ml: Array Ast Autocfd_analysis Autocfd_fortran Float Format Hashtbl List Option Seq String Value
