lib/interp/spmd.ml: Array Ast Autocfd_analysis Autocfd_fortran Autocfd_mpsim Autocfd_partition List Machine Netmodel Option Sim Value
