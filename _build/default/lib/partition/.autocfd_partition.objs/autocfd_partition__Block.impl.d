lib/partition/block.pp.ml: Array Format List Printf String
