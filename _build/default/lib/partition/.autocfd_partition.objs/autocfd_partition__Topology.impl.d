lib/partition/topology.pp.ml: Array Block Format Fun List Printf String
