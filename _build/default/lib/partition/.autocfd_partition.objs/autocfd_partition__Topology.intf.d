lib/partition/topology.pp.mli: Block Format
