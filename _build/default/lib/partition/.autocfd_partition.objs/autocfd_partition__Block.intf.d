lib/partition/block.pp.mli: Format
