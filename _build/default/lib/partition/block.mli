(** A subgrid assigned to one subtask: an axis-aligned box of grid points,
    inclusive 1-based bounds per status dimension. *)

type t = { lo : int array; hi : int array }

val make : lo:int array -> hi:int array -> t
(** @raise Invalid_argument on rank mismatch or an empty extent. *)

val ndims : t -> int
val extent : t -> int -> int
(** Number of points along a dimension. *)

val points : t -> int
(** Total number of grid points in the block. *)

val face_points : t -> int -> int
(** [face_points b d] is the number of points on one face orthogonal to
    dimension [d] — the per-plane communication amount across that
    demarcation line. *)

val contains : t -> int array -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
