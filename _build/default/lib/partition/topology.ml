type t = {
  grid : int array;
  parts : int array;
  (* slab boundaries per dimension: bounds.(d) is an array of (lo, hi)
     inclusive 1-based ranges, one per slab *)
  bounds : (int * int) array array;
}

type direction = Plus | Minus

(* Split [1, n] into k slabs as equally as possible: the first (n mod k)
   slabs get one extra point, so every demarcation line is as close to
   equal as possible. *)
let split n k =
  let base = n / k and rem = n mod k in
  let out = Array.make k (0, 0) in
  let lo = ref 1 in
  for i = 0 to k - 1 do
    let size = base + if i < rem then 1 else 0 in
    out.(i) <- (!lo, !lo + size - 1);
    lo := !lo + size
  done;
  out

let create ~grid ~parts =
  if Array.length grid <> Array.length parts then
    invalid_arg "Topology.create: grid/parts rank mismatch";
  Array.iteri
    (fun d k ->
      if k < 1 then invalid_arg "Topology.create: part count < 1";
      if grid.(d) < k then
        invalid_arg
          (Printf.sprintf
             "Topology.create: dimension %d has %d points but %d parts" d
             grid.(d) k))
    parts;
  { grid; parts; bounds = Array.map2 split grid parts }

let grid t = Array.copy t.grid
let parts t = Array.copy t.parts
let ndims t = Array.length t.grid
let nranks t = Array.fold_left ( * ) 1 t.parts

(* row-major: the last dimension varies fastest *)
let coords_of_rank t rank =
  let n = ndims t in
  let c = Array.make n 0 in
  let r = ref rank in
  for d = n - 1 downto 0 do
    c.(d) <- !r mod t.parts.(d);
    r := !r / t.parts.(d)
  done;
  c

let rank_of_coords t c =
  let acc = ref 0 in
  for d = 0 to ndims t - 1 do
    if c.(d) < 0 || c.(d) >= t.parts.(d) then
      invalid_arg "Topology.rank_of_coords: out of range";
    acc := (!acc * t.parts.(d)) + c.(d)
  done;
  !acc

let block_of_coords t c =
  let lo = Array.mapi (fun d i -> fst t.bounds.(d).(i)) c in
  let hi = Array.mapi (fun d i -> snd t.bounds.(d).(i)) c in
  Block.make ~lo ~hi

let block t rank = block_of_coords t (coords_of_rank t rank)

let owner t p =
  let c =
    Array.mapi
      (fun d x ->
        let slabs = t.bounds.(d) in
        let rec find i =
          if i >= Array.length slabs then
            invalid_arg "Topology.owner: point outside grid"
          else
            let lo, hi = slabs.(i) in
            if x >= lo && x <= hi then i else find (i + 1)
        in
        find 0)
      p
  in
  rank_of_coords t c

let neighbor t ~rank ~dim ~dir =
  let c = coords_of_rank t rank in
  let delta = match dir with Plus -> 1 | Minus -> -1 in
  let c' = Array.copy c in
  c'.(dim) <- c.(dim) + delta;
  if c'.(dim) < 0 || c'.(dim) >= t.parts.(dim) then None
  else Some (rank_of_coords t c')

let is_cut t d = t.parts.(d) > 1
let cut_dims t = List.filter (is_cut t) (List.init (ndims t) Fun.id)

let fold_ranks t f acc =
  let n = nranks t in
  let rec go acc r = if r >= n then acc else go (f acc r) (r + 1) in
  go acc 0

let max_block_points t =
  fold_ranks t (fun acc r -> max acc (Block.points (block t r))) 0

let min_block_points t =
  fold_ranks t (fun acc r -> min acc (Block.points (block t r))) max_int

let comm_points_rank t ~depth rank =
  let b = block t rank in
  let c = coords_of_rank t rank in
  let acc = ref 0 in
  for d = 0 to ndims t - 1 do
    if is_cut t d then begin
      let faces =
        (if c.(d) > 0 then 1 else 0)
        + if c.(d) < t.parts.(d) - 1 then 1 else 0
      in
      acc := !acc + (faces * depth.(d) * Block.face_points b d)
    end
  done;
  !acc

let comm_points_per_rank t ~depth =
  fold_ranks t (fun acc r -> max acc (comm_points_rank t ~depth r)) 0

let total_comm_points t ~depth =
  fold_ranks t (fun acc r -> acc + comm_points_rank t ~depth r) 0

let factorizations p nd =
  let rec go p nd =
    if nd = 1 then [ [ p ] ]
    else
      let out = ref [] in
      for f = 1 to p do
        if p mod f = 0 then
          List.iter (fun rest -> out := (f :: rest) :: !out) (go (p / f) (nd - 1))
      done;
      List.rev !out
  in
  go p nd |> List.map Array.of_list |> List.sort compare

let search ~grid ~nprocs ~depth =
  let nd = Array.length grid in
  let candidates =
    List.filter
      (fun shape ->
        try
          ignore (create ~grid ~parts:shape);
          true
        with Invalid_argument _ -> false)
      (factorizations nprocs nd)
  in
  match candidates with
  | [] -> invalid_arg "Topology.search: no feasible partition"
  | first :: _ ->
      let score shape =
        let t = create ~grid ~parts:shape in
        (comm_points_per_rank t ~depth, max_block_points t)
      in
      List.fold_left
        (fun best shape -> if score shape < score best then shape else best)
        first candidates

let pp_shape ppf shape =
  Format.pp_print_string ppf
    (String.concat " x " (Array.to_list (Array.map string_of_int shape)))
