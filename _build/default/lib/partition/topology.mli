(** Grid partitioning (paper §4.1): split the flow-field grid into an
    x×y×z arrangement of subgrids, sized as equally as possible (load
    balance) with demarcation lines chosen so that the amount of
    communication is minimized. *)

type t

type direction = Plus | Minus

val create : grid:int array -> parts:int array -> t
(** [create ~grid ~parts] partitions a grid of extents [grid] into
    [parts.(d)] slabs per dimension [d].
    @raise Invalid_argument if ranks differ, any part count is < 1, or a
    dimension has fewer points than parts. *)

val grid : t -> int array
val parts : t -> int array
val ndims : t -> int
val nranks : t -> int

val coords_of_rank : t -> int -> int array
val rank_of_coords : t -> int array -> int
val block : t -> int -> Block.t
(** The subgrid owned by a rank. *)

val block_of_coords : t -> int array -> Block.t

val owner : t -> int array -> int
(** Rank owning a given (1-based) grid point. *)

val neighbor : t -> rank:int -> dim:int -> dir:direction -> int option
(** Neighboring rank across a demarcation line, [None] at the domain
    boundary. *)

val is_cut : t -> int -> bool
(** [is_cut t d] — does the partition actually split dimension [d]
    (parts > 1)?  Dependencies along uncut dimensions need no
    synchronization: this is the heart of "analysis after partitioning". *)

val cut_dims : t -> int list

val max_block_points : t -> int
val min_block_points : t -> int

val comm_points_per_rank : t -> depth:int array -> int
(** Worst-case number of grid points a single rank communicates per
    exchange: for every cut dimension, [depth.(d)] planes per face, two
    faces for interior ranks.  This is the quantity the paper's §6.2
    partitioning discussion reasons about. *)

val total_comm_points : t -> depth:int array -> int
(** Sum over all ranks and faces (each demarcation counted from both
    sides). *)

val factorizations : int -> int -> int array list
(** [factorizations p ndims] enumerates all ordered factorizations of [p]
    into [ndims] positive factors, e.g. [factorizations 4 2] =
    [[|1;4|]; [|2;2|]; [|4;1|]]. *)

val search : grid:int array -> nprocs:int -> depth:int array -> int array
(** The partition shape minimizing [comm_points_per_rank], ties broken by
    better load balance then lexicographic order — the automatic choice the
    pre-compiler makes when the user does not fix a partition. *)

val pp_shape : Format.formatter -> int array -> unit
(** Prints "4 x 1 x 1" in the paper's table style. *)
