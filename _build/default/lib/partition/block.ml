type t = { lo : int array; hi : int array }

let make ~lo ~hi =
  if Array.length lo <> Array.length hi then
    invalid_arg "Block.make: rank mismatch";
  Array.iteri
    (fun d l ->
      if l > hi.(d) then
        invalid_arg
          (Printf.sprintf "Block.make: empty extent in dimension %d (%d > %d)"
             d l hi.(d)))
    lo;
  { lo; hi }

let ndims t = Array.length t.lo
let extent t d = t.hi.(d) - t.lo.(d) + 1

let points t =
  let acc = ref 1 in
  for d = 0 to ndims t - 1 do
    acc := !acc * extent t d
  done;
  !acc

let face_points t d =
  let acc = ref 1 in
  for k = 0 to ndims t - 1 do
    if k <> d then acc := !acc * extent t k
  done;
  !acc

let contains t p =
  Array.length p = ndims t
  && (let ok = ref true in
      Array.iteri (fun d x -> if x < t.lo.(d) || x > t.hi.(d) then ok := false) p;
      !ok)

let equal a b = a.lo = b.lo && a.hi = b.hi

let pp ppf t =
  let dim d = Format.asprintf "%d..%d" t.lo.(d) t.hi.(d) in
  Format.fprintf ppf "[%s]"
    (String.concat ", " (List.init (ndims t) dim))
