lib/core/report.ml: Array Autocfd_analysis Autocfd_fortran Autocfd_partition Autocfd_perfmodel Autocfd_syncopt Buffer Driver Format Hashtbl List Option Printf String
