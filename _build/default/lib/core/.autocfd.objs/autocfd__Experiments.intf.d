lib/core/experiments.mli: Autocfd_perfmodel
