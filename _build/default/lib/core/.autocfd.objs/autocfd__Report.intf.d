lib/core/report.mli: Driver
