(** SPMD restructuring (paper §3 "restructuring procedure"): rewrites the
    inlined sequential unit into the parallel unit each rank executes.

    - field-loop bounds are intersected with the rank's block
      ([Local_lo]/[Local_hi]) along every cut dimension;
    - self-dependent loops get mirror-image pipelining: [Pipeline_recv]
      before and [Pipeline_send] after the head loop for the flow-dependent
      arrays;
    - recognized scalar reductions get an [Allreduce] after the loop;
    - one combined [Exchange] communication statement is inserted at each
      optimized synchronization point;
    - Sum reductions whose nest does not cover every cut dimension are
      forced serial (they would double-count otherwise). *)

open Autocfd_fortran
module A = Autocfd_analysis

type input = {
  in_unit : Ast.program_unit;  (** the inlined sequential unit *)
  in_gi : A.Grid_info.t;
  in_topo : Autocfd_partition.Topology.t;
  in_summaries : A.Field_loop.summary list;
  in_groups : Autocfd_syncopt.Combine.group list;
  in_layout : Autocfd_syncopt.Layout.t;
}

val run : input -> Ast.program_unit
(** The transformed SPMD unit.  Strategies are recomputed internally with
    {!A.Mirror.strategy}. *)

val strategies : input -> (int * A.Mirror.strategy) list
(** (head statement id, strategy) for reporting. *)
