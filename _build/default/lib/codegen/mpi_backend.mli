(** Fortran 77 + MPI source backend.

    The paper's pre-compiler emits "a parallel CFD source program in SPMD
    model with communication statements (PVM/MPI calls)".  This module
    renders the transformed SPMD unit as a complete Fortran 77 program
    against the MPI 1 Fortran binding:

    - an [acfd] COMMON block carries the rank, size and per-dimension
      block bounds, computed in an emitted [acfdini] subroutine that
      reproduces the balanced demarcation-line split;
    - every combined synchronization point becomes a generated
      [acfdx<n>] subroutine that packs the halo planes into buffers,
      exchanges them with explicit [mpi_send]/[mpi_recv], and unpacks —
      one specialized subroutine per synchronization point, as a
      restructuring pre-compiler would emit;
    - reductions become [mpi_allreduce], broadcasts [mpi_bcast],
      pipeline waits/forwards become specialized [acfdp<n>] subroutines;
    - [Local_lo]/[Local_hi] bounds render as [max]/[min] against the
      block-bound variables.

    The emitted text is self-contained legal Fortran 77 (modulo the MPI
    library): our own parser accepts it, which the tests check. *)

val emit :
  gi:Autocfd_analysis.Grid_info.t ->
  topo:Autocfd_partition.Topology.t ->
  Autocfd_fortran.Ast.program_unit ->
  string
(** [emit ~gi ~topo spmd_unit] renders the full MPI program text. *)
