open Autocfd_fortran
module A = Autocfd_analysis
module P = Autocfd_partition

(* short F77-style names for the block-bound variables *)
let lo_var d = Printf.sprintf "acfdl%d" d
let hi_var d = Printf.sprintf "acfdh%d" d
let coord_var d = Printf.sprintf "acfdc%d" d

type ctx = {
  gi : A.Grid_info.t;
  topo : P.Topology.t;
  unit_ : Ast.program_unit;
  env : A.Env.t;
  buf : Buffer.t;
  (* generated communication subroutines, in order *)
  mutable subs : (string * (string -> unit)) list;  (* name, emitter *)
  mutable counter : int;
}

let line ctx s =
  Buffer.add_string ctx.buf s;
  Buffer.add_char ctx.buf '\n'

let fresh ctx prefix =
  ctx.counter <- ctx.counter + 1;
  Printf.sprintf "%s%d" prefix ctx.counter

let ndims ctx = A.Grid_info.ndims ctx.gi
let parts ctx = P.Topology.parts ctx.topo

(* declared integer bounds of an array, from the unit's declarations *)
let array_bounds ctx name =
  match List.find_opt (fun d -> d.Ast.d_name = name) ctx.unit_.Ast.u_decls with
  | None -> failwith ("mpi backend: no declaration for " ^ name)
  | Some d ->
      List.map
        (fun (lo, hi) ->
          (A.Env.eval_int_exn ctx.env lo, A.Env.eval_int_exn ctx.env hi))
        d.Ast.d_dims

let status_dims ctx name =
  match A.Grid_info.find_status ctx.gi name with
  | Some sa -> sa.A.Grid_info.sa_dims
  | None -> failwith ("mpi backend: not a status array: " ^ name)

(* all status arrays that appear in the unit, with declarations *)
let status_arrays ctx =
  List.filter
    (fun d ->
      d.Ast.d_dims <> [] && A.Grid_info.is_status ctx.gi d.Ast.d_name)
    ctx.unit_.Ast.u_decls
  |> List.map (fun d -> d.Ast.d_name)

(* the COMMON block each status array lives in; arrays outside any common
   go into the generated /acfdfl/ block so the communication subroutines
   can reach them *)
let loose_status_arrays ctx =
  List.filter
    (fun name ->
      not
        (List.exists
           (fun (_, members) -> List.mem name members)
           ctx.unit_.Ast.u_commons))
    (status_arrays ctx)

let commons_with_status ctx =
  List.filter
    (fun (_, members) ->
      List.exists (fun m -> A.Grid_info.is_status ctx.gi m) members)
    ctx.unit_.Ast.u_commons

(* maximum plane buffer size for any transfer of any array: a full array
   is a safe literal bound *)
let max_array_size ctx =
  List.fold_left
    (fun acc name ->
      let size =
        List.fold_left
          (fun s (lo, hi) -> s * (hi - lo + 1))
          1 (array_bounds ctx name)
      in
      max acc size)
    1 (status_arrays ctx)

(* ------------------------------------------------------------------ *)
(* Shared declaration header for main and generated subroutines        *)
(* ------------------------------------------------------------------ *)

let mpi_params =
  "      parameter (mpi_comm_world = 0, mpi_real8 = 27)\n\
   \      parameter (mpi_max = 1, mpi_min = 2, mpi_sum = 3)\n\
   \      parameter (mpi_status_size = 8)"

let emit_shared_header ctx ~with_consts =
  if with_consts && ctx.unit_.Ast.u_consts <> [] then
    line ctx
      (Printf.sprintf "      parameter (%s)"
         (String.concat ", "
            (List.map
               (fun (n, e) -> n ^ " = " ^ Pretty.expr e)
               ctx.unit_.Ast.u_consts)));
  line ctx mpi_params;
  (* status array declarations *)
  List.iter
    (fun name ->
      let dims =
        String.concat ", "
          (List.map
             (fun (lo, hi) ->
               if lo = 1 then string_of_int hi
               else Printf.sprintf "%d:%d" lo hi)
             (array_bounds ctx name))
      in
      line ctx (Printf.sprintf "      real %s(%s)" name dims))
    (status_arrays ctx);
  (* original commons that carry status arrays *)
  List.iter
    (fun (blk, members) ->
      line ctx
        (Printf.sprintf "      common /%s/ %s"
           (if blk = "" then "blank" else blk)
           (String.concat ", " members)))
    (commons_with_status ctx);
  (match loose_status_arrays ctx with
  | [] -> ()
  | loose ->
      line ctx
        (Printf.sprintf "      common /acfdfl/ %s" (String.concat ", " loose)));
  (* block-info common *)
  let nd = ndims ctx in
  let bound_vars =
    List.concat_map
      (fun d -> [ lo_var d; hi_var d; coord_var d ])
      (List.init nd Fun.id)
  in
  line ctx
    (Printf.sprintf "      integer acfdrk, acfdnp, %s"
       (String.concat ", " bound_vars));
  line ctx
    (Printf.sprintf "      common /acfdcb/ acfdrk, acfdnp, %s"
       (String.concat ", " bound_vars));
  line ctx (Printf.sprintf "      real acfdbf(%d)" (max_array_size ctx));
  line ctx "      common /acfdbc/ acfdbf";
  line ctx "      integer acfder, acfdst(mpi_status_size)";
  (* pack/unpack loop variables (would be implicitly REAL otherwise) *)
  let max_rank =
    List.fold_left
      (fun acc name -> max acc (List.length (array_bounds ctx name)))
      1 (status_arrays ctx)
  in
  line ctx
    (Printf.sprintf "      integer %s"
       (String.concat ", "
          (List.init max_rank (fun k -> Printf.sprintf "acfdi%d" (k + 1)))))

(* ------------------------------------------------------------------ *)
(* The acfdini subroutine: rank -> coords -> balanced block bounds     *)
(* ------------------------------------------------------------------ *)

let emit_init ctx =
  line ctx "";
  line ctx "c     rank to block bounds: the balanced demarcation-line split";
  line ctx "      subroutine acfdini";
  emit_shared_header ctx ~with_consts:true;
  line ctx "      integer acfdr";
  line ctx "      call mpi_comm_rank(mpi_comm_world, acfdrk, acfder)";
  line ctx "      call mpi_comm_size(mpi_comm_world, acfdnp, acfder)";
  let nd = ndims ctx in
  let p = parts ctx in
  let grid = P.Topology.grid ctx.topo in
  line ctx "      acfdr = acfdrk";
  (* row-major: last dimension varies fastest *)
  for d = nd - 1 downto 0 do
    line ctx (Printf.sprintf "      %s = mod(acfdr, %d)" (coord_var d) p.(d));
    line ctx (Printf.sprintf "      acfdr = acfdr / %d" p.(d))
  done;
  for d = 0 to nd - 1 do
    let base = grid.(d) / p.(d) and rem = grid.(d) mod p.(d) in
    line ctx
      (Printf.sprintf "      %s = %s * %d + min(%s, %d) + 1" (lo_var d)
         (coord_var d) base (coord_var d) rem);
    line ctx
      (Printf.sprintf "      %s = %s + %d" (hi_var d) (lo_var d) (base - 1));
    if rem > 0 then
      line ctx
        (Printf.sprintf "      if (%s .lt. %d) %s = %s + 1" (coord_var d) rem
           (hi_var d) (hi_var d))
  done;
  line ctx "      return";
  line ctx "      end"

(* neighbor rank along dim d: rank +- stride, stride = product of parts of
   later dimensions (row-major) *)
let rank_stride ctx d =
  let p = parts ctx in
  let s = ref 1 in
  for k = d + 1 to ndims ctx - 1 do
    s := !s * p.(k)
  done;
  !s

(* ------------------------------------------------------------------ *)
(* Pack/unpack loop nests                                              *)
(* ------------------------------------------------------------------ *)

(* Emit a loop nest over the given textual (lo, hi) ranges and apply [f]
   to the subscript list inside.  Loop variables are acfdi1.. *)
let emit_box ctx ~indent ranges f =
  let n = List.length ranges in
  let vars = List.init n (fun k -> Printf.sprintf "acfdi%d" (k + 1)) in
  List.iteri
    (fun k (lo, hi) ->
      line ctx
        (Printf.sprintf "%s      do %s = %s, %s"
           (String.make (2 * k) ' ' ^ indent)
           (List.nth vars k) lo hi))
    ranges;
  f (String.make (2 * n) ' ' ^ indent) vars;
  for k = n - 1 downto 0 do
    line ctx (Printf.sprintf "%s      end do" (String.make (2 * k) ' ' ^ indent))
  done

(* ranges (textual) of the halo planes OWNED by [who] for a transfer:
   [who] is `Me or `Neighbor (whose bounds were precomputed into nlo/nhi
   variables for the transfer dimension) *)
let transfer_ranges ctx ~who name ~dim ~(dir : Ast.direction) ~depth
    ~ext_of_dim =
  let bounds = array_bounds ctx name in
  let dims = status_dims ctx name in
  List.mapi
    (fun k (alo, ahi) ->
      match if k < Array.length dims then dims.(k) else None with
      | None -> (string_of_int alo, string_of_int ahi)
      | Some g when g = dim ->
          let l, h =
            match who with
            | `Me -> (lo_var g, hi_var g)
            | `Neighbor -> ("acfdnl", "acfdnh")
          in
          (match dir with
          | Ast.Dplus ->
              (Printf.sprintf "max(%s, %s - %d)" l h (depth - 1), h)
          | Ast.Dminus ->
              (l, Printf.sprintf "min(%s, %s + %d)" h l (depth - 1)))
      | Some g ->
          let ext = if g < dim then ext_of_dim g else 0 in
          if ext = 0 then (lo_var g, hi_var g)
          else
            ( Printf.sprintf "max(%d, %s - %d)" alo (lo_var g) ext,
              Printf.sprintf "min(%d, %s + %d)" ahi (hi_var g) ext ))
    bounds

let emit_pack ctx ~indent name ranges =
  line ctx (Printf.sprintf "%s      acfdn = 0" indent);
  emit_box ctx ~indent ranges (fun ind vars ->
      line ctx (Printf.sprintf "%s      acfdn = acfdn + 1" ind);
      line ctx
        (Printf.sprintf "%s      acfdbf(acfdn) = %s(%s)" ind name
           (String.concat ", " vars)))

let emit_unpack ctx ~indent name ranges =
  line ctx (Printf.sprintf "%s      acfdn = 0" indent);
  emit_box ctx ~indent ranges (fun ind vars ->
      line ctx (Printf.sprintf "%s      acfdn = acfdn + 1" ind);
      line ctx
        (Printf.sprintf "%s      %s(%s) = acfdbf(acfdn)" ind name
           (String.concat ", " vars)))

(* count the box volume into acfdn without touching data *)
let emit_count ctx ~indent ranges =
  line ctx (Printf.sprintf "%s      acfdn = 0" indent);
  emit_box ctx ~indent ranges (fun ind _ ->
      line ctx (Printf.sprintf "%s      acfdn = acfdn + 1" ind))

(* ------------------------------------------------------------------ *)
(* Exchange subroutine for one combined synchronization point          *)
(* ------------------------------------------------------------------ *)

(* compute a neighbor's block bounds for dimension g into acfdnl/acfdnh,
   for the neighbor at coordinate [coord_expr] *)
let emit_neighbor_bounds ctx g coord_expr =
  let grid = P.Topology.grid ctx.topo and p = parts ctx in
  let base = grid.(g) / p.(g) and rem = grid.(g) mod p.(g) in
  line ctx
    (Printf.sprintf "        acfdnl = (%s) * %d + min(%s, %d) + 1" coord_expr
       base coord_expr rem);
  line ctx (Printf.sprintf "        acfdnh = acfdnl + %d" (base - 1));
  if rem > 0 then
    line ctx
      (Printf.sprintf "        if (%s .lt. %d) acfdnh = acfdnh + 1" coord_expr
         rem)

let emit_exchange_sub ctx name transfers =
  line ctx "";
  line ctx "c     combined synchronization point: aggregated halo exchange";
  line ctx (Printf.sprintf "      subroutine %s" name);
  emit_shared_header ctx ~with_consts:true;
  line ctx "      integer acfdn, acfdnb, acfdnl, acfdnh";
  let transfers =
    List.sort
      (fun (a : Ast.transfer) b ->
        compare
          (a.Ast.xfer_dim, a.Ast.xfer_array, a.Ast.xfer_dir)
          (b.Ast.xfer_dim, b.Ast.xfer_array, b.Ast.xfer_dir))
      transfers
  in
  let ext_of_dim g =
    List.fold_left
      (fun acc (t : Ast.transfer) ->
        if t.Ast.xfer_dim = g then max acc t.Ast.xfer_depth else acc)
      0 transfers
  in
  let p = parts ctx in
  List.iteri
    (fun idx (t : Ast.transfer) ->
      let g = t.Ast.xfer_dim in
      let stride = rank_stride ctx g in
      let tag = idx + 1 in
      let send_guard, recv_guard, send_delta, recv_delta =
        match t.Ast.xfer_dir with
        | Ast.Dplus ->
            ( Printf.sprintf "%s .lt. %d" (coord_var g) (p.(g) - 1),
              Printf.sprintf "%s .gt. 0" (coord_var g),
              stride, -stride )
        | Ast.Dminus ->
            ( Printf.sprintf "%s .gt. 0" (coord_var g),
              Printf.sprintf "%s .lt. %d" (coord_var g) (p.(g) - 1),
              -stride, stride )
      in
      line ctx
        (Printf.sprintf "c     %s along dim %d, %s, depth %d" t.Ast.xfer_array
           g
           (match t.Ast.xfer_dir with Ast.Dplus -> "+" | Ast.Dminus -> "-")
           t.Ast.xfer_depth);
      (* even coordinates send first, odd receive first: deadlock-free
         with synchronous sends *)
      let emit_send indent =
        emit_pack ctx ~indent t.Ast.xfer_array
          (transfer_ranges ctx ~who:`Me t.Ast.xfer_array ~dim:g
             ~dir:t.Ast.xfer_dir ~depth:t.Ast.xfer_depth ~ext_of_dim);
        line ctx
          (Printf.sprintf
             "%s      call mpi_send(acfdbf, acfdn, mpi_real8, acfdnb, %d,"
             indent tag);
        line ctx "     &    mpi_comm_world, acfder)"
      in
      let emit_recv indent =
        emit_count ctx ~indent
          (transfer_ranges ctx ~who:`Neighbor t.Ast.xfer_array ~dim:g
             ~dir:t.Ast.xfer_dir ~depth:t.Ast.xfer_depth ~ext_of_dim);
        line ctx
          (Printf.sprintf
             "%s      call mpi_recv(acfdbf, acfdn, mpi_real8, acfdnb, %d,"
             indent tag);
        line ctx "     &    mpi_comm_world, acfdst, acfder)";
        emit_unpack ctx ~indent t.Ast.xfer_array
          (transfer_ranges ctx ~who:`Neighbor t.Ast.xfer_array ~dim:g
             ~dir:t.Ast.xfer_dir ~depth:t.Ast.xfer_depth ~ext_of_dim)
      in
      line ctx (Printf.sprintf "      if (mod(%s, 2) .eq. 0) then" (coord_var g));
      line ctx (Printf.sprintf "      if (%s) then" send_guard);
      line ctx (Printf.sprintf "        acfdnb = acfdrk + (%d)" send_delta);
      emit_send "  ";
      line ctx "      end if";
      line ctx (Printf.sprintf "      if (%s) then" recv_guard);
      line ctx (Printf.sprintf "        acfdnb = acfdrk + (%d)" recv_delta);
      (match t.Ast.xfer_dir with
      | Ast.Dplus -> emit_neighbor_bounds ctx g (Printf.sprintf "%s - 1" (coord_var g))
      | Ast.Dminus -> emit_neighbor_bounds ctx g (Printf.sprintf "%s + 1" (coord_var g)));
      emit_recv "  ";
      line ctx "      end if";
      line ctx "      else";
      line ctx (Printf.sprintf "      if (%s) then" recv_guard);
      line ctx (Printf.sprintf "        acfdnb = acfdrk + (%d)" recv_delta);
      (match t.Ast.xfer_dir with
      | Ast.Dplus -> emit_neighbor_bounds ctx g (Printf.sprintf "%s - 1" (coord_var g))
      | Ast.Dminus -> emit_neighbor_bounds ctx g (Printf.sprintf "%s + 1" (coord_var g)));
      emit_recv "  ";
      line ctx "      end if";
      line ctx (Printf.sprintf "      if (%s) then" send_guard);
      line ctx (Printf.sprintf "        acfdnb = acfdrk + (%d)" send_delta);
      emit_send "  ";
      line ctx "      end if";
      line ctx "      end if")
    transfers;
  line ctx "      return";
  line ctx "      end"

(* ------------------------------------------------------------------ *)
(* Pipeline wait / forward subroutines                                 *)
(* ------------------------------------------------------------------ *)

let emit_pipe_sub ctx name ~recv ~dim ~(dir : Ast.direction) arrays =
  line ctx "";
  line ctx
    (Printf.sprintf "c     mirror-image pipeline %s along dim %d"
       (if recv then "wait (upstream halo)" else "forward (downstream)")
       dim);
  line ctx (Printf.sprintf "      subroutine %s" name);
  emit_shared_header ctx ~with_consts:true;
  line ctx "      integer acfdn, acfdnb, acfdnl, acfdnh";
  let p = parts ctx in
  let stride = rank_stride ctx dim in
  let upstream_dir =
    match dir with Ast.Dplus -> Ast.Dminus | Ast.Dminus -> Ast.Dplus
  in
  let peer_dir = if recv then upstream_dir else dir in
  let guard, delta =
    match peer_dir with
    | Ast.Dplus ->
        (Printf.sprintf "%s .lt. %d" (coord_var dim) (p.(dim) - 1), stride)
    | Ast.Dminus -> (Printf.sprintf "%s .gt. 0" (coord_var dim), -stride)
  in
  line ctx (Printf.sprintf "      if (%s) then" guard);
  line ctx (Printf.sprintf "        acfdnb = acfdrk + (%d)" delta);
  List.iteri
    (fun idx (arr_name, depth) ->
      let tag = 100 + idx in
      if recv then begin
        (* the sender's boundary planes land in our ghost region *)
        (match peer_dir with
        | Ast.Dminus ->
            emit_neighbor_bounds ctx dim (Printf.sprintf "%s - 1" (coord_var dim))
        | Ast.Dplus ->
            emit_neighbor_bounds ctx dim (Printf.sprintf "%s + 1" (coord_var dim)));
        emit_count ctx ~indent:"  "
          (transfer_ranges ctx ~who:`Neighbor arr_name ~dim ~dir ~depth
             ~ext_of_dim:(fun _ -> 0));
        line ctx
          (Printf.sprintf
             "        call mpi_recv(acfdbf, acfdn, mpi_real8, acfdnb, %d,"
             tag);
        line ctx "     &    mpi_comm_world, acfdst, acfder)";
        emit_unpack ctx ~indent:"  " arr_name
          (transfer_ranges ctx ~who:`Neighbor arr_name ~dim ~dir ~depth
             ~ext_of_dim:(fun _ -> 0))
      end
      else begin
        emit_pack ctx ~indent:"  " arr_name
          (transfer_ranges ctx ~who:`Me arr_name ~dim ~dir ~depth
             ~ext_of_dim:(fun _ -> 0));
        line ctx
          (Printf.sprintf
             "        call mpi_send(acfdbf, acfdn, mpi_real8, acfdnb, %d,"
             tag);
        line ctx "     &    mpi_comm_world, acfder)"
      end)
    arrays;
  line ctx "      end if";
  line ctx "      return";
  line ctx "      end"

(* ------------------------------------------------------------------ *)
(* Allgather subroutine                                                *)
(* ------------------------------------------------------------------ *)

let emit_gather_sub ctx name arrays =
  line ctx "";
  line ctx "c     replicated-loop input gather: every owner broadcasts";
  line ctx (Printf.sprintf "      subroutine %s" name);
  emit_shared_header ctx ~with_consts:true;
  line ctx "      integer acfdn, acfdr";
  let nd = ndims ctx in
  let p = parts ctx in
  let grid = P.Topology.grid ctx.topo in
  (* per-root bounds into acfdg<L/H><d> *)
  let gl d = Printf.sprintf "acfdg%d" d and gh d = Printf.sprintf "acfdq%d" d in
  line ctx
    (Printf.sprintf "      integer %s"
       (String.concat ", "
          (List.concat_map (fun d -> [ gl d; gh d ]) (List.init nd Fun.id))));
  line ctx "      integer acfdrr";
  line ctx "      do acfdr = 0, acfdnp - 1";
  line ctx "        acfdrr = acfdr";
  for d = nd - 1 downto 0 do
    let base = grid.(d) / p.(d) and rem = grid.(d) mod p.(d) in
    line ctx (Printf.sprintf "        acfdn = mod(acfdrr, %d)" p.(d));
    line ctx (Printf.sprintf "        acfdrr = acfdrr / %d" p.(d));
    line ctx
      (Printf.sprintf "        %s = acfdn * %d + min(acfdn, %d) + 1" (gl d)
         base rem);
    line ctx (Printf.sprintf "        %s = %s + %d" (gh d) (gl d) (base - 1));
    if rem > 0 then
      line ctx
        (Printf.sprintf "        if (acfdn .lt. %d) %s = %s + 1" rem (gh d)
           (gh d))
  done;
  List.iter
    (fun arr_name ->
      let bounds = array_bounds ctx arr_name in
      let dims = status_dims ctx arr_name in
      let ranges =
        List.mapi
          (fun k (alo, ahi) ->
            match if k < Array.length dims then dims.(k) else None with
            | None -> (string_of_int alo, string_of_int ahi)
            | Some g -> (gl g, gh g))
          bounds
      in
      line ctx "        if (acfdrk .eq. acfdr) then";
      emit_pack ctx ~indent:"    " arr_name ranges;
      line ctx "        else";
      emit_count ctx ~indent:"    " ranges;
      line ctx "        end if";
      line ctx
        "        call mpi_bcast(acfdbf, acfdn, mpi_real8, acfdr,";
      line ctx "     &      mpi_comm_world, acfder)";
      line ctx "        if (acfdrk .ne. acfdr) then";
      emit_unpack ctx ~indent:"    " arr_name ranges;
      line ctx "        end if")
    arrays;
  line ctx "      end do";
  line ctx "      return";
  line ctx "      end"

(* ------------------------------------------------------------------ *)
(* Body statement rendering                                            *)
(* ------------------------------------------------------------------ *)

(* replace Local_lo/Local_hi with max/min against the block bounds *)
let rec subst_local (e : Ast.expr) =
  match e with
  | Ast.Local_lo (d, a) ->
      Ast.Ref ("max", [ subst_local a; Ast.Var (lo_var d) ])
  | Ast.Local_hi (d, a) ->
      Ast.Ref ("min", [ subst_local a; Ast.Var (hi_var d) ])
  | Ast.Unop (op, a) -> Ast.Unop (op, subst_local a)
  | Ast.Binop (op, a, b) -> Ast.Binop (op, subst_local a, subst_local b)
  | Ast.Ref (n, args) -> Ast.Ref (n, List.map subst_local args)
  | e -> e

let allreduce_stmts mpi_op v =
  [
    Ast.mk_stmt
      (Ast.Assign (Ast.Var "acfdt1", Ast.Var v));
    Ast.mk_stmt
      (Ast.Call
         ( "mpi_allreduce",
           [ Ast.Var "acfdt1"; Ast.Var v; Ast.Const_int 1;
             Ast.Var "mpi_real8"; Ast.Var mpi_op; Ast.Var "mpi_comm_world";
             Ast.Var "acfder" ] ));
  ]

let rec transform_block ctx block =
  List.concat_map (transform_stmt ctx) block

and transform_stmt ctx st =
  let mk = Ast.mk_stmt ?label:st.Ast.s_label ~line:st.Ast.s_line in
  match st.Ast.s_kind with
  | Ast.Comm (Ast.Exchange ts) ->
      let name = fresh ctx "acfdx" in
      ctx.subs <- (name, fun n -> emit_exchange_sub ctx n ts) :: ctx.subs;
      [ mk (Ast.Call (name, [])) ]
  | Ast.Comm (Ast.Allreduce_max v) -> allreduce_stmts "mpi_max" v
  | Ast.Comm (Ast.Allreduce_min v) -> allreduce_stmts "mpi_min" v
  | Ast.Comm (Ast.Allreduce_sum v) -> allreduce_stmts "mpi_sum" v
  | Ast.Comm (Ast.Broadcast vars) ->
      List.map
        (fun v ->
          Ast.mk_stmt
            (Ast.Call
               ( "mpi_bcast",
                 [ Ast.Var v; Ast.Const_int 1; Ast.Var "mpi_real8";
                   Ast.Const_int 0; Ast.Var "mpi_comm_world";
                   Ast.Var "acfder" ] )))
        vars
  | Ast.Comm (Ast.Allgather arrays) ->
      let name = fresh ctx "acfdg" in
      ctx.subs <- (name, fun n -> emit_gather_sub ctx n arrays) :: ctx.subs;
      [ mk (Ast.Call (name, [])) ]
  | Ast.Comm Ast.Barrier ->
      [ mk (Ast.Call ("mpi_barrier", [ Ast.Var "mpi_comm_world"; Ast.Var "acfder" ])) ]
  | Ast.Pipeline_recv { dim; dir; arrays } ->
      let name = fresh ctx "acfdp" in
      ctx.subs <-
        (name, fun n -> emit_pipe_sub ctx n ~recv:true ~dim ~dir arrays)
        :: ctx.subs;
      [ mk (Ast.Call (name, [])) ]
  | Ast.Pipeline_send { dim; dir; arrays } ->
      let name = fresh ctx "acfdp" in
      ctx.subs <-
        (name, fun n -> emit_pipe_sub ctx n ~recv:false ~dim ~dir arrays)
        :: ctx.subs;
      [ mk (Ast.Call (name, [])) ]
  | Ast.Read items ->
      (* rank 0 reads, then broadcasts each item *)
      let read_guard =
        Ast.mk_stmt
          (Ast.If
             ( [ ( Ast.Binop (Ast.Eq, Ast.Var "acfdrk", Ast.Const_int 0),
                   [ Ast.mk_stmt (Ast.Read (List.map subst_local items)) ] )
               ],
               None ))
      in
      let bcasts =
        List.map
          (fun it ->
            Ast.mk_stmt
              (Ast.Call
                 ( "mpi_bcast",
                   [ subst_local it; Ast.Const_int 1; Ast.Var "mpi_real8";
                     Ast.Const_int 0; Ast.Var "mpi_comm_world";
                     Ast.Var "acfder" ] )))
          items
      in
      read_guard :: bcasts
  | Ast.Write items ->
      [ Ast.mk_stmt
          (Ast.If
             ( [ ( Ast.Binop (Ast.Eq, Ast.Var "acfdrk", Ast.Const_int 0),
                   [ Ast.mk_stmt (Ast.Write (List.map subst_local items)) ] )
               ],
               None )) ]
  | Ast.Do d ->
      [ { st with
          Ast.s_kind =
            Ast.Do
              { d with
                do_lo = subst_local d.Ast.do_lo;
                do_hi = subst_local d.Ast.do_hi;
                do_step = Option.map subst_local d.Ast.do_step;
                do_body = transform_block ctx d.Ast.do_body } } ]
  | Ast.If (branches, els) ->
      [ { st with
          Ast.s_kind =
            Ast.If
              ( List.map
                  (fun (c, b) -> (subst_local c, transform_block ctx b))
                  branches,
                Option.map (transform_block ctx) els ) } ]
  | Ast.Assign (l, r) ->
      [ { st with Ast.s_kind = Ast.Assign (subst_local l, subst_local r) } ]
  | Ast.Call (n, args) ->
      [ { st with Ast.s_kind = Ast.Call (n, List.map subst_local args) } ]
  | Ast.Goto _ | Ast.Continue | Ast.Return | Ast.Stop -> [ st ]

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let emit ~gi ~topo (u : Ast.program_unit) =
  let ctx =
    {
      gi;
      topo;
      unit_ = u;
      env = A.Env.of_unit u;
      buf = Buffer.create 4096;
      subs = [];
      counter = 0;
    }
  in
  let body = transform_block ctx u.Ast.u_body in
  (* header comment *)
  line ctx "c  Auto-CFD generated SPMD program (Fortran 77 + MPI)";
  line ctx
    (Printf.sprintf "c  partition: %s over grid %s"
       (Format.asprintf "%a" P.Topology.pp_shape (P.Topology.parts topo))
       (String.concat " x "
          (Array.to_list (Array.map string_of_int (P.Topology.grid topo)))));
  line ctx "c";
  line ctx (Printf.sprintf "      program %s" u.Ast.u_name);
  emit_shared_header ctx ~with_consts:true;
  (* non-status declarations (scalars, work variables) *)
  List.iter
    (fun d ->
      if not (A.Grid_info.is_status gi d.Ast.d_name) then
        line ctx (Pretty.decl d))
    u.Ast.u_decls;
  (* commons without status arrays *)
  List.iter
    (fun (blk, members) ->
      if
        not
          (List.exists (fun m -> A.Grid_info.is_status gi m) members)
      then
        line ctx
          (Printf.sprintf "      common /%s/ %s"
             (if blk = "" then "blank" else blk)
             (String.concat ", " members)))
    u.Ast.u_commons;
  line ctx "      real acfdt1";
  List.iter
    (fun (name, values) ->
      line ctx
        (Printf.sprintf "      data %s /%s/" name
           (String.concat ", " (List.map Pretty.data_value values))))
    u.Ast.u_data;
  line ctx "      call mpi_init(acfder)";
  line ctx "      call acfdini";
  line ctx (Pretty.block ~indent:6 body);
  line ctx "      call mpi_finalize(acfder)";
  line ctx "      end";
  emit_init ctx;
  List.iter (fun (name, emitter) -> emitter name) (List.rev ctx.subs);
  Buffer.contents ctx.buf
