(** Loop skewing (Wolfe's "wavefront method revisited", the paper's
    citation [22] for Fig. 3(a) loops).

    A doubly-nested self-dependent loop whose flow dependence vectors are
    component-wise non-negative distances — e.g. reads of [v(i-1, j)] and
    [v(i, j-1)] — can be rewritten so that the {e inner} loop iterates
    over an anti-diagonal wavefront of independent points:

    {v
    do i = li, hi                do t = li+lj, hi+hj
      do j = lj, hj      ==>       do j = max(lj, t-hi), min(hj, t-li)
        S(i, j)                       S(t-j, j)
    v}

    This implementation performs the transformation at the source level
    and is used as a demonstration of the alternative schedule (the SPMD
    backend uses block pipelining, which subsumes it across ranks); the
    tests check the skewed program computes bit-identical results. *)

open Autocfd_fortran

val skewable :
  ndims:int ->
  Autocfd_analysis.Env.t ->
  Autocfd_analysis.Field_loop.summary ->
  bool
(** A perfect 2-deep ascending nest, self-dependent with every flow vector
    component-wise [>= -1 .. <= 0] (distance vectors non-negative) and no
    anti-direction crossings that skewing cannot honour. *)

val skew_stmt : Ast.stmt -> Ast.stmt option
(** [skew_stmt st] rewrites a 2-deep perfect DO nest into its skewed form;
    [None] when the statement is not such a nest (no legality check — use
    {!skewable} first). *)

val transform_unit :
  Autocfd_analysis.Grid_info.t -> Ast.program_unit -> Ast.program_unit * int
(** Skew every skewable self-dependent field-loop head of the unit;
    returns the rewritten unit and the number of nests skewed. *)
