open Autocfd_fortran
module A = Autocfd_analysis
module S = Autocfd_syncopt
module Topology = Autocfd_partition.Topology

type input = {
  in_unit : Ast.program_unit;
  in_gi : A.Grid_info.t;
  in_topo : Topology.t;
  in_summaries : A.Field_loop.summary list;
  in_groups : S.Combine.group list;
  in_layout : S.Layout.t;
}

let head_id (s : A.Field_loop.summary) =
  s.A.Field_loop.fs_loop.A.Loops.lp_id

(* A pure-reduction loop (scalar reductions, no status-array writes) that
   does not sweep some cut dimension can still be distributed when its
   reads in that dimension hit a single fixed plane: only the ranks owning
   the plane participate, and the allreduce combines the partial results.
   Returns the (dim, plane) ownership guards, or None when the pattern
   does not apply. *)
let participation_guards topo (s : A.Field_loop.summary) =
  let cut_dims = Topology.cut_dims topo in
  let unswept =
    List.filter
      (fun g -> not (List.mem g s.A.Field_loop.fs_swept_dims))
      cut_dims
  in
  if unswept = [] then Some []
  else if s.A.Field_loop.fs_reductions = [] then None
  else if
    (* must not write any status array (a pure reduction sweep) *)
    List.exists
      (fun (_, (u : A.Field_loop.array_use)) -> u.A.Field_loop.au_assigned)
      s.A.Field_loop.fs_uses
  then None
  else
    let guard_of g =
      (* every read along dim g must hit one and the same fixed plane *)
      let planes =
        List.concat_map
          (fun (_, (u : A.Field_loop.array_use)) ->
            List.filter_map
              (fun (g', p) -> if g' = g then Some p else None)
              u.A.Field_loop.au_fixed_reads)
          s.A.Field_loop.fs_uses
        |> List.sort_uniq compare
      in
      let irregular =
        List.exists
          (fun (_, (u : A.Field_loop.array_use)) ->
            u.A.Field_loop.au_read_offsets.(g) <> []
            || List.mem g u.A.Field_loop.au_opaque_read_dims)
          s.A.Field_loop.fs_uses
      in
      match planes with
      | [ p ] when not irregular -> Some (g, p)
      | _ -> None
    in
    let guards = List.map guard_of unswept in
    if List.for_all Option.is_some guards then
      Some (List.map Option.get guards)
    else None

(* Sum reductions double-count unless the nest is distributed over every
   cut dimension or restricted to the owning ranks. *)
let adjusted_strategy env ~cut topo (s : A.Field_loop.summary) =
  let ndims = Array.length (Topology.grid topo) in
  let strat = A.Mirror.strategy ~ndims env ~cut s in
  match strat with
  | A.Mirror.Serial -> A.Mirror.Serial
  | A.Mirror.Block | A.Mirror.Pipeline _ ->
      let has_reduction = s.A.Field_loop.fs_reductions <> [] in
      let covers_cuts =
        List.for_all
          (fun g -> List.mem g s.A.Field_loop.fs_swept_dims)
          (Topology.cut_dims topo)
      in
      if has_reduction && not covers_cuts then
        match participation_guards topo s with
        | Some _ -> strat (* rebuild_head adds the ownership guard *)
        | None -> A.Mirror.Serial
      else strat

let strategies input =
  let env = A.Env.of_unit input.in_unit in
  let cut g = Topology.is_cut input.in_topo g in
  List.map
    (fun s -> (head_id s, adjusted_strategy env ~cut input.in_topo s))
    input.in_summaries

(* is the nest actually distributed (some swept dimension is cut)? *)
let distributed ~cut (s : A.Field_loop.summary) =
  List.exists cut s.A.Field_loop.fs_swept_dims

(* pipeline payload: per pipelined dimension, the flow-dependent arrays
   and their halo depths *)
let pipeline_arrays ~ndims env (s : A.Field_loop.summary) dim =
  List.filter_map
    (fun (v, _) ->
      match A.Mirror.decompose ~ndims env s v with
      | None -> None
      | Some de ->
          List.find_map
            (fun dd ->
              if dd.A.Mirror.dd_dim = dim && dd.A.Mirror.dd_flow <> [] then
                Some
                  (v,
                   List.fold_left
                     (fun acc o -> max acc (abs o))
                     1 dd.A.Mirror.dd_flow)
              else None)
            de.A.Mirror.de_dims)
    s.A.Field_loop.fs_uses

let run input =
  let env = A.Env.of_unit input.in_unit in
  let cut g = Topology.is_cut input.in_topo g in
  let ndims = Array.length (Topology.grid input.in_topo) in
  let strat_tbl = Hashtbl.create 32 in
  List.iter
    (fun s ->
      Hashtbl.replace strat_tbl (head_id s)
        (s, adjusted_strategy env ~cut input.in_topo s))
    input.in_summaries;
  (* comm insertions per (block id, slot) *)
  let inserts = Hashtbl.create 16 in
  List.iter
    (fun (g : S.Combine.group) ->
      let key = (g.S.Combine.gr_block, g.S.Combine.gr_slot) in
      let cur = Option.value ~default:[] (Hashtbl.find_opt inserts key) in
      Hashtbl.replace inserts key (cur @ [ g.S.Combine.gr_transfers ]))
    input.in_groups;
  let block_counter = ref (-1) in
  (* rewrite DO bounds of a distributed nest: every nest loop whose
     variable sweeps a cut grid dimension is clipped to the rank's block *)
  let rec rewrite_nest var_dims st =
    match st.Ast.s_kind with
    | Ast.Do d ->
        let d =
          match List.assoc_opt d.Ast.do_var var_dims with
          | Some g when cut g ->
              let step =
                match d.Ast.do_step with
                | None -> 1
                | Some e -> (
                    match A.Env.eval_int env e with Some k -> k | None -> 1)
              in
              if step >= 0 then
                {
                  d with
                  do_lo = Ast.Local_lo (g, d.Ast.do_lo);
                  do_hi = Ast.Local_hi (g, d.Ast.do_hi);
                  do_sched = Ast.Sched_block g;
                }
              else
                (* descending sweep: the start is the high end *)
                {
                  d with
                  do_lo = Ast.Local_hi (g, d.Ast.do_lo);
                  do_hi = Ast.Local_lo (g, d.Ast.do_hi);
                  do_sched = Ast.Sched_block g;
                }
          | _ -> d
        in
        { st with
          Ast.s_kind =
            Ast.Do { d with do_body = List.map (rewrite_nest var_dims) d.Ast.do_body } }
    | Ast.If (branches, els) ->
        { st with
          Ast.s_kind =
            Ast.If
              ( List.map
                  (fun (c, b) -> (c, List.map (rewrite_nest var_dims) b))
                  branches,
                Option.map (List.map (rewrite_nest var_dims)) els ) }
    | _ -> st
  in
  (* mark the pipelined loops' schedules inside an already-rewritten head *)
  let rec mark_pipeline dims st =
    match st.Ast.s_kind with
    | Ast.Do d ->
        let sched =
          match d.Ast.do_sched with
          | Ast.Sched_block g -> (
              match List.assoc_opt g dims with
              | Some dir -> Ast.Sched_pipeline { dim = g; dir }
              | None -> d.Ast.do_sched)
          | s -> s
        in
        { st with
          Ast.s_kind =
            Ast.Do
              { d with do_sched = sched;
                do_body = List.map (mark_pipeline dims) d.Ast.do_body } }
    | Ast.If (branches, els) ->
        { st with
          Ast.s_kind =
            Ast.If
              ( List.map (fun (c, b) -> (c, List.map (mark_pipeline dims) b))
                  branches,
                Option.map (List.map (mark_pipeline dims)) els ) }
    | _ -> st
  in
  (* walk mirroring Layout's traversal so block ids line up *)
  let rec rebuild_block stmts =
    incr block_counter;
    let id = !block_counter in
    let out = ref [] in
    let emit_comms slot =
      match Hashtbl.find_opt inserts (id, slot) with
      | None -> ()
      | Some transfer_sets ->
          List.iter
            (fun ts ->
              if ts <> [] then
                out := Ast.mk_stmt (Ast.Comm (Ast.Exchange ts)) :: !out)
            transfer_sets
    in
    List.iteri
      (fun i st ->
        emit_comms i;
        List.iter (fun s -> out := s :: !out) (rebuild_stmt st))
      stmts;
    emit_comms (List.length stmts);
    List.rev !out
  and rebuild_stmt st : Ast.stmt list =
    match Hashtbl.find_opt strat_tbl st.Ast.s_id with
    | Some (summary, strat) -> rebuild_head st summary strat
    | None -> (
        match st.Ast.s_kind with
        | Ast.Do d ->
            [ { st with
                Ast.s_kind = Ast.Do { d with do_body = rebuild_block d.Ast.do_body } } ]
        | Ast.If (branches, els) ->
            [ { st with
                Ast.s_kind =
                  Ast.If
                    ( List.map (fun (c, b) -> (c, rebuild_block b)) branches,
                      Option.map rebuild_block els ) } ]
        | Ast.Write items ->
            (* rank 0 prints: status-array elements it does not own must
               be gathered first (part of the paper's I/O restructuring) *)
            let arrays =
              List.concat_map
                (fun e ->
                  Ast.fold_exprs
                    (fun acc e ->
                      match e with
                      | Ast.Ref (name, _)
                        when A.Grid_info.is_status input.in_gi name ->
                          name :: acc
                      | _ -> acc)
                    [] e)
                items
              |> List.sort_uniq compare
            in
            if arrays <> [] && Topology.cut_dims input.in_topo <> [] then
              [ Ast.mk_stmt (Ast.Comm (Ast.Allgather arrays)); st ]
            else [ st ]
        | _ -> [ st ])
  and rebuild_head st summary strat =
    (* the head's nested blocks must still consume block ids in Layout
       order, so recurse first with the generic rebuild *)
    let st =
      match st.Ast.s_kind with
      | Ast.Do d ->
          { st with
            Ast.s_kind = Ast.Do { d with do_body = rebuild_block d.Ast.do_body } }
      | _ -> assert false
    in
    let var_dims = summary.A.Field_loop.fs_var_dims in
    match strat with
    | A.Mirror.Serial ->
        (* replicated execution: every rank runs the full loop, so all
           distributed inputs must be made globally fresh first *)
        let read_arrays =
          List.filter_map
            (fun (v, (u : A.Field_loop.array_use)) ->
              if u.A.Field_loop.au_referenced then Some v else None)
            summary.A.Field_loop.fs_uses
        in
        if read_arrays <> [] && Topology.cut_dims input.in_topo <> [] then
          [ Ast.mk_stmt (Ast.Comm (Ast.Allgather read_arrays)); st ]
        else [ st ]
    | A.Mirror.Block | A.Mirror.Pipeline _ ->
        let st = rewrite_nest var_dims st in
        let st, recvs, sends =
          match strat with
          | A.Mirror.Pipeline dims ->
              let st = mark_pipeline dims st in
              let recvs =
                List.filter_map
                  (fun (g, dir) ->
                    match pipeline_arrays ~ndims env summary g with
                    | [] -> None
                    | arrays ->
                        Some
                          (Ast.mk_stmt
                             (Ast.Pipeline_recv { dim = g; dir; arrays })))
                  dims
              in
              let sends =
                List.filter_map
                  (fun (g, dir) ->
                    match pipeline_arrays ~ndims env summary g with
                    | [] -> None
                    | arrays ->
                        Some
                          (Ast.mk_stmt
                             (Ast.Pipeline_send { dim = g; dir; arrays })))
                  dims
              in
              (st, recvs, sends)
          | _ -> (st, [], [])
        in
        (* ownership guard for pure-reduction loops not sweeping every
           cut dimension: only plane-owner ranks execute *)
        let st =
          if summary.A.Field_loop.fs_reductions = [] then st
          else
            match participation_guards input.in_topo summary with
            | Some [] | None -> st
            | Some guards ->
                let owns (g, p) =
                  (* lo_g <= p <= hi_g, expressed with the Local bounds *)
                  Ast.Binop
                    ( Ast.And,
                      Ast.Binop
                        (Ast.Eq, Ast.Local_lo (g, Ast.Const_int p),
                         Ast.Const_int p),
                      Ast.Binop
                        (Ast.Eq, Ast.Local_hi (g, Ast.Const_int p),
                         Ast.Const_int p) )
                in
                let cond =
                  match List.map owns guards with
                  | [] -> assert false
                  | c :: rest ->
                      List.fold_left
                        (fun acc c' -> Ast.Binop (Ast.And, acc, c'))
                        c rest
                in
                Ast.mk_stmt (Ast.If ([ (cond, [ st ]) ], None))
        in
        let reductions =
          if distributed ~cut summary then
            List.map
              (fun (r : A.Field_loop.reduction) ->
                let comm =
                  match r.A.Field_loop.red_op with
                  | `Max -> Ast.Allreduce_max r.A.Field_loop.red_var
                  | `Min -> Ast.Allreduce_min r.A.Field_loop.red_var
                  | `Sum -> Ast.Allreduce_sum r.A.Field_loop.red_var
                in
                Ast.mk_stmt (Ast.Comm comm))
              summary.A.Field_loop.fs_reductions
          else []
        in
        recvs @ (st :: sends) @ reductions
  in
  let body = rebuild_block input.in_unit.Ast.u_body in
  { input.in_unit with Ast.u_body = body }
