lib/codegen/transform.ml: Array Ast Autocfd_analysis Autocfd_fortran Autocfd_partition Autocfd_syncopt Hashtbl List Option
