lib/codegen/skew.mli: Ast Autocfd_analysis Autocfd_fortran
