lib/codegen/mpi_backend.ml: Array Ast Autocfd_analysis Autocfd_fortran Autocfd_partition Buffer Format Fun List Option Pretty Printf String
