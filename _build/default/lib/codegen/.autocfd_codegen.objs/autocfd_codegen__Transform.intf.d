lib/codegen/transform.mli: Ast Autocfd_analysis Autocfd_fortran Autocfd_partition Autocfd_syncopt
