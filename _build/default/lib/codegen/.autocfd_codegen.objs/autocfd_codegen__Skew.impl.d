lib/codegen/skew.ml: Array Ast Autocfd_analysis Autocfd_fortran List Option
