let () =
  Alcotest.run "autocfd"
    [
      ("util", Test_util.suite);
      ("partition", Test_partition.suite);
      ("mpsim", Test_mpsim.suite);
      ("fault", Test_fault.suite);
      ("obs", Test_obs.suite);
      ("fortran", Test_fortran.suite);
      ("analysis", Test_analysis.suite);
      ("inline", Test_inline.suite);
      ("interp", Test_interp.suite);
      ("syncopt", Test_syncopt.suite);
      ("spmd", Test_spmd.suite);
      ("engine", Test_engine.suite);
      ("fission", Test_fission.suite);
      ("apps", Test_apps.suite);
      ("perfmodel", Test_perfmodel.suite);
      ("driver", Test_driver.suite);
      ("mpi_backend", Test_mpi_backend.suite);
      ("sched", Test_sched.suite);
      ("tune", Test_tune.suite);
      ("fabric", Test_fabric.suite);
    ]
