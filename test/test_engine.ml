(** Golden equivalence of the two execution engines.

    The compiled closure-IR engine ({!Autocfd_interp.Compile}) must be
    bit-identical to the tree-walking interpreter ({!Autocfd_interp.Machine})
    — not merely numerically close: gathered arrays, final scalars, WRITE
    output, flop counts and the full simulator statistics (message/byte/
    collective censuses, per-rank times) are compared with structural
    equality on every bundled application program and the heat2d example,
    over several partition shapes each. *)

module D = Autocfd.Driver
module I = Autocfd_interp

let shape parts =
  String.concat "x" (Array.to_list (Array.map string_of_int parts))

let check_array_list what name (a : (string * I.Value.arr) list)
    (b : (string * I.Value.arr) list) =
  Alcotest.(check (list string))
    (Printf.sprintf "%s: %s array names" name what)
    (List.map fst a) (List.map fst b);
  List.iter2
    (fun (arr_name, aa) (_, ab) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s %s bounds" name what arr_name)
        true
        (aa.I.Value.bounds = ab.I.Value.bounds);
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s %s bit-identical" name what arr_name)
        true
        (aa.I.Value.data = ab.I.Value.data))
    a b

let check_sequential name src =
  let t = D.load src in
  let tree = D.run_sequential ~engine:I.Spmd.Tree t in
  let compiled = D.run_sequential ~engine:I.Spmd.Compiled t in
  Alcotest.(check (list string))
    (name ^ ": output") tree.D.sq_output compiled.D.sq_output;
  Alcotest.(check (float 0.0))
    (name ^ ": flops") tree.D.sq_flops compiled.D.sq_flops;
  check_array_list "sequential" name tree.D.sq_arrays compiled.D.sq_arrays

let check_parallel name src parts =
  let t = D.load src in
  let plan = D.plan t ~parts in
  let tree = D.run_parallel ~engine:I.Spmd.Tree plan in
  let compiled = D.run_parallel ~engine:I.Spmd.Compiled plan in
  let ctx = Printf.sprintf "%s %s" name (shape parts) in
  check_array_list "gathered" ctx tree.I.Spmd.gathered compiled.I.Spmd.gathered;
  Alcotest.(check bool)
    (ctx ^ ": scalars") true
    (tree.I.Spmd.scalars = compiled.I.Spmd.scalars);
  Alcotest.(check bool)
    (ctx ^ ": flops per rank") true
    (tree.I.Spmd.flops_per_rank = compiled.I.Spmd.flops_per_rank);
  Alcotest.(check (list string))
    (ctx ^ ": output") tree.I.Spmd.output compiled.I.Spmd.output;
  Alcotest.(check bool)
    (ctx ^ ": simulator stats") true
    (tree.I.Spmd.stats = compiled.I.Spmd.stats)

let check_both name src partitions =
  check_sequential name src;
  List.iter (check_parallel name src) partitions

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_sprayer () =
  check_both "sprayer"
    (Autocfd_apps.Sprayer.source ~ni:36 ~nj:18 ~ntime:6 ~npsi:3 ())
    [ [| 2; 1 |]; [| 1; 2 |]; [| 2; 2 |]; [| 3; 2 |] ]

let test_aerofoil () =
  check_both "aerofoil"
    (Autocfd_apps.Aerofoil.source ~ni:16 ~nj:10 ~nk:6 ~ntime:3 ~npres:2 ())
    [ [| 2; 1; 1 |]; [| 2; 2; 1 |]; [| 2; 2; 2 |] ]

let test_cavity () =
  check_both "cavity"
    (Autocfd_apps.Cavity.source ~n:17 ~maxit:5 ~npsi:3 ())
    [ [| 2; 1 |]; [| 2; 2 |]; [| 3; 3 |] ]

let heat2d_path () =
  (* cwd is _build/default/test under `dune runtest`, the project root
     under `dune exec test/main.exe` *)
  List.find Sys.file_exists [ "../examples/heat2d.f"; "examples/heat2d.f" ]

let test_heat2d () =
  check_both "heat2d"
    (read_file (heat2d_path ()))
    [ [| 2; 1 |]; [| 1; 2 |]; [| 2; 2 |] ]

(* flop-charge parity on a run with nontrivial timing: the simulated
   elapsed time is derived from the flop census, so charge drift would
   silently skew every timing table — compare with compute charging on *)
let test_charged_timing_identical () =
  let t =
    D.load (Autocfd_apps.Sprayer.source ~ni:30 ~nj:16 ~ntime:4 ~npsi:3 ())
  in
  let plan = D.plan t ~parts:[| 2; 2 |] in
  let machine = Autocfd.Experiments.machine in
  let flop_time = D.calibrated_flop_time ~machine plan in
  let run engine =
    D.run_parallel ~engine
      ~net:machine.Autocfd_perfmodel.Model.net ~flop_time plan
  in
  let tree = run I.Spmd.Tree and compiled = run I.Spmd.Compiled in
  Alcotest.(check bool)
    "charged stats identical" true
    (tree.I.Spmd.stats = compiled.I.Spmd.stats);
  Alcotest.(check bool)
    "elapsed bit-identical" true
    (tree.I.Spmd.stats.Autocfd_mpsim.Sim.elapsed
    = compiled.I.Spmd.stats.Autocfd_mpsim.Sim.elapsed)

let suite =
  [
    ("sprayer engines identical", `Slow, test_sprayer);
    ("aerofoil engines identical", `Slow, test_aerofoil);
    ("cavity engines identical", `Slow, test_cavity);
    ("heat2d engines identical", `Slow, test_heat2d);
    ("charged timing identical", `Quick, test_charged_timing_identical);
  ]
