(** Golden equivalence of the three execution engines.

    The compiled closure-IR engine ({!Autocfd_interp.Compile}) and the
    fused-kernel tier on top of it must be bit-identical to the
    tree-walking interpreter ({!Autocfd_interp.Machine}) — not merely
    numerically close: gathered arrays, final scalars, WRITE output, flop
    counts and the full simulator statistics (message/byte/collective
    censuses, per-rank times) are compared with structural equality on
    every bundled application program and the heat2d example, over several
    partition shapes each.  A PRNG-driven property suite additionally
    generates random affine loop nests (including deliberate fall-back
    shapes: non-affine subscripts, reductions, zero-trip and negative-step
    loops) and asserts the same three-way equivalence. *)

module D = Autocfd.Driver

let parts_spec p = Autocfd.Runspec.(default |> with_parts (Some p))
module R = Autocfd.Runspec
module I = Autocfd_interp
module Prng = Autocfd_util.Prng

let engines = [ ("compiled", I.Spmd.Compiled); ("fused", I.Spmd.Fused) ]

let shape parts =
  String.concat "x" (Array.to_list (Array.map string_of_int parts))

let check_array_list what name (a : (string * I.Value.arr) list)
    (b : (string * I.Value.arr) list) =
  Alcotest.(check (list string))
    (Printf.sprintf "%s: %s array names" name what)
    (List.map fst a) (List.map fst b);
  List.iter2
    (fun (arr_name, aa) (_, ab) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s %s bounds" name what arr_name)
        true
        (aa.I.Value.bounds = ab.I.Value.bounds);
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s %s bit-identical" name what arr_name)
        true
        (aa.I.Value.data = ab.I.Value.data))
    a b

let check_sequential name src =
  let t = D.load src in
  let tree = D.run_seq ~spec:(R.with_engine I.Spmd.Tree R.default) t in
  List.iter
    (fun (ename, engine) ->
      let name = name ^ "/" ^ ename in
      let r = D.run_seq ~spec:(R.with_engine engine R.default) t in
      Alcotest.(check (list string))
        (name ^ ": output") tree.D.sq_output r.D.sq_output;
      Alcotest.(check (float 0.0))
        (name ^ ": flops") tree.D.sq_flops r.D.sq_flops;
      check_array_list "sequential" name tree.D.sq_arrays r.D.sq_arrays)
    engines

let check_parallel name src parts =
  let t = D.load src in
  let plan = D.plan ~spec:(parts_spec parts) t in
  let tree = D.run ~spec:(R.with_engine I.Spmd.Tree R.default) plan in
  List.iter
    (fun (ename, engine) ->
      let r = D.run ~spec:(R.with_engine engine R.default) plan in
      let ctx = Printf.sprintf "%s/%s %s" name ename (shape parts) in
      check_array_list "gathered" ctx tree.I.Spmd.gathered r.I.Spmd.gathered;
      Alcotest.(check bool)
        (ctx ^ ": scalars") true
        (tree.I.Spmd.scalars = r.I.Spmd.scalars);
      Alcotest.(check bool)
        (ctx ^ ": flops per rank") true
        (tree.I.Spmd.flops_per_rank = r.I.Spmd.flops_per_rank);
      Alcotest.(check (list string))
        (ctx ^ ": output") tree.I.Spmd.output r.I.Spmd.output;
      Alcotest.(check bool)
        (ctx ^ ": simulator stats") true
        (tree.I.Spmd.stats = r.I.Spmd.stats))
    engines

let check_both name src partitions =
  check_sequential name src;
  List.iter (check_parallel name src) partitions

(* the Domains engine runs for real on OCaml 5 domains: program state
   (gathered arrays, scalars, WRITE output, flop censuses) must be
   bit-identical to the simulator, but [stats] is measured wall clock and
   is excluded from the comparison *)
let check_domains name src parts =
  let t = D.load src in
  let plan = D.plan ~spec:(parts_spec parts) t in
  let fused = D.run ~spec:(R.with_engine I.Spmd.Fused R.default) plan in
  let r = D.run ~spec:(R.with_engine I.Spmd.Domains R.default) plan in
  let ctx = Printf.sprintf "%s/domains %s" name (shape parts) in
  check_array_list "gathered" ctx fused.I.Spmd.gathered r.I.Spmd.gathered;
  Alcotest.(check bool)
    (ctx ^ ": scalars") true
    (fused.I.Spmd.scalars = r.I.Spmd.scalars);
  Alcotest.(check bool)
    (ctx ^ ": flops per rank") true
    (fused.I.Spmd.flops_per_rank = r.I.Spmd.flops_per_rank);
  Alcotest.(check (list string))
    (ctx ^ ": output") fused.I.Spmd.output r.I.Spmd.output;
  match r.I.Spmd.domains with
  | None -> Alcotest.fail (ctx ^ ": missing domain_stats")
  | Some ds ->
      let nranks = Autocfd_partition.Topology.nranks plan.D.topo in
      Alcotest.(check int)
        (ctx ^ ": per-rank wall array") nranks
        (Array.length ds.I.Spmd.ds_rank_wall);
      Alcotest.(check bool)
        (ctx ^ ": nonzero wall clock") true (ds.I.Spmd.ds_wall > 0.0)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_sprayer () =
  check_both "sprayer"
    (Autocfd_apps.Sprayer.source ~ni:36 ~nj:18 ~ntime:6 ~npsi:3 ())
    [ [| 2; 1 |]; [| 1; 2 |]; [| 2; 2 |]; [| 3; 2 |] ]

let test_domains_sprayer () =
  List.iter
    (check_domains "sprayer"
       (Autocfd_apps.Sprayer.source ~ni:36 ~nj:18 ~ntime:6 ~npsi:3 ()))
    [ [| 2; 1 |]; [| 1; 2 |]; [| 2; 2 |]; [| 3; 2 |] ]

let test_domains_aerofoil () =
  List.iter
    (check_domains "aerofoil"
       (Autocfd_apps.Aerofoil.source ~ni:16 ~nj:10 ~nk:6 ~ntime:3 ~npres:2 ()))
    [ [| 2; 1; 1 |]; [| 2; 2; 1 |]; [| 2; 2; 2 |] ]

let test_aerofoil () =
  check_both "aerofoil"
    (Autocfd_apps.Aerofoil.source ~ni:16 ~nj:10 ~nk:6 ~ntime:3 ~npres:2 ())
    [ [| 2; 1; 1 |]; [| 2; 2; 1 |]; [| 2; 2; 2 |] ]

let test_cavity () =
  check_both "cavity"
    (Autocfd_apps.Cavity.source ~n:17 ~maxit:5 ~npsi:3 ())
    [ [| 2; 1 |]; [| 2; 2 |]; [| 3; 3 |] ]

let heat2d_path () =
  (* cwd is _build/default/test under `dune runtest`, the project root
     under `dune exec test/main.exe` *)
  List.find Sys.file_exists [ "../examples/heat2d.f"; "examples/heat2d.f" ]

let test_heat2d () =
  check_both "heat2d"
    (read_file (heat2d_path ()))
    [ [| 2; 1 |]; [| 1; 2 |]; [| 2; 2 |] ]

let test_domains_heat2d () =
  check_domains "heat2d" (read_file (heat2d_path ())) [| 2; 2 |]

(* flop-charge parity on a run with nontrivial timing: the simulated
   elapsed time is derived from the flop census, so charge drift would
   silently skew every timing table — compare with compute charging on *)
let test_charged_timing_identical () =
  let t =
    D.load (Autocfd_apps.Sprayer.source ~ni:30 ~nj:16 ~ntime:4 ~npsi:3 ())
  in
  let plan = D.plan ~spec:(parts_spec [| 2; 2 |]) t in
  let machine = Autocfd.Experiments.machine in
  let flop_time = D.calibrated_flop_time ~machine plan in
  let run engine =
    D.run
      ~spec:
        R.(
          default |> with_engine engine
          |> with_net machine.Autocfd_perfmodel.Model.net
          |> with_flop_time flop_time)
      plan
  in
  let tree = run I.Spmd.Tree in
  List.iter
    (fun (ename, engine) ->
      let r = run engine in
      Alcotest.(check bool)
        (ename ^ ": charged stats identical") true
        (tree.I.Spmd.stats = r.I.Spmd.stats);
      Alcotest.(check bool)
        (ename ^ ": elapsed bit-identical") true
        (tree.I.Spmd.stats.Autocfd_mpsim.Sim.elapsed
        = r.I.Spmd.stats.Autocfd_mpsim.Sim.elapsed))
    engines

(* ------------------------------------------------------------------ *)
(* PRNG-driven random affine-nest property suite                       *)
(* ------------------------------------------------------------------ *)

(* Random straight-line DO nests over fixed-shape arrays, mixing shapes
   the fused tier compiles (affine subscripts, constant and negative
   steps) with shapes that must fall back at compile time (reductions,
   non-affine max0 subscripts, IF bodies) or at run time (zero-trip
   loops).  Subscripts stay in range by construction, generated
   expressions avoid division/sqrt/log and every array assignment is
   wrapped in sin/cos (so values stay bounded and NaN-free); the three
   engines must then agree bit for bit on arrays, flops and output. *)

let lit_pool = [| "0.5"; "1.25"; "-0.75"; "2.0"; "0.125"; "3.0"; "-1.5" |]

(* subscript into a dimension of size [n] whose loop variable [v] (when
   in scope) ranges over [2, n-1] *)
let gen_sub rng v n =
  match v with
  | Some v -> (
      match Prng.int rng 5 with
      | 0 -> v ^ "-1"
      | 1 -> v ^ "+1"
      | 2 -> string_of_int (Prng.int_in rng 1 n)
      | _ -> v)
  | None -> string_of_int (Prng.int_in rng 1 n)

(* arrays: a(12,10), b(12,10), c(12); [vi]/[vj] are the loop variables
   covering dim 1 / dim 2 when in scope *)
let gen_read rng ~vi ~vj =
  match Prng.int rng 3 with
  | 0 -> Printf.sprintf "a(%s,%s)" (gen_sub rng vi 12) (gen_sub rng vj 10)
  | 1 -> Printf.sprintf "b(%s,%s)" (gen_sub rng vi 12) (gen_sub rng vj 10)
  | _ -> Printf.sprintf "c(%s)" (gen_sub rng vi 12)

let rec gen_expr rng ~vi ~vj ~depth =
  if depth = 0 || Prng.int rng 4 = 0 then
    match Prng.int rng 6 with
    | 0 | 1 -> Prng.choose rng lit_pool
    | 2 -> "s1"
    | 3 -> "s2"
    | 4 -> (
        match (vi, vj) with
        | Some v, _ | None, Some v -> "float(" ^ v ^ ")"
        | None, None -> Prng.choose rng lit_pool)
    | _ -> gen_read rng ~vi ~vj
  else
    let sub () = gen_expr rng ~vi ~vj ~depth:(depth - 1) in
    match Prng.int rng 8 with
    | 0 -> "(" ^ sub () ^ " + " ^ sub () ^ ")"
    | 1 -> "(" ^ sub () ^ " - " ^ sub () ^ ")"
    | 2 -> "(" ^ sub () ^ " * " ^ sub () ^ ")"
    | 3 -> "max(" ^ sub () ^ ", " ^ sub () ^ ")"
    | 4 -> "min(" ^ sub () ^ ", " ^ sub () ^ ")"
    | 5 -> "abs(" ^ sub () ^ ")"
    | 6 -> "sign(" ^ sub () ^ ", " ^ sub () ^ ")"
    | _ -> "sin(" ^ sub () ^ ")"

(* a bounded RHS: values stay in [-1, 1] no matter how nests cascade *)
let gen_rhs rng ~vi ~vj =
  let wrap = if Prng.bool rng then "sin" else "cos" in
  wrap ^ "(" ^ gen_expr rng ~vi ~vj ~depth:3 ^ ")"

let gen_assign rng ~vi ~vj ~indent buf =
  let lhs =
    match Prng.int rng 3 with
    | 0 -> Printf.sprintf "a(%s,%s)" (gen_sub rng vi 12) (gen_sub rng vj 10)
    | 1 -> Printf.sprintf "b(%s,%s)" (gen_sub rng vi 12) (gen_sub rng vj 10)
    | _ -> Printf.sprintf "c(%s)" (gen_sub rng vi 12)
  in
  Buffer.add_string buf
    (Printf.sprintf "%s%s = %s\n" indent lhs (gen_rhs rng ~vi ~vj))

let gen_nest rng buf =
  let add = Buffer.add_string buf in
  let header var lo hi step =
    match step with
    | None -> Printf.sprintf "do %s = %d, %d" var lo hi
    | Some s -> Printf.sprintf "do %s = %d, %d, %d" var lo hi s
  in
  match Prng.int rng 10 with
  | 0 | 1 | 2 | 3 ->
      (* fusable double nest, occasionally reversed or strided *)
      let istep =
        match Prng.int rng 4 with 0 -> Some (-1) | 1 -> Some 2 | _ -> None
      in
      let ilo, ihi = if istep = Some (-1) then (11, 2) else (2, 11) in
      add ("      " ^ header "i" ilo ihi istep ^ "\n");
      add "        do j = 2, 9\n";
      for _ = 1 to Prng.int_in rng 1 3 do
        gen_assign rng ~vi:(Some "i") ~vj:(Some "j") ~indent:"          " buf
      done;
      add "        enddo\n      enddo\n"
  | 4 | 5 ->
      (* fusable single-level nest over the 1-d array *)
      add ("      " ^ header "i" 2 11 (if Prng.bool rng then Some 3 else None));
      add "\n";
      gen_assign rng ~vi:(Some "i") ~vj:None ~indent:"        " buf;
      add "      enddo\n"
  | 6 ->
      (* scalar reduction: compile-time fallback *)
      add "      do i = 2, 11\n        do j = 2, 9\n";
      if Prng.bool rng then
        add "          s1 = s1 + 0.01 * a(i,j)\n"
      else add "          s2 = max(s2, b(i,j))\n";
      add "        enddo\n      enddo\n"
  | 7 ->
      (* IF in the body: compile-time fallback *)
      add "      do i = 2, 11\n        do j = 2, 9\n";
      add "          if (a(i,j) .gt. 0.0) then\n";
      gen_assign rng ~vi:(Some "i") ~vj:(Some "j")
        ~indent:"            " buf;
      add "          endif\n";
      add "        enddo\n      enddo\n"
  | 8 ->
      (* non-affine subscript: compile-time fallback, still in range *)
      add "      do i = 2, 11\n";
      add
        (Printf.sprintf "        c(max0(i-1,1)) = %s\n"
           (gen_rhs rng ~vi:(Some "i") ~vj:None));
      add "      enddo\n"
  | _ ->
      (* zero-trip loop: fuses statically, falls back dynamically *)
      add "      do i = 8, 3\n        do j = 2, 9\n";
      gen_assign rng ~vi:(Some "i") ~vj:(Some "j") ~indent:"          " buf;
      add "        enddo\n      enddo\n"

let gen_program rng =
  let buf = Buffer.create 1024 in
  let add = Buffer.add_string buf in
  add "c$acfd grid(m, n)\n";
  add "c$acfd status(a, b)\n";
  add "      program prop\n";
  add "      parameter (m = 12, n = 10)\n";
  add "      real a(m,n), b(m,n), c(m)\n";
  add "      real s1, s2\n";
  add "      integer i, j\n";
  add "      s1 = 0.3\n";
  add "      s2 = -0.2\n";
  add "      do i = 1, 12\n        do j = 1, 10\n";
  add "          a(i,j) = sin(0.7*float(i) + 0.3*float(j))\n";
  add "          b(i,j) = cos(0.4*float(i) - 0.5*float(j))\n";
  add "        enddo\n      enddo\n";
  add "      do i = 1, 12\n        c(i) = 0.1*float(i)\n      enddo\n";
  for _ = 1 to Prng.int_in rng 3 6 do
    gen_nest rng buf
  done;
  add "      write(*,*) s1, s2, a(3,3), b(5,7), c(4)\n";
  add "      end\n";
  Buffer.contents buf

let test_random_nests () =
  let rng = Prng.create 0x5eed5 in
  let fused_somewhere = ref false in
  let fellback_somewhere = ref false in
  for case = 1 to 25 do
    let child = Prng.split rng in
    let src = gen_program child in
    let name = Printf.sprintf "random nest %d" case in
    (try check_sequential name src
     with e ->
       Printf.eprintf "--- failing program (%s) ---\n%s\n" name src;
       raise e);
    let t = D.load src in
    let cov = I.Compile.coverage (I.Compile.of_unit ~fuse:true t.D.inlined) in
    List.iter
      (fun (ce : I.Compile.coverage_entry) ->
        if ce.I.Compile.cov_fused then fused_somewhere := true
        else fellback_somewhere := true)
      cov
  done;
  Alcotest.(check bool)
    "at least one generated nest fused" true !fused_somewhere;
  Alcotest.(check bool)
    "at least one generated nest fell back" true !fellback_somewhere

(* the acceptance bar for the fused tier: at least 80% of each bundled
   application's field loops compile to kernels *)
let test_app_coverage () =
  List.iter
    (fun (name, nests, src) ->
      let t = D.load src in
      let cov =
        I.Compile.coverage (I.Compile.of_unit ~fuse:true t.D.inlined)
      in
      let total = List.length cov in
      let fused =
        List.length
          (List.filter (fun c -> c.I.Compile.cov_fused) cov)
      in
      Alcotest.(check int) (name ^ ": field-loop nests") nests total;
      let reasons =
        String.concat "; "
          (List.filter_map
             (fun (c : I.Compile.coverage_entry) ->
               if c.I.Compile.cov_fused then None
               else
                 Some
                   (Printf.sprintf "line %d (%s): %s" c.I.Compile.cov_line
                      (String.concat "," c.I.Compile.cov_vars)
                      (I.Compile.reason_to_string c.I.Compile.cov_reason)))
             cov)
      in
      Alcotest.(check int)
        (Printf.sprintf "%s: fused %d/%d field loops (expect 100%%)%s" name
           fused total
           (if reasons = "" then "" else " — fallbacks: " ^ reasons))
        total fused)
    [
      ("sprayer", 23, Autocfd_apps.Sprayer.source ());
      ("aerofoil", 23, Autocfd_apps.Aerofoil.source ());
      ("cavity", 7, Autocfd_apps.Cavity.source ());
      ("heat2d", 3, read_file (heat2d_path ()));
    ]

let suite =
  [
    ("sprayer engines identical", `Slow, test_sprayer);
    ("aerofoil engines identical", `Slow, test_aerofoil);
    ("cavity engines identical", `Slow, test_cavity);
    ("heat2d engines identical", `Slow, test_heat2d);
    ("charged timing identical", `Quick, test_charged_timing_identical);
    ("domains sprayer identical", `Slow, test_domains_sprayer);
    ("domains aerofoil identical", `Slow, test_domains_aerofoil);
    ("domains heat2d identical", `Quick, test_domains_heat2d);
    ("random nests three-way identical", `Slow, test_random_nests);
    ("fused kernel coverage 100%", `Quick, test_app_coverage);
  ]
