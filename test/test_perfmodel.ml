(** Tests for the analytic performance model: census accounting, the
    memory slowdown curve, and the qualitative table shapes the paper
    reports (dip at 4 processors for the aerofoil, monotone efficiency
    growth with grid density, superlinear speedup past the memory knee). *)

module D = Autocfd.Driver

let parts_spec p = Autocfd.Runspec.(default |> with_parts (Some p))
module M = Autocfd_perfmodel.Model
module P = Autocfd_partition

let machine = M.pentium_cluster

let plan_of src parts =
  let t = D.load src in
  (t, D.plan ~spec:(parts_spec parts) t)

let test_census_basic_accounting () =
  let src =
    {|
c$acfd grid(m)
c$acfd status(u, w)
      program t
      parameter (m = 100)
      real u(m), w(m)
      integer i, it
      do i = 1, m
        u(i) = 1.0
      end do
      do it = 1, 10
        do i = 2, m - 1
          w(i) = u(i-1) + u(i+1)
        end do
        do i = 2, m - 1
          u(i) = w(i)
        end do
      end do
      end
|}
  in
  let t, plan = plan_of src [| 2 |] in
  let c = M.census ~gi:t.D.gi ~topo:plan.D.topo plan.D.spmd in
  (* per-rank block flops: roughly 10 frames x 2 loops x 49 pts x few ops *)
  Alcotest.(check bool) "block flops positive" true (c.M.flops_block > 100.);
  Alcotest.(check bool) "no pipeline" true (c.M.flops_pipeline = 0.);
  (* exchanges executed inside the 10-frame loop *)
  Alcotest.(check bool) "exchanges scale with frames" true
    (c.M.exchanges >= 10.);
  Alcotest.(check bool) "bytes counted" true (c.M.exchange_bytes > 0.)

let test_census_halves_with_parts () =
  let src = Autocfd_apps.Sprayer.source ~ni:64 ~nj:32 ~ntime:10 () in
  let t1, plan1 = plan_of src [| 2; 1 |] in
  let t2, plan2 = plan_of src [| 4; 1 |] in
  let c1 = M.census ~gi:t1.D.gi ~topo:plan1.D.topo plan1.D.spmd in
  let c2 = M.census ~gi:t2.D.gi ~topo:plan2.D.topo plan2.D.spmd in
  let r = c1.M.flops_block /. c2.M.flops_block in
  Alcotest.(check bool) "per-rank flops halve 2->4" true (r > 1.7 && r < 2.3)

let test_pipeline_census () =
  let src =
    {|
c$acfd grid(m, n)
c$acfd status(v)
      program t
      parameter (m = 40, n = 20)
      real v(m, n)
      integer i, j, it
      do i = 1, m
        do j = 1, n
          v(i, j) = 1.0
        end do
      end do
      do it = 1, 10
        do i = 2, m - 1
          do j = 2, n - 1
            v(i,j) = 0.25 * (v(i-1,j) + v(i+1,j) + v(i,j-1) + v(i,j+1))
          end do
        end do
      end do
      end
|}
  in
  let t, plan = plan_of src [| 4; 1 |] in
  let c = M.census ~gi:t.D.gi ~topo:plan.D.topo plan.D.spmd in
  Alcotest.(check bool) "pipeline flops recorded" true (c.M.flops_pipeline > 0.);
  Alcotest.(check int) "wave stages = 4" 4 c.M.wave_stages;
  Alcotest.(check bool) "pipe messages" true (c.M.pipe_msgs > 0.);
  Alcotest.(check bool) "stall time recorded" true (c.M.stall_flops > 0.)

let test_slowdown_curve () =
  let s x = M.memory_slowdown machine x in
  Alcotest.(check (float 1e-9)) "in cache = 1" 1.0 (s 1.0e3);
  Alcotest.(check bool) "monotone" true
    (s 1.0e5 <= s 1.0e6 && s 1.0e6 <= s 1.0e7 && s 1.0e7 <= s 1.0e8);
  Alcotest.(check bool) "bounded" true
    (s 1.0e12 < 1.0 +. machine.M.cache_penalty +. machine.M.mem_penalty +. 0.01)

let test_prediction_consistency () =
  (* sequential prediction equals parallel prediction on a 1x1 grid of
     ranks (no communication, same flops) *)
  let src = Autocfd_apps.Sprayer.source ~ni:60 ~nj:30 ~ntime:20 () in
  let t = D.load src in
  let seq = M.predict_sequential machine ~gi:t.D.gi t.D.inlined in
  Alcotest.(check bool) "positive time" true (seq.M.time > 0.);
  let plan = D.plan ~spec:(parts_spec [| 1; 1 |]) t in
  let par =
    M.predict_parallel machine ~gi:t.D.gi ~topo:plan.D.topo plan.D.spmd
  in
  Alcotest.(check bool) "no comm on one rank" true (par.M.comm_time = 0.);
  let ratio = par.M.time /. seq.M.time in
  Alcotest.(check bool) "within 5% of sequential" true
    (ratio > 0.95 && ratio < 1.05)

let test_table2_shape () =
  (* the paper's aerofoil: low efficiency, a dip at 4x1x1 relative to
     2x1x1, recovery at 3x2x1 *)
  let rows = Autocfd.Experiments.table2 () in
  match rows with
  | [ _; p2; p4; p6 ] ->
      let s r = Option.get r.Autocfd.Experiments.pr_speedup in
      Alcotest.(check bool) "speedup at 2 procs is modest (< 1.5)" true
        (s p2 < 1.5);
      Alcotest.(check bool) "dip at 4 procs" true (s p4 < s p2);
      Alcotest.(check bool) "recovery at 6 procs" true (s p6 > s p4);
      Alcotest.(check bool) "6 procs beats 2" true (s p6 > s p2)
  | _ -> Alcotest.fail "expected 4 rows"

let test_table3_shape () =
  (* sprayer parallelizes well: speedups grow with procs, sub-4x at 4 *)
  let rows = Autocfd.Experiments.table3 () in
  match rows with
  | [ _; p2; p3; p4 ] ->
      let s r = Option.get r.Autocfd.Experiments.pr_speedup in
      Alcotest.(check bool) "monotone speedups" true
        (s p2 < s p3 && s p3 < s p4);
      Alcotest.(check bool) "2-proc speedup in [1.4, 2.0]" true
        (s p2 >= 1.4 && s p2 <= 2.0)
  | _ -> Alcotest.fail "expected 4 rows"

let test_table4_shape () =
  (* efficiency rises with grid density and saturates *)
  let rows = Autocfd.Experiments.table4 () in
  let effs = List.map (fun r -> r.Autocfd.Experiments.t4_efficiency) rows in
  let rec monotone = function
    | a :: b :: rest -> a <= b +. 0.02 && monotone (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "efficiency grows with density" true (monotone effs);
  Alcotest.(check bool) "small grid inefficient" true (List.hd effs < 0.5);
  Alcotest.(check bool) "large grid efficient" true
    (List.nth effs (List.length effs - 1) > 0.75)

let test_table5_superlinear () =
  let rows = Autocfd.Experiments.table5 () in
  match rows with
  | [ p2; p3; _p4 ] ->
      Alcotest.(check (float 1e-6)) "baseline 100%" 1.0
        p2.Autocfd.Experiments.t5_eff_over_2;
      Alcotest.(check bool) "3 procs superlinear over 2" true
        (p3.Autocfd.Experiments.t5_eff_over_2 > 1.0)
  | _ -> Alcotest.fail "expected 3 rows"

let test_table5_needs_memory_knee () =
  (* ablation: without the memory knee there is no superlinearity *)
  let src = Autocfd_apps.Sprayer.source ~ni:800 ~nj:300 ~ntime:50 () in
  let t = D.load src in
  let flat = { machine with M.mem_penalty = 0.0; cache_penalty = 0.0 } in
  let time parts =
    let plan = D.plan ~spec:(parts_spec parts) t in
    (M.predict_parallel flat ~gi:t.D.gi ~topo:plan.D.topo plan.D.spmd).M.time
  in
  let t2 = time [| 2; 1 |] and t3 = time [| 3; 1 |] in
  let eff3 = t2 *. 2.0 /. (t3 *. 3.0) in
  Alcotest.(check bool) "no superlinearity without the knee" true (eff3 <= 1.0)

let test_model_vs_simulation () =
  (* the analytic prediction and the execution-driven simulated time are
     derived by entirely different mechanisms; they must agree within a
     small factor and be positively related across configurations *)
  let rows = Autocfd.Experiments.validate_model () in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "ratio %.2f within [0.25, 4]" r.Autocfd.Experiments.vr_ratio)
        true
        (r.Autocfd.Experiments.vr_ratio > 0.25
        && r.Autocfd.Experiments.vr_ratio < 4.0))
    rows

let test_working_set () =
  let t = D.load (Autocfd_apps.Sprayer.source ()) in
  let ws = M.working_set_bytes ~gi:t.D.gi ~points_per_rank:1000 in
  (* 8 status arrays x 1000 pts x 8 bytes *)
  Alcotest.(check (float 1.0)) "ws bytes" 64000.0 ws

let test_calibrate_exact_fit () =
  (* synthetic measurements drawn from a known machine must be recovered
     exactly: flop_time from proportional compute samples, latency and
     bandwidth from affine message timings *)
  let ft = 2.5e-9 and lat = 1.2e-4 and bw = 8e6 in
  let compute =
    List.map (fun f -> (f, ft *. f)) [ 1e6; 3e6; 7e6; 2.2e7 ]
  in
  let comm =
    List.map
      (fun b -> (b, lat +. (float_of_int b /. bw)))
      [ 256; 1024; 8192; 65536 ]
  in
  let c = M.calibrate ~compute ~comm in
  Alcotest.(check (float 1e-15)) "flop_time" ft c.M.cal_flop_time;
  Alcotest.(check (float 1e-8)) "latency" lat c.M.cal_latency;
  Alcotest.(check bool) "bandwidth within 0.1%" true
    (Float.abs (c.M.cal_bandwidth -. bw) /. bw < 1e-3);
  Alcotest.(check (float 1e-9)) "compute R^2 = 1" 1.0 c.M.cal_compute_r2;
  Alcotest.(check (float 1e-9)) "comm R^2 = 1" 1.0 c.M.cal_comm_r2

let test_calibrate_degenerate () =
  (* empty / underdetermined inputs yield zeros (and an infinite
     bandwidth when no slope can be fitted), never an exception *)
  let c = M.calibrate ~compute:[] ~comm:[] in
  Alcotest.(check (float 0.0)) "no compute samples" 0.0 c.M.cal_flop_time;
  Alcotest.(check (float 0.0)) "no comm samples" 0.0 c.M.cal_latency;
  Alcotest.(check bool) "bandwidth unbounded" true
    (c.M.cal_bandwidth = Float.infinity);
  let one = M.calibrate ~compute:[ (1e6, 2e-3) ] ~comm:[ (512, 1e-4) ] in
  Alcotest.(check (float 1e-12)) "single compute point still fits" 2e-9
    one.M.cal_flop_time;
  Alcotest.(check (float 0.0)) "one comm point cannot fit a line" 0.0
    one.M.cal_latency;
  (* identical byte sizes: zero determinant falls back to the mean *)
  let flat =
    M.calibrate ~compute:[] ~comm:[ (1024, 3e-4); (1024, 5e-4) ]
  in
  Alcotest.(check (float 1e-12)) "degenerate line falls back to mean"
    4e-4 flat.M.cal_latency

let suite =
  [
    ("census accounting", `Quick, test_census_basic_accounting);
    ("census halves with parts", `Quick, test_census_halves_with_parts);
    ("pipeline census", `Quick, test_pipeline_census);
    ("slowdown curve", `Quick, test_slowdown_curve);
    ("prediction consistency", `Quick, test_prediction_consistency);
    ("table 2 shape", `Slow, test_table2_shape);
    ("table 3 shape", `Slow, test_table3_shape);
    ("table 4 shape", `Slow, test_table4_shape);
    ("table 5 superlinear", `Slow, test_table5_superlinear);
    ("table 5 needs memory knee", `Slow, test_table5_needs_memory_knee);
    ("model vs simulation", `Slow, test_model_vs_simulation);
    ("working set", `Quick, test_working_set);
    ("calibrate exact fit", `Quick, test_calibrate_exact_fit);
    ("calibrate degenerate inputs", `Quick, test_calibrate_degenerate);
  ]
