(** End-to-end correctness of the generated SPMD programs: the parallel
    execution on the simulated cluster must be bit-identical to the
    sequential interpretation, for every structural feature of the paper
    (Jacobi halo exchange, mirror-image pipelines, wavefronts, distance-2
    stencils, packed arrays, boundary code, reductions, descending
    sweeps) and — as a property test — for randomized stencil programs
    under random partitions. *)

module D = Autocfd.Driver

let parts_spec p = Autocfd.Runspec.(default |> with_parts (Some p))
module I = Autocfd_interp

let max_div src parts =
  let t = D.load src in
  let seq = D.run_seq t in
  let plan = D.plan ~spec:(parts_spec parts) t in
  let par = D.run plan in
  List.fold_left (fun a (_, d) -> Float.max a d) 0.0
    (D.max_divergence seq par)

let check_equiv name src partitions =
  List.iter
    (fun parts ->
      let d = max_div src parts in
      if d <> 0.0 then
        Alcotest.failf "%s diverges by %g under %s" name d
          (String.concat "x" (Array.to_list (Array.map string_of_int parts))))
    partitions

let test_jacobi () =
  check_equiv "jacobi"
    {|
c$acfd grid(m, n)
c$acfd status(u, w)
      program t
      parameter (m = 17, n = 11)
      real u(m, n), w(m, n)
      integer i, j, it
      do i = 1, m
        do j = 1, n
          u(i, j) = float(i) * 0.3 + float(j)
        end do
      end do
      do it = 1, 6
        do i = 2, m - 1
          do j = 2, n - 1
            w(i, j) = 0.25 * (u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1))
          end do
        end do
        do i = 2, m - 1
          do j = 2, n - 1
            u(i, j) = w(i, j)
          end do
        end do
      end do
      write(*,*) u(m/2, n/2)
      end
|}
    [ [| 2; 1 |]; [| 1; 3 |]; [| 3; 2 |]; [| 4; 2 |] ]

let test_gauss_seidel_mirror () =
  check_equiv "gauss-seidel"
    {|
c$acfd grid(m, n)
c$acfd status(v)
      program t
      parameter (m = 15, n = 13)
      real v(m, n)
      integer i, j, it
      do i = 1, m
        do j = 1, n
          v(i, j) = float(i + 2 * j)
        end do
      end do
      do it = 1, 5
        do i = 2, m - 1
          do j = 2, n - 1
            v(i,j) = 0.25 * (v(i-1,j) + v(i+1,j) + v(i,j-1) + v(i,j+1))
          end do
        end do
      end do
      write(*,*) v(3, 3)
      end
|}
    [ [| 2; 1 |]; [| 1; 2 |]; [| 2; 2 |]; [| 3; 3 |]; [| 4; 1 |] ]

let test_wavefront_recurrence () =
  (* Fig. 3(a): one-directional recurrence *)
  check_equiv "wavefront"
    {|
c$acfd grid(m, n)
c$acfd status(v)
      program t
      parameter (m = 14, n = 12)
      real v(m, n)
      integer i, j, it
      do i = 1, m
        do j = 1, n
          v(i, j) = float(i * j)
        end do
      end do
      do it = 1, 4
        do i = 2, m
          do j = 2, n
            v(i, j) = 0.5 * (v(i-1, j) + v(i, j-1))
          end do
        end do
      end do
      write(*,*) v(m, n)
      end
|}
    [ [| 2; 1 |]; [| 2; 2 |]; [| 3; 2 |] ]

let test_distance_two () =
  check_equiv "distance-2 stencil"
    {|
c$acfd grid(m)
c$acfd status(u, w)
      program t
      parameter (m = 24)
      real u(m), w(m)
      integer i, it
      do i = 1, m
        u(i) = float(i)
      end do
      do it = 1, 3
        do i = 3, m - 2
          w(i) = u(i-2) - 4.0 * u(i-1) + 6.0 * u(i) - 4.0 * u(i+1)
     &         + u(i+2)
        end do
        do i = 3, m - 2
          u(i) = u(i) + 0.05 * w(i)
        end do
      end do
      write(*,*) u(m/2)
      end
|}
    [ [| 2 |]; [| 3 |]; [| 4 |] ]

let test_packed_array () =
  check_equiv "packed status array"
    {|
c$acfd grid(m, n)
c$acfd status(q, u)
      program t
      parameter (m = 12, n = 10)
      real q(m, n, 3), u(m, n)
      integer i, j, c, it
      do i = 1, m
        do j = 1, n
          u(i, j) = float(i + j)
          do c = 1, 3
            q(i, j, c) = 0.0
          end do
        end do
      end do
      do it = 1, 3
        do c = 1, 3
          do i = 2, m - 1
            do j = 2, n - 1
              q(i, j, c) = u(i-1, j) + u(i+1, j) + float(c)
            end do
          end do
        end do
        do i = 2, m - 1
          do j = 2, n - 1
            u(i, j) = 0.1 * (q(i, j, 1) + q(i, j, 2) + q(i, j, 3))
          end do
        end do
      end do
      write(*,*) u(m/2, n/2)
      end
|}
    [ [| 2; 1 |]; [| 2; 2 |]; [| 1; 3 |] ]

let test_boundary_fixed_planes () =
  check_equiv "boundary code"
    {|
c$acfd grid(m, n)
c$acfd status(u, w)
      program t
      parameter (m = 16, n = 12)
      real u(m, n), w(m, n)
      integer i, j, it
      do i = 1, m
        do j = 1, n
          u(i, j) = 0.0
        end do
      end do
      do it = 1, 5
        do j = 1, n
          u(1, j) = float(j)
          u(m, j) = u(m-1, j)
        end do
        do i = 1, m
          u(i, 1) = u(i, 2)
          u(i, n) = 0.5
        end do
        do i = 2, m - 1
          do j = 2, n - 1
            w(i, j) = 0.25 * (u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1))
          end do
        end do
        do i = 2, m - 1
          do j = 2, n - 1
            u(i, j) = w(i, j)
          end do
        end do
      end do
      write(*,*) u(m/2, n/2), u(2, 2)
      end
|}
    [ [| 2; 1 |]; [| 1; 2 |]; [| 2; 2 |]; [| 4; 3 |] ]

let test_reductions () =
  check_equiv "max and sum reductions"
    {|
c$acfd grid(m, n)
c$acfd status(u)
      program t
      parameter (m = 14, n = 10)
      real u(m, n)
      real emax, total
      integer i, j, it
      do i = 1, m
        do j = 1, n
          u(i, j) = float(i) - 0.5 * float(j)
        end do
      end do
      do it = 1, 3
        emax = 0.0
        total = 0.0
        do i = 2, m - 1
          do j = 2, n - 1
            u(i, j) = 0.5 * (u(i-1, j) + u(i+1, j))
            emax = max(emax, abs(u(i, j)))
            total = total + u(i, j)
          end do
        end do
      end do
      write(*,*) emax, total
      end
|}
    [ [| 2; 1 |]; [| 2; 2 |]; [| 3; 1 |] ]

let test_descending_sweep () =
  check_equiv "descending pipeline"
    {|
c$acfd grid(m, n)
c$acfd status(v)
      program t
      parameter (m = 13, n = 9)
      real v(m, n)
      integer i, j, it
      do i = 1, m
        do j = 1, n
          v(i, j) = float(i * i - j)
        end do
      end do
      do it = 1, 4
        do i = m - 1, 2, -1
          do j = 2, n - 1
            v(i, j) = 0.5 * (v(i+1, j) + v(i, j-1))
          end do
        end do
      end do
      write(*,*) v(2, 2)
      end
|}
    [ [| 2; 1 |]; [| 3; 1 |]; [| 2; 2 |] ]

let test_three_dims () =
  check_equiv "3-D stencil"
    {|
c$acfd grid(m, n, l)
c$acfd status(u, w)
      program t
      parameter (m = 10, n = 8, l = 6)
      real u(m, n, l), w(m, n, l)
      integer i, j, k, it
      do i = 1, m
        do j = 1, n
          do k = 1, l
            u(i, j, k) = float(i + j + k)
          end do
        end do
      end do
      do it = 1, 3
        do i = 2, m - 1
          do j = 2, n - 1
            do k = 2, l - 1
              w(i,j,k) = (u(i-1,j,k) + u(i+1,j,k) + u(i,j-1,k)
     &                 + u(i,j+1,k) + u(i,j,k-1) + u(i,j,k+1)) / 6.0
            end do
          end do
        end do
        do i = 2, m - 1
          do j = 2, n - 1
            do k = 2, l - 1
              u(i, j, k) = w(i, j, k)
            end do
          end do
        end do
      end do
      write(*,*) u(m/2, n/2, l/2)
      end
|}
    [ [| 2; 1; 1 |]; [| 2; 2; 1 |]; [| 2; 2; 2 |]; [| 1; 1; 3 |] ]

let test_read_broadcast () =
  let src =
    {|
c$acfd grid(m)
c$acfd status(u)
      program t
      parameter (m = 12)
      real u(m)
      real scale
      integer i
      read(*,*) scale
      do i = 1, m
        u(i) = scale * float(i)
      end do
      do i = 2, m - 1
        u(i) = u(i) + 0.5 * (u(i-1) + u(i+1))
      end do
      write(*,*) u(m/2)
      end
|}
  in
  let t = D.load src in
  let seq = D.run_seq ~spec:(Autocfd.Runspec.with_input [ 2.5 ] Autocfd.Runspec.default) t in
  let plan = D.plan ~spec:(parts_spec [| 3 |]) t in
  let par = D.run ~spec:(Autocfd.Runspec.with_input [ 2.5 ] Autocfd.Runspec.default) plan in
  Alcotest.(check (list string)) "same output" seq.D.sq_output
    par.I.Spmd.output;
  let d =
    List.fold_left (fun a (_, x) -> Float.max a x) 0.0
      (D.max_divergence seq par)
  in
  Alcotest.(check (float 0.0)) "equivalent" 0.0 d

let test_serial_fallback_allgather () =
  (* the diagonal-dependence loop must run serially under an i-cut and
     still produce identical results thanks to the allgather *)
  check_equiv "serial fallback"
    {|
c$acfd grid(m, n)
c$acfd status(v)
      program t
      parameter (m = 12, n = 10)
      real v(m, n)
      integer i, j, it
      do i = 1, m
        do j = 1, n
          v(i, j) = float(i + j * j)
        end do
      end do
      do it = 1, 3
        do j = 2, n - 1
          do i = 2, m - 1
            v(i,j) = 0.5 * (v(i, j-1) + v(i+1, j-1))
          end do
        end do
      end do
      write(*,*) v(2, 2)
      end
|}
    [ [| 2; 1 |]; [| 2; 2 |]; [| 4; 1 |] ]

(* ------------------------------------------------------------------ *)
(* Property: random stencil programs match under random partitions     *)
(* ------------------------------------------------------------------ *)

type rand_cfg = {
  rc_seed : int;
  rc_parts : int array;
  rc_self : bool;  (** in-place (self-dependent) update loop? *)
  rc_offs : (int * int) list;  (** stencil offsets *)
  rc_bc : bool;  (** boundary fixup loop? *)
}

let gen_cfg =
  QCheck.Gen.(
    let* seed = int_range 1 10000 in
    let* px = int_range 1 3 in
    let* py = int_range 1 3 in
    let* self = bool in
    let* n_offs = int_range 1 4 in
    let* offs =
      list_repeat n_offs
        (pair (int_range (-1) 1) (int_range (-1) 1))
    in
    let* bc = bool in
    return
      { rc_seed = seed; rc_parts = [| px; py |]; rc_self = self;
        rc_offs = offs; rc_bc = bc })

let program_of_cfg cfg =
  let terms =
    List.mapi
      (fun idx (oi, oj) ->
        let i = if oi = 0 then "i" else Printf.sprintf "i%+d" oi in
        let j = if oj = 0 then "j" else Printf.sprintf "j%+d" oj in
        Printf.sprintf "0.%d1 * src(%s, %s)" ((idx mod 8) + 1) i j)
      cfg.rc_offs
  in
  let sum = String.concat "\n     &      + " terms in
  let target = if cfg.rc_self then "src" else "dst" in
  let bc =
    if cfg.rc_bc then
      {|
        do j = 1, n
          src(1, j) = src(2, j) * 0.9
        end do
        do i = 1, m
          src(i, n) = 0.25
        end do|}
    else ""
  in
  Printf.sprintf
    {|
c$acfd grid(m, n)
c$acfd status(src, dst)
      program rand
      parameter (m = 13, n = 11)
      real src(m, n), dst(m, n)
      integer i, j, it
      do i = 1, m
        do j = 1, n
          src(i, j) = float(mod(i * 7 + j * 13 + %d, 19)) * 0.1
          dst(i, j) = 0.0
        end do
      end do
      do it = 1, 3
%s
        do i = 2, m - 1
          do j = 2, n - 1
            %s(i, j) = %s
          end do
        end do
        do i = 2, m - 1
          do j = 2, n - 1
            src(i, j) = 0.5 * src(i, j) + 0.5 * dst(i, j)
          end do
        end do
      end do
      write(*,*) src(m/2, n/2)
      end
|}
    cfg.rc_seed bc target sum

let prop_random_programs_equivalent =
  QCheck.Test.make ~count:120
    ~name:"random stencil programs: SPMD == sequential"
    (QCheck.make
       ~print:(fun cfg ->
         Printf.sprintf "parts=%dx%d\n%s" cfg.rc_parts.(0) cfg.rc_parts.(1)
           (program_of_cfg cfg))
       gen_cfg)
    (fun cfg ->
      let src = program_of_cfg cfg in
      max_div src cfg.rc_parts = 0.0)



let test_goto_convergence_loop () =
  (* a while-style iteration built from a backward GOTO: the in-loop
     exchange must still be placed (virtual carrying loop) *)
  check_equiv "goto convergence loop"
    {|
c$acfd grid(m, n)
c$acfd status(u, w)
      program t
      parameter (m = 16, n = 12)
      real u(m, n), w(m, n)
      real errmax
      integer i, j, it
      do i = 1, m
        do j = 1, n
          u(i, j) = float(i) + 0.1 * float(j)
        end do
      end do
      it = 0
 100  continue
      it = it + 1
      do i = 2, m - 1
        do j = 2, n - 1
          w(i, j) = 0.25 * (u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1))
        end do
      end do
      errmax = 0.0
      do i = 2, m - 1
        do j = 2, n - 1
          errmax = max(errmax, abs(w(i,j) - u(i,j)))
          u(i, j) = w(i, j)
        end do
      end do
      if (errmax .gt. 1.0e-4 .and. it .lt. 30) goto 100
      write(*,*) it, errmax
      end
|}
    [ [| 2; 1 |]; [| 1; 2 |]; [| 2; 2 |]; [| 3; 2 |] ]

let test_goto_self_dependent_loop () =
  (* gauss-seidel inside a backward-GOTO loop: the Self pair's
     wrap-around exchange rides the virtual carrying loop *)
  check_equiv "goto gauss-seidel"
    {|
c$acfd grid(m, n)
c$acfd status(v)
      program t
      parameter (m = 14, n = 12)
      real v(m, n)
      integer i, j, it
      do i = 1, m
        do j = 1, n
          v(i, j) = float(i * j)
        end do
      end do
      it = 0
 200  continue
      it = it + 1
      do i = 2, m - 1
        do j = 2, n - 1
          v(i,j) = 0.25 * (v(i-1,j) + v(i+1,j) + v(i,j-1) + v(i,j+1))
        end do
      end do
      if (it .lt. 6) goto 200
      write(*,*) v(3, 3)
      end
|}
    [ [| 2; 1 |]; [| 2; 2 |] ]


let test_distance_two_pipeline () =
  (* self-dependent recurrence at distance 2: the pipeline carries
     two planes per hop *)
  check_equiv "distance-2 self-dependent pipeline"
    {|
c$acfd grid(m)
c$acfd status(v)
      program t
      parameter (m = 26)
      real v(m)
      integer i, it
      do i = 1, m
        v(i) = float(i) * 0.1
      end do
      do it = 1, 4
        do i = 3, m
          v(i) = 0.4 * v(i-1) + 0.3 * v(i-2) + 0.1
        end do
      end do
      write(*,*) v(m)
      end
|}
    [ [| 2 |]; [| 3 |]; [| 4 |] ]

let test_mixed_depth_exchange () =
  (* one reader needs depth 2, another depth 1, of the same array: the
     combined exchange must carry the max depth *)
  check_equiv "mixed-depth combined exchange"
    {|
c$acfd grid(m)
c$acfd status(u, w, z)
      program t
      parameter (m = 24)
      real u(m), w(m), z(m)
      integer i, it
      do i = 1, m
        u(i) = float(i)
        w(i) = 0.0
        z(i) = 0.0
      end do
      do it = 1, 3
        do i = 3, m - 2
          w(i) = u(i-2) + u(i+2)
        end do
        do i = 2, m - 1
          z(i) = u(i-1) + u(i+1)
        end do
        do i = 2, m - 1
          u(i) = 0.5 * (w(i) + z(i))
        end do
      end do
      write(*,*) u(m/2)
      end
|}
    [ [| 2 |]; [| 4 |] ]

let test_uncut_dimension_needs_no_comm () =
  (* a 1-D partition of a 2-D problem whose stencil only crosses the
     uncut dimension: zero messages *)
  let src =
    {|
c$acfd grid(m, n)
c$acfd status(u, w)
      program t
      parameter (m = 12, n = 10)
      real u(m, n), w(m, n)
      integer i, j, it
      do i = 1, m
        do j = 1, n
          u(i, j) = float(i + j)
        end do
      end do
      do it = 1, 3
        do i = 1, m
          do j = 2, n - 1
            w(i, j) = u(i, j-1) + u(i, j+1)
          end do
        end do
        do i = 1, m
          do j = 2, n - 1
            u(i, j) = w(i, j)
          end do
        end do
      end do
      write(*,*) it
      end
|}
  in
  let t = D.load src in
  let plan = D.plan ~spec:(parts_spec [| 3; 1 |]) t in
  let seq = D.run_seq t in
  let par = D.run plan in
  Alcotest.(check int) "no point-to-point messages" 0
    par.I.Spmd.stats.Autocfd_mpsim.Sim.messages;
  let worst =
    List.fold_left (fun a (_, d) -> Float.max a d) 0.0
      (D.max_divergence seq par)
  in
  Alcotest.(check (float 0.0)) "still equivalent" 0.0 worst

let test_branch_in_time_loop () =
  (* Fig. 7-style: a branch whose condition flips over iterations, with
     an A-loop in the then-branch and the reader after the branch *)
  check_equiv "branch-dependent writer"
    {|
c$acfd grid(m)
c$acfd status(u, w)
      program t
      parameter (m = 18)
      real u(m), w(m)
      integer i, it
      do i = 1, m
        u(i) = float(i)
        w(i) = 0.0
      end do
      do it = 1, 6
        if (mod(it, 2) .eq. 0) then
          do i = 2, m - 1
            u(i) = u(i) + 1.0
          end do
        else
          do i = 2, m - 1
            u(i) = u(i) - 0.5
          end do
        end if
        do i = 2, m - 1
          w(i) = u(i-1) + u(i+1)
        end do
        do i = 2, m - 1
          u(i) = 0.9 * u(i) + 0.1 * w(i)
        end do
      end do
      write(*,*) u(m/2)
      end
|}
    [ [| 2 |]; [| 3 |]; [| 5 |] ]



let test_partial_participation_reduction () =
  (* a surface-integral Sum over a fixed plane of an unswept cut
     dimension: only the plane's owner ranks execute (guarded), combined
     with allreduce — no allgather fallback *)
  let src =
    {|
c$acfd grid(m, n)
c$acfd status(p)
      program t
      parameter (m = 16, n = 12)
      real p(m, n)
      real cl
      integer i, j, it
      do i = 1, m
        do j = 1, n
          p(i, j) = float(i) * 0.1 + float(j)
        end do
      end do
      do it = 1, 3
        do i = 2, m - 1
          do j = 2, n - 1
            p(i, j) = 0.25 * (p(i-1,j) + p(i+1,j) + p(i,j-1) + p(i,j+1))
          end do
        end do
        cl = 0.0
        do i = 2, m - 1
          cl = cl + p(i, 1)
        end do
      end do
      write(*,*) cl
      end
|}
  in
  check_equiv "guarded surface reduction" src
    [ [| 2; 1 |]; [| 1; 2 |]; [| 2; 2 |]; [| 1; 4 |] ];
  (* the transform must use the guard, not the allgather fallback *)
  let t = D.load src in
  let plan = D.plan ~spec:(parts_spec [| 1; 2 |]) t in
  let has_allgather = ref false in
  Autocfd_fortran.Ast.iter_stmts
    (fun st ->
      match st.Autocfd_fortran.Ast.s_kind with
      | Autocfd_fortran.Ast.Comm (Autocfd_fortran.Ast.Allgather _) ->
          has_allgather := true
      | _ -> ())
    plan.D.spmd.Autocfd_fortran.Ast.u_body;
  Alcotest.(check bool) "no allgather needed" false !has_allgather


let suite =
  [
    ("jacobi", `Quick, test_jacobi);
    ("gauss-seidel mirror", `Quick, test_gauss_seidel_mirror);
    ("wavefront recurrence", `Quick, test_wavefront_recurrence);
    ("distance-2", `Quick, test_distance_two);
    ("packed array", `Quick, test_packed_array);
    ("boundary fixed planes", `Quick, test_boundary_fixed_planes);
    ("reductions", `Quick, test_reductions);
    ("descending sweep", `Quick, test_descending_sweep);
    ("3-D", `Quick, test_three_dims);
    ("read broadcast", `Quick, test_read_broadcast);
    ("serial fallback allgather", `Quick, test_serial_fallback_allgather);
    ("distance-2 pipeline", `Quick, test_distance_two_pipeline);
    ("mixed-depth exchange", `Quick, test_mixed_depth_exchange);
    ("uncut dimension no comm", `Quick, test_uncut_dimension_needs_no_comm);
    ("branch-dependent writer", `Quick, test_branch_in_time_loop);
    ("partial-participation reduction", `Quick, test_partial_participation_reduction);
    ("goto convergence loop", `Quick, test_goto_convergence_loop);
    ("goto self-dependent loop", `Quick, test_goto_self_dependent_loop);
    QCheck_alcotest.to_alcotest ~long:false prop_random_programs_equivalent;
  ]
