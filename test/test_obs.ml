(** Tests for the observability layer: the JSON codec, the tracer's exact
    time-accounting invariant, Chrome export, sync-point attribution and
    the zero-overhead-when-off guarantee. *)

module Obs = Autocfd_obs
module J = Obs.Json
open Autocfd_mpsim
module D = Autocfd.Driver

let parts_spec p = Autocfd.Runspec.(default |> with_parts (Some p))

let heat =
  {|
c$acfd grid(m, n)
c$acfd status(u, w)
      program heat
      parameter (m = 20, n = 10, ntime = 4)
      real u(m, n), w(m, n)
      real errmax
      integer i, j, it
      do 10 i = 1, m
        do 10 j = 1, n
          u(i, j) = 0.01 * float(i) * float(i) + 0.02 * float(j)
 10   continue
      do 500 it = 1, ntime
        do 100 i = 2, m - 1
          do 100 j = 2, n - 1
            w(i, j) = 0.25 * (u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1))
 100    continue
        errmax = 0.0
        do 200 i = 2, m - 1
          do 200 j = 2, n - 1
            errmax = max(errmax, abs(w(i, j) - u(i, j)))
            u(i, j) = w(i, j)
 200    continue
 500  continue
      write(*,*) errmax
      end
|}

let traced_heat =
  lazy
    (let t = D.load heat in
     let plan = D.plan ~spec:(parts_spec [| 2; 2 |]) t in
     let tracer = Autocfd_obs.Trace.create () in
     let result =
       D.run
         ~spec:
           Autocfd.Runspec.(
             default
             |> with_machine (Some Autocfd_perfmodel.Model.pentium_cluster)
             |> with_tracer (Some tracer))
         plan
     in
     (result, tracer))

(* a simulator-level workload exercising every event kind *)
let ring_body tracer =
  Sim.run ~net:Netmodel.ethernet_100 ?tracer ~nranks:3 (fun c ->
      let r = Sim.rank c in
      Sim.advance c (0.001 *. float_of_int (r + 1));
      let right = (r + 1) mod 3 and left = (r + 2) mod 3 in
      Sim.send c ~dest:right ~tag:0 (Array.make 100 (float_of_int r));
      ignore (Sim.recv c ~src:left ~tag:0);
      ignore (Sim.allreduce c `Max (float_of_int r));
      ignore (Sim.bcast c ~root:0 (if r = 0 then [| 1.0; 2.0 |] else [||]));
      Sim.barrier c)

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    J.Obj
      [
        ("a", J.Int 42);
        ("b", J.Float 0.1);
        ("c", J.Str "quote \" backslash \\ newline \n unicode \xe2\x86\x92");
        ("d", J.List [ J.Null; J.Bool true; J.Bool false ]);
        ("e", J.Obj []);
        ("tiny", J.Float 1.0000000000000002);
      ]
  in
  let parsed = J.of_string (J.to_string doc) in
  Alcotest.(check bool) "value round-trips" true (parsed = doc);
  Alcotest.(check string) "serialization is a fixpoint" (J.to_string doc)
    (J.to_string parsed);
  Alcotest.(check bool) "pretty parses to the same value" true
    (J.of_string (J.pretty doc) = doc)

let test_json_errors () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true
        (match J.of_string s with
        | exception J.Parse_error _ -> true
        | _ -> false))
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]

(* ------------------------------------------------------------------ *)
(* Tracer invariants on the raw simulator                              *)
(* ------------------------------------------------------------------ *)

let test_events_monotone_per_rank () =
  let tracer = Obs.Trace.create () in
  let _ = ring_body (Some tracer) in
  let last = Array.make (Obs.Trace.nranks tracer) 0.0 in
  List.iter
    (fun (e : Obs.Trace.event) ->
      Alcotest.(check bool) "span is forward" true (e.ev_t1 >= e.ev_t0);
      match e.ev_kind with
      | Obs.Trace.Phase _ -> () (* phases enclose other events *)
      | _ ->
          Alcotest.(check bool) "no overlap within a rank" true
            (e.ev_t0 >= last.(e.ev_rank) -. 1e-12);
          last.(e.ev_rank) <- e.ev_t1)
    (Obs.Trace.events tracer)

let test_breakdown_sums_to_finish () =
  let tracer = Obs.Trace.create () in
  let stats = ring_body (Some tracer) in
  let m = Obs.Metrics.of_trace tracer in
  Array.iter
    (fun (r : Obs.Metrics.rank_row) ->
      Alcotest.(check (float 1e-9)) "compute+comm+blocked = finish"
        r.Obs.Metrics.rr_finish
        (r.Obs.Metrics.rr_compute +. r.Obs.Metrics.rr_comm
        +. r.Obs.Metrics.rr_blocked))
    m.Obs.Metrics.ranks;
  Alcotest.(check (float 1e-9)) "metrics elapsed = stats elapsed"
    stats.Sim.elapsed m.Obs.Metrics.elapsed;
  (* the simulator's [messages]/[bytes] count p2p sends only; the metrics
     totals add per-rank collective participations, with the split
     recoverable from the by-kind breakdown *)
  let kind k =
    match
      List.find_opt (fun r -> r.Obs.Metrics.kb_kind = k) m.Obs.Metrics.by_kind
    with
    | Some r -> r
    | None -> Alcotest.failf "kind row %S missing" k
  in
  Alcotest.(check int) "p2p sends counted" stats.Sim.messages
    (kind "send").Obs.Metrics.kb_events;
  Alcotest.(check int) "p2p bytes counted" stats.Sim.bytes
    (kind "send").Obs.Metrics.kb_bytes;
  (* each of the 3 ranks participates in every collective *)
  Alcotest.(check int) "collective participations"
    (stats.Sim.collectives * 3)
    (kind "collective").Obs.Metrics.kb_events;
  Alcotest.(check int) "totals = sends + participations"
    ((kind "send").Obs.Metrics.kb_events
    + (kind "collective").Obs.Metrics.kb_events)
    m.Obs.Metrics.messages;
  Alcotest.(check int) "recv row counts deliveries" stats.Sim.messages
    (kind "recv").Obs.Metrics.kb_events

let test_tracing_off_identical_stats () =
  let with_tracer = ring_body (Some (Obs.Trace.create ())) in
  let without = ring_body None in
  Alcotest.(check bool) "identical Sim.stats" true (with_tracer = without)

(* ------------------------------------------------------------------ *)
(* End-to-end: traced SPMD execution of a real plan                    *)
(* ------------------------------------------------------------------ *)

let test_spmd_trace_accounts_elapsed () =
  let result, tracer = Lazy.force traced_heat in
  let stats = result.Autocfd_interp.Spmd.stats in
  let m = Obs.Metrics.of_trace tracer in
  Array.iter
    (fun (r : Obs.Metrics.rank_row) ->
      Alcotest.(check (float 1e-9)) "compute+comm+blocked = finish"
        r.Obs.Metrics.rr_finish
        (r.Obs.Metrics.rr_compute +. r.Obs.Metrics.rr_comm
        +. r.Obs.Metrics.rr_blocked))
    m.Obs.Metrics.ranks;
  let max_finish =
    Array.fold_left
      (fun acc (r : Obs.Metrics.rank_row) ->
        Float.max acc r.Obs.Metrics.rr_finish)
      0.0 m.Obs.Metrics.ranks
  in
  Alcotest.(check (float 1e-9)) "ranks account for the elapsed time"
    stats.Autocfd_mpsim.Sim.elapsed max_finish

let test_spmd_sync_attribution () =
  let _, tracer = Lazy.force traced_heat in
  let m = Obs.Metrics.of_trace tracer in
  let syncs = m.Obs.Metrics.syncs in
  Alcotest.(check bool) "sync table nonempty" true (syncs <> []);
  let has p = List.exists p syncs in
  let mentions s sub =
    let nh = String.length s and nn = String.length sub in
    let rec go i = i + nn <= nh && (String.sub s i nn = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "a halo exchange inside do it" true
    (has (fun s ->
         mentions s.Obs.Metrics.sr_label "halo"
         && s.Obs.Metrics.sr_loop = Some "it"));
  Alcotest.(check bool) "the max reduction appears" true
    (has (fun s -> mentions s.Obs.Metrics.sr_label "allreduce max"));
  List.iter
    (fun (s : Obs.Metrics.sync_row) ->
      Alcotest.(check bool) "executions positive" true
        (s.Obs.Metrics.sr_executions > 0))
    syncs;
  (* every simulated message is attributed to some sync point: the SPMD
     executor only communicates inside combined synchronization points *)
  Alcotest.(check int) "all messages attributed" m.Obs.Metrics.messages
    (List.fold_left (fun a s -> a + s.Obs.Metrics.sr_messages) 0 syncs)

let test_chrome_export_roundtrip () =
  let _, tracer = Lazy.force traced_heat in
  let text = Obs.Chrome.to_string tracer in
  let doc = J.of_string text in
  let evs =
    match J.member "traceEvents" doc with
    | Some (J.List l) -> l
    | _ -> Alcotest.fail "traceEvents missing"
  in
  (* every trace event plus the metadata of each populated lane: the
     cluster lane (one process_name + a thread_name per rank) always, the
     kernel lane likewise when the fused engine emitted per-nest
     summaries, the scheduler lane when the trace holds sweep events *)
  let max_rank p =
    List.fold_left
      (fun acc (e : Obs.Trace.event) ->
        if p e.Obs.Trace.ev_kind then max acc e.Obs.Trace.ev_rank else acc)
      (-1)
      (Obs.Trace.events tracer)
  in
  let lane n = if n < 0 then 0 else n + 2 in
  let kernel_lane =
    lane (max_rank (function Obs.Trace.Kernel _ -> true | _ -> false))
  in
  let sched_lane =
    lane (max_rank (function Obs.Trace.Sched _ -> true | _ -> false))
  in
  Alcotest.(check bool) "fused run has a kernel lane" true (kernel_lane > 0);
  Alcotest.(check int) "event count"
    (Obs.Trace.length tracer
    + (Obs.Trace.nranks tracer + 1)
    + kernel_lane + sched_lane)
    (List.length evs);
  List.iter
    (fun e ->
      match J.member "ph" e with
      | Some (J.Str "M") -> ()
      | Some (J.Str "X") ->
          let num k =
            match J.member k e with
            | Some v -> J.to_float_exn v
            | None -> Alcotest.fail (k ^ " missing")
          in
          Alcotest.(check bool) "ts >= 0" true (num "ts" >= 0.0);
          Alcotest.(check bool) "dur >= 0" true (num "dur" >= 0.0)
      | _ -> Alcotest.fail "unexpected event phase")
    evs;
  Alcotest.(check string) "serialization fixpoint" (J.to_string doc)
    (J.to_string (J.of_string (J.to_string doc)))

let test_chrome_empty_trace () =
  let tracer = Obs.Trace.create () in
  let doc = J.of_string (Obs.Chrome.to_string tracer) in
  match J.member "traceEvents" doc with
  | Some (J.List l) ->
      Alcotest.(check int) "no events, no metadata" 0 (List.length l)
  | _ -> Alcotest.fail "traceEvents missing"

let test_chrome_name_escaping () =
  let tracer = Obs.Trace.create () in
  Obs.Trace.prepare tracer ~nranks:1;
  let label = "quote \" backslash \\ newline \n tab \t" in
  Obs.Trace.phase tracer ~rank:0 ~t0:0.0 ~t1:1.0 ~sync:0 ~label ();
  let doc = J.of_string (Obs.Chrome.to_string tracer) in
  let evs =
    match J.member "traceEvents" doc with
    | Some (J.List l) -> l
    | _ -> Alcotest.fail "traceEvents missing"
  in
  Alcotest.(check bool) "hostile name survives the round trip" true
    (List.exists (fun e -> J.member "name" e = Some (J.Str label)) evs)

(* ------------------------------------------------------------------ *)
(* Kernel self-time attribution (the profiler's data source)           *)
(* ------------------------------------------------------------------ *)

let test_kernel_attribution () =
  let result, tracer = Lazy.force traced_heat in
  let m = Obs.Metrics.of_trace tracer in
  let kernels = m.Obs.Metrics.kernels in
  Alcotest.(check bool) "kernel table nonempty" true (kernels <> []);
  (* sorted by descending self time *)
  let rec sorted = function
    | a :: (b :: _ as tl) ->
        a.Obs.Metrics.kr_self >= b.Obs.Metrics.kr_self && sorted tl
    | _ -> true
  in
  Alcotest.(check bool) "descending self time" true (sorted kernels);
  (* self flops are exact and disjoint: they sum to the executed total *)
  let total_flops =
    Array.fold_left ( +. ) 0.0 result.Autocfd_interp.Spmd.flops_per_rank
  in
  let attributed_flops =
    List.fold_left (fun a k -> a +. k.Obs.Metrics.kr_flops) 0.0 kernels
  in
  Alcotest.(check (float 1e-6)) "all flops attributed to named nests"
    total_flops attributed_flops;
  (* and the >= 95% compute-time gate of [profile --check] holds *)
  let compute =
    Array.fold_left
      (fun a (r : Obs.Metrics.rank_row) -> a +. r.Obs.Metrics.rr_compute)
      0.0 m.Obs.Metrics.ranks
  in
  let self =
    List.fold_left (fun a k -> a +. k.Obs.Metrics.kr_self) 0.0 kernels
  in
  Alcotest.(check bool) "at least 95% of compute time attributed" true
    (compute > 0.0 && self /. compute >= 0.95)

(* ------------------------------------------------------------------ *)
(* Sched events: wall-clock section of Metrics + scheduler Chrome lane  *)
(* ------------------------------------------------------------------ *)

let test_sched_events_surface () =
  let module Sched = Autocfd_sched in
  let tracer = Obs.Trace.create () in
  let jobs =
    List.init 3 (fun i ->
        Sched.Job.make
          ~label:(Printf.sprintf "job%d" i)
          ~key:(J.Obj [ ("i", J.Int i) ])
          (fun () -> J.Int (i * i)))
  in
  let _results, stats = Sched.Pool.run ~jobs:2 ~tracer jobs in
  let m = Obs.Metrics.of_trace tracer in
  (match m.Obs.Metrics.sched with
  | None -> Alcotest.fail "sched section missing"
  | Some sc ->
      Alcotest.(check int) "jobs counted" 3 sc.Obs.Metrics.sc_jobs;
      Alcotest.(check int) "all ran (no cache)" 3 sc.Obs.Metrics.sc_run;
      Alcotest.(check int) "no errors" 0 sc.Obs.Metrics.sc_errors;
      (* only workers that handled at least one job appear as lanes *)
      let lanes = List.length sc.Obs.Metrics.sc_workers in
      Alcotest.(check bool) "worker lanes bounded by the pool" true
        (lanes >= 1 && lanes <= Array.length stats.Sched.Pool.ps_busy);
      Alcotest.(check int) "lane jobs sum to the batch"
        sc.Obs.Metrics.sc_jobs
        (List.fold_left
           (fun a w -> a + w.Obs.Metrics.sw_jobs)
           0 sc.Obs.Metrics.sc_workers));
  (* sched events must not pollute the virtual-clock rank accounting:
     the prepared rank rows exist but stay all-zero *)
  Array.iter
    (fun (r : Obs.Metrics.rank_row) ->
      Alcotest.(check (float 0.0)) "virtual clock untouched" 0.0
        r.Obs.Metrics.rr_finish)
    m.Obs.Metrics.ranks;
  (* the Chrome export renders them on the scheduler pid, not pid 0 *)
  let doc = J.of_string (Obs.Chrome.to_string tracer) in
  let evs =
    match J.member "traceEvents" doc with
    | Some (J.List l) -> l
    | _ -> Alcotest.fail "traceEvents missing"
  in
  Alcotest.(check bool) "scheduler lane populated" true
    (List.exists
       (fun e ->
         J.member "pid" e = Some (J.Int 1)
         && J.member "ph" e = Some (J.Str "X"))
       evs)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_registry_counters_gauges () =
  let module R = Obs.Registry in
  let reg = R.create () in
  R.inc reg "requests_total" 1.0 ~labels:[ ("kind", "a") ];
  R.inc reg "requests_total" 2.0 ~labels:[ ("kind", "a") ];
  R.inc reg "requests_total" 5.0 ~labels:[ ("kind", "b") ];
  R.set reg "temperature" 20.0;
  R.set reg "temperature" 21.5;
  Alcotest.(check (option (float 0.0))) "counter accumulates" (Some 3.0)
    (R.value reg "requests_total" ~labels:[ ("kind", "a") ]);
  Alcotest.(check (option (float 0.0))) "labels separate series" (Some 5.0)
    (R.value reg "requests_total" ~labels:[ ("kind", "b") ]);
  Alcotest.(check (option (float 0.0))) "gauge overwrites" (Some 21.5)
    (R.value reg "temperature");
  Alcotest.(check (option (float 0.0))) "label order is canonical"
    (Some 3.0)
    (R.value reg "requests_total" ~labels:[ ("kind", "a") ]);
  Alcotest.(check bool) "kind conflict rejected" true
    (match R.set reg "requests_total" 1.0 with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_registry_histogram_boundaries () =
  let module R = Obs.Registry in
  let reg = R.create () in
  let buckets = [| 1.0; 2.0; 4.0 |] in
  (* "le" semantics: a value exactly on a bound lands in that bucket *)
  List.iter
    (fun v -> R.observe reg "h" v ~buckets)
    [ 0.5; 1.0; 1.5; 2.0; 4.0; 4.1 ];
  (match R.hist_counts reg "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some (bounds, counts, sum, count) ->
      Alcotest.(check bool) "bounds kept" true (bounds = buckets);
      Alcotest.(check bool) "per-bucket counts" true
        (counts = [| 2; 2; 1; 1 |]);
      Alcotest.(check int) "total count" 6 count;
      Alcotest.(check (float 1e-9)) "sum" 13.1 sum);
  (* log_buckets: powers of two from lo up to the first bound >= hi *)
  let lb = R.log_buckets ~lo:1.0 ~hi:10.0 in
  Alcotest.(check bool) "log buckets" true (lb = [| 1.0; 2.0; 4.0; 8.0; 16.0 |])

let test_prometheus_roundtrip () =
  let module R = Obs.Registry in
  let reg = R.create () in
  R.inc reg "jobs_total" 7.0 ~labels:[ ("outcome", "run") ]
    ~help:"jobs by outcome";
  R.inc reg "jobs_total" 2.0 ~labels:[ ("outcome", "hit \"quoted\"") ];
  R.set reg "pool_utilization" 0.75 ~labels:[ ("worker", "0") ];
  List.iter
    (fun v -> R.observe reg "latency_seconds" v ~buckets:[| 0.1; 1.0 |])
    [ 0.05; 0.5; 5.0 ];
  let samples = R.parse_prometheus (R.to_prometheus reg) in
  let find name labels =
    match
      List.find_opt
        (fun (s : R.sample) -> s.R.s_name = name && s.R.s_labels = labels)
        samples
    with
    | Some s -> s.R.s_value
    | None -> Alcotest.failf "sample %s not found" name
  in
  Alcotest.(check (float 0.0)) "counter" 7.0
    (find "jobs_total" [ ("outcome", "run") ]);
  Alcotest.(check (float 0.0)) "escaped label value" 2.0
    (find "jobs_total" [ ("outcome", "hit \"quoted\"") ]);
  Alcotest.(check (float 0.0)) "gauge" 0.75
    (find "pool_utilization" [ ("worker", "0") ]);
  (* histogram: cumulative buckets + sum + count *)
  Alcotest.(check (float 0.0)) "le=0.1" 1.0
    (find "latency_seconds_bucket" [ ("le", "0.1") ]);
  Alcotest.(check (float 0.0)) "le=1 is cumulative" 2.0
    (find "latency_seconds_bucket" [ ("le", "1") ]);
  Alcotest.(check (float 0.0)) "le=+Inf sees all" 3.0
    (find "latency_seconds_bucket" [ ("le", "+Inf") ]);
  Alcotest.(check (float 0.0)) "count" 3.0 (find "latency_seconds_count" []);
  Alcotest.(check (float 1e-9)) "sum" 5.55 (find "latency_seconds_sum" []);
  (* a registry fed from a real trace also round-trips *)
  let tracer = Obs.Trace.create () in
  let _ = ring_body (Some tracer) in
  let reg2 = R.create () in
  R.observe_trace reg2 tracer;
  let samples2 = R.parse_prometheus (R.to_prometheus reg2) in
  Alcotest.(check bool) "trace-fed registry parses back" true
    (List.exists
       (fun (s : R.sample) -> s.R.s_name = "autocfd_compute_seconds_total")
       samples2)

let suite =
  [
    ("json roundtrip", `Quick, test_json_roundtrip);
    ("json errors", `Quick, test_json_errors);
    ("events monotone per rank", `Quick, test_events_monotone_per_rank);
    ("breakdown sums to finish", `Quick, test_breakdown_sums_to_finish);
    ("tracing off: identical stats", `Quick, test_tracing_off_identical_stats);
    ("spmd trace accounts elapsed", `Quick, test_spmd_trace_accounts_elapsed);
    ("spmd sync attribution", `Quick, test_spmd_sync_attribution);
    ("chrome export roundtrip", `Quick, test_chrome_export_roundtrip);
    ("chrome empty trace", `Quick, test_chrome_empty_trace);
    ("chrome name escaping", `Quick, test_chrome_name_escaping);
    ("kernel attribution", `Quick, test_kernel_attribution);
    ("sched events surface", `Quick, test_sched_events_surface);
    ("registry counters and gauges", `Quick, test_registry_counters_gauges);
    ( "registry histogram boundaries",
      `Quick,
      test_registry_histogram_boundaries );
    ("prometheus roundtrip", `Quick, test_prometheus_roundtrip);
  ]
