(** Tests for the observability layer: the JSON codec, the tracer's exact
    time-accounting invariant, Chrome export, sync-point attribution and
    the zero-overhead-when-off guarantee. *)

module Obs = Autocfd_obs
module J = Obs.Json
open Autocfd_mpsim
module D = Autocfd.Driver

let heat =
  {|
c$acfd grid(m, n)
c$acfd status(u, w)
      program heat
      parameter (m = 20, n = 10, ntime = 4)
      real u(m, n), w(m, n)
      real errmax
      integer i, j, it
      do 10 i = 1, m
        do 10 j = 1, n
          u(i, j) = 0.01 * float(i) * float(i) + 0.02 * float(j)
 10   continue
      do 500 it = 1, ntime
        do 100 i = 2, m - 1
          do 100 j = 2, n - 1
            w(i, j) = 0.25 * (u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1))
 100    continue
        errmax = 0.0
        do 200 i = 2, m - 1
          do 200 j = 2, n - 1
            errmax = max(errmax, abs(w(i, j) - u(i, j)))
            u(i, j) = w(i, j)
 200    continue
 500  continue
      write(*,*) errmax
      end
|}

let traced_heat =
  lazy
    (let t = D.load heat in
     let plan = D.plan t ~parts:[| 2; 2 |] in
     let tracer = Autocfd_obs.Trace.create () in
     let result =
       D.run
         ~spec:
           Autocfd.Runspec.(
             default
             |> with_machine (Some Autocfd_perfmodel.Model.pentium_cluster)
             |> with_tracer (Some tracer))
         plan
     in
     (result, tracer))

(* a simulator-level workload exercising every event kind *)
let ring_body tracer =
  Sim.run ~net:Netmodel.ethernet_100 ?tracer ~nranks:3 (fun c ->
      let r = Sim.rank c in
      Sim.advance c (0.001 *. float_of_int (r + 1));
      let right = (r + 1) mod 3 and left = (r + 2) mod 3 in
      Sim.send c ~dest:right ~tag:0 (Array.make 100 (float_of_int r));
      ignore (Sim.recv c ~src:left ~tag:0);
      ignore (Sim.allreduce c `Max (float_of_int r));
      ignore (Sim.bcast c ~root:0 (if r = 0 then [| 1.0; 2.0 |] else [||]));
      Sim.barrier c)

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    J.Obj
      [
        ("a", J.Int 42);
        ("b", J.Float 0.1);
        ("c", J.Str "quote \" backslash \\ newline \n unicode \xe2\x86\x92");
        ("d", J.List [ J.Null; J.Bool true; J.Bool false ]);
        ("e", J.Obj []);
        ("tiny", J.Float 1.0000000000000002);
      ]
  in
  let parsed = J.of_string (J.to_string doc) in
  Alcotest.(check bool) "value round-trips" true (parsed = doc);
  Alcotest.(check string) "serialization is a fixpoint" (J.to_string doc)
    (J.to_string parsed);
  Alcotest.(check bool) "pretty parses to the same value" true
    (J.of_string (J.pretty doc) = doc)

let test_json_errors () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true
        (match J.of_string s with
        | exception J.Parse_error _ -> true
        | _ -> false))
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]

(* ------------------------------------------------------------------ *)
(* Tracer invariants on the raw simulator                              *)
(* ------------------------------------------------------------------ *)

let test_events_monotone_per_rank () =
  let tracer = Obs.Trace.create () in
  let _ = ring_body (Some tracer) in
  let last = Array.make (Obs.Trace.nranks tracer) 0.0 in
  List.iter
    (fun (e : Obs.Trace.event) ->
      Alcotest.(check bool) "span is forward" true (e.ev_t1 >= e.ev_t0);
      match e.ev_kind with
      | Obs.Trace.Phase _ -> () (* phases enclose other events *)
      | _ ->
          Alcotest.(check bool) "no overlap within a rank" true
            (e.ev_t0 >= last.(e.ev_rank) -. 1e-12);
          last.(e.ev_rank) <- e.ev_t1)
    (Obs.Trace.events tracer)

let test_breakdown_sums_to_finish () =
  let tracer = Obs.Trace.create () in
  let stats = ring_body (Some tracer) in
  let m = Obs.Metrics.of_trace tracer in
  Array.iter
    (fun (r : Obs.Metrics.rank_row) ->
      Alcotest.(check (float 1e-9)) "compute+comm+blocked = finish"
        r.Obs.Metrics.rr_finish
        (r.Obs.Metrics.rr_compute +. r.Obs.Metrics.rr_comm
        +. r.Obs.Metrics.rr_blocked))
    m.Obs.Metrics.ranks;
  Alcotest.(check (float 1e-9)) "metrics elapsed = stats elapsed"
    stats.Sim.elapsed m.Obs.Metrics.elapsed;
  Alcotest.(check int) "messages counted" stats.Sim.messages
    m.Obs.Metrics.messages;
  Alcotest.(check int) "bytes counted" stats.Sim.bytes m.Obs.Metrics.bytes

let test_tracing_off_identical_stats () =
  let with_tracer = ring_body (Some (Obs.Trace.create ())) in
  let without = ring_body None in
  Alcotest.(check bool) "identical Sim.stats" true (with_tracer = without)

(* ------------------------------------------------------------------ *)
(* End-to-end: traced SPMD execution of a real plan                    *)
(* ------------------------------------------------------------------ *)

let test_spmd_trace_accounts_elapsed () =
  let result, tracer = Lazy.force traced_heat in
  let stats = result.Autocfd_interp.Spmd.stats in
  let m = Obs.Metrics.of_trace tracer in
  Array.iter
    (fun (r : Obs.Metrics.rank_row) ->
      Alcotest.(check (float 1e-9)) "compute+comm+blocked = finish"
        r.Obs.Metrics.rr_finish
        (r.Obs.Metrics.rr_compute +. r.Obs.Metrics.rr_comm
        +. r.Obs.Metrics.rr_blocked))
    m.Obs.Metrics.ranks;
  let max_finish =
    Array.fold_left
      (fun acc (r : Obs.Metrics.rank_row) ->
        Float.max acc r.Obs.Metrics.rr_finish)
      0.0 m.Obs.Metrics.ranks
  in
  Alcotest.(check (float 1e-9)) "ranks account for the elapsed time"
    stats.Autocfd_mpsim.Sim.elapsed max_finish

let test_spmd_sync_attribution () =
  let _, tracer = Lazy.force traced_heat in
  let m = Obs.Metrics.of_trace tracer in
  let syncs = m.Obs.Metrics.syncs in
  Alcotest.(check bool) "sync table nonempty" true (syncs <> []);
  let has p = List.exists p syncs in
  let mentions s sub =
    let nh = String.length s and nn = String.length sub in
    let rec go i = i + nn <= nh && (String.sub s i nn = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "a halo exchange inside do it" true
    (has (fun s ->
         mentions s.Obs.Metrics.sr_label "halo"
         && s.Obs.Metrics.sr_loop = Some "it"));
  Alcotest.(check bool) "the max reduction appears" true
    (has (fun s -> mentions s.Obs.Metrics.sr_label "allreduce max"));
  List.iter
    (fun (s : Obs.Metrics.sync_row) ->
      Alcotest.(check bool) "executions positive" true
        (s.Obs.Metrics.sr_executions > 0))
    syncs;
  (* every simulated message is attributed to some sync point: the SPMD
     executor only communicates inside combined synchronization points *)
  Alcotest.(check int) "all messages attributed" m.Obs.Metrics.messages
    (List.fold_left (fun a s -> a + s.Obs.Metrics.sr_messages) 0 syncs)

let test_chrome_export_roundtrip () =
  let _, tracer = Lazy.force traced_heat in
  let text = Obs.Chrome.to_string tracer in
  let doc = J.of_string text in
  let evs =
    match J.member "traceEvents" doc with
    | Some (J.List l) -> l
    | _ -> Alcotest.fail "traceEvents missing"
  in
  (* every trace event plus one process_name and one thread_name per rank *)
  Alcotest.(check int) "event count"
    (Obs.Trace.length tracer + Obs.Trace.nranks tracer + 1)
    (List.length evs);
  List.iter
    (fun e ->
      match J.member "ph" e with
      | Some (J.Str "M") -> ()
      | Some (J.Str "X") ->
          let num k =
            match J.member k e with
            | Some v -> J.to_float_exn v
            | None -> Alcotest.fail (k ^ " missing")
          in
          Alcotest.(check bool) "ts >= 0" true (num "ts" >= 0.0);
          Alcotest.(check bool) "dur >= 0" true (num "dur" >= 0.0)
      | _ -> Alcotest.fail "unexpected event phase")
    evs;
  Alcotest.(check string) "serialization fixpoint" (J.to_string doc)
    (J.to_string (J.of_string (J.to_string doc)))

let suite =
  [
    ("json roundtrip", `Quick, test_json_roundtrip);
    ("json errors", `Quick, test_json_errors);
    ("events monotone per rank", `Quick, test_events_monotone_per_rank);
    ("breakdown sums to finish", `Quick, test_breakdown_sums_to_finish);
    ("tracing off: identical stats", `Quick, test_tracing_off_identical_stats);
    ("spmd trace accounts elapsed", `Quick, test_spmd_trace_accounts_elapsed);
    ("spmd sync attribution", `Quick, test_spmd_sync_attribution);
    ("chrome export roundtrip", `Quick, test_chrome_export_roundtrip);
  ]
