(** Tests for the top-level driver and the experiments harness. *)

module D = Autocfd.Driver

let parts_spec p = Autocfd.Runspec.(default |> with_parts (Some p))
module E = Autocfd.Experiments
module S = Autocfd_syncopt

let heat =
  {|
c$acfd grid(m, n)
c$acfd status(u, w)
      program heat
      parameter (m = 20, n = 10)
      real u(m, n), w(m, n)
      integer i, j, it
      do i = 1, m
        do j = 1, n
          u(i, j) = float(i)
        end do
      end do
      do it = 1, 4
        do i = 2, m - 1
          do j = 2, n - 1
            w(i, j) = 0.25 * (u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1))
          end do
        end do
        do i = 2, m - 1
          do j = 2, n - 1
            u(i, j) = w(i, j)
          end do
        end do
      end do
      write(*,*) u(3, 3)
      end
|}

let test_load () =
  let t = D.load heat in
  Alcotest.(check bool) "grid resolved" true (t.D.gi.Autocfd_analysis.Grid_info.grid = [| 20; 10 |]);
  Alcotest.(check string) "inlined main kept" "heat" t.D.inlined.Autocfd_fortran.Ast.u_name

let test_auto_parts () =
  let t = D.load heat in
  (* grid 20x10: the long dimension should be cut for 2 procs *)
  Alcotest.(check bool) "auto 2" true (D.auto_parts t ~nprocs:2 = [| 2; 1 |]);
  let p4 = D.auto_parts t ~nprocs:4 in
  Alcotest.(check int) "auto 4 multiplies out" 4 (p4.(0) * p4.(1))

let test_plan_components () =
  let t = D.load heat in
  let plan = D.plan ~spec:(parts_spec [| 2; 2 |]) t in
  Alcotest.(check bool) "summaries found" true (plan.D.summaries <> []);
  Alcotest.(check bool) "pairs found" true (plan.D.sldp.Autocfd_analysis.Sldp.pairs <> []);
  Alcotest.(check bool) "groups placed" true (plan.D.opt.S.Optimizer.groups <> []);
  Alcotest.(check bool) "after <= before" true
    (plan.D.opt.S.Optimizer.after <= plan.D.opt.S.Optimizer.before)

let test_spmd_source_header () =
  let t = D.load heat in
  let plan = D.plan ~spec:(parts_spec [| 2; 1 |]) t in
  let src = D.spmd_source plan in
  Alcotest.(check bool) "header mentions Auto-CFD" true
    (String.length src > 30 && String.sub src 0 2 = "c ")

let test_run_sequential_flops () =
  let t = D.load heat in
  let seq = D.run_seq t in
  Alcotest.(check bool) "flops counted" true (seq.D.sq_flops > 100.0);
  Alcotest.(check bool) "arrays captured" true
    (List.mem_assoc "u" seq.D.sq_arrays && List.mem_assoc "w" seq.D.sq_arrays)

let test_run_parallel_with_timing () =
  let t = D.load heat in
  let plan = D.plan ~spec:(parts_spec [| 2; 1 |]) t in
  let par =
    D.run
      ~spec:
        Autocfd.Runspec.(
          default
          |> with_net Autocfd_mpsim.Netmodel.ethernet_100
          |> with_flop_time 1e-8)
      plan
  in
  Alcotest.(check bool) "virtual time advanced" true
    (par.Autocfd_interp.Spmd.stats.Autocfd_mpsim.Sim.elapsed > 0.0);
  Alcotest.(check bool) "flops per rank recorded" true
    (Array.for_all (fun f -> f > 0.0) par.Autocfd_interp.Spmd.flops_per_rank)

let test_table1_rows () =
  let rows = E.table1 () in
  Alcotest.(check int) "nine rows like the paper" 9 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "after < before" true
        (r.E.t1_after < r.E.t1_before);
      let pct =
        float_of_int (r.E.t1_before - r.E.t1_after)
        /. float_of_int r.E.t1_before
      in
      Alcotest.(check bool) "reduction at least 80%" true (pct >= 0.80))
    rows

let test_auto_parts_by_model () =
  let t = D.load heat in
  let p = D.auto_parts_by_model t ~nprocs:4 in
  Alcotest.(check int) "multiplies out" 4 (p.(0) * p.(1));
  (* the model choice is never worse than the volume choice *)
  let module M = Autocfd_perfmodel.Model in
  let time parts =
    let plan = D.plan ~spec:(parts_spec parts) t in
    (M.predict_parallel M.pentium_cluster ~gi:t.D.gi ~topo:plan.D.topo
       plan.D.spmd)
      .M.time
  in
  Alcotest.(check bool) "model <= volume" true
    (time p <= time (D.auto_parts t ~nprocs:4) +. 1e-9)

let test_report_markdown () =
  let t = D.load heat in
  let plan = D.plan ~spec:(parts_spec [| 2; 2 |]) t in
  let text = Autocfd.Report.markdown plan in
  let contains needle =
    let nh = String.length text and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("report contains " ^ needle) true (contains needle))
    [ "# Auto-CFD pre-compilation report"; "## Field loops";
      "## Dependence pairs (S_LDP)"; "## Synchronization optimization";
      "block-parallel"; "speedup";
      "## Measured execution (simulated cluster)";
      "### Per-rank time breakdown"; "### Per-sync-point traffic" ];
  Alcotest.(check bool) "census sums to heads" true
    (List.fold_left (fun a (_, v) -> a + v) 0 (Autocfd.Report.loop_census plan)
    = List.length plan.D.strategies)

let test_renderers_nonempty () =
  let t1 = E.render_table1 (E.table1 ()) in
  Alcotest.(check bool) "table text" true (String.length t1 > 200)


let test_load_diagnostics () =
  (* missing directives and syntax errors surface as documented errors *)
  Alcotest.(check bool) "missing grid directive" true
    (match D.load "      program t\n      end\n" with
    | exception Failure msg ->
        String.length msg > 0
    | _ -> false);
  Alcotest.(check bool) "syntax error carries location" true
    (match D.load "c$acfd grid(n)\n      program t\n      x = (1 +\n      end\n" with
    | exception Autocfd_fortran.Loc.Error (loc, _) ->
        loc.Autocfd_fortran.Loc.line > 0
    | exception Failure _ -> true
    | _ -> false)

let test_infeasible_partition () =
  let t = D.load heat in
  Alcotest.(check bool) "too many parts" true
    (match D.plan ~spec:(parts_spec [| 50; 1 |]) t with
    | exception Invalid_argument _ -> true
    | _ -> false)


let test_baseline_gate () =
  let module B = Autocfd.Baseline in
  let module J = Autocfd_obs.Json in
  let doc time speedup identical =
    J.Obj
      [
        ("schema", J.Str "autocfd-bench/1");
        ( "table2",
          J.List
            [
              J.Obj
                [
                  ("procs", J.Int 4);
                  ("partition", J.Str "4x1x1");
                  ("time", J.Float time);
                  ("speedup", J.Float speedup);
                  ("efficiency", J.Null);
                ];
            ] );
        ( "engine",
          J.List
            [
              J.Obj
                [
                  ("program", J.Str "aerofoil");
                  ("partition", J.Str "2x2x1");
                  ("speedup", J.Float 8.0);
                  ("fused_speedup", J.Float 15.0);
                  ("loops_fused", J.Int 21);
                  ("identical", J.Bool identical);
                ];
            ] );
      ]
  in
  let base = doc 100.0 3.0 true in
  let gate ?tolerance current =
    B.compare_tables ?tolerance ~baseline:base ~current ()
  in
  Alcotest.(check int) "identical docs pass" 0 (List.length (gate base));
  Alcotest.(check int) "within tolerance passes" 0
    (List.length (gate (doc 104.0 2.9 true)));
  Alcotest.(check int) "slower time fails" 1
    (List.length (gate (doc 110.0 3.0 true)));
  Alcotest.(check int) "lower speedup fails" 1
    (List.length (gate (doc 100.0 2.0 true)));
  Alcotest.(check int) "identity flip fails" 1
    (List.length (gate (doc 100.0 3.0 false)));
  Alcotest.(check int) "tolerance is configurable" 0
    (List.length (gate ~tolerance:0.2 (doc 110.0 3.0 true)));
  (* a vanished row is itself a failure *)
  let empty = J.Obj [ ("table2", J.List []); ("engine", J.List []) ] in
  Alcotest.(check int) "missing rows fail" 2 (List.length (gate empty));
  Alcotest.(check bool) "failures render" true
    (String.length (B.render_failures (gate empty)) > 0)

let suite =
  [
    ("load", `Quick, test_load);
    ("auto parts", `Quick, test_auto_parts);
    ("plan components", `Quick, test_plan_components);
    ("spmd source header", `Quick, test_spmd_source_header);
    ("run sequential flops", `Quick, test_run_sequential_flops);
    ("run parallel timing", `Quick, test_run_parallel_with_timing);
    ("auto parts by model", `Quick, test_auto_parts_by_model);
    ("report markdown", `Quick, test_report_markdown);
    ("load diagnostics", `Quick, test_load_diagnostics);
    ("infeasible partition", `Quick, test_infeasible_partition);
    ("baseline gate", `Quick, test_baseline_gate);
    ("table 1 rows", `Slow, test_table1_rows);
    ("renderers", `Slow, test_renderers_nonempty);
  ]
