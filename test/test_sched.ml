(** The sweep scheduler and result cache: deterministic merge order
    (jobs 1 vs 4 bit-identical), content-addressed cache hits returning
    the stored bytes, invalidation on source-digest and code-version
    changes, error isolation (a raising job reports its error without
    wedging the pool), and the stable Runspec JSON codec. *)

module Sched = Autocfd_sched
module J = Autocfd_obs.Json
module E = Autocfd.Experiments
module R = Autocfd.Runspec
module I = Autocfd_interp
module M = Autocfd_mpsim

let tmp_cache_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "autocfd_sched_test_%d_%d" (Unix.getpid ()) !n)
    in
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    dir

let with_cache f =
  let dir = tmp_cache_dir () in
  let cache = Sched.Cache.create ~dir () in
  Fun.protect
    ~finally:(fun () ->
      Sched.Cache.clear cache;
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f cache)

let job ?version ~label ~spec run =
  Sched.Job.make ?version ~label ~key:(J.Obj [ ("spec", J.Str spec) ]) run

(* ------------------------------------------------------------------ *)
(* Determinism: 1 worker vs 4 workers                                  *)
(* ------------------------------------------------------------------ *)

let test_pool_deterministic () =
  let mk () =
    List.init 12 (fun i ->
        job
          ~label:(Printf.sprintf "j%d" i)
          ~spec:(Printf.sprintf "square-%d" i)
          (fun () -> J.Obj [ ("v", J.Int (i * i)) ]))
  in
  let render (results, _) =
    String.concat ";"
      (Array.to_list
         (Array.map
            (function
              | Ok v -> J.canonical v
              | Error msg -> "error:" ^ msg)
            results))
  in
  let serial = render (Sched.Pool.run ~jobs:1 (mk ())) in
  let parallel = render (Sched.Pool.run ~jobs:4 (mk ())) in
  Alcotest.(check string) "jobs 1 = jobs 4" serial parallel

let test_table_rows_deterministic () =
  (* a real sweep: table1 through 1 worker and 4 workers must render
     byte-identically *)
  let render sw = E.render_table1 (E.table1 ~sweep:sw ()) in
  let serial = render (E.sweep ~jobs:1 ()) in
  let parallel = render (E.sweep ~jobs:4 ()) in
  Alcotest.(check string) "table1 rows identical" serial parallel

(* ------------------------------------------------------------------ *)
(* Cache: hits are bit-identical, misses on any key ingredient change  *)
(* ------------------------------------------------------------------ *)

let test_cache_hit_identical () =
  with_cache (fun cache ->
      let calls = Atomic.make 0 in
      let mk () =
        [
          job ~label:"row" ~spec:"pi" (fun () ->
              Atomic.incr calls;
              J.Obj [ ("pi", J.Float 3.141592653589793); ("n", J.Int 7) ]);
        ]
      in
      let run () =
        let results, stats = Sched.Pool.run ~jobs:1 ~cache (mk ()) in
        match results.(0) with
        | Ok v -> (J.canonical v, stats)
        | Error msg -> Alcotest.fail msg
      in
      let cold, cold_stats = run () in
      let warm, warm_stats = run () in
      Alcotest.(check int) "thunk ran once" 1 (Atomic.get calls);
      Alcotest.(check string) "warm result bit-identical" cold warm;
      Alcotest.(check int) "cold pass missed" 1
        cold_stats.Sched.Pool.ps_misses;
      Alcotest.(check int) "warm pass hit" 1 warm_stats.Sched.Pool.ps_hits;
      Alcotest.(check int) "warm pass no misses" 0
        warm_stats.Sched.Pool.ps_misses)

let test_cache_invalidation () =
  with_cache (fun cache ->
      let calls = Atomic.make 0 in
      let mk ?version spec =
        [
          job ?version ~label:"row" ~spec (fun () ->
              Atomic.incr calls;
              J.Obj [ ("calls", J.Int (Atomic.get calls)) ]);
        ]
      in
      let run jobs = ignore (Sched.Pool.run ~jobs:1 ~cache jobs) in
      run (mk "src-digest-a");
      Alcotest.(check int) "cold run executes" 1 (Atomic.get calls);
      run (mk "src-digest-a");
      Alcotest.(check int) "same key hits" 1 (Atomic.get calls);
      (* a source change (different digest in the spec) misses *)
      run (mk "src-digest-b");
      Alcotest.(check int) "source change invalidates" 2 (Atomic.get calls);
      (* a code-version bump misses even with an identical spec *)
      run (mk ~version:"autocfd-sched/next" "src-digest-a");
      Alcotest.(check int) "code-version change invalidates" 3
        (Atomic.get calls))

let test_cache_lookup_checks_key () =
  with_cache (fun cache ->
      (* a colliding file whose stored key differs from the probe's must
         be treated as a miss, not served *)
      let a = job ~label:"a" ~spec:"original" (fun () -> J.Int 1) in
      Sched.Cache.store cache a (J.Int 1);
      let forged =
        {
          a with
          Sched.Job.jb_key = J.Obj [ ("spec", J.Str "something-else") ];
        }
      in
      Alcotest.(check bool) "stored key found" true
        (Sched.Cache.lookup cache a <> None);
      Alcotest.(check bool) "different key misses" true
        (Sched.Cache.lookup cache forged = None);
      (* corrupt the entry on disk: malformed JSON must read as a miss *)
      let path =
        Filename.concat (Sched.Cache.dir cache)
          (Sched.Job.cache_name a ^ ".json")
      in
      let oc = open_out path in
      output_string oc "{ truncated";
      close_out oc;
      Alcotest.(check bool) "corrupt entry misses" true
        (Sched.Cache.lookup cache a = None))

let test_corruption_miss_counter () =
  with_cache (fun cache ->
      let a = job ~label:"a" ~spec:"alpha" (fun () -> J.Int 1) in
      Alcotest.(check int) "fresh cache: zero" 0
        (Sched.Cache.corruption_misses cache);
      (* a cold miss (no entry file) is not a corruption *)
      ignore (Sched.Cache.lookup cache a);
      Alcotest.(check int) "cold miss not counted" 0
        (Sched.Cache.corruption_misses cache);
      Sched.Cache.store cache a (J.Int 1);
      (* a stored-key mismatch (hash collision / forged probe) counts *)
      let forged =
        { a with Sched.Job.jb_key = J.Obj [ ("spec", J.Str "beta") ] }
      in
      let path =
        Filename.concat (Sched.Cache.dir cache)
          (Sched.Job.cache_name forged ^ ".json")
      in
      let write text =
        let oc = open_out path in
        output_string oc text;
        close_out oc
      in
      write
        (J.to_string
           (J.Obj [ ("key", a.Sched.Job.jb_key); ("result", J.Int 1) ]));
      Alcotest.(check bool) "key mismatch misses" true
        (Sched.Cache.lookup cache forged = None);
      Alcotest.(check int) "key mismatch counted" 1
        (Sched.Cache.corruption_misses cache);
      (* malformed JSON counts too *)
      write "{ truncated";
      ignore (Sched.Cache.lookup cache forged);
      Alcotest.(check int) "malformed entry counted" 2
        (Sched.Cache.corruption_misses cache);
      Sys.remove path;
      (* and the pool surfaces the per-batch delta in its stats *)
      let _, stats = Sched.Pool.run ~jobs:1 ~cache [ a ] in
      Alcotest.(check int) "clean batch: ps_corrupt = 0" 0
        stats.Sched.Pool.ps_corrupt;
      let corrupt_a =
        Filename.concat (Sched.Cache.dir cache)
          (Sched.Job.cache_name a ^ ".json")
      in
      let oc = open_out corrupt_a in
      output_string oc "not json";
      close_out oc;
      let _, stats = Sched.Pool.run ~jobs:1 ~cache [ a ] in
      Alcotest.(check int) "corrupt probe surfaces in ps_corrupt" 1
        stats.Sched.Pool.ps_corrupt)

(* ------------------------------------------------------------------ *)
(* Error isolation                                                     *)
(* ------------------------------------------------------------------ *)

let test_raising_job_does_not_wedge () =
  let jobs =
    List.init 8 (fun i ->
        job
          ~label:(Printf.sprintf "j%d" i)
          ~spec:(Printf.sprintf "err-%d" i)
          (fun () ->
            if i = 3 then failwith "boom three";
            J.Int i))
  in
  let results, stats = Sched.Pool.run ~jobs:4 jobs in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v when i <> 3 -> Alcotest.(check string) "value" (J.canonical (J.Int i)) (J.canonical v)
      | Ok _ -> Alcotest.fail "job 3 should have failed"
      | Error msg when i = 3 ->
          Alcotest.(check bool) "error names the exception" true
            (let nh = String.length msg in
             let needle = "boom three" in
             let nn = String.length needle in
             let rec go k =
               k + nn <= nh && (String.sub msg k nn = needle || go (k + 1))
             in
             go 0)
      | Error msg -> Alcotest.failf "job %d unexpectedly failed: %s" i msg)
    results;
  Alcotest.(check int) "one error" 1 stats.Sched.Pool.ps_errors;
  Alcotest.(check int) "all jobs accounted" 8 stats.Sched.Pool.ps_jobs

let test_failed_jobs_not_cached () =
  with_cache (fun cache ->
      let calls = Atomic.make 0 in
      let mk () =
        [
          job ~label:"flaky" ~spec:"flaky" (fun () ->
              Atomic.incr calls;
              if Atomic.get calls = 1 then failwith "transient";
              J.Int 42);
        ]
      in
      let r1, _ = Sched.Pool.run ~jobs:1 ~cache (mk ()) in
      (match r1.(0) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "first attempt should fail");
      let r2, _ = Sched.Pool.run ~jobs:1 ~cache (mk ()) in
      (match r2.(0) with
      | Ok v ->
          Alcotest.(check string) "second attempt recomputes" "42"
            (J.canonical v)
      | Error msg -> Alcotest.failf "second attempt failed: %s" msg);
      Alcotest.(check int) "ran twice (failure was not cached)" 2
        (Atomic.get calls))

(* ------------------------------------------------------------------ *)
(* Runspec JSON round-trip                                             *)
(* ------------------------------------------------------------------ *)

let test_runspec_roundtrip () =
  let specs =
    [
      R.default;
      R.(
        default |> with_engine I.Spmd.Tree
        |> with_net M.Netmodel.ethernet_100
        |> with_flop_time 1e-8
        |> with_input [ 1.5; 2.5 ]);
      R.(
        default
        |> with_machine (Some Autocfd_perfmodel.Model.pentium_cluster)
        |> with_tracer (Some (Autocfd_obs.Trace.create ()))
        |> with_faults
             (Some
                (M.Fault.make
                   (M.Fault.spec ~seed:7 ~loss:0.05 ~jitter:1e-4
                      ~degrade:[ (0, 1, 2.0) ]
                      ~stalls:
                        [
                          {
                            M.Fault.sl_rank = 1;
                            sl_at = M.Fault.At_time 0.25;
                            sl_duration = 0.125;
                          };
                        ]
                      ~crashes:
                        [ { M.Fault.cr_rank = 2; cr_at = M.Fault.At_op 11 } ]
                      ())))
        |> with_recovery (Some I.Spmd.default_recovery));
    ]
  in
  List.iteri
    (fun i spec ->
      let j = R.to_json spec in
      let rt = R.of_json j in
      Alcotest.(check string)
        (Printf.sprintf "spec %d: canonical JSON stable over round-trip" i)
        (J.canonical j)
        (J.canonical (R.to_json rt)))
    specs

let test_runspec_canonical_key_stable () =
  (* field order must not matter once canonicalized: a reordered key
     addresses the same cache entry *)
  let a = J.Obj [ ("x", J.Int 1); ("y", J.Str "s") ] in
  let b = J.Obj [ ("y", J.Str "s"); ("x", J.Int 1) ] in
  Alcotest.(check string) "canonical collapses field order" (J.canonical a)
    (J.canonical b);
  let ja = Sched.Job.make ~label:"a" ~key:a (fun () -> J.Null) in
  let jb = Sched.Job.make ~label:"b" ~key:b (fun () -> J.Null) in
  Alcotest.(check string) "same content address"
    (Sched.Job.cache_name ja) (Sched.Job.cache_name jb)

let test_stale_tmp_swept () =
  (* a crashed writer's abandoned cache temp file: opening the cache
     must sweep it (and count it), while a fresh temp file survives *)
  let dir = tmp_cache_dir () in
  let stale = Filename.concat dir "abandoned.json.tmp" in
  let fresh = Filename.concat dir "inflight.json.tmp" in
  List.iter
    (fun p ->
      let oc = open_out p in
      output_string oc "{}";
      close_out oc)
    [ stale; fresh ];
  (* backdate the stale one past any plausible cutoff *)
  let old = Unix.gettimeofday () -. 3600.0 in
  Unix.utimes stale old old;
  let cache = Sched.Cache.create ~dir ~stale_age:600.0 () in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove fresh with Sys_error _ -> ());
      Sched.Cache.clear cache;
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () ->
      Alcotest.(check int) "one stale temp swept" 1
        (Sched.Cache.stale_cleaned cache);
      Alcotest.(check bool) "stale temp removed" false (Sys.file_exists stale);
      Alcotest.(check bool) "fresh temp kept" true (Sys.file_exists fresh))

let test_unwritable_cache_dir_rejected () =
  if Unix.getuid () = 0 then ()
    (* root ignores permission bits; the probe cannot fail *)
  else begin
    let dir = tmp_cache_dir () in
    Unix.chmod dir 0o500;
    Fun.protect
      ~finally:(fun () ->
        Unix.chmod dir 0o755;
        try Sys.rmdir dir with Sys_error _ -> ())
      (fun () ->
        match Sched.Cache.create ~dir () with
        | _ -> Alcotest.fail "expected Sys_error for unwritable cache dir"
        | exception Sys_error _ -> ())
  end

let test_machinery_failure_propagates () =
  (* job-thunk exceptions are isolated per slot, but an exception from
     the pool machinery itself — here the cache store writing into a
     directory deleted mid-run — must re-raise out of Pool.run (with its
     original backtrace) instead of being swallowed by Domain.join *)
  let dir = tmp_cache_dir () in
  let cache = Sched.Cache.create ~dir () in
  Sys.rmdir dir;
  match
    Sched.Pool.run ~jobs:1 ~cache
      [ job ~label:"store-fails" ~spec:"store-fails" (fun () -> J.Int 1) ]
  with
  | _ -> Alcotest.fail "expected the cache-store failure to propagate"
  | exception Sys_error _ -> ()

let suite =
  [
    ("pool deterministic (jobs 1 vs 4)", `Quick, test_pool_deterministic);
    ("stale cache temp files swept", `Quick, test_stale_tmp_swept);
    ("unwritable cache dir rejected", `Quick,
     test_unwritable_cache_dir_rejected);
    ("machinery failure propagates", `Quick,
     test_machinery_failure_propagates);
    ("table1 rows deterministic", `Quick, test_table_rows_deterministic);
    ("cache hit bit-identical", `Quick, test_cache_hit_identical);
    ("cache invalidation", `Quick, test_cache_invalidation);
    ("cache lookup checks stored key", `Quick, test_cache_lookup_checks_key);
    ("corruption-miss counter", `Quick, test_corruption_miss_counter);
    ("raising job does not wedge pool", `Quick,
     test_raising_job_does_not_wedge);
    ("failed jobs are not cached", `Quick, test_failed_jobs_not_cached);
    ("runspec JSON round-trip", `Quick, test_runspec_roundtrip);
    ("canonical keys ignore field order", `Quick,
     test_runspec_canonical_key_stable);
  ]
