(** The distributed sweep fabric: frame codec and chaos transport over
    real sockets, the master/worker wire protocol, and the robustness
    ladder — end-to-end distribution, graceful degradation without
    workers, quarantine of poisoned jobs, requeue on worker death, lease
    expiry for silent workers, and heartbeats keeping slow jobs leased. *)

module Sched = Autocfd_sched
module Fabric = Sched.Fabric
module Frame = Autocfd_mpsim.Frame
module J = Autocfd_obs.Json

(* ------------------------------------------------------------------ *)
(* frame codec                                                        *)
(* ------------------------------------------------------------------ *)

let test_frame_roundtrip () =
  let r = Frame.reader () in
  let payloads = [ ""; "x"; String.make 1000 'q'; "{\"a\":[1,2,3]}" ] in
  List.iteri
    (fun i p ->
      let b = Frame.encode ~kind:Frame.Data ~seq:i p in
      Frame.feed r b 0 (Bytes.length b))
    payloads;
  List.iteri
    (fun i p ->
      match Frame.next r with
      | Some f ->
          Alcotest.(check int) "seq" i f.Frame.fr_seq;
          Alcotest.(check string) "payload" p f.Frame.fr_payload
      | None -> Alcotest.failf "frame %d missing" i)
    payloads;
  Alcotest.(check bool) "drained" true (Frame.next r = None);
  Alcotest.(check int) "nothing corrupt" 0 (Frame.reader_corrupt r)

let test_frame_resync_on_garbage () =
  let r = Frame.reader () in
  let garbage = Bytes.of_string "%%%% line noise before the frame ****" in
  Frame.feed r garbage 0 (Bytes.length garbage);
  let b = Frame.encode ~kind:Frame.Data ~seq:7 "survivor" in
  Frame.feed r b 0 (Bytes.length b);
  (match Frame.next r with
  | Some f -> Alcotest.(check string) "payload" "survivor" f.Frame.fr_payload
  | None -> Alcotest.fail "frame after garbage not recovered");
  Alcotest.(check bool) "garbage counted" true (Frame.reader_corrupt r > 0)

let test_frame_checksum_rejects () =
  let r = Frame.reader () in
  let b = Frame.encode ~kind:Frame.Data ~seq:0 "payload-to-mangle" in
  (* flip one payload byte: framing survives, the checksum must not *)
  Bytes.set b 30 (Char.chr (Char.code (Bytes.get b 30) lxor 0x40));
  Frame.feed r b 0 (Bytes.length b);
  Alcotest.(check bool) "mangled frame dropped" true (Frame.next r = None);
  Alcotest.(check bool) "corruption counted" true (Frame.reader_corrupt r > 0);
  (* an intact retransmission still gets through *)
  let b2 = Frame.encode ~kind:Frame.Data ~seq:0 "payload-to-mangle" in
  Frame.feed r b2 0 (Bytes.length b2);
  match Frame.next r with
  | Some f ->
      Alcotest.(check string) "retransmit delivered" "payload-to-mangle"
        f.Frame.fr_payload
  | None -> Alcotest.fail "clean retransmission lost"

(* chaos conn over a socketpair: exactly-once in-order delivery while
   the sender's wire corrupts and duplicates fresh frames *)
let test_conn_chaos_exactly_once () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let chaos =
    { Frame.ch_seed = 11; ch_corrupt = 0.3; ch_duplicate = 0.3 }
  in
  let sender = Frame.conn ~chaos ~rto:0.02 a in
  let receiver = Frame.conn b in
  let n = 60 in
  let expected = List.init n (fun i -> Printf.sprintf "payload-%d" i) in
  List.iter (Frame.send sender) expected;
  let got = ref [] in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while
    List.length !got < n
    && Unix.gettimeofday () < deadline
  do
    (match Unix.select [ Frame.fd receiver; Frame.fd sender ] [] [] 0.02 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        if List.memq (Frame.fd receiver) readable then
          got := !got @ Frame.pump receiver;
        if List.memq (Frame.fd sender) readable then
          ignore (Frame.pump sender));
    Frame.tick sender
  done;
  let rs = Frame.stats receiver and ss = Frame.stats sender in
  Frame.close sender;
  Frame.close receiver;
  Alcotest.(check (list string)) "exactly once, in order" expected !got;
  Alcotest.(check bool) "chaos corrupted frames" true (rs.Frame.cs_corrupt > 0);
  Alcotest.(check bool) "sender retransmitted" true
    (ss.Frame.cs_retransmits > 0);
  Alcotest.(check bool) "receiver suppressed duplicates" true
    (rs.Frame.cs_dup_suppressed > 0)

(* ------------------------------------------------------------------ *)
(* wire protocol codec                                                *)
(* ------------------------------------------------------------------ *)

let test_msg_codec_roundtrip () =
  let msgs =
    [
      Fabric.Hello { mh_worker = "w-1"; mh_pid = 4242 };
      Fabric.Assign
        {
          ma_id = 17;
          ma_label = "table1:aerofoil 4x1x1";
          ma_spec =
            J.Obj
              [
                ("kind", J.Str "plan-sync");
                ("nested", J.List [ J.Int 1; J.Float 2.5; J.Null ]);
              ];
        };
      Fabric.Heartbeat { mb_id = 17 };
      Fabric.Result
        { mr_id = 17; mr_result = J.Obj [ ("before", J.Int 102) ] };
      Fabric.Failure { mf_id = 17; mf_error = "Division_by_zero" };
      Fabric.Shutdown;
    ]
  in
  List.iteri
    (fun i m ->
      match Fabric.msg_of_string (Fabric.msg_to_string m) with
      | Ok m' ->
          if m' <> m then Alcotest.failf "message %d changed over the wire" i
      | Error e -> Alcotest.failf "message %d unparsable: %s" i e)
    msgs;
  (match Fabric.msg_of_string "{\"type\":\"warp\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown type must not decode");
  match Fabric.msg_of_string "not json at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not decode"

let test_addr_parsing () =
  let ok s = function
    | expected -> (
        match Fabric.addr_of_string s with
        | Ok a when a = expected -> ()
        | Ok a ->
            Alcotest.failf "%s parsed as %s" s (Fabric.addr_to_string a)
        | Error e -> Alcotest.failf "%s rejected: %s" s e)
  in
  ok "unix:/tmp/x.sock" (Fabric.Unix_path "/tmp/x.sock");
  ok "/tmp/x.sock" (Fabric.Unix_path "/tmp/x.sock");
  ok "localhost:8080" (Fabric.Tcp ("localhost", 8080));
  ok "127.0.0.1:0" (Fabric.Tcp ("127.0.0.1", 0));
  List.iter
    (fun s ->
      match Fabric.addr_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S must not parse" s)
    [ ""; "unix:"; "host:99999"; ":1234" ]

(* ------------------------------------------------------------------ *)
(* master/worker end to end (workers as in-process serve threads)     *)
(* ------------------------------------------------------------------ *)

let next_sock =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "autocfd_fabric_test_%d_%d.sock" (Unix.getpid ()) !n)

let job i =
  Sched.Job.make
    ~label:(Printf.sprintf "j%d" i)
    ~key:(J.Obj [ ("i", J.Int i) ])
    ~spec:(J.Obj [ ("i", J.Int i) ])
    (fun () -> J.Obj [ ("sq", J.Int (i * i)) ])

let square_spec spec =
  match J.member "i" spec with
  | Some (J.Int i) -> J.Obj [ ("sq", J.Int (i * i)) ]
  | _ -> raise (J.Parse_error "bad spec")

let serve_thread ?id addr resolve =
  Thread.create
    (fun () ->
      match
        Fabric.serve ~connect:addr ?id ~heartbeat:0.05 ~resolve ()
      with
      | Ok () -> ()
      | Error e -> Printf.eprintf "test worker: %s\n%!" e)
    ()

let expect_squares results n =
  Alcotest.(check int) "result count" n (Array.length results);
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> (
          match J.member "sq" v with
          | Some (J.Int sq) ->
              Alcotest.(check int) (Printf.sprintf "job %d" i) (i * i) sq
          | _ -> Alcotest.failf "job %d: malformed result" i)
      | Error e -> Alcotest.failf "job %d failed: %s" i e)
    results

let test_fabric_end_to_end () =
  let cfg = { Fabric.default_cfg with Fabric.fb_grace = 5.0 } in
  let fb = Fabric.create ~cfg ~listen:(Fabric.Unix_path (next_sock ())) () in
  let addr = Fabric.addr fb in
  let w1 = serve_thread ~id:"alpha" addr square_spec in
  let w2 = serve_thread ~id:"beta" addr square_spec in
  let results, stats = Fabric.run fb (List.init 12 job) in
  expect_squares results 12;
  Alcotest.(check int) "no errors" 0 stats.Sched.Pool.ps_errors;
  let fs = Fabric.stats fb in
  Alcotest.(check bool) "not degraded" false fs.Fabric.fs_degraded;
  Alcotest.(check int) "both workers said hello" 2
    (List.length fs.Fabric.fs_workers);
  Alcotest.(check int) "every job leased remotely" 12
    (List.fold_left
       (fun acc (w : Fabric.worker_stats) -> acc + w.Fabric.ws_done)
       0 fs.Fabric.fs_workers);
  Fabric.shutdown fb;
  Thread.join w1;
  Thread.join w2

let test_fabric_tcp_end_to_end () =
  (* same contract over a real TCP socket, port picked by the kernel *)
  let fb = Fabric.create ~listen:(Fabric.Tcp ("127.0.0.1", 0)) () in
  (match Fabric.addr fb with
  | Fabric.Tcp (_, p) when p > 0 -> ()
  | a -> Alcotest.failf "expected a bound port, got %s" (Fabric.addr_to_string a));
  let w = serve_thread (Fabric.addr fb) square_spec in
  let results, _ = Fabric.run fb (List.init 6 job) in
  expect_squares results 6;
  Fabric.shutdown fb;
  Thread.join w

let test_degrades_without_workers () =
  let cfg = { Fabric.default_cfg with Fabric.fb_grace = 0.2 } in
  let fb = Fabric.create ~cfg ~listen:(Fabric.Unix_path (next_sock ())) () in
  let results, _ = Fabric.run fb (List.init 5 job) in
  expect_squares results 5;
  let fs = Fabric.stats fb in
  Alcotest.(check bool) "reported degradation" true fs.Fabric.fs_degraded;
  Fabric.shutdown fb

let test_speclessness_runs_on_master () =
  (* a job without a spec can never travel; the master runs it locally
     even with workers connected *)
  let cfg = { Fabric.default_cfg with Fabric.fb_grace = 5.0 } in
  let fb = Fabric.create ~cfg ~listen:(Fabric.Unix_path (next_sock ())) () in
  let w = serve_thread (Fabric.addr fb) square_spec in
  let local =
    Sched.Job.make ~label:"local" ~key:(J.Obj [ ("local", J.Bool true) ])
      (fun () -> J.Str "ran-on-master")
  in
  let results, _ = Fabric.run fb [ local; job 1 ] in
  (match results.(0) with
  | Ok (J.Str "ran-on-master") -> ()
  | _ -> Alcotest.fail "spec-less job did not run locally");
  (match results.(1) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "remote job failed: %s" e);
  Fabric.shutdown fb;
  Thread.join w

let test_quarantine_poisoned_job () =
  (* a spec every worker fails: bounded retries, then a quarantine error
     in the job's slot — and the rest of the batch still completes *)
  let cfg =
    {
      Fabric.default_cfg with
      Fabric.fb_grace = 5.0;
      fb_max_attempts = 2;
      fb_backoff = 0.005;
    }
  in
  let fb = Fabric.create ~cfg ~listen:(Fabric.Unix_path (next_sock ())) () in
  let resolve spec =
    match J.member "poison" spec with
    | Some (J.Bool true) -> failwith "resolver rejects this spec"
    | _ -> square_spec spec
  in
  let w = serve_thread (Fabric.addr fb) resolve in
  let poisoned =
    Sched.Job.make ~label:"poisoned"
      ~key:(J.Obj [ ("poison", J.Bool true) ])
      ~spec:(J.Obj [ ("poison", J.Bool true) ])
      (fun () -> J.Null)
  in
  let results, stats = Fabric.run fb [ job 0; poisoned; job 2 ] in
  (match results.(1) with
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions quarantine: %s" msg)
        true
        (String.length msg >= 11 && String.sub msg 0 11 = "quarantined")
  | Ok _ -> Alcotest.fail "poisoned job must not succeed");
  (match (results.(0), results.(2)) with
  | Ok _, Ok _ -> ()
  | _ -> Alcotest.fail "healthy jobs must survive the poisoned one");
  Alcotest.(check int) "one error" 1 stats.Sched.Pool.ps_errors;
  let fs = Fabric.stats fb in
  Alcotest.(check int) "quarantined once" 1 fs.Fabric.fs_quarantined;
  Alcotest.(check bool) "failures were retried" true (fs.Fabric.fs_retries >= 1);
  Fabric.shutdown fb;
  Thread.join w

(* a hand-driven fake worker: says hello, takes one assignment, then
   misbehaves as directed — the master must recover via a real worker *)
let fake_worker addr ~misbehave =
  Thread.create
    (fun () ->
      let sa =
        match addr with
        | Fabric.Unix_path p -> Unix.ADDR_UNIX p
        | Fabric.Tcp (h, p) ->
            Unix.ADDR_INET (Unix.inet_addr_of_string h, p)
      in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd sa;
      let conn = Frame.conn fd in
      Frame.send conn
        (Fabric.msg_to_string
           (Fabric.Hello { mh_worker = "saboteur"; mh_pid = 0 }));
      let deadline = Unix.gettimeofday () +. 10.0 in
      let assigned = ref false in
      while (not !assigned) && Unix.gettimeofday () < deadline do
        match Unix.select [ fd ] [] [] 0.05 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | [], _, _ -> ()
        | _ -> (
            match Frame.pump conn with
            | exception Frame.Closed -> assigned := true
            | payloads ->
                List.iter
                  (fun p ->
                    match Fabric.msg_of_string p with
                    | Ok (Fabric.Assign _) -> assigned := true
                    | _ -> ())
                  payloads)
      done;
      match misbehave with
      | `Die -> Frame.close conn
      | `Go_silent ->
          (* hold the socket open but never heartbeat or reply; the
             lease must expire.  Wait for the master's shutdown. *)
          let quit = ref false in
          let deadline = Unix.gettimeofday () +. 10.0 in
          while (not !quit) && Unix.gettimeofday () < deadline do
            match Unix.select [ fd ] [] [] 0.05 with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | [], _, _ -> ()
            | _ -> (
                match Frame.pump conn with
                | exception Frame.Closed -> quit := true
                | payloads ->
                    List.iter
                      (fun p ->
                        match Fabric.msg_of_string p with
                        | Ok Fabric.Shutdown -> quit := true
                        | _ -> ())
                      payloads)
          done;
          Frame.close conn)
    ()

let test_worker_death_requeues () =
  let cfg =
    { Fabric.default_cfg with Fabric.fb_grace = 5.0; fb_backoff = 0.005 }
  in
  let fb = Fabric.create ~cfg ~listen:(Fabric.Unix_path (next_sock ())) () in
  let addr = Fabric.addr fb in
  (* the saboteur connects first so it gets the first lease *)
  let saboteur = fake_worker addr ~misbehave:`Die in
  Thread.delay 0.1;
  let rescuer = serve_thread ~id:"rescuer" addr square_spec in
  let results, _ = Fabric.run fb (List.init 6 job) in
  expect_squares results 6;
  let fs = Fabric.stats fb in
  Alcotest.(check bool) "death observed" true (fs.Fabric.fs_worker_deaths >= 1);
  Alcotest.(check bool) "lease requeued" true (fs.Fabric.fs_requeues >= 1);
  Fabric.shutdown fb;
  Thread.join saboteur;
  Thread.join rescuer

let test_lease_expiry_requeues () =
  let cfg =
    {
      Fabric.default_cfg with
      Fabric.fb_grace = 5.0;
      fb_lease = 0.3;
      fb_backoff = 0.005;
    }
  in
  let fb = Fabric.create ~cfg ~listen:(Fabric.Unix_path (next_sock ())) () in
  let addr = Fabric.addr fb in
  let silent = fake_worker addr ~misbehave:`Go_silent in
  Thread.delay 0.1;
  let rescuer = serve_thread ~id:"rescuer" addr square_spec in
  let results, _ = Fabric.run fb (List.init 6 job) in
  expect_squares results 6;
  let fs = Fabric.stats fb in
  Alcotest.(check bool) "lease expired" true (fs.Fabric.fs_lease_expiries >= 1);
  Alcotest.(check bool) "expired lease requeued" true
    (fs.Fabric.fs_requeues >= 1);
  Fabric.shutdown fb;
  Thread.join silent;
  Thread.join rescuer

let test_heartbeat_keeps_slow_job_leased () =
  (* a resolver slower than the lease: heartbeats must keep the lease
     alive, so the job completes exactly once with no expiry *)
  let cfg =
    { Fabric.default_cfg with Fabric.fb_grace = 5.0; fb_lease = 0.3 }
  in
  let fb = Fabric.create ~cfg ~listen:(Fabric.Unix_path (next_sock ())) () in
  let slow spec =
    Thread.delay 0.8;
    square_spec spec
  in
  let w = serve_thread (Fabric.addr fb) slow in
  let results, _ = Fabric.run fb [ job 3 ] in
  (match results.(0) with
  | Ok v -> (
      match J.member "sq" v with
      | Some (J.Int 9) -> ()
      | _ -> Alcotest.fail "slow job returned the wrong result")
  | Error e -> Alcotest.failf "slow job failed: %s" e);
  let fs = Fabric.stats fb in
  Alcotest.(check int) "no expiries" 0 fs.Fabric.fs_lease_expiries;
  Alcotest.(check int) "no requeues" 0 fs.Fabric.fs_requeues;
  Fabric.shutdown fb;
  Thread.join w

let test_cache_hits_skip_workers () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "autocfd_fabric_cache_%d" (Unix.getpid ()))
  in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let cache = Sched.Cache.create ~dir () in
  let cfg = { Fabric.default_cfg with Fabric.fb_grace = 5.0 } in
  let fb = Fabric.create ~cfg ~listen:(Fabric.Unix_path (next_sock ())) () in
  let w = serve_thread (Fabric.addr fb) square_spec in
  let r1, s1 = Fabric.run fb ~cache (List.init 5 job) in
  let r2, s2 = Fabric.run fb ~cache (List.init 5 job) in
  expect_squares r1 5;
  expect_squares r2 5;
  Alcotest.(check int) "cold misses" 5 s1.Sched.Pool.ps_misses;
  Alcotest.(check int) "warm hits" 5 s2.Sched.Pool.ps_hits;
  Fabric.shutdown fb;
  Thread.join w;
  Sched.Cache.clear cache;
  try Sys.rmdir dir with Sys_error _ -> ()

let suite =
  [
    ("frame codec round-trip", `Quick, test_frame_roundtrip);
    ("frame reader resyncs on garbage", `Quick, test_frame_resync_on_garbage);
    ("frame checksum rejects mangled bytes", `Quick,
     test_frame_checksum_rejects);
    ("chaos conn delivers exactly once", `Quick,
     test_conn_chaos_exactly_once);
    ("protocol messages round-trip", `Quick, test_msg_codec_roundtrip);
    ("address parsing", `Quick, test_addr_parsing);
    ("end to end over unix socket", `Quick, test_fabric_end_to_end);
    ("end to end over tcp", `Quick, test_fabric_tcp_end_to_end);
    ("degrades without workers", `Quick, test_degrades_without_workers);
    ("spec-less jobs run on the master", `Quick,
     test_speclessness_runs_on_master);
    ("poisoned job quarantined", `Quick, test_quarantine_poisoned_job);
    ("worker death requeues its lease", `Quick, test_worker_death_requeues);
    ("silent worker's lease expires", `Quick, test_lease_expiry_requeues);
    ("heartbeat keeps a slow job leased", `Quick,
     test_heartbeat_keeps_slow_job_leased);
    ("cache hits never touch a worker", `Quick, test_cache_hits_skip_workers);
  ]
