(** Golden tests of the loop-fission pass ({!Autocfd_analysis.Fission}).

    Synthetic mixed nests — fusable field updates interleaved with
    statements the kernel tier cannot take — must split into the expected
    fragments (checked via the [do_fission] provenance tags on the
    distributed AST), nests the dependence analysis must keep whole must
    not split, and every fissioned program must stay bit-identical across
    all four execution engines and against the same program with the
    pass disabled. *)

open Autocfd_fortran
module D = Autocfd.Driver

let parts_spec p = Autocfd.Runspec.(default |> with_parts (Some p))
module E = Autocfd.Experiments
module R = Autocfd.Runspec
module I = Autocfd_interp
module F = Autocfd_analysis.Fission

let header =
  {|c$acfd grid(n, n)
c$acfd status(a, b, c)
      program mix
      parameter (n = 16)
      dimension a(n,n), b(n,n), c(n,n)
      do 10 j = 1, n
      do 10 i = 1, n
      a(i,j) = 1.0
      b(i,j) = 2.0
      c(i,j) = 0.0
   10 continue
|}

let footer = {|      write (*,*) a(3,3), b(3,3), c(3,3)
      end
|}

let program body = header ^ body ^ footer

(* two independent fusable updates plus an IF residue in one nest *)
let mixed_src =
  program
    {|      do 20 j = 2, n - 1
      do 20 i = 2, n - 1
      a(i,j) = b(i,j) * 2.0 + float(i)
      c(i,j) = c(i,j) + 1.0
      if (b(i,j) .gt. 1.0) b(i,j) = b(i,j) - 0.5
   20 continue
|}

(* mutual loop-carried dependence: s1 and s2 feed each other across
   iterations, forming one SCC the pass must not cut — the independent
   IF residue on [c] may still peel off *)
let cycle_src =
  program
    {|      do 20 j = 2, n - 1
      do 20 i = 2, n - 1
      a(i,j) = b(i,j-1) + 1.0
      b(i,j) = a(i,j-1) * 0.5
      if (c(i,j) .lt. 0.0) c(i,j) = 0.0
   20 continue
|}

(* a scalar temporary crossing two statements chains them into one
   dependence group: the pass must never separate the definition of [t]
   from its use *)
let scalar_src =
  program
    {|      do 20 j = 2, n - 1
      do 20 i = 2, n - 1
      t = b(i,j) * 2.0
      a(i,j) = t + 1.0
      if (c(i,j) .lt. 0.0) c(i,j) = 0.0
   20 continue
|}

(* anti-dependence: s1 reads a(i+1,j) before s2 overwrites it, so the
   fragment order must keep the reader's nest before the writer's *)
let backward_src =
  program
    {|      do 20 j = 2, n - 1
      do 20 i = 2, n - 1
      c(i,j) = a(i+1,j) * 0.5
      a(i,j) = b(i,j) + 1.0
      if (b(i,j) .gt. 1.0) b(i,j) = b(i,j) - 0.25
   20 continue
|}

(* every fission fragment of [line], in body order, via the provenance
   tags the pass leaves on the outermost DO of each fragment *)
let frags_of_line unit line =
  List.rev
    (Ast.fold_stmts
       (fun acc (s : Ast.stmt) ->
         match s.Ast.s_kind with
         | Ast.Do d when s.Ast.s_line = line -> (
             match d.Ast.do_fission with Some f -> f :: acc | None -> acc)
         | _ -> acc)
       [] unit.Ast.u_body)

let check_identical_runs name src =
  (* fission on vs off: same outputs, arrays, flops *)
  let t = D.load src
  and t0 =
    D.load ~spec:Autocfd.Runspec.(default |> with_fission false) src
  in
  List.iter
    (fun (ename, engine) ->
      let spec = R.with_engine engine R.default in
      let r = D.run_seq ~spec t and r0 = D.run_seq ~spec t0 in
      Alcotest.(check (list string))
        (Printf.sprintf "%s/%s: output (fission on = off)" name ename)
        r0.D.sq_output r.D.sq_output;
      Alcotest.(check (float 0.0))
        (Printf.sprintf "%s/%s: flops (fission on = off)" name ename)
        r0.D.sq_flops r.D.sq_flops)
    [
      ("tree", I.Spmd.Tree);
      ("compiled", I.Spmd.Compiled);
      ("fused", I.Spmd.Fused);
    ]

(* the fissioned program across all four engines: Tree / Compiled /
   Fused on the simulated cluster (full bit-identity including stats)
   and the real Domains engine (program state; stats are wall clock) *)
let check_four_engines name src parts =
  let t = D.load src in
  let plan = D.plan ~spec:(parts_spec parts) t in
  let run engine =
    D.run ~spec:(R.with_engine engine R.default) plan
  in
  let tree = run I.Spmd.Tree in
  List.iter
    (fun (ename, engine) ->
      let r = run engine in
      let ctx = Printf.sprintf "%s/%s" name ename in
      Alcotest.(check (list string))
        (ctx ^ ": output") tree.I.Spmd.output r.I.Spmd.output;
      Alcotest.(check bool)
        (ctx ^ ": gathered arrays") true
        (List.for_all2
           (fun (na, (aa : I.Value.arr)) (nb, ab) ->
             na = nb && aa.I.Value.data = ab.I.Value.data)
           tree.I.Spmd.gathered r.I.Spmd.gathered);
      Alcotest.(check bool)
        (ctx ^ ": scalars") true
        (tree.I.Spmd.scalars = r.I.Spmd.scalars);
      Alcotest.(check bool)
        (ctx ^ ": flops per rank") true
        (tree.I.Spmd.flops_per_rank = r.I.Spmd.flops_per_rank))
    [
      ("compiled", I.Spmd.Compiled);
      ("fused", I.Spmd.Fused);
      ("domains", I.Spmd.Domains);
    ]

let test_mixed_split () =
  let t = D.load mixed_src in
  Alcotest.(check int) "one nest split" 1 (List.length t.D.splits);
  let s = List.hd t.D.splits in
  Alcotest.(check int) "split at the mixed nest" 12 s.F.sp_line;
  Alcotest.(check (list string)) "loop vars" [ "j"; "i" ] s.F.sp_vars;
  Alcotest.(check int) "three fragments" 3 s.F.sp_nfrags;
  let tags = frags_of_line t.D.inlined 12 in
  Alcotest.(check (list (pair int int)))
    "provenance tags in body order"
    [ (1, 3); (2, 3); (3, 3) ]
    (List.map (fun (f : Ast.fission_tag) -> (f.Ast.fi_frag, f.Ast.fi_nfrags)) tags);
  (* the two all-fusable fragments reach the fused tier; the IF residue
     falls back *)
  let cov = I.Compile.coverage (I.Compile.of_unit ~fuse:true t.D.inlined) in
  let at12 =
    List.filter (fun c -> c.I.Compile.cov_line = 12 && c.I.Compile.cov_frag <> None) cov
  in
  Alcotest.(check int) "fragments covered" 3 (List.length at12);
  Alcotest.(check int) "fragments fused" 2
    (List.length (List.filter (fun c -> c.I.Compile.cov_fused) at12))

let test_cycle_stays_together () =
  let t = D.load cycle_src in
  Alcotest.(check int) "one nest split" 1 (List.length t.D.splits);
  (* only two fragments: the {s1, s2} SCC as one nest, the IF residue as
     the other — never three *)
  Alcotest.(check int) "SCC statements stay in one fragment" 2
    (List.hd t.D.splits).F.sp_nfrags;
  let cov = I.Compile.coverage (I.Compile.of_unit ~fuse:true t.D.inlined) in
  let scc =
    List.find
      (fun c ->
        match c.I.Compile.cov_frag with
        | Some f -> f.Ast.fi_frag = 1
        | None -> false)
      cov
  in
  Alcotest.(check bool) "the SCC fragment still fuses" true
    scc.I.Compile.cov_fused

let test_scalar_stays_together () =
  let t = D.load scalar_src in
  Alcotest.(check int) "one nest split" 1 (List.length t.D.splits);
  Alcotest.(check int) "def and use of t stay in one fragment" 2
    (List.hd t.D.splits).F.sp_nfrags

let test_backward_split () =
  let t = D.load backward_src in
  Alcotest.(check int) "anti-dependence still splits" 1
    (List.length t.D.splits);
  Alcotest.(check int) "three fragments" 3
    (List.hd t.D.splits).F.sp_nfrags

let test_identical () =
  List.iter
    (fun (name, src) -> check_identical_runs name src)
    [
      ("mixed", mixed_src);
      ("cycle", cycle_src);
      ("scalar", scalar_src);
      ("backward", backward_src);
    ]

let test_four_engines () =
  check_four_engines "mixed" mixed_src [| 2; 1 |];
  check_four_engines "backward" backward_src [| 1; 2 |]

let test_reason_round_trip () =
  List.iter
    (fun (r : I.Compile.reason) ->
      Alcotest.(check string)
        ("reason survives to_string/of_string: "
        ^ I.Compile.reason_to_string r)
        (I.Compile.reason_to_string r)
        (I.Compile.reason_to_string
           (I.Compile.reason_of_string (I.Compile.reason_to_string r))))
    [
      I.Compile.Fused;
      I.Compile.Scalar_subscript;
      I.Compile.Non_affine_subscript;
      I.Compile.Bound_loop_var;
      I.Compile.Bound_written_scalar;
      I.Compile.Bound_not_integer;
      I.Compile.Int_division;
      I.Compile.Intrinsic_arity "min";
      I.Compile.Unknown_intrinsic "foo";
      I.Compile.Scalar_assign;
      I.Compile.If_in_body;
      I.Compile.Goto_in_body;
      I.Compile.Io_in_body;
      I.Compile.Other "something new";
    ]

let test_coverage_json_round_trip () =
  let t = D.load mixed_src in
  let cov = I.Compile.coverage (I.Compile.of_unit ~fuse:true t.D.inlined) in
  Alcotest.(check bool) "has fission fragments" true
    (List.exists (fun c -> c.I.Compile.cov_frag <> None) cov);
  let cov' = E.coverage_of_json (E.coverage_to_json cov) in
  Alcotest.(check bool) "coverage rows survive JSON round-trip" true
    (cov = cov')

let suite =
  [
    ("mixed nest splits with provenance", `Quick, test_mixed_split);
    ("loop-carried cycle stays together", `Quick, test_cycle_stays_together);
    ("scalar temporary stays together", `Quick, test_scalar_stays_together);
    ("anti-dependence ordering", `Quick, test_backward_split);
    ("fission on/off bit-identical", `Quick, test_identical);
    ("four engines bit-identical", `Quick, test_four_engines);
    ("reason constructors round-trip", `Quick, test_reason_round_trip);
    ("coverage JSON round-trip", `Quick, test_coverage_json_round_trip);
  ]
