(** Fault injection, reliable transport and checkpoint/restart: schedule
    determinism, exactly-once in-order delivery under loss / duplication /
    corruption, watchdog timeouts with crash diagnostics, and end-to-end
    recovery of SPMD runs (bit-identical results under every recoverable
    seeded schedule, on both execution engines). *)

open Autocfd_mpsim
module D = Autocfd.Driver

let parts_spec p = Autocfd.Runspec.(default |> with_parts (Some p))
module R = Autocfd.Runspec
module I = Autocfd_interp

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Fault plans                                                         *)
(* ------------------------------------------------------------------ *)

let test_schedule_deterministic () =
  let spec = Fault.spec ~seed:7 ~loss:0.3 ~duplication:0.2 ~corruption:0.1 () in
  let draw () =
    let p = Fault.make spec in
    Fault.begin_run p;
    List.init 50 (fun i ->
        let v = Fault.on_send p ~src:(i mod 3) ~dest:((i + 1) mod 3) ~words:8 in
        (v.Fault.sv_drop, v.Fault.sv_duplicate, v.Fault.sv_corrupt,
         v.Fault.sv_delay))
  in
  Alcotest.(check bool) "same spec, same verdicts" true (draw () = draw ());
  let other =
    let p = Fault.make (Fault.spec ~seed:8 ~loss:0.3 ~duplication:0.2
                          ~corruption:0.1 ()) in
    Fault.begin_run p;
    List.init 50 (fun i ->
        let v = Fault.on_send p ~src:(i mod 3) ~dest:((i + 1) mod 3) ~words:8 in
        (v.Fault.sv_drop, v.Fault.sv_duplicate, v.Fault.sv_corrupt,
         v.Fault.sv_delay))
  in
  Alcotest.(check bool) "different seed, different verdicts" true
    (draw () <> other)

let test_verdicts_independent_of_interleaving () =
  (* the verdict for the nth message on a link must not depend on what
     other links did in between *)
  let spec = Fault.spec ~seed:11 ~loss:0.5 () in
  let solo =
    let p = Fault.make spec in
    Fault.begin_run p;
    List.init 20 (fun _ -> (Fault.on_send p ~src:0 ~dest:1 ~words:4).Fault.sv_drop)
  in
  let interleaved =
    let p = Fault.make spec in
    Fault.begin_run p;
    List.init 20 (fun _ ->
        ignore (Fault.on_send p ~src:1 ~dest:0 ~words:4);
        ignore (Fault.on_send p ~src:2 ~dest:1 ~words:4);
        (Fault.on_send p ~src:0 ~dest:1 ~words:4).Fault.sv_drop)
  in
  Alcotest.(check bool) "link stream isolated" true (solo = interleaved)

(* ------------------------------------------------------------------ *)
(* Reliable transport over injected faults                             *)
(* ------------------------------------------------------------------ *)

(* rank 0 streams [n] distinct payloads to rank 1 over the reliable
   transport while the given schedule mangles the wire; returns what
   rank 1 delivered plus both endpoints' stats *)
let stream_under spec n =
  let got = ref [] in
  let stats = Array.make 2 None in
  let faults = Fault.make spec in
  let _ =
    Sim.run ~net:Netmodel.fast ~faults ~nranks:2 (fun c ->
        let t = Reliable.create c in
        if Sim.rank c = 0 then
          for i = 1 to n do
            Reliable.send t ~dest:1 ~tag:2 [| float_of_int i; 0.5 |]
          done
        else
          for _ = 1 to n do
            got := (Reliable.recv t ~src:0 ~tag:2).(0) :: !got
          done;
        Reliable.flush t;
        stats.(Sim.rank c) <- Some (Reliable.stats t))
  in
  (List.rev !got, Option.get stats.(0), Option.get stats.(1))

let expect_seq n = List.init n (fun i -> float_of_int (i + 1))

let test_loss_recovered () =
  let got, s0, _ = stream_under (Fault.spec ~seed:3 ~loss:0.4 ()) 30 in
  Alcotest.(check (list (float 0.0))) "in order exactly once"
    (expect_seq 30) got;
  Alcotest.(check bool) "sender retransmitted" true
    (s0.Reliable.rl_retransmits > 0)

let test_corruption_recovered () =
  let got, _, s1 = stream_under (Fault.spec ~seed:5 ~corruption:0.4 ()) 30 in
  Alcotest.(check (list (float 0.0))) "payloads intact" (expect_seq 30) got;
  Alcotest.(check bool) "checksum caught corruption" true
    (s1.Reliable.rl_checksum_failures > 0)

let test_duplication_suppressed () =
  let got, _, s1 = stream_under (Fault.spec ~seed:9 ~duplication:0.6 ()) 30 in
  Alcotest.(check (list (float 0.0))) "exactly once" (expect_seq 30) got;
  Alcotest.(check bool) "duplicates dropped" true
    (s1.Reliable.rl_dup_suppressed > 0)

let test_everything_at_once () =
  let got, s0, s1 =
    stream_under
      (Fault.spec ~seed:13 ~loss:0.25 ~duplication:0.25 ~corruption:0.25
         ~jitter:1e-5 ())
      40
  in
  Alcotest.(check (list (float 0.0))) "survives combined schedule"
    (expect_seq 40) got;
  Alcotest.(check bool) "transport actually worked for it" true
    (s0.Reliable.rl_retransmits > 0 || s1.Reliable.rl_dup_suppressed > 0)

let test_hostile_wire_survived () =
  (* the worst wire we can draw from one seeded schedule: high-rate
     loss, duplication, reordering and corruption all at once.  Delivery
     must stay exactly-once in-order, and every fault class must
     actually have fired so the schedule cannot quietly go easy. *)
  let spec =
    Fault.spec ~seed:21 ~loss:0.3 ~duplication:0.3 ~corruption:0.3
      ~reorder:0.6 ()
  in
  let faults = Fault.make spec in
  let got = ref [] in
  let stats = Array.make 2 None in
  let _ =
    Sim.run ~net:Netmodel.fast ~faults ~nranks:2 (fun c ->
        let t = Reliable.create c in
        if Sim.rank c = 0 then
          for i = 1 to 50 do
            Reliable.send t ~dest:1 ~tag:2 [| float_of_int i; 0.5 |]
          done
        else
          for _ = 1 to 50 do
            got := (Reliable.recv t ~src:0 ~tag:2).(0) :: !got
          done;
        Reliable.flush t;
        stats.(Sim.rank c) <- Some (Reliable.stats t))
  in
  Alcotest.(check (list (float 0.0))) "exactly once, in order"
    (expect_seq 50) (List.rev !got);
  let c = Fault.counters faults in
  Alcotest.(check bool) "drops fired" true (c.Fault.fc_drops > 0);
  Alcotest.(check bool) "duplicates fired" true (c.Fault.fc_duplicates > 0);
  Alcotest.(check bool) "corruptions fired" true (c.Fault.fc_corruptions > 0);
  Alcotest.(check bool) "reorders fired" true (c.Fault.fc_reorders > 0);
  let s0 = Option.get stats.(0) and s1 = Option.get stats.(1) in
  Alcotest.(check bool) "sender retransmitted" true
    (s0.Reliable.rl_retransmits > 0);
  Alcotest.(check bool) "receiver rejected corruption" true
    (s1.Reliable.rl_checksum_failures > 0);
  Alcotest.(check bool) "receiver suppressed duplicates" true
    (s1.Reliable.rl_dup_suppressed > 0)

let test_reorder_property () =
  (* adversarial delivery shuffle: across many seeds a heavy reorder
     rate — alone and mixed with loss and duplication — must never break
     exactly-once in-order delivery.  The schedule is drawn per-link, so
     the shuffle verdicts replay deterministically; we also require that
     the shuffles actually fired (fc_reorders > 0 overall) so the suite
     cannot silently pass against a wire that stayed FIFO. *)
  let total_reorders = ref 0 and total_buffered = ref 0 in
  for seed = 1 to 12 do
    let loss = if seed mod 2 = 0 then 0.15 else 0.0 in
    let duplication = if seed mod 3 = 0 then 0.2 else 0.0 in
    let spec = Fault.spec ~seed ~reorder:0.6 ~loss ~duplication () in
    let faults = Fault.make spec in
    let got = ref [] in
    let stats = Array.make 2 None in
    let _ =
      Sim.run ~net:Netmodel.fast ~faults ~nranks:2 (fun c ->
          let t = Reliable.create c in
          if Sim.rank c = 0 then
            for i = 1 to 30 do
              Reliable.send t ~dest:1 ~tag:2 [| float_of_int i; 0.5 |]
            done
          else
            for _ = 1 to 30 do
              got := (Reliable.recv t ~src:0 ~tag:2).(0) :: !got
            done;
          Reliable.flush t;
          stats.(Sim.rank c) <- Some (Reliable.stats t))
    in
    if List.rev !got <> expect_seq 30 then
      Alcotest.failf "seed %d: delivery not exactly-once in-order" seed;
    let c = Fault.counters faults in
    if c.Fault.fc_reorders < 0 then Alcotest.fail "negative reorder count";
    total_reorders := !total_reorders + c.Fault.fc_reorders;
    let s1 = Option.get stats.(1) in
    (* an overtaken envelope arrives early: the receiver either buffers
       it (out-of-order seq) or, after a retransmit, suppresses it *)
    total_buffered :=
      !total_buffered + s1.Reliable.rl_dup_suppressed
      + s1.Reliable.rl_checksum_failures
  done;
  Alcotest.(check bool) "some schedules actually shuffled the wire" true
    (!total_reorders > 0)

let test_reorder_verdicts_deterministic () =
  (* the seeded shuffle must replay: same spec, same sv_reorder stream *)
  let spec = Fault.spec ~seed:17 ~reorder:0.5 () in
  let draw () =
    let p = Fault.make spec in
    Fault.begin_run p;
    List.init 40 (fun _ ->
        (Fault.on_send p ~src:0 ~dest:1 ~words:8).Fault.sv_reorder)
  in
  let a = draw () in
  Alcotest.(check bool) "replayable" true (a = draw ());
  Alcotest.(check bool) "both outcomes drawn" true
    (List.mem true a && List.mem false a)

let test_degraded_link_slows_elapsed () =
  let elapsed faults =
    let stats =
      Sim.run ~net:Netmodel.ethernet_100 ?faults ~nranks:2 (fun c ->
          if Sim.rank c = 0 then
            Sim.send c ~dest:1 ~tag:0 (Array.make 4000 1.0)
          else ignore (Sim.recv c ~src:0 ~tag:0))
    in
    stats.Sim.elapsed
  in
  let clean = elapsed None in
  let slow =
    elapsed
      (Some (Fault.make (Fault.spec ~seed:1 ~degrade:[ (0, 1, 10.0) ] ())))
  in
  Alcotest.(check bool) "10x degraded wire time shows up" true
    (slow > 5.0 *. clean)

let test_stall_adds_blocked_time () =
  let stats =
    Sim.run ~net:Netmodel.fast
      ~faults:
        (Fault.make
           (Fault.spec ~seed:1
              ~stalls:
                [ { Fault.sl_rank = 1; sl_at = Fault.At_op 1;
                    sl_duration = 5.0 } ]
              ()))
      ~nranks:2
      (fun c ->
        if Sim.rank c = 0 then Sim.send c ~dest:1 ~tag:0 [| 1.0 |]
        else ignore (Sim.recv c ~src:0 ~tag:0);
        Sim.barrier c)
  in
  Alcotest.(check bool) "straggler pushes the finish time" true
    (stats.Sim.elapsed >= 5.0)

(* ------------------------------------------------------------------ *)
(* Watchdog: deadline receives, try_recv, crash diagnostics            *)
(* ------------------------------------------------------------------ *)

let test_recv_deadline_expires () =
  let expired = ref false and t_after = ref 0.0 in
  let _ =
    Sim.run ~net:Netmodel.fast ~nranks:2 (fun c ->
        if Sim.rank c = 1 then begin
          (match Sim.recv_deadline c ~src:0 ~tag:4 ~deadline:2.5 with
          | None -> expired := true
          | Some _ -> ());
          t_after := Sim.time c
        end)
  in
  Alcotest.(check bool) "no sender: deadline expires" true !expired;
  Alcotest.(check bool) "clock advanced to the deadline" true (!t_after >= 2.5)

let test_recv_deadline_delivers () =
  let got = ref [||] in
  let _ =
    Sim.run ~net:Netmodel.fast ~nranks:2 (fun c ->
        if Sim.rank c = 0 then Sim.send c ~dest:1 ~tag:4 [| 6.0 |]
        else
          match Sim.recv_deadline c ~src:0 ~tag:4 ~deadline:1e6 with
          | Some p -> got := p
          | None -> ())
  in
  Alcotest.(check bool) "message beats deadline" true (!got = [| 6.0 |])

let test_try_recv () =
  let before = ref None and after = ref None in
  let _ =
    Sim.run ~net:Netmodel.fast ~nranks:2 (fun c ->
        if Sim.rank c = 0 then Sim.send c ~dest:1 ~tag:8 [| 3.0 |]
        else begin
          before := Sim.try_recv c ~src:0 ~tag:8;
          (* advance past any flight time so the message has arrived *)
          Sim.advance c 1.0;
          after := Sim.try_recv c ~src:0 ~tag:8
        end)
  in
  Alcotest.(check bool) "nothing arrived yet" true (!before = None);
  Alcotest.(check bool) "delivered after the flight" true
    (match !after with Some [| 3.0 |] -> true | _ -> false)

let test_crash_raises_timeout_with_diagnostics () =
  match
    Sim.run ~net:Netmodel.fast
      ~faults:
        (Fault.make
           (Fault.spec ~seed:1
              ~crashes:[ { Fault.cr_rank = 1; cr_at = Fault.At_op 1 } ]
              ()))
      ~nranks:2
      (fun c -> Sim.barrier c)
  with
  | exception Sim.Timeout msg ->
      Alcotest.(check bool) "names the crashed rank" true
        (contains msg "rank 1: crashed");
      Alcotest.(check bool) "names the survivor's collective" true
        (contains msg "rank 0: blocked in barrier")
  | _ -> Alcotest.fail "expected Sim.Timeout"

let test_fired_fault_turns_deadlock_into_timeout () =
  (* same stuck shape as a deadlock, but a fault has fired: must be
     reported as Timeout, not program error *)
  let run faults =
    Sim.run ~net:Netmodel.fast ?faults ~nranks:2 (fun c ->
        if Sim.rank c = 0 then Sim.send c ~dest:1 ~tag:0 [| 1.0 |]
        else ignore (Sim.recv c ~src:0 ~tag:0))
  in
  (match run (Some (Fault.make (Fault.spec ~seed:2 ~loss:1.0 ()))) with
  | exception Sim.Timeout _ -> ()
  | exception Sim.Deadlock _ -> Alcotest.fail "lossy stall must be Timeout"
  | _ -> Alcotest.fail "expected Sim.Timeout");
  match run None with
  | exception Sim.Deadlock _ -> Alcotest.fail "fault-free run must not stall"
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* End-to-end SPMD recovery                                            *)
(* ------------------------------------------------------------------ *)

let jacobi_src =
  {|
c$acfd grid(m, n)
c$acfd status(u, w)
      program t
      parameter (m = 13, n = 9)
      real u(m, n), w(m, n)
      real resid
      integer i, j, it
      do i = 1, m
        do j = 1, n
          u(i, j) = float(i) * 0.3 + float(j)
        end do
      end do
      do it = 1, 6
        do i = 2, m - 1
          do j = 2, n - 1
            w(i, j) = 0.25 * (u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1))
          end do
        end do
        resid = 0.0
        do i = 2, m - 1
          do j = 2, n - 1
            resid = resid + abs(w(i, j) - u(i, j))
            u(i, j) = w(i, j)
          end do
        end do
        write(*,*) resid
      end do
      write(*,*) u(m/2, n/2)
      end
|}

let same_state (a : I.Spmd.result) (b : I.Spmd.result) =
  List.length a.I.Spmd.gathered = List.length b.I.Spmd.gathered
  && List.for_all2
       (fun (na, aa) (nb, ab) ->
         na = nb && aa.I.Value.data = ab.I.Value.data)
       a.I.Spmd.gathered b.I.Spmd.gathered
  && a.I.Spmd.scalars = b.I.Spmd.scalars
  && a.I.Spmd.output = b.I.Spmd.output

let recovery_case ~engine spec =
  let t = D.load jacobi_src in
  let plan = D.plan ~spec:(parts_spec [| 2; 2 |]) t in
  let clean = D.run ~spec:(R.with_engine engine R.default) plan in
  let faults = Fault.make spec in
  let faulty =
    D.run
      ~spec:
        R.(
          default |> with_engine engine
          |> with_faults (Some faults)
          |> with_recovery (Some I.Spmd.default_recovery))
      plan
  in
  (clean, faulty, faults)

let crash_spec =
  Fault.spec ~seed:21
    ~crashes:[ { Fault.cr_rank = 1; cr_at = Fault.At_op 9 } ]
    ()

let test_crash_recovery_fused () =
  let clean, faulty, _ = recovery_case ~engine:I.Spmd.Fused crash_spec in
  Alcotest.(check bool) "restarted" true
    (faulty.I.Spmd.resilience.I.Spmd.rs_restarts = 1);
  Alcotest.(check bool) "checkpointed" true
    (faulty.I.Spmd.resilience.I.Spmd.rs_checkpoints > 0);
  Alcotest.(check bool) "bit-identical after crash+restart" true
    (same_state clean faulty)

let test_crash_recovery_tree () =
  let clean, faulty, _ = recovery_case ~engine:I.Spmd.Tree crash_spec in
  Alcotest.(check bool) "bit-identical on the tree engine too" true
    (same_state clean faulty && faulty.I.Spmd.resilience.I.Spmd.rs_restarts = 1)

let test_crash_without_recovery_times_out () =
  let t = D.load jacobi_src in
  let plan = D.plan ~spec:(parts_spec [| 2; 2 |]) t in
  match
    D.run
      ~spec:(R.with_faults (Some (Fault.make crash_spec)) R.default)
      plan
  with
  | exception Sim.Timeout _ -> ()
  | _ -> Alcotest.fail "expected Sim.Timeout without recovery"

let test_runtime_error_mid_body_propagates () =
  (* a dynamic error (integer division by zero at i = 7, which only rank
     1 owns under a 2x1 partition of m = 12) striking mid-body, after a
     halo exchange has already run, must surface as Rank_failure naming
     the failing rank and wrapping the engine's Runtime_error — on both
     engines *)
  let src =
    {|
c$acfd grid(m, n)
c$acfd status(u, w)
      program t
      parameter (m = 12, n = 8)
      real u(m, n), w(m, n)
      integer i, j
      do i = 1, m
        do j = 1, n
          u(i, j) = float(i + j)
        end do
      end do
      do i = 2, m - 1
        do j = 1, n
          w(i, j) = 0.5 * (u(i-1, j) + u(i+1, j))
        end do
      end do
      do i = 2, m - 1
        do j = 1, n
          u(i, j) = w(i, j) + float(n / mod(i, 7))
        end do
      end do
      write(*,*) u(1, 1)
      end
|}
  in
  let t = D.load src in
  let plan = D.plan ~spec:(parts_spec [| 2; 1 |]) t in
  List.iter
    (fun engine ->
      match D.run ~spec:(R.with_engine engine R.default) plan with
      | exception Sim.Rank_failure (r, I.Machine.Runtime_error _) ->
          Alcotest.(check int) "failure on the owning rank" 1 r
      | exception e ->
          Alcotest.failf "expected Rank_failure(Runtime_error), got %s"
            (Printexc.to_string e)
      | _ -> Alcotest.fail "expected a failure")
    [ I.Spmd.Tree; I.Spmd.Fused ]

(* ------------------------------------------------------------------ *)
(* Chaos property suite: randomized recoverable schedules              *)
(* ------------------------------------------------------------------ *)

let chaos_schedule i =
  (* 20+ distinct recoverable schedules derived from the index: rates
     cycle through loss/dup/corrupt mixes, every 4th adds jitter, every
     5th a straggler, every 6th a crash *)
  let loss = 0.08 *. float_of_int (i mod 3) in
  let dup = 0.06 *. float_of_int ((i / 3) mod 3) in
  let corrupt = 0.05 *. float_of_int ((i / 9) mod 3) in
  let jitter = if i mod 4 = 0 then 2e-6 *. float_of_int (1 + i) else 0.0 in
  let stalls =
    if i mod 5 = 0 then
      [ { Fault.sl_rank = i mod 4; sl_at = Fault.At_op (3 + i);
          sl_duration = 1e-3 } ]
    else []
  in
  let crashes =
    if i mod 6 = 0 then
      [ { Fault.cr_rank = 1 + (i mod 3); cr_at = Fault.At_op (5 + i) } ]
    else []
  in
  Fault.spec ~seed:(1000 + i) ~loss ~duplication:dup ~corruption:corrupt
    ~jitter ~stalls ~crashes ()

let test_chaos_property () =
  let t = D.load jacobi_src in
  let plan = D.plan ~spec:(parts_spec [| 2; 2 |]) t in
  let clean = D.run plan in
  for i = 1 to 24 do
    let spec = chaos_schedule i in
    let run () =
      D.run
        ~spec:
          R.(
            default
            |> with_faults (Some (Fault.make spec))
            |> with_recovery (Some I.Spmd.default_recovery))
        plan
    in
    let faulty = run () in
    if not (same_state clean faulty) then
      Alcotest.failf "schedule %d diverged from the fault-free run" i;
    (* determinism: the same seeded schedule replays to the same stats *)
    let again = run () in
    if
      again.I.Spmd.stats <> faulty.I.Spmd.stats
      || again.I.Spmd.resilience <> faulty.I.Spmd.resilience
    then Alcotest.failf "schedule %d is not deterministic" i
  done

let suite =
  [
    ("schedule deterministic", `Quick, test_schedule_deterministic);
    ( "verdicts independent of interleaving", `Quick,
      test_verdicts_independent_of_interleaving );
    ("loss recovered", `Quick, test_loss_recovered);
    ("corruption recovered", `Quick, test_corruption_recovered);
    ("duplication suppressed", `Quick, test_duplication_suppressed);
    ("combined schedule survives", `Quick, test_everything_at_once);
    ("hostile wire survived", `Quick, test_hostile_wire_survived);
    ("reorder property (12 seeds)", `Quick, test_reorder_property);
    ( "reorder verdicts deterministic", `Quick,
      test_reorder_verdicts_deterministic );
    ("degraded link slows elapsed", `Quick, test_degraded_link_slows_elapsed);
    ("stall adds blocked time", `Quick, test_stall_adds_blocked_time);
    ("recv_deadline expires", `Quick, test_recv_deadline_expires);
    ("recv_deadline delivers", `Quick, test_recv_deadline_delivers);
    ("try_recv", `Quick, test_try_recv);
    ( "crash raises Timeout with diagnostics", `Quick,
      test_crash_raises_timeout_with_diagnostics );
    ( "fired fault reclassifies stall as Timeout", `Quick,
      test_fired_fault_turns_deadlock_into_timeout );
    ("crash recovery (fused)", `Quick, test_crash_recovery_fused);
    ("crash recovery (tree)", `Quick, test_crash_recovery_tree);
    ( "crash without recovery times out", `Quick,
      test_crash_without_recovery_times_out );
    ( "runtime error mid-body propagates", `Quick,
      test_runtime_error_mid_body_propagates );
    ("chaos property (24 schedules)", `Slow, test_chaos_property);
  ]
