(** Tests for the Fortran 77 + MPI source backend: the emitted program
    must re-parse with our own frontend, contain the expected generated
    machinery, and reproduce the balanced block-bound formulas. *)

open Autocfd_fortran
module D = Autocfd.Driver

let parts_spec p = Autocfd.Runspec.(default |> with_parts (Some p))

let heat_src =
  {|
c$acfd grid(m, n)
c$acfd status(u, w)
      program heat
      parameter (m = 20, n = 12)
      real u(m, n), w(m, n)
      real errmax
      integer i, j, it
      do i = 1, m
        do j = 1, n
          u(i, j) = float(i)
        end do
      end do
      do it = 1, 10
        do i = 2, m - 1
          do j = 2, n - 1
            w(i, j) = 0.25 * (u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1))
          end do
        end do
        errmax = 0.0
        do i = 2, m - 1
          do j = 2, n - 1
            errmax = max(errmax, abs(w(i, j) - u(i, j)))
            u(i, j) = w(i, j)
          end do
        end do
        if (errmax .lt. 1.0e-6) goto 100
      end do
 100  continue
      write(*,*) it, errmax
      end
|}

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let emit parts =
  let t = D.load heat_src in
  let plan = D.plan ~spec:(parts_spec parts) t in
  D.mpi_source plan

let test_emitted_reparses () =
  let text = emit [| 2; 2 |] in
  match Parser.parse text with
  | p ->
      (* main + acfdini + one subroutine per sync point *)
      Alcotest.(check bool) "several units" true
        (List.length p.Ast.p_units >= 3);
      Alcotest.(check bool) "has main" true
        (List.exists (fun u -> u.Ast.u_kind = Ast.Main) p.Ast.p_units);
      Alcotest.(check bool) "has acfdini" true
        (List.exists (fun u -> u.Ast.u_name = "acfdini") p.Ast.p_units)
  | exception Loc.Error (loc, msg) ->
      Alcotest.failf "emitted MPI source does not re-parse at %a: %s\n%s"
        Loc.pp loc msg text

let test_emitted_machinery () =
  let text = emit [| 2; 2 |] in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true
        (contains text needle))
    [
      "call mpi_init(acfder)";
      "call mpi_finalize(acfder)";
      "call mpi_comm_rank(mpi_comm_world, acfdrk, acfder)";
      "call mpi_comm_size(mpi_comm_world, acfdnp, acfder)";
      "call mpi_allreduce(acfdt1, errmax, 1, mpi_real8, mpi_max,";
      "call mpi_send(acfdbf, acfdn, mpi_real8, acfdnb,";
      "call mpi_recv(acfdbf, acfdn, mpi_real8, acfdnb,";
      "subroutine acfdini";
      "subroutine acfdx1";
      "if (acfdrk .eq. 0) then";  (* guarded output *)
      "max(2, acfdl0)";  (* clipped loop bounds *)
    ]

let test_no_internal_constructs_remain () =
  let text = emit [| 2; 2 |] in
  Alcotest.(check bool) "no acfd_exchange placeholder" false
    (contains text "acfd_exchange");
  Alcotest.(check bool) "no pipeline placeholder" false
    (contains text "acfd_pipe_")

let test_block_bound_formulas () =
  (* grid 20 x 12, 3 x 2: dimension 0 splits 7/7/6, so the emitted init
     uses base 6 rem 2 *)
  let text = emit [| 3; 2 |] in
  Alcotest.(check bool) "lo formula" true
    (contains text "acfdl0 = acfdc0 * 6 + min(acfdc0, 2) + 1");
  Alcotest.(check bool) "remainder adjust" true
    (contains text "if (acfdc0 .lt. 2) acfdh0 = acfdh0 + 1")

let test_pipeline_program_emits_pipe_subs () =
  let gs =
    {|
c$acfd grid(m, n)
c$acfd status(v)
      program gs
      parameter (m = 16, n = 12)
      real v(m, n)
      integer i, j, it
      do i = 1, m
        do j = 1, n
          v(i, j) = float(i + j)
        end do
      end do
      do it = 1, 5
        do i = 2, m - 1
          do j = 2, n - 1
            v(i,j) = 0.25 * (v(i-1,j) + v(i+1,j) + v(i,j-1) + v(i,j+1))
          end do
        end do
      end do
      write(*,*) v(2, 2)
      end
|}
  in
  let t = D.load gs in
  let plan = D.plan ~spec:(parts_spec [| 2; 2 |]) t in
  let text = D.mpi_source plan in
  Alcotest.(check bool) "pipeline wait subroutine" true
    (contains text "subroutine acfdp");
  Alcotest.(check bool) "pipeline comment" true
    (contains text "mirror-image pipeline");
  (match Parser.parse text with
  | _ -> ()
  | exception Loc.Error (loc, msg) ->
      Alcotest.failf "pipelined MPI source does not re-parse at %a: %s"
        Loc.pp loc msg)

let test_serial_program_emits_gather () =
  let diag =
    {|
c$acfd grid(m, n)
c$acfd status(v)
      program diag
      parameter (m = 14, n = 10)
      real v(m, n)
      integer i, j
      do i = 1, m
        do j = 1, n
          v(i, j) = float(i)
        end do
      end do
      do j = 2, n - 1
        do i = 2, m - 1
          v(i,j) = 0.5 * (v(i, j-1) + v(i+1, j-1))
        end do
      end do
      write(*,*) v(2, 2)
      end
|}
  in
  let t = D.load diag in
  let plan = D.plan ~spec:(parts_spec [| 2; 1 |]) t in
  let text = D.mpi_source plan in
  Alcotest.(check bool) "gather subroutine emitted" true
    (contains text "subroutine acfdg");
  Alcotest.(check bool) "uses mpi_bcast for owner regions" true
    (contains text "call mpi_bcast(acfdbf, acfdn, mpi_real8, acfdr,");
  match Parser.parse text with
  | _ -> ()
  | exception Loc.Error (loc, msg) ->
      Alcotest.failf "gather MPI source does not re-parse at %a: %s" Loc.pp
        loc msg

let test_case_studies_emit_and_reparse () =
  List.iter
    (fun (src, parts) ->
      let t = D.load src in
      let plan = D.plan ~spec:(parts_spec parts) t in
      let text = D.mpi_source plan in
      match Parser.parse text with
      | p ->
          Alcotest.(check bool) "has generated subroutines" true
            (List.length p.Ast.p_units > 2)
      | exception Loc.Error (loc, msg) ->
          Alcotest.failf "case study MPI source fails to re-parse at %a: %s"
            Loc.pp loc msg)
    [
      (Autocfd_apps.Sprayer.source ~ni:40 ~nj:20 (), [| 2; 2 |]);
      (Autocfd_apps.Aerofoil.source ~ni:16 ~nj:10 ~nk:6 (), [| 2; 2; 1 |]);
    ]

let suite =
  [
    ("emitted source re-parses", `Quick, test_emitted_reparses);
    ("emitted machinery", `Quick, test_emitted_machinery);
    ("no internal constructs remain", `Quick, test_no_internal_constructs_remain);
    ("block bound formulas", `Quick, test_block_bound_formulas);
    ("pipeline subs", `Quick, test_pipeline_program_emits_pipe_subs);
    ("serial gather sub", `Quick, test_serial_program_emits_gather);
    ("case studies emit + reparse", `Quick, test_case_studies_emit_and_reparse);
  ]
