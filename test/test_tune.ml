(** Tests of the auto-tuner ({!Autocfd.Tune}) and the Runspec codec's
    cross-version compatibility.

    Pareto pruning is checked against hand-built entry sets: strict
    domination removes exactly the dominated points, exact ties never
    dominate each other (and collapse to one representative preferring a
    measured wall clock), and degenerate inputs where every point varies
    along a single axis reduce to a single-element frontier.  The codec
    test feeds a pre-tune Runspec document (no plan-time fields) through
    [of_json] and checks it decodes to the defaults and re-encodes to
    the current canonical form. *)

module T = Autocfd.Tune
module R = Autocfd.Runspec
module J = Autocfd_obs.Json

let entry ?(spec = R.default) ?(parts = [| 2; 2 |]) ?wall time comm mem =
  {
    T.te_spec = spec;
    T.te_parts = parts;
    T.te_metrics =
      { T.tm_time = time; T.tm_comm = comm; T.tm_mem = mem; T.tm_wall = wall };
  }

let metrics e = e.T.te_metrics

let test_dominates () =
  let a = metrics (entry 1.0 10.0 100.0) in
  let b = metrics (entry 2.0 20.0 200.0) in
  let tie = metrics (entry 1.0 10.0 100.0) in
  Alcotest.(check bool) "strictly better on all axes dominates" true
    (T.dominates a b);
  Alcotest.(check bool) "strictly worse does not dominate" false
    (T.dominates b a);
  Alcotest.(check bool) "exact tie does not dominate" false
    (T.dominates a tie);
  Alcotest.(check bool) "exact tie does not dominate (sym)" false
    (T.dominates tie a);
  (* better on one axis, equal on the rest: still dominates *)
  let c = metrics (entry 1.0 9.0 100.0) in
  Alcotest.(check bool) "single-axis improvement dominates" true
    (T.dominates c a);
  (* better on one axis, worse on another: incomparable *)
  let d = metrics (entry 0.5 50.0 100.0) in
  Alcotest.(check bool) "trade-off does not dominate (1)" false
    (T.dominates d a);
  Alcotest.(check bool) "trade-off does not dominate (2)" false
    (T.dominates a d)

let test_frontier_prunes_dominated () =
  let good = entry 1.0 10.0 100.0 in
  let dominated = entry 2.0 20.0 200.0 in
  let tradeoff = entry 0.5 50.0 300.0 in
  let f = T.frontier [ dominated; good; tradeoff ] in
  Alcotest.(check int) "only non-dominated survive" 2 (List.length f);
  Alcotest.(check bool) "no frontier entry dominates another" false
    (List.exists
       (fun e ->
         List.exists
           (fun o -> o != e && T.dominates (metrics o) (metrics e))
           f)
       f);
  (* report order: ascending time *)
  Alcotest.(check (list (float 0.0)))
    "sorted by time" [ 0.5; 1.0 ]
    (List.map (fun e -> (metrics e).T.tm_time) f)

let test_frontier_single_axis () =
  (* all points identical except one axis: the frontier degenerates to
     the single minimal point *)
  let times = [ 5.0; 3.0; 4.0; 3.5 ] in
  let f = T.frontier (List.map (fun t -> entry t 10.0 100.0) times) in
  Alcotest.(check int) "time-only frontier is one point" 1 (List.length f);
  Alcotest.(check (float 0.0)) "the minimum" 3.0
    (metrics (List.hd f)).T.tm_time;
  let f = T.frontier (List.map (fun c -> entry 1.0 c 100.0) times) in
  Alcotest.(check int) "comm-only frontier is one point" 1 (List.length f);
  let f = T.frontier (List.map (fun m -> entry 1.0 10.0 m) times) in
  Alcotest.(check int) "mem-only frontier is one point" 1 (List.length f)

let test_frontier_tie_collapse () =
  (* exact metric ties collapse to one representative, preferring a
     measured wall clock *)
  let plain = entry 1.0 10.0 100.0 in
  let walled = entry ~wall:0.25 1.0 10.0 100.0 in
  let f = T.frontier [ plain; walled ] in
  Alcotest.(check int) "tie collapses" 1 (List.length f);
  Alcotest.(check bool) "wall-measured representative" true
    ((metrics (List.hd f)).T.tm_wall = Some 0.25)

let test_winner_deterministic () =
  let a = entry ~parts:[| 4; 1 |] 1.0 10.0 100.0 in
  let b = entry ~parts:[| 1; 4 |] 1.0 5.0 100.0 in
  let w = T.winner [ a; b ] in
  Alcotest.(check (float 0.0)) "time tie broken by comm" 5.0
    (metrics w).T.tm_comm;
  (* default knobs win exact metric ties over non-default ones *)
  let ff =
    entry ~spec:R.(with_combine Autocfd_syncopt.Optimizer.First_fit default)
      1.0 10.0 100.0
  in
  let w = T.winner [ ff; a ] in
  Alcotest.(check bool) "optimal combining preferred on ties" true
    (w.T.te_spec.R.combine = Autocfd_syncopt.Optimizer.Optimal);
  Alcotest.check_raises "empty input"
    (Invalid_argument "Tune.winner: no points") (fun () ->
      ignore (T.winner []))

let heat_src =
  {|
c$acfd grid(ni, nj)
c$acfd status(u, unew)
      program heat
      parameter (ni = 20, nj = 10)
      real u(ni, nj), unew(ni, nj)
      integer i, j, iter
      do i = 1, ni
        do j = 1, nj
          u(i, j) = float(i + j)
        end do
      end do
      do iter = 1, 3
        do i = 2, ni - 1
          do j = 2, nj - 1
            unew(i,j) = 0.25 * (u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1))
          end do
        end do
        do i = 2, ni - 1
          do j = 2, nj - 1
            u(i, j) = unew(i, j)
          end do
        end do
      end do
      write(*,*) u(5,5)
      end
|}

let test_points_enumeration () =
  let t = Autocfd.Driver.load heat_src in
  let pts = T.points T.Default t in
  (* default grid: nprocs {2,3,4,6} x feasible 2-d factorizations x
     2 combine strategies; every point carries an explicit shape *)
  Alcotest.(check bool) "non-empty" true (pts <> []);
  List.iter
    (fun (s : R.t) ->
      match s.R.parts with
      | None -> Alcotest.fail "point without explicit shape"
      | Some p ->
          Alcotest.(check int) "shape matches nprocs" s.R.nprocs
            (Array.fold_left ( * ) 1 p))
    pts;
  (* all distinct as config points *)
  let keys = List.map (fun s -> J.canonical (R.to_json s)) pts in
  Alcotest.(check int) "points are distinct"
    (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_eval_deterministic () =
  let spec = R.(default |> with_parts (Some [| 2; 2 |])) in
  let eval () =
    T.entry_to_json
      (T.eval ~machine:Autocfd.Experiments.machine ~source:heat_src spec)
  in
  Alcotest.(check string) "eval is deterministic"
    (J.canonical (eval ())) (J.canonical (eval ()))

let test_entry_json_round_trip () =
  let e =
    T.eval ~machine:Autocfd.Experiments.machine ~source:heat_src
      R.(default |> with_parts (Some [| 2; 1 |]))
  in
  let e' = T.entry_of_json (T.entry_to_json e) in
  Alcotest.(check string) "entry survives the JSON round-trip"
    (J.canonical (T.entry_to_json e))
    (J.canonical (T.entry_to_json e'))

(* ------------------------------------------------------------------ *)
(* Runspec codec compatibility across versions                         *)
(* ------------------------------------------------------------------ *)

let plan_time_fields = [ "nprocs"; "parts"; "combine"; "fission"; "fuse" ]

let strip_plan_time = function
  | J.Obj fields ->
      J.Obj
        (List.filter (fun (n, _) -> not (List.mem n plan_time_fields)) fields)
  | j -> j

let test_runspec_backward_compat () =
  (* a document written by the pre-tune codec: no plan-time fields *)
  let old = strip_plan_time (R.to_json R.default) in
  let decoded = R.of_json old in
  Alcotest.(check int) "absent nprocs decodes to default" 4 decoded.R.nprocs;
  Alcotest.(check bool) "absent parts decodes to None" true
    (decoded.R.parts = None);
  Alcotest.(check bool) "absent combine decodes to Optimal" true
    (decoded.R.combine = Autocfd_syncopt.Optimizer.Optimal);
  Alcotest.(check bool) "absent fission decodes to true" true
    decoded.R.fission;
  Alcotest.(check bool) "absent fuse decodes to true" true decoded.R.fuse;
  (* and re-encodes to exactly the current canonical default *)
  Alcotest.(check string) "old document re-encodes to the v-next default"
    (J.canonical (R.to_json R.default))
    (J.canonical (R.to_json decoded))

let test_runspec_forward_round_trip () =
  (* a fully non-default v-next spec survives the round-trip *)
  let spec =
    R.(
      default
      |> with_engine Autocfd_interp.Spmd.Domains
      |> with_nprocs 6
      |> with_parts (Some [| 3; 2; 1 |])
      |> with_combine Autocfd_syncopt.Optimizer.First_fit
      |> with_fission false |> with_fuse false)
  in
  let spec' = R.of_json (R.to_json spec) in
  Alcotest.(check string) "v-next spec canonical round-trip"
    (J.canonical (R.to_json spec))
    (J.canonical (R.to_json spec'));
  Alcotest.(check bool) "parts decoded" true (spec'.R.parts = Some [| 3; 2; 1 |]);
  Alcotest.(check bool) "fuse decoded" true (spec'.R.fuse = false)

let test_parts_string_codec () =
  Alcotest.(check string) "parts_to_string" "3x2x1"
    (R.parts_to_string [| 3; 2; 1 |]);
  Alcotest.(check bool) "parts_of_string round-trip" true
    (R.parts_of_string "3x2x1" = [| 3; 2; 1 |]);
  Alcotest.check_raises "malformed shape raises"
    (J.Parse_error "Runspec.of_json: bad partition shape \"3xtwo\"")
    (fun () -> ignore (R.parts_of_string "3xtwo"))

let suite =
  [
    ("dominance relation", `Quick, test_dominates);
    ("frontier prunes dominated points", `Quick, test_frontier_prunes_dominated);
    ("single-axis degenerate frontiers", `Quick, test_frontier_single_axis);
    ("metric ties collapse, preferring wall", `Quick, test_frontier_tie_collapse);
    ("winner is deterministic", `Quick, test_winner_deterministic);
    ("point enumeration", `Quick, test_points_enumeration);
    ("eval is deterministic", `Quick, test_eval_deterministic);
    ("entry JSON round-trip", `Quick, test_entry_json_round_trip);
    ("runspec backward compatibility", `Quick, test_runspec_backward_compat);
    ("runspec v-next round-trip", `Quick, test_runspec_forward_round_trip);
    ("partition shape string codec", `Quick, test_parts_string_codec);
  ]
