(** Tests for the Fortran interpreter: values/arrays, expression semantics
    (integer arithmetic, intrinsics, implicit typing), statement execution
    (GOTO, DO variants, DATA, READ/WRITE). *)

open Autocfd_fortran
module I = Autocfd_interp

let run ?(input = []) src =
  let u = Inline.program (Parser.parse src) in
  let m = I.Machine.create ~input u in
  I.Machine.run m;
  m

let out m = I.Machine.output m

let check_output name expected src =
  Alcotest.(check (list string)) name expected (out (run src))

(* ------------------------------------------------------------------ *)
(* Value / arrays                                                      *)
(* ------------------------------------------------------------------ *)

let test_array_column_major () =
  let a = I.Value.make_array [| (1, 3); (1, 2) |] in
  Alcotest.(check int) "size" 6 (I.Value.size a);
  (* Fortran order: first index varies fastest *)
  Alcotest.(check int) "(1,1)" 0 (I.Value.linear_index a [| 1; 1 |]);
  Alcotest.(check int) "(2,1)" 1 (I.Value.linear_index a [| 2; 1 |]);
  Alcotest.(check int) "(1,2)" 3 (I.Value.linear_index a [| 1; 2 |]);
  Alcotest.(check int) "(3,2)" 5 (I.Value.linear_index a [| 3; 2 |])

let test_array_custom_bounds () =
  let a = I.Value.make_array [| (0, 4); (-1, 1) |] in
  Alcotest.(check int) "size" 15 (I.Value.size a);
  I.Value.set a [| 0; -1 |] 7.0;
  Alcotest.(check (float 0.0)) "get" 7.0 (I.Value.get a [| 0; -1 |]);
  Alcotest.(check bool) "oob" true
    (match I.Value.get a [| 5; 0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_array_rank3_boundaries () =
  (* rank-3 stride/base accessors at the corners: mixed lower bounds
     (positive, zero, negative), so the precomputed base offset is load
     bearing — the halo blit planner indexes neighbour slabs through
     exactly these strides *)
  let a = I.Value.make_array [| (2, 5); (0, 3); (-1, 2) |] in
  Alcotest.(check int) "rank" 3 (I.Value.rank a);
  Alcotest.(check int) "size" 64 (I.Value.size a);
  Alcotest.(check int) "strides: first dim fastest" 1 a.I.Value.strides.(0);
  Alcotest.(check int) "strides: second dim" 4 a.I.Value.strides.(1);
  Alcotest.(check int) "strides: third dim is a full plane" 16
    a.I.Value.strides.(2);
  Alcotest.(check int) "base = sum lo_d * stride_d" (2 + 0 - 16)
    a.I.Value.base;
  (* the eight corners map to distinct in-range flat cells; the low and
     high corner hit the exact ends of the data array *)
  Alcotest.(check int) "low corner is cell 0" 0
    (I.Value.linear_index a [| 2; 0; -1 |]);
  Alcotest.(check int) "high corner is the last cell" 63
    (I.Value.linear_index a [| 5; 3; 2 |]);
  let corners =
    [ [| 2; 0; -1 |]; [| 5; 0; -1 |]; [| 2; 3; -1 |]; [| 5; 3; -1 |];
      [| 2; 0; 2 |]; [| 5; 0; 2 |]; [| 2; 3; 2 |]; [| 5; 3; 2 |] ]
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun idx ->
      let li = I.Value.linear_index a idx in
      Alcotest.(check bool) "corner in range" true (li >= 0 && li < 64);
      Alcotest.(check bool) "corner distinct" false (Hashtbl.mem seen li);
      Hashtbl.replace seen li ();
      I.Value.set a idx 1.0)
    corners;
  (* one step outside any single dimension must raise, in both
     directions, without perturbing the stored corners *)
  List.iter
    (fun idx ->
      match I.Value.get a idx with
      | exception Invalid_argument _ -> ()
      | v -> Alcotest.failf "expected bounds failure, got %g" v)
    [ [| 1; 0; -1 |]; [| 6; 3; 2 |]; [| 2; -1; -1 |]; [| 5; 4; 2 |];
      [| 2; 0; -2 |]; [| 5; 3; 3 |] ];
  Alcotest.(check int) "wrong arity rejected" 0
    (match I.Value.linear_index a [| 2; 0 |] with
    | exception Invalid_argument _ -> 0
    | li -> li + 1);
  let total =
    Array.fold_left ( +. ) 0.0 a.I.Value.data
  in
  Alcotest.(check (float 0.0)) "exactly the 8 corners written" 8.0 total

let prop_linear_index_bijective =
  QCheck.Test.make ~count:100 ~name:"linear_index is a bijection"
    QCheck.(pair (int_range 1 5) (int_range 1 5))
    (fun (n1, n2) ->
      let a = I.Value.make_array [| (1, n1); (1, n2) |] in
      let seen = Hashtbl.create 16 in
      let ok = ref true in
      for i = 1 to n1 do
        for j = 1 to n2 do
          let li = I.Value.linear_index a [| i; j |] in
          if Hashtbl.mem seen li || li < 0 || li >= n1 * n2 then ok := false;
          Hashtbl.replace seen li ()
        done
      done;
      !ok && Hashtbl.length seen = n1 * n2)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let test_integer_arithmetic () =
  check_output "integer division truncates" [ "3 -3 1" ]
    {|
      program t
      integer a, b, c
      a = 7 / 2
      b = -7 / 2
      c = mod(7, 2)
      write(*,*) a, b, c
      end
|}

let test_mixed_arithmetic () =
  check_output "mixed promotes to real" [ "3.5" ]
    {|
      program t
      real x
      x = 7 / 2.0
      write(*,*) x
      end
|}

let test_power () =
  check_output "integer and real powers" [ "8 6.25" ]
    {|
      program t
      integer a
      real x
      a = 2 ** 3
      x = 2.5 ** 2
      write(*,*) a, x
      end
|}

let test_intrinsics () =
  check_output "intrinsics" [ "5 2 1 3 0.5" ]
    {|
      program t
      integer a, b
      real s, m, h
      a = abs(-5)
      b = int(2.9)
      s = sqrt(1.0)
      m = max(1.0, 3.0, 2.0)
      h = min(0.5, 2.0)
      write(*,*) a, b, s, m, h
      end
|}

let test_sign_and_float () =
  check_output "sign/float" [ "-2.5 4" ]
    {|
      program t
      real x, y
      x = sign(2.5, -1.0)
      y = float(4)
      write(*,*) x, y
      end
|}

let test_implicit_typing () =
  (* i-n implicit integers truncate; others are real *)
  check_output "implicit" [ "2 2.5" ]
    {|
      program t
      ival = 2.5
      xval = 2.5
      write(*,*) ival, xval
      end
|}

let test_logical_ops () =
  check_output "logicals" [ "T F T" ]
    {|
      program t
      logical a, b, c
      a = 1 .lt. 2 .and. 3.0 .ge. 3.0
      b = .not. a
      c = b .or. .true.
      write(*,*) a, b, c
      end
|}

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let test_do_loop_semantics () =
  check_output "trip count and final value" [ "10 6" ]
    {|
      program t
      integer i, s
      s = 0
      do i = 1, 5
        s = s + i - 1
      end do
      write(*,*) s, i
      end
|}

let test_do_step () =
  check_output "negative step" [ "9 7 5 3 1" ]
    {|
      program t
      integer i
      write(*,*) 9, 7, 5, 3, 1
      end
|};
  check_output "descending accumulation" [ "25" ]
    {|
      program t
      integer i, s
      s = 0
      do i = 9, 1, -2
        s = s + i
      end do
      write(*,*) s
      end
|}

let test_zero_trip_loop () =
  check_output "zero-trip" [ "0" ]
    {|
      program t
      integer i, s
      s = 0
      do i = 5, 1
        s = s + 1
      end do
      write(*,*) s
      end
|}

let test_goto_backward_loop () =
  check_output "goto loop" [ "5" ]
    {|
      program t
      integer i
      i = 0
 100  continue
      i = i + 1
      if (i .lt. 5) goto 100
      write(*,*) i
      end
|}

let test_goto_out_of_loop () =
  check_output "jump out of DO" [ "3" ]
    {|
      program t
      integer i
      do i = 1, 100
        if (i .eq. 3) goto 200
      end do
 200  continue
      write(*,*) i
      end
|}

let test_if_chain_execution () =
  check_output "else-if chain" [ "mid" ]
    {|
      program t
      integer i
      i = 5
      if (i .lt. 3) then
        write(*,*) 'low'
      else if (i .lt. 8) then
        write(*,*) 'mid'
      else
        write(*,*) 'high'
      end if
      end
|}

let test_data_statement () =
  check_output "data init" [ "1.5 0 7 7 7" ]
    {|
      program t
      real x
      real w(3)
      integer k
      data x /1.5/
      data k /0/
      data w /3*7.0/
      write(*,*) x, k, w(1), w(2), w(3)
      end
|}

let test_read_statement () =
  let m =
    run ~input:[ 4.0; 5.5 ]
      {|
      program t
      real a, b
      read(*,*) a, b
      write(*,*) a + b
      end
|}
  in
  Alcotest.(check (list string)) "read consumed" [ "9.5" ] (out m)

let test_stop () =
  check_output "stop halts" [ "before" ]
    {|
      program t
      write(*,*) 'before'
      stop
      write(*,*) 'after'
      end
|}

let test_shared_label_nest_executes () =
  check_output "shared terminal label" [ "12" ]
    {|
      program t
      integer i, j, s
      s = 0
      do 10 i = 1, 3
        do 10 j = 1, 4
          s = s + 1
 10   continue
      write(*,*) s
      end
|}

let test_uninitialized_variable_error () =
  Alcotest.(check bool) "error on unset read" true
    (match run "      program t\n      real x, y\n      y = x + 1.0\n      end\n" with
    | exception I.Machine.Runtime_error _ -> true
    | _ -> false)

let test_out_of_bounds_error () =
  Alcotest.(check bool) "bounds checked" true
    (match
       run
         "      program t\n      real a(3)\n      a(4) = 1.0\n      end\n"
     with
    | exception I.Machine.Runtime_error _ -> true
    | _ -> false)

(* Fortran INT conversion truncates toward zero; [truncate] is exact for
   every real whose truncation fits in int, where a float round-trip
   ([int_of_float (Float.of_int ...)]) loses precision above 2^53 *)
let test_to_int_truncation () =
  Alcotest.(check int) "positive" 2 (I.Value.to_int (I.Value.Real 2.7));
  Alcotest.(check int) "negative toward zero" (-2)
    (I.Value.to_int (I.Value.Real (-2.7)));
  Alcotest.(check int) "negative just below" (-1)
    (I.Value.to_int (I.Value.Real (-1.999999)));
  Alcotest.(check int) "exact negative" (-3)
    (I.Value.to_int (I.Value.Real (-3.0)));
  let big = 4503599627370497.0 (* 2^52 + 1, exactly representable *) in
  Alcotest.(check int) "large real exact" 4503599627370497
    (I.Value.to_int (I.Value.Real big));
  Alcotest.(check int) "large negative exact" (-4503599627370497)
    (I.Value.to_int (I.Value.Real (-.big)));
  Alcotest.(check int) "int passthrough" 42 (I.Value.to_int (I.Value.Int 42))

let test_max_abs_diff_shapes () =
  let a = I.Value.make_array [| (1, 3); (1, 2) |] in
  let b = I.Value.make_array [| (1, 3); (1, 2) |] in
  I.Value.set b [| 2; 2 |] 1.5;
  Alcotest.(check (float 0.0)) "same shape" 1.5 (I.Value.max_abs_diff a b);
  let c = I.Value.make_array [| (1, 3); (0, 2) |] in
  Alcotest.check_raises "mismatched bounds name both shapes"
    (Invalid_argument
       "Value.max_abs_diff: shape mismatch: (1:3,1:2) vs (1:3,0:2)")
    (fun () -> ignore (I.Value.max_abs_diff a c));
  let d = I.Value.make_array [| (1, 6) |] in
  Alcotest.check_raises "mismatched ranks name both shapes"
    (Invalid_argument
       "Value.max_abs_diff: shape mismatch: (1:3,1:2) vs (1:6)")
    (fun () -> ignore (I.Value.max_abs_diff a d))

let test_flops_counted () =
  let m =
    run
      {|
      program t
      real x
      integer i
      x = 0.0
      do i = 1, 10
        x = x + 1.5
      end do
      end
|}
  in
  Alcotest.(check bool) "flops counted" true (I.Machine.flops m >= 10.0)

let suite =
  [
    ("array column-major", `Quick, test_array_column_major);
    ("array custom bounds", `Quick, test_array_custom_bounds);
    ("array rank-3 boundaries", `Quick, test_array_rank3_boundaries);
    ("to_int truncation", `Quick, test_to_int_truncation);
    ("max_abs_diff shape errors", `Quick, test_max_abs_diff_shapes);
    QCheck_alcotest.to_alcotest prop_linear_index_bijective;
    ("integer arithmetic", `Quick, test_integer_arithmetic);
    ("mixed arithmetic", `Quick, test_mixed_arithmetic);
    ("power", `Quick, test_power);
    ("intrinsics", `Quick, test_intrinsics);
    ("sign/float", `Quick, test_sign_and_float);
    ("implicit typing", `Quick, test_implicit_typing);
    ("logical ops", `Quick, test_logical_ops);
    ("do loop semantics", `Quick, test_do_loop_semantics);
    ("do step", `Quick, test_do_step);
    ("zero-trip loop", `Quick, test_zero_trip_loop);
    ("goto backward loop", `Quick, test_goto_backward_loop);
    ("goto out of loop", `Quick, test_goto_out_of_loop);
    ("if chain", `Quick, test_if_chain_execution);
    ("data statement", `Quick, test_data_statement);
    ("read statement", `Quick, test_read_statement);
    ("stop", `Quick, test_stop);
    ("shared label nest", `Quick, test_shared_label_nest_executes);
    ("uninitialized variable", `Quick, test_uninitialized_variable_error);
    ("out of bounds", `Quick, test_out_of_bounds_error);
    ("flops counted", `Quick, test_flops_counted);
  ]
