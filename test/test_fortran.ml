(** Unit and property tests for the Fortran frontend: lexer, parser,
    pretty-printer round-trips, directives. *)

open Autocfd_fortran

let parse = Parser.parse
let parse_e = Parser.parse_expr_string

(* structural equality of expressions ignoring nothing — exprs have
   derived eq *)
let expr_eq = Ast.equal_expr

let check_expr msg expected actual =
  Alcotest.(check bool) msg true (expr_eq expected actual)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let test_lex_numbers () =
  let toks s =
    List.map (fun t -> t.Lexer.tok) (Lexer.tokens_of_line 1 s)
  in
  Alcotest.(check bool) "int" true (toks "42" = [ Token.Int 42 ]);
  Alcotest.(check bool) "real" true (toks "4.25" = [ Token.Real 4.25 ]);
  Alcotest.(check bool) "exp" true (toks "1e3" = [ Token.Real 1000.0 ]);
  Alcotest.(check bool) "dexp" true (toks "1.5d2" = [ Token.Real 150.0 ]);
  Alcotest.(check bool) "neg exp" true (toks "2.0e-2" = [ Token.Real 0.02 ]);
  Alcotest.(check bool) "leading dot" true (toks ".5" = [ Token.Real 0.5 ]);
  Alcotest.(check bool) "dot lt" true
    (toks "1.lt.2" = [ Token.Int 1; Token.Lt; Token.Int 2 ]);
  Alcotest.(check bool) "real then lt" true
    (toks "1.0.lt.x" = [ Token.Real 1.0; Token.Lt; Token.Ident "x" ])

let test_lex_operators () =
  let toks s =
    List.map (fun t -> t.Lexer.tok) (Lexer.tokens_of_line 1 s)
  in
  Alcotest.(check bool) "power" true
    (toks "a**2" = [ Token.Ident "a"; Token.Power; Token.Int 2 ]);
  Alcotest.(check bool) "relational new-style" true
    (toks "a<=b" = [ Token.Ident "a"; Token.Le; Token.Ident "b" ]);
  Alcotest.(check bool) "f90 ne" true
    (toks "a /= b" = [ Token.Ident "a"; Token.Ne; Token.Ident "b" ]);
  Alcotest.(check bool) "dotted ops" true
    (toks "a .and. .not. b"
    = [ Token.Ident "a"; Token.And; Token.Not; Token.Ident "b" ])

let test_lex_strings () =
  let toks s =
    List.map (fun t -> t.Lexer.tok) (Lexer.tokens_of_line 1 s)
  in
  Alcotest.(check bool) "simple" true (toks "'hello'" = [ Token.Str "hello" ]);
  Alcotest.(check bool) "escaped quote" true
    (toks "'it''s'" = [ Token.Str "it's" ])

let test_lex_continuation () =
  let src = "      program t\n      x = 1 +\n     &    2\n      end\n" in
  let toks, _ = Lexer.tokenize src in
  let idents =
    List.filter_map
      (function
        | { Lexer.tok = Token.Int i; _ } -> Some i
        | _ -> None)
      toks
  in
  Alcotest.(check (list int)) "continuation joins" [ 1; 2 ] idents

let test_lex_comments () =
  let src =
    "c a comment line\n      x = 1 ! trailing\n* another comment\n      y = 2\n"
  in
  let toks, _ = Lexer.tokenize src in
  let names =
    List.filter_map
      (function
        | { Lexer.tok = Token.Ident s; _ } -> Some s
        | _ -> None)
      toks
  in
  Alcotest.(check (list string)) "idents" [ "x"; "y" ] names

let test_lex_directives () =
  let src =
    "c$acfd grid(ni, nj)\nc$acfd status(u, v, q:2)\nc$acfd dist(q, 2)\n\
     \      program t\n      end\n"
  in
  let _, dirs = Lexer.tokenize src in
  Alcotest.(check int) "three directives" 3 (List.length dirs);
  Alcotest.(check (list string)) "grids" [ "ni"; "nj" ] (Directive.grids dirs);
  Alcotest.(check bool) "status" true
    (Directive.status_arrays dirs
    = [ ("u", None); ("v", None); ("q", Some 2) ]);
  Alcotest.(check bool) "dist" true
    (Directive.dist_overrides dirs = [ ("q", 2) ])

(* ------------------------------------------------------------------ *)
(* Expression parsing                                                  *)
(* ------------------------------------------------------------------ *)

let test_expr_precedence () =
  let open Ast in
  check_expr "mul binds tighter"
    (Binop (Add, Const_int 1, Binop (Mul, Const_int 2, Const_int 3)))
    (parse_e "1 + 2*3");
  check_expr "power right assoc"
    (Binop (Pow, Var "a", Binop (Pow, Const_int 2, Const_int 3)))
    (parse_e "a ** 2 ** 3");
  check_expr "unary minus over product"
    (Unop (Neg, Binop (Mul, Var "a", Var "b")))
    (parse_e "-a * b");
  check_expr "neg literal folded" (Const_int (-5)) (parse_e "-5");
  check_expr "relational"
    (Binop (Lt, Binop (Add, Var "x", Const_int 1), Var "y"))
    (parse_e "x + 1 .lt. y");
  check_expr "logical precedence"
    (Binop (Or, Var "a", Binop (And, Var "b", Var "c")))
    (parse_e "a .or. b .and. c")

let test_expr_refs () =
  let open Ast in
  check_expr "array ref"
    (Ref ("v", [ Binop (Sub, Var "i", Const_int 1); Var "j" ]))
    (parse_e "v(i-1, j)");
  check_expr "nested ref"
    (Ref ("max", [ Var "a"; Ref ("abs", [ Var "b" ]) ]))
    (parse_e "max(a, abs(b))")

(* ------------------------------------------------------------------ *)
(* Statement / program parsing                                         *)
(* ------------------------------------------------------------------ *)

let simple_program =
  {|
      program heat
      parameter (n = 10)
      real u(n, n), unew(n, n)
      integer i, j
      do 10 i = 1, n
        do 10 j = 1, n
          u(i, j) = 0.0
 10   continue
      do iter = 1, 100
        do i = 2, n - 1
          do j = 2, n - 1
            unew(i, j) = 0.25 * (u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1))
          end do
        end do
      end do
      if (u(1,1) .gt. 0.0) then
        call report(u)
      else
        u(1, 1) = 1.0
      end if
      end

      subroutine report(a)
      real a(10, 10)
      write(*,*) a(1, 1)
      return
      end
|}

let test_parse_program () =
  let p = parse simple_program in
  Alcotest.(check int) "two units" 2 (List.length p.Ast.p_units);
  let main = Ast.main_unit p in
  Alcotest.(check string) "main name" "heat" main.Ast.u_name;
  Alcotest.(check int) "consts" 1 (List.length main.Ast.u_consts);
  Alcotest.(check int) "decls" 4 (List.length main.Ast.u_decls)

let test_shared_do_label () =
  let p = parse simple_program in
  let main = Ast.main_unit p in
  (* first statement is the nested shared-label DO *)
  match (List.hd main.Ast.u_body).Ast.s_kind with
  | Ast.Do { do_var = "i"; do_body = [ { s_kind = Ast.Do inner; _ } ]; _ } ->
      (match List.rev inner.Ast.do_body with
      | { s_kind = Ast.Continue; s_label = Some 10; _ } :: _ -> ()
      | _ -> Alcotest.fail "inner body should end with 10 continue")
  | _ -> Alcotest.fail "expected nested DO with shared label"

let test_if_chain () =
  let src =
    {|
      program t
      integer i
      if (i .lt. 0) then
        i = 0
      else if (i .gt. 10) then
        i = 10
      else
        i = i + 1
      end if
      end
|}
  in
  let p = parse src in
  let main = Ast.main_unit p in
  match (List.hd main.Ast.u_body).Ast.s_kind with
  | Ast.If (branches, Some els) ->
      Alcotest.(check int) "two conditional branches" 2 (List.length branches);
      Alcotest.(check int) "else branch size" 1 (List.length els)
  | _ -> Alcotest.fail "expected IF chain"

let test_logical_if_and_goto () =
  let src =
    {|
      program t
      integer i
      i = 0
 100  continue
      i = i + 1
      if (i .lt. 10) goto 100
      end
|}
  in
  let p = parse src in
  let main = Ast.main_unit p in
  Alcotest.(check int) "statements" 4 (List.length main.Ast.u_body);
  match (List.nth main.Ast.u_body 3).Ast.s_kind with
  | Ast.If ([ (_, [ { s_kind = Ast.Goto 100; _ } ]) ], None) -> ()
  | _ -> Alcotest.fail "expected logical IF with goto"

let test_common_and_data () =
  let src =
    {|
      program t
      parameter (n = 4)
      real u(n), v(n)
      common /flow/ u, v
      real eps
      data eps /1.0e-6/
      u(1) = eps
      end
|}
  in
  let p = parse src in
  let main = Ast.main_unit p in
  Alcotest.(check bool) "common" true
    (main.Ast.u_commons = [ ("flow", [ "u"; "v" ]) ]);
  match main.Ast.u_data with
  | [ ("eps", [ Ast.Const_real v ]) ] ->
      Alcotest.(check (float 1e-12)) "data value" 1.0e-6 v
  | _ -> Alcotest.fail "expected data for eps"

let test_data_repeat () =
  let src =
    {|
      program t
      real w(5)
      data w /5*0.0/
      end
|}
  in
  let p = parse src in
  let main = Ast.main_unit p in
  match main.Ast.u_data with
  | [ ("w", values) ] -> Alcotest.(check int) "expanded repeat" 5 (List.length values)
  | _ -> Alcotest.fail "expected data for w"

(* ------------------------------------------------------------------ *)
(* Pretty-printing round-trip                                          *)
(* ------------------------------------------------------------------ *)

(* Strip statement ids and line numbers for structural comparison. *)
let rec strip_block b = List.map strip_stmt b

and strip_stmt st =
  let kind =
    match st.Ast.s_kind with
    | Ast.Do d -> Ast.Do { d with do_body = strip_block d.do_body }
    | Ast.If (bs, e) ->
        Ast.If
          ( List.map (fun (c, b) -> (c, strip_block b)) bs,
            Option.map strip_block e )
    | k -> k
  in
  { st with Ast.s_id = 0; s_line = 0; s_kind = kind }

let strip_unit u = { u with Ast.u_body = strip_block u.Ast.u_body }

let roundtrip_check src =
  let p1 = parse src in
  let text = Pretty.program p1 in
  let p2 =
    try parse text
    with Loc.Error (loc, msg) ->
      Alcotest.failf "re-parse failed at %a: %s\n--- pretty output ---\n%s"
        Loc.pp loc msg text
  in
  let u1 = List.map strip_unit p1.Ast.p_units in
  let u2 = List.map strip_unit p2.Ast.p_units in
  let show us =
    Format.asprintf "%a" (Fmt.Dump.list Ast.pp_program_unit) us
  in
  if not (String.equal (show u1) (show u2)) then
    Alcotest.failf "round-trip mismatch\n--- pretty output ---\n%s" text

let test_roundtrip_simple () = roundtrip_check simple_program

let test_roundtrip_branches () =
  roundtrip_check
    {|
      program t
      integer i, j
      real x
      i = 0
 100  continue
      i = i + 1
      x = -1.5e-3 * i ** 2
      if (i .lt. 10 .and. x .gt. -5.0) goto 100
      if (i .eq. 10) then
        j = 1
      else if (i .eq. 11) then
        j = 2
      else
        j = 3
      end if
      write(*,*) i, j, x
      end
|}

(* qcheck: random expression round-trip through pretty + parse *)
let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun i -> Ast.Const_int i) (int_range 0 1000);
        map (fun f -> Ast.Const_real (Float.round (f *. 100.) /. 100.))
          (float_bound_inclusive 100.0);
        return (Ast.Var "x");
        return (Ast.Var "y");
        map (fun i -> Ast.Ref ("v", [ Ast.Const_int i; Ast.Var "j" ]))
          (int_range 1 9);
      ]
  in
  let rec node n =
    if n = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 3,
            map3
              (fun op a b -> Ast.Binop (op, a, b))
              (oneofl Ast.[ Add; Sub; Mul; Div ])
              (node (n - 1)) (node (n - 1)) );
          (1, map (fun a -> Ast.Unop (Ast.Neg, a)) (node (n - 1)));
          ( 1,
            map2
              (fun a b -> Ast.Binop (Ast.Lt, a, b))
              (node (n - 1)) (node (n - 1)) );
        ]
  in
  node 4

let arb_expr = QCheck.make ~print:Pretty.expr gen_expr

(* Negation of literals is folded by the parser; apply the same folding to
   the generated tree before comparison. *)
let rec fold_neg e =
  match e with
  | Ast.Unop (op, a) -> (
      match (op, fold_neg a) with
      | Ast.Neg, Ast.Const_int i -> Ast.Const_int (-i)
      | Ast.Neg, Ast.Const_real f -> Ast.Const_real (-.f)
      | op, a -> Ast.Unop (op, a))
  | Ast.Binop (op, a, b) -> Ast.Binop (op, fold_neg a, fold_neg b)
  | Ast.Ref (n, args) -> Ast.Ref (n, List.map fold_neg args)
  | Ast.Local_lo (d, a) -> Ast.Local_lo (d, fold_neg a)
  | Ast.Local_hi (d, a) -> Ast.Local_hi (d, fold_neg a)
  | e -> e

let prop_expr_roundtrip =
  QCheck.Test.make ~count:500 ~name:"pretty/parse expression round-trip"
    arb_expr (fun e ->
      let e = fold_neg e in
      expr_eq e (fold_neg (parse_e (Pretty.expr e))))


(* ------------------------------------------------------------------ *)
(* Random whole-program round-trip                                     *)
(* ------------------------------------------------------------------ *)

(* random structured statements: assignments, IFs, DO nests, gotos in
   legal positions *)
let gen_stmt_program =
  let open QCheck.Gen in
  let assign k =
    Printf.sprintf "      x%d = x%d + %d.5 * y" (k mod 3) ((k + 1) mod 3) k
  in
  let rec gen_block depth n =
    if n = 0 then return []
    else
      let* rest = gen_block depth (n - 1) in
      let* choice = int_range 0 (if depth >= 2 then 1 else 3) in
      let* k = int_range 0 9 in
      let stmt =
        match choice with
        | 0 | 1 -> return [ assign k ]
        | 2 ->
            let* inner = gen_block (depth + 1) 2 in
            return
              ((Printf.sprintf "      do i%d = 1, %d" depth (k + 2) :: inner)
              @ [ "      end do" ])
        | _ ->
            let* thn = gen_block (depth + 1) 1 in
            let* els = gen_block (depth + 1) 1 in
            return
              (((Printf.sprintf "      if (x0 .lt. %d.0) then" k :: thn)
               @ ("      else" :: els))
              @ [ "      end if" ])
      in
      let* s = stmt in
      return (s @ rest)
  in
  let* body = gen_block 0 6 in
  return
    (String.concat "\n"
       ([ "      program rt"; "      real x0, x1, x2, y";
          "      integer i0, i1, i2"; "      y = 1.0"; "      x0 = 0.0";
          "      x1 = 0.0"; "      x2 = 0.0" ]
       @ body
       @ [ "      write(*,*) x0, x1, x2"; "      end" ]))

let prop_program_roundtrip =
  QCheck.Test.make ~count:100 ~name:"random program pretty/parse round-trip"
    (QCheck.make ~print:Fun.id gen_stmt_program)
    (fun src ->
      let p1 = parse src in
      let text = Pretty.program p1 in
      let p2 = parse text in
      let show p =
        Format.asprintf "%a"
          (Fmt.Dump.list Ast.pp_program_unit)
          (List.map strip_unit p.Ast.p_units)
      in
      String.equal (show p1) (show p2))

let prop_program_roundtrip_executes_identically =
  QCheck.Test.make ~count:60
    ~name:"round-tripped program executes identically"
    (QCheck.make ~print:Fun.id gen_stmt_program)
    (fun src ->
      let run text =
        let u = Inline.program (parse text) in
        let m = Autocfd_interp.Machine.create u in
        Autocfd_interp.Machine.run m;
        Autocfd_interp.Machine.output m
      in
      run src = run (Pretty.program (parse src)))


(* ------------------------------------------------------------------ *)
(* Robustness: hostile input never escapes the documented exceptions   *)
(* ------------------------------------------------------------------ *)

let gen_garbage =
  QCheck.Gen.(
    let* n = int_range 0 200 in
    let* chars =
      list_size (return n)
        (frequency
           [ (6, oneofl [ 'a'; 'i'; 'x'; '('; ')'; '='; '+'; '-'; '*'; '/';
                          '.'; ','; ' '; '\n'; '1'; '9'; '\''; '&'; '!'; '$';
                          ':'; '<'; '>' ]);
             (1, char) ])
    in
    return (String.init (List.length chars) (List.nth chars)))

let prop_parser_total =
  QCheck.Test.make ~count:500 ~name:"parser is total (errors, not crashes)"
    (QCheck.make ~print:String.escaped gen_garbage)
    (fun src ->
      match Parser.parse src with
      | _ -> true
      | exception Loc.Error _ -> true
      | exception Directive.Parse_error _ -> true
      | exception _ -> false)



let test_pretty_comm_forms () =
  let open Ast in
  let x = { xfer_array = "u"; xfer_dim = 0; xfer_dir = Dplus; xfer_depth = 2 } in
  Alcotest.(check string) "exchange"
    "      call acfd_exchange(u[dim 0, dir +, depth 2])"
    (Pretty.stmt (mk_stmt (Comm (Exchange [ x ]))));
  Alcotest.(check string) "allreduce"
    "      call acfd_allreduce_max(errmax)"
    (Pretty.stmt (mk_stmt (Comm (Allreduce_max "errmax"))));
  Alcotest.(check string) "allgather"
    "      call acfd_allgather(u, v)"
    (Pretty.stmt (mk_stmt (Comm (Allgather [ "u"; "v" ]))));
  Alcotest.(check string) "pipeline recv"
    "      call acfd_pipe_recv(1, '+', v:1)"
    (Pretty.stmt
       (mk_stmt (Pipeline_recv { dim = 1; dir = Dplus; arrays = [ ("v", 1) ] })))

let test_pretty_sched_annotations () =
  let open Ast in
  let d =
    { do_var = "i"; do_lo = Const_int 1; do_hi = Const_int 4; do_step = None;
      do_body = [ mk_stmt Continue ]; do_sched = Sched_block 0;
      do_fission = None }
  in
  let text = Pretty.stmt (mk_stmt (Do d)) in
  Alcotest.(check bool) "sched comment" true
    (String.length text > 0 && text.[0] = 'c')


let suite =
  [
    ("lex numbers", `Quick, test_lex_numbers);
    ("lex operators", `Quick, test_lex_operators);
    ("lex strings", `Quick, test_lex_strings);
    ("lex continuation", `Quick, test_lex_continuation);
    ("lex comments", `Quick, test_lex_comments);
    ("lex directives", `Quick, test_lex_directives);
    ("expr precedence", `Quick, test_expr_precedence);
    ("expr refs", `Quick, test_expr_refs);
    ("parse program", `Quick, test_parse_program);
    ("shared DO label", `Quick, test_shared_do_label);
    ("if chain", `Quick, test_if_chain);
    ("logical if + goto", `Quick, test_logical_if_and_goto);
    ("common + data", `Quick, test_common_and_data);
    ("data repeat", `Quick, test_data_repeat);
    ("pretty comm forms", `Quick, test_pretty_comm_forms);
    ("pretty sched annotations", `Quick, test_pretty_sched_annotations);
    ("round-trip simple", `Quick, test_roundtrip_simple);
    ("round-trip branches", `Quick, test_roundtrip_branches);
    QCheck_alcotest.to_alcotest prop_expr_roundtrip;
    QCheck_alcotest.to_alcotest prop_parser_total;
    QCheck_alcotest.to_alcotest prop_program_roundtrip;
    QCheck_alcotest.to_alcotest prop_program_roundtrip_executes_identically;
  ]

