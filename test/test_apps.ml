(** Tests for the bundled case-study applications: structural census
    regressions (Table 1 inputs), numerical sanity, and sequential/SPMD
    equivalence at reduced sizes. *)

module D = Autocfd.Driver

let parts_spec p = Autocfd.Runspec.(default |> with_parts (Some p))
module A = Autocfd_analysis
module S = Autocfd_syncopt
module I = Autocfd_interp

let shape parts =
  String.concat "x" (Array.to_list (Array.map string_of_int parts))

(* ------------------------------------------------------------------ *)
(* Census regressions: these are the values EXPERIMENTS.md reports as
   our Table 1, committed so that analysis changes are caught. *)
(* ------------------------------------------------------------------ *)

let census t parts =
  let plan = D.plan ~spec:(parts_spec parts) t in
  (plan.D.opt.S.Optimizer.before, plan.D.opt.S.Optimizer.after)

let test_aerofoil_census () =
  let t = D.load (Autocfd_apps.Aerofoil.source ()) in
  List.iter
    (fun (parts, expected) ->
      let got = census t parts in
      if got <> expected then
        Alcotest.failf "aerofoil %s: expected %d/%d, got %d/%d" (shape parts)
          (fst expected) (snd expected) (fst got) (snd got))
    [
      ([| 4; 1; 1 |], (102, 8));
      ([| 1; 4; 1 |], (85, 7));
      ([| 1; 1; 4 |], (69, 5));
      ([| 4; 4; 1 |], (187, 10));
      ([| 4; 1; 4 |], (171, 9));
      ([| 1; 4; 4 |], (154, 9));
    ]

let test_sprayer_census () =
  let t = D.load (Autocfd_apps.Sprayer.source ()) in
  List.iter
    (fun (parts, expected) ->
      let got = census t parts in
      if got <> expected then
        Alcotest.failf "sprayer %s: expected %d/%d, got %d/%d" (shape parts)
          (fst expected) (snd expected) (fst got) (snd got))
    [
      ([| 4; 1 |], (62, 10));
      ([| 1; 4 |], (64, 10));
      ([| 4; 4 |], (126, 15));
    ]

let test_reduction_percentages_in_paper_range () =
  (* the paper reports 88-95% reduction; ours must be comparable *)
  let check t parts =
    let plan = D.plan ~spec:(parts_spec parts) t in
    let pct = S.Optimizer.reduction_pct plan.D.opt in
    Alcotest.(check bool)
      (Printf.sprintf "reduction %.0f%% in [80, 98]" (100. *. pct))
      true
      (pct >= 0.80 && pct <= 0.98)
  in
  let aero = D.load (Autocfd_apps.Aerofoil.source ()) in
  let spray = D.load (Autocfd_apps.Sprayer.source ()) in
  List.iter (check aero) [ [| 4; 1; 1 |]; [| 1; 4; 1 |]; [| 4; 4; 1 |] ];
  List.iter (check spray) [ [| 4; 1 |]; [| 1; 4 |]; [| 4; 4 |] ]

(* ------------------------------------------------------------------ *)
(* Structural features the paper calls out                             *)
(* ------------------------------------------------------------------ *)

let test_aerofoil_has_mirror_image_loops () =
  let t = D.load (Autocfd_apps.Aerofoil.source ()) in
  let plan = D.plan ~spec:(parts_spec [| 4; 1; 1 |]) t in
  let pipelines =
    List.filter
      (fun (_, s) -> match s with A.Mirror.Pipeline _ -> true | _ -> false)
      plan.D.strategies
  in
  (* psor and blayer *)
  Alcotest.(check bool) "at least 2 pipelined loops" true
    (List.length pipelines >= 2);
  Alcotest.(check bool) "self-dependent pairs recorded" true
    (A.Sldp.self_pairs plan.D.sldp <> [])

let test_aerofoil_packed_array () =
  let t = D.load (Autocfd_apps.Aerofoil.source ()) in
  Alcotest.(check (option int)) "q 4th dim packed" None
    (A.Grid_info.grid_dim_of t.D.gi "q" 3);
  Alcotest.(check (option int)) "q first dim status" (Some 0)
    (A.Grid_info.grid_dim_of t.D.gi "q" 0)

let test_sprayer_direction_specific_counts () =
  (* cutting different dimensions yields different "before" counts *)
  let t = D.load (Autocfd_apps.Sprayer.source ()) in
  let b0, _ = census t [| 4; 1 |] in
  let b1, _ = census t [| 1; 4 |] in
  Alcotest.(check bool) "counts differ by direction" true (b0 <> b1)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let equiv name src parts =
  let t = D.load src in
  let seq = D.run_seq t in
  let par = D.run (D.plan ~spec:(parts_spec parts) t) in
  let worst =
    List.fold_left (fun a (_, d) -> Float.max a d) 0.0
      (D.max_divergence seq par)
  in
  if worst <> 0.0 then
    Alcotest.failf "%s diverges by %g under %s" name worst (shape parts);
  (seq, par)

let test_sprayer_equivalence () =
  let src = Autocfd_apps.Sprayer.source ~ni:36 ~nj:18 ~ntime:6 ~npsi:3 () in
  List.iter
    (fun parts -> ignore (equiv "sprayer" src parts))
    [ [| 2; 1 |]; [| 1; 2 |]; [| 2; 2 |]; [| 3; 1 |]; [| 2; 3 |] ]

let test_aerofoil_equivalence () =
  let src = Autocfd_apps.Aerofoil.source ~ni:16 ~nj:10 ~nk:6 ~ntime:3 ~npres:2 () in
  List.iter
    (fun parts -> ignore (equiv "aerofoil" src parts))
    [ [| 2; 1; 1 |]; [| 1; 2; 1 |]; [| 2; 2; 1 |]; [| 3; 2; 1 |];
      [| 2; 2; 2 |] ]

let test_no_nan_or_blowup () =
  let check name src =
    let t = D.load src in
    let seq = D.run_seq t in
    List.iter
      (fun (arr_name, arr) ->
        Array.iter
          (fun x ->
            if Float.is_nan x || Float.abs x > 1e6 then
              Alcotest.failf "%s: %s has unstable value %g" name arr_name x)
          arr.I.Value.data)
      seq.D.sq_arrays
  in
  check "sprayer" (Autocfd_apps.Sprayer.source ~ni:40 ~nj:20 ~ntime:25 ~npsi:4 ());
  check "aerofoil"
    (Autocfd_apps.Aerofoil.source ~ni:20 ~nj:12 ~nk:6 ~ntime:12 ~npres:3 ())

let test_fan_speed_influences_flow () =
  (* the sprayer's purpose: fan speed changes the velocity field *)
  let run ufan =
    let t =
      D.load (Autocfd_apps.Sprayer.source ~ni:30 ~nj:16 ~ntime:6 ~npsi:3 ~ufan ())
    in
    let seq = D.run_seq t in
    List.assoc "u" seq.D.sq_arrays
  in
  let slow = run 0.5 and fast = run 2.0 in
  Alcotest.(check bool) "different fields" true
    (I.Value.max_abs_diff slow fast > 1e-6)

let test_paper_partitions_full_size_parse () =
  (* full-size programs analyze without error for every Table 1 shape *)
  let aero = D.load (Autocfd_apps.Aerofoil.source ()) in
  let spray = D.load (Autocfd_apps.Sprayer.source ()) in
  List.iter
    (fun parts -> ignore (D.plan ~spec:(parts_spec parts) aero))
    [ [| 2; 1; 1 |]; [| 3; 2; 1 |]; [| 6; 1; 1 |] ];
  List.iter
    (fun parts -> ignore (D.plan ~spec:(parts_spec parts) spray))
    [ [| 2; 1 |]; [| 3; 1 |]; [| 2; 2 |] ]

let test_spmd_source_renders () =
  let t = D.load (Autocfd_apps.Sprayer.source ~ni:30 ~nj:16 ()) in
  let plan = D.plan ~spec:(parts_spec [| 2; 2 |]) t in
  let text = D.spmd_source plan in
  let contains needle =
    let nh = String.length text and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub text i nn = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "has exchange calls" true
    (contains "call acfd_exchange");
  Alcotest.(check bool) "has allreduce" true
    (contains "call acfd_allreduce_max");
  Alcotest.(check bool) "notes the partition" true (contains "partition: 2 x 2")



let test_cavity_equivalence () =
  (* third demo app: SOR + goto while-loop + four-wall boundary code *)
  let src = Autocfd_apps.Cavity.source ~n:17 ~maxit:5 ~npsi:3 () in
  List.iter
    (fun parts -> ignore (equiv "cavity" src parts))
    [ [| 2; 1 |]; [| 1; 2 |]; [| 2; 2 |]; [| 3; 3 |] ]

let test_cavity_structure () =
  let t = D.load Autocfd_apps.Cavity.default in
  let plan = D.plan ~spec:(parts_spec [| 2; 2 |]) t in
  (* the SOR sweep is mirror-image pipelined in both dimensions *)
  Alcotest.(check bool) "psisor pipelined" true
    (List.exists
       (fun (_, s) ->
         match s with
         | A.Mirror.Pipeline dims -> List.map fst dims = [ 0; 1 ]
         | _ -> false)
       plan.D.strategies);
  (* the goto while-loop carries backward pairs *)
  Alcotest.(check bool) "virtual carrying loop found" true
    (plan.D.sldp.A.Sldp.virtual_spans <> []);
  Alcotest.(check bool) "backward pairs exist" true
    (List.exists
       (fun p ->
         match p.A.Sldp.dp_kind with A.Sldp.Backward _ -> true | _ -> false)
       plan.D.sldp.A.Sldp.pairs);
  Alcotest.(check bool) "solid reduction" true
    (S.Optimizer.reduction_pct plan.D.opt > 0.6)

let test_cavity_physics () =
  (* the lid drags the fluid: psi becomes nonzero and the flow strength
     scales with the lid speed *)
  let run ulid =
    let t = D.load (Autocfd_apps.Cavity.source ~n:17 ~maxit:10 ~npsi:4 ~ulid ()) in
    let seq = D.run_seq t in
    let psi = List.assoc "psi" seq.D.sq_arrays in
    Array.fold_left (fun a x -> Float.max a (Float.abs x)) 0.0
      psi.I.Value.data
  in
  let slow = run 0.5 and fast = run 2.0 in
  Alcotest.(check bool) "nonzero circulation" true (slow > 1e-8);
  Alcotest.(check bool) "stronger lid, stronger flow" true (fast > slow)


let test_many_ranks () =
  (* scheduler robustness: 18 cooperative ranks with 3-D pipelines *)
  let src = Autocfd_apps.Aerofoil.source ~ni:14 ~nj:9 ~nk:7 ~ntime:2 ~npres:2 () in
  let t = D.load src in
  let seq = D.run_seq t in
  let plan = D.plan ~spec:(parts_spec [| 3; 3; 2 |]) t in
  let par = D.run plan in
  let worst =
    List.fold_left (fun a (_, d) -> Float.max a d) 0.0
      (D.max_divergence seq par)
  in
  Alcotest.(check (float 0.0)) "18 ranks equivalent" 0.0 worst


let suite =
  [
    ("aerofoil census", `Quick, test_aerofoil_census);
    ("sprayer census", `Quick, test_sprayer_census);
    ("reduction in paper range", `Quick, test_reduction_percentages_in_paper_range);
    ("aerofoil mirror loops", `Quick, test_aerofoil_has_mirror_image_loops);
    ("aerofoil packed array", `Quick, test_aerofoil_packed_array);
    ("sprayer directional counts", `Quick, test_sprayer_direction_specific_counts);
    ("sprayer equivalence", `Slow, test_sprayer_equivalence);
    ("aerofoil equivalence", `Slow, test_aerofoil_equivalence);
    ("no NaN or blow-up", `Slow, test_no_nan_or_blowup);
    ("fan speed influences flow", `Quick, test_fan_speed_influences_flow);
    ("full-size partitions analyze", `Quick, test_paper_partitions_full_size_parse);
    ("spmd source renders", `Quick, test_spmd_source_renders);
    ("cavity equivalence", `Slow, test_cavity_equivalence);
    ("cavity structure", `Quick, test_cavity_structure);
    ("cavity physics", `Quick, test_cavity_physics);
    ("18 simulated ranks", `Slow, test_many_ranks);
  ]
