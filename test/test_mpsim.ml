(** Tests for the simulated message-passing cluster: point-to-point
    semantics, collectives, virtual time, determinism and deadlock
    detection. *)

open Autocfd_mpsim

let run ?(net = Netmodel.fast) ~nranks body = Sim.run ~net ~nranks body

let test_send_recv () =
  let received = ref [] in
  let _ =
    run ~nranks:2 (fun c ->
        if Sim.rank c = 0 then Sim.send c ~dest:1 ~tag:5 [| 1.0; 2.0; 3.0 |]
        else received := Array.to_list (Sim.recv c ~src:0 ~tag:5))
  in
  Alcotest.(check (list (float 0.0))) "payload" [ 1.0; 2.0; 3.0 ] !received

let test_fifo_order () =
  let got = ref [] in
  let _ =
    run ~nranks:2 (fun c ->
        if Sim.rank c = 0 then
          for i = 1 to 5 do
            Sim.send c ~dest:1 ~tag:0 [| float_of_int i |]
          done
        else
          for _ = 1 to 5 do
            got := (Sim.recv c ~src:0 ~tag:0).(0) :: !got
          done)
  in
  Alcotest.(check (list (float 0.0))) "fifo" [ 1.; 2.; 3.; 4.; 5. ]
    (List.rev !got)

let test_tags_independent () =
  let a = ref 0.0 and b = ref 0.0 in
  let _ =
    run ~nranks:2 (fun c ->
        if Sim.rank c = 0 then begin
          Sim.send c ~dest:1 ~tag:1 [| 10.0 |];
          Sim.send c ~dest:1 ~tag:2 [| 20.0 |]
        end
        else begin
          (* receive in the opposite tag order *)
          b := (Sim.recv c ~src:0 ~tag:2).(0);
          a := (Sim.recv c ~src:0 ~tag:1).(0)
        end)
  in
  Alcotest.(check (float 0.0)) "tag 1" 10.0 !a;
  Alcotest.(check (float 0.0)) "tag 2" 20.0 !b

let test_send_copies_payload () =
  let got = ref 0.0 in
  let _ =
    run ~nranks:2 (fun c ->
        if Sim.rank c = 0 then begin
          let buf = [| 1.0 |] in
          Sim.send c ~dest:1 ~tag:0 buf;
          buf.(0) <- 99.0 (* must not affect the message *)
        end
        else got := (Sim.recv c ~src:0 ~tag:0).(0))
  in
  Alcotest.(check (float 0.0)) "copied" 1.0 !got

let test_allreduce_ops () =
  let results = Array.make 3 0.0 in
  let _ =
    run ~nranks:3 (fun c ->
        let v = float_of_int (Sim.rank c + 1) in
        results.(Sim.rank c) <- Sim.allreduce c `Sum v)
  in
  Array.iter (fun r -> Alcotest.(check (float 1e-9)) "sum" 6.0 r) results;
  let maxes = Array.make 3 0.0 in
  let _ =
    run ~nranks:3 (fun c ->
        maxes.(Sim.rank c) <- Sim.allreduce c `Max (float_of_int (Sim.rank c)))
  in
  Array.iter (fun r -> Alcotest.(check (float 0.0)) "max" 2.0 r) maxes;
  let mins = Array.make 3 0.0 in
  let _ =
    run ~nranks:3 (fun c ->
        mins.(Sim.rank c) <- Sim.allreduce c `Min (float_of_int (Sim.rank c)))
  in
  Array.iter (fun r -> Alcotest.(check (float 0.0)) "min" 0.0 r) mins

let test_bcast () =
  let got = Array.make 4 [||] in
  let _ =
    run ~nranks:4 (fun c ->
        let data = if Sim.rank c = 0 then [| 7.0; 8.0 |] else [||] in
        got.(Sim.rank c) <- Sim.bcast c ~root:0 data)
  in
  Array.iter
    (fun d -> Alcotest.(check bool) "bcast data" true (d = [| 7.0; 8.0 |]))
    got

let test_barrier_synchronizes_time () =
  let stats =
    run ~net:Netmodel.fast ~nranks:3 (fun c ->
        Sim.advance c (float_of_int (Sim.rank c + 1));
        Sim.barrier c)
  in
  (* all ranks leave the barrier at the same time >= max advance *)
  Array.iter
    (fun t -> Alcotest.(check bool) "time >= 3" true (t >= 3.0))
    stats.Sim.rank_times;
  let t0 = stats.Sim.rank_times.(0) in
  Array.iter
    (fun t -> Alcotest.(check (float 1e-12)) "same exit time" t0 t)
    stats.Sim.rank_times

let test_message_advances_receiver_clock () =
  let net = Netmodel.ethernet_100 in
  let stats =
    run ~net ~nranks:2 (fun c ->
        if Sim.rank c = 0 then begin
          Sim.advance c 1.0;
          Sim.send c ~dest:1 ~tag:0 (Array.make 1000 0.0)
        end
        else ignore (Sim.recv c ~src:0 ~tag:0))
  in
  (* the receiver cannot finish before the message arrival *)
  Alcotest.(check bool) "receiver waited" true
    (stats.Sim.rank_times.(1) > 1.0)

let test_stats_counts () =
  let stats =
    run ~nranks:2 (fun c ->
        if Sim.rank c = 0 then begin
          Sim.send c ~dest:1 ~tag:0 (Array.make 10 0.0);
          Sim.send c ~dest:1 ~tag:0 (Array.make 5 0.0)
        end
        else begin
          ignore (Sim.recv c ~src:0 ~tag:0);
          ignore (Sim.recv c ~src:0 ~tag:0)
        end;
        ignore (Sim.allreduce c `Sum 1.0))
  in
  Alcotest.(check int) "messages" 2 stats.Sim.messages;
  Alcotest.(check int) "bytes" (8 * 15) stats.Sim.bytes;
  Alcotest.(check int) "collectives" 1 stats.Sim.collectives

let test_deadlock_detection () =
  Alcotest.(check bool) "recv with no sender deadlocks" true
    (match
       run ~nranks:2 (fun c ->
           if Sim.rank c = 1 then ignore (Sim.recv c ~src:0 ~tag:9))
     with
    | exception Sim.Deadlock _ -> true
    | _ -> false)

let test_collective_mismatch_detected () =
  Alcotest.(check bool) "barrier vs done" true
    (match
       run ~nranks:2 (fun c -> if Sim.rank c = 0 then Sim.barrier c)
     with
    | exception Sim.Deadlock _ -> true
    | _ -> false)

let test_rank_failure_propagates () =
  Alcotest.(check bool) "exception wrapped" true
    (match
       run ~nranks:2 (fun c -> if Sim.rank c = 1 then failwith "boom")
     with
    | exception Sim.Rank_failure (1, Failure _) -> true
    | _ -> false)

let test_determinism () =
  let trace () =
    let events = ref [] in
    let _ =
      run ~nranks:4 (fun c ->
          let r = Sim.rank c in
          let right = (r + 1) mod 4 and left = (r + 3) mod 4 in
          Sim.send c ~dest:right ~tag:0 [| float_of_int r |];
          let v = (Sim.recv c ~src:left ~tag:0).(0) in
          events := (r, v) :: !events;
          ignore (Sim.allreduce c `Sum v))
    in
    !events
  in
  Alcotest.(check bool) "identical traces" true (trace () = trace ())

let test_pipeline_pattern () =
  (* ranks forward a token in order: exercises blocked chains *)
  let order = ref [] in
  let _ =
    run ~nranks:5 (fun c ->
        let r = Sim.rank c in
        let v =
          if r = 0 then 1.0
          else (Sim.recv c ~src:(r - 1) ~tag:3).(0) +. 1.0
        in
        order := (r, v) :: !order;
        if r < 4 then Sim.send c ~dest:(r + 1) ~tag:3 [| v |])
  in
  Alcotest.(check (list (pair int (float 0.0))))
    "token increments through the pipeline"
    [ (0, 1.); (1, 2.); (2, 3.); (3, 4.); (4, 5.) ]
    (List.rev !order)

let test_nonblocking_roundtrip () =
  let got = ref [||] in
  let _ =
    run ~nranks:2 (fun c ->
        if Sim.rank c = 0 then begin
          let r = Sim.isend c ~dest:1 ~tag:4 [| 3.0; 4.0 |] in
          Alcotest.(check bool) "isend completes" true (Sim.wait c r = [||])
        end
        else begin
          let r = Sim.irecv c ~src:0 ~tag:4 in
          got := Sim.wait c r
        end)
  in
  Alcotest.(check bool) "payload" true (!got = [| 3.0; 4.0 |])

let test_wait_twice_rejected () =
  Alcotest.(check bool) "double wait" true
    (match
       run ~nranks:2 (fun c ->
           if Sim.rank c = 0 then Sim.send c ~dest:1 ~tag:0 [| 1.0 |]
           else begin
             let r = Sim.irecv c ~src:0 ~tag:0 in
             ignore (Sim.wait c r);
             ignore (Sim.wait c r)
           end)
     with
    | exception Sim.Rank_failure (1, Invalid_argument _) -> true
    | _ -> false)

let test_irecv_overlaps_compute () =
  (* computation issued between irecv and wait overlaps the message
     flight on the virtual clock *)
  let net =
    { Netmodel.latency = 1.0; bandwidth = infinity; send_overhead = 0.;
      recv_overhead = 0. }
  in
  let blocking = ref 0.0 and overlapped = ref 0.0 in
  let _ =
    run ~net ~nranks:2 (fun c ->
        if Sim.rank c = 0 then Sim.send c ~dest:1 ~tag:0 [| 1.0 |]
        else begin
          ignore (Sim.recv c ~src:0 ~tag:0);
          Sim.advance c 1.0;
          blocking := Sim.time c
        end)
  in
  let _ =
    run ~net ~nranks:2 (fun c ->
        if Sim.rank c = 0 then Sim.send c ~dest:1 ~tag:0 [| 1.0 |]
        else begin
          let r = Sim.irecv c ~src:0 ~tag:0 in
          Sim.advance c 1.0;
          ignore (Sim.wait c r);
          overlapped := Sim.time c
        end)
  in
  (* blocking: wait 1s for the message then compute 1s = 2s;
     overlapped: compute during the flight = 1s *)
  Alcotest.(check bool) "overlap saves time" true (!overlapped < !blocking)

let test_sendrecv () =
  let ok = ref true in
  let _ =
    run ~nranks:2 (fun c ->
        let r = Sim.rank c in
        let peer = 1 - r in
        let got =
          Sim.sendrecv c ~dest:peer ~send_tag:9 [| float_of_int r |] ~src:peer
            ~recv_tag:9
        in
        if got <> [| float_of_int peer |] then ok := false)
  in
  Alcotest.(check bool) "pairwise swap" true !ok

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let test_per_rank_counts_conserved () =
  (* ring exchange plus two extra point-to-point messages: every send must
     be matched by exactly one recv, per rank and in total *)
  let stats =
    run ~nranks:4 (fun c ->
        let r = Sim.rank c in
        let right = (r + 1) mod 4 and left = (r + 3) mod 4 in
        Sim.send c ~dest:right ~tag:0 [| float_of_int r |];
        ignore (Sim.recv c ~src:left ~tag:0);
        if r = 0 then begin
          Sim.send c ~dest:2 ~tag:1 [| 1.0 |];
          Sim.send c ~dest:2 ~tag:1 [| 2.0 |]
        end;
        if r = 2 then begin
          ignore (Sim.recv c ~src:0 ~tag:1);
          ignore (Sim.recv c ~src:0 ~tag:1)
        end)
  in
  let total a = Array.fold_left ( + ) 0 a in
  Alcotest.(check int) "sends = messages" stats.Sim.messages
    (total stats.Sim.rank_sends);
  Alcotest.(check int) "recvs = messages" stats.Sim.messages
    (total stats.Sim.rank_recvs);
  Alcotest.(check int) "rank 0 sends" 3 stats.Sim.rank_sends.(0);
  Alcotest.(check int) "rank 2 recvs" 3 stats.Sim.rank_recvs.(2);
  Alcotest.(check int) "rank 1 sends" 1 stats.Sim.rank_sends.(1)

let test_blocked_time_attributed () =
  (* the receiver sits idle for the whole message flight: latency 1s *)
  let net =
    { Netmodel.latency = 1.0; bandwidth = infinity; send_overhead = 0.;
      recv_overhead = 0. }
  in
  let stats =
    run ~net ~nranks:2 (fun c ->
        if Sim.rank c = 0 then Sim.send c ~dest:1 ~tag:0 [| 1.0 |]
        else ignore (Sim.recv c ~src:0 ~tag:0))
  in
  Alcotest.(check (float 1e-9)) "receiver blocked for the latency" 1.0
    stats.Sim.rank_blocked.(1);
  Alcotest.(check (float 1e-9)) "sender never blocked" 0.0
    stats.Sim.rank_blocked.(0)

let test_deadlock_names_stuck_ranks () =
  (* ranks 1 and 2 block on receives nobody sends; the diagnostic must
     name each stuck rank with the (src, tag) it is waiting on *)
  match
    run ~nranks:3 (fun c ->
        Sim.advance c 0.5;
        if Sim.rank c = 1 then ignore (Sim.recv c ~src:0 ~tag:7);
        if Sim.rank c = 2 then ignore (Sim.recv c ~src:0 ~tag:9))
  with
  | exception Sim.Deadlock msg ->
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("message mentions " ^ needle) true
            (contains msg needle))
        [ "rank 0: done"; "rank 1: blocked on recv(src=0, tag=7)";
          "rank 2: blocked on recv(src=0, tag=9)"; "t=0.5" ]
  | _ -> Alcotest.fail "expected Deadlock"

let test_deadlock_names_collectives () =
  (* rank 0 parks in a barrier while rank 1 parks in an allreduce: the
     diagnostic must name the collective each rank is stuck in, including
     the reduction operation *)
  match
    run ~nranks:2 (fun c ->
        if Sim.rank c = 0 then Sim.barrier c
        else ignore (Sim.allreduce c `Sum 1.0))
  with
  | exception Sim.Deadlock msg ->
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("message mentions " ^ needle) true
            (contains msg needle))
        [ "rank 0: blocked in barrier"; "rank 1: blocked in allreduce(sum)" ]
  | _ -> Alcotest.fail "expected Deadlock"

let test_mismatched_allreduce_named () =
  (* every rank is in an allreduce but the operations disagree: this is
     diagnosed as a mismatch, with both operations visible *)
  match
    run ~nranks:2 (fun c ->
        if Sim.rank c = 0 then ignore (Sim.allreduce c `Sum 1.0)
        else ignore (Sim.allreduce c `Max 1.0))
  with
  | exception Sim.Deadlock msg ->
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("message mentions " ^ needle) true
            (contains msg needle))
        [ "mismatched operations"; "allreduce(sum)"; "allreduce(max)" ]
  | _ -> Alcotest.fail "expected Deadlock"

let test_wait_error_names_request () =
  (* the double-completion message must say which request: kind + peer *)
  match
    run ~nranks:2 (fun c ->
        if Sim.rank c = 0 then Sim.send c ~dest:1 ~tag:6 [| 1.0 |]
        else begin
          let r = Sim.irecv c ~src:0 ~tag:6 in
          ignore (Sim.wait c r);
          ignore (Sim.wait c r)
        end)
  with
  | exception Sim.Rank_failure (1, Invalid_argument msg) ->
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("message mentions " ^ needle) true
            (contains msg needle))
        [ "recv(src=0, tag=6)"; "already completed" ]
  | _ -> Alcotest.fail "expected Invalid_argument on rank 1"

let test_waitall_duplicate_request_rejected () =
  (* a request listed twice in a waitall is a double completion too, and
     gets the same self-describing error *)
  match
    run ~nranks:2 (fun c ->
        if Sim.rank c = 1 then ignore (Sim.recv c ~src:0 ~tag:3)
        else begin
          let r = Sim.isend c ~dest:1 ~tag:3 [| 2.0 |] in
          ignore (Sim.waitall c [ r; r ])
        end)
  with
  | exception Sim.Rank_failure (0, Invalid_argument msg) ->
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("message mentions " ^ needle) true
            (contains msg needle))
        [ "send(dest=1, tag=3)"; "already completed" ]
  | _ -> Alcotest.fail "expected Invalid_argument on rank 0"

let suite =
  [
    ("send/recv", `Quick, test_send_recv);
    ("fifo order", `Quick, test_fifo_order);
    ("tags independent", `Quick, test_tags_independent);
    ("send copies payload", `Quick, test_send_copies_payload);
    ("allreduce ops", `Quick, test_allreduce_ops);
    ("bcast", `Quick, test_bcast);
    ("barrier time", `Quick, test_barrier_synchronizes_time);
    ("message arrival time", `Quick, test_message_advances_receiver_clock);
    ("stats counts", `Quick, test_stats_counts);
    ("deadlock detection", `Quick, test_deadlock_detection);
    ("collective mismatch", `Quick, test_collective_mismatch_detected);
    ("rank failure", `Quick, test_rank_failure_propagates);
    ("determinism", `Quick, test_determinism);
    ("pipeline pattern", `Quick, test_pipeline_pattern);
    ("nonblocking roundtrip", `Quick, test_nonblocking_roundtrip);
    ("wait twice rejected", `Quick, test_wait_twice_rejected);
    ("irecv overlaps compute", `Quick, test_irecv_overlaps_compute);
    ("sendrecv", `Quick, test_sendrecv);
    ("per-rank counts conserved", `Quick, test_per_rank_counts_conserved);
    ("blocked time attributed", `Quick, test_blocked_time_attributed);
    ("deadlock names stuck ranks", `Quick, test_deadlock_names_stuck_ranks);
    ("deadlock names collectives", `Quick, test_deadlock_names_collectives);
    ("mismatched allreduce named", `Quick, test_mismatched_allreduce_named);
    ("wait error names request", `Quick, test_wait_error_names_request);
    ( "waitall duplicate request rejected", `Quick,
      test_waitall_duplicate_request_rejected );
  ]
