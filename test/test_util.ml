(** Tests for the util library: intervals, PRNG, table rendering. *)

open Autocfd_util

let test_interval_basics () =
  let i = Interval.make 3 7 in
  Alcotest.(check int) "lo" 3 (Interval.lo i);
  Alcotest.(check int) "hi" 7 (Interval.hi i);
  Alcotest.(check int) "length" 5 (Interval.length i);
  Alcotest.(check bool) "mem lo" true (Interval.mem 3 i);
  Alcotest.(check bool) "mem hi" true (Interval.mem 7 i);
  Alcotest.(check bool) "mem out" false (Interval.mem 8 i);
  Alcotest.check_raises "invalid" (Invalid_argument "Interval.make: lo=5 > hi=4")
    (fun () -> ignore (Interval.make 5 4))

let test_interval_set_ops () =
  let a = Interval.make 1 5 and b = Interval.make 4 9 and c = Interval.make 7 9 in
  Alcotest.(check bool) "intersects" true (Interval.intersects a b);
  Alcotest.(check bool) "disjoint" false (Interval.intersects a c);
  (match Interval.inter a b with
  | Some i ->
      Alcotest.(check int) "inter lo" 4 (Interval.lo i);
      Alcotest.(check int) "inter hi" 5 (Interval.hi i)
  | None -> Alcotest.fail "expected intersection");
  Alcotest.(check bool) "inter none" true (Interval.inter a c = None);
  let h = Interval.hull a c in
  Alcotest.(check int) "hull lo" 1 (Interval.lo h);
  Alcotest.(check int) "hull hi" 9 (Interval.hi h);
  Alcotest.(check bool) "contains" true
    (Interval.contains (Interval.make 0 10) a)

let test_interval_arith () =
  let a = Interval.make 2 5 and b = Interval.make (-3) 4 in
  let s = Interval.sum a b in
  Alcotest.(check int) "sum lo" (-1) (Interval.lo s);
  Alcotest.(check int) "sum hi" 9 (Interval.hi s);
  let p = Interval.affine ~mul:3 ~add:1 a in
  Alcotest.(check int) "affine lo" 7 (Interval.lo p);
  Alcotest.(check int) "affine hi" 16 (Interval.hi p);
  (* negative multiplier swaps the endpoints *)
  let n = Interval.affine ~mul:(-2) ~add:1 a in
  Alcotest.(check int) "neg affine lo" (-9) (Interval.lo n);
  Alcotest.(check int) "neg affine hi" (-3) (Interval.hi n);
  let z = Interval.affine ~mul:0 ~add:4 a in
  Alcotest.(check int) "zero mul lo" 4 (Interval.lo z);
  Alcotest.(check int) "zero mul hi" 4 (Interval.hi z)

let gen_interval =
  QCheck.Gen.(
    let* lo = int_range (-50) 50 in
    let* len = int_range 0 30 in
    return (Interval.make lo (lo + len)))

let arb_interval = QCheck.make ~print:Interval.to_string gen_interval

let prop_inter_comm =
  QCheck.Test.make ~count:300 ~name:"interval intersection is commutative"
    (QCheck.pair arb_interval arb_interval) (fun (a, b) ->
      Interval.inter a b = Interval.inter b a)

let prop_inter_subset =
  QCheck.Test.make ~count:300
    ~name:"intersection is contained in both operands"
    (QCheck.pair arb_interval arb_interval) (fun (a, b) ->
      match Interval.inter a b with
      | None -> not (Interval.intersects a b)
      | Some i -> Interval.contains a i && Interval.contains b i)

let prop_hull_superset =
  QCheck.Test.make ~count:300 ~name:"hull contains both operands"
    (QCheck.pair arb_interval arb_interval) (fun (a, b) ->
      let h = Interval.hull a b in
      Interval.contains h a && Interval.contains h b)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_split_independent () =
  let parent = Prng.create 7 in
  let child = Prng.split parent in
  let xs = List.init 50 (fun _ -> Prng.int parent 1000) in
  let ys = List.init 50 (fun _ -> Prng.int child 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_prng_bounds () =
  let rng = Prng.create 123 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17);
    let w = Prng.int_in rng (-5) 5 in
    Alcotest.(check bool) "int_in range" true (w >= -5 && w <= 5);
    let f = Prng.float rng 2.5 in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 2.5)
  done

let test_prng_shuffle_permutation () =
  let rng = Prng.create 99 in
  let a = Array.init 30 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check bool) "is a permutation" true
    (Array.to_list sorted = List.init 30 Fun.id)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_table_render () =
  let t = Table.create ~title:"T" ~headers:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "contains 333" true (contains_substring s "333");
  Alcotest.check_raises "width check"
    (Invalid_argument "Table.add_row: expected 2 cells, got 3") (fun () ->
      Table.add_row t [ "x"; "y"; "z" ])

let test_table_cells () =
  Alcotest.(check string) "int" "42" (Table.cell_int 42);
  Alcotest.(check string) "float" "3.14" (Table.cell_float 3.14159);
  Alcotest.(check string) "pct" "56%" (Table.cell_pct 0.56)

let suite =
  [
    ("interval basics", `Quick, test_interval_basics);
    ("interval set ops", `Quick, test_interval_set_ops);
    ("interval sum/affine", `Quick, test_interval_arith);
    QCheck_alcotest.to_alcotest prop_inter_comm;
    QCheck_alcotest.to_alcotest prop_inter_subset;
    QCheck_alcotest.to_alcotest prop_hull_superset;
    ("prng deterministic", `Quick, test_prng_deterministic);
    ("prng split", `Quick, test_prng_split_independent);
    ("prng bounds", `Quick, test_prng_bounds);
    ("prng shuffle", `Quick, test_prng_shuffle_permutation);
    ("table render", `Quick, test_table_render);
    ("table cells", `Quick, test_table_cells);
  ]
