(** Benchmark harness: regenerates every table of the paper's evaluation
    (§6, Tables 1-5) side by side with the published values, then runs
    Bechamel micro-benchmarks of the pipeline stages that produce them.

    Usage:
      bench/main.exe             print all tables + micro-benchmarks
      bench/main.exe table1      one table
      bench/main.exe tables      all tables, no micro-benchmarks
      bench/main.exe micro       micro-benchmarks only
      bench/main.exe ablation    optimal vs first-fit combining ablation
      bench/main.exe engine      tree-walking vs compiled vs fused-kernel
                                 execution engines, plus per-loop kernel
                                 coverage ([--check]: exit nonzero unless
                                 results are identical and the fused tier
                                 at least matches the compiled speedup)
      bench/main.exe chaos       seeded fault schedules vs the reliable
                                 transport and checkpoint/restart
                                 ([--check]: exit nonzero unless every
                                 recoverable schedule yields bit-identical
                                 results within the overhead budget)
      bench/main.exe --json      write BENCH_tables.json (tables 1-5 +
                                 model validation + engine speedup,
                                 machine-readable, for diffing the perf
                                 trajectory across PRs) *)

module E = Autocfd.Experiments
module D = Autocfd.Driver
module S = Autocfd_syncopt

let print_table1 () = print_string (E.render_table1 (E.table1 ()))

let print_table2 () =
  print_string
    (E.render_perf
       ~title:
         "Table 2: overall performance of case study 1 (aerofoil, \
          99 x 41 x 13; ours vs paper)"
       (E.table2 ()))

let print_table3 () =
  print_string
    (E.render_perf
       ~title:
         "Table 3: overall performance of case study 2 (sprayer, \
          300 x 100; ours vs paper)"
       (E.table3 ()))

let print_table4 () = print_string (E.render_table4 (E.table4 ()))
let print_table5 () = print_string (E.render_table5 (E.table5 ()))

(* ------------------------------------------------------------------ *)
(* Ablation: the paper's optimal combining (Fig. 6(b)) vs the          *)
(* suboptimal first-fit strategy (Fig. 6(c))                           *)
(* ------------------------------------------------------------------ *)

let print_ablation () =
  let open Autocfd_util.Table in
  let table =
    create
      ~title:
        "Ablation: optimal combining (Fig. 6(b)) vs first-fit (Fig. 6(c))"
      ~headers:
        [ "program"; "partition"; "before"; "optimal after";
          "first-fit after" ]
  in
  let run src name partitions =
    let t = D.load src in
    List.iter
      (fun parts ->
        let opt = D.plan t ~parts in
        let ff = D.plan ~combine:S.Optimizer.First_fit t ~parts in
        add_row table
          [
            name;
            String.concat " x "
              (Array.to_list (Array.map string_of_int parts));
            cell_int opt.D.opt.S.Optimizer.before;
            cell_int opt.D.opt.S.Optimizer.after;
            cell_int ff.D.opt.S.Optimizer.after;
          ])
      partitions
  in
  run (Autocfd_apps.Aerofoil.source ()) "aerofoil"
    [ [| 4; 1; 1 |]; [| 4; 4; 1 |]; [| 2; 2; 2 |] ];
  run (Autocfd_apps.Sprayer.source ()) "sprayer"
    [ [| 4; 1 |]; [| 4; 4 |] ];
  print table

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table                  *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let aero_src = Autocfd_apps.Aerofoil.source () in
  let spray_src = Autocfd_apps.Sprayer.source () in
  let aero = D.load aero_src in
  let spray = D.load spray_src in
  let small = D.load (Autocfd_apps.Sprayer.source ~ni:40 ~nj:20 ~ntime:3 ()) in
  let small_plan = D.plan small ~parts:[| 2; 2 |] in
  let small_aero =
    D.load (Autocfd_apps.Aerofoil.source ~ni:16 ~nj:10 ~nk:6 ~ntime:2 ())
  in
  let tests =
    [
      (* Table 1 pipeline stage: full analysis + sync optimization *)
      Test.make ~name:"table1:analyze+optimize (aerofoil 4x1x1)"
        (Staged.stage (fun () -> ignore (D.plan aero ~parts:[| 4; 1; 1 |])));
      Test.make ~name:"table1:analyze+optimize (sprayer 4x4)"
        (Staged.stage (fun () -> ignore (D.plan spray ~parts:[| 4; 4 |])));
      (* Tables 2/3: the analytic performance prediction *)
      Test.make ~name:"table2:predict (aerofoil 3x2x1)"
        (Staged.stage
           (let plan = D.plan aero ~parts:[| 3; 2; 1 |] in
            fun () ->
              ignore
                (Autocfd_perfmodel.Model.predict_parallel E.machine
                   ~gi:aero.D.gi ~topo:plan.D.topo plan.D.spmd)));
      Test.make ~name:"table3:predict (sprayer 2x2)"
        (Staged.stage
           (let plan = D.plan spray ~parts:[| 2; 2 |] in
            fun () ->
              ignore
                (Autocfd_perfmodel.Model.predict_parallel E.machine
                   ~gi:spray.D.gi ~topo:plan.D.topo plan.D.spmd)));
      (* Table 4 stage: frontend parse + inline across grid sizes *)
      Test.make ~name:"table4:parse+inline (sprayer 160x60)"
        (Staged.stage (fun () ->
             ignore (D.load (Autocfd_apps.Sprayer.source ~ni:160 ~nj:60 ()))));
      (* Table 5 stage / correctness path: simulated SPMD execution *)
      Test.make ~name:"table5:spmd-execute (sprayer 40x20, 4 ranks)"
        (Staged.stage (fun () -> ignore (D.run_parallel small_plan)));
      (* Execution engines head to head on the same simulated runs *)
      Test.make ~name:"engine:tree-walk (sprayer 40x20, 4 ranks)"
        (Staged.stage (fun () ->
             ignore
               (D.run_parallel ~engine:Autocfd_interp.Spmd.Tree small_plan)));
      Test.make ~name:"engine:compiled (sprayer 40x20, 4 ranks)"
        (Staged.stage (fun () ->
             ignore
               (D.run_parallel ~engine:Autocfd_interp.Spmd.Compiled
                  small_plan)));
      Test.make ~name:"engine:fused (sprayer 40x20, 4 ranks)"
        (Staged.stage (fun () ->
             ignore
               (D.run_parallel ~engine:Autocfd_interp.Spmd.Fused small_plan)));
      Test.make ~name:"engine:tree-walk (aerofoil 16x10x6, 4 ranks)"
        (Staged.stage
           (let plan = D.plan small_aero ~parts:[| 2; 2; 1 |] in
            fun () ->
              ignore
                (D.run_parallel ~engine:Autocfd_interp.Spmd.Tree plan)));
      Test.make ~name:"engine:compiled (aerofoil 16x10x6, 4 ranks)"
        (Staged.stage
           (let plan = D.plan small_aero ~parts:[| 2; 2; 1 |] in
            fun () ->
              ignore
                (D.run_parallel ~engine:Autocfd_interp.Spmd.Compiled plan)));
      Test.make ~name:"engine:fused (aerofoil 16x10x6, 4 ranks)"
        (Staged.stage
           (let plan = D.plan small_aero ~parts:[| 2; 2; 1 |] in
            fun () ->
              ignore (D.run_parallel ~engine:Autocfd_interp.Spmd.Fused plan)));
    ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances test
      in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Printf.printf "%-50s %12.3f us/run\n" name (est /. 1000.)
          | _ -> Printf.printf "%-50s (no estimate)\n" name)
        ols)
    tests

(* ------------------------------------------------------------------ *)
(* Partition advisor: the paper's volume heuristic vs the full model    *)
(* ------------------------------------------------------------------ *)

let print_advisor () =
  let open Autocfd_util.Table in
  let module M = Autocfd_perfmodel.Model in
  let table =
    create
      ~title:
        "Partition advisor: minimal-communication choice (paper 4.1) vs \
         model-predicted best"
      ~headers:
        [ "program"; "procs"; "volume choice"; "model choice";
          "volume time (s)"; "model time (s)" ]
  in
  let shape parts =
    String.concat " x " (Array.to_list (Array.map string_of_int parts))
  in
  let run name src nprocs_list =
    let t = D.load src in
    List.iter
      (fun nprocs ->
        let pv = D.auto_parts t ~nprocs in
        let pm = D.auto_parts_by_model t ~nprocs in
        let time parts =
          let plan = D.plan t ~parts in
          (M.predict_parallel E.machine ~gi:t.D.gi ~topo:plan.D.topo
             plan.D.spmd)
            .M.time
        in
        add_row table
          [
            name; cell_int nprocs; shape pv; shape pm;
            cell_float ~decimals:0 (time pv);
            cell_float ~decimals:0 (time pm);
          ])
      nprocs_list
  in
  run "aerofoil"
    (Autocfd_apps.Aerofoil.source ~ntime:E.aerofoil_frames ())
    [ 4; 6 ];
  run "sprayer"
    (Autocfd_apps.Sprayer.source ~ntime:E.sprayer_frames ())
    [ 4; 6 ];
  print table

let write_json () =
  let path = "BENCH_tables.json" in
  let oc = open_out path in
  output_string oc (Autocfd_obs.Json.pretty (E.tables_json ()));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path

let all_tables () =
  print_table1 ();
  print_newline ();
  print_table2 ();
  print_newline ();
  print_table3 ();
  print_newline ();
  print_table4 ();
  print_newline ();
  print_table5 ();
  print_newline ();
  print_ablation ();
  print_newline ();
  print_advisor ();
  print_newline ();
  print_string (E.render_validation (E.validate_model ()))

let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" with
  | "table1" -> print_table1 ()
  | "table2" -> print_table2 ()
  | "table3" -> print_table3 ()
  | "table4" -> print_table4 ()
  | "table5" -> print_table5 ()
  | "ablation" -> print_ablation ()
  | "advisor" -> print_advisor ()
  | "validate" ->
      print_string (E.render_validation (E.validate_model ()))
  | "engine" ->
      let rows = E.engine_bench () in
      print_string (E.render_engine rows);
      print_newline ();
      print_string (E.render_engine_coverage rows);
      (* --check: CI smoke mode.  Fails if any engine disagrees or the
         fused tier stops paying for itself (its speedup over the tree
         walker drops below the plain compiled engine's). *)
      if Array.length Sys.argv > 2 && Sys.argv.(2) = "--check" then
        List.iter
          (fun (r : E.engine_row) ->
            if not r.E.er_identical then begin
              Printf.eprintf "FAIL %s: engines disagree\n" r.E.er_program;
              exit 1
            end;
            if r.E.er_fused_speedup < r.E.er_speedup then begin
              Printf.eprintf
                "FAIL %s: fused speedup %.2f below compiled speedup %.2f\n"
                r.E.er_program r.E.er_fused_speedup r.E.er_speedup;
              exit 1
            end;
            Printf.printf
              "OK %s: fused %.2fx >= compiled %.2fx, results identical\n"
              r.E.er_program r.E.er_fused_speedup r.E.er_speedup)
          rows
  | "chaos" ->
      let rows = E.chaos_bench () in
      print_string (E.render_chaos rows);
      (* --check: CI smoke mode.  Every schedule in the bench is
         recoverable, so any divergence is a transport/recovery bug; the
         overhead ceiling catches retransmit storms and checkpoint
         regressions. *)
      if Array.length Sys.argv > 2 && Sys.argv.(2) = "--check" then begin
        let max_overhead = 4.0 in
        List.iter
          (fun (r : E.chaos_row) ->
            if not r.E.ch_identical then begin
              Printf.eprintf "FAIL %s/%s: result diverged from fault-free run\n"
                r.E.ch_program r.E.ch_schedule;
              exit 1
            end;
            if r.E.ch_overhead > max_overhead then begin
              Printf.eprintf "FAIL %s/%s: overhead %.2fx above budget %.1fx\n"
                r.E.ch_program r.E.ch_schedule r.E.ch_overhead max_overhead;
              exit 1
            end;
            Printf.printf "OK %s/%s: identical, overhead %.2fx\n"
              r.E.ch_program r.E.ch_schedule r.E.ch_overhead)
          rows
      end
  | "tables" -> all_tables ()
  | "--json" | "json" -> write_json ()
  | "micro" -> micro ()
  | "all" ->
      all_tables ();
      print_newline ();
      print_endline "Micro-benchmarks (Bechamel):";
      micro ()
  | other ->
      Printf.eprintf
        "unknown command %S (expected: table1..table5, tables, --json, \
         ablation, micro, all)\n"
        other;
      exit 1
