(** Benchmark harness: regenerates every table of the paper's evaluation
    (§6, Tables 1-5) side by side with the published values, then runs
    Bechamel micro-benchmarks of the pipeline stages that produce them.

    Usage:
      bench/main.exe             print all tables + micro-benchmarks
      bench/main.exe table1      one table
      bench/main.exe tables      all tables, no micro-benchmarks
                                 ([--check]: three-pass CI smoke — serial,
                                 cold parallel and warm parallel sweeps
                                 must render byte-identically, the warm
                                 pass must be 100% cache hits and at
                                 least 5x faster than the cold pass)
      bench/main.exe micro       micro-benchmarks only
      bench/main.exe ablation    optimal vs first-fit combining ablation
      bench/main.exe engine      tree-walking vs compiled vs fused-kernel
                                 execution engines, plus per-loop kernel
                                 coverage ([--check]: exit nonzero unless
                                 results are identical and the fused tier
                                 at least matches the compiled speedup)
      bench/main.exe coverage    per-nest fused-kernel coverage of the
                                 bundled applications, before/after the
                                 loop-fission pass, gated against the
                                 committed COVERAGE.json manifest
                                 ([--update-coverage]: rewrite it)
      bench/main.exe chaos       seeded fault schedules vs the reliable
                                 transport and checkpoint/restart
                                 ([--check]: exit nonzero unless every
                                 recoverable schedule yields bit-identical
                                 results within the overhead budget)
      bench/main.exe tune        auto-tune both case studies: every point
                                 of the configuration product space
                                 (rank count x feasible partition shape x
                                 sync combining, [--grid wide] adds
                                 fission/fusion ablations and the real
                                 Domains engine) as cached sweep jobs;
                                 prints the winner plus the Pareto
                                 frontier per program
                                 ([--check]: three-pass gate — serial,
                                 cold parallel and warm parallel tunes
                                 must render byte-identically, the warm
                                 pass must be 100% cache hits, the tuned
                                 winner must not lose to any hand-picked
                                 Table 2/3 row, and the frontier must
                                 contain no dominated entry)
      bench/main.exe fabric      the pooled tables over the distributed
                                 master/worker fabric (spawns --workers
                                 processes, default 3)
                                 ([--check]: three-pass chaos gate —
                                 serial reference, master + 3 workers
                                 with one SIGKILLed mid-sweep (must
                                 render byte-identically with >= 1
                                 requeue and leave fabric_trace.json),
                                 and a worker-less master that must
                                 degrade to the in-process pool)
      bench/main.exe worker --connect ADDR
                                 one fabric worker process: lease job
                                 specs from the master at ADDR, heartbeat
                                 while resolving, stream results back
                                 (exits nonzero if ADDR is unreachable)
      bench/main.exe --json      write BENCH_tables.json (tables 1-5 +
                                 model validation + engine speedup +
                                 sweep scheduler stats, machine-readable,
                                 for diffing the perf trajectory across
                                 PRs)

    Baseline gate (perf-regression CI):
      --baseline F       baseline document (default: BENCH_baseline.json)
      --check-regress    regenerate the tables and gate them against the
                         baseline ({!Autocfd.Baseline}): modelled times /
                         sync counts must not rise, speedups must not
                         fall, engine identity and chaos recovery must
                         stay true; exit nonzero on any regression
      --update-baseline  regenerate the tables and (over-)write the
                         baseline file
      --coverage F       coverage manifest (default: COVERAGE.json); any
                         nest it lists as fused must still fuse — the
                         [engine --check] and [coverage] verbs gate on it
      --update-coverage  (over-)write the coverage manifest instead of
                         gating against it
      --tolerance T      relative allowance for deterministic
                         (virtual-clock) numbers (default 0.05); the
                         host-wall-clock engine speedups always use the
                         generous 0.5

    Sweep options (any verb that regenerates tables):
      --jobs N        worker domains for the row sweep (default: all cores)
      --workers N     spawn N fabric worker processes and run the sweep
                      over the distributed fabric instead of in-process
      --connect ADDR  (worker verb) fabric master address: unix:/path,
                      a bare socket path, or host:port
      --no-cache      disable the persistent result cache
      --cache-dir D   cache directory (default: _autocfd_cache)

    Table output goes to stdout and is byte-identical for any --jobs value
    and for cold vs warm caches; scheduler/cache statistics go to
    stderr. *)

module E = Autocfd.Experiments
module D = Autocfd.Driver

let parts_spec p = Autocfd.Runspec.(default |> with_parts (Some p))
module S = Autocfd_syncopt
module Sched = Autocfd_sched

(* ------------------------------------------------------------------ *)
(* Option parsing: verb [--check] [--jobs N] [--no-cache] [--cache-dir D] *)
(* ------------------------------------------------------------------ *)

type opts = {
  o_verb : string;
  o_check : bool;
  o_jobs : int;
  o_workers : int;
  o_connect : string option;
  o_cache : bool;
  o_cache_dir : string;
  o_baseline : string;
  o_check_regress : bool;
  o_update_baseline : bool;
  o_coverage : string;
  o_update_coverage : bool;
  o_tolerance : float;
  o_grid : Autocfd.Tune.grid;
}

let usage () =
  Printf.eprintf
    "usage: %s [table1..table5|tables|validate|engine|coverage|chaos|\
     tune|fabric|worker|ablation|advisor|micro|--json|all] [--check] \
     [--jobs N] [--workers N] [--connect ADDR] [--no-cache] \
     [--cache-dir D] [--baseline F] [--check-regress] [--update-baseline] \
     [--coverage F] [--update-coverage] [--tolerance T] \
     [--grid narrow|default|wide]\n"
    Sys.argv.(0);
  exit 1

let parse_opts () =
  let o =
    ref
      {
        o_verb = "all";
        o_check = false;
        o_jobs = Sched.Pool.default_jobs ();
        o_workers = 0;
        o_connect = None;
        o_cache = true;
        o_cache_dir = "_autocfd_cache";
        o_baseline = "BENCH_baseline.json";
        o_check_regress = false;
        o_update_baseline = false;
        o_coverage = "COVERAGE.json";
        o_update_coverage = false;
        o_tolerance = 0.05;
        o_grid = Autocfd.Tune.Default;
      }
  in
  let rec go i =
    if i < Array.length Sys.argv then
      match Sys.argv.(i) with
      | "--check" ->
          o := { !o with o_check = true };
          go (i + 1)
      | "--no-cache" ->
          o := { !o with o_cache = false };
          go (i + 1)
      | "--check-regress" ->
          o := { !o with o_check_regress = true };
          go (i + 1)
      | "--update-baseline" ->
          o := { !o with o_update_baseline = true };
          go (i + 1)
      | "--update-coverage" ->
          o := { !o with o_update_coverage = true };
          go (i + 1)
      | "--coverage" when i + 1 < Array.length Sys.argv ->
          o := { !o with o_coverage = Sys.argv.(i + 1) };
          go (i + 2)
      | "--jobs" when i + 1 < Array.length Sys.argv ->
          (match int_of_string_opt Sys.argv.(i + 1) with
          | Some n when n >= 1 -> o := { !o with o_jobs = n }
          | _ ->
              Printf.eprintf "--jobs: expected a positive integer\n";
              exit 1);
          go (i + 2)
      | "--workers" when i + 1 < Array.length Sys.argv ->
          (match int_of_string_opt Sys.argv.(i + 1) with
          | Some n when n >= 0 -> o := { !o with o_workers = n }
          | _ ->
              Printf.eprintf "--workers: expected a non-negative integer\n";
              exit 1);
          go (i + 2)
      | "--connect" when i + 1 < Array.length Sys.argv ->
          o := { !o with o_connect = Some Sys.argv.(i + 1) };
          go (i + 2)
      | "--cache-dir" when i + 1 < Array.length Sys.argv ->
          o := { !o with o_cache_dir = Sys.argv.(i + 1) };
          go (i + 2)
      | "--baseline" when i + 1 < Array.length Sys.argv ->
          o := { !o with o_baseline = Sys.argv.(i + 1) };
          go (i + 2)
      | "--grid" when i + 1 < Array.length Sys.argv ->
          (match Autocfd.Tune.grid_of_string Sys.argv.(i + 1) with
          | Ok g -> o := { !o with o_grid = g }
          | Error msg ->
              Printf.eprintf "--grid: %s\n" msg;
              exit 1);
          go (i + 2)
      | "--tolerance" when i + 1 < Array.length Sys.argv ->
          (match float_of_string_opt Sys.argv.(i + 1) with
          | Some t when t >= 0.0 -> o := { !o with o_tolerance = t }
          | _ ->
              Printf.eprintf "--tolerance: expected a non-negative number\n";
              exit 1);
          go (i + 2)
      | ("--jobs" | "--workers" | "--connect" | "--cache-dir" | "--baseline"
        | "--coverage" | "--tolerance" | "--grid") as a ->
          Printf.eprintf "%s: missing argument\n" a;
          exit 1
      | a when i = 1 && (a = "--json" || (String.length a > 0 && a.[0] <> '-'))
        ->
          o := { !o with o_verb = a };
          go (i + 1)
      | a ->
          Printf.eprintf "unknown option %S\n" a;
          usage ()
  in
  go 1;
  !o

let make_cache opts =
  if opts.o_cache then
    try Some (Sched.Cache.create ~dir:opts.o_cache_dir ())
    with Sys_error msg ->
      Printf.eprintf "bench: unusable cache directory: %s\n" msg;
      exit 1
  else None

(* a fabric master listening on a private unix socket, with [n] worker
   processes re-execing this very binary's [worker] verb *)
let make_fabric ?cfg n =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "autocfd-bench-%d.sock" (Unix.getpid ()))
  in
  let fb = Sched.Fabric.create ?cfg ~listen:(Sched.Fabric.Unix_path sock) () in
  let addr = Sched.Fabric.addr_to_string (Sched.Fabric.addr fb) in
  for _ = 1 to n do
    ignore
      (Sched.Fabric.spawn_worker fb
         ~argv:[| Sys.executable_name; "worker"; "--connect"; addr |])
  done;
  fb

let make_sweep ?fabric opts =
  E.sweep ~jobs:opts.o_jobs ?cache:(make_cache opts) ?fabric ()

let report_sweep ?fabric sw =
  let stats = E.sweep_stats sw in
  if stats <> [] then
    prerr_string
      (Autocfd.Report.sched_summary ~stale:(E.sweep_stale sw) stats);
  match fabric with
  | Some fb ->
      prerr_string (Autocfd.Report.fabric_summary (Sched.Fabric.stats fb));
      Sched.Fabric.shutdown fb
  | None -> ()

(* one fabric worker process (the [worker] verb): resolve job specs
   through the shared Experiments dispatcher until the master hangs up *)
let run_worker opts =
  let addr_str =
    match opts.o_connect with
    | Some a -> a
    | None ->
        Printf.eprintf "worker: --connect ADDR is required\n";
        exit 1
  in
  match Sched.Fabric.addr_of_string addr_str with
  | Error msg ->
      Printf.eprintf "worker: %s\n" msg;
      exit 1
  | Ok addr -> (
      match
        Sched.Fabric.serve ~connect:addr ~resolve:E.exec_spec ()
      with
      | Ok () -> ()
      | Error msg ->
          Printf.eprintf "worker: %s\n" msg;
          exit 1)

(* ------------------------------------------------------------------ *)
(* Table printing (stdout only; stats go to stderr afterwards)         *)
(* ------------------------------------------------------------------ *)

let table1_string sw = E.render_table1 (E.table1 ~sweep:sw ())

let table2_string sw =
  E.render_perf
    ~title:
      "Table 2: overall performance of case study 1 (aerofoil, \
       99 x 41 x 13; ours vs paper)"
    (E.table2 ~sweep:sw ())

let table3_string sw =
  E.render_perf
    ~title:
      "Table 3: overall performance of case study 2 (sprayer, \
       300 x 100; ours vs paper)"
    (E.table3 ~sweep:sw ())

let table4_string sw = E.render_table4 (E.table4 ~sweep:sw ())
let table5_string sw = E.render_table5 (E.table5 ~sweep:sw ())
let validation_string sw = E.render_validation (E.validate_model ~sweep:sw ())

(* the pooled part of `tables`: what the three-pass --check compares *)
let sweep_tables_string sw =
  String.concat "\n"
    [
      table1_string sw; table2_string sw; table3_string sw; table4_string sw;
      table5_string sw; validation_string sw;
    ]

(* ------------------------------------------------------------------ *)
(* Ablation: the paper's optimal combining (Fig. 6(b)) vs the          *)
(* suboptimal first-fit strategy (Fig. 6(c))                           *)
(* ------------------------------------------------------------------ *)

let print_ablation () =
  let open Autocfd_util.Table in
  let table =
    create
      ~title:
        "Ablation: optimal combining (Fig. 6(b)) vs first-fit (Fig. 6(c))"
      ~headers:
        [ "program"; "partition"; "before"; "optimal after";
          "first-fit after" ]
  in
  let run src name partitions =
    let t = D.load src in
    List.iter
      (fun parts ->
        let opt = D.plan ~spec:(parts_spec parts) t in
        let ff =
          D.plan
            ~spec:
              (Autocfd.Runspec.with_combine S.Optimizer.First_fit
                 (parts_spec parts))
            t
        in
        add_row table
          [
            name;
            String.concat " x "
              (Array.to_list (Array.map string_of_int parts));
            cell_int opt.D.opt.S.Optimizer.before;
            cell_int opt.D.opt.S.Optimizer.after;
            cell_int ff.D.opt.S.Optimizer.after;
          ])
      partitions
  in
  run (Autocfd_apps.Aerofoil.source ()) "aerofoil"
    [ [| 4; 1; 1 |]; [| 4; 4; 1 |]; [| 2; 2; 2 |] ];
  run (Autocfd_apps.Sprayer.source ()) "sprayer"
    [ [| 4; 1 |]; [| 4; 4 |] ];
  print table

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table                  *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let aero_src = Autocfd_apps.Aerofoil.source () in
  let spray_src = Autocfd_apps.Sprayer.source () in
  let aero = D.load aero_src in
  let spray = D.load spray_src in
  let small = D.load (Autocfd_apps.Sprayer.source ~ni:40 ~nj:20 ~ntime:3 ()) in
  let small_plan = D.plan ~spec:(parts_spec [| 2; 2 |]) small in
  let small_aero =
    D.load (Autocfd_apps.Aerofoil.source ~ni:16 ~nj:10 ~nk:6 ~ntime:2 ())
  in
  let run_engine engine plan () =
    ignore (D.run ~spec:(Autocfd.Runspec.(with_engine engine default)) plan)
  in
  let tests =
    [
      (* Table 1 pipeline stage: full analysis + sync optimization *)
      Test.make ~name:"table1:analyze+optimize (aerofoil 4x1x1)"
        (Staged.stage (fun () -> ignore (D.plan ~spec:(parts_spec [| 4; 1; 1 |]) aero)));
      Test.make ~name:"table1:analyze+optimize (sprayer 4x4)"
        (Staged.stage (fun () -> ignore (D.plan ~spec:(parts_spec [| 4; 4 |]) spray)));
      (* Tables 2/3: the analytic performance prediction *)
      Test.make ~name:"table2:predict (aerofoil 3x2x1)"
        (Staged.stage
           (let plan = D.plan ~spec:(parts_spec [| 3; 2; 1 |]) aero in
            fun () ->
              ignore
                (Autocfd_perfmodel.Model.predict_parallel E.machine
                   ~gi:aero.D.gi ~topo:plan.D.topo plan.D.spmd)));
      Test.make ~name:"table3:predict (sprayer 2x2)"
        (Staged.stage
           (let plan = D.plan ~spec:(parts_spec [| 2; 2 |]) spray in
            fun () ->
              ignore
                (Autocfd_perfmodel.Model.predict_parallel E.machine
                   ~gi:spray.D.gi ~topo:plan.D.topo plan.D.spmd)));
      (* Table 4 stage: frontend parse + inline across grid sizes *)
      Test.make ~name:"table4:parse+inline (sprayer 160x60)"
        (Staged.stage (fun () ->
             ignore (D.load (Autocfd_apps.Sprayer.source ~ni:160 ~nj:60 ()))));
      (* Table 5 stage / correctness path: simulated SPMD execution *)
      Test.make ~name:"table5:spmd-execute (sprayer 40x20, 4 ranks)"
        (Staged.stage (fun () -> ignore (D.run small_plan)));
      (* Execution engines head to head on the same simulated runs *)
      Test.make ~name:"engine:tree-walk (sprayer 40x20, 4 ranks)"
        (Staged.stage (run_engine Autocfd_interp.Spmd.Tree small_plan));
      Test.make ~name:"engine:compiled (sprayer 40x20, 4 ranks)"
        (Staged.stage (run_engine Autocfd_interp.Spmd.Compiled small_plan));
      Test.make ~name:"engine:fused (sprayer 40x20, 4 ranks)"
        (Staged.stage (run_engine Autocfd_interp.Spmd.Fused small_plan));
      Test.make ~name:"engine:tree-walk (aerofoil 16x10x6, 4 ranks)"
        (Staged.stage
           (run_engine Autocfd_interp.Spmd.Tree
              (D.plan ~spec:(parts_spec [| 2; 2; 1 |]) small_aero)));
      Test.make ~name:"engine:compiled (aerofoil 16x10x6, 4 ranks)"
        (Staged.stage
           (run_engine Autocfd_interp.Spmd.Compiled
              (D.plan ~spec:(parts_spec [| 2; 2; 1 |]) small_aero)));
      Test.make ~name:"engine:fused (aerofoil 16x10x6, 4 ranks)"
        (Staged.stage
           (run_engine Autocfd_interp.Spmd.Fused
              (D.plan ~spec:(parts_spec [| 2; 2; 1 |]) small_aero)));
    ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances test
      in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Printf.printf "%-50s %12.3f us/run\n" name (est /. 1000.)
          | _ -> Printf.printf "%-50s (no estimate)\n" name)
        ols)
    tests

(* ------------------------------------------------------------------ *)
(* Partition advisor: the paper's volume heuristic vs the full model    *)
(* ------------------------------------------------------------------ *)

let print_advisor () =
  let open Autocfd_util.Table in
  let module M = Autocfd_perfmodel.Model in
  let table =
    create
      ~title:
        "Partition advisor: minimal-communication choice (paper 4.1) vs \
         model-predicted best"
      ~headers:
        [ "program"; "procs"; "volume choice"; "model choice";
          "volume time (s)"; "model time (s)" ]
  in
  let shape parts =
    String.concat " x " (Array.to_list (Array.map string_of_int parts))
  in
  let run name src nprocs_list =
    let t = D.load src in
    List.iter
      (fun nprocs ->
        let pv = D.auto_parts t ~nprocs in
        let pm = D.auto_parts_by_model t ~nprocs in
        let time parts =
          let plan = D.plan ~spec:(parts_spec parts) t in
          (M.predict_parallel E.machine ~gi:t.D.gi ~topo:plan.D.topo
             plan.D.spmd)
            .M.time
        in
        add_row table
          [
            name; cell_int nprocs; shape pv; shape pm;
            cell_float ~decimals:0 (time pv);
            cell_float ~decimals:0 (time pm);
          ])
      nprocs_list
  in
  run "aerofoil"
    (Autocfd_apps.Aerofoil.source ~ntime:E.aerofoil_frames ())
    [ 4; 6 ];
  run "sprayer"
    (Autocfd_apps.Sprayer.source ~ntime:E.sprayer_frames ())
    [ 4; 6 ];
  print table

let load_json path =
  match
    try Some (In_channel.with_open_text path In_channel.input_all)
    with Sys_error _ -> None
  with
  | None ->
      Printf.eprintf "cannot read %s\n" path;
      exit 1
  | Some text -> (
      try Autocfd_obs.Json.of_string text
      with Autocfd_obs.Json.Parse_error msg ->
        Printf.eprintf "%s: malformed JSON: %s\n" path msg;
        exit 1)

(* per-nest coverage manifest gate ([engine --check] sub-gate, also run
   standalone by the [coverage] verb): the current build's fused-kernel
   coverage of the bundled applications must not regress against the
   committed COVERAGE.json *)
let coverage_gate opts =
  let current = E.coverage_manifest () in
  if opts.o_update_coverage then begin
    Sched.Cache.write_atomic ~path:opts.o_coverage
      (Autocfd_obs.Json.pretty current ^ "\n");
    Printf.printf "wrote %s\n" opts.o_coverage
  end
  else begin
    if not (Sys.file_exists opts.o_coverage) then begin
      Printf.eprintf
        "FAIL: coverage manifest %s not found (generate it with \
         --update-coverage)\n"
        opts.o_coverage;
      exit 1
    end;
    let committed = load_json opts.o_coverage in
    let regressions =
      try E.check_coverage_manifest ~committed ~current
      with Autocfd_obs.Json.Parse_error msg ->
        Printf.eprintf "FAIL: malformed coverage manifest %s: %s\n"
          opts.o_coverage msg;
        exit 1
    in
    List.iter (fun m -> Printf.eprintf "FAIL coverage: %s\n" m) regressions;
    if regressions <> [] then exit 1;
    Printf.printf "OK coverage: no fused nest regressed vs %s\n"
      opts.o_coverage
  end

let write_json opts =
  let path = "BENCH_tables.json" in
  let sw = make_sweep opts in
  let doc = E.tables_json ~sweep:sw () in
  let text = Autocfd_obs.Json.pretty doc ^ "\n" in
  Sched.Cache.write_atomic ~path text;
  report_sweep sw;
  Printf.printf "wrote %s\n" path;
  if opts.o_update_baseline then begin
    Sched.Cache.write_atomic ~path:opts.o_baseline text;
    Printf.printf "wrote %s\n" opts.o_baseline
  end;
  if opts.o_check_regress then begin
    let baseline = load_json opts.o_baseline in
    let failures =
      Autocfd.Baseline.compare_tables ~tolerance:opts.o_tolerance ~baseline
        ~current:doc ()
    in
    print_string (Autocfd.Baseline.render_failures failures);
    if failures <> [] then exit 1
  end

let all_tables sw =
  print_string (sweep_tables_string sw);
  print_newline ();
  print_ablation ();
  print_newline ();
  print_advisor ()

(* ------------------------------------------------------------------ *)
(* tables --check: the CI smoke for the sweep scheduler + cache.       *)
(* Three passes over the pooled tables:                                 *)
(*   0. serial, no cache            — the reference rendering           *)
(*   1. parallel, cold cache        — must render byte-identically      *)
(*   2. parallel, warm cache        — byte-identical, 100% hits, and    *)
(*      at least 5x faster than the cold pass                           *)
(* ------------------------------------------------------------------ *)

let check_tables opts =
  let cache_dir =
    if opts.o_cache_dir = "_autocfd_cache" then "_autocfd_cache.check"
    else opts.o_cache_dir
  in
  let cache = Sched.Cache.create ~dir:cache_dir () in
  Sched.Cache.clear cache;
  let timed f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let pass label sweep =
    Printf.eprintf "pass %s...\n%!" label;
    let (out, elapsed) = timed (fun () -> sweep_tables_string sweep) in
    (out, elapsed, E.sweep_stats sweep)
  in
  let out0, _, _ = pass "0 (serial, no cache)" (E.sweep ()) in
  let out1, t_cold, _ =
    pass
      (Printf.sprintf "1 (parallel --jobs %d, cold cache)" opts.o_jobs)
      (E.sweep ~jobs:opts.o_jobs ~cache ())
  in
  let out2, t_warm, stats2 =
    pass
      (Printf.sprintf "2 (parallel --jobs %d, warm cache)" opts.o_jobs)
      (E.sweep ~jobs:opts.o_jobs ~cache ())
  in
  let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt in
  if out1 <> out0 then
    fail "FAIL: cold parallel sweep diverged from the serial rendering";
  if out2 <> out0 then
    fail "FAIL: warm-cache sweep diverged from the serial rendering";
  let hits, misses =
    List.fold_left
      (fun (h, m) (_, (s : Sched.Pool.stats)) ->
        (h + s.Sched.Pool.ps_hits, m + s.Sched.Pool.ps_misses))
      (0, 0) stats2
  in
  if misses > 0 then
    fail "FAIL: warm pass had %d cache misses (%d hits) — expected 100%% hits"
      misses hits;
  let speedup = t_cold /. t_warm in
  if speedup < 5.0 then
    fail "FAIL: warm pass only %.1fx faster than cold (%.2fs vs %.2fs) — \
          expected at least 5x"
      speedup t_warm t_cold;
  Printf.printf
    "OK tables: 3 passes byte-identical, warm pass %d/%d hits, %.1fx \
     faster than cold (%.2fs vs %.2fs)\n"
    hits (hits + misses) speedup t_warm t_cold

(* ------------------------------------------------------------------ *)
(* tune: auto-search the configuration space of both case studies.      *)
(* tune --check gates the CI on four properties:                        *)
(*   - three passes (serial/no-cache, parallel/cold, parallel/warm)     *)
(*     render byte-identically, and the warm pass is 100% cache hits    *)
(*   - the tuned winner's modelled time does not lose to any            *)
(*     hand-picked Table 2/3 configuration                              *)
(*   - the reported Pareto frontier contains no dominated entry         *)
(* ------------------------------------------------------------------ *)

let tune_string ~grid sw =
  String.concat "\n"
    (List.map Autocfd.Tune.render (E.tune_table ~grid ~sweep:sw ()))

let check_tune opts =
  let module T = Autocfd.Tune in
  let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt in
  let cache_dir =
    if opts.o_cache_dir = "_autocfd_cache" then "_autocfd_cache.tune"
    else opts.o_cache_dir
  in
  let cache = Sched.Cache.create ~dir:cache_dir () in
  Sched.Cache.clear cache;
  (* the gate runs the deterministic default grid regardless of --grid:
     wide-grid wall measurements would break byte-identity *)
  let grid = T.Default in
  let pass label sweep =
    Printf.eprintf "pass %s...\n%!" label;
    let results = E.tune_table ~grid ~sweep () in
    ( String.concat "\n" (List.map T.render results),
      results,
      E.sweep_stats sweep )
  in
  let out0, results, _ = pass "0 (serial, no cache)" (E.sweep ()) in
  let out1, _, _ =
    pass
      (Printf.sprintf "1 (parallel --jobs %d, cold cache)" opts.o_jobs)
      (E.sweep ~jobs:opts.o_jobs ~cache ())
  in
  let out2, _, stats2 =
    pass
      (Printf.sprintf "2 (parallel --jobs %d, warm cache)" opts.o_jobs)
      (E.sweep ~jobs:opts.o_jobs ~cache ())
  in
  if out1 <> out0 then
    fail "FAIL: cold parallel tune diverged from the serial rendering";
  if out2 <> out0 then
    fail "FAIL: warm-cache tune diverged from the serial rendering";
  let hits, misses =
    List.fold_left
      (fun (h, m) (_, (s : Sched.Pool.stats)) ->
        (h + s.Sched.Pool.ps_hits, m + s.Sched.Pool.ps_misses))
      (0, 0) stats2
  in
  if misses > 0 then
    fail "FAIL: warm pass had %d cache misses (%d hits) — expected 100%% hits"
      misses hits;
  (* the winner must not lose to any hand-picked default configuration
     of the same program's timing table *)
  let sw = E.sweep () in
  let defaults =
    [ ("aerofoil", E.table2 ~sweep:sw ()); ("sprayer", E.table3 ~sweep:sw ()) ]
  in
  List.iter
    (fun (r : T.result) ->
      let w = r.T.tr_winner in
      List.iter
        (fun (row : E.perf_row) ->
          match row.E.pr_partition with
          | None -> ()  (* the sequential reference row *)
          | Some parts ->
              if w.T.te_metrics.T.tm_time > row.E.pr_time then
                fail
                  "FAIL %s: tuned winner %.1f s loses to the hand-picked \
                   %s row (%.1f s)"
                  r.T.tr_program w.T.te_metrics.T.tm_time
                  (Autocfd.Runspec.parts_to_string parts)
                  row.E.pr_time)
        (List.assoc r.T.tr_program defaults))
    results;
  (* no frontier entry may dominate another: the published frontier is
     actually Pareto-minimal *)
  List.iter
    (fun (r : T.result) ->
      List.iter
        (fun (e : T.entry) ->
          if
            List.exists
              (fun (o : T.entry) ->
                o != e && T.dominates o.T.te_metrics e.T.te_metrics)
              r.T.tr_frontier
          then
            fail "FAIL %s: frontier contains a dominated entry (%s)"
              r.T.tr_program
              (Autocfd.Runspec.parts_to_string e.T.te_parts))
        r.T.tr_frontier)
    results;
  List.iter
    (fun (r : T.result) ->
      Printf.printf
        "OK %s: winner %s at %.1f s beats every hand-picked row; frontier \
         of %d/%d is Pareto-minimal\n"
        r.T.tr_program
        (Autocfd.Runspec.parts_to_string r.T.tr_winner.T.te_parts)
        r.T.tr_winner.T.te_metrics.T.tm_time
        (List.length r.T.tr_frontier) r.T.tr_total)
    results;
  Printf.printf
    "OK tune: 3 passes byte-identical, warm pass %d/%d hits\n" hits
    (hits + misses)

(* ------------------------------------------------------------------ *)
(* fabric --check: the distributed-sweep chaos gate.                    *)
(* Three passes over the pooled tables:                                 *)
(*   0. serial, in-process           — the reference rendering          *)
(*   1. master + 3 worker processes, one SIGKILLed mid-sweep — must     *)
(*      render byte-identically, observe >= 1 worker death and >= 1     *)
(*      requeue, and leave a Chrome trace (fabric_trace.json)           *)
(*   2. master with no workers at all — must degrade to the in-process  *)
(*      pool (not hang) and still render byte-identically               *)
(* ------------------------------------------------------------------ *)

let check_fabric opts =
  let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt in
  Printf.eprintf "pass 0 (serial, in-process)...\n%!";
  let out0 = sweep_tables_string (E.sweep ()) in
  Printf.eprintf "pass 1 (fabric: 3 workers, 1 chaos-killed mid-sweep)...\n%!";
  let cache_dir =
    if opts.o_cache_dir = "_autocfd_cache" then "_autocfd_cache.fabric"
    else opts.o_cache_dir
  in
  let cache = Sched.Cache.create ~dir:cache_dir () in
  Sched.Cache.clear cache;
  let cfg =
    { Sched.Fabric.default_cfg with Sched.Fabric.fb_chaos_kill = Some 3 }
  in
  let fabric = make_fabric ~cfg 3 in
  let tracer = Autocfd_obs.Trace.create () in
  let sw = E.sweep ~cache ~tracer ~fabric () in
  let out1 = sweep_tables_string sw in
  let st = Sched.Fabric.stats fabric in
  prerr_string (Autocfd.Report.fabric_summary st);
  let reg = Autocfd_obs.Registry.create () in
  Sched.Fabric.observe_registry reg st;
  Sched.Cache.write_atomic ~path:"fabric_trace.json"
    (Autocfd_obs.Chrome.to_string tracer);
  Printf.eprintf "wrote fabric_trace.json\n%!";
  Sched.Fabric.shutdown fabric;
  if out1 <> out0 then
    fail "FAIL: fabric sweep diverged from the serial rendering";
  if st.Sched.Fabric.fs_worker_deaths < 1 then
    fail "FAIL: chaos kill did not register a worker death";
  if st.Sched.Fabric.fs_requeues < 1 then
    fail "FAIL: the killed worker's lease was not requeued";
  if st.Sched.Fabric.fs_degraded then
    fail "FAIL: the 3-worker pass unexpectedly degraded";
  Printf.eprintf "pass 2 (fabric: no workers, short grace)...\n%!";
  let cfg2 = { Sched.Fabric.default_cfg with Sched.Fabric.fb_grace = 0.3 } in
  let fabric2 = make_fabric ~cfg:cfg2 0 in
  let sw2 = E.sweep ~fabric:fabric2 () in
  let out2 = sweep_tables_string sw2 in
  let st2 = Sched.Fabric.stats fabric2 in
  Sched.Fabric.shutdown fabric2;
  if out2 <> out0 then
    fail "FAIL: degraded sweep diverged from the serial rendering";
  if not st2.Sched.Fabric.fs_degraded then
    fail "FAIL: worker-less sweep did not report degradation";
  Printf.printf
    "OK fabric: 3 passes byte-identical; chaos pass survived %d worker \
     death(s) with %d requeue(s) and %d retries; worker-less pass degraded \
     to the in-process pool\n"
    st.Sched.Fabric.fs_worker_deaths st.Sched.Fabric.fs_requeues
    st.Sched.Fabric.fs_retries

let () =
  let opts = parse_opts () in
  (* the baseline options operate on the JSON document, so they imply the
     json verb unless another was given explicitly *)
  let opts =
    if (opts.o_check_regress || opts.o_update_baseline) && opts.o_verb = "all"
    then { opts with o_verb = "--json" }
    else opts
  in
  let with_sweep f =
    let fabric =
      if opts.o_workers > 0 then Some (make_fabric opts.o_workers) else None
    in
    let sw = make_sweep ?fabric opts in
    f sw;
    report_sweep ?fabric sw
  in
  match opts.o_verb with
  | "table1" -> with_sweep (fun sw -> print_string (table1_string sw))
  | "table2" -> with_sweep (fun sw -> print_string (table2_string sw))
  | "table3" -> with_sweep (fun sw -> print_string (table3_string sw))
  | "table4" -> with_sweep (fun sw -> print_string (table4_string sw))
  | "table5" -> with_sweep (fun sw -> print_string (table5_string sw))
  | "ablation" -> print_ablation ()
  | "advisor" -> print_advisor ()
  | "validate" -> with_sweep (fun sw -> print_string (validation_string sw))
  | "engine" ->
      with_sweep (fun sw ->
          let rows = E.engine_bench ~sweep:sw () in
          print_string (E.render_engine rows);
          print_newline ();
          print_string (E.render_engine_coverage rows);
          (* --check: CI smoke mode.  Fails if any engine disagrees or the
             fused tier stops paying for itself (its speedup over the tree
             walker drops below the plain compiled engine's). *)
          if opts.o_check then
            List.iter
              (fun (r : E.engine_row) ->
                if not r.E.er_identical then begin
                  Printf.eprintf "FAIL %s: engines disagree\n" r.E.er_program;
                  exit 1
                end;
                if not r.E.er_domains_identical then begin
                  Printf.eprintf
                    "FAIL %s: domains engine diverged from the simulator\n"
                    r.E.er_program;
                  exit 1
                end;
                if r.E.er_fused_speedup < r.E.er_speedup then begin
                  Printf.eprintf
                    "FAIL %s: fused speedup %.2f below compiled speedup %.2f\n"
                    r.E.er_program r.E.er_fused_speedup r.E.er_speedup;
                  exit 1
                end;
                (* the point of running for real: parallel wall-clock must
                   beat the single-threaded fused simulation convincingly
                   on the 3-d app (4 ranks -> at least 2x).  Only
                   enforceable when the host actually has the cores: on
                   fewer, 4 domains timeslice and the floor is vacuous *)
                let cores = Domain.recommended_domain_count () in
                if r.E.er_program = "aerofoil" && cores >= 4 then begin
                  if r.E.er_domains_speedup < 2.0 then begin
                    Printf.eprintf
                      "FAIL %s: domains speedup %.2fx below the 2x floor \
                       (%d cores)\n"
                      r.E.er_program r.E.er_domains_speedup cores;
                    exit 1
                  end
                end
                else if r.E.er_program = "aerofoil" then
                  Printf.printf
                    "SKIP %s: 2x domains floor needs >= 4 cores, host has \
                     %d\n"
                    r.E.er_program cores;
                Printf.printf
                  "OK %s: fused %.2fx >= compiled %.2fx, domains %.2fx \
                   wall-clock, results identical\n"
                  r.E.er_program r.E.er_fused_speedup r.E.er_speedup
                  r.E.er_domains_speedup)
              rows;
          (* coverage-manifest sub-gate: a nest that was fused in the
             committed COVERAGE.json must never fall back again *)
          if opts.o_check then
            List.iter
              (fun (r : E.engine_row) ->
                if not r.E.er_fission_identical then begin
                  Printf.eprintf
                    "FAIL %s: loop fission changed program state\n"
                    r.E.er_program;
                  exit 1
                end)
              rows;
          if opts.o_check || opts.o_update_coverage then coverage_gate opts)
  | "coverage" ->
      print_string (E.render_coverage_fission ());
      coverage_gate opts
  | "chaos" ->
      with_sweep (fun sw ->
          let rows = E.chaos_bench ~sweep:sw () in
          print_string (E.render_chaos rows);
          (* --check: CI smoke mode.  Every schedule in the bench is
             recoverable, so any divergence is a transport/recovery bug; the
             overhead ceiling catches retransmit storms and checkpoint
             regressions. *)
          if opts.o_check then begin
            let max_overhead = 4.0 in
            List.iter
              (fun (r : E.chaos_row) ->
                if not r.E.ch_identical then begin
                  Printf.eprintf
                    "FAIL %s/%s: result diverged from fault-free run\n"
                    r.E.ch_program r.E.ch_schedule;
                  exit 1
                end;
                if r.E.ch_overhead > max_overhead then begin
                  Printf.eprintf
                    "FAIL %s/%s: overhead %.2fx above budget %.1fx\n"
                    r.E.ch_program r.E.ch_schedule r.E.ch_overhead
                    max_overhead;
                  exit 1
                end;
                Printf.printf "OK %s/%s: identical, overhead %.2fx\n"
                  r.E.ch_program r.E.ch_schedule r.E.ch_overhead)
              rows
          end)
  | "tables" ->
      if opts.o_check then check_tables opts
      else with_sweep all_tables
  | "tune" ->
      if opts.o_check then check_tune opts
      else
        with_sweep (fun sw ->
            print_string (tune_string ~grid:opts.o_grid sw))
  | "worker" -> run_worker opts
  | "fabric" ->
      if opts.o_check then check_fabric opts
      else begin
        let n = if opts.o_workers > 0 then opts.o_workers else 3 in
        let fabric = make_fabric n in
        let sw = make_sweep ~fabric opts in
        print_string (sweep_tables_string sw);
        report_sweep ~fabric sw
      end
  | "--json" | "json" -> write_json opts
  | "micro" -> micro ()
  | "all" ->
      with_sweep all_tables;
      print_newline ();
      print_endline "Micro-benchmarks (Bechamel):";
      micro ()
  | _ -> usage ()
