(** Benchmark harness: regenerates every table of the paper's evaluation
    (§6, Tables 1-5) side by side with the published values, then runs
    Bechamel micro-benchmarks of the pipeline stages that produce them.

    Usage:
      bench/main.exe             print all tables + micro-benchmarks
      bench/main.exe table1      one table
      bench/main.exe tables      all tables, no micro-benchmarks
                                 ([--check]: three-pass CI smoke — serial,
                                 cold parallel and warm parallel sweeps
                                 must render byte-identically, the warm
                                 pass must be 100% cache hits and at
                                 least 5x faster than the cold pass)
      bench/main.exe micro       micro-benchmarks only
      bench/main.exe ablation    optimal vs first-fit combining ablation
      bench/main.exe engine      tree-walking vs compiled vs fused-kernel
                                 execution engines, plus per-loop kernel
                                 coverage ([--check]: exit nonzero unless
                                 results are identical and the fused tier
                                 at least matches the compiled speedup)
      bench/main.exe coverage    per-nest fused-kernel coverage of the
                                 bundled applications, before/after the
                                 loop-fission pass, gated against the
                                 committed COVERAGE.json manifest
                                 ([--update-coverage]: rewrite it)
      bench/main.exe chaos       seeded fault schedules vs the reliable
                                 transport and checkpoint/restart
                                 ([--check]: exit nonzero unless every
                                 recoverable schedule yields bit-identical
                                 results within the overhead budget)
      bench/main.exe --json      write BENCH_tables.json (tables 1-5 +
                                 model validation + engine speedup +
                                 sweep scheduler stats, machine-readable,
                                 for diffing the perf trajectory across
                                 PRs)

    Baseline gate (perf-regression CI):
      --baseline F       baseline document (default: BENCH_baseline.json)
      --check-regress    regenerate the tables and gate them against the
                         baseline ({!Autocfd.Baseline}): modelled times /
                         sync counts must not rise, speedups must not
                         fall, engine identity and chaos recovery must
                         stay true; exit nonzero on any regression
      --update-baseline  regenerate the tables and (over-)write the
                         baseline file
      --coverage F       coverage manifest (default: COVERAGE.json); any
                         nest it lists as fused must still fuse — the
                         [engine --check] and [coverage] verbs gate on it
      --update-coverage  (over-)write the coverage manifest instead of
                         gating against it
      --tolerance T      relative allowance for deterministic
                         (virtual-clock) numbers (default 0.05); the
                         host-wall-clock engine speedups always use the
                         generous 0.5

    Sweep options (any verb that regenerates tables):
      --jobs N        worker domains for the row sweep (default: all cores)
      --no-cache      disable the persistent result cache
      --cache-dir D   cache directory (default: _autocfd_cache)

    Table output goes to stdout and is byte-identical for any --jobs value
    and for cold vs warm caches; scheduler/cache statistics go to
    stderr. *)

module E = Autocfd.Experiments
module D = Autocfd.Driver
module S = Autocfd_syncopt
module Sched = Autocfd_sched

(* ------------------------------------------------------------------ *)
(* Option parsing: verb [--check] [--jobs N] [--no-cache] [--cache-dir D] *)
(* ------------------------------------------------------------------ *)

type opts = {
  o_verb : string;
  o_check : bool;
  o_jobs : int;
  o_cache : bool;
  o_cache_dir : string;
  o_baseline : string;
  o_check_regress : bool;
  o_update_baseline : bool;
  o_coverage : string;
  o_update_coverage : bool;
  o_tolerance : float;
}

let usage () =
  Printf.eprintf
    "usage: %s [table1..table5|tables|validate|engine|coverage|chaos|\
     ablation|advisor|micro|--json|all] [--check] [--jobs N] [--no-cache] \
     [--cache-dir D] [--baseline F] [--check-regress] [--update-baseline] \
     [--coverage F] [--update-coverage] [--tolerance T]\n"
    Sys.argv.(0);
  exit 1

let parse_opts () =
  let o =
    ref
      {
        o_verb = "all";
        o_check = false;
        o_jobs = Sched.Pool.default_jobs ();
        o_cache = true;
        o_cache_dir = "_autocfd_cache";
        o_baseline = "BENCH_baseline.json";
        o_check_regress = false;
        o_update_baseline = false;
        o_coverage = "COVERAGE.json";
        o_update_coverage = false;
        o_tolerance = 0.05;
      }
  in
  let rec go i =
    if i < Array.length Sys.argv then
      match Sys.argv.(i) with
      | "--check" ->
          o := { !o with o_check = true };
          go (i + 1)
      | "--no-cache" ->
          o := { !o with o_cache = false };
          go (i + 1)
      | "--check-regress" ->
          o := { !o with o_check_regress = true };
          go (i + 1)
      | "--update-baseline" ->
          o := { !o with o_update_baseline = true };
          go (i + 1)
      | "--update-coverage" ->
          o := { !o with o_update_coverage = true };
          go (i + 1)
      | "--coverage" when i + 1 < Array.length Sys.argv ->
          o := { !o with o_coverage = Sys.argv.(i + 1) };
          go (i + 2)
      | "--jobs" when i + 1 < Array.length Sys.argv ->
          (match int_of_string_opt Sys.argv.(i + 1) with
          | Some n when n >= 1 -> o := { !o with o_jobs = n }
          | _ ->
              Printf.eprintf "--jobs: expected a positive integer\n";
              exit 1);
          go (i + 2)
      | "--cache-dir" when i + 1 < Array.length Sys.argv ->
          o := { !o with o_cache_dir = Sys.argv.(i + 1) };
          go (i + 2)
      | "--baseline" when i + 1 < Array.length Sys.argv ->
          o := { !o with o_baseline = Sys.argv.(i + 1) };
          go (i + 2)
      | "--tolerance" when i + 1 < Array.length Sys.argv ->
          (match float_of_string_opt Sys.argv.(i + 1) with
          | Some t when t >= 0.0 -> o := { !o with o_tolerance = t }
          | _ ->
              Printf.eprintf "--tolerance: expected a non-negative number\n";
              exit 1);
          go (i + 2)
      | ("--jobs" | "--cache-dir" | "--baseline" | "--coverage"
        | "--tolerance") as a ->
          Printf.eprintf "%s: missing argument\n" a;
          exit 1
      | a when i = 1 && (a = "--json" || (String.length a > 0 && a.[0] <> '-'))
        ->
          o := { !o with o_verb = a };
          go (i + 1)
      | a ->
          Printf.eprintf "unknown option %S\n" a;
          usage ()
  in
  go 1;
  !o

let make_sweep opts =
  let cache =
    if opts.o_cache then Some (Sched.Cache.create ~dir:opts.o_cache_dir ())
    else None
  in
  E.sweep ~jobs:opts.o_jobs ?cache ()

let report_sweep sw =
  let stats = E.sweep_stats sw in
  if stats <> [] then prerr_string (Autocfd.Report.sched_summary stats)

(* ------------------------------------------------------------------ *)
(* Table printing (stdout only; stats go to stderr afterwards)         *)
(* ------------------------------------------------------------------ *)

let table1_string sw = E.render_table1 (E.table1 ~sweep:sw ())

let table2_string sw =
  E.render_perf
    ~title:
      "Table 2: overall performance of case study 1 (aerofoil, \
       99 x 41 x 13; ours vs paper)"
    (E.table2 ~sweep:sw ())

let table3_string sw =
  E.render_perf
    ~title:
      "Table 3: overall performance of case study 2 (sprayer, \
       300 x 100; ours vs paper)"
    (E.table3 ~sweep:sw ())

let table4_string sw = E.render_table4 (E.table4 ~sweep:sw ())
let table5_string sw = E.render_table5 (E.table5 ~sweep:sw ())
let validation_string sw = E.render_validation (E.validate_model ~sweep:sw ())

(* the pooled part of `tables`: what the three-pass --check compares *)
let sweep_tables_string sw =
  String.concat "\n"
    [
      table1_string sw; table2_string sw; table3_string sw; table4_string sw;
      table5_string sw; validation_string sw;
    ]

(* ------------------------------------------------------------------ *)
(* Ablation: the paper's optimal combining (Fig. 6(b)) vs the          *)
(* suboptimal first-fit strategy (Fig. 6(c))                           *)
(* ------------------------------------------------------------------ *)

let print_ablation () =
  let open Autocfd_util.Table in
  let table =
    create
      ~title:
        "Ablation: optimal combining (Fig. 6(b)) vs first-fit (Fig. 6(c))"
      ~headers:
        [ "program"; "partition"; "before"; "optimal after";
          "first-fit after" ]
  in
  let run src name partitions =
    let t = D.load src in
    List.iter
      (fun parts ->
        let opt = D.plan t ~parts in
        let ff = D.plan ~combine:S.Optimizer.First_fit t ~parts in
        add_row table
          [
            name;
            String.concat " x "
              (Array.to_list (Array.map string_of_int parts));
            cell_int opt.D.opt.S.Optimizer.before;
            cell_int opt.D.opt.S.Optimizer.after;
            cell_int ff.D.opt.S.Optimizer.after;
          ])
      partitions
  in
  run (Autocfd_apps.Aerofoil.source ()) "aerofoil"
    [ [| 4; 1; 1 |]; [| 4; 4; 1 |]; [| 2; 2; 2 |] ];
  run (Autocfd_apps.Sprayer.source ()) "sprayer"
    [ [| 4; 1 |]; [| 4; 4 |] ];
  print table

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table                  *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let aero_src = Autocfd_apps.Aerofoil.source () in
  let spray_src = Autocfd_apps.Sprayer.source () in
  let aero = D.load aero_src in
  let spray = D.load spray_src in
  let small = D.load (Autocfd_apps.Sprayer.source ~ni:40 ~nj:20 ~ntime:3 ()) in
  let small_plan = D.plan small ~parts:[| 2; 2 |] in
  let small_aero =
    D.load (Autocfd_apps.Aerofoil.source ~ni:16 ~nj:10 ~nk:6 ~ntime:2 ())
  in
  let run_engine engine plan () =
    ignore (D.run ~spec:(Autocfd.Runspec.(with_engine engine default)) plan)
  in
  let tests =
    [
      (* Table 1 pipeline stage: full analysis + sync optimization *)
      Test.make ~name:"table1:analyze+optimize (aerofoil 4x1x1)"
        (Staged.stage (fun () -> ignore (D.plan aero ~parts:[| 4; 1; 1 |])));
      Test.make ~name:"table1:analyze+optimize (sprayer 4x4)"
        (Staged.stage (fun () -> ignore (D.plan spray ~parts:[| 4; 4 |])));
      (* Tables 2/3: the analytic performance prediction *)
      Test.make ~name:"table2:predict (aerofoil 3x2x1)"
        (Staged.stage
           (let plan = D.plan aero ~parts:[| 3; 2; 1 |] in
            fun () ->
              ignore
                (Autocfd_perfmodel.Model.predict_parallel E.machine
                   ~gi:aero.D.gi ~topo:plan.D.topo plan.D.spmd)));
      Test.make ~name:"table3:predict (sprayer 2x2)"
        (Staged.stage
           (let plan = D.plan spray ~parts:[| 2; 2 |] in
            fun () ->
              ignore
                (Autocfd_perfmodel.Model.predict_parallel E.machine
                   ~gi:spray.D.gi ~topo:plan.D.topo plan.D.spmd)));
      (* Table 4 stage: frontend parse + inline across grid sizes *)
      Test.make ~name:"table4:parse+inline (sprayer 160x60)"
        (Staged.stage (fun () ->
             ignore (D.load (Autocfd_apps.Sprayer.source ~ni:160 ~nj:60 ()))));
      (* Table 5 stage / correctness path: simulated SPMD execution *)
      Test.make ~name:"table5:spmd-execute (sprayer 40x20, 4 ranks)"
        (Staged.stage (fun () -> ignore (D.run small_plan)));
      (* Execution engines head to head on the same simulated runs *)
      Test.make ~name:"engine:tree-walk (sprayer 40x20, 4 ranks)"
        (Staged.stage (run_engine Autocfd_interp.Spmd.Tree small_plan));
      Test.make ~name:"engine:compiled (sprayer 40x20, 4 ranks)"
        (Staged.stage (run_engine Autocfd_interp.Spmd.Compiled small_plan));
      Test.make ~name:"engine:fused (sprayer 40x20, 4 ranks)"
        (Staged.stage (run_engine Autocfd_interp.Spmd.Fused small_plan));
      Test.make ~name:"engine:tree-walk (aerofoil 16x10x6, 4 ranks)"
        (Staged.stage
           (run_engine Autocfd_interp.Spmd.Tree
              (D.plan small_aero ~parts:[| 2; 2; 1 |])));
      Test.make ~name:"engine:compiled (aerofoil 16x10x6, 4 ranks)"
        (Staged.stage
           (run_engine Autocfd_interp.Spmd.Compiled
              (D.plan small_aero ~parts:[| 2; 2; 1 |])));
      Test.make ~name:"engine:fused (aerofoil 16x10x6, 4 ranks)"
        (Staged.stage
           (run_engine Autocfd_interp.Spmd.Fused
              (D.plan small_aero ~parts:[| 2; 2; 1 |])));
    ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances test
      in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Printf.printf "%-50s %12.3f us/run\n" name (est /. 1000.)
          | _ -> Printf.printf "%-50s (no estimate)\n" name)
        ols)
    tests

(* ------------------------------------------------------------------ *)
(* Partition advisor: the paper's volume heuristic vs the full model    *)
(* ------------------------------------------------------------------ *)

let print_advisor () =
  let open Autocfd_util.Table in
  let module M = Autocfd_perfmodel.Model in
  let table =
    create
      ~title:
        "Partition advisor: minimal-communication choice (paper 4.1) vs \
         model-predicted best"
      ~headers:
        [ "program"; "procs"; "volume choice"; "model choice";
          "volume time (s)"; "model time (s)" ]
  in
  let shape parts =
    String.concat " x " (Array.to_list (Array.map string_of_int parts))
  in
  let run name src nprocs_list =
    let t = D.load src in
    List.iter
      (fun nprocs ->
        let pv = D.auto_parts t ~nprocs in
        let pm = D.auto_parts_by_model t ~nprocs in
        let time parts =
          let plan = D.plan t ~parts in
          (M.predict_parallel E.machine ~gi:t.D.gi ~topo:plan.D.topo
             plan.D.spmd)
            .M.time
        in
        add_row table
          [
            name; cell_int nprocs; shape pv; shape pm;
            cell_float ~decimals:0 (time pv);
            cell_float ~decimals:0 (time pm);
          ])
      nprocs_list
  in
  run "aerofoil"
    (Autocfd_apps.Aerofoil.source ~ntime:E.aerofoil_frames ())
    [ 4; 6 ];
  run "sprayer"
    (Autocfd_apps.Sprayer.source ~ntime:E.sprayer_frames ())
    [ 4; 6 ];
  print table

let load_json path =
  match
    try Some (In_channel.with_open_text path In_channel.input_all)
    with Sys_error _ -> None
  with
  | None ->
      Printf.eprintf "cannot read %s\n" path;
      exit 1
  | Some text -> (
      try Autocfd_obs.Json.of_string text
      with Autocfd_obs.Json.Parse_error msg ->
        Printf.eprintf "%s: malformed JSON: %s\n" path msg;
        exit 1)

(* per-nest coverage manifest gate ([engine --check] sub-gate, also run
   standalone by the [coverage] verb): the current build's fused-kernel
   coverage of the bundled applications must not regress against the
   committed COVERAGE.json *)
let coverage_gate opts =
  let current = E.coverage_manifest () in
  if opts.o_update_coverage then begin
    Sched.Cache.write_atomic ~path:opts.o_coverage
      (Autocfd_obs.Json.pretty current ^ "\n");
    Printf.printf "wrote %s\n" opts.o_coverage
  end
  else begin
    if not (Sys.file_exists opts.o_coverage) then begin
      Printf.eprintf
        "FAIL: coverage manifest %s not found (generate it with \
         --update-coverage)\n"
        opts.o_coverage;
      exit 1
    end;
    let committed = load_json opts.o_coverage in
    let regressions =
      try E.check_coverage_manifest ~committed ~current
      with Autocfd_obs.Json.Parse_error msg ->
        Printf.eprintf "FAIL: malformed coverage manifest %s: %s\n"
          opts.o_coverage msg;
        exit 1
    in
    List.iter (fun m -> Printf.eprintf "FAIL coverage: %s\n" m) regressions;
    if regressions <> [] then exit 1;
    Printf.printf "OK coverage: no fused nest regressed vs %s\n"
      opts.o_coverage
  end

let write_json opts =
  let path = "BENCH_tables.json" in
  let sw = make_sweep opts in
  let doc = E.tables_json ~sweep:sw () in
  let text = Autocfd_obs.Json.pretty doc ^ "\n" in
  Sched.Cache.write_atomic ~path text;
  report_sweep sw;
  Printf.printf "wrote %s\n" path;
  if opts.o_update_baseline then begin
    Sched.Cache.write_atomic ~path:opts.o_baseline text;
    Printf.printf "wrote %s\n" opts.o_baseline
  end;
  if opts.o_check_regress then begin
    let baseline = load_json opts.o_baseline in
    let failures =
      Autocfd.Baseline.compare_tables ~tolerance:opts.o_tolerance ~baseline
        ~current:doc ()
    in
    print_string (Autocfd.Baseline.render_failures failures);
    if failures <> [] then exit 1
  end

let all_tables sw =
  print_string (sweep_tables_string sw);
  print_newline ();
  print_ablation ();
  print_newline ();
  print_advisor ()

(* ------------------------------------------------------------------ *)
(* tables --check: the CI smoke for the sweep scheduler + cache.       *)
(* Three passes over the pooled tables:                                 *)
(*   0. serial, no cache            — the reference rendering           *)
(*   1. parallel, cold cache        — must render byte-identically      *)
(*   2. parallel, warm cache        — byte-identical, 100% hits, and    *)
(*      at least 5x faster than the cold pass                           *)
(* ------------------------------------------------------------------ *)

let check_tables opts =
  let cache_dir =
    if opts.o_cache_dir = "_autocfd_cache" then "_autocfd_cache.check"
    else opts.o_cache_dir
  in
  let cache = Sched.Cache.create ~dir:cache_dir () in
  Sched.Cache.clear cache;
  let timed f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let pass label sweep =
    Printf.eprintf "pass %s...\n%!" label;
    let (out, elapsed) = timed (fun () -> sweep_tables_string sweep) in
    (out, elapsed, E.sweep_stats sweep)
  in
  let out0, _, _ = pass "0 (serial, no cache)" (E.sweep ()) in
  let out1, t_cold, _ =
    pass
      (Printf.sprintf "1 (parallel --jobs %d, cold cache)" opts.o_jobs)
      (E.sweep ~jobs:opts.o_jobs ~cache ())
  in
  let out2, t_warm, stats2 =
    pass
      (Printf.sprintf "2 (parallel --jobs %d, warm cache)" opts.o_jobs)
      (E.sweep ~jobs:opts.o_jobs ~cache ())
  in
  let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt in
  if out1 <> out0 then
    fail "FAIL: cold parallel sweep diverged from the serial rendering";
  if out2 <> out0 then
    fail "FAIL: warm-cache sweep diverged from the serial rendering";
  let hits, misses =
    List.fold_left
      (fun (h, m) (_, (s : Sched.Pool.stats)) ->
        (h + s.Sched.Pool.ps_hits, m + s.Sched.Pool.ps_misses))
      (0, 0) stats2
  in
  if misses > 0 then
    fail "FAIL: warm pass had %d cache misses (%d hits) — expected 100%% hits"
      misses hits;
  let speedup = t_cold /. t_warm in
  if speedup < 5.0 then
    fail "FAIL: warm pass only %.1fx faster than cold (%.2fs vs %.2fs) — \
          expected at least 5x"
      speedup t_warm t_cold;
  Printf.printf
    "OK tables: 3 passes byte-identical, warm pass %d/%d hits, %.1fx \
     faster than cold (%.2fs vs %.2fs)\n"
    hits (hits + misses) speedup t_warm t_cold

let () =
  let opts = parse_opts () in
  (* the baseline options operate on the JSON document, so they imply the
     json verb unless another was given explicitly *)
  let opts =
    if (opts.o_check_regress || opts.o_update_baseline) && opts.o_verb = "all"
    then { opts with o_verb = "--json" }
    else opts
  in
  let with_sweep f =
    let sw = make_sweep opts in
    f sw;
    report_sweep sw
  in
  match opts.o_verb with
  | "table1" -> with_sweep (fun sw -> print_string (table1_string sw))
  | "table2" -> with_sweep (fun sw -> print_string (table2_string sw))
  | "table3" -> with_sweep (fun sw -> print_string (table3_string sw))
  | "table4" -> with_sweep (fun sw -> print_string (table4_string sw))
  | "table5" -> with_sweep (fun sw -> print_string (table5_string sw))
  | "ablation" -> print_ablation ()
  | "advisor" -> print_advisor ()
  | "validate" -> with_sweep (fun sw -> print_string (validation_string sw))
  | "engine" ->
      with_sweep (fun sw ->
          let rows = E.engine_bench ~sweep:sw () in
          print_string (E.render_engine rows);
          print_newline ();
          print_string (E.render_engine_coverage rows);
          (* --check: CI smoke mode.  Fails if any engine disagrees or the
             fused tier stops paying for itself (its speedup over the tree
             walker drops below the plain compiled engine's). *)
          if opts.o_check then
            List.iter
              (fun (r : E.engine_row) ->
                if not r.E.er_identical then begin
                  Printf.eprintf "FAIL %s: engines disagree\n" r.E.er_program;
                  exit 1
                end;
                if not r.E.er_domains_identical then begin
                  Printf.eprintf
                    "FAIL %s: domains engine diverged from the simulator\n"
                    r.E.er_program;
                  exit 1
                end;
                if r.E.er_fused_speedup < r.E.er_speedup then begin
                  Printf.eprintf
                    "FAIL %s: fused speedup %.2f below compiled speedup %.2f\n"
                    r.E.er_program r.E.er_fused_speedup r.E.er_speedup;
                  exit 1
                end;
                (* the point of running for real: parallel wall-clock must
                   beat the single-threaded fused simulation convincingly
                   on the 3-d app (4 ranks -> at least 2x).  Only
                   enforceable when the host actually has the cores: on
                   fewer, 4 domains timeslice and the floor is vacuous *)
                let cores = Domain.recommended_domain_count () in
                if r.E.er_program = "aerofoil" && cores >= 4 then begin
                  if r.E.er_domains_speedup < 2.0 then begin
                    Printf.eprintf
                      "FAIL %s: domains speedup %.2fx below the 2x floor \
                       (%d cores)\n"
                      r.E.er_program r.E.er_domains_speedup cores;
                    exit 1
                  end
                end
                else if r.E.er_program = "aerofoil" then
                  Printf.printf
                    "SKIP %s: 2x domains floor needs >= 4 cores, host has \
                     %d\n"
                    r.E.er_program cores;
                Printf.printf
                  "OK %s: fused %.2fx >= compiled %.2fx, domains %.2fx \
                   wall-clock, results identical\n"
                  r.E.er_program r.E.er_fused_speedup r.E.er_speedup
                  r.E.er_domains_speedup)
              rows;
          (* coverage-manifest sub-gate: a nest that was fused in the
             committed COVERAGE.json must never fall back again *)
          if opts.o_check then
            List.iter
              (fun (r : E.engine_row) ->
                if not r.E.er_fission_identical then begin
                  Printf.eprintf
                    "FAIL %s: loop fission changed program state\n"
                    r.E.er_program;
                  exit 1
                end)
              rows;
          if opts.o_check || opts.o_update_coverage then coverage_gate opts)
  | "coverage" ->
      print_string (E.render_coverage_fission ());
      coverage_gate opts
  | "chaos" ->
      with_sweep (fun sw ->
          let rows = E.chaos_bench ~sweep:sw () in
          print_string (E.render_chaos rows);
          (* --check: CI smoke mode.  Every schedule in the bench is
             recoverable, so any divergence is a transport/recovery bug; the
             overhead ceiling catches retransmit storms and checkpoint
             regressions. *)
          if opts.o_check then begin
            let max_overhead = 4.0 in
            List.iter
              (fun (r : E.chaos_row) ->
                if not r.E.ch_identical then begin
                  Printf.eprintf
                    "FAIL %s/%s: result diverged from fault-free run\n"
                    r.E.ch_program r.E.ch_schedule;
                  exit 1
                end;
                if r.E.ch_overhead > max_overhead then begin
                  Printf.eprintf
                    "FAIL %s/%s: overhead %.2fx above budget %.1fx\n"
                    r.E.ch_program r.E.ch_schedule r.E.ch_overhead
                    max_overhead;
                  exit 1
                end;
                Printf.printf "OK %s/%s: identical, overhead %.2fx\n"
                  r.E.ch_program r.E.ch_schedule r.E.ch_overhead)
              rows
          end)
  | "tables" ->
      if opts.o_check then check_tables opts
      else with_sweep all_tables
  | "--json" | "json" -> write_json opts
  | "micro" -> micro ()
  | "all" ->
      with_sweep all_tables;
      print_newline ();
      print_endline "Micro-benchmarks (Bechamel):";
      micro ()
  | _ -> usage ()
