open Autocfd_fortran
module A = Autocfd_analysis
module P = Autocfd_partition
module N = Autocfd_mpsim.Netmodel

type machine = {
  flop_rate : float;
  cache_bytes : float;
  cache_penalty : float;
  mem_bytes : float;
  mem_penalty : float;
  net : N.t;
  overlap : float;
}

let pentium_cluster =
  {
    flop_rate = 2.0e7;
    cache_bytes = 128.0e3;
    cache_penalty = 0.3;
    mem_bytes = 4.0e6;
    mem_penalty = 1.0;
    net =
      {
        N.latency = 1.0e-4;
        bandwidth = 0.5e6;
        send_overhead = 2.0e-5;
        recv_overhead = 2.0e-5;
      };
    overlap = 0.5;
  }

type census = {
  flops_block : float;
  flops_pipeline : float;
  flops_serial : float;
  exchanges : float;
  exchange_msgs : float;
  exchange_bytes : float;
  pipe_msgs : float;
  pipe_bytes : float;
  reductions : float;
  wave_stages : int;
  pipe_fills : float;  (** wavefront fill events (batched sweeps stream) *)
  stall_flops : float;  (** per-rank flops-equivalent of fill stalls *)
}

let zero_census =
  {
    flops_block = 0.;
    flops_pipeline = 0.;
    flops_serial = 0.;
    exchanges = 0.;
    exchange_msgs = 0.;
    exchange_bytes = 0.;
    pipe_msgs = 0.;
    pipe_bytes = 0.;
    reductions = 0.;
    wave_stages = 1;
    pipe_fills = 0.;
    stall_flops = 0.;
  }

let add_census a b =
  {
    flops_block = a.flops_block +. b.flops_block;
    flops_pipeline = a.flops_pipeline +. b.flops_pipeline;
    flops_serial = a.flops_serial +. b.flops_serial;
    exchanges = a.exchanges +. b.exchanges;
    exchange_msgs = a.exchange_msgs +. b.exchange_msgs;
    exchange_bytes = a.exchange_bytes +. b.exchange_bytes;
    pipe_msgs = a.pipe_msgs +. b.pipe_msgs;
    pipe_bytes = a.pipe_bytes +. b.pipe_bytes;
    reductions = a.reductions +. b.reductions;
    wave_stages = max a.wave_stages b.wave_stages;
    pipe_fills = a.pipe_fills +. b.pipe_fills;
    stall_flops = a.stall_flops +. b.stall_flops;
  }

let total_flops c = c.flops_block +. c.flops_pipeline +. c.flops_serial

(* static flop estimate of an expression *)
let rec expr_flops (e : Ast.expr) =
  match e with
  | Ast.Const_int _ | Ast.Const_real _ | Ast.Const_bool _ | Ast.Const_str _
  | Ast.Var _ ->
      0.
  | Ast.Ref (name, args) ->
      let base = if Ast.is_intrinsic name then 1.0 else 0.0 in
      List.fold_left (fun acc a -> acc +. expr_flops a) base args
  | Ast.Unop (_, a) -> 1.0 +. expr_flops a
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow), a, b) ->
      1.0 +. expr_flops a +. expr_flops b
  | Ast.Binop (_, a, b) -> 0.5 +. expr_flops a +. expr_flops b
  | Ast.Local_lo (_, a) | Ast.Local_hi (_, a) -> expr_flops a

let rec strip_local (e : Ast.expr) =
  match e with
  | Ast.Local_lo (_, a) | Ast.Local_hi (_, a) -> strip_local a
  | e -> e

(* local extent of a grid dimension on an (interior) rank *)
let local_extent topo g =
  let grid = P.Topology.grid topo and parts = P.Topology.parts topo in
  (grid.(g) + parts.(g) - 1) / parts.(g)

(* points of one halo plane of an array along [dim], per unit depth *)
let plane_points gi env (u : Ast.program_unit) topo name ~dim =
  match A.Grid_info.find_status gi name with
  | None -> 0
  | Some sa -> (
      match
        List.find_opt (fun d -> d.Ast.d_name = name) u.Ast.u_decls
      with
      | None -> 0
      | Some decl ->
          List.mapi (fun k dims -> (k, dims)) decl.Ast.d_dims
          |> List.fold_left
               (fun acc (k, (lo, hi)) ->
                 let ext =
                   match (A.Env.eval_int env lo, A.Env.eval_int env hi) with
                   | Some l, Some h -> h - l + 1
                   | _ -> 1
                 in
                 match if k < sa.A.Grid_info.sa_rank then sa.A.Grid_info.sa_dims.(k) else None with
                 | Some g when g = dim -> acc
                 | Some g -> acc * local_extent topo g
                 | None -> acc * ext)
               1)

(* resident status-array bytes for a rank owning [points_per_rank] grid
   points (packed dimensions counted via their extents is approximated by
   one plane per array — we only know grid points here, so scale by the
   number of status arrays) *)
let working_set_bytes ~gi ~points_per_rank =
  float_of_int (List.length gi.A.Grid_info.status)
  *. float_of_int points_per_rank *. 8.0

let memory_slowdown m ws =
  let knee capacity = if ws <= capacity then 0.0 else 1.0 -. (capacity /. ws) in
  1.0 +. (m.cache_penalty *. knee m.cache_bytes)
  +. (m.mem_penalty *. knee m.mem_bytes)

let census ~gi ~topo (u : Ast.program_unit) =
  let env = A.Env.of_unit u in
  let parts = P.Topology.parts topo in
  let acc = ref zero_census in
  let pipelined_dims = ref [] in
  (* [batch] is the streaming factor: consecutive sweeps of a pipelined
     loop sitting alone in an enclosing sequential loop fill the wavefront
     once per batch, not once per sweep *)
  let rec walk_block ~m ~cls ~batch block =
    (* a block consisting solely of one pipelined head (plus its pipeline
       recv/send) streams: the enclosing DO trip is the batch *)
    List.iter (walk_stmt ~m ~cls ~batch) block
  and walk_stmt ~m ~cls ~batch st =
    let leaf_flops f =
      match cls with
      | `Pipeline -> acc := { !acc with flops_pipeline = !acc.flops_pipeline +. (m *. f) }
      | `Block -> acc := { !acc with flops_block = !acc.flops_block +. (m *. f) }
      | `Serial -> acc := { !acc with flops_serial = !acc.flops_serial +. (m *. f) }
    in
    match st.Ast.s_kind with
    | Ast.Assign (lhs, rhs) -> leaf_flops (expr_flops lhs +. expr_flops rhs)
    | Ast.Goto _ | Ast.Continue | Ast.Return | Ast.Stop -> ()
    | Ast.Call (_, args) ->
        leaf_flops (List.fold_left (fun a e -> a +. expr_flops e) 0. args)
    | Ast.Read _ -> ()
    | Ast.Write es ->
        leaf_flops (List.fold_left (fun a e -> a +. expr_flops e) 0. es)
    | Ast.If (branches, els) ->
        List.iter (fun (c, _) -> leaf_flops (expr_flops c)) branches;
        (* take the flop-heaviest branch *)
        let saved = !acc in
        let weights =
          List.map
            (fun b ->
              acc := zero_census;
              walk_block ~m ~cls ~batch b;
              let w = !acc in
              w)
            (List.map snd branches @ Option.to_list els)
        in
        acc := saved;
        let heaviest =
          List.fold_left
            (fun best w ->
              match best with
              | None -> Some w
              | Some b -> if total_flops w > total_flops b then Some w else Some b)
            None weights
        in
        Option.iter (fun w -> acc := add_census !acc w) heaviest
    | Ast.Do d ->
        let trip =
          let lo = A.Env.eval_int env (strip_local d.Ast.do_lo) in
          let hi = A.Env.eval_int env (strip_local d.Ast.do_hi) in
          let step =
            match d.Ast.do_step with
            | None -> Some 1
            | Some e -> A.Env.eval_int env (strip_local e)
          in
          match (lo, hi, step) with
          | Some l, Some h, Some s when s <> 0 ->
              max 0 (((h - l) / s) + 1)
          | _ -> 1
        in
        let is_solo_pipeline_body body =
          let rec only_pipe = function
            | [] -> false
            | stmts ->
                List.for_all
                  (fun (st : Ast.stmt) ->
                    match st.Ast.s_kind with
                    | Ast.Pipeline_recv _ | Ast.Pipeline_send _ -> true
                    | Ast.Do { do_sched = Ast.Sched_pipeline _; _ } -> true
                    | Ast.Do { do_body; _ } -> only_pipe do_body
                    | _ -> false)
                  stmts
          in
          only_pipe body
        in
        (match d.Ast.do_sched with
        | Ast.Sched_seq ->
            let batch' =
              if is_solo_pipeline_body d.Ast.do_body then
                batch *. float_of_int (max 1 trip)
              else 1.0
            in
            walk_block ~m:(m *. float_of_int trip) ~cls ~batch:batch'
              d.Ast.do_body
        | Ast.Sched_block g ->
            let local = min trip ((trip + parts.(g) - 1) / parts.(g)) in
            let cls = if cls = `Pipeline then cls else `Block in
            walk_block ~m:(m *. float_of_int local) ~cls ~batch:1.0
              d.Ast.do_body
        | Ast.Sched_pipeline { dim; _ } ->
            if not (List.mem dim !pipelined_dims) then
              pipelined_dims := dim :: !pipelined_dims;
            let local = min trip ((trip + parts.(dim) - 1) / parts.(dim)) in
            let entering = cls <> `Pipeline in
            (if entering then begin
               (* measure the per-entry flops of this head to charge the
                  wavefront fill stalls *)
               let saved = !acc in
               acc := zero_census;
               walk_block ~m:(float_of_int local) ~cls:`Pipeline ~batch:1.0
                 d.Ast.do_body;
               let entry = !acc in
               acc := saved;
               let entry_flops = total_flops entry in
               let stages_here =
                 List.fold_left
                   (fun sacc dd -> sacc + (parts.(dd) - 1))
                   0 !pipelined_dims
               in
               let fills = m /. Float.max 1.0 batch in
               acc :=
                 add_census !acc
                   { entry with
                     flops_pipeline = total_flops entry *. m;
                     flops_block = 0.;
                     flops_serial = 0.;
                     exchanges = entry.exchanges *. m;
                     exchange_msgs = entry.exchange_msgs *. m;
                     exchange_bytes = entry.exchange_bytes *. m;
                     pipe_msgs = entry.pipe_msgs *. m;
                     pipe_bytes = entry.pipe_bytes *. m;
                     reductions = entry.reductions *. m;
                     pipe_fills = fills;
                     stall_flops =
                       fills *. float_of_int stages_here *. entry_flops;
                   }
             end
             else
               walk_block ~m:(m *. float_of_int local) ~cls:`Pipeline
                 ~batch:1.0 d.Ast.do_body))
    | Ast.Comm c -> (
        match c with
        | Ast.Exchange ts ->
            let msgs, bytes =
              List.fold_left
                (fun (msgs, bytes) (t : Ast.transfer) ->
                  let pp =
                    plane_points gi env u topo t.Ast.xfer_array
                      ~dim:t.Ast.xfer_dim
                  in
                  (* a directional transfer is sent by every rank that has
                     a neighbor on that side: with 2 parts each rank sends
                     in one direction only; with >= 3 parts the worst-case
                     interior rank sends both *)
                  let factor =
                    match parts.(t.Ast.xfer_dim) with
                    | 1 -> 0.
                    | 2 -> 0.5
                    | _ -> 1.
                  in
                  ( msgs +. factor,
                    bytes
                    +. (factor *. float_of_int (pp * t.Ast.xfer_depth * 8)) ))
                (0., 0.) ts
            in
            acc :=
              { !acc with
                exchanges = !acc.exchanges +. m;
                exchange_msgs = !acc.exchange_msgs +. (m *. msgs);
                exchange_bytes = !acc.exchange_bytes +. (m *. bytes) }
        | Ast.Allreduce_max _ | Ast.Allreduce_min _ | Ast.Allreduce_sum _ ->
            acc := { !acc with reductions = !acc.reductions +. m }
        | Ast.Broadcast _ ->
            acc := { !acc with reductions = !acc.reductions +. m }
        | Ast.Allgather arrays ->
            (* every rank exchanges owned regions with every other rank:
               per rank, (P-1) sends of its own region and the full array
               volume received *)
            let nranks = P.Topology.nranks topo in
            let bytes =
              List.fold_left
                (fun b name ->
                  let plane = plane_points gi env u topo name ~dim:(-1) in
                  (* plane_points with dim -1 multiplies every dimension's
                     local extent: the rank's owned region *)
                  b +. float_of_int (plane * 8 * (nranks - 1)))
                0. arrays
            in
            acc :=
              { !acc with
                exchange_msgs =
                  !acc.exchange_msgs +. (m *. float_of_int (2 * (nranks - 1)));
                exchange_bytes = !acc.exchange_bytes +. (m *. bytes *. 2.) }
        | Ast.Barrier ->
            acc := { !acc with reductions = !acc.reductions +. m })
    | Ast.Pipeline_recv { arrays; dim; _ } | Ast.Pipeline_send { arrays; dim; _ }
      ->
        let bytes =
          List.fold_left
            (fun b (name, depth) ->
              b
              +. float_of_int (plane_points gi env u topo name ~dim * depth * 8))
            0. arrays
        in
        (* count the send side only (one message per hop) *)
        (match st.Ast.s_kind with
        | Ast.Pipeline_send _ ->
            acc :=
              { !acc with
                pipe_msgs = !acc.pipe_msgs +. m;
                pipe_bytes = !acc.pipe_bytes +. bytes *. m }
        | _ -> ())
  in
  walk_block ~m:1.0 ~cls:`Serial ~batch:1.0 u.Ast.u_body;
  let stages =
    List.fold_left (fun s d -> s + (parts.(d) - 1)) 1 !pipelined_dims
  in
  { !acc with wave_stages = stages }

type prediction = {
  time : float;
  compute_time : float;
  pipeline_time : float;
  serial_time : float;
  comm_time : float;
  reduce_time : float;
  working_set : float;
  slowdown : float;
}

let points_per_rank topo =
  let grid = P.Topology.grid topo in
  let acc = ref 1 in
  Array.iteri (fun g _ -> acc := !acc * local_extent topo g) grid;
  !acc

let predict machine ~gi ~topo c =
  let nranks = P.Topology.nranks topo in
  let ws = working_set_bytes ~gi ~points_per_rank:(points_per_rank topo) in
  let s = memory_slowdown machine ws in
  let per_flop = s /. machine.flop_rate in
  let compute_time = c.flops_block *. per_flop in
  let pipeline_time = (c.flops_pipeline +. c.stall_flops) *. per_flop in
  let serial_time = c.flops_serial *. per_flop in
  let msg_cost bytes_per_msg =
    machine.net.N.latency +. machine.net.N.send_overhead
    +. machine.net.N.recv_overhead
    +. (bytes_per_msg /. machine.net.N.bandwidth)
  in
  let p2p_time =
    (if c.exchange_msgs > 0. then
       c.exchange_msgs *. msg_cost (c.exchange_bytes /. c.exchange_msgs)
     else 0.)
    +.
    (* per-rank pipeline sends, plus the critical-path hops of each
       wavefront fill *)
    (if c.pipe_msgs > 0. then
       let per_msg = msg_cost (c.pipe_bytes /. c.pipe_msgs) in
       (c.pipe_msgs *. per_msg)
       +. (c.pipe_fills *. float_of_int (max 0 (c.wave_stages - 1))
          *. per_msg)
     else 0.)
  in
  let stages_log =
    ceil (Float.log2 (float_of_int (max 2 nranks)))
  in
  let reduce_time =
    c.reductions *. 2.0 *. stages_log *. machine.net.N.latency
  in
  (* mirror-image programs cannot overlap compute and communication *)
  let overlap = if c.wave_stages > 1 then 0.0 else machine.overlap in
  let hidden = Float.min (p2p_time *. overlap) compute_time in
  let comm_time = p2p_time -. hidden in
  {
    time = compute_time +. pipeline_time +. serial_time +. comm_time +. reduce_time;
    compute_time;
    pipeline_time;
    serial_time;
    comm_time;
    reduce_time;
    working_set = ws;
    slowdown = s;
  }

let predict_parallel machine ~gi ~topo u =
  predict machine ~gi ~topo (census ~gi ~topo u)

let predict_sequential machine ~gi u =
  let grid = gi.A.Grid_info.grid in
  let topo =
    P.Topology.create ~grid ~parts:(Array.make (Array.length grid) 1)
  in
  predict machine ~gi ~topo (census ~gi ~topo u)

(* ------------------------------------------------------------------ *)
(* Calibration from measured wall clock                                *)
(* ------------------------------------------------------------------ *)

type calibration = {
  cal_flop_time : float;
  cal_latency : float;
  cal_bandwidth : float;
  cal_compute_r2 : float;
  cal_comm_r2 : float;
}

let r2 actual predicted =
  let n = List.length actual in
  if n = 0 then 0.0
  else
    let mean = List.fold_left ( +. ) 0.0 actual /. float_of_int n in
    let ss_tot =
      List.fold_left (fun a y -> a +. ((y -. mean) ** 2.0)) 0.0 actual
    in
    let ss_res =
      List.fold_left2
        (fun a y p -> a +. ((y -. p) ** 2.0))
        0.0 actual predicted
    in
    if ss_tot <= 0.0 then if ss_res <= 0.0 then 1.0 else 0.0
    else 1.0 -. (ss_res /. ss_tot)

let calibrate ~compute ~comm =
  (* per-flop cost: least squares through the origin, seconds = ft * flops *)
  let sxx, sxy =
    List.fold_left
      (fun (sxx, sxy) (f, s) -> (sxx +. (f *. f), sxy +. (f *. s)))
      (0.0, 0.0) compute
  in
  let flop_time = if sxx > 0.0 then sxy /. sxx else 0.0 in
  (* network: ordinary linear least squares, seconds = latency + bytes/bw *)
  let pts = List.filter (fun (b, _) -> b > 0) comm in
  let n = float_of_int (List.length pts) in
  let latency, slope =
    if List.length pts < 2 then (0.0, 0.0)
    else
      let sx, sy, sxx, sxy =
        List.fold_left
          (fun (sx, sy, sxx, sxy) (b, s) ->
            let x = float_of_int b in
            (sx +. x, sy +. s, sxx +. (x *. x), sxy +. (x *. s)))
          (0.0, 0.0, 0.0, 0.0) pts
      in
      let det = (n *. sxx) -. (sx *. sx) in
      if det <= 0.0 then (sy /. n, 0.0)
      else
        let slope = ((n *. sxy) -. (sx *. sy)) /. det in
        let icept = (sy -. (slope *. sx)) /. n in
        (Float.max 0.0 icept, Float.max 0.0 slope)
  in
  let bandwidth = if slope > 0.0 then 1.0 /. slope else Float.infinity in
  let cal_compute_r2 =
    r2 (List.map snd compute)
      (List.map (fun (f, _) -> flop_time *. f) compute)
  in
  let cal_comm_r2 =
    r2 (List.map snd pts)
      (List.map (fun (b, _) -> latency +. (slope *. float_of_int b)) pts)
  in
  {
    cal_flop_time = flop_time;
    cal_latency = latency;
    cal_bandwidth = bandwidth;
    cal_compute_r2;
    cal_comm_r2;
  }
