(** Analytic performance model of the simulated cluster (substitute for the
    paper's wall-clock measurements on 6 Pentium workstations + Ethernet).

    The model walks the generated SPMD program with static trip counts,
    attributing floating-point work to three classes:

    - {e block}: data-parallel field loops — divided across ranks;
    - {e pipeline}: mirror-image/wavefront loops — divided across ranks but
      serialized into [sum(B_d) - k + 1] wavefront stages;
    - {e serial}: replicated statements — no speedup.

    Communication, pipeline handoffs and reductions are charged with the
    {!Autocfd_mpsim.Netmodel} latency/bandwidth model.  Per-point compute
    cost rises smoothly when a rank's working set exceeds the cache and
    again when it exceeds effective fast memory — this is what produces the
    paper's Table 5 superlinear speedups and the memory-pressure slowdown
    discussed in §6.2. *)

open Autocfd_fortran

type machine = {
  flop_rate : float;  (** sustained in-cache flops/s *)
  cache_bytes : float;
  cache_penalty : float;  (** multiplicative slowdown far beyond cache *)
  mem_bytes : float;  (** effective fast-memory capacity *)
  mem_penalty : float;  (** additional slowdown when thrashing *)
  net : Autocfd_mpsim.Netmodel.t;
  overlap : float;
      (** fraction of communication hidden under computation for
          non-pipelined programs (0..1); mirror-image programs get 0, per
          the paper's §6.2 discussion *)
}

val pentium_cluster : machine
(** Calibrated to the paper's testbed era: ~60 MFLOPS sustained Pentium
    workstations, 100 Mb Ethernet. *)

(** Static walk of a program unit. *)
type census = {
  flops_block : float;  (** per-rank flops in block-scheduled loops *)
  flops_pipeline : float;  (** per-rank flops in pipelined loops *)
  flops_serial : float;  (** replicated flops *)
  exchanges : float;  (** executed Exchange statements *)
  exchange_msgs : float;  (** per-rank messages (worst-case interior rank) *)
  exchange_bytes : float;  (** per-rank bytes *)
  pipe_msgs : float;
  pipe_bytes : float;
  reductions : float;
  wave_stages : int;  (** total wavefront hops across pipelined dims + 1 *)
  pipe_fills : float;
      (** wavefront fill events — consecutive sweeps of a pipelined loop
          inside a sequential driver loop stream and fill only once *)
  stall_flops : float;
      (** per-rank flops-equivalent spent stalled during wavefront fills *)
}

val census :
  gi:Autocfd_analysis.Grid_info.t ->
  topo:Autocfd_partition.Topology.t ->
  Ast.program_unit ->
  census
(** Walk the (SPMD or sequential) unit.  DO trip counts are evaluated
    statically; data-dependent loops count one iteration; IF branches
    contribute their flop-maximal branch. *)

type prediction = {
  time : float;
  compute_time : float;
  pipeline_time : float;
  serial_time : float;
  comm_time : float;
  reduce_time : float;
  working_set : float;  (** bytes per rank *)
  slowdown : float;
}

val working_set_bytes :
  gi:Autocfd_analysis.Grid_info.t -> points_per_rank:int -> float
(** Status-array bytes resident per rank. *)

val memory_slowdown : machine -> float -> float
(** The two-knee slowdown curve. *)

val predict_parallel :
  machine ->
  gi:Autocfd_analysis.Grid_info.t ->
  topo:Autocfd_partition.Topology.t ->
  Ast.program_unit ->
  prediction
(** Predicted wall-clock of the SPMD unit on the partition. *)

val predict_sequential :
  machine -> gi:Autocfd_analysis.Grid_info.t -> Ast.program_unit -> prediction
(** Predicted uniprocessor wall-clock of the inlined sequential unit. *)

(** {1 Calibration from measured wall clock}

    The real shared-memory Domains engine measures what the simulator only
    models: wall seconds per rank of compute and per halo-exchange episode.
    [calibrate] fits the model's primitive costs to those measurements so a
    simulated machine can be parameterized from a real run. *)

type calibration = {
  cal_flop_time : float;
      (** fitted seconds per flop (least squares through the origin) *)
  cal_latency : float;  (** fitted per-episode fixed cost, seconds *)
  cal_bandwidth : float;
      (** fitted bytes/second; [infinity] when the byte term does not
          improve the fit (too few or degenerate samples) *)
  cal_compute_r2 : float;  (** goodness of the compute fit, 0..1 *)
  cal_comm_r2 : float;  (** goodness of the communication fit, 0..1 *)
}

val calibrate :
  compute:(float * float) list -> comm:(int * float) list -> calibration
(** [calibrate ~compute ~comm] fits [compute = (flops, seconds)] samples to
    [seconds = flop_time * flops] and [comm = (bytes, seconds)] samples to
    [seconds = latency + bytes / bandwidth].  Degenerate inputs (empty
    lists, all-equal abscissae) yield zero costs rather than raising. *)
