module J = Autocfd_obs.Json

type t = {
  jb_label : string;
  jb_key : J.t;
  jb_run : unit -> J.t;
  jb_spec : J.t option;
}

(* bump when a code change invalidates previously cached results *)
(* /2: the Runspec JSON codec grew plan-time fields (nprocs, parts,
   combine, fission, fuse), changing the content of every spec-keyed
   result *)
let code_version = "autocfd-sched/2"

let make ?(version = code_version) ?spec ~label ~key run =
  {
    jb_label = label;
    jb_key = J.Obj [ ("code", J.Str version); ("spec", key) ];
    jb_run = run;
    jb_spec = spec;
  }

(* FNV-1a, 64-bit *)
let digest s =
  let offset_basis = 0xcbf29ce484222325L in
  let prime = 0x100000001b3L in
  let h = ref offset_basis in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  Printf.sprintf "%016Lx" !h

let cache_name job = digest (J.canonical job.jb_key)
