(** Fault-tolerant distributed sweep fabric: a socket master/worker pool.

    {!Pool} spreads a sweep over one host's domains; the fabric spreads
    it over {e processes} — a master listening on a Unix-domain or TCP
    socket hands out content-addressed {!Job}s and workers (spawned as
    [autocfd worker --connect ADDR], possibly on other hosts) stream back
    result JSON.  Every byte on the wire travels in
    {!Autocfd_mpsim.Frame} envelopes — the {!Autocfd_mpsim.Reliable}
    discipline (sequence numbers, FNV checksums, retransmission,
    duplicate suppression) over real file descriptors — so corrupt or
    reordered frames are recovered, not trusted.

    Robustness is the point.  The life of a job:

    {v pending -> leased -> done
         ^          |
         |          +-- lease expires (no heartbeat) ... requeue
         |          +-- worker dies (EOF/EPIPE) ........ requeue
         |          +-- worker reports failure ......... retry
         +---- backoff * 2^(attempt-1) * (1 + jitter) ---+
                 (after max_attempts: quarantined) v}

    - {b Leases + heartbeats}: a dispatched job is owned by its worker
      for [fb_lease] seconds; each heartbeat extends the lease.  A silent
      worker forfeits the job {e and is fenced} — its connection is cut,
      because a zombie left "ready" would win the requeued job straight
      back and starve it into quarantine.
    - {b Requeue on crash}: a worker's death returns its leased job to
      the queue.  Side effects stay at-most-once because results are
      only persisted by the master through the cache's atomic
      temp+rename writes, and only the first completion of a job counts
      — late results from a forfeited lease are accepted if the job is
      still open and discarded as stale otherwise.
    - {b Bounded retries}: a job that fails or is forfeited
      [fb_max_attempts] times is quarantined — reported as an error row,
      never re-dispatched, and the sweep still completes.
    - {b Graceful degradation}: if no worker is connected within
      [fb_grace] seconds of a batch starting — or every worker dies
      mid-batch and none reconnects — the remaining jobs run in-process
      (and the fabric says so on stderr, once).

    Results come back in submission order, so a fabric sweep renders
    byte-identically to a serial {!Pool} sweep.  [run] returns
    {!Pool.stats}-shaped per-batch statistics (worker index in place of
    domain index) so existing reporting works unchanged; {!stats} adds
    the fabric's own cumulative robustness counters. *)

type addr = Unix_path of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** ["unix:/path"] or a bare path → {!Unix_path}; ["host:port"] →
    {!Tcp}. *)

val addr_to_string : addr -> string

exception Fabric_error of string
(** Raised by {!create} when the listen address cannot be bound. *)

type cfg = {
  fb_grace : float;  (** seconds to wait for a first worker (default 5) *)
  fb_lease : float;  (** job lease seconds, heartbeat-extended (30) *)
  fb_heartbeat : float;  (** worker heartbeat period hint (1) *)
  fb_max_attempts : int;  (** attempts before quarantine (3) *)
  fb_backoff : float;  (** base retry delay seconds (0.05) *)
  fb_backoff_mult : float;  (** exponential backoff multiplier (2) *)
  fb_fallback_jobs : int option;
      (** domain count for the degraded in-process pool (None: pool
          default) *)
  fb_chaos_kill : int option;
      (** fault-injection hook for the CI chaos gate: after this many
          worker-completed jobs, SIGKILL the next spawned worker right
          as a job is leased to it (once); [None] = never *)
}

val default_cfg : cfg

type t

val create : ?cfg:cfg -> listen:addr -> unit -> t
(** Bind and listen.  A stale Unix-domain socket file at the path is
    replaced.  [Tcp (host, 0)] picks a free port — read it back with
    {!addr}.  @raise Fabric_error when binding fails. *)

val addr : t -> addr
(** The actual bound address. *)

val spawn_worker : t -> argv:string array -> int
(** Fork [argv] (argv.(0) is the executable) as a worker process and
    return its pid.  The child inherits stdin/stdout/stderr; it is
    reaped by {!shutdown}.  Only spawned pids are eligible for the
    [fb_chaos_kill] hook. *)

val run :
  t ->
  ?cache:Cache.t ->
  ?tracer:Autocfd_obs.Trace.t ->
  Job.t list ->
  (Autocfd_obs.Json.t, string) result array * Pool.stats
(** Execute one batch and return results in submission order, exactly
    like {!Pool.run}.  Cache hits are served by the master without
    touching a worker; jobs without a [jb_spec] run in the master
    process.  With [tracer] set, per-job {!Autocfd_obs.Trace.Sched}
    events ([run]/[hit]/[error]) and fabric lifecycle events ([lease],
    [requeue], [expire], [death], [quarantine]) are recorded after the
    batch, on the handling worker's "rank" with wall-clock timestamps.
    A quarantined job's slot reports
    [Error "quarantined after N attempts: ..."]. *)

type worker_stats = {
  ws_id : string;  (** the worker's self-reported name *)
  ws_pid : int option;  (** its pid, when it said hello *)
  ws_alive : bool;
  ws_leases : int;  (** jobs ever leased to it *)
  ws_done : int;  (** results it delivered *)
  ws_retransmits : int;
  ws_dup_suppressed : int;
  ws_corrupt : int;  (** corrupt frames its connection absorbed *)
}

type stats = {
  fs_workers : worker_stats list;  (** in connection order *)
  fs_requeues : int;  (** leased jobs returned to the queue *)
  fs_retries : int;  (** re-dispatches for any reason *)
  fs_lease_expiries : int;
  fs_worker_deaths : int;
  fs_quarantined : int;
  fs_stale_results : int;  (** late results for already-done jobs *)
  fs_corrupt_frames : int;
  fs_retransmits : int;
  fs_dup_suppressed : int;
  fs_degraded : bool;  (** some batch fell back to the in-process pool *)
}

val stats : t -> stats
(** Cumulative over the fabric's lifetime. *)

val observe_registry : Autocfd_obs.Registry.t -> stats -> unit
(** Export the robustness counters as
    [autocfd_fabric_{retries,requeues,lease_expiries,frames_corrupt}_total]
    (plus worker deaths and quarantines). *)

val shutdown : t -> unit
(** Send every worker a shutdown message, close all sockets, remove the
    Unix-domain socket file and reap spawned workers (escalating to
    SIGKILL after a short wait).  Idempotent. *)

(** {2 Wire protocol} *)

type msg =
  | Hello of { mh_worker : string; mh_pid : int }
  | Assign of { ma_id : int; ma_label : string; ma_spec : Autocfd_obs.Json.t }
  | Heartbeat of { mb_id : int }
  | Result of { mr_id : int; mr_result : Autocfd_obs.Json.t }
  | Failure of { mf_id : int; mf_error : string }
  | Shutdown

val msg_to_string : msg -> string
(** JSON, carried as one {!Autocfd_mpsim.Frame} data payload. *)

val msg_of_string : string -> (msg, string) result

(** {2 Worker side} *)

val serve :
  connect:addr ->
  ?id:string ->
  ?heartbeat:float ->
  ?chaos:Autocfd_mpsim.Frame.chaos ->
  resolve:(Autocfd_obs.Json.t -> Autocfd_obs.Json.t) ->
  unit ->
  (unit, string) result
(** Run one worker: connect to the master, say hello, then loop —
    resolve each assigned spec (a background thread heartbeats while the
    job runs) and stream the result back — until the master says
    shutdown or hangs up.  An exception from [resolve] becomes a
    {!Failure} message; the worker survives it.  [Error msg] means the
    connection could not be established ([msg] is a one-line
    diagnostic). *)
