(** Persistent content-addressed result cache for sweep jobs.

    Completed jobs are memoized on disk under
    [<dir>/<fnv64-of-canonical-key>.json], one file per key, holding both
    the full canonical key and the result:

    {v { "key": { "code": ..., "spec": ... }, "result": ... } v}

    Storing the key alongside the result makes hash collisions harmless
    (a lookup whose stored key differs from the probe key is a miss) and
    makes entries self-describing for tooling.  Writes are atomic —
    rendered to a temporary file in the cache directory, then renamed —
    so an interrupted run or two racing worker domains can never leave a
    torn entry.  Lookups treat unreadable or malformed entries as
    misses. *)

type t

val create : ?dir:string -> ?stale_age:float -> unit -> t
(** [create ()] opens (creating if needed) the cache directory, default
    ["_autocfd_cache"], and sweeps away stale [*.tmp] files left by
    writers that were killed mid-store: any temp file older than
    [stale_age] seconds (default 600; the count is {!stale_cleaned}).
    @raise Sys_error if the directory cannot be created or is not
    writable. *)

val dir : t -> string

val stale_cleaned : t -> int
(** Stale temp files deleted when this handle opened the directory. *)

val corruption_misses : t -> int
(** Lookups (since {!create}) that found an entry file but could not use
    it: unreadable or malformed JSON, a missing [key]/[result] field, or
    a stored key that differs from the probe key (hash collision or torn
    write).  Each such probe counted once; ordinary cold misses (no entry
    file) are not included. *)

val lookup : t -> Job.t -> Autocfd_obs.Json.t option
(** The stored result, iff an entry exists whose stored key is
    canonically equal to the job's key. *)

val store : t -> Job.t -> Autocfd_obs.Json.t -> unit
(** Atomically (over-)write the job's entry. *)

val clear : t -> unit
(** Remove every [*.json] entry (used by the CI smoke step to force a
    cold first pass). *)

val write_atomic : path:string -> string -> unit
(** Write [text] to a temporary file in [path]'s directory and rename it
    over [path]: readers see either the old or the new complete file,
    never a prefix.  Also used for [BENCH_tables.json]. *)
