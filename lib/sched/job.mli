(** One fully-specified unit of sweep work.

    A job pairs a {e canonical key} — the JSON description of everything
    that determines its result: the run specification, the program source
    digest and the code-version stamp — with a thunk that computes the
    result as JSON.  Keys are compared and content-addressed through
    {!Autocfd_obs.Json.canonical}, so two jobs built from structurally
    equal specs collide on the same cache entry no matter how their key
    objects were assembled. *)

type t = {
  jb_label : string;  (** human-readable, e.g. ["table2:4x1x1"] *)
  jb_key : Autocfd_obs.Json.t;
      (** canonical cache key: [{"code": version, "spec": ...}] *)
  jb_run : unit -> Autocfd_obs.Json.t;
      (** compute the result; must be self-contained (no shared mutable
          state) — it may execute on any worker domain of a {!Pool} *)
  jb_spec : Autocfd_obs.Json.t option;
      (** a self-contained execution spec equivalent to [jb_run], for
          jobs that can run in another {e process}: a {!Fabric} worker
          receives the spec over the wire and resolves it (for the
          experiment sweeps, through [Experiments.exec_spec]).  [None]
          pins the job to the submitting process. *)
}

val code_version : string
(** The stamp baked into every key made by {!make}.  Bump it whenever a
    change alters what any cached result would contain — every previously
    cached entry then misses and is recomputed. *)

val make :
  ?version:string ->
  ?spec:Autocfd_obs.Json.t ->
  label:string ->
  key:Autocfd_obs.Json.t ->
  (unit -> Autocfd_obs.Json.t) ->
  t
(** [make ~label ~key run] wraps [key] together with the code-version
    stamp ([?version], default {!code_version}).  [spec] (default: none)
    makes the job eligible for remote execution — it must describe the
    computation completely, and resolving it must produce exactly what
    [run] returns. *)

val digest : string -> string
(** FNV-1a 64-bit hash of a string as 16 lowercase hex digits — used for
    program-source digests inside keys and for cache file names. *)

val cache_name : t -> string
(** The job's content address: [digest] of the canonical key text. *)
