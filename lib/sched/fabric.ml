module J = Autocfd_obs.Json
module Trace = Autocfd_obs.Trace
module Registry = Autocfd_obs.Registry
module Frame = Autocfd_mpsim.Frame

(* ------------------------------------------------------------------ *)
(* addresses                                                          *)

type addr = Unix_path of string | Tcp of string * int

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

let addr_of_string s =
  let bad () = Error (Printf.sprintf "%s: not a fabric address" s) in
  if String.length s >= 5 && String.sub s 0 5 = "unix:" then
    let p = String.sub s 5 (String.length s - 5) in
    if p = "" then bad () else Ok (Unix_path p)
  else
    match String.rindex_opt s ':' with
    | None -> if s = "" then bad () else Ok (Unix_path s)
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 && p < 65536 && host <> "" -> Ok (Tcp (host, p))
        | _ -> bad ())

exception Fabric_error of string

let sockaddr_of = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found | Invalid_argument _ ->
            raise (Fabric_error (host ^ ": host not found")))
      in
      Unix.ADDR_INET (ip, port)

let socket_domain = function
  | Unix_path _ -> Unix.PF_UNIX
  | Tcp _ -> Unix.PF_INET

let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* wire protocol                                                      *)

type msg =
  | Hello of { mh_worker : string; mh_pid : int }
  | Assign of { ma_id : int; ma_label : string; ma_spec : J.t }
  | Heartbeat of { mb_id : int }
  | Result of { mr_id : int; mr_result : J.t }
  | Failure of { mf_id : int; mf_error : string }
  | Shutdown

let msg_to_json = function
  | Hello { mh_worker; mh_pid } ->
      J.Obj
        [
          ("type", J.Str "hello");
          ("worker", J.Str mh_worker);
          ("pid", J.Int mh_pid);
        ]
  | Assign { ma_id; ma_label; ma_spec } ->
      J.Obj
        [
          ("type", J.Str "assign");
          ("id", J.Int ma_id);
          ("label", J.Str ma_label);
          ("spec", ma_spec);
        ]
  | Heartbeat { mb_id } ->
      J.Obj [ ("type", J.Str "heartbeat"); ("id", J.Int mb_id) ]
  | Result { mr_id; mr_result } ->
      J.Obj
        [ ("type", J.Str "result"); ("id", J.Int mr_id); ("result", mr_result) ]
  | Failure { mf_id; mf_error } ->
      J.Obj
        [
          ("type", J.Str "failure");
          ("id", J.Int mf_id);
          ("error", J.Str mf_error);
        ]
  | Shutdown -> J.Obj [ ("type", J.Str "shutdown") ]

let msg_of_json doc =
  let str k =
    match J.member k doc with Some (J.Str s) -> Some s | _ -> None
  in
  let int k =
    match J.member k doc with Some (J.Int i) -> Some i | _ -> None
  in
  match str "type" with
  | Some "hello" -> (
      match (str "worker", int "pid") with
      | Some w, Some p -> Ok (Hello { mh_worker = w; mh_pid = p })
      | _ -> Error "hello: missing worker/pid")
  | Some "assign" -> (
      match (int "id", str "label", J.member "spec" doc) with
      | Some id, Some label, Some spec ->
          Ok (Assign { ma_id = id; ma_label = label; ma_spec = spec })
      | _ -> Error "assign: missing id/label/spec")
  | Some "heartbeat" -> (
      match int "id" with
      | Some id -> Ok (Heartbeat { mb_id = id })
      | None -> Error "heartbeat: missing id")
  | Some "result" -> (
      match (int "id", J.member "result" doc) with
      | Some id, Some r -> Ok (Result { mr_id = id; mr_result = r })
      | _ -> Error "result: missing id/result")
  | Some "failure" -> (
      match (int "id", str "error") with
      | Some id, Some e -> Ok (Failure { mf_id = id; mf_error = e })
      | _ -> Error "failure: missing id/error")
  | Some "shutdown" -> Ok Shutdown
  | Some other -> Error (other ^ ": unknown message type")
  | None -> Error "message without a type"

let msg_to_string m = J.to_string (msg_to_json m)

let msg_of_string s =
  match J.of_string s with
  | exception J.Parse_error e -> Error ("unparsable message: " ^ e)
  | doc -> msg_of_json doc

(* ------------------------------------------------------------------ *)
(* master                                                             *)

type cfg = {
  fb_grace : float;
  fb_lease : float;
  fb_heartbeat : float;
  fb_max_attempts : int;
  fb_backoff : float;
  fb_backoff_mult : float;
  fb_fallback_jobs : int option;
  fb_chaos_kill : int option;
}

let default_cfg =
  {
    fb_grace = 5.0;
    fb_lease = 30.0;
    fb_heartbeat = 1.0;
    fb_max_attempts = 3;
    fb_backoff = 0.05;
    fb_backoff_mult = 2.0;
    fb_fallback_jobs = None;
    fb_chaos_kill = None;
  }

type wstate = {
  w_index : int;
  w_conn : Frame.conn;
  mutable w_id : string;
  mutable w_pid : int option;
  mutable w_ready : bool;  (** said hello *)
  mutable w_alive : bool;
  mutable w_job : int option;  (** global job id it holds a lease on *)
  mutable w_deadline : float;  (** lease expiry, absolute *)
  mutable w_lease_t0 : float;  (** batch-relative, for the trace *)
  mutable w_leases : int;
  mutable w_done : int;
}

type t = {
  t_cfg : cfg;
  t_listen : Unix.file_descr;
  t_addr : addr;
  mutable t_workers : wstate list;  (** connection order *)
  mutable t_spawned : int list;
  mutable t_next_job : int;
  mutable t_requeues : int;
  mutable t_retries : int;
  mutable t_expiries : int;
  mutable t_deaths : int;
  mutable t_quarantined : int;
  mutable t_stale : int;
  mutable t_completions : int;  (** worker-delivered results, lifetime *)
  mutable t_killed : bool;  (** the chaos kill already fired *)
  mutable t_degraded : bool;
  mutable t_shutdown : bool;
}

let create ?(cfg = default_cfg) ~listen () =
  ignore_sigpipe ();
  (match listen with
  | Unix_path p when Sys.file_exists p -> (
      (* a previous master's socket file; binding over it needs it gone *)
      try Sys.remove p with Sys_error _ -> ())
  | _ -> ());
  let fd = Unix.socket (socket_domain listen) Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (sockaddr_of listen);
     Unix.listen fd 16
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise
       (Fabric_error
          (Printf.sprintf "cannot listen on %s: %s" (addr_to_string listen)
             (Unix.error_message e))));
  Unix.set_close_on_exec fd;
  (* accept_pending drains with accept-until-EAGAIN; a blocking listen
     fd would park the master on the accept after the last pending
     connection *)
  Unix.set_nonblock fd;
  let actual =
    match listen with
    | Tcp (host, 0) -> (
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, port) -> Tcp (host, port)
        | _ -> listen)
    | a -> a
  in
  {
    t_cfg = cfg;
    t_listen = fd;
    t_addr = actual;
    t_workers = [];
    t_spawned = [];
    t_next_job = 0;
    t_requeues = 0;
    t_retries = 0;
    t_expiries = 0;
    t_deaths = 0;
    t_quarantined = 0;
    t_stale = 0;
    t_completions = 0;
    t_killed = false;
    t_degraded = false;
    t_shutdown = false;
  }

let addr t = t.t_addr

let spawn_worker t ~argv =
  let pid =
    Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr
  in
  t.t_spawned <- pid :: t.t_spawned;
  pid

let accept_pending t =
  let rec loop () =
    match Unix.accept ~cloexec:true t.t_listen with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | fd, _ ->
        let w =
          {
            w_index = List.length t.t_workers;
            w_conn = Frame.conn fd;
            w_id = Printf.sprintf "worker#%d" (List.length t.t_workers);
            w_pid = None;
            w_ready = false;
            w_alive = true;
            w_job = None;
            w_deadline = 0.0;
            w_lease_t0 = 0.0;
            w_leases = 0;
            w_done = 0;
          }
        in
        t.t_workers <- t.t_workers @ [ w ];
        loop ()
  in
  loop ()

(* one select round: accept connections, pump readable worker
   connections; [on_msg w msg] per decoded message, [on_death w] once
   per connection that went away *)
let poll t ~timeout ~on_msg ~on_death =
  let conns =
    List.filter_map
      (fun w -> if w.w_alive then Some (Frame.fd w.w_conn, w) else None)
      t.t_workers
  in
  let fds = t.t_listen :: List.map fst conns in
  match Unix.select fds [] [] timeout with
  | exception Unix.Unix_error (EINTR, _, _) -> ()
  | readable, _, _ ->
      if List.memq t.t_listen readable then accept_pending t;
      List.iter
        (fun (fd, w) ->
          if List.memq fd readable then
            match Frame.pump w.w_conn with
            | payloads ->
                List.iter
                  (fun p ->
                    match msg_of_string p with
                    | Ok m -> on_msg w m
                    | Error _ ->
                        (* checksummed transport makes this version skew,
                           not line noise; drop it *)
                        ())
                  payloads
            | exception Frame.Closed ->
                w.w_alive <- false;
                Frame.close w.w_conn;
                on_death w)
        conns

(* deterministic jitter in [0, 1): FNV of "index:attempt" *)
let jitter01 i k =
  let h = Job.digest (Printf.sprintf "%d:%d" i k) in
  float_of_int (int_of_string ("0x" ^ String.sub h 0 6)) /. 16777216.0

let backoff_delay cfg ~index ~attempt =
  cfg.fb_backoff
  *. (cfg.fb_backoff_mult ** float_of_int (max 0 (attempt - 1)))
  *. (1.0 +. jitter01 index attempt)

type jstate = Pending | Leased | Done

let run t ?cache ?tracer job_list =
  if t.t_shutdown then raise (Fabric_error "fabric is shut down");
  let cfg = t.t_cfg in
  let arr = Array.of_list job_list in
  let n = Array.length arr in
  let t_start = Unix.gettimeofday () in
  let now_rel () = Unix.gettimeofday () -. t_start in
  let results = Array.make n (Error "job not run") in
  let state = Array.make n Pending in
  let attempts = Array.make n 0 in
  let owner = Array.make n (-1) in
  let ready_at = Array.make n 0.0 in
  let last_error = Array.make n "" in
  let events = Array.make n None in
  (* fabric lifecycle events for the trace: (worker, t, what, label) *)
  let lifecycle = ref [] in
  let mark w what i =
    match tracer with
    | None -> ()
    | Some _ ->
        lifecycle :=
          (w, now_rel (), what, arr.(i).Job.jb_label) :: !lifecycle
  in
  let remaining = ref n in
  let id_base = t.t_next_job in
  t.t_next_job <- t.t_next_job + n;
  let idx_of_id id =
    let i = id - id_base in
    if i >= 0 && i < n then Some i else None
  in
  let corrupt0 =
    match cache with Some c -> Cache.corruption_misses c | None -> 0
  in
  let complete i ~worker ~t0 res outcome =
    results.(i) <- res;
    state.(i) <- Done;
    owner.(i) <- -1;
    decr remaining;
    events.(i) <-
      Some
        {
          Pool.pe_worker = worker;
          pe_index = i;
          pe_label = arr.(i).Job.jb_label;
          pe_t0 = t0;
          pe_t1 = now_rel ();
          pe_outcome = outcome;
        };
    match (res, cache) with
    | Ok doc, Some c -> Cache.store c arr.(i) doc
    | _ -> ()
  in
  (* cache probe up front: hits never touch a worker *)
  Array.iteri
    (fun i job ->
      match cache with
      | None -> ()
      | Some c -> (
          match Cache.lookup c job with
          | None -> ()
          | Some v ->
              let tnow = now_rel () in
              results.(i) <- Ok v;
              state.(i) <- Done;
              decr remaining;
              events.(i) <-
                Some
                  {
                    Pool.pe_worker = 0;
                    pe_index = i;
                    pe_label = job.Job.jb_label;
                    pe_t0 = tnow;
                    pe_t1 = tnow;
                    pe_outcome = Pool.Hit;
                  }))
    arr;
  let requeue ~why i =
    (* the lease (or attempt) is gone; decide between retry and
       quarantine *)
    owner.(i) <- -1;
    (match why with
    | `Error msg -> last_error.(i) <- msg
    | `Death | `Expiry -> t.t_requeues <- t.t_requeues + 1);
    if attempts.(i) >= cfg.fb_max_attempts then begin
      t.t_quarantined <- t.t_quarantined + 1;
      mark 0 "quarantine" i;
      let detail =
        if last_error.(i) = "" then "" else ": " ^ last_error.(i)
      in
      results.(i) <-
        Error
          (Printf.sprintf "quarantined after %d attempts%s" attempts.(i)
             detail);
      state.(i) <- Done;
      decr remaining;
      events.(i) <-
        Some
          {
            Pool.pe_worker = 0;
            pe_index = i;
            pe_label = arr.(i).Job.jb_label;
            pe_t0 = now_rel ();
            pe_t1 = now_rel ();
            pe_outcome =
              Pool.Failed
                (Printf.sprintf "quarantined after %d attempts%s"
                   attempts.(i) detail);
          }
    end
    else begin
      t.t_retries <- t.t_retries + 1;
      state.(i) <- Pending;
      ready_at.(i) <-
        Unix.gettimeofday ()
        +. backoff_delay cfg ~index:i ~attempt:attempts.(i)
    end
  in
  let on_death w =
    t.t_deaths <- t.t_deaths + 1;
    (match w.w_job with
    | Some id -> (
        w.w_job <- None;
        match idx_of_id id with
        | Some i when state.(i) = Leased && owner.(i) = w.w_index ->
            mark w.w_index "death" i;
            mark w.w_index "requeue" i;
            requeue ~why:`Death i
        | _ -> ())
    | None -> ())
  in
  let on_msg w msg =
    match msg with
    | Hello { mh_worker; mh_pid } ->
        w.w_id <- mh_worker;
        w.w_pid <- Some mh_pid;
        w.w_ready <- true
    | Heartbeat { mb_id } ->
        if w.w_job = Some mb_id then
          w.w_deadline <- Unix.gettimeofday () +. cfg.fb_lease
    | Result { mr_id; mr_result } -> (
        let held = w.w_job = Some mr_id in
        if held then begin
          w.w_job <- None;
          w.w_done <- w.w_done + 1
        end;
        match idx_of_id mr_id with
        | Some i when state.(i) <> Done ->
            t.t_completions <- t.t_completions + 1;
            let t0 = if held then w.w_lease_t0 else now_rel () in
            complete i ~worker:w.w_index ~t0 (Ok mr_result) Pool.Ran
        | _ -> t.t_stale <- t.t_stale + 1)
    | Failure { mf_id; mf_error } -> (
        if w.w_job = Some mf_id then w.w_job <- None;
        match idx_of_id mf_id with
        | Some i when state.(i) = Leased && owner.(i) = w.w_index ->
            mark w.w_index "requeue" i;
            requeue ~why:(`Error mf_error) i
        | _ -> ())
    | Assign _ | Shutdown -> ()
  in
  let exec_local i =
    (* a cache miss with no spec, or degraded-mode work: run it here,
       with Pool's error-isolation semantics *)
    attempts.(i) <- attempts.(i) + 1;
    owner.(i) <- -1;
    let t0 = now_rel () in
    match arr.(i).Job.jb_run () with
    | v -> complete i ~worker:0 ~t0 (Ok v) Pool.Ran
    | exception e ->
        let msg = Printexc.to_string e in
        complete i ~worker:0 ~t0 (Error msg) (Pool.Failed msg)
  in
  let ready_workers () =
    List.filter (fun w -> w.w_alive && w.w_ready) t.t_workers
  in
  let find_pending tnow =
    let best = ref None in
    for i = n - 1 downto 0 do
      if state.(i) = Pending && ready_at.(i) <= tnow then best := Some i
    done;
    !best
  in
  let dispatch () =
    let tnow = Unix.gettimeofday () in
    (* spec-less jobs can only ever run here *)
    for i = 0 to n - 1 do
      if state.(i) = Pending && arr.(i).Job.jb_spec = None then exec_local i
    done;
    List.iter
      (fun w ->
        if w.w_alive && w.w_ready && w.w_job = None then
          match find_pending tnow with
          | None -> ()
          | Some i -> (
              let id = id_base + i in
              let spec = Option.get arr.(i).Job.jb_spec in
              attempts.(i) <- attempts.(i) + 1;
              state.(i) <- Leased;
              owner.(i) <- w.w_index;
              w.w_job <- Some id;
              w.w_deadline <- tnow +. cfg.fb_lease;
              w.w_lease_t0 <- now_rel ();
              w.w_leases <- w.w_leases + 1;
              mark w.w_index "lease" i;
              (match
                 Frame.send w.w_conn
                   (msg_to_string
                      (Assign
                         { ma_id = id; ma_label = arr.(i).Job.jb_label;
                           ma_spec = spec }))
               with
              | () -> ()
              | exception Frame.Closed ->
                  w.w_alive <- false;
                  Frame.close w.w_conn;
                  on_death w);
              (* the chaos hook: kill the worker right after leasing, so
                 the CI gate reliably observes a requeue *)
              match cfg.fb_chaos_kill with
              | Some k when (not t.t_killed) && t.t_completions >= k -> (
                  match w.w_pid with
                  | Some pid when List.mem pid t.t_spawned ->
                      t.t_killed <- true;
                      (try Unix.kill pid Sys.sigkill
                       with Unix.Unix_error _ -> ())
                  | _ -> ())
              | _ -> ()))
      t.t_workers
  in
  let expire_leases () =
    let tnow = Unix.gettimeofday () in
    List.iter
      (fun w ->
        if w.w_alive then
          match w.w_job with
          | Some id when tnow > w.w_deadline ->
              w.w_job <- None;
              t.t_expiries <- t.t_expiries + 1;
              (match idx_of_id id with
              | Some i when state.(i) = Leased && owner.(i) = w.w_index ->
                  mark w.w_index "expire" i;
                  mark w.w_index "requeue" i;
                  requeue ~why:`Expiry i
              | _ -> ());
              (* fence the worker: it sat on the lease for the whole
                 window without a heartbeat, so it cannot be trusted
                 with another — left "ready" it would win the requeued
                 job straight back and starve it into quarantine *)
              w.w_alive <- false;
              Frame.close w.w_conn
          | _ -> ())
      t.t_workers
  in
  let degrade note =
    if not t.t_degraded then
      Printf.eprintf "fabric: %s; falling back to the in-process pool\n%!"
        note;
    t.t_degraded <- true
  in
  (if !remaining > 0 then
     (* grace window: wait for at least one ready worker *)
     let grace_end = Unix.gettimeofday () +. cfg.fb_grace in
     let rec wait () =
       if ready_workers () <> [] then ()
       else if Unix.gettimeofday () >= grace_end then ()
       else begin
         poll t ~timeout:0.05 ~on_msg ~on_death;
         wait ()
       end
     in
     wait ());
  if !remaining > 0 && ready_workers () = [] then begin
    (* no fabric at all: hand the whole batch to the in-process pool so
       its own stats/trace plumbing applies unchanged *)
    degrade
      (Printf.sprintf "no worker connected within the %.1fs grace window"
         cfg.fb_grace);
    Pool.run ?jobs:cfg.fb_fallback_jobs ?cache ?tracer job_list
  end
  else begin
    (* main loop *)
    let last_alive = ref (Unix.gettimeofday ()) in
    while !remaining > 0 do
      dispatch ();
      if !remaining > 0 then begin
        let tnow = Unix.gettimeofday () in
        if ready_workers () <> [] then last_alive := tnow
        else if tnow -. !last_alive > cfg.fb_grace then begin
          (* every worker died mid-batch and nobody reconnected: finish
             the remaining jobs locally rather than hang *)
          degrade "every worker died mid-sweep";
          for i = 0 to n - 1 do
            if state.(i) <> Done then exec_local i
          done
        end;
        if !remaining > 0 then begin
          let timeout =
            let cap = ref 0.25 in
            List.iter
              (fun w ->
                match w.w_job with
                | Some _ when w.w_alive ->
                    cap := Float.min !cap (w.w_deadline -. tnow)
                | _ -> ())
              t.t_workers;
            for i = 0 to n - 1 do
              if state.(i) = Pending then
                cap := Float.min !cap (ready_at.(i) -. tnow)
            done;
            Float.max 0.01 !cap
          in
          poll t ~timeout ~on_msg ~on_death;
          List.iter
            (fun w -> if w.w_alive then Frame.tick w.w_conn)
            t.t_workers;
          expire_leases ()
        end
      end
    done;
    let elapsed = now_rel () in
    let nw = max 1 (List.length t.t_workers) in
    let busy = Array.make nw 0.0 in
    let ran = Array.make nw 0 in
    let ordered =
      Array.to_list events |> List.filter_map Fun.id
      |> List.sort (fun a b ->
             match compare a.Pool.pe_t0 b.Pool.pe_t0 with
             | 0 -> compare a.Pool.pe_index b.Pool.pe_index
             | c -> c)
    in
    List.iter
      (fun e ->
        let w = e.Pool.pe_worker in
        if w >= 0 && w < nw then begin
          busy.(w) <- busy.(w) +. (e.Pool.pe_t1 -. e.Pool.pe_t0);
          ran.(w) <- ran.(w) + 1
        end)
      ordered;
    let hits =
      List.length
        (List.filter (fun e -> e.Pool.pe_outcome = Pool.Hit) ordered)
    in
    let errors =
      List.length
        (List.filter
           (fun e ->
             match e.Pool.pe_outcome with Pool.Failed _ -> true | _ -> false)
           ordered)
    in
    (match tracer with
    | None -> ()
    | Some tr ->
        Trace.prepare tr ~nranks:nw;
        List.iter
          (fun e ->
            let what =
              match e.Pool.pe_outcome with
              | Pool.Ran -> "run"
              | Pool.Hit -> "hit"
              | Pool.Failed _ -> "error"
            in
            Trace.record tr ~rank:e.Pool.pe_worker ~t0:e.Pool.pe_t0
              ~t1:e.Pool.pe_t1
              (Trace.Sched { what; job = e.Pool.pe_label }))
          ordered;
        List.iter
          (fun (w, tm, what, label) ->
            let rank = if w >= 0 && w < nw then w else 0 in
            Trace.record tr ~rank ~t0:tm ~t1:tm
              (Trace.Sched { what; job = label }))
          (List.rev !lifecycle));
    ( results,
      {
        Pool.ps_jobs = n;
        ps_hits = hits;
        ps_misses = n - hits;
        ps_errors = errors;
        ps_corrupt =
          (match cache with
          | Some c -> Cache.corruption_misses c - corrupt0
          | None -> 0);
        ps_elapsed = elapsed;
        ps_busy = busy;
        ps_ran = ran;
        ps_events = ordered;
      } )
  end

(* ------------------------------------------------------------------ *)
(* statistics                                                         *)

type worker_stats = {
  ws_id : string;
  ws_pid : int option;
  ws_alive : bool;
  ws_leases : int;
  ws_done : int;
  ws_retransmits : int;
  ws_dup_suppressed : int;
  ws_corrupt : int;
}

type stats = {
  fs_workers : worker_stats list;
  fs_requeues : int;
  fs_retries : int;
  fs_lease_expiries : int;
  fs_worker_deaths : int;
  fs_quarantined : int;
  fs_stale_results : int;
  fs_corrupt_frames : int;
  fs_retransmits : int;
  fs_dup_suppressed : int;
  fs_degraded : bool;
}

let stats t =
  let workers =
    List.map
      (fun w ->
        let cs = Frame.stats w.w_conn in
        {
          ws_id = w.w_id;
          ws_pid = w.w_pid;
          ws_alive = w.w_alive;
          ws_leases = w.w_leases;
          ws_done = w.w_done;
          ws_retransmits = cs.Frame.cs_retransmits;
          ws_dup_suppressed = cs.Frame.cs_dup_suppressed;
          ws_corrupt = cs.Frame.cs_corrupt;
        })
      t.t_workers
  in
  let sum f = List.fold_left (fun acc w -> acc + f w) 0 workers in
  {
    fs_workers = workers;
    fs_requeues = t.t_requeues;
    fs_retries = t.t_retries;
    fs_lease_expiries = t.t_expiries;
    fs_worker_deaths = t.t_deaths;
    fs_quarantined = t.t_quarantined;
    fs_stale_results = t.t_stale;
    fs_corrupt_frames = sum (fun w -> w.ws_corrupt);
    fs_retransmits = sum (fun w -> w.ws_retransmits);
    fs_dup_suppressed = sum (fun w -> w.ws_dup_suppressed);
    fs_degraded = t.t_degraded;
  }

let observe_registry reg st =
  let inc name v =
    Registry.inc reg ~help:"sweep fabric robustness counter" name
      (float_of_int v)
  in
  inc "autocfd_fabric_retries_total" st.fs_retries;
  inc "autocfd_fabric_requeues_total" st.fs_requeues;
  inc "autocfd_fabric_lease_expiries_total" st.fs_lease_expiries;
  inc "autocfd_fabric_frames_corrupt_total" st.fs_corrupt_frames;
  inc "autocfd_fabric_worker_deaths_total" st.fs_worker_deaths;
  inc "autocfd_fabric_quarantined_total" st.fs_quarantined

let shutdown t =
  if not t.t_shutdown then begin
    t.t_shutdown <- true;
    List.iter
      (fun w ->
        if w.w_alive then begin
          (try Frame.send w.w_conn (msg_to_string Shutdown)
           with Frame.Closed | Unix.Unix_error _ -> ());
          w.w_alive <- false
        end;
        Frame.close w.w_conn)
      t.t_workers;
    (try Unix.close t.t_listen with Unix.Unix_error _ -> ());
    (match t.t_addr with
    | Unix_path p -> ( try Sys.remove p with Sys_error _ -> ())
    | Tcp _ -> ());
    let deadline = Unix.gettimeofday () +. 2.0 in
    List.iter
      (fun pid ->
        let rec reap () =
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ ->
              if Unix.gettimeofday () < deadline then begin
                ignore (Unix.select [] [] [] 0.02);
                reap ()
              end
              else begin
                (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
                try ignore (Unix.waitpid [] pid)
                with Unix.Unix_error _ -> ()
              end
          | _ -> ()
          | exception Unix.Unix_error (ECHILD, _, _) -> ()
        in
        reap ())
      t.t_spawned
  end

(* ------------------------------------------------------------------ *)
(* worker                                                             *)

let serve ~connect ?id ?(heartbeat = 1.0) ?chaos ~resolve () =
  ignore_sigpipe ();
  let connected =
    let fd = Unix.socket (socket_domain connect) Unix.SOCK_STREAM 0 in
    match Unix.connect fd (sockaddr_of connect) with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error
          (Printf.sprintf "cannot reach fabric master at %s: %s"
             (addr_to_string connect) (Unix.error_message e))
    | exception Fabric_error msg ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error msg
  in
  match connected with
  | Error _ as e -> e
  | Ok fd ->
      let conn = Frame.conn ?chaos fd in
      let wid =
        match id with
        | Some s -> s
        | None -> Printf.sprintf "worker-%d" (Unix.getpid ())
      in
      (try
         Frame.send conn
           (msg_to_string (Hello { mh_worker = wid; mh_pid = Unix.getpid () }))
       with Frame.Closed -> ());
      (* the heartbeat thread keeps the master's lease on the job the
         main loop is currently resolving alive *)
      let current = Atomic.make (-1) in
      let stop = Atomic.make false in
      let hb =
        Thread.create
          (fun () ->
            while not (Atomic.get stop) do
              Thread.delay (Float.max 0.01 (heartbeat /. 2.0));
              let id = Atomic.get current in
              if id >= 0 && not (Atomic.get stop) then
                try Frame.send conn (msg_to_string (Heartbeat { mb_id = id }))
                with Frame.Closed | Unix.Unix_error _ -> Atomic.set stop true
            done)
          ()
      in
      let finish r =
        Atomic.set stop true;
        (try Thread.join hb with _ -> ());
        Frame.close conn;
        r
      in
      let handle payload =
        match msg_of_string payload with
        | Ok (Assign { ma_id; ma_spec; _ }) ->
            Atomic.set current ma_id;
            let reply =
              try Result { mr_id = ma_id; mr_result = resolve ma_spec }
              with e ->
                Failure { mf_id = ma_id; mf_error = Printexc.to_string e }
            in
            Atomic.set current (-1);
            (try Frame.send conn (msg_to_string reply)
             with Frame.Closed -> ());
            false
        | Ok Shutdown -> true
        | Ok _ | Error _ -> false
      in
      let rec loop () =
        match Unix.select [ fd ] [] [] 0.25 with
        | exception Unix.Unix_error (EINTR, _, _) -> loop ()
        | [], _, _ ->
            Frame.tick conn;
            loop ()
        | _ -> (
            match Frame.pump conn with
            | exception Frame.Closed -> Ok ()  (* master went away *)
            | payloads ->
                if List.exists handle payloads then Ok ()
                else begin
                  Frame.tick conn;
                  loop ()
                end)
      in
      finish (try loop () with Frame.Closed -> Ok ())
