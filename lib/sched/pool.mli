(** Deterministic multicore job pool for experiment sweeps.

    Jobs are pulled from a shared work queue (guarded by a mutex and
    condition variable) by [jobs] OCaml 5 worker domains and their
    results merged back {e in submission order}, so any downstream
    rendering of the merged results is bit-identical to a serial run —
    parallelism changes wall-clock, never output.  With a {!Cache}
    attached, each job first probes the cache and only runs on a miss
    (storing the result on completion); a fully warm sweep touches no
    simulation at all.

    A job that raises does not wedge the pool: its slot reports the error
    while every other job still completes.  Errors are returned as
    strings (the exception's printable form) so callers can attribute the
    failure to the original row.  An exception in the pool machinery
    itself (e.g. the cache store failing) is different: every domain is
    still joined, then the first such failure is re-raised {e with its
    original backtrace} ([Printexc.raise_with_backtrace]) — a trace that
    [Domain.join] alone would lose. *)

type outcome =
  | Ran  (** executed (and stored, when a cache is attached) *)
  | Hit  (** served from the cache; the thunk never ran *)
  | Failed of string  (** the thunk raised *)

type event = {
  pe_worker : int;  (** worker domain index, [0 .. jobs-1] *)
  pe_index : int;  (** job's submission index *)
  pe_label : string;
  pe_t0 : float;  (** wall-clock seconds since the pool started *)
  pe_t1 : float;
  pe_outcome : outcome;
}

type stats = {
  ps_jobs : int;  (** jobs submitted *)
  ps_hits : int;
  ps_misses : int;  (** jobs actually executed (including failures) *)
  ps_errors : int;
  ps_corrupt : int;
      (** cache probes during this batch that found an unusable entry
          (see {!Cache.corruption_misses}); 0 without a cache *)
  ps_elapsed : float;  (** wall-clock seconds for the whole batch *)
  ps_busy : float array;  (** per-worker seconds spent handling jobs *)
  ps_ran : int array;  (** per-worker jobs handled *)
  ps_events : event list;  (** in wall-clock order *)
}

val utilization : stats -> int -> float
(** [utilization stats w] = busy seconds of worker [w] / batch elapsed,
    in [0, 1] (0 when the batch took no measurable time). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the default worker count. *)

val run :
  ?jobs:int ->
  ?cache:Cache.t ->
  ?tracer:Autocfd_obs.Trace.t ->
  Job.t list ->
  (Autocfd_obs.Json.t, string) result array * stats
(** Execute the jobs and return their results in submission order.

    [jobs] defaults to {!default_jobs}; [jobs <= 1] runs everything on
    the calling domain (no domain is spawned).  With [tracer] set, one
    {!Autocfd_obs.Trace.Sched} event per job (run / hit / error) is
    recorded after the batch completes, on the worker's "rank" with
    wall-clock timestamps. *)
