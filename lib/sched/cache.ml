module J = Autocfd_obs.Json

type t = { c_dir : string; c_corrupt : int Atomic.t; c_stale : int }

(* temp files left behind by a writer that was killed between
   [open_temp_file] and [rename]: anything matching [*.tmp] older than
   [stale_age] seconds cannot belong to a live writer and is removed *)
let sweep_stale ~stale_age dir =
  let now = Unix.gettimeofday () in
  Array.fold_left
    (fun cleaned name ->
      if not (Filename.check_suffix name ".tmp") then cleaned
      else
        let path = Filename.concat dir name in
        match Unix.stat path with
        | exception Unix.Unix_error _ -> cleaned
        | st when st.Unix.st_kind = Unix.S_REG
                  && now -. st.Unix.st_mtime >= stale_age -> (
            try
              Sys.remove path;
              cleaned + 1
            with Sys_error _ -> cleaned)
        | _ -> cleaned)
    0
    (try Sys.readdir dir with Sys_error _ -> [||])

let create ?(dir = "_autocfd_cache") ?(stale_age = 600.0) () =
  (if not (Sys.file_exists dir) then
     try Sys.mkdir dir 0o755
     with Sys_error _ when Sys.file_exists dir && Sys.is_directory dir ->
       (* a racing domain or process created it first *)
       ());
  if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"));
  (try Unix.access dir [ Unix.W_OK; Unix.X_OK ]
   with Unix.Unix_error (e, _, _) ->
     raise (Sys_error (dir ^ ": " ^ Unix.error_message e)));
  { c_dir = dir; c_corrupt = Atomic.make 0; c_stale = sweep_stale ~stale_age dir }

let dir t = t.c_dir
let corruption_misses t = Atomic.get t.c_corrupt
let stale_cleaned t = t.c_stale

let path_of t job = Filename.concat t.c_dir (Job.cache_name job ^ ".json")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lookup t job =
  let path = path_of t job in
  if not (Sys.file_exists path) then None
  else
    let miss () =
      Atomic.incr t.c_corrupt;
      None
    in
    match J.of_string (read_file path) with
    | exception (Sys_error _ | J.Parse_error _) -> miss ()
    | doc -> (
        match (J.member "key" doc, J.member "result" doc) with
        | Some stored, Some result
          when J.canonical stored = J.canonical job.Job.jb_key ->
            Some result
        | _ -> miss ())

let write_atomic ~path text =
  let dir = Filename.dirname path in
  let tmp, oc =
    Filename.open_temp_file ~temp_dir:dir ~mode:[ Open_binary ]
      (Filename.basename path) ".tmp"
  in
  (try
     output_string oc text;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let store t job result =
  let doc = J.Obj [ ("key", job.Job.jb_key); ("result", result) ] in
  write_atomic ~path:(path_of t job) (J.pretty doc)

let clear t =
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".json" then
        try Sys.remove (Filename.concat t.c_dir name) with Sys_error _ -> ())
    (try Sys.readdir t.c_dir with Sys_error _ -> [||])
