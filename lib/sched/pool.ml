module J = Autocfd_obs.Json
module Trace = Autocfd_obs.Trace

type outcome = Ran | Hit | Failed of string

type event = {
  pe_worker : int;
  pe_index : int;
  pe_label : string;
  pe_t0 : float;
  pe_t1 : float;
  pe_outcome : outcome;
}

type stats = {
  ps_jobs : int;
  ps_hits : int;
  ps_misses : int;
  ps_errors : int;
  ps_corrupt : int;
  ps_elapsed : float;
  ps_busy : float array;
  ps_ran : int array;
  ps_events : event list;
}

let utilization stats w =
  if stats.ps_elapsed <= 0.0 || w < 0 || w >= Array.length stats.ps_busy then
    0.0
  else Float.min 1.0 (stats.ps_busy.(w) /. stats.ps_elapsed)

let default_jobs () = Domain.recommended_domain_count ()

(* the work queue: submission indices, handed out under [lock].  With a
   fixed job list the condition variable never blocks a worker for long,
   but it keeps the queue correct if a future revision feeds the pool
   incrementally. *)
type queue = {
  lock : Mutex.t;
  nonempty : Condition.t;
  pending : int Queue.t;
  mutable closed : bool;
}

let take q =
  Mutex.protect q.lock (fun () ->
      let rec wait () =
        if not (Queue.is_empty q.pending) then Some (Queue.pop q.pending)
        else if q.closed then None
        else begin
          Condition.wait q.nonempty q.lock;
          wait ()
        end
      in
      wait ())

let run ?jobs ?cache ?tracer job_list =
  let njobs =
    match jobs with Some n -> max 1 n | None -> default_jobs ()
  in
  let arr = Array.of_list job_list in
  let n = Array.length arr in
  let nworkers = max 1 (min njobs (max 1 n)) in
  let results = Array.make n (Error "job not run") in
  let events = Array.make n None in
  let busy = Array.make nworkers 0.0 in
  let ran = Array.make nworkers 0 in
  let merge_lock = Mutex.create () in
  let corrupt0 =
    match cache with Some c -> Cache.corruption_misses c | None -> 0
  in
  let t_start = Unix.gettimeofday () in
  let now () = Unix.gettimeofday () -. t_start in
  let exec w i =
    let job = arr.(i) in
    let t0 = now () in
    let outcome, res =
      match
        match cache with Some c -> Cache.lookup c job | None -> None
      with
      | Some v -> (Hit, Ok v)
      | None -> (
          match job.Job.jb_run () with
          | v ->
              (match cache with Some c -> Cache.store c job v | None -> ());
              (Ran, Ok v)
          | exception e ->
              let msg = Printexc.to_string e in
              (Failed msg, Error msg))
    in
    let t1 = now () in
    Mutex.protect merge_lock (fun () ->
        results.(i) <- res;
        events.(i) <-
          Some
            {
              pe_worker = w;
              pe_index = i;
              pe_label = job.Job.jb_label;
              pe_t0 = t0;
              pe_t1 = t1;
              pe_outcome = outcome;
            };
        busy.(w) <- busy.(w) +. (t1 -. t0);
        ran.(w) <- ran.(w) + 1)
  in
  let q =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      pending = Queue.create ();
      closed = false;
    }
  in
  Mutex.protect q.lock (fun () ->
      for i = 0 to n - 1 do
        Queue.push i q.pending
      done;
      q.closed <- true;
      Condition.broadcast q.nonempty);
  let worker w () =
    let rec loop () =
      match take q with
      | Some i ->
          exec w i;
          loop ()
      | None -> ()
    in
    loop ()
  in
  (* exceptions from job thunks are captured per-slot in [exec]; anything
     escaping a worker here is pool machinery failing (e.g. the cache
     store raising).  Capture the first such failure with its backtrace,
     let every domain finish, then re-raise it at the original trace —
     [Domain.join] alone would lose the backtrace of a spawned domain. *)
  let failure = ref None in
  let failure_lock = Mutex.create () in
  let guarded w () =
    try worker w ()
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      Mutex.protect failure_lock (fun () ->
          if !failure = None then failure := Some (e, bt))
  in
  if nworkers = 1 then guarded 0 ()
  else begin
    let domains =
      Array.init (nworkers - 1) (fun k -> Domain.spawn (guarded (k + 1)))
    in
    guarded 0 ();
    Array.iter Domain.join domains
  end;
  (match !failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  let elapsed = now () in
  let ordered =
    Array.to_list events |> List.filter_map Fun.id
    |> List.sort (fun a b ->
           match compare a.pe_t0 b.pe_t0 with
           | 0 -> compare a.pe_index b.pe_index
           | c -> c)
  in
  let hits =
    List.length (List.filter (fun e -> e.pe_outcome = Hit) ordered)
  in
  let errors =
    List.length
      (List.filter
         (fun e -> match e.pe_outcome with Failed _ -> true | _ -> false)
         ordered)
  in
  (* record scheduler events from the calling domain only, after the
     join: Trace is not thread-safe and sweep events do not need to be *)
  (match tracer with
  | None -> ()
  | Some tr ->
      Trace.prepare tr ~nranks:nworkers;
      List.iter
        (fun e ->
          let what =
            match e.pe_outcome with
            | Ran -> "run"
            | Hit -> "hit"
            | Failed _ -> "error"
          in
          Trace.record tr ~rank:e.pe_worker ~t0:e.pe_t0 ~t1:e.pe_t1
            (Trace.Sched { what; job = e.pe_label }))
        ordered);
  ( results,
    {
      ps_jobs = n;
      ps_hits = hits;
      ps_misses = n - hits;
      ps_errors = errors;
      ps_corrupt =
        (match cache with
        | Some c -> Cache.corruption_misses c - corrupt0
        | None -> 0);
      ps_elapsed = elapsed;
      ps_busy = busy;
      ps_ran = ran;
      ps_events = ordered;
    } )
