(** The Auto-CFD pre-compiler driver (paper Fig. 2): sequential Fortran CFD
    source in, analyzed/optimized SPMD message-passing program out, plus
    execution of both versions on the simulated cluster for validation.

    {v
    source --parse--> program --inline--> unit
        --partition--> topology
        --analyze-after-partitioning--> S_LDP
        --optimize-syncs--> combined points
        --restructure--> SPMD unit --> simulated ranks
    v} *)

open Autocfd_fortran
module A = Autocfd_analysis
module S = Autocfd_syncopt
module P = Autocfd_partition

type t = {
  program : Ast.program;
  inlined : Ast.program_unit;
  gi : A.Grid_info.t;
  splits : A.Fission.split list;
      (** nests the loop-fission pass distributed, in body order *)
}

val load : ?spec:Runspec.t -> string -> t
(** Parse, inline and (unless [spec.fission] is false) loop-fission a
    complete source text.  Fission splits mixed DO nests into independent
    sub-nests before any analysis or engine sees the unit, so every
    execution tier runs the same fissioned program.  Only [spec.fission]
    applies here; the other fields matter to {!plan} and {!run}.
    @raise Loc.Error / Failure on malformed input. *)

(** Everything the pre-compiler derives for one partition choice. *)
type plan = {
  source : t;
  topo : P.Topology.t;
  summaries : A.Field_loop.summary list;
  sldp : A.Sldp.t;
  layout : S.Layout.t;
  opt : S.Optimizer.result;
  strategies : (int * A.Mirror.strategy) list;
  spmd : Ast.program_unit;  (** the executable parallel unit *)
}

val plan : ?spec:Runspec.t -> t -> plan
(** Run the full analysis and restructuring for the partition choice the
    spec names: [spec.parts] when set, else {!auto_parts} for
    [spec.nprocs]; synchronization points are combined with
    [spec.combine].  The default spec therefore plans the automatic
    4-rank partition with optimal combining.
    @raise Invalid_argument for an infeasible partition. *)

val auto_parts : t -> nprocs:int -> int array
(** The partition shape the pre-compiler picks automatically (minimal
    communication, §4.1). *)

val auto_parts_by_model :
  ?machine:Autocfd_perfmodel.Model.machine -> t -> nprocs:int -> int array
(** A stronger advisor than §4.1's volume heuristic: runs the full
    analysis and the cluster performance model on every feasible
    factorization of [nprocs] and returns the shape with the smallest
    predicted wall-clock — this accounts for mirror-image pipeline
    serialization and replicated (Serial) loops, which pure communication
    volume cannot see. *)

val spmd_source : plan -> string
(** Pretty-printed parallel program with [call acfd_*] communication. *)

val mpi_source : plan -> string
(** Complete Fortran 77 + MPI rendering of the parallel program: block
    bounds computed by an emitted [acfdini] subroutine, one specialized
    pack/send/recv/unpack subroutine per combined synchronization point,
    [mpi_allreduce]/[mpi_bcast] for reductions and input, rank-0 guarded
    output.  The emitted text re-parses with {!Autocfd_fortran.Parser}. *)

type seq_result = {
  sq_output : string list;
  sq_arrays : (string * Autocfd_interp.Value.arr) list;
  sq_flops : float;
}

val run_seq : ?spec:Runspec.t -> t -> seq_result
(** Executes the inlined sequential unit.  Only [spec.engine] (evaluator;
    results are bit-identical across engines), [spec.fuse] and
    [spec.input] (READ data) apply; the cluster-side fields are
    ignored. *)

val run : ?spec:Runspec.t -> plan -> Autocfd_interp.Spmd.result
(** Executes the SPMD unit on the simulated cluster under one
    {!Runspec.t} (default {!Runspec.default}: fused engine, fast network,
    zero flop cost, nothing optional).  With [spec.machine] set, the
    machine's network and the plan-calibrated per-flop charge override
    [spec.net]/[spec.flop_time] — add a tracer to get what the old
    [run_traced] produced.  [spec.faults] installs a deterministic fault
    schedule (messages then travel over the reliable transport);
    [spec.recovery] additionally enables coordinated checkpoint/restart —
    see {!Autocfd_interp.Spmd.run}. *)

val calibrated_flop_time :
  ?machine:Autocfd_perfmodel.Model.machine -> plan -> float
(** Seconds per floating-point operation on the reference machine, with
    the memory-pressure slowdown for the plan's per-rank working set
    applied (the calibration the model-validation experiments use; this
    is what [Runspec.machine] applies automatically). *)

val max_divergence :
  seq_result -> Autocfd_interp.Spmd.result -> (string * float) list
(** Per status array, the largest |sequential - parallel| over all points;
    the headline correctness check. *)
