module A = Autocfd_analysis
module S = Autocfd_syncopt
module P = Autocfd_partition
module M = Autocfd_perfmodel.Model
module I = Autocfd_interp
module J = Autocfd_obs.Json

(* ------------------------------------------------------------------ *)
(* Grids                                                               *)
(* ------------------------------------------------------------------ *)

type grid = Narrow | Default | Wide

let grid_to_string = function
  | Narrow -> "narrow"
  | Default -> "default"
  | Wide -> "wide"

let grid_of_string = function
  | "narrow" -> Ok Narrow
  | "default" -> Ok Default
  | "wide" -> Ok Wide
  | s -> Error (Printf.sprintf "unknown tune grid %S (narrow|default|wide)" s)

(* one value list per orthogonal axis; engine and fuse are enumerated as
   pairs because [fuse] only distinguishes fused-capable engines
   (Fused+no-fuse is the Compiled IR; Domains always runs fused) *)
type axes = {
  ax_nprocs : int list;
  ax_combine : S.Optimizer.combine_strategy list;
  ax_fission : bool list;
  ax_exec : (I.Spmd.engine * bool) list;  (* (engine, fuse) *)
}

let axes = function
  | Narrow ->
      {
        ax_nprocs = [ 4 ];
        ax_combine = [ S.Optimizer.Optimal ];
        ax_fission = [ true ];
        ax_exec = [ (I.Spmd.Fused, true) ];
      }
  | Default ->
      {
        ax_nprocs = [ 2; 3; 4; 6 ];
        ax_combine = [ S.Optimizer.Optimal; S.Optimizer.First_fit ];
        ax_fission = [ true ];
        ax_exec = [ (I.Spmd.Fused, true) ];
      }
  | Wide ->
      {
        ax_nprocs = [ 2; 3; 4; 5; 6; 8 ];
        ax_combine = [ S.Optimizer.Optimal; S.Optimizer.First_fit ];
        ax_fission = [ true; false ];
        ax_exec =
          [
            (I.Spmd.Fused, true); (I.Spmd.Fused, false);
            (I.Spmd.Domains, true);
          ];
      }

let feasible_shapes t nprocs =
  let grid = t.Driver.gi.A.Grid_info.grid in
  P.Topology.factorizations nprocs (Array.length grid)
  |> List.filter (fun parts ->
         match P.Topology.create ~grid ~parts with
         | _ -> true
         | exception Invalid_argument _ -> false)

let points ?(base = Runspec.default) grid t =
  let ax = axes grid in
  List.concat_map
    (fun nprocs ->
      List.concat_map
        (fun parts ->
          List.concat_map
            (fun combine ->
              List.concat_map
                (fun fission ->
                  List.map
                    (fun (engine, fuse) ->
                      Runspec.(
                        base |> with_nprocs nprocs |> with_parts (Some parts)
                        |> with_combine combine |> with_fission fission
                        |> with_engine engine |> with_fuse fuse))
                    ax.ax_exec)
                ax.ax_fission)
            ax.ax_combine)
        (feasible_shapes t nprocs))
    ax.ax_nprocs

(* ------------------------------------------------------------------ *)
(* Point evaluation                                                    *)
(* ------------------------------------------------------------------ *)

type metrics = {
  tm_time : float;
  tm_comm : float;
  tm_mem : float;
  tm_wall : float option;
}

type entry = {
  te_spec : Runspec.t;
  te_parts : int array;
  te_metrics : metrics;
}

let measure_wall spec source =
  match Driver.load ~spec source with
  | exception _ -> None
  | t -> (
      match Driver.plan ~spec t with
      | exception Invalid_argument _ -> None
      | plan -> (
          match (Driver.run ~spec plan).I.Spmd.domains with
          | Some ds -> Some ds.I.Spmd.ds_wall
          | None -> None))

let eval ?measure_source ~machine ~source (spec : Runspec.t) =
  let t = Driver.load ~spec source in
  let plan = Driver.plan ~spec t in
  let gi = t.Driver.gi and topo = plan.Driver.topo in
  let census = M.census ~gi ~topo plan.Driver.spmd in
  let pred = M.predict_parallel machine ~gi ~topo plan.Driver.spmd in
  let wall =
    (* real wall clock only exists for the Domains engine, and only on
       an instance small enough to actually execute *)
    match (spec.Runspec.engine, measure_source) with
    | I.Spmd.Domains, Some msrc -> measure_wall spec msrc
    | _ -> None
  in
  {
    te_spec = spec;
    te_parts = P.Topology.parts topo;
    te_metrics =
      {
        tm_time = pred.M.time;
        tm_comm = census.M.exchange_bytes +. census.M.pipe_bytes;
        tm_mem = pred.M.working_set;
        tm_wall = wall;
      };
  }

(* ------------------------------------------------------------------ *)
(* JSON codec (tune job results travel through the sweep cache)        *)
(* ------------------------------------------------------------------ *)

let entry_to_json e =
  J.Obj
    [
      ("spec", Runspec.to_json e.te_spec);
      ("parts", J.Str (Runspec.parts_to_string e.te_parts));
      ("time", J.Float e.te_metrics.tm_time);
      ("comm", J.Float e.te_metrics.tm_comm);
      ("mem", J.Float e.te_metrics.tm_mem);
      ( "wall",
        match e.te_metrics.tm_wall with
        | Some w -> J.Float w
        | None -> J.Null );
    ]

let fail msg = raise (J.Parse_error ("Tune.entry_of_json: " ^ msg))

let jget name j =
  match J.member name j with
  | Some v -> v
  | None -> fail (Printf.sprintf "missing field %S" name)

let entry_of_json j =
  {
    te_spec = Runspec.of_json (jget "spec" j);
    te_parts =
      (match jget "parts" j with
      | J.Str s -> Runspec.parts_of_string s
      | _ -> fail "field \"parts\": expected a shape string");
    te_metrics =
      {
        tm_time = J.to_float_exn (jget "time" j);
        tm_comm = J.to_float_exn (jget "comm" j);
        tm_mem = J.to_float_exn (jget "mem" j);
        tm_wall =
          (match jget "wall" j with
          | J.Null -> None
          | v -> Some (J.to_float_exn v));
      };
  }

(* ------------------------------------------------------------------ *)
(* Pareto pruning                                                      *)
(* ------------------------------------------------------------------ *)

(* [wall] is informational (only some points have it measured), so
   dominance is judged on the three deterministic axes *)
let dominates a b =
  a.tm_time <= b.tm_time && a.tm_comm <= b.tm_comm && a.tm_mem <= b.tm_mem
  && (a.tm_time < b.tm_time || a.tm_comm < b.tm_comm || a.tm_mem < b.tm_mem)

let spec_key e = J.canonical (Runspec.to_json e.te_spec)

let triple m = (m.tm_time, m.tm_comm, m.tm_mem)

(* exact metric ties resolve toward the paper's default knobs (optimal
   combining, fission and fusion on) before the canonical spec JSON, so
   a tied winner reads as the least surprising configuration *)
let tiebreak e =
  let s = e.te_spec in
  ( s.Runspec.combine <> S.Optimizer.Optimal,
    not s.Runspec.fission,
    not s.Runspec.fuse,
    spec_key e )

let compare_entry a b =
  compare
    (triple a.te_metrics, tiebreak a)
    (triple b.te_metrics, tiebreak b)

let frontier entries =
  let undominated =
    List.filter
      (fun e ->
        not
          (List.exists
             (fun o -> dominates o.te_metrics e.te_metrics)
             entries))
      entries
  in
  (* exact metric ties (e.g. engine variants of the same plan) collapse
     to one representative, preferring one with a measured wall clock *)
  let sorted = List.sort compare_entry undominated in
  let rec collapse = function
    | [] -> []
    | e :: rest ->
        let ties, rest =
          List.partition
            (fun o -> triple o.te_metrics = triple e.te_metrics)
            rest
        in
        let rep =
          match
            List.find_opt
              (fun o -> o.te_metrics.tm_wall <> None)
              (e :: ties)
          with
          | Some w -> w
          | None -> e
        in
        rep :: collapse rest
  in
  collapse sorted

let winner entries =
  match List.sort compare_entry entries with
  | [] -> invalid_arg "Tune.winner: no points"
  | e :: _ -> e

(* ------------------------------------------------------------------ *)
(* Results                                                             *)
(* ------------------------------------------------------------------ *)

type result = {
  tr_program : string;
  tr_grid : grid;
  tr_total : int;
  tr_frontier : entry list;
  tr_winner : entry;
}

let make_result ~program ~grid entries =
  {
    tr_program = program;
    tr_grid = grid;
    tr_total = List.length entries;
    tr_frontier = frontier entries;
    tr_winner = winner entries;
  }

let result_to_json r =
  J.Obj
    [
      ("program", J.Str r.tr_program);
      ("grid", J.Str (grid_to_string r.tr_grid));
      ("points", J.Int r.tr_total);
      ("winner", entry_to_json r.tr_winner);
      ("frontier", J.List (List.map entry_to_json r.tr_frontier));
    ]

let result_of_json j =
  let program =
    match jget "program" j with
    | J.Str s -> s
    | _ -> fail "field \"program\": expected a string"
  in
  let grid =
    match jget "grid" j with
    | J.Str s -> (
        match grid_of_string s with
        | Ok g -> g
        | Error msg -> fail msg)
    | _ -> fail "field \"grid\": expected a string"
  in
  let points =
    match jget "points" j with
    | J.Int i -> i
    | _ -> fail "field \"points\": expected an integer"
  in
  let frontier =
    match jget "frontier" j with
    | J.List l -> List.map entry_of_json l
    | _ -> fail "field \"frontier\": expected a list"
  in
  {
    tr_program = program;
    tr_grid = grid;
    tr_total = points;
    tr_frontier = frontier;
    tr_winner = entry_of_json (jget "winner" j);
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let entry_row e =
  let s = e.te_spec in
  let open Autocfd_util.Table in
  [
    cell_int (Array.fold_left ( * ) 1 e.te_parts);
    Runspec.parts_to_string e.te_parts;
    Runspec.combine_to_string s.Runspec.combine;
    (if s.Runspec.fission then "on" else "off");
    Runspec.engine_to_string s.Runspec.engine
    ^ (if s.Runspec.fuse then "" else "-nofuse");
    cell_float ~decimals:1 e.te_metrics.tm_time;
    cell_float ~decimals:0 (e.te_metrics.tm_comm /. 1024.);
    cell_float ~decimals:0 (e.te_metrics.tm_mem /. 1024.);
    (match e.te_metrics.tm_wall with
    | Some w -> cell_float ~decimals:3 w
    | None -> "-");
  ]

let headers =
  [
    "procs"; "partition"; "combine"; "fission"; "engine"; "time (s)";
    "comm (KB)"; "mem/rank (KB)"; "domains wall (s)";
  ]

let render r =
  let open Autocfd_util.Table in
  let t =
    create
      ~title:
        (Printf.sprintf
           "Auto-tune: %s, %s grid (%d points, %d on the Pareto frontier)"
           r.tr_program
           (grid_to_string r.tr_grid)
           r.tr_total
           (List.length r.tr_frontier))
      ~headers
  in
  List.iter (fun e -> add_row t (entry_row e)) r.tr_frontier;
  let w = r.tr_winner in
  render t
  ^ Printf.sprintf "winner: %s over %d ranks (%s, fission %s, %s): %.1f s\n"
      (Runspec.parts_to_string w.te_parts)
      (Array.fold_left ( * ) 1 w.te_parts)
      (Runspec.combine_to_string w.te_spec.Runspec.combine)
      (if w.te_spec.Runspec.fission then "on" else "off")
      (Runspec.engine_to_string w.te_spec.Runspec.engine)
      w.te_metrics.tm_time
