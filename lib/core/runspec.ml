module I = Autocfd_interp
module M = Autocfd_mpsim
module PM = Autocfd_perfmodel.Model
module S = Autocfd_syncopt
module J = Autocfd_obs.Json

type t = {
  engine : I.Spmd.engine;
  net : M.Netmodel.t;
  flop_time : float;
  machine : PM.machine option;
  input : float list;
  tracer : Autocfd_obs.Trace.t option;
  faults : M.Fault.plan option;
  recovery : I.Spmd.recovery option;
  nprocs : int;
  parts : int array option;
  combine : S.Optimizer.combine_strategy;
  fission : bool;
  fuse : bool;
}

let default =
  {
    engine = I.Spmd.Fused;
    net = M.Netmodel.fast;
    flop_time = 0.0;
    machine = None;
    input = [];
    tracer = None;
    faults = None;
    recovery = None;
    nprocs = 4;
    parts = None;
    combine = S.Optimizer.Optimal;
    fission = true;
    fuse = true;
  }

let with_engine engine t = { t with engine }
let with_net net t = { t with net }
let with_flop_time flop_time t = { t with flop_time }
let with_machine machine t = { t with machine }
let with_input input t = { t with input }
let with_tracer tracer t = { t with tracer }
let with_faults faults t = { t with faults }
let with_recovery recovery t = { t with recovery }
let with_nprocs nprocs t = { t with nprocs }
let with_parts parts t = { t with parts }
let with_combine combine t = { t with combine }
let with_fission fission t = { t with fission }
let with_fuse fuse t = { t with fuse }

(* ------------------------------------------------------------------ *)
(* Canonical JSON codec                                                *)
(* ------------------------------------------------------------------ *)

let fail msg = raise (J.Parse_error ("Runspec.of_json: " ^ msg))

let engine_to_string = function
  | I.Spmd.Tree -> "tree"
  | I.Spmd.Compiled -> "compiled"
  | I.Spmd.Fused -> "fused"
  | I.Spmd.Domains -> "domains"

let engine_of_string = function
  | "tree" -> I.Spmd.Tree
  | "compiled" -> I.Spmd.Compiled
  | "fused" -> I.Spmd.Fused
  | "domains" -> I.Spmd.Domains
  | s -> fail (Printf.sprintf "unknown engine %S" s)

let net_to_json (n : M.Netmodel.t) =
  J.Obj
    [
      ("latency", J.Float n.M.Netmodel.latency);
      ("bandwidth", J.Float n.M.Netmodel.bandwidth);
      ("send_overhead", J.Float n.M.Netmodel.send_overhead);
      ("recv_overhead", J.Float n.M.Netmodel.recv_overhead);
    ]

let get name j =
  match J.member name j with
  | Some v -> v
  | None -> fail (Printf.sprintf "missing field %S" name)

let get_float name j = J.to_float_exn (get name j)

let get_int name j =
  match get name j with
  | J.Int i -> i
  | _ -> fail (Printf.sprintf "field %S: expected an integer" name)

let get_string name j =
  match get name j with
  | J.Str s -> s
  | _ -> fail (Printf.sprintf "field %S: expected a string" name)

let net_of_json j =
  {
    M.Netmodel.latency = get_float "latency" j;
    bandwidth = get_float "bandwidth" j;
    send_overhead = get_float "send_overhead" j;
    recv_overhead = get_float "recv_overhead" j;
  }

let machine_to_json (m : PM.machine) =
  J.Obj
    [
      ("flop_rate", J.Float m.PM.flop_rate);
      ("cache_bytes", J.Float m.PM.cache_bytes);
      ("cache_penalty", J.Float m.PM.cache_penalty);
      ("mem_bytes", J.Float m.PM.mem_bytes);
      ("mem_penalty", J.Float m.PM.mem_penalty);
      ("net", net_to_json m.PM.net);
      ("overlap", J.Float m.PM.overlap);
    ]

let machine_of_json j =
  {
    PM.flop_rate = get_float "flop_rate" j;
    cache_bytes = get_float "cache_bytes" j;
    cache_penalty = get_float "cache_penalty" j;
    mem_bytes = get_float "mem_bytes" j;
    mem_penalty = get_float "mem_penalty" j;
    net = net_of_json (get "net" j);
    overlap = get_float "overlap" j;
  }

let trigger_to_json = function
  | M.Fault.At_time t -> J.Obj [ ("at_time", J.Float t) ]
  | M.Fault.At_op n -> J.Obj [ ("at_op", J.Int n) ]

let trigger_of_json j =
  match (J.member "at_time" j, J.member "at_op" j) with
  | Some t, None -> M.Fault.At_time (J.to_float_exn t)
  | None, Some (J.Int n) -> M.Fault.At_op n
  | _ -> fail "trigger: expected {\"at_time\": t} or {\"at_op\": n}"

let faults_to_json plan =
  let s = M.Fault.spec_of plan in
  J.Obj
    [
      ("seed", J.Int s.M.Fault.fs_seed);
      ("loss", J.Float s.M.Fault.fs_loss);
      ("duplication", J.Float s.M.Fault.fs_duplication);
      ("corruption", J.Float s.M.Fault.fs_corruption);
      ("jitter", J.Float s.M.Fault.fs_jitter);
      ("reorder", J.Float s.M.Fault.fs_reorder);
      ( "degrade",
        J.List
          (List.map
             (fun (src, dest, f) ->
               J.Obj
                 [
                   ("src", J.Int src); ("dest", J.Int dest);
                   ("factor", J.Float f);
                 ])
             s.M.Fault.fs_degrade) );
      ( "stalls",
        J.List
          (List.map
             (fun (st : M.Fault.stall_spec) ->
               J.Obj
                 [
                   ("rank", J.Int st.M.Fault.sl_rank);
                   ("at", trigger_to_json st.M.Fault.sl_at);
                   ("duration", J.Float st.M.Fault.sl_duration);
                 ])
             s.M.Fault.fs_stalls) );
      ( "crashes",
        J.List
          (List.map
             (fun (c : M.Fault.crash_spec) ->
               J.Obj
                 [
                   ("rank", J.Int c.M.Fault.cr_rank);
                   ("at", trigger_to_json c.M.Fault.cr_at);
                 ])
             s.M.Fault.fs_crashes) );
    ]

let get_list name j =
  match get name j with
  | J.List l -> l
  | _ -> fail (Printf.sprintf "field %S: expected a list" name)

let faults_of_json j =
  let degrade =
    List.map
      (fun d -> (get_int "src" d, get_int "dest" d, get_float "factor" d))
      (get_list "degrade" j)
  in
  let stalls =
    List.map
      (fun s ->
        {
          M.Fault.sl_rank = get_int "rank" s;
          sl_at = trigger_of_json (get "at" s);
          sl_duration = get_float "duration" s;
        })
      (get_list "stalls" j)
  in
  let crashes =
    List.map
      (fun c ->
        {
          M.Fault.cr_rank = get_int "rank" c;
          cr_at = trigger_of_json (get "at" c);
        })
      (get_list "crashes" j)
  in
  (* absent in documents written before the reorder knob existed *)
  let reorder =
    match J.member "reorder" j with Some v -> J.to_float_exn v | None -> 0.0
  in
  M.Fault.make
    (M.Fault.spec ~seed:(get_int "seed" j) ~loss:(get_float "loss" j)
       ~duplication:(get_float "duplication" j)
       ~corruption:(get_float "corruption" j)
       ~jitter:(get_float "jitter" j) ~reorder ~degrade ~stalls ~crashes ())

let recovery_to_json (r : I.Spmd.recovery) =
  J.Obj
    [
      ("every", J.Int r.I.Spmd.rc_every);
      ("max_restarts", J.Int r.I.Spmd.rc_max_restarts);
      ("bandwidth", J.Float r.I.Spmd.rc_bandwidth);
    ]

let recovery_of_json j =
  {
    I.Spmd.rc_every = get_int "every" j;
    rc_max_restarts = get_int "max_restarts" j;
    rc_bandwidth = get_float "bandwidth" j;
  }

let combine_to_string = function
  | S.Optimizer.Optimal -> "optimal"
  | S.Optimizer.First_fit -> "first-fit"

let combine_of_string = function
  | "optimal" -> S.Optimizer.Optimal
  | "first-fit" -> S.Optimizer.First_fit
  | s -> fail (Printf.sprintf "unknown combine strategy %S" s)

let parts_to_string p =
  String.concat "x" (Array.to_list (Array.map string_of_int p))

let parts_of_string s =
  try Array.of_list (List.map int_of_string (String.split_on_char 'x' s))
  with Failure _ -> fail (Printf.sprintf "bad partition shape %S" s)

let opt f = function Some v -> f v | None -> J.Null

let to_json t =
  J.Obj
    [
      ("engine", J.Str (engine_to_string t.engine));
      ("net", net_to_json t.net);
      ("flop_time", J.Float t.flop_time);
      ("machine", opt machine_to_json t.machine);
      ("input", J.List (List.map (fun f -> J.Float f) t.input));
      ("traced", J.Bool (t.tracer <> None));
      ("faults", opt faults_to_json t.faults);
      ("recovery", opt recovery_to_json t.recovery);
      ("nprocs", J.Int t.nprocs);
      ("parts", opt (fun p -> J.Str (parts_to_string p)) t.parts);
      ("combine", J.Str (combine_to_string t.combine));
      ("fission", J.Bool t.fission);
      ("fuse", J.Bool t.fuse);
    ]

let opt_of name f j =
  match get name j with J.Null -> None | v -> Some (f v)

(* the plan-time fields are absent in documents written before the
   tune-era codec; each decodes to its [default] value so an old spec
   still names the run it always named *)
let get_or name fallback decode j =
  match J.member name j with
  | None | Some J.Null -> fallback
  | Some v -> decode v

let get_bool_or name fallback j =
  get_or name fallback
    (function
      | J.Bool b -> b
      | _ -> fail (Printf.sprintf "field %S: expected a boolean" name))
    j

let of_json j =
  {
    engine = engine_of_string (get_string "engine" j);
    net = net_of_json (get "net" j);
    flop_time = get_float "flop_time" j;
    machine = opt_of "machine" machine_of_json j;
    input = List.map J.to_float_exn (get_list "input" j);
    tracer =
      (match get "traced" j with
      | J.Bool true -> Some (Autocfd_obs.Trace.create ())
      | J.Bool false -> None
      | _ -> fail "field \"traced\": expected a boolean");
    faults = opt_of "faults" faults_of_json j;
    recovery = opt_of "recovery" recovery_of_json j;
    nprocs =
      get_or "nprocs" default.nprocs
        (function
          | J.Int i -> i
          | _ -> fail "field \"nprocs\": expected an integer")
        j;
    parts =
      (match J.member "parts" j with
      | None | Some J.Null -> None
      | Some (J.Str s) -> Some (parts_of_string s)
      | Some _ -> fail "field \"parts\": expected a shape string");
    combine =
      get_or "combine" default.combine
        (function
          | J.Str s -> combine_of_string s
          | _ -> fail "field \"combine\": expected a string")
        j;
    fission = get_bool_or "fission" default.fission j;
    fuse = get_bool_or "fuse" default.fuse j;
  }
