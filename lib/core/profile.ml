(* Kernel-level profiler: run one plan traced, attribute virtual compute
   time to named field-loop nests, and render the hot-nest table,
   per-sync-point latency histograms and pool utilization that the
   [autocfd profile] verb prints. *)

module Obs = Autocfd_obs
module Sched = Autocfd_sched
module I = Autocfd_interp
module J = Obs.Json

type t = {
  pf_label : string;
  pf_trace : Obs.Trace.t;
  pf_metrics : Obs.Metrics.t;
  pf_pool : Sched.Pool.stats;
  pf_flops : float;
}

let run ?(spec = Runspec.default) ?(label = "profile") plan =
  let tracer =
    match spec.Runspec.tracer with
    | Some tr -> tr
    | None -> Obs.Trace.create ()
  in
  let spec = Runspec.with_tracer (Some tracer) spec in
  let flops = ref 0.0 in
  let job =
    Sched.Job.make ~label
      (* the serialized spec is the whole configuration point — run-time
         knobs and the plan-time knobs the plan was built under — so the
         key names exactly what this profile measured *)
      ~key:(J.Obj [ ("profile", J.Str label); ("spec", Runspec.to_json spec) ])
      (fun () ->
        let r = Driver.run ~spec plan in
        flops :=
          Array.fold_left ( +. ) 0.0 r.I.Spmd.flops_per_rank;
        J.Obj [ ("elapsed", J.Float r.I.Spmd.stats.Autocfd_mpsim.Sim.elapsed) ])
  in
  (* one uncached job through the pool, sharing the run's tracer, so the
     scheduler's wall-clock events land in the same trace as the
     simulator's virtual-clock events *)
  let results, stats = Sched.Pool.run ~jobs:1 ~tracer [ job ] in
  (match results.(0) with
  | Ok _ -> ()
  | Error msg -> failwith ("profile: " ^ msg));
  {
    pf_label = label;
    pf_trace = tracer;
    pf_metrics = Obs.Metrics.of_trace tracer;
    pf_pool = stats;
    pf_flops = !flops;
  }

let compute_seconds p =
  Array.fold_left
    (fun acc r -> acc +. r.Obs.Metrics.rr_compute)
    0.0 p.pf_metrics.Obs.Metrics.ranks

let attributed_seconds p =
  List.fold_left
    (fun acc k -> acc +. k.Obs.Metrics.kr_self)
    0.0 p.pf_metrics.Obs.Metrics.kernels

let attributed_flops p =
  List.fold_left
    (fun acc k -> acc +. k.Obs.Metrics.kr_flops)
    0.0 p.pf_metrics.Obs.Metrics.kernels

let coverage p =
  let c = compute_seconds p in
  if c > 0.0 then attributed_seconds p /. c
  else if p.pf_flops > 0.0 then attributed_flops p /. p.pf_flops
  else 1.0

(* per-execution phase durations, grouped by sync id in ascending order *)
let sync_durations p =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (e : Obs.Trace.event) ->
      match e.Obs.Trace.ev_kind with
      | Obs.Trace.Phase _ ->
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt tbl e.Obs.Trace.ev_sync)
          in
          Hashtbl.replace tbl e.Obs.Trace.ev_sync
            ((e.Obs.Trace.ev_t1 -. e.Obs.Trace.ev_t0) :: prev)
      | _ -> ())
    (Obs.Trace.events p.pf_trace);
  Hashtbl.fold (fun sync ds acc -> (sync, List.rev ds) :: acc) tbl []
  |> List.sort compare

let latency_bounds = Obs.Registry.seconds_buckets

(* counts.(i) = observations in (bounds.(i-1), bounds.(i)]; the trailing
   slot is the +Inf overflow — same "le" semantics as {!Obs.Registry} *)
let bucketize ds =
  let n = Array.length latency_bounds in
  let counts = Array.make (n + 1) 0 in
  List.iter
    (fun v ->
      let rec find i =
        if i >= n then n else if v <= latency_bounds.(i) then i else find (i + 1)
      in
      let i = find 0 in
      counts.(i) <- counts.(i) + 1)
    ds;
  counts

let fmt_si v =
  if v = 0.0 then "0"
  else if Float.abs v >= 1e9 then Printf.sprintf "%.2fG" (v /. 1e9)
  else if Float.abs v >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if Float.abs v >= 1e3 then Printf.sprintf "%.2fk" (v /. 1e3)
  else Printf.sprintf "%.3g" v

let fmt_seconds v =
  if v = 0.0 then "0"
  else if v >= 1.0 then Printf.sprintf "%.3fs" v
  else if v >= 1e-3 then Printf.sprintf "%.3fms" (v *. 1e3)
  else Printf.sprintf "%.3gus" (v *. 1e6)

type nest_group = {
  ng_nest : Obs.Metrics.kernel_row;
  ng_frags : Obs.Metrics.kernel_row list;
}

(* "L12 do j,i #2/3" -> "L12 do j,i" *)
let strip_frag name =
  match String.rindex_opt name '#' with
  | Some i when i >= 1 && name.[i - 1] = ' ' -> String.sub name 0 (i - 1)
  | _ -> name

(* Fold the flat kernel table into per-source-nest groups: fragments the
   loop-fission pass split out of one source nest (kr_nfrags > 0, same
   source line) collapse under a synthesized aggregate row so the
   hot-nest table ranks source nests, with the fragments as indented
   children.  The aggregate sums self time / flops / bytes; calls is the
   max over fragments (each fragment executes once per source-nest
   execution, so the max is the source nest's call count even if some
   fragment was skipped). *)
let nest_groups p =
  let split, whole =
    List.partition
      (fun (k : Obs.Metrics.kernel_row) -> k.Obs.Metrics.kr_nfrags > 0)
      p.pf_metrics.Obs.Metrics.kernels
  in
  let by_line = Hashtbl.create 8 in
  List.iter
    (fun (k : Obs.Metrics.kernel_row) ->
      let line = k.Obs.Metrics.kr_line in
      Hashtbl.replace by_line line
        (k :: Option.value ~default:[] (Hashtbl.find_opt by_line line)))
    split;
  let groups =
    Hashtbl.fold
      (fun _ frags acc ->
        let frags =
          List.sort
            (fun (a : Obs.Metrics.kernel_row) b ->
              compare a.Obs.Metrics.kr_frag b.Obs.Metrics.kr_frag)
            frags
        in
        let f0 = List.hd frags in
        let sum get = List.fold_left (fun a k -> a +. get k) 0.0 frags in
        let nest =
          {
            Obs.Metrics.kr_name = strip_frag f0.Obs.Metrics.kr_name;
            kr_line = f0.Obs.Metrics.kr_line;
            kr_fused =
              List.for_all (fun k -> k.Obs.Metrics.kr_fused) frags;
            kr_frag = 0;
            kr_nfrags = f0.Obs.Metrics.kr_nfrags;
            kr_calls =
              List.fold_left
                (fun a k -> max a k.Obs.Metrics.kr_calls)
                0 frags;
            kr_flops = sum (fun k -> k.Obs.Metrics.kr_flops);
            kr_bytes = sum (fun k -> k.Obs.Metrics.kr_bytes);
            kr_self = sum (fun k -> k.Obs.Metrics.kr_self);
          }
        in
        { ng_nest = nest; ng_frags = frags } :: acc)
      by_line []
  in
  let groups =
    groups
    @ List.map (fun k -> { ng_nest = k; ng_frags = [] }) whole
  in
  List.sort
    (fun a b ->
      match compare b.ng_nest.Obs.Metrics.kr_self a.ng_nest.Obs.Metrics.kr_self
      with
      | 0 -> (
          match
            compare b.ng_nest.Obs.Metrics.kr_flops
              a.ng_nest.Obs.Metrics.kr_flops
          with
          | 0 ->
              compare a.ng_nest.Obs.Metrics.kr_line
                b.ng_nest.Obs.Metrics.kr_line
          | c -> c)
      | c -> c)
    groups

let hot_nests ?(top = 10) p =
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take top (nest_groups p)

let render ?(top = 10) p =
  let b = Buffer.create 4096 in
  let m = p.pf_metrics in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let compute = compute_seconds p in
  let nranks = Array.length m.Obs.Metrics.ranks in
  pr "# profile: %s\n\n" p.pf_label;
  pr "ranks %d, simulated elapsed %s; compute %s, messages %d, bytes %d\n\n"
    nranks
    (fmt_seconds m.Obs.Metrics.elapsed)
    (fmt_seconds compute) m.Obs.Metrics.messages m.Obs.Metrics.bytes;
  (* -- hot nests ---------------------------------------------------- *)
  let groups = nest_groups p in
  let shown = hot_nests ~top p in
  pr "## hot nests (top %d of %d by self time)\n\n" (List.length shown)
    (List.length groups);
  pr "| nest | line | fused | calls | self | %% compute | flop/s | B/s |\n";
  pr "|---|---|---|---|---|---|---|---|\n";
  let row name (k : Obs.Metrics.kernel_row) =
    let share =
      if compute > 0.0 then 100.0 *. k.Obs.Metrics.kr_self /. compute
      else 0.0
    in
    let rate den v = if den > 0.0 then fmt_si (v /. den) else "-" in
    pr "| %s | %d | %s | %d | %s | %5.1f%% | %s | %s |\n" name
      k.Obs.Metrics.kr_line
      (if k.Obs.Metrics.kr_fused then "yes" else "no")
      k.Obs.Metrics.kr_calls
      (fmt_seconds k.Obs.Metrics.kr_self)
      share
      (rate k.Obs.Metrics.kr_self k.Obs.Metrics.kr_flops)
      (rate k.Obs.Metrics.kr_self k.Obs.Metrics.kr_bytes)
  in
  List.iter
    (fun g ->
      row g.ng_nest.Obs.Metrics.kr_name g.ng_nest;
      (* fission fragments: indented children of the source nest *)
      List.iter
        (fun (k : Obs.Metrics.kernel_row) ->
          row
            (Printf.sprintf "  ↳ #%d/%d" k.Obs.Metrics.kr_frag
               k.Obs.Metrics.kr_nfrags)
            k)
        g.ng_frags)
    shown;
  pr "\nattributed: %.1f%% of compute time across %d named nests\n\n"
    (100.0 *. coverage p) (List.length groups);
  (* -- per-sync latency --------------------------------------------- *)
  let durs = sync_durations p in
  if durs <> [] then begin
    pr "## sync-point latency\n\n";
    List.iter
      (fun (sync, ds) ->
        let label =
          match
            List.find_opt
              (fun (s : Obs.Metrics.sync_row) -> s.Obs.Metrics.sr_id = sync)
              m.Obs.Metrics.syncs
          with
          | Some s -> s.Obs.Metrics.sr_label
          | None -> Printf.sprintf "sync %d" sync
        in
        let n = List.length ds in
        let total = List.fold_left ( +. ) 0.0 ds in
        let mx = List.fold_left Float.max 0.0 ds in
        pr "sync %d %s — %d executions, mean %s, max %s\n" sync label n
          (fmt_seconds (if n > 0 then total /. float_of_int n else 0.0))
          (fmt_seconds mx);
        let counts = bucketize ds in
        let peak = Array.fold_left max 1 counts in
        Array.iteri
          (fun i c ->
            if c > 0 then begin
              let le =
                if i < Array.length latency_bounds then
                  "<= " ^ fmt_seconds latency_bounds.(i)
                else "   +Inf"
              in
              let bar = String.make (max 1 (c * 24 / peak)) '#' in
              pr "  %-12s %6d  %s\n" le c bar
            end)
          counts;
        pr "\n")
      durs
  end;
  (* -- pool --------------------------------------------------------- *)
  pr "%s" (Report.sched_summary [ (p.pf_label, p.pf_pool) ]);
  Buffer.contents b

let kernel_json compute (k : Obs.Metrics.kernel_row) =
  [
    ("name", J.Str k.Obs.Metrics.kr_name);
    ("line", J.Int k.Obs.Metrics.kr_line);
    ("fused", J.Bool k.Obs.Metrics.kr_fused);
    ("calls", J.Int k.Obs.Metrics.kr_calls);
    ("flops", J.Float k.Obs.Metrics.kr_flops);
    ("bytes", J.Float k.Obs.Metrics.kr_bytes);
    ("self_seconds", J.Float k.Obs.Metrics.kr_self);
    ( "share",
      J.Float
        (if compute > 0.0 then k.Obs.Metrics.kr_self /. compute else 0.0) );
    ( "flops_per_second",
      if k.Obs.Metrics.kr_self > 0.0 then
        J.Float (k.Obs.Metrics.kr_flops /. k.Obs.Metrics.kr_self)
      else J.Null );
  ]

let nest_json compute g =
  J.Obj
    (kernel_json compute g.ng_nest
    @
    match g.ng_frags with
    | [] -> []
    | frags ->
        [
          ( "fragments",
            J.List
              (List.map
                 (fun (k : Obs.Metrics.kernel_row) ->
                   J.Obj
                     (("frag", J.Int k.Obs.Metrics.kr_frag)
                     :: ("nfrags", J.Int k.Obs.Metrics.kr_nfrags)
                     :: kernel_json compute k))
                 frags) );
        ])

let sync_json m (sync, ds) =
  let label =
    match
      List.find_opt
        (fun (s : Obs.Metrics.sync_row) -> s.Obs.Metrics.sr_id = sync)
        m.Obs.Metrics.syncs
    with
    | Some s -> s.Obs.Metrics.sr_label
    | None -> Printf.sprintf "sync %d" sync
  in
  let n = List.length ds in
  let total = List.fold_left ( +. ) 0.0 ds in
  let counts = bucketize ds in
  let buckets =
    List.filter_map Fun.id
      (Array.to_list
         (Array.mapi
            (fun i c ->
              if c = 0 then None
              else
                Some
                  (J.Obj
                     [
                       ( "le",
                         if i < Array.length latency_bounds then
                           J.Float latency_bounds.(i)
                         else J.Null );
                       ("count", J.Int c);
                     ]))
            counts))
  in
  J.Obj
    [
      ("sync", J.Int sync);
      ("label", J.Str label);
      ("executions", J.Int n);
      ("mean", J.Float (if n > 0 then total /. float_of_int n else 0.0));
      ("max", J.Float (List.fold_left Float.max 0.0 ds));
      ("buckets", J.List buckets);
    ]

let to_json ?(top = 10) p =
  let m = p.pf_metrics in
  let compute = compute_seconds p in
  J.Obj
    [
      ("schema", J.Str "autocfd-profile/1");
      ("label", J.Str p.pf_label);
      ("elapsed", J.Float m.Obs.Metrics.elapsed);
      ("compute_seconds", J.Float compute);
      ("attributed_seconds", J.Float (attributed_seconds p));
      ("coverage", J.Float (coverage p));
      ("nests", J.List (List.map (nest_json compute) (hot_nests ~top p)));
      ("sync_latency", J.List (List.map (sync_json m) (sync_durations p)));
      ("sched", Report.sched_summary_json [ (p.pf_label, p.pf_pool) ]);
      ("metrics", Obs.Metrics.to_json m);
    ]

let registry p =
  let reg = Obs.Registry.create () in
  Obs.Registry.observe_trace reg p.pf_trace;
  let s = p.pf_pool in
  let probe outcome v =
    Obs.Registry.inc reg "autocfd_pool_cache_probes_total" (float_of_int v)
      ~labels:[ ("outcome", outcome) ]
      ~help:"sweep-pool cache probes by outcome (hit / miss / corrupt)"
  in
  probe "hit" s.Sched.Pool.ps_hits;
  probe "miss" s.Sched.Pool.ps_misses;
  probe "corrupt" s.Sched.Pool.ps_corrupt;
  List.iter
    (fun (e : Sched.Pool.event) ->
      Obs.Registry.observe reg "autocfd_sched_queue_wait_seconds"
        e.Sched.Pool.pe_t0
        ~help:"wall-clock delay between pool start and job pickup")
    s.Sched.Pool.ps_events;
  Array.iteri
    (fun w _ ->
      Obs.Registry.set reg "autocfd_pool_utilization"
        (Sched.Pool.utilization s w)
        ~labels:[ ("worker", string_of_int w) ]
        ~help:"per-worker busy fraction of the batch elapsed")
    s.Sched.Pool.ps_busy;
  reg

let to_prometheus p = Obs.Registry.to_prometheus (registry p)
