(** Auto-tuning: search the whole configuration space behind one verb.

    ComPar-style auto-tuning for the Auto-CFD pipeline: enumerate the
    product space of every plan- and run-time knob a {!Runspec.t} can
    express — rank count, partition shape (all feasible factorizations),
    sync-combining strategy, loop fission, execution engine and kernel
    fusion — evaluate each point under the calibrated performance model
    ({!Autocfd_perfmodel.Model}), and report the winner plus the Pareto
    frontier over (predicted time, per-rank communication volume,
    per-rank working set).

    Each search point {e is} a runspec: {!points} returns a list of
    [Runspec.t] values, and the serialized spec is simultaneously the
    tune job's cache key and the recipe to reproduce that exact run.
    Evaluation is deterministic (pure model predictions), so tune tables
    are byte-identical across serial, pooled and distributed sweeps; the
    one nondeterministic quantity — real Domains-engine wall clock — is
    measured only on the wide grid and excluded from dominance. *)

(** How wide to open each axis. [Narrow] is a smoke-test single point;
    [Default] covers every hand-picked configuration in the paper's
    Table 2/3 reproductions (so the tuned winner can only match or beat
    them); [Wide] adds odd rank counts, first-fit-only regressions,
    fission/fusion ablations and the real Domains engine. *)
type grid = Narrow | Default | Wide

val grid_to_string : grid -> string
val grid_of_string : string -> (grid, string) result
(** ["narrow"] / ["default"] / ["wide"]. *)

val points : ?base:Runspec.t -> grid -> Driver.t -> Runspec.t list
(** All search points for [grid] on a loaded program: the cartesian
    product of the grid's axes, with the partition axis instantiated to
    every factorization of each rank count that is feasible for the
    program's grid (shapes {!Autocfd_partition.Topology.create} rejects
    are dropped).  [base] (default {!Runspec.default}) seeds the
    non-searched fields — machine, input, faults… — so tuning composes
    with [--spec]. *)

(** One evaluated point.  [tm_wall] is the measured Domains wall clock
    when available, [None] otherwise; it is informational and never
    enters dominance. *)
type metrics = {
  tm_time : float;  (** predicted parallel seconds *)
  tm_comm : float;  (** per-rank exchange + pipeline bytes *)
  tm_mem : float;  (** per-rank working set, bytes *)
  tm_wall : float option;
}

type entry = {
  te_spec : Runspec.t;
  te_parts : int array;  (** the resolved shape (auto or explicit) *)
  te_metrics : metrics;
}

val eval :
  ?measure_source:string ->
  machine:Autocfd_perfmodel.Model.machine ->
  source:string ->
  Runspec.t ->
  entry
(** Plan [source] under the spec and read the three model axes off the
    resulting SPMD unit.  When the spec selects the Domains engine and
    [measure_source] is given, additionally executes that (small)
    instance for real and records its wall clock. *)

val entry_to_json : entry -> Autocfd_obs.Json.t
val entry_of_json : Autocfd_obs.Json.t -> entry
(** Round-trip codec; tune results travel through the sweep cache as
    JSON.  [entry_of_json] raises {!Autocfd_obs.Json.Parse_error} on a
    malformed document. *)

val dominates : metrics -> metrics -> bool
(** [dominates a b]: [a] is no worse than [b] on all of (time, comm,
    mem) and strictly better on at least one. *)

val frontier : entry list -> entry list
(** The non-dominated entries, in the deterministic report order:
    ascending time, then comm, then mem; exact metric ties resolve
    toward the paper's default knobs (optimal combining, fission and
    fusion on) and finally the canonical spec JSON.  Entries with
    exactly equal metrics collapse to one representative, preferring one
    that has a measured wall clock. *)

val winner : entry list -> entry
(** The head of the frontier order: minimal time, ties broken as in
    {!frontier} so the winner is reproducible.
    @raise Invalid_argument on an empty list. *)

type result = {
  tr_program : string;
  tr_grid : grid;
  tr_total : int;  (** points evaluated before pruning *)
  tr_frontier : entry list;
  tr_winner : entry;
}

val make_result : program:string -> grid:grid -> entry list -> result
(** Prune and rank a full evaluation. @raise Invalid_argument when
    [entries] is empty. *)

val result_to_json : result -> Autocfd_obs.Json.t
val result_of_json : Autocfd_obs.Json.t -> result

val render : result -> string
(** ASCII Pareto-frontier table plus a one-line winner summary. *)
