open Autocfd_fortran
module A = Autocfd_analysis
module S = Autocfd_syncopt
module P = Autocfd_partition
module C = Autocfd_codegen
module I = Autocfd_interp
module M = Autocfd_mpsim

type t = {
  program : Ast.program;
  inlined : Ast.program_unit;
  gi : A.Grid_info.t;
  splits : A.Fission.split list;
}

let load ?(spec = Runspec.default) source =
  let program = Parser.parse source in
  let gi = A.Grid_info.of_program program in
  let inlined = Inline.program program in
  let inlined, splits =
    if spec.Runspec.fission then A.Fission.distribute inlined
    else (inlined, [])
  in
  { program; inlined; gi; splits }

type plan = {
  source : t;
  topo : P.Topology.t;
  summaries : A.Field_loop.summary list;
  sldp : A.Sldp.t;
  layout : S.Layout.t;
  opt : S.Optimizer.result;
  strategies : (int * A.Mirror.strategy) list;
  spmd : Ast.program_unit;
}

let auto_parts t ~nprocs =
  let grid = t.gi.A.Grid_info.grid in
  let depth = Array.make (Array.length grid) 1 in
  P.Topology.search ~grid ~nprocs ~depth

let plan ?(spec = Runspec.default) t =
  let combine = spec.Runspec.combine in
  let parts =
    match spec.Runspec.parts with
    | Some p -> p
    | None -> auto_parts t ~nprocs:spec.Runspec.nprocs
  in
  let topo = P.Topology.create ~grid:t.gi.A.Grid_info.grid ~parts in
  let loops = A.Loops.build t.inlined in
  let summaries = A.Field_loop.analyze_unit t.gi t.inlined in
  let sldp = A.Sldp.compute t.gi topo loops summaries in
  let layout = S.Layout.of_unit t.inlined in
  let opt = S.Optimizer.run ~combine sldp ~layout in
  let input : C.Transform.input =
    {
      C.Transform.in_unit = t.inlined;
      in_gi = t.gi;
      in_topo = topo;
      in_summaries = summaries;
      in_groups = opt.S.Optimizer.groups;
      in_layout = layout;
    }
  in
  let strategies = C.Transform.strategies input in
  let spmd = C.Transform.run input in
  { source = t; topo; summaries; sldp; layout; opt; strategies; spmd }

let auto_parts_by_model ?(machine = Autocfd_perfmodel.Model.pentium_cluster) t
    ~nprocs =
  let grid = t.gi.A.Grid_info.grid in
  let candidates =
    P.Topology.factorizations nprocs (Array.length grid)
    |> List.filter (fun parts ->
           match P.Topology.create ~grid ~parts with
           | _ -> true
           | exception Invalid_argument _ -> false)
  in
  match candidates with
  | [] -> invalid_arg "Driver.auto_parts_by_model: no feasible partition"
  | first :: _ ->
      let time parts =
        let p = plan ~spec:(Runspec.with_parts (Some parts) Runspec.default) t in
        (Autocfd_perfmodel.Model.predict_parallel machine ~gi:t.gi
           ~topo:p.topo p.spmd)
          .Autocfd_perfmodel.Model.time
      in
      fst
        (List.fold_left
           (fun (best, bt) parts ->
             let tm = time parts in
             if tm < bt then (parts, tm) else (best, bt))
           (first, time first)
           (List.tl candidates))

(* the paper's "redefining the sizes of arrays": display the status-array
   declarations resized to the local block plus ghost planes (the
   simulator itself allocates full arrays and restricts computation by
   loop bounds, which is value-equivalent) *)
let resized_decls plan =
  let gi = plan.source.gi in
  let halo_depth name g =
    List.fold_left
      (fun acc (grp : S.Combine.group) ->
        List.fold_left
          (fun acc (t : Ast.transfer) ->
            if t.Ast.xfer_array = name && t.Ast.xfer_dim = g then
              max acc t.Ast.xfer_depth
            else acc)
          acc grp.S.Combine.gr_transfers)
      1 plan.opt.S.Optimizer.groups
  in
  List.map
    (fun d ->
      match A.Grid_info.find_status gi d.Ast.d_name with
      | None -> d
      | Some sa ->
          let dims =
            List.mapi
              (fun k (lo, hi) ->
                match
                  if k < sa.A.Grid_info.sa_rank then
                    sa.A.Grid_info.sa_dims.(k)
                  else None
                with
                | Some g when P.Topology.is_cut plan.topo g ->
                    let h = halo_depth d.Ast.d_name g in
                    ( Ast.Binop
                        (Ast.Sub, Ast.Var (Printf.sprintf "acfd_lo%d" g),
                         Ast.Const_int h),
                      Ast.Binop
                        (Ast.Add, Ast.Var (Printf.sprintf "acfd_hi%d" g),
                         Ast.Const_int h) )
                | _ -> (lo, hi))
              d.Ast.d_dims
          in
          { d with Ast.d_dims = dims })
    plan.spmd.Ast.u_decls

let spmd_source plan =
  let header =
    Printf.sprintf
      "c  Auto-CFD generated SPMD program\nc  partition: %s over grid %s\n\
       c  synchronization points: %d before optimization, %d after\nc\n"
      (Format.asprintf "%a" P.Topology.pp_shape (P.Topology.parts plan.topo))
      (String.concat " x "
         (Array.to_list (Array.map string_of_int (P.Topology.grid plan.topo))))
      plan.opt.S.Optimizer.before plan.opt.S.Optimizer.after
  in
  let display = { plan.spmd with Ast.u_decls = resized_decls plan } in
  header
  ^ "c  status arrays are declared over the local block plus ghost planes\n"
  ^ "c  (acfd_lo/acfd_hi are the rank's demarcation bounds)\nc\n"
  ^ Pretty.unit_ display

let mpi_source plan =
  C.Mpi_backend.emit ~gi:plan.source.gi ~topo:plan.topo plan.spmd

type seq_result = {
  sq_output : string list;
  sq_arrays : (string * I.Value.arr) list;
  sq_flops : float;
}

(* per-flop charge matching the reference machine under the plan's per-rank
   working set (same calibration as the model-validation experiments) *)
let calibrated_flop_time ?(machine = Autocfd_perfmodel.Model.pentium_cluster)
    plan =
  let module PM = Autocfd_perfmodel.Model in
  let points_per_rank =
    let g = P.Topology.grid plan.topo and p = P.Topology.parts plan.topo in
    Array.to_list (Array.mapi (fun d _ -> (g.(d) + p.(d) - 1) / p.(d)) g)
    |> List.fold_left ( * ) 1
  in
  let ws = PM.working_set_bytes ~gi:plan.source.gi ~points_per_rank in
  PM.memory_slowdown machine ws /. machine.PM.flop_rate

(* [spec.fuse = false] demotes the fused engine to the unfused closure
   IR; the other engines are unaffected (Domains always runs fused) *)
let effective_engine (spec : Runspec.t) =
  match spec.Runspec.engine with
  | I.Spmd.Fused when not spec.Runspec.fuse -> I.Spmd.Compiled
  | e -> e

let run_seq ?(spec = Runspec.default) t =
  match effective_engine spec with
  | I.Spmd.Tree ->
      let m = I.Machine.create ~input:spec.Runspec.input t.inlined in
      I.Machine.run m;
      {
        sq_output = I.Machine.output m;
        sq_arrays =
          List.map
            (fun n -> (n, I.Machine.array m n))
            (I.Machine.array_names m);
        sq_flops = I.Machine.flops m;
      }
  | I.Spmd.Compiled | I.Spmd.Fused | I.Spmd.Domains as engine ->
      (* Domains differs from Fused only in how ranks execute; the
         sequential reference is the same fused closure IR *)
      let fuse = engine <> I.Spmd.Compiled in
      let st =
        I.Compile.create ~input:spec.Runspec.input
          (I.Compile.of_unit ~fuse t.inlined)
      in
      I.Compile.run st;
      {
        sq_output = I.Compile.output st;
        sq_arrays =
          List.map
            (fun n -> (n, I.Compile.array st n))
            (I.Compile.array_names st);
        sq_flops = I.Compile.flops st;
      }

let run ?(spec = Runspec.default) plan =
  let net, flop_time =
    match spec.Runspec.machine with
    | Some m ->
        (m.Autocfd_perfmodel.Model.net, calibrated_flop_time ~machine:m plan)
    | None -> (spec.Runspec.net, spec.Runspec.flop_time)
  in
  let config =
    {
      I.Spmd.gi = plan.source.gi;
      topo = plan.topo;
      net;
      flop_time;
      input = spec.Runspec.input;
      tracer = spec.Runspec.tracer;
      faults = spec.Runspec.faults;
      recovery = spec.Runspec.recovery;
    }
  in
  I.Spmd.run ~engine:(effective_engine spec) config plan.spmd

let max_divergence seq par =
  List.filter_map
    (fun (name, arr) ->
      match List.assoc_opt name par.I.Spmd.gathered with
      | Some parr -> Some (name, I.Value.max_abs_diff arr parr)
      | None -> None)
    seq.sq_arrays
