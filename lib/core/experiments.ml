module A = Autocfd_analysis
module S = Autocfd_syncopt
module P = Autocfd_partition
module M = Autocfd_perfmodel.Model
module Apps = Autocfd_apps
module Sched = Autocfd_sched
module J = Autocfd_obs.Json

let machine = M.pentium_cluster

(* frame counts scaling modelled runs to the paper's wall-clock
   magnitudes (the paper does not state iteration counts) *)
let aerofoil_frames = 3000
let sprayer_frames = 1500

let shape parts =
  String.concat " x " (Array.to_list (Array.map string_of_int parts))

(* ------------------------------------------------------------------ *)
(* Sweep infrastructure: every table enumerates its rows as jobs       *)
(* through the multicore pool; results come back in submission order   *)
(* as JSON (the same form the cache stores), so serial, parallel and   *)
(* warm-cache sweeps render byte-identically.                          *)
(* ------------------------------------------------------------------ *)

type sweep = {
  sw_jobs : int;
  sw_cache : Sched.Cache.t option;
  sw_tracer : Autocfd_obs.Trace.t option;
  sw_fabric : Sched.Fabric.t option;
  mutable sw_stats : (string * Sched.Pool.stats) list;  (* newest first *)
}

let sweep ?(jobs = 1) ?cache ?tracer ?fabric () =
  {
    sw_jobs = jobs;
    sw_cache = cache;
    sw_tracer = tracer;
    sw_fabric = fabric;
    sw_stats = [];
  }

let sweep_stats sw = List.rev sw.sw_stats

let sweep_stale sw =
  match sw.sw_cache with Some c -> Sched.Cache.stale_cleaned c | None -> 0

let fresh_sweep = function Some sw -> sw | None -> sweep ()

let run_jobs sw ~table jobs =
  let results, stats =
    match sw.sw_fabric with
    | Some fb -> Sched.Fabric.run fb ?cache:sw.sw_cache ?tracer:sw.sw_tracer jobs
    | None ->
        Sched.Pool.run ~jobs:sw.sw_jobs ?cache:sw.sw_cache ?tracer:sw.sw_tracer
          jobs
  in
  sw.sw_stats <- (table, stats) :: sw.sw_stats;
  List.mapi
    (fun i (job : Sched.Job.t) ->
      match results.(i) with
      | Ok v -> v
      | Error msg ->
          failwith (Printf.sprintf "%s: %s" job.Sched.Job.jb_label msg))
    jobs

(* decoding helpers over job-result JSON *)
let jfield name j =
  match J.member name j with
  | Some v -> v
  | None -> raise (J.Parse_error ("missing result field " ^ name))

let jf name j = J.to_float_exn (jfield name j)

let ji name j =
  match jfield name j with
  | J.Int i -> i
  | _ -> raise (J.Parse_error ("field " ^ name ^ ": expected int"))

let jb name j =
  match jfield name j with
  | J.Bool b -> b
  | _ -> raise (J.Parse_error ("field " ^ name ^ ": expected bool"))

let js name j =
  match jfield name j with
  | J.Str s -> s
  | _ -> raise (J.Parse_error ("field " ^ name ^ ": expected string"))

let jl name j =
  match jfield name j with
  | J.List l -> l
  | _ -> raise (J.Parse_error ("field " ^ name ^ ": expected list"))

let parts_key p =
  J.Str (String.concat "x" (Array.to_list (Array.map string_of_int p)))

let machine_key = ("machine", Runspec.machine_to_json machine)

(* the runspec naming "plan this explicit shape" (all other knobs at
   their defaults) — the bridge from the tables' partition columns to
   the spec-driven Driver API *)
let parts_spec parts = Runspec.(default |> with_parts (Some parts))

(* ------------------------------------------------------------------ *)
(* Self-contained execution specs.  Every job body lives in exec_spec, *)
(* dispatched on a JSON spec that carries the full program source and  *)
(* parameters — so the in-process pool (which closes over the spec)    *)
(* and a remote fabric worker (which receives it over the wire)        *)
(* compute through the same code path, and a distributed sweep is      *)
(* byte-identical to a serial one by construction.                     *)
(* ------------------------------------------------------------------ *)

module Fault = Autocfd_mpsim.Fault

(* program state only — gathered arrays, scalars, flop census, WRITE
   output.  This is the bit-equivalence contract the Domains engine can
   meet: its [stats] are measured wall clock, not virtual time. *)
let program_state_identical (a : Autocfd_interp.Spmd.result)
    (b : Autocfd_interp.Spmd.result) =
  let arrays_eq =
    List.length a.Autocfd_interp.Spmd.gathered
    = List.length b.Autocfd_interp.Spmd.gathered
    && List.for_all2
         (fun (na, aa) (nb, ab) ->
           na = nb
           && aa.Autocfd_interp.Value.bounds = ab.Autocfd_interp.Value.bounds
           && aa.Autocfd_interp.Value.data = ab.Autocfd_interp.Value.data)
         a.Autocfd_interp.Spmd.gathered b.Autocfd_interp.Spmd.gathered
  in
  arrays_eq
  && a.Autocfd_interp.Spmd.scalars = b.Autocfd_interp.Spmd.scalars
  && a.Autocfd_interp.Spmd.flops_per_rank = b.Autocfd_interp.Spmd.flops_per_rank
  && a.Autocfd_interp.Spmd.output = b.Autocfd_interp.Spmd.output

let results_identical (a : Autocfd_interp.Spmd.result)
    (b : Autocfd_interp.Spmd.result) =
  program_state_identical a b
  && a.Autocfd_interp.Spmd.stats = b.Autocfd_interp.Spmd.stats

(* the resilience claim: same science out, faults or no faults *)
let state_identical (a : Autocfd_interp.Spmd.result)
    (b : Autocfd_interp.Spmd.result) =
  let arrays_eq =
    List.length a.Autocfd_interp.Spmd.gathered
    = List.length b.Autocfd_interp.Spmd.gathered
    && List.for_all2
         (fun (na, aa) (nb, ab) ->
           na = nb
           && aa.Autocfd_interp.Value.bounds = ab.Autocfd_interp.Value.bounds
           && aa.Autocfd_interp.Value.data = ab.Autocfd_interp.Value.data)
         a.Autocfd_interp.Spmd.gathered b.Autocfd_interp.Spmd.gathered
  in
  arrays_eq
  && a.Autocfd_interp.Spmd.scalars = b.Autocfd_interp.Spmd.scalars
  && a.Autocfd_interp.Spmd.output = b.Autocfd_interp.Spmd.output

let coverage_to_json cov =
  J.List
    (List.map
       (fun (c : Autocfd_interp.Compile.coverage_entry) ->
         J.Obj
           [
             ("line", J.Int c.Autocfd_interp.Compile.cov_line);
             ( "vars",
               J.List
                 (List.map
                    (fun v -> J.Str v)
                    c.Autocfd_interp.Compile.cov_vars) );
             ("fused", J.Bool c.Autocfd_interp.Compile.cov_fused);
             ( "reason",
               J.Str
                 (Autocfd_interp.Compile.reason_to_string
                    c.Autocfd_interp.Compile.cov_reason) );
             ( "frag",
               J.Int
                 (match c.Autocfd_interp.Compile.cov_frag with
                 | Some t -> t.Autocfd_fortran.Ast.fi_frag
                 | None -> 0) );
             ( "nfrags",
               J.Int
                 (match c.Autocfd_interp.Compile.cov_frag with
                 | Some t -> t.Autocfd_fortran.Ast.fi_nfrags
                 | None -> 0) );
           ])
       cov)

let coverage_of_json j =
  List.map
    (fun c ->
      (* frag/nfrags absent on rows serialized before the fission pass *)
      let opt_i name =
        match J.member name c with Some (J.Int i) -> i | _ -> 0
      in
      {
        Autocfd_interp.Compile.cov_line = ji "line" c;
        cov_vars =
          List.map
            (function
              | J.Str s -> s
              | _ -> raise (J.Parse_error "coverage var: expected string"))
            (jl "vars" c);
        cov_fused = jb "fused" c;
        cov_reason = Autocfd_interp.Compile.reason_of_string (js "reason" c);
        cov_frag =
          (match (opt_i "frag", opt_i "nfrags") with
          | 0, _ | _, 0 -> None
          | f, n -> Some { Autocfd_fortran.Ast.fi_frag = f; fi_nfrags = n });
      })
    (jl "coverage" (J.Obj [ ("coverage", j) ]))

(* Six seeded schedules per program, scaled to the fault-free run: message
   loss alone, duplication+corruption, timing perturbations (jitter and a
   degraded link), a transient straggler, a hard crash mid-run, and all of
   them together.  Every schedule is recoverable, so each row must come
   back bit-identical. *)
let chaos_schedules ~seed ~clean_elapsed ~net =
  let lat = net.Autocfd_mpsim.Netmodel.latency in
  let mid p = Fault.At_time (p *. clean_elapsed) in
  [
    ("loss 3%", Fault.spec ~seed ~loss:0.03 ());
    ( "dup+corrupt 2%",
      Fault.spec ~seed:(seed + 1) ~duplication:0.02 ~corruption:0.02 () );
    ( "jitter+slow link",
      Fault.spec ~seed:(seed + 2) ~jitter:(8.0 *. lat)
        ~degrade:[ (0, 1, 3.0); (1, 0, 3.0) ]
        () );
    ( "straggler",
      Fault.spec ~seed:(seed + 3)
        ~stalls:
          [
            {
              Fault.sl_rank = 1;
              sl_at = mid 0.3;
              sl_duration = 0.2 *. clean_elapsed;
            };
          ]
        () );
    ( "crash+restart",
      Fault.spec ~seed:(seed + 4)
        ~crashes:[ { Fault.cr_rank = 1; cr_at = mid 0.4 } ]
        () );
    ( "kitchen sink",
      Fault.spec ~seed:(seed + 5) ~loss:0.01 ~duplication:0.01
        ~corruption:0.01 ~jitter:(4.0 *. lat)
        ~crashes:[ { Fault.cr_rank = 1; cr_at = mid 0.5 } ]
        () );
  ]

let schedule_labels =
  [
    "loss 3%"; "dup+corrupt 2%"; "jitter+slow link"; "straggler";
    "crash+restart"; "kitchen sink";
  ]

let resilience_to_json (rs : Autocfd_interp.Spmd.resilience)
    (c : Fault.counters) =
  [
    ("drops", J.Int c.Fault.fc_drops);
    ("duplicates", J.Int c.Fault.fc_duplicates);
    ("corruptions", J.Int c.Fault.fc_corruptions);
    ("reorders", J.Int c.Fault.fc_reorders);
    ("stalls", J.Int c.Fault.fc_stalls);
    ("crashes", J.Int c.Fault.fc_crashes);
    ("restarts", J.Int rs.Autocfd_interp.Spmd.rs_restarts);
    ("checkpoints", J.Int rs.Autocfd_interp.Spmd.rs_checkpoints);
    ("restores", J.Int rs.Autocfd_interp.Spmd.rs_restores);
    ("retransmits", J.Int rs.Autocfd_interp.Spmd.rs_retransmits);
    ("dup_suppressed", J.Int rs.Autocfd_interp.Spmd.rs_dup_suppressed);
    ("checksum_failures", J.Int rs.Autocfd_interp.Spmd.rs_checksum_failures);
  ]

let engine_name = function
  | Autocfd_interp.Spmd.Tree -> "tree"
  | Autocfd_interp.Spmd.Compiled -> "compiled"
  | Autocfd_interp.Spmd.Fused -> "fused"
  | Autocfd_interp.Spmd.Domains -> "domains"

let engine_of_name = function
  | "tree" -> Autocfd_interp.Spmd.Tree
  | "compiled" -> Autocfd_interp.Spmd.Compiled
  | "fused" -> Autocfd_interp.Spmd.Fused
  | "domains" -> Autocfd_interp.Spmd.Domains
  | other -> raise (J.Parse_error ("unknown engine " ^ other))

let time_run f =
  ignore (f ());
  (* warm: populate compile + plan caches *)
  let reps = 3 in
  let t0 = Sys.time () in
  for _ = 1 to reps do
    ignore (f ())
  done;
  (Sys.time () -. t0) /. float_of_int reps

let exec_spec spec =
  let source () = js "source" spec in
  let parts () =
    let s = js "partition" spec in
    try
      Array.of_list (List.map int_of_string (String.split_on_char 'x' s))
    with Failure _ -> raise (J.Parse_error ("bad partition " ^ s))
  in
  match js "kind" spec with
  | "plan-sync" ->
      let t = Driver.load (source ()) in
      let plan = Driver.plan ~spec:(parts_spec (parts ())) t in
      J.Obj
        [
          ("before", J.Int plan.Driver.opt.S.Optimizer.before);
          ("after", J.Int plan.Driver.opt.S.Optimizer.after);
        ]
  | "predict-seq" ->
      let t = Driver.load (source ()) in
      let pred = M.predict_sequential machine ~gi:t.Driver.gi t.Driver.inlined in
      J.Obj [ ("time", J.Float pred.M.time) ]
  | "predict-par" ->
      let t = Driver.load (source ()) in
      let plan = Driver.plan ~spec:(parts_spec (parts ())) t in
      let pred =
        M.predict_parallel machine ~gi:t.Driver.gi ~topo:plan.Driver.topo
          plan.Driver.spmd
      in
      J.Obj [ ("time", J.Float pred.M.time) ]
  | "predict-both" ->
      let t = Driver.load (source ()) in
      let t1 =
        (M.predict_sequential machine ~gi:t.Driver.gi t.Driver.inlined)
          .M.time
      in
      let plan = Driver.plan ~spec:(parts_spec (parts ())) t in
      let t2 =
        (M.predict_parallel machine ~gi:t.Driver.gi
           ~topo:plan.Driver.topo plan.Driver.spmd)
          .M.time
      in
      J.Obj [ ("t1", J.Float t1); ("t2", J.Float t2) ]
  | "validate" ->
      let t = Driver.load (source ()) in
      let plan = Driver.plan ~spec:(parts_spec (parts ())) t in
      let points_per_rank =
        let g = P.Topology.grid plan.Driver.topo
        and p = P.Topology.parts plan.Driver.topo in
        Array.to_list
          (Array.mapi (fun d _ -> (g.(d) + p.(d) - 1) / p.(d)) g)
        |> List.fold_left ( * ) 1
      in
      let ws = M.working_set_bytes ~gi:t.Driver.gi ~points_per_rank in
      let flop_time =
        M.memory_slowdown machine ws /. machine.M.flop_rate
      in
      let par =
        Driver.run
          ~spec:
            Runspec.(
              default |> with_net machine.M.net
              |> with_flop_time flop_time)
          plan
      in
      let simulated =
        par.Autocfd_interp.Spmd.stats.Autocfd_mpsim.Sim.elapsed
      in
      let modelled =
        (M.predict_parallel machine ~gi:t.Driver.gi
           ~topo:plan.Driver.topo plan.Driver.spmd)
          .M.time
      in
      J.Obj
        [
          ("simulated", J.Float simulated);
          ("modelled", J.Float modelled);
        ]
  | "engine-bench" ->
      let source = source () in
      let large_source = js "large_source" spec in
      let parts = parts () in
      let t = Driver.load source in
      let plan = Driver.plan ~spec:(parts_spec parts) t in
      let run engine () =
        Driver.run ~spec:(Runspec.with_engine engine Runspec.default) plan
      in
      let tree = run Autocfd_interp.Spmd.Tree in
      let compiled = run Autocfd_interp.Spmd.Compiled in
      let fused = run Autocfd_interp.Spmd.Fused in
      let reference = tree () in
      let identical =
        results_identical reference (compiled ())
        && results_identical reference (fused ())
      in
      let tree_s = time_run tree in
      let compiled_s = time_run compiled in
      let fused_s = time_run fused in
      (* fused vs domains: the same program at the large size, where
         per-barrier compute dominates domain spawn/wakeup cost.  The
         Domains engine is timed on the wall clock it measures
         itself (Sys.time would sum CPU across domains); the fused
         run is single-threaded, so its CPU time is its wall time *)
      let lplan = Driver.plan ~spec:(parts_spec parts) (Driver.load large_source) in
      let lrun engine () =
        Driver.run ~spec:(Runspec.with_engine engine Runspec.default)
          lplan
      in
      let lfused = lrun Autocfd_interp.Spmd.Fused in
      let ldomains = lrun Autocfd_interp.Spmd.Domains in
      let lref = lfused () in
      let dres = ldomains () in
      let domains_identical =
        program_state_identical reference (run Autocfd_interp.Spmd.Domains ())
        && program_state_identical lref dres
      in
      let fused_wall_s = time_run lfused in
      let ds_wall r =
        match r.Autocfd_interp.Spmd.domains with
        | Some ds -> ds.Autocfd_interp.Spmd.ds_wall
        | None -> 0.0
      in
      let domains_s =
        let reps = 3 in
        let tot = ref (ds_wall dres) in
        for _ = 2 to reps do
          tot := !tot +. ds_wall (ldomains ())
        done;
        !tot /. float_of_int reps
      in
      let cal =
        match dres.Autocfd_interp.Spmd.domains with
        | None -> M.calibrate ~compute:[] ~comm:[]
        | Some ds ->
            let compute =
              Array.to_list
                (Array.map2
                   (fun f s -> (f, s))
                   ds.Autocfd_interp.Spmd.ds_flops
                   ds.Autocfd_interp.Spmd.ds_compute)
            in
            M.calibrate ~compute
              ~comm:ds.Autocfd_interp.Spmd.ds_comm_samples
      in
      let coverage =
        Autocfd_interp.Compile.coverage
          (Autocfd_interp.Compile.of_unit ~fuse:true plan.Driver.spmd)
      in
      (* the same program with the loop-fission pass disabled: the
         before side of the fission before/after coverage and
         timing columns, plus a bit-identity check that fission
         changes no program state *)
      let nof_spec = Runspec.with_fission false (parts_spec parts) in
      let plan_nof =
        Driver.plan ~spec:nof_spec (Driver.load ~spec:nof_spec source)
      in
      let nof_fused () =
        Driver.run
          ~spec:
            (Runspec.with_engine Autocfd_interp.Spmd.Fused
               Runspec.default)
          plan_nof
      in
      let fission_identical =
        program_state_identical reference (nof_fused ())
      in
      let nofission_fused_s = time_run nof_fused in
      let nofission_coverage =
        Autocfd_interp.Compile.coverage
          (Autocfd_interp.Compile.of_unit ~fuse:true
             plan_nof.Driver.spmd)
      in
      J.Obj
        [
          ("tree_s", J.Float tree_s);
          ("nofission_fused_s", J.Float nofission_fused_s);
          ("fission_identical", J.Bool fission_identical);
          ("nofission_coverage", coverage_to_json nofission_coverage);
          ("compiled_s", J.Float compiled_s);
          ("fused_s", J.Float fused_s);
          ("fused_wall_s", J.Float fused_wall_s);
          ("domains_s", J.Float domains_s);
          ("identical", J.Bool identical);
          ("domains_identical", J.Bool domains_identical);
          ("cal_flop_time", J.Float cal.M.cal_flop_time);
          ("cal_latency", J.Float cal.M.cal_latency);
          ( "cal_bandwidth",
            J.Float
              (if Float.is_finite cal.M.cal_bandwidth then
                 cal.M.cal_bandwidth
               else 0.0) );
          ("cal_compute_r2", J.Float cal.M.cal_compute_r2);
          ("cal_comm_r2", J.Float cal.M.cal_comm_r2);
          ("coverage", coverage_to_json coverage);
        ]
  | "chaos" ->
      let seed = ji "seed" spec in
      let engine = engine_of_name (js "engine" spec) in
      let idx = ji "schedule" spec in
      let t = Driver.load (source ()) in
      let plan = Driver.plan ~spec:(parts_spec (parts ())) t in
      let net = machine.M.net in
      let flop_time = Driver.calibrated_flop_time ~machine plan in
      let base =
        Runspec.(
          default |> with_engine engine |> with_net net
          |> with_flop_time flop_time)
      in
      let clean = Driver.run ~spec:base plan in
      let clean_elapsed =
        clean.Autocfd_interp.Spmd.stats.Autocfd_mpsim.Sim.elapsed
      in
      let _, fspec =
        List.nth (chaos_schedules ~seed ~clean_elapsed ~net) idx
      in
      let faults = Fault.make fspec in
      let faulty =
        Driver.run
          ~spec:
            Runspec.(
              base
              |> with_faults (Some faults)
              |> with_recovery
                   (Some Autocfd_interp.Spmd.default_recovery))
          plan
      in
      J.Obj
        (( "identical",
           J.Bool (state_identical clean faulty) )
        :: ( "overhead",
             J.Float
               (faulty.Autocfd_interp.Spmd.stats
                  .Autocfd_mpsim.Sim.elapsed /. clean_elapsed) )
        :: resilience_to_json faulty.Autocfd_interp.Spmd.resilience
             (Fault.counters faults))
  | "tune" ->
      let rspec = Runspec.of_json (jfield "spec" spec) in
      let measure_source =
        match J.member "measure_source" spec with
        | Some (J.Str s) -> Some s
        | _ -> None
      in
      Tune.entry_to_json
        (Tune.eval ?measure_source ~machine ~source:(source ()) rspec)
  | other -> raise (J.Parse_error ("unknown job spec kind: " ^ other))

let job ~table ~label ~params ~spec =
  Sched.Job.make
    ~label:(table ^ ":" ^ label)
    ~key:(J.Obj [ ("table", J.Str table); ("params", params) ])
    ~spec
    (fun () -> exec_spec spec)

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

type t1_row = {
  t1_program : string;
  t1_partition : int array;
  t1_before : int;
  t1_after : int;
  t1_paper_before : int;
  t1_paper_after : int;
}

let paper_table1 =
  [
    ("aerofoil", [| 4; 1; 1 |], 73, 8);
    ("aerofoil", [| 1; 4; 1 |], 84, 10);
    ("aerofoil", [| 1; 1; 4 |], 81, 9);
    ("aerofoil", [| 4; 4; 1 |], 148, 13);
    ("aerofoil", [| 4; 1; 4 |], 145, 13);
    ("aerofoil", [| 1; 4; 4 |], 156, 14);
    ("sprayer", [| 4; 1 |], 72, 7);
    ("sprayer", [| 1; 4 |], 69, 7);
    ("sprayer", [| 4; 4 |], 141, 7);
  ]

let table1 ?sweep () =
  let sw = fresh_sweep sweep in
  let jobs =
    List.map
      (fun (prog, parts, _, _) ->
        let source =
          if prog = "aerofoil" then Apps.Aerofoil.source ()
          else Apps.Sprayer.source ()
        in
        job ~table:"table1"
          ~label:(prog ^ " " ^ shape parts)
          ~params:
            (J.Obj
               [
                 ("program", J.Str prog);
                 ("partition", parts_key parts);
                 ("src", J.Str (Sched.Job.digest source));
               ])
          ~spec:
            (J.Obj
               [
                 ("kind", J.Str "plan-sync");
                 ("source", J.Str source);
                 ("partition", parts_key parts);
               ]))
      paper_table1
  in
  List.map2
    (fun (prog, parts, pb, pa) r ->
      {
        t1_program = prog;
        t1_partition = parts;
        t1_before = ji "before" r;
        t1_after = ji "after" r;
        t1_paper_before = pb;
        t1_paper_after = pa;
      })
    paper_table1
    (run_jobs sw ~table:"table1" jobs)

(* ------------------------------------------------------------------ *)
(* Timing tables                                                       *)
(* ------------------------------------------------------------------ *)

type perf_row = {
  pr_procs : int;
  pr_partition : int array option;
  pr_time : float;
  pr_speedup : float option;
  pr_efficiency : float option;
  pr_paper_time : float;
  pr_paper_speedup : float option;
}

let seq_time_job ~table source =
  job ~table ~label:"sequential"
    ~params:
      (J.Obj
         [
           machine_key;
           ("kind", J.Str "sequential");
           ("src", J.Str (Sched.Job.digest source));
         ])
    ~spec:
      (J.Obj [ ("kind", J.Str "predict-seq"); ("source", J.Str source) ])

let par_time_job ~table source parts =
  job ~table ~label:(shape parts)
    ~params:
      (J.Obj
         [
           machine_key;
           ("kind", J.Str "parallel");
           ("partition", parts_key parts);
           ("src", J.Str (Sched.Job.digest source));
         ])
    ~spec:
      (J.Obj
         [
           ("kind", J.Str "predict-par");
           ("source", J.Str source);
           ("partition", parts_key parts);
         ])

let perf_rows sw ~table source ~paper_seq rows =
  let jobs =
    seq_time_job ~table source
    :: List.map (fun (parts, _, _) -> par_time_job ~table source parts) rows
  in
  match run_jobs sw ~table jobs with
  | [] -> assert false
  | seq :: pars ->
      let t1 = jf "time" seq in
      { pr_procs = 1; pr_partition = None; pr_time = t1; pr_speedup = None;
        pr_efficiency = None; pr_paper_time = paper_seq;
        pr_paper_speedup = None }
      :: List.map2
           (fun (parts, paper_time, paper_speedup) r ->
             let tp = jf "time" r in
             let p = Array.fold_left ( * ) 1 parts in
             {
               pr_procs = p;
               pr_partition = Some parts;
               pr_time = tp;
               pr_speedup = Some (t1 /. tp);
               pr_efficiency = Some (t1 /. tp /. float_of_int p);
               pr_paper_time = paper_time;
               pr_paper_speedup = paper_speedup;
             })
           rows pars

let table2 ?sweep () =
  perf_rows (fresh_sweep sweep) ~table:"table2"
    (Apps.Aerofoil.source ~ntime:aerofoil_frames ())
    ~paper_seq:1970.
    [
      ([| 2; 1; 1 |], 1760., Some 1.12);
      ([| 4; 1; 1 |], 2341., Some 0.84);
      ([| 3; 2; 1 |], 1093., Some 1.80);
    ]

let table3 ?sweep () =
  perf_rows (fresh_sweep sweep) ~table:"table3"
    (Apps.Sprayer.source ~ntime:sprayer_frames ())
    ~paper_seq:362.
    [
      ([| 2; 1 |], 254., Some 1.43);
      ([| 3; 1 |], 184., Some 1.97);
      ([| 2; 2 |], 130., Some 2.78);
    ]

(* ------------------------------------------------------------------ *)
(* Table 4: scaling with grid density                                  *)
(* ------------------------------------------------------------------ *)

type t4_row = {
  t4_grid : int * int;
  t4_t1 : float;
  t4_t2 : float;
  t4_speedup : float;
  t4_efficiency : float;
  t4_paper_t1 : float;
  t4_paper_t2 : float;
  t4_paper_speedup : float;
}

let paper_table4 =
  [
    ((40, 15), 45., 45., 1.0);
    ((60, 23), 108., 66., 1.64);
    ((80, 30), 199., 140., 1.42);
    ((100, 38), 331., 218., 1.52);
    ((120, 45), 472., 276., 1.71);
    ((140, 53), 712., 403., 1.77);
    ((160, 60), 908., 519., 1.75);
  ]

let table4 ?sweep () =
  let sw = fresh_sweep sweep in
  let parts = [| 2; 1 |] in
  let jobs =
    List.map
      (fun ((ni, nj), _, _, _) ->
        let source = Apps.Sprayer.source ~ni ~nj ~ntime:sprayer_frames () in
        job ~table:"table4"
          ~label:(Printf.sprintf "%dx%d" ni nj)
          ~params:
            (J.Obj
               [
                 machine_key;
                 ("grid", J.Str (Printf.sprintf "%dx%d" ni nj));
                 ("partition", parts_key parts);
                 ("src", J.Str (Sched.Job.digest source));
               ])
          ~spec:
            (J.Obj
               [
                 ("kind", J.Str "predict-both");
                 ("source", J.Str source);
                 ("partition", parts_key parts);
               ]))
      paper_table4
  in
  List.map2
    (fun ((ni, nj), p1, p2, ps) r ->
      let t1 = jf "t1" r and t2 = jf "t2" r in
      {
        t4_grid = (ni, nj);
        t4_t1 = t1;
        t4_t2 = t2;
        t4_speedup = t1 /. t2;
        t4_efficiency = t1 /. t2 /. 2.0;
        t4_paper_t1 = p1;
        t4_paper_t2 = p2;
        t4_paper_speedup = ps;
      })
    paper_table4
    (run_jobs sw ~table:"table4" jobs)

(* ------------------------------------------------------------------ *)
(* Table 5: superlinear speedup                                        *)
(* ------------------------------------------------------------------ *)

type t5_row = {
  t5_procs : int;
  t5_partition : int array;
  t5_time : float;
  t5_eff_over_2 : float;
  t5_paper_time : float;
  t5_paper_eff : float;
}

let table5 ?sweep () =
  let sw = fresh_sweep sweep in
  let source = Apps.Sprayer.source ~ni:800 ~nj:300 ~ntime:sprayer_frames () in
  let rows =
    [
      ([| 2; 1 |], 2095., 1.00);
      ([| 3; 1 |], 1249., 1.12);
      ([| 2; 2 |], 1012., 1.04);
    ]
  in
  let jobs =
    List.map
      (fun (parts, _, _) -> par_time_job ~table:"table5" source parts)
      rows
  in
  let times =
    List.map2
      (fun (parts, pt, pe) r -> (parts, jf "time" r, pt, pe))
      rows
      (run_jobs sw ~table:"table5" jobs)
  in
  let t2 =
    match times with (_, t2, _, _) :: _ -> t2 | [] -> assert false
  in
  List.map
    (fun (parts, tp, pt, pe) ->
      let p = Array.fold_left ( * ) 1 parts in
      {
        t5_procs = p;
        t5_partition = parts;
        t5_time = tp;
        t5_eff_over_2 = t2 *. 2.0 /. (tp *. float_of_int p);
        t5_paper_time = pt;
        t5_paper_eff = pe;
      })
    times

(* ------------------------------------------------------------------ *)
(* Model vs simulation cross-validation                                 *)
(* ------------------------------------------------------------------ *)

type validation_row = {
  vr_grid : int * int;
  vr_parts : int array;
  vr_simulated : float;
  vr_modelled : float;
  vr_ratio : float;
}

let validate_model ?sweep () =
  let sw = fresh_sweep sweep in
  let cases =
    [
      ((30, 16), [| 2; 1 |]);
      ((30, 16), [| 2; 2 |]);
      ((40, 20), [| 2; 1 |]);
      ((40, 20), [| 4; 1 |]);
      ((50, 24), [| 2; 2 |]);
    ]
  in
  let jobs =
    List.map
      (fun ((ni, nj), parts) ->
        let source = Apps.Sprayer.source ~ni ~nj ~ntime:4 ~npsi:3 () in
        job ~table:"validation"
          ~label:(Printf.sprintf "%dx%d %s" ni nj (shape parts))
          ~params:
            (J.Obj
               [
                 machine_key;
                 ("grid", J.Str (Printf.sprintf "%dx%d" ni nj));
                 ("partition", parts_key parts);
                 ("src", J.Str (Sched.Job.digest source));
               ])
          ~spec:
            (J.Obj
               [
                 ("kind", J.Str "validate");
                 ("source", J.Str source);
                 ("partition", parts_key parts);
               ]))
      cases
  in
  List.map2
    (fun ((ni, nj), parts) r ->
      let simulated = jf "simulated" r and modelled = jf "modelled" r in
      {
        vr_grid = (ni, nj);
        vr_parts = parts;
        vr_simulated = simulated;
        vr_modelled = modelled;
        vr_ratio = modelled /. simulated;
      })
    cases
    (run_jobs sw ~table:"validation" jobs)

(* ------------------------------------------------------------------ *)
(* Execution-engine benchmark: tree-walking vs compiled vs fused       *)
(* ------------------------------------------------------------------ *)

type engine_row = {
  er_program : string;
  er_parts : int array;
  er_tree_s : float;
  er_compiled_s : float;
  er_fused_s : float;
  er_speedup : float;
  er_fused_speedup : float;
  er_identical : bool;
  er_coverage : Autocfd_interp.Compile.coverage_entry list;
  er_nofission_fused_s : float;
  er_fission_identical : bool;
  er_nofission_coverage : Autocfd_interp.Compile.coverage_entry list;
  er_domains_s : float;
  er_domains_speedup : float;
  er_domains_identical : bool;
  er_calibration : M.calibration;
}

(* (name, small source, large source, partition): the small instance keeps
   the tree-walking column affordable; the large one gives the Domains
   engine enough compute per barrier for real parallel speedup to show *)
let engine_cases =
  [
    ( "aerofoil",
      (fun () -> Apps.Aerofoil.source ~ni:24 ~nj:12 ~nk:8 ~ntime:2 ()),
      (fun () -> Apps.Aerofoil.source ~ni:48 ~nj:24 ~nk:12 ~ntime:4 ()),
      [| 2; 2; 1 |] );
    ( "sprayer",
      (fun () -> Apps.Sprayer.source ~ni:80 ~nj:40 ~ntime:4 ()),
      (fun () -> Apps.Sprayer.source ~ni:160 ~nj:80 ~ntime:8 ()),
      [| 2; 2 |] );
  ]

let engine_bench ?sweep () =
  let sw = fresh_sweep sweep in
  let jobs =
    List.map
      (fun (name, source, large_source, parts) ->
        let source = source () in
        let large_source = large_source () in
        job ~table:"engine" ~label:name
          ~params:
            (J.Obj
               [
                 ("program", J.Str name);
                 ("partition", parts_key parts);
                 ("src", J.Str (Sched.Job.digest source));
                 ("large_src", J.Str (Sched.Job.digest large_source));
                 (* row-schema version: bumped when the measured columns
                    change so stale cached rows are not replayed *)
                 ("columns", J.Str "v3-fission");
               ])
          ~spec:
            (J.Obj
               [
                 ("kind", J.Str "engine-bench");
                 ("source", J.Str source);
                 ("large_source", J.Str large_source);
                 ("partition", parts_key parts);
               ]))
      engine_cases
  in
  List.map2
    (fun (name, _, _, parts) r ->
      let tree_s = jf "tree_s" r in
      let compiled_s = jf "compiled_s" r in
      let fused_s = jf "fused_s" r in
      let fused_wall_s = jf "fused_wall_s" r in
      let domains_s = jf "domains_s" r in
      {
        er_program = name;
        er_parts = parts;
        er_tree_s = tree_s;
        er_compiled_s = compiled_s;
        er_fused_s = fused_s;
        er_speedup = tree_s /. compiled_s;
        er_fused_speedup = tree_s /. fused_s;
        er_identical = jb "identical" r;
        er_coverage = coverage_of_json (jfield "coverage" r);
        er_nofission_fused_s = jf "nofission_fused_s" r;
        er_fission_identical = jb "fission_identical" r;
        er_nofission_coverage =
          coverage_of_json (jfield "nofission_coverage" r);
        er_domains_s = domains_s;
        er_domains_speedup = fused_wall_s /. domains_s;
        er_domains_identical = jb "domains_identical" r;
        er_calibration =
          {
            M.cal_flop_time = jf "cal_flop_time" r;
            cal_latency = jf "cal_latency" r;
            cal_bandwidth =
              (let b = jf "cal_bandwidth" r in
               if b = 0.0 then Float.infinity else b);
            cal_compute_r2 = jf "cal_compute_r2" r;
            cal_comm_r2 = jf "cal_comm_r2" r;
          };
      })
    engine_cases
    (run_jobs sw ~table:"engine" jobs)

(* ------------------------------------------------------------------ *)
(* Chaos benchmark: fault injection + reliable transport + recovery    *)
(* ------------------------------------------------------------------ *)

type chaos_row = {
  ch_program : string;
  ch_schedule : string;
  ch_identical : bool;
      (** gathered arrays, WRITE output and final scalars bit-equal to
          the fault-free run *)
  ch_overhead : float;  (** faulty / fault-free virtual elapsed time *)
  ch_resilience : Autocfd_interp.Spmd.resilience;
  ch_counters : Fault.counters;
}

let chaos_case ?(seed = 42) ?(engine = Autocfd_interp.Spmd.Fused) sw name
    source parts =
  let jobs =
    List.mapi
      (fun idx label ->
        job ~table:"chaos"
          ~label:(Printf.sprintf "%s %s" name label)
          ~params:
            (J.Obj
               [
                 machine_key;
                 ("program", J.Str name);
                 ("partition", parts_key parts);
                 ("schedule", J.Str label);
                 ("seed", J.Int seed);
                 ("engine", J.Str (engine_name engine));
                 ("src", J.Str (Sched.Job.digest source));
               ])
          ~spec:
            (J.Obj
               [
                 ("kind", J.Str "chaos");
                 ("source", J.Str source);
                 ("partition", parts_key parts);
                 ("seed", J.Int seed);
                 ("engine", J.Str (engine_name engine));
                 ("schedule", J.Int idx);
               ]))
      schedule_labels
  in
  List.map2
    (fun label r ->
      {
        ch_program = name;
        ch_schedule = label;
        ch_identical = jb "identical" r;
        ch_overhead = jf "overhead" r;
        ch_resilience =
          {
            Autocfd_interp.Spmd.rs_restarts = ji "restarts" r;
            rs_checkpoints = ji "checkpoints" r;
            rs_restores = ji "restores" r;
            rs_retransmits = ji "retransmits" r;
            rs_dup_suppressed = ji "dup_suppressed" r;
            rs_checksum_failures = ji "checksum_failures" r;
          };
        ch_counters =
          {
            Fault.fc_drops = ji "drops" r;
            fc_duplicates = ji "duplicates" r;
            fc_corruptions = ji "corruptions" r;
            (* absent in cached rows written before the reorder knob *)
            fc_reorders =
              (match J.member "reorders" r with
              | Some (J.Int n) -> n
              | _ -> 0);
            fc_stalls = ji "stalls" r;
            fc_crashes = ji "crashes" r;
          };
      })
    schedule_labels
    (run_jobs sw ~table:"chaos" jobs)

let chaos_bench ?seed ?sweep () =
  let sw = fresh_sweep sweep in
  chaos_case ?seed sw "sprayer"
    (Apps.Sprayer.source ~ni:40 ~nj:20 ~ntime:3 ())
    [| 2; 2 |]
  @ chaos_case ?seed sw "aerofoil"
      (Apps.Aerofoil.source ~ni:16 ~nj:10 ~nk:6 ~ntime:2 ())
      [| 2; 2; 1 |]

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render_table1 rows =
  let open Autocfd_util.Table in
  let t =
    create
      ~title:
        "Table 1: improvement by synchronization optimizations \
         (ours vs paper)"
      ~headers:
        [ "program"; "partition"; "before"; "after"; "reduction";
          "paper before"; "paper after"; "paper reduction" ]
  in
  List.iter
    (fun r ->
      let pct b a =
        cell_pct (float_of_int (b - a) /. float_of_int (max 1 b))
      in
      add_row t
        [
          r.t1_program; shape r.t1_partition; cell_int r.t1_before;
          cell_int r.t1_after; pct r.t1_before r.t1_after;
          cell_int r.t1_paper_before; cell_int r.t1_paper_after;
          pct r.t1_paper_before r.t1_paper_after;
        ])
    rows;
  render t

let render_perf ~title rows =
  let open Autocfd_util.Table in
  let t =
    create ~title
      ~headers:
        [ "procs"; "partition"; "time (s)"; "speedup"; "efficiency";
          "paper time (s)"; "paper speedup" ]
  in
  List.iter
    (fun r ->
      add_row t
        [
          cell_int r.pr_procs;
          (match r.pr_partition with Some p -> shape p | None -> "-");
          cell_float ~decimals:0 r.pr_time;
          (match r.pr_speedup with Some s -> cell_float s | None -> "-");
          (match r.pr_efficiency with Some e -> cell_pct e | None -> "-");
          cell_float ~decimals:0 r.pr_paper_time;
          (match r.pr_paper_speedup with
          | Some s -> cell_float s
          | None -> "-");
        ])
    rows;
  render t

let render_validation rows =
  let open Autocfd_util.Table in
  let t =
    create
      ~title:
        "Model validation: execution-driven simulated time vs analytic \
         prediction (sprayer, 4 frames)"
      ~headers:[ "grid"; "partition"; "simulated (s)"; "modelled (s)"; "ratio" ]
  in
  List.iter
    (fun r ->
      let ni, nj = r.vr_grid in
      add_row t
        [
          Printf.sprintf "%d x %d" ni nj;
          shape r.vr_parts;
          cell_float ~decimals:3 r.vr_simulated;
          cell_float ~decimals:3 r.vr_modelled;
          cell_float r.vr_ratio;
        ])
    rows;
  render t

let coverage_counts cov =
  ( List.length
      (List.filter
         (fun (c : Autocfd_interp.Compile.coverage_entry) ->
           c.Autocfd_interp.Compile.cov_fused)
         cov),
    List.length cov )

let render_engine rows =
  let open Autocfd_util.Table in
  let t =
    create
      ~title:
        "Execution engine: tree-walking interpreter vs compiled closure IR \
         vs fused kernels vs real OCaml 5 domains (identical results)"
      ~headers:
        [ "program"; "partition"; "tree (s)"; "compiled (s)"; "fused (s)";
          "no-fission fused (s)"; "domains (s)"; "speedup"; "fused speedup";
          "domains speedup"; "loops fused (pre->post fission)"; "identical" ]
  in
  List.iter
    (fun r ->
      let fused, total = coverage_counts r.er_coverage in
      let nf_fused, nf_total = coverage_counts r.er_nofission_coverage in
      add_row t
        [
          r.er_program; shape r.er_parts;
          cell_float ~decimals:3 r.er_tree_s;
          cell_float ~decimals:3 r.er_compiled_s;
          cell_float ~decimals:3 r.er_fused_s;
          cell_float ~decimals:3 r.er_nofission_fused_s;
          cell_float ~decimals:3 r.er_domains_s;
          cell_float r.er_speedup;
          cell_float r.er_fused_speedup;
          cell_float r.er_domains_speedup;
          Printf.sprintf "%d/%d -> %d/%d" nf_fused nf_total fused total;
          (if r.er_identical && r.er_domains_identical
              && r.er_fission_identical
           then "yes"
           else "NO");
        ])
    rows;
  render t

let render_engine_coverage rows =
  let b = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%s (%s): field-loop kernel coverage\n" r.er_program
           (shape r.er_parts));
      List.iter
        (fun (c : Autocfd_interp.Compile.coverage_entry) ->
          let frag =
            match c.Autocfd_interp.Compile.cov_frag with
            | None -> ""
            | Some f ->
                Printf.sprintf " #%d/%d" f.Autocfd_fortran.Ast.fi_frag
                  f.Autocfd_fortran.Ast.fi_nfrags
          in
          Buffer.add_string b
            (Printf.sprintf "  line %-4d do %-24s %s\n"
               c.Autocfd_interp.Compile.cov_line
               (String.concat "," c.Autocfd_interp.Compile.cov_vars ^ frag)
               (if c.Autocfd_interp.Compile.cov_fused then "fused"
                else
                  "fallback: "
                  ^ Autocfd_interp.Compile.reason_to_string
                      c.Autocfd_interp.Compile.cov_reason)))
        r.er_coverage;
      Buffer.add_char b '\n')
    rows;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Committed per-nest coverage manifest (COVERAGE.json): the full-size  *)
(* bundled applications' fused-kernel coverage, one row per field-loop  *)
(* nest of the inlined sequential unit.  [bench engine --check] gates   *)
(* the current build against the committed manifest so a nest that was  *)
(* fused can never silently fall back to the closure IR again.          *)
(* ------------------------------------------------------------------ *)

let coverage_apps () =
  [
    ("sprayer", Apps.Sprayer.source ());
    ("aerofoil", Apps.Aerofoil.source ());
    ("cavity", Apps.Cavity.source ());
  ]

let app_coverage ?(fission = true) src =
  let t = Driver.load ~spec:(Runspec.with_fission fission Runspec.default) src in
  Autocfd_interp.Compile.coverage
    (Autocfd_interp.Compile.of_unit ~fuse:true t.Driver.inlined)

let coverage_manifest () =
  J.Obj
    [
      ("schema", J.Str "autocfd-coverage/1");
      ( "programs",
        J.List
          (List.map
             (fun (name, src) ->
               let cov = app_coverage src in
               let fused, total = coverage_counts cov in
               J.Obj
                 [
                   ("program", J.Str name);
                   ("fused", J.Int fused);
                   ("total", J.Int total);
                   ("nests", coverage_to_json cov);
                 ])
             (coverage_apps ())) );
    ]

let manifest_programs j =
  match J.member "programs" j with
  | Some (J.List ps) ->
      List.map
        (fun p -> (js "program" p, coverage_of_json (jfield "nests" p)))
        ps
  | _ -> raise (J.Parse_error "coverage manifest: missing programs list")

let check_coverage_manifest ~committed ~current =
  let cur = manifest_programs current in
  List.concat_map
    (fun (name, bnests) ->
      match List.assoc_opt name cur with
      | None ->
          [ Printf.sprintf "%s: program missing from current coverage" name ]
      | Some cnests ->
          let key (c : Autocfd_interp.Compile.coverage_entry) =
            ( c.Autocfd_interp.Compile.cov_line,
              c.Autocfd_interp.Compile.cov_vars,
              c.Autocfd_interp.Compile.cov_frag )
          in
          List.filter_map
            (fun (b : Autocfd_interp.Compile.coverage_entry) ->
              if not b.Autocfd_interp.Compile.cov_fused then None
              else
                let where =
                  Printf.sprintf "%s: line %d do %s" name
                    b.Autocfd_interp.Compile.cov_line
                    (String.concat "," b.Autocfd_interp.Compile.cov_vars)
                in
                match List.find_opt (fun c -> key c = key b) cnests with
                | Some c when c.Autocfd_interp.Compile.cov_fused -> None
                | Some c ->
                    Some
                      (Printf.sprintf "%s was fused, now falls back (%s)"
                         where
                         (Autocfd_interp.Compile.reason_to_string
                            c.Autocfd_interp.Compile.cov_reason))
                | None ->
                    Some (Printf.sprintf "%s: fused nest disappeared" where))
            bnests)
    (manifest_programs committed)

let render_coverage_fission () =
  let b = Buffer.create 4096 in
  List.iter
    (fun (name, src) ->
      let before = app_coverage ~fission:false src in
      let after = app_coverage src in
      let bf, bt = coverage_counts before in
      let af, at = coverage_counts after in
      Buffer.add_string b
        (Printf.sprintf
           "%s: fused %d/%d without fission -> %d/%d with fission\n" name bf
           bt af at);
      let describe (c : Autocfd_interp.Compile.coverage_entry) =
        let frag =
          match c.Autocfd_interp.Compile.cov_frag with
          | None -> ""
          | Some f ->
              Printf.sprintf " #%d/%d" f.Autocfd_fortran.Ast.fi_frag
                f.Autocfd_fortran.Ast.fi_nfrags
        in
        Printf.sprintf "  line %-4d do %-24s %s\n"
          c.Autocfd_interp.Compile.cov_line
          (String.concat "," c.Autocfd_interp.Compile.cov_vars ^ frag)
          (if c.Autocfd_interp.Compile.cov_fused then "fused"
           else
             "fallback: "
             ^ Autocfd_interp.Compile.reason_to_string
                 c.Autocfd_interp.Compile.cov_reason)
      in
      List.iter (fun c -> Buffer.add_string b (describe c)) after;
      Buffer.add_char b '\n')
    (coverage_apps ());
  Buffer.contents b

let render_chaos rows =
  let open Autocfd_util.Table in
  let t =
    create
      ~title:
        "Chaos: seeded fault schedules vs reliable transport + \
         checkpoint/restart (result must stay bit-identical)"
      ~headers:
        [ "program"; "schedule"; "identical"; "overhead"; "injected";
          "retransmits"; "dups dropped"; "cksum fails"; "ckpts";
          "restarts" ]
  in
  List.iter
    (fun r ->
      let c = r.ch_counters and rs = r.ch_resilience in
      let injected =
        c.Fault.fc_drops + c.Fault.fc_duplicates + c.Fault.fc_corruptions
        + c.Fault.fc_stalls + c.Fault.fc_crashes
      in
      add_row t
        [
          r.ch_program; r.ch_schedule;
          (if r.ch_identical then "yes" else "NO");
          cell_float ~decimals:2 r.ch_overhead;
          cell_int injected;
          cell_int rs.Autocfd_interp.Spmd.rs_retransmits;
          cell_int rs.Autocfd_interp.Spmd.rs_dup_suppressed;
          cell_int rs.Autocfd_interp.Spmd.rs_checksum_failures;
          cell_int rs.Autocfd_interp.Spmd.rs_checkpoints;
          cell_int rs.Autocfd_interp.Spmd.rs_restarts;
        ])
    rows;
  render t

let render_table4 rows =
  let open Autocfd_util.Table in
  let t =
    create
      ~title:
        "Table 4: sprayer scaling with grid density, 2 x 1 partition \
         (ours vs paper)"
      ~headers:
        [ "grid"; "T1 (s)"; "T2 (s)"; "speedup"; "efficiency";
          "paper T1"; "paper T2"; "paper speedup" ]
  in
  List.iter
    (fun r ->
      let ni, nj = r.t4_grid in
      add_row t
        [
          Printf.sprintf "%d x %d" ni nj;
          cell_float ~decimals:0 r.t4_t1;
          cell_float ~decimals:0 r.t4_t2;
          cell_float r.t4_speedup;
          cell_pct r.t4_efficiency;
          cell_float ~decimals:0 r.t4_paper_t1;
          cell_float ~decimals:0 r.t4_paper_t2;
          cell_float r.t4_paper_speedup;
        ])
    rows;
  render t

let render_table5 rows =
  let open Autocfd_util.Table in
  let t =
    create
      ~title:
        "Table 5: sprayer superlinear speedup at 800 x 300 (ours vs paper)"
      ~headers:
        [ "procs"; "partition"; "time (s)"; "efficiency over 2-proc";
          "paper time (s)"; "paper efficiency" ]
  in
  List.iter
    (fun r ->
      add_row t
        [
          cell_int r.t5_procs; shape r.t5_partition;
          cell_float ~decimals:0 r.t5_time; cell_pct r.t5_eff_over_2;
          cell_float ~decimals:0 r.t5_paper_time; cell_pct r.t5_paper_eff;
        ])
    rows;
  render t

(* ------------------------------------------------------------------ *)
(* Machine-readable rendering (BENCH_tables.json)                      *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Auto-tuning                                                         *)
(* ------------------------------------------------------------------ *)

(* (program, frame-scaled source whose model predictions line up with
   the Table 2/3 rows, small instance the wide grid's Domains points
   can actually execute for a real wall clock) *)
let tune_cases =
  [
    ( "aerofoil",
      (fun () -> Apps.Aerofoil.source ~ntime:aerofoil_frames ()),
      (fun () -> Apps.Aerofoil.source ~ni:24 ~nj:12 ~nk:8 ~ntime:2 ()) );
    ( "sprayer",
      (fun () -> Apps.Sprayer.source ~ntime:sprayer_frames ()),
      (fun () -> Apps.Sprayer.source ~ni:80 ~nj:40 ~ntime:4 ()) );
  ]

(* one search point = one cached job; the serialized runspec IS the
   run-describing half of the key, so tune results survive cache reuse
   across grids and verbs and a warm re-tune is pure hits *)
let tune_point_job ~program ~source ?measure_source rspec =
  let spec_json = Runspec.to_json rspec in
  job ~table:"tune"
    ~label:
      (Printf.sprintf "%s %s" program
         (match rspec.Runspec.parts with
         | Some p -> Runspec.parts_to_string p
         | None -> Printf.sprintf "auto/%d" rspec.Runspec.nprocs))
    ~params:
      (J.Obj
         ([
            machine_key;
            ("program", J.Str program);
            ("spec", spec_json);
            ("src", J.Str (Sched.Job.digest source));
          ]
         @
         match measure_source with
         | Some m -> [ ("measure_src", J.Str (Sched.Job.digest m)) ]
         | None -> []))
    ~spec:
      (J.Obj
         ([
            ("kind", J.Str "tune");
            ("source", J.Str source);
            ("spec", spec_json);
          ]
         @
         match measure_source with
         | Some m -> [ ("measure_source", J.Str m) ]
         | None -> []))

let tune_program ?(grid = Tune.Default) ?base ?sweep ?measure_source
    ~program ~source () =
  let sw = fresh_sweep sweep in
  let t = Driver.load source in
  let jobs =
    List.map
      (fun rspec ->
        (* the measurement instance only enters the job (and its cache
           key) for points that will actually execute it *)
        let measure_source =
          match rspec.Runspec.engine with
          | Autocfd_interp.Spmd.Domains -> measure_source
          | _ -> None
        in
        tune_point_job ~program ~source ?measure_source rspec)
      (Tune.points ?base grid t)
  in
  Tune.make_result ~program ~grid
    (List.map Tune.entry_of_json (run_jobs sw ~table:"tune" jobs))

let tune_table ?(grid = Tune.Default) ?sweep () =
  let sw = fresh_sweep sweep in
  List.map
    (fun (program, source, measure) ->
      let measure_source =
        (* wall measurement is nondeterministic, so it is confined to
           the wide grid: default-grid tables stay byte-reproducible *)
        match grid with Tune.Wide -> Some (measure ()) | _ -> None
      in
      tune_program ~grid ?measure_source ~sweep:sw ~program
        ~source:(source ()) ())
    tune_cases

let tables_json ?sweep () =
  let sw = fresh_sweep sweep in
  let parts_json p =
    J.Str (String.concat "x" (Array.to_list (Array.map string_of_int p)))
  in
  let opt f = function Some v -> f v | None -> J.Null in
  let t1 =
    List.map
      (fun r ->
        J.Obj
          [
            ("program", J.Str r.t1_program);
            ("partition", parts_json r.t1_partition);
            ("before", J.Int r.t1_before);
            ("after", J.Int r.t1_after);
            ("paper_before", J.Int r.t1_paper_before);
            ("paper_after", J.Int r.t1_paper_after);
          ])
      (table1 ~sweep:sw ())
  in
  let perf rows =
    List.map
      (fun r ->
        J.Obj
          [
            ("procs", J.Int r.pr_procs);
            ("partition", opt parts_json r.pr_partition);
            ("time", J.Float r.pr_time);
            ("speedup", opt (fun s -> J.Float s) r.pr_speedup);
            ("efficiency", opt (fun e -> J.Float e) r.pr_efficiency);
            ("paper_time", J.Float r.pr_paper_time);
            ("paper_speedup", opt (fun s -> J.Float s) r.pr_paper_speedup);
          ])
      rows
  in
  let t4 =
    List.map
      (fun r ->
        let ni, nj = r.t4_grid in
        J.Obj
          [
            ("grid", J.Str (Printf.sprintf "%dx%d" ni nj));
            ("t1", J.Float r.t4_t1);
            ("t2", J.Float r.t4_t2);
            ("speedup", J.Float r.t4_speedup);
            ("efficiency", J.Float r.t4_efficiency);
            ("paper_t1", J.Float r.t4_paper_t1);
            ("paper_t2", J.Float r.t4_paper_t2);
            ("paper_speedup", J.Float r.t4_paper_speedup);
          ])
      (table4 ~sweep:sw ())
  in
  let t5 =
    List.map
      (fun r ->
        J.Obj
          [
            ("procs", J.Int r.t5_procs);
            ("partition", parts_json r.t5_partition);
            ("time", J.Float r.t5_time);
            ("eff_over_2", J.Float r.t5_eff_over_2);
            ("paper_time", J.Float r.t5_paper_time);
            ("paper_eff", J.Float r.t5_paper_eff);
          ])
      (table5 ~sweep:sw ())
  in
  let validation =
    List.map
      (fun r ->
        let ni, nj = r.vr_grid in
        J.Obj
          [
            ("grid", J.Str (Printf.sprintf "%dx%d" ni nj));
            ("partition", parts_json r.vr_parts);
            ("simulated", J.Float r.vr_simulated);
            ("modelled", J.Float r.vr_modelled);
            ("ratio", J.Float r.vr_ratio);
          ])
      (validate_model ~sweep:sw ())
  in
  let engine =
    List.map
      (fun r ->
        J.Obj
          [
            ("program", J.Str r.er_program);
            ("partition", parts_json r.er_parts);
            ("tree_s", J.Float r.er_tree_s);
            ("compiled_s", J.Float r.er_compiled_s);
            ("fused_s", J.Float r.er_fused_s);
            ("domains_s", J.Float r.er_domains_s);
            ("speedup", J.Float r.er_speedup);
            ("fused_speedup", J.Float r.er_fused_speedup);
            ("domains_speedup", J.Float r.er_domains_speedup);
            ( "loops_fused",
              J.Int (fst (coverage_counts r.er_coverage)) );
            ( "loops_total",
              J.Int (snd (coverage_counts r.er_coverage)) );
            ("nofission_fused_s", J.Float r.er_nofission_fused_s);
            ( "loops_fused_nofission",
              J.Int (fst (coverage_counts r.er_nofission_coverage)) );
            ( "loops_total_nofission",
              J.Int (snd (coverage_counts r.er_nofission_coverage)) );
            ("identical", J.Bool r.er_identical);
            ("domains_identical", J.Bool r.er_domains_identical);
            ("fission_identical", J.Bool r.er_fission_identical);
            ("cal_flop_time", J.Float r.er_calibration.M.cal_flop_time);
            ("cal_latency", J.Float r.er_calibration.M.cal_latency);
            ( "cal_bandwidth",
              J.Float
                (if Float.is_finite r.er_calibration.M.cal_bandwidth then
                   r.er_calibration.M.cal_bandwidth
                 else 0.0) );
          ])
      (engine_bench ~sweep:sw ())
  in
  let resilience =
    List.map
      (fun r ->
        let c = r.ch_counters and rs = r.ch_resilience in
        J.Obj
          [
            ("program", J.Str r.ch_program);
            ("schedule", J.Str r.ch_schedule);
            ("identical", J.Bool r.ch_identical);
            ("overhead", J.Float r.ch_overhead);
            ("drops", J.Int c.Fault.fc_drops);
            ("duplicates", J.Int c.Fault.fc_duplicates);
            ("corruptions", J.Int c.Fault.fc_corruptions);
            ("stalls", J.Int c.Fault.fc_stalls);
            ("crashes", J.Int c.Fault.fc_crashes);
            ("retransmits", J.Int rs.Autocfd_interp.Spmd.rs_retransmits);
            ( "dup_suppressed",
              J.Int rs.Autocfd_interp.Spmd.rs_dup_suppressed );
            ( "checksum_failures",
              J.Int rs.Autocfd_interp.Spmd.rs_checksum_failures );
            ("checkpoints", J.Int rs.Autocfd_interp.Spmd.rs_checkpoints);
            ("restores", J.Int rs.Autocfd_interp.Spmd.rs_restores);
            ("restarts", J.Int rs.Autocfd_interp.Spmd.rs_restarts);
          ])
      (chaos_bench ~sweep:sw ())
  in
  let tune =
    List.map Tune.result_to_json (tune_table ~sweep:sw ())
  in
  J.Obj
    [
      ("schema", J.Str "autocfd-bench/1");
      ("table1", J.List t1);
      ("table2", J.List (perf (table2 ~sweep:sw ())));
      ("table3", J.List (perf (table3 ~sweep:sw ())));
      ("table4", J.List t4);
      ("table5", J.List t5);
      ("validation", J.List validation);
      ("engine", J.List engine);
      ("resilience", J.List resilience);
      ("tune", J.List tune);
      ("sched", Report.sched_summary_json ~stale:(sweep_stale sw) (sweep_stats sw));
    ]
