(** Human-readable pre-compilation report: everything the pre-compiler
    derived for one partition choice, as markdown — the field-loop census
    with A/R/C/O types and strategies, the S_LDP pair list, the combined
    synchronization points with their aggregated halo traffic, and the
    modelled execution time on the reference cluster.

    Rendered by [autocfd analyze --report] and usable as library API for
    tooling built on top of the pre-compiler. *)

val markdown : Driver.plan -> string

val loop_census : Driver.plan -> (string * int) list
(** (classification label, count) summary over the field-loop heads:
    how many loops are block-parallel, pipelined, serial. *)

val sched_summary :
  ?stale:int -> (string * Autocfd_sched.Pool.stats) list -> string
(** Markdown summary of a sweep's scheduler activity: one row per table
    (jobs, cache hits/misses/corruption-misses, errors, batch elapsed)
    plus a per-domain utilization table aggregated over all batches (a
    domain's utilization is its busy time over the batch elapsed,
    time-weighted across batches).  The input is
    {!Experiments.sweep_stats}.  With [stale > 0]
    ({!Experiments.sweep_stale}), a footer notes how many stale cache
    temp files were swept when the cache opened. *)

val sched_summary_json :
  ?stale:int ->
  (string * Autocfd_sched.Pool.stats) list ->
  Autocfd_obs.Json.t
(** The same scheduler activity as a machine-readable document (schema
    ["autocfd-sched/1"]): per-batch job/hit/miss/corrupt/error counts,
    wall-clock elapsed, per-worker jobs, busy seconds and utilization,
    and the swept stale-temp-file count (key ["stale_cleaned"]).
    Embedded under the ["sched"] key of [run --json] and
    [tables --json] ([BENCH_tables.json]) output. *)

val fabric_summary : Autocfd_sched.Fabric.stats -> string
(** Markdown summary of a distributed sweep's robustness counters —
    requeues, retries, lease expiries, worker deaths, quarantines,
    stale results, frame-level corruption/retransmits/dups, degraded
    flag — plus a per-worker table. *)

val fabric_summary_json : Autocfd_sched.Fabric.stats -> Autocfd_obs.Json.t
(** The same fabric counters as a machine-readable document (schema
    ["autocfd-fabric/1"]). *)

val tune_summary : Tune.result list -> string
(** Markdown rendering of {!Experiments.tune_table} output: per program,
    the winning configuration one-liner plus the full Pareto-frontier
    table (time / comm / memory, with the measured Domains wall clock
    where available). *)

val tune_summary_json : Tune.result list -> Autocfd_obs.Json.t
(** The same results as a machine-readable document (schema
    ["autocfd-tune/1"]). *)
