(** Perf-regression baseline gate over [BENCH_tables.json] documents
    (schema ["autocfd-bench/1"]).

    Rows are matched by their identity fields (program, partition, procs,
    grid, fault schedule) and every gated field is compared
    direction-aware against the committed baseline: modelled times and
    post-optimization sync counts must not rise, speedups / efficiencies
    / fused-loop counts must not fall, the model-validation ratio's drift
    from 1.0 must not grow, and the engine-identity / chaos-recovery
    booleans must stay true.

    Two noise classes, two tolerances: virtual-clock numbers (tables 1-5,
    validation, resilience overhead) are deterministic and gate with the
    tight [tolerance] (default 5%); the engine benchmark's speedups are
    host wall-clock ratios and gate with the generous [wall_tolerance]
    (default 50%).  Absolute wall-clock seconds are never gated — a
    committed baseline crosses machines.  Rows or tables added since the
    baseline pass silently; rows or tables that {e disappeared} fail. *)

type failure = {
  bf_table : string;  (** e.g. ["table2"] *)
  bf_row : string;  (** identity, e.g. ["procs=4 partition=4x1x1"] *)
  bf_field : string;
  bf_reason : string;
}

val compare_tables :
  ?tolerance:float ->
  ?wall_tolerance:float ->
  baseline:Autocfd_obs.Json.t ->
  current:Autocfd_obs.Json.t ->
  unit ->
  failure list
(** Empty list = gate passes.  [bench --baseline FILE --check-regress]
    exits nonzero on a non-empty result. *)

val render_failures : failure list -> string
(** One ["REGRESSION table [row] field: reason"] line per failure plus a
    summary line; ["baseline gate: OK"] when empty. *)
