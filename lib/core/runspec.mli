(** One record for everything that parameterizes a run.

    After the engine, observability and resilience work the driver's
    entry points had sprouted seven independent optional arguments
    ([?engine ?net ?flop_time ?input ?tracer ?faults ?recovery]); a
    [Runspec.t] folds them — plus the optional reference-machine
    calibration that [run_traced] used to imply — into one value that can
    be built once, passed around, compared, and serialized.

    Since the tune work the record also carries the {e plan-time} knobs
    — [nprocs], [parts], [combine], [fission], [fuse] — so one value
    names a complete point in the configuration search space: how the
    program is partitioned and restructured as well as how it runs.
    {!Autocfd_core.Tune} enumerates the product space as a list of
    runspecs; the serialized form is the tune job key, the cache key and
    the reproduction recipe all at once.

    The canonical JSON codec ({!to_json} / {!of_json}) is load-bearing:
    it is the run-describing half of every sweep cache key
    ({!Autocfd_sched}), and it makes CLI [--json] output self-describing
    about what actually ran.  [to_json] is total and deterministic;
    [of_json (to_json s)] re-renders to the same JSON text (round-trip
    tested).  Decoding is backward compatible: the plan-time fields are
    absent in documents written by the pre-tune codec and decode to
    their [default] values.  The one lossy field is [tracer]: a live
    tracer cannot be serialized, so it encodes as the boolean ["traced"]
    and decodes to a fresh empty tracer when true. *)

type t = {
  engine : Autocfd_interp.Spmd.engine;  (** default [Fused] *)
  net : Autocfd_mpsim.Netmodel.t;  (** default [Netmodel.fast] *)
  flop_time : float;  (** seconds per flop; default [0.0] (correctness) *)
  machine : Autocfd_perfmodel.Model.machine option;
      (** when set, overrides [net] and [flop_time] with the machine's
          network and the plan-calibrated per-flop charge (what the old
          [run_traced] did); default [None] *)
  input : float list;  (** data served to READ statements *)
  tracer : Autocfd_obs.Trace.t option;
  faults : Autocfd_mpsim.Fault.plan option;
  recovery : Autocfd_interp.Spmd.recovery option;
  nprocs : int;
      (** rank count used when [parts] is [None]; default [4] *)
  parts : int array option;
      (** explicit partition shape; [None] (default) lets
          {!Driver.plan} pick {!Driver.auto_parts} for [nprocs] *)
  combine : Autocfd_syncopt.Optimizer.combine_strategy;
      (** sync-combining strategy; default [Optimal] (paper Fig. 6(b)) *)
  fission : bool;  (** run the loop-fission pass at load; default [true] *)
  fuse : bool;
      (** allow fused kernels; [false] demotes the [Fused] engine to
          [Compiled] (the other engines are unaffected); default [true] *)
}

val default : t
(** Fused engine, fast network, zero flop cost, no machine, no input, no
    tracer, no faults, no recovery — exactly what the argument defaults
    of the old entry points added up to — plus auto-partitioning over 4
    ranks, optimal sync combining, fission and fusion on. *)

val with_engine : Autocfd_interp.Spmd.engine -> t -> t
val with_net : Autocfd_mpsim.Netmodel.t -> t -> t
val with_flop_time : float -> t -> t
val with_machine : Autocfd_perfmodel.Model.machine option -> t -> t
val with_input : float list -> t -> t
val with_tracer : Autocfd_obs.Trace.t option -> t -> t
val with_faults : Autocfd_mpsim.Fault.plan option -> t -> t
val with_recovery : Autocfd_interp.Spmd.recovery option -> t -> t
val with_nprocs : int -> t -> t
val with_parts : int array option -> t -> t
val with_combine : Autocfd_syncopt.Optimizer.combine_strategy -> t -> t
val with_fission : bool -> t -> t
val with_fuse : bool -> t -> t
(** Functional setters, argument-first so they pipe:
    [Runspec.(default |> with_engine Tree |> with_input [ 2.5 ])]. *)

val parts_to_string : int array -> string
val parts_of_string : string -> int array
(** The ["2x2x1"] shape syntax shared by the JSON codec and the CLI.
    [parts_of_string] raises {!Autocfd_obs.Json.Parse_error} on a
    malformed shape. *)

val combine_to_string : Autocfd_syncopt.Optimizer.combine_strategy -> string
val combine_of_string : string -> Autocfd_syncopt.Optimizer.combine_strategy
(** ["optimal"] / ["first-fit"]. *)

val engine_to_string : Autocfd_interp.Spmd.engine -> string
val engine_of_string : string -> Autocfd_interp.Spmd.engine
(** ["tree"] / ["compiled"] / ["fused"] / ["domains"]. *)

val to_json : t -> Autocfd_obs.Json.t
(** Stable canonical encoding; fixed field set, deterministic rendering
    through {!Autocfd_obs.Json.canonical}. *)

val of_json : Autocfd_obs.Json.t -> t
(** @raise Autocfd_obs.Json.Parse_error on a malformed document. *)

val net_to_json : Autocfd_mpsim.Netmodel.t -> Autocfd_obs.Json.t
val machine_to_json : Autocfd_perfmodel.Model.machine -> Autocfd_obs.Json.t
(** Exposed for sweep cache keys that mention a machine or network
    outside a full runspec. *)
