(* Perf-regression baseline gate over BENCH_tables.json documents.

   A baseline is a committed copy of a previous bench run; the gate
   re-derives the current document and compares every gated field
   direction-aware: lower-better (modelled times, sync counts after
   optimization), higher-better (speedups, efficiencies, fused loop
   counts), closest-to-one (model-validation ratio) and must-be-true
   booleans (engine identity, chaos recovery).

   Fields fall into two noise classes.  Modelled tables (1-5), the model
   validation and the resilience overheads are computed on the virtual
   clock — deterministic given the code — so they gate with the tight
   [tolerance].  The engine benchmark's speedups are ratios of host
   wall-clock measurements and vary run to run and machine to machine, so
   they gate with the generous [wall_tolerance].  Absolute wall-clock
   seconds (engine [tree_s]/[compiled_s]/[fused_s], sweep elapsed) are
   never gated at all — a committed baseline crosses machines. *)

module J = Autocfd_obs.Json

type direction =
  | Lower_better
  | Higher_better
  | Near_one  (** drift from 1.0 must not grow beyond the allowance *)
  | Must_be_true

type noise = Deterministic | Wallclock

type rule = { ru_field : string; ru_dir : direction; ru_noise : noise }

type failure = {
  bf_table : string;
  bf_row : string;
  bf_field : string;
  bf_reason : string;
}

let r field dir noise = { ru_field = field; ru_dir = dir; ru_noise = noise }

(* (table key, identity fields, gated fields) *)
let gated_tables =
  [
    ( "table1",
      [ "program"; "partition" ],
      [ r "after" Lower_better Deterministic ] );
    ( "table2",
      [ "procs"; "partition" ],
      [
        r "time" Lower_better Deterministic;
        r "speedup" Higher_better Deterministic;
        r "efficiency" Higher_better Deterministic;
      ] );
    ( "table3",
      [ "procs"; "partition" ],
      [
        r "time" Lower_better Deterministic;
        r "speedup" Higher_better Deterministic;
        r "efficiency" Higher_better Deterministic;
      ] );
    ( "table4",
      [ "grid" ],
      [
        r "t1" Lower_better Deterministic;
        r "t2" Lower_better Deterministic;
        r "speedup" Higher_better Deterministic;
        r "efficiency" Higher_better Deterministic;
      ] );
    ( "table5",
      [ "procs"; "partition" ],
      [
        r "time" Lower_better Deterministic;
        r "eff_over_2" Higher_better Deterministic;
      ] );
    ( "validation",
      [ "grid"; "partition" ],
      [ r "ratio" Near_one Deterministic ] );
    ( "engine",
      [ "program"; "partition" ],
      [
        r "speedup" Higher_better Wallclock;
        r "fused_speedup" Higher_better Wallclock;
        r "domains_speedup" Higher_better Wallclock;
        r "loops_fused" Higher_better Deterministic;
        r "identical" Must_be_true Deterministic;
        r "domains_identical" Must_be_true Deterministic;
      ] );
    ( "resilience",
      [ "program"; "schedule" ],
      [
        r "overhead" Lower_better Deterministic;
        r "identical" Must_be_true Deterministic;
      ] );
  ]

let scalar_text = function
  | J.Str s -> s
  | J.Int i -> string_of_int i
  | J.Float f -> Printf.sprintf "%g" f
  | J.Bool b -> string_of_bool b
  | J.Null -> "null"
  | v -> J.to_string v

let row_id id_fields row =
  String.concat " "
    (List.map
       (fun f ->
         let v =
           Option.value ~default:J.Null (J.member f row)
         in
         Printf.sprintf "%s=%s" f (scalar_text v))
       id_fields)

let num = function
  | J.Int i -> Some (float_of_int i)
  | J.Float f -> Some f
  | _ -> None

let check_field ~tolerance ~wall_tolerance ~table ~row_label rule base cur =
  let tol =
    match rule.ru_noise with
    | Deterministic -> tolerance
    | Wallclock -> wall_tolerance
  in
  let fail reason =
    Some
      {
        bf_table = table;
        bf_row = row_label;
        bf_field = rule.ru_field;
        bf_reason = reason;
      }
  in
  match rule.ru_dir with
  | Must_be_true -> (
      match cur with
      | J.Bool true -> None
      | J.Bool false -> fail "expected true, got false"
      | _ -> fail "expected a boolean")
  | dir -> (
      match (num base, num cur) with
      | None, _ | _, None -> None (* null / non-numeric: not gated *)
      | Some b, Some c -> (
          match dir with
          | Lower_better ->
              let limit = b *. (1.0 +. tol) in
              if c > limit then
                fail
                  (Printf.sprintf "%g above baseline %g (limit %g, +%g%%)" c b
                     limit (100.0 *. tol))
              else None
          | Higher_better ->
              let limit = b *. (1.0 -. tol) in
              if c < limit then
                fail
                  (Printf.sprintf "%g below baseline %g (limit %g, -%g%%)" c b
                     limit (100.0 *. tol))
              else None
          | Near_one ->
              (* the drift from the ideal 1.0 may not grow beyond the
                 baseline's drift plus the allowance *)
              let limit = Float.abs (b -. 1.0) +. tol in
              if Float.abs (c -. 1.0) > limit then
                fail
                  (Printf.sprintf
                     "drift |%g - 1| exceeds baseline drift |%g - 1| + %g" c b
                     tol)
              else None
          | Must_be_true -> None))

let rows_of table_key doc =
  match J.member table_key doc with
  | Some (J.List rows) -> Some rows
  | _ -> None

let compare_tables ?(tolerance = 0.05) ?(wall_tolerance = 0.5) ~baseline
    ~current () =
  let failures = ref [] in
  let add = function Some f -> failures := f :: !failures | None -> () in
  List.iter
    (fun (table, id_fields, rules) ->
      match (rows_of table baseline, rows_of table current) with
      | None, _ ->
          (* table absent from the baseline: nothing to gate against *)
          ()
      | Some _, None ->
          add
            (Some
               {
                 bf_table = table;
                 bf_row = "-";
                 bf_field = "-";
                 bf_reason = "table missing from the current document";
               })
      | Some brows, Some crows ->
          List.iter
            (fun brow ->
              let label = row_id id_fields brow in
              match
                List.find_opt (fun crow -> row_id id_fields crow = label) crows
              with
              | None ->
                  add
                    (Some
                       {
                         bf_table = table;
                         bf_row = label;
                         bf_field = "-";
                         bf_reason = "row missing from the current document";
                       })
              | Some crow ->
                  List.iter
                    (fun rule ->
                      match
                        ( J.member rule.ru_field brow,
                          J.member rule.ru_field crow )
                      with
                      | Some bv, Some cv ->
                          add
                            (check_field ~tolerance ~wall_tolerance ~table
                               ~row_label:label rule bv cv)
                      | _ -> () (* field absent on either side: not gated *))
                    rules)
            brows)
    gated_tables;
  List.rev !failures

let render_failures = function
  | [] -> "baseline gate: OK (no regressions)\n"
  | fs ->
      let b = Buffer.create 256 in
      List.iter
        (fun f ->
          Buffer.add_string b
            (Printf.sprintf "REGRESSION %s [%s] %s: %s\n" f.bf_table f.bf_row
               f.bf_field f.bf_reason))
        fs;
      Buffer.add_string b
        (Printf.sprintf "baseline gate: %d regression%s\n" (List.length fs)
           (if List.length fs = 1 then "" else "s"));
      Buffer.contents b
