module A = Autocfd_analysis
module S = Autocfd_syncopt
module P = Autocfd_partition
module M = Autocfd_perfmodel.Model
module Obs = Autocfd_obs

let strategy_label = function
  | A.Mirror.Serial -> "serial"
  | A.Mirror.Block -> "block"
  | A.Mirror.Pipeline _ -> "pipeline"

let loop_census (plan : Driver.plan) =
  let counts = Hashtbl.create 4 in
  List.iter
    (fun (_, strat) ->
      let k = strategy_label strat in
      Hashtbl.replace counts k
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    plan.Driver.strategies;
  List.filter_map
    (fun k ->
      Option.map (fun v -> (k, v)) (Hashtbl.find_opt counts k))
    [ "block"; "pipeline"; "serial" ]

let shape parts =
  String.concat " x " (Array.to_list (Array.map string_of_int parts))

let rec markdown (plan : Driver.plan) =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let gi = plan.Driver.source.Driver.gi in
  let topo = plan.Driver.topo in
  line "# Auto-CFD pre-compilation report";
  line "";
  line "## Problem";
  line "";
  line "- flow field: `%s` (%s points)"
    (String.concat " x "
       (Array.to_list (Array.map string_of_int (P.Topology.grid topo))))
    (string_of_int (Array.fold_left ( * ) 1 (P.Topology.grid topo)));
  line "- status arrays: %s"
    (String.concat ", "
       (List.map
          (fun (sa : A.Grid_info.status_array) -> "`" ^ sa.A.Grid_info.sa_name ^ "`")
          gi.A.Grid_info.status));
  line "- partition: `%s` (%d subtasks)" (shape (P.Topology.parts topo))
    (P.Topology.nranks topo);
  line "";
  line "## Field loops";
  line "";
  line "| line | loop | types | strategy |";
  line "|---|---|---|---|";
  List.iter2
    (fun (s : A.Field_loop.summary) (_, strat) ->
      let types =
        String.concat " "
          (List.map
             (fun (v, _) ->
               Printf.sprintf "%s:%s" v
                 (match A.Field_loop.ltype s v with
                 | A.Field_loop.A -> "A"
                 | A.Field_loop.R -> "R"
                 | A.Field_loop.C -> "C"
                 | A.Field_loop.O -> "O"))
             s.A.Field_loop.fs_uses)
      in
      let strat_str =
        match strat with
        | A.Mirror.Serial -> "serial (replicated + allgather)"
        | A.Mirror.Block -> "block-parallel"
        | A.Mirror.Pipeline dims ->
            Printf.sprintf "mirror-image pipeline {%s}"
              (String.concat ","
                 (List.map (fun (d, _) -> string_of_int d) dims))
      in
      line "| %d | `do %s` | %s | %s |" s.A.Field_loop.fs_loop.A.Loops.lp_line
        s.A.Field_loop.fs_loop.A.Loops.lp_var types strat_str)
    plan.Driver.summaries plan.Driver.strategies;
  line "";
  let census = loop_census plan in
  line "Strategy census: %s."
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%d %s" v k) census));
  line "";
  line "## Kernel coverage (fused execution tier)";
  line "";
  let cov =
    Autocfd_interp.Compile.coverage
      (Autocfd_interp.Compile.of_unit ~fuse:true plan.Driver.spmd)
  in
  let fused =
    List.length
      (List.filter
         (fun (c : Autocfd_interp.Compile.coverage_entry) ->
           c.Autocfd_interp.Compile.cov_fused)
         cov)
  in
  line
    "%d of %d field-loop nests of the SPMD unit compile to fused kernels \
     (bounds hoisted, subscripts proven in range once, flops charged in \
     one batched update); the rest run on the closure IR."
    fused (List.length cov);
  line "";
  line "| line | loop | kernel |";
  line "|---|---|---|";
  List.iter
    (fun (c : Autocfd_interp.Compile.coverage_entry) ->
      line "| %d | `do %s` | %s |" c.Autocfd_interp.Compile.cov_line
        (String.concat "," c.Autocfd_interp.Compile.cov_vars)
        (if c.Autocfd_interp.Compile.cov_fused then "fused"
         else "fallback: " ^ Autocfd_interp.Compile.reason_to_string c.Autocfd_interp.Compile.cov_reason))
    cov;
  line "";
  line "## Dependence pairs (S_LDP)";
  line "";
  line "- %d dependent pairs (%d self-dependent)"
    (List.length plan.Driver.sldp.A.Sldp.pairs)
    (List.length (A.Sldp.self_pairs plan.Driver.sldp));
  line "- %d while-style (backward GOTO) carrying loops recognized"
    (List.length plan.Driver.sldp.A.Sldp.virtual_spans);
  List.iter
    (fun p ->
      line "- %s" (Format.asprintf "%a" A.Sldp.pp_pair p))
    plan.Driver.sldp.A.Sldp.pairs;
  line "";
  line "## Synchronization optimization";
  line "";
  line
    "- %d synchronization points before optimization, **%d after** \
     (%.0f%% reduction)"
    plan.Driver.opt.S.Optimizer.before plan.Driver.opt.S.Optimizer.after
    (100. *. S.Optimizer.reduction_pct plan.Driver.opt);
  line "";
  line "| point | regions merged | halo traffic |";
  line "|---|---|---|";
  List.iteri
    (fun i (g : S.Combine.group) ->
      let traffic =
        String.concat ", "
          (List.map
             (fun (t : Autocfd_fortran.Ast.transfer) ->
               Printf.sprintf "%s(dim %d, %s, depth %d)"
                 t.Autocfd_fortran.Ast.xfer_array t.Autocfd_fortran.Ast.xfer_dim
                 (match t.Autocfd_fortran.Ast.xfer_dir with
                 | Autocfd_fortran.Ast.Dplus -> "+"
                 | Autocfd_fortran.Ast.Dminus -> "-")
                 t.Autocfd_fortran.Ast.xfer_depth)
             g.S.Combine.gr_transfers)
      in
      line "| #%d | %d | %s |" (i + 1)
        (List.length g.S.Combine.gr_regions)
        traffic)
    plan.Driver.opt.S.Optimizer.groups;
  line "";
  line "## Modelled execution (reference 2003-class cluster)";
  line "";
  let pred =
    M.predict_parallel M.pentium_cluster ~gi ~topo plan.Driver.spmd
  in
  let seq =
    M.predict_sequential M.pentium_cluster ~gi
      plan.Driver.source.Driver.inlined
  in
  line "| quantity | value |";
  line "|---|---|";
  line "| sequential time | %.1f s |" seq.M.time;
  line "| parallel time | %.1f s |" pred.M.time;
  line "| speedup | %.2f |" (seq.M.time /. pred.M.time);
  line "| efficiency | %.0f%% |"
    (100. *. seq.M.time /. pred.M.time
    /. float_of_int (P.Topology.nranks topo));
  line "| block compute | %.1f s |" pred.M.compute_time;
  line "| pipeline (incl. wavefront stalls) | %.1f s |" pred.M.pipeline_time;
  line "| replicated (serial) compute | %.1f s |" pred.M.serial_time;
  line "| communication | %.1f s |" pred.M.comm_time;
  line "| reductions/broadcasts | %.1f s |" pred.M.reduce_time;
  line "| per-rank working set | %.2f MB |" (pred.M.working_set /. 1e6);
  line "| memory slowdown factor | %.2f |" pred.M.slowdown;
  line "";
  measured_section b plan;
  Buffer.contents b

and measured_section b (plan : Driver.plan) =
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt
  in
  line "## Measured execution (simulated cluster)";
  line "";
  let run_traced plan =
    let tracer = Obs.Trace.create () in
    let result =
      Driver.run
        ~spec:
          Runspec.(
            default
            |> with_machine (Some M.pentium_cluster)
            |> with_tracer (Some tracer))
        plan
    in
    (result, tracer)
  in
  match run_traced plan with
  | exception e ->
      line "_not measured: execution failed (%s)_"
        (Printexc.to_string e)
  | result, tracer ->
      let stats = result.Autocfd_interp.Spmd.stats in
      let m = Obs.Metrics.of_trace tracer in
      line
        "Execution-driven timing (calibrated per-flop charge + network \
         model): **%.2f s** simulated wall clock, %d messages, %d bytes, \
         %d collectives."
        stats.Autocfd_mpsim.Sim.elapsed stats.Autocfd_mpsim.Sim.messages
        stats.Autocfd_mpsim.Sim.bytes stats.Autocfd_mpsim.Sim.collectives;
      line "";
      line "### Per-rank time breakdown";
      line "";
      line "| rank | compute (s) | comm (s) | blocked (s) | finish (s) | blocked %% |";
      line "|---|---|---|---|---|---|";
      Array.iter
        (fun (r : Obs.Metrics.rank_row) ->
          line "| %d | %.3f | %.3f | %.3f | %.3f | %.1f%% |"
            r.Obs.Metrics.rr_rank r.Obs.Metrics.rr_compute
            r.Obs.Metrics.rr_comm r.Obs.Metrics.rr_blocked
            r.Obs.Metrics.rr_finish
            (if r.Obs.Metrics.rr_finish > 0.0 then
               100. *. r.Obs.Metrics.rr_blocked /. r.Obs.Metrics.rr_finish
             else 0.0))
        m.Obs.Metrics.ranks;
      line "";
      line "### Per-sync-point traffic";
      line "";
      line
        "| # | sync point | loop | entries | messages | bytes | comm (s) | \
         blocked (s) |";
      line "|---|---|---|---|---|---|---|---|";
      List.iter
        (fun (s : Obs.Metrics.sync_row) ->
          line "| %d | `%s` | %s | %d | %d | %d | %.3f | %.3f |"
            s.Obs.Metrics.sr_id s.Obs.Metrics.sr_label
            (match s.Obs.Metrics.sr_loop with
            | Some v -> "`do " ^ v ^ "`"
            | None -> "—")
            s.Obs.Metrics.sr_executions s.Obs.Metrics.sr_messages
            s.Obs.Metrics.sr_bytes s.Obs.Metrics.sr_comm_time
            s.Obs.Metrics.sr_blocked_time)
        m.Obs.Metrics.syncs

let sched_summary ?(stale = 0) stats =
  let module Pool = Autocfd_sched.Pool in
  let b = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt
  in
  line "## Sweep scheduler";
  line "";
  line "| table | jobs | hits | misses | corrupt | errors | elapsed (s) |";
  line "|---|---|---|---|---|---|---|";
  List.iter
    (fun (table, (s : Pool.stats)) ->
      line "| %s | %d | %d | %d | %d | %d | %.3f |" table s.Pool.ps_jobs
        s.Pool.ps_hits s.Pool.ps_misses s.Pool.ps_corrupt s.Pool.ps_errors
        s.Pool.ps_elapsed)
    stats;
  line "";
  let nworkers =
    List.fold_left
      (fun acc (_, (s : Pool.stats)) ->
        max acc (Array.length s.Pool.ps_busy))
      0 stats
  in
  if nworkers > 0 then begin
    line "### Per-domain utilization";
    line "";
    line "| domain | jobs handled | busy (s) | utilization |";
    line "|---|---|---|---|";
    for w = 0 to nworkers - 1 do
      let handled, busy, util_num, util_den =
        List.fold_left
          (fun (h, bs, un, ud) (_, (s : Pool.stats)) ->
            if w < Array.length s.Pool.ps_busy then
              ( h + s.Pool.ps_ran.(w),
                bs +. s.Pool.ps_busy.(w),
                un +. (Pool.utilization s w *. s.Pool.ps_elapsed),
                ud +. s.Pool.ps_elapsed )
            else (h, bs, un, ud))
          (0, 0.0, 0.0, 0.0) stats
      in
      let util = if util_den > 0.0 then util_num /. util_den else 0.0 in
      line "| %d | %d | %.3f | %.0f%% |" w handled busy (100. *. util)
    done
  end;
  if stale > 0 then begin
    line "";
    line "Swept %d stale cache temp file%s on open." stale
      (if stale = 1 then "" else "s")
  end;
  Buffer.contents b

let sched_summary_json ?(stale = 0) stats =
  let module Pool = Autocfd_sched.Pool in
  let module J = Obs.Json in
  let batch_json (table, (s : Pool.stats)) =
    J.Obj
      [
        ("table", J.Str table);
        ("jobs", J.Int s.Pool.ps_jobs);
        ("hits", J.Int s.Pool.ps_hits);
        ("misses", J.Int s.Pool.ps_misses);
        ("corrupt", J.Int s.Pool.ps_corrupt);
        ("errors", J.Int s.Pool.ps_errors);
        ("elapsed_wall", J.Float s.Pool.ps_elapsed);
        ("workers",
         J.List
           (List.init (Array.length s.Pool.ps_busy) (fun w ->
                J.Obj
                  [
                    ("worker", J.Int w);
                    ("jobs", J.Int s.Pool.ps_ran.(w));
                    ("busy_wall", J.Float s.Pool.ps_busy.(w));
                    ("utilization", J.Float (Pool.utilization s w));
                  ])));
      ]
  in
  J.Obj
    [
      ("schema", J.Str "autocfd-sched/1");
      ("stale_cleaned", J.Int stale);
      ("batches", J.List (List.map batch_json stats));
    ]

let fabric_summary (fs : Autocfd_sched.Fabric.stats) =
  let module Fabric = Autocfd_sched.Fabric in
  let b = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt
  in
  line "## Distributed fabric";
  line "";
  line
    "| requeues | retries | lease expiries | worker deaths | quarantined \
     | stale results | corrupt frames | retransmits | dups dropped |";
  line "|---|---|---|---|---|---|---|---|---|";
  line "| %d | %d | %d | %d | %d | %d | %d | %d | %d |" fs.Fabric.fs_requeues
    fs.Fabric.fs_retries fs.Fabric.fs_lease_expiries fs.Fabric.fs_worker_deaths
    fs.Fabric.fs_quarantined fs.Fabric.fs_stale_results
    fs.Fabric.fs_corrupt_frames fs.Fabric.fs_retransmits
    fs.Fabric.fs_dup_suppressed;
  line "";
  if fs.Fabric.fs_degraded then
    line "Degraded: at least one batch fell back to the in-process pool.";
  if fs.Fabric.fs_workers <> [] then begin
    line "### Workers";
    line "";
    line "| worker | pid | alive | leases | done | retransmits | dups | corrupt |";
    line "|---|---|---|---|---|---|---|---|";
    List.iter
      (fun (w : Fabric.worker_stats) ->
        line "| %s | %s | %s | %d | %d | %d | %d | %d |" w.Fabric.ws_id
          (match w.Fabric.ws_pid with Some p -> string_of_int p | None -> "—")
          (if w.Fabric.ws_alive then "yes" else "no")
          w.Fabric.ws_leases w.Fabric.ws_done w.Fabric.ws_retransmits
          w.Fabric.ws_dup_suppressed w.Fabric.ws_corrupt)
      fs.Fabric.fs_workers
  end;
  Buffer.contents b

let fabric_summary_json (fs : Autocfd_sched.Fabric.stats) =
  let module Fabric = Autocfd_sched.Fabric in
  let module J = Obs.Json in
  J.Obj
    [
      ("schema", J.Str "autocfd-fabric/1");
      ("requeues", J.Int fs.Fabric.fs_requeues);
      ("retries", J.Int fs.Fabric.fs_retries);
      ("lease_expiries", J.Int fs.Fabric.fs_lease_expiries);
      ("worker_deaths", J.Int fs.Fabric.fs_worker_deaths);
      ("quarantined", J.Int fs.Fabric.fs_quarantined);
      ("stale_results", J.Int fs.Fabric.fs_stale_results);
      ("corrupt_frames", J.Int fs.Fabric.fs_corrupt_frames);
      ("retransmits", J.Int fs.Fabric.fs_retransmits);
      ("dup_suppressed", J.Int fs.Fabric.fs_dup_suppressed);
      ("degraded", J.Bool fs.Fabric.fs_degraded);
      ("workers",
       J.List
         (List.map
            (fun (w : Fabric.worker_stats) ->
              J.Obj
                [
                  ("id", J.Str w.Fabric.ws_id);
                  ("pid",
                   match w.Fabric.ws_pid with
                   | Some p -> J.Int p
                   | None -> J.Null);
                  ("alive", J.Bool w.Fabric.ws_alive);
                  ("leases", J.Int w.Fabric.ws_leases);
                  ("done", J.Int w.Fabric.ws_done);
                  ("retransmits", J.Int w.Fabric.ws_retransmits);
                  ("dup_suppressed", J.Int w.Fabric.ws_dup_suppressed);
                  ("corrupt", J.Int w.Fabric.ws_corrupt);
                ])
            fs.Fabric.fs_workers));
    ]

let tune_summary results =
  let b = Buffer.create 1024 in
  Buffer.add_string b "## Auto-tuning\n\n";
  List.iter
    (fun (r : Tune.result) ->
      let w = r.Tune.tr_winner in
      Buffer.add_string b
        (Printf.sprintf
           "### %s (%s grid)\n\n\
            %d configurations evaluated, %d on the Pareto frontier.  \
            Winner: `%s` over %d ranks (%s combining, fission %s, %s \
            engine) at %.1f modelled seconds.\n\n"
           r.Tune.tr_program
           (Tune.grid_to_string r.Tune.tr_grid)
           r.Tune.tr_total
           (List.length r.Tune.tr_frontier)
           (Runspec.parts_to_string w.Tune.te_parts)
           (Array.fold_left ( * ) 1 w.Tune.te_parts)
           (Runspec.combine_to_string w.Tune.te_spec.Runspec.combine)
           (if w.Tune.te_spec.Runspec.fission then "on" else "off")
           (Runspec.engine_to_string w.Tune.te_spec.Runspec.engine)
           w.Tune.te_metrics.Tune.tm_time);
      Buffer.add_string b
        "| procs | partition | combine | fission | engine | time (s) | \
         comm (KB) | mem/rank (KB) | domains wall (s) |\n\
         |---|---|---|---|---|---|---|---|---|\n";
      List.iter
        (fun (e : Tune.entry) ->
          let s = e.Tune.te_spec in
          Buffer.add_string b
            (Printf.sprintf "| %d | %s | %s | %s | %s | %.1f | %.0f | %.0f | %s |\n"
               (Array.fold_left ( * ) 1 e.Tune.te_parts)
               (Runspec.parts_to_string e.Tune.te_parts)
               (Runspec.combine_to_string s.Runspec.combine)
               (if s.Runspec.fission then "on" else "off")
               (Runspec.engine_to_string s.Runspec.engine
               ^ if s.Runspec.fuse then "" else "-nofuse")
               e.Tune.te_metrics.Tune.tm_time
               (e.Tune.te_metrics.Tune.tm_comm /. 1024.)
               (e.Tune.te_metrics.Tune.tm_mem /. 1024.)
               (match e.Tune.te_metrics.Tune.tm_wall with
               | Some wall -> Printf.sprintf "%.3f" wall
               | None -> "-")))
        r.Tune.tr_frontier;
      Buffer.add_char b '\n')
    results;
  Buffer.contents b

let tune_summary_json results =
  let module J = Obs.Json in
  J.Obj
    [
      ("schema", J.Str "autocfd-tune/1");
      ("programs", J.List (List.map Tune.result_to_json results));
    ]
