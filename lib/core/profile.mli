(** Kernel-level profiler over one traced run.

    [run] executes a plan as a single uncached job through the sweep pool
    with a shared tracer, so the simulator's virtual-clock events and the
    scheduler's wall-clock events land in one trace; the derived profile
    attributes virtual compute time to named field-loop nests (the
    {!Autocfd_obs.Trace.Kernel} summaries emitted by the fused engine) and
    renders the [autocfd profile] verb's output: hot-nest table,
    per-sync-point latency histograms and pool utilization. *)

type t = {
  pf_label : string;
  pf_trace : Autocfd_obs.Trace.t;
  pf_metrics : Autocfd_obs.Metrics.t;
  pf_pool : Autocfd_sched.Pool.stats;
  pf_flops : float;  (** total executed flops, summed over ranks *)
}

val run : ?spec:Runspec.t -> ?label:string -> Driver.plan -> t
(** Run the plan under [spec] (default {!Runspec.default}; its tracer is
    reused when set, otherwise a fresh one is created) and derive the
    profile.  Pass a spec with [machine] set to profile against the
    calibrated reference cluster rather than zero-cost flops.  Pass the
    {e same} spec the plan was built with ({!Driver.plan}): the spec is
    one value naming the whole configuration point, and the profile job
    key serializes it as the record of what was measured.
    @raise Failure if the underlying run raises. *)

val compute_seconds : t -> float
(** Total virtual compute seconds, summed over ranks. *)

val attributed_seconds : t -> float
(** Virtual compute seconds attributed to named nests (sum of kernel
    self times). *)

val coverage : t -> float
(** [attributed_seconds /. compute_seconds]; when the run charged no
    compute time (zero [flop_time]) the flop fraction is used instead,
    and 1.0 when no flops executed at all.  The [profile --check] gate
    requires this to be at least its threshold (default 0.95). *)

type nest_group = {
  ng_nest : Autocfd_obs.Metrics.kernel_row;
      (** the source nest — when the loop-fission pass split it, a
          synthesized aggregate over the fragments (self time / flops /
          bytes summed, calls the max over fragments) *)
  ng_frags : Autocfd_obs.Metrics.kernel_row list;
      (** the fission fragments in fragment order, [[]] when unsplit *)
}
(** One source field-loop nest of the hot-nest table.  Fragments the
    loop-fission pass split out of a nest are grouped under their source
    nest so the table ranks what the programmer wrote; the [render]ed
    table indents them beneath the aggregate row. *)

val nest_groups : t -> nest_group list
(** Every source nest by descending (aggregate) self time. *)

val hot_nests : ?top:int -> t -> nest_group list
(** The [top] (default 10) source nests by descending self time. *)

val render : ?top:int -> t -> string
(** Human-readable profile: run summary, hot-nest table (self time, share
    of compute, flop and byte throughput), per-sync-point latency
    histograms (log₂ buckets) and the scheduler utilization table. *)

val to_json : ?top:int -> t -> Autocfd_obs.Json.t
(** Machine-readable profile (schema ["autocfd-profile/1"]): the same
    sections plus the full embedded metrics document. *)

val registry : t -> Autocfd_obs.Registry.t
(** A metrics registry fed from the trace ({!Autocfd_obs.Registry.observe_trace})
    plus the pool's stats: cache-probe outcome counters (hit / miss /
    corruption-miss), a queue-wait histogram and per-worker utilization
    gauges. *)

val to_prometheus : t -> string
(** [Registry.to_prometheus (registry t)] — the [profile --prom] body. *)
