(** Reproduction harness for every table in the paper's evaluation (§6).

    Each [tableN] function regenerates the corresponding table: the same
    rows, same columns, with our measured/modelled values.  The paper's
    published values are embedded as [paper_*] constants so benchmarks and
    EXPERIMENTS.md can print the side-by-side comparison.  Timing tables
    use the {!Autocfd_perfmodel.Model} cluster model (the substitute for
    the paper's 6-Pentium testbed); Table 1 is a pure static analysis of
    the generated case-study programs.

    Every table enumerates its rows as {!Autocfd_sched.Job}s and executes
    them through {!Autocfd_sched.Pool}, so a single {!sweep} can spread
    the whole evaluation across a multicore worker pool and memoize
    completed rows in a content-addressed {!Autocfd_sched.Cache}.  Rows
    come back in submission order and are decoded from the same JSON the
    cache stores, so serial, parallel and warm-cache sweeps all render
    byte-identically. *)

type sweep
(** One sweep context: worker count, optional result cache, optional
    tracer for scheduler events, and the accumulated per-table pool
    statistics. *)

val sweep :
  ?jobs:int ->
  ?cache:Autocfd_sched.Cache.t ->
  ?tracer:Autocfd_obs.Trace.t ->
  ?fabric:Autocfd_sched.Fabric.t ->
  unit ->
  sweep
(** A sweep running [jobs] worker domains (default 1) with an optional
    persistent result cache.  With [fabric] set, jobs are dispatched
    over the distributed {!Autocfd_sched.Fabric} instead of the local
    pool (and [jobs] is ignored).  Passing the same [sweep] to several
    tables accumulates their pool statistics in call order. *)

val sweep_stats : sweep -> (string * Autocfd_sched.Pool.stats) list
(** Per-table scheduler statistics for every [run] the sweep has
    performed so far, in call order (table name, pool stats). *)

val sweep_stale : sweep -> int
(** Stale cache temp files swept when this sweep's cache was opened
    (see {!Autocfd_sched.Cache.stale_cleaned}); 0 without a cache. *)

val exec_spec : Autocfd_obs.Json.t -> Autocfd_obs.Json.t
(** Execute one self-contained job spec (the [jb_spec] attached to
    every sweep job) and return its result JSON.  This is the resolver a
    fabric worker runs: each table's job body lives here, keyed on the
    spec's ["kind"], so local and remote execution share one code path.
    @raise Autocfd_obs.Json.Parse_error on an unknown or malformed
    spec. *)

type t1_row = {
  t1_program : string;
  t1_partition : int array;
  t1_before : int;
  t1_after : int;
  t1_paper_before : int;
  t1_paper_after : int;
}

val table1 : ?sweep:sweep -> unit -> t1_row list
(** Synchronization optimization on both case studies (paper Table 1). *)

type perf_row = {
  pr_procs : int;
  pr_partition : int array option;  (** [None] for the uniprocessor row *)
  pr_time : float;
  pr_speedup : float option;
  pr_efficiency : float option;
  pr_paper_time : float;
  pr_paper_speedup : float option;
}

val table2 : ?sweep:sweep -> unit -> perf_row list
(** Aerofoil overall performance, 99 x 41 x 13 (paper Table 2). *)

val table3 : ?sweep:sweep -> unit -> perf_row list
(** Sprayer overall performance, 300 x 100 (paper Table 3). *)

type t4_row = {
  t4_grid : int * int;
  t4_t1 : float;
  t4_t2 : float;
  t4_speedup : float;
  t4_efficiency : float;
  t4_paper_t1 : float;
  t4_paper_t2 : float;
  t4_paper_speedup : float;
}

val table4 : ?sweep:sweep -> unit -> t4_row list
(** Sprayer 2-processor scaling with grid density (paper Table 4). *)

type t5_row = {
  t5_procs : int;
  t5_partition : int array;
  t5_time : float;
  t5_eff_over_2 : float;  (** parallel efficiency over the 2-proc system *)
  t5_paper_time : float;
  t5_paper_eff : float;
}

val table5 : ?sweep:sweep -> unit -> t5_row list
(** Sprayer superlinear speedup at 800 x 300 (paper Table 5). *)

val render_table1 : t1_row list -> string
val render_perf : title:string -> perf_row list -> string
val render_table4 : t4_row list -> string
val render_table5 : t5_row list -> string

type validation_row = {
  vr_grid : int * int;
  vr_parts : int array;
  vr_simulated : float;
      (** wall-clock from actually executing the SPMD program on the
          simulated cluster (virtual clock: per-flop compute charges +
          the network model) *)
  vr_modelled : float;  (** the analytic model's prediction *)
  vr_ratio : float;  (** modelled / simulated *)
}

val validate_model : ?sweep:sweep -> unit -> validation_row list
(** Cross-validation of the analytic performance model against
    execution-driven timing: small sprayer instances are {e run} on the
    simulated cluster with per-flop time charging, and the same instances
    are {e predicted} by the analytic model.  The two derive wall-clock by
    completely different means (event-driven blocking vs static census),
    so agreement within a small factor validates both. *)

val render_validation : validation_row list -> string

type engine_row = {
  er_program : string;
  er_parts : int array;
  er_tree_s : float;  (** mean wall-clock of a tree-walking SPMD run *)
  er_compiled_s : float;  (** same run on the compiled closure IR *)
  er_fused_s : float;  (** same run with the fused-kernel tier enabled *)
  er_speedup : float;  (** tree / compiled *)
  er_fused_speedup : float;  (** tree / fused *)
  er_identical : bool;
      (** gathered arrays, scalars, WRITE output, per-rank flop counts and
          simulator stats all bit-identical across the three engines *)
  er_coverage : Autocfd_interp.Compile.coverage_entry list;
      (** static fusibility of every field-loop nest of the SPMD unit *)
  er_nofission_fused_s : float;
      (** fused-engine wall-clock of the same run with the loop-fission
          pass disabled — the before side of the fission columns *)
  er_fission_identical : bool;
      (** program state (gathered arrays, scalars, WRITE output, flop
          counts) bit-identical with fission on and off *)
  er_nofission_coverage : Autocfd_interp.Compile.coverage_entry list;
      (** static fusibility with the loop-fission pass disabled *)
  er_domains_s : float;
      (** mean wall-clock of the real shared-memory Domains engine (one
          OCaml 5 domain per rank) on a larger instance of the same
          program, where per-barrier compute dominates spawn cost *)
  er_domains_speedup : float;
      (** fused wall / domains wall on that larger instance — real
          parallel speedup over the single-threaded fused simulation *)
  er_domains_identical : bool;
      (** gathered arrays, scalars, WRITE output and per-rank flop counts
          bit-identical to the simulator (stats excluded: Domains stats
          are measured wall clock) *)
  er_calibration : Autocfd_perfmodel.Model.calibration;
      (** model primitives fitted from the Domains run's measurements *)
}

val engine_bench : ?sweep:sweep -> unit -> engine_row list
(** Head-to-head of the four execution engines on a small aerofoil and
    sprayer instance: each case is executed on the simulated cluster with
    every engine (and for real on OCaml 5 domains), results are checked
    for bit-identity, then each engine is timed over repeated runs.  Note
    that the measured wall-clock seconds are part of the cached row, so a
    warm-cache sweep reports the timings of the run that populated the
    cache. *)

val render_engine : engine_row list -> string

val render_engine_coverage : engine_row list -> string
(** Per-loop kernel coverage detail: one line per field-loop nest of each
    benchmarked SPMD unit, saying whether it fused and, if not, why it
    fell back to the closure IR. *)

val coverage_to_json :
  Autocfd_interp.Compile.coverage_entry list -> Autocfd_obs.Json.t
(** Serialize per-nest coverage rows (line, vars, fused, reason prose,
    loop-fission provenance as [frag]/[nfrags] ints, 0 = unsplit). *)

val coverage_of_json :
  Autocfd_obs.Json.t -> Autocfd_interp.Compile.coverage_entry list
(** Inverse of {!coverage_to_json}; rows without [frag]/[nfrags] (written
    before the loop-fission pass existed) parse as unsplit.
    @raise Autocfd_obs.Json.Parse_error on malformed rows. *)

val coverage_manifest : unit -> Autocfd_obs.Json.t
(** Per-nest fused-kernel coverage of the full-size bundled applications
    (sequential inlined unit, loop fission on) — the document committed
    as [COVERAGE.json] (schema ["autocfd-coverage/1"]). *)

val check_coverage_manifest :
  committed:Autocfd_obs.Json.t -> current:Autocfd_obs.Json.t -> string list
(** Coverage regressions of [current] against the [committed] manifest:
    one message per nest that was fused in the committed manifest but is
    now missing or falls back to the closure IR, and per program that
    disappeared entirely.  Empty means the gate passes; new nests and
    newly-fused nests are never regressions.
    @raise Autocfd_obs.Json.Parse_error on a malformed manifest. *)

val render_coverage_fission : unit -> string
(** Human-readable before/after loop-fission coverage of the bundled
    applications: per program, fused counts with the pass disabled and
    enabled, then one line per nest (fission fragments annotated
    [#i/n]) — the [bench coverage] verb and CI coverage artifact. *)

type chaos_row = {
  ch_program : string;
  ch_schedule : string;  (** human label of the fault schedule *)
  ch_identical : bool;
      (** gathered arrays, WRITE output and final scalars bit-equal to
          the fault-free run *)
  ch_overhead : float;  (** faulty / fault-free virtual elapsed time *)
  ch_resilience : Autocfd_interp.Spmd.resilience;
  ch_counters : Autocfd_mpsim.Fault.counters;  (** faults injected *)
}

val chaos_bench : ?seed:int -> ?sweep:sweep -> unit -> chaos_row list
(** The resilience harness: a small sprayer (2 x 2) and aerofoil
    (2 x 2 x 1) instance are first run fault-free, then re-run under six
    seeded fault schedules each (loss, duplication+corruption,
    jitter+degraded link, a straggler, a crash with checkpoint/restart,
    and all combined), with the reliable transport and coordinated
    checkpointing enabled.  Every schedule is recoverable, so every row
    must report [ch_identical = true]; [ch_overhead] is the price paid in
    simulated wall-clock. *)

val render_chaos : chaos_row list -> string

val tune_program :
  ?grid:Tune.grid ->
  ?base:Runspec.t ->
  ?sweep:sweep ->
  ?measure_source:string ->
  program:string ->
  source:string ->
  unit ->
  Tune.result
(** Auto-tune one program: enumerate {!Tune.points} for [grid], dispatch
    each point as a cached job through the sweep (one job per point; the
    serialized runspec is the run-describing half of the cache key, so a
    warm re-tune is pure hits), and prune to the Pareto frontier.
    [base] seeds the non-searched runspec fields; [measure_source] is
    the small instance Domains-engine points execute for a real wall
    clock (it only enters the job — and its cache key — for those
    points). *)

val tune_table : ?grid:Tune.grid -> ?sweep:sweep -> unit -> Tune.result list
(** {!tune_program} over both paper case studies on their frame-scaled
    sources (so tuned times line up with the Table 2/3 rows).  Wall
    measurement is confined to the [Wide] grid; [Narrow] and [Default]
    results are fully deterministic and byte-reproducible. *)

val machine : Autocfd_perfmodel.Model.machine
(** The calibrated cluster model used by every timing table. *)

val aerofoil_frames : int
val sprayer_frames : int
(** Frame counts used to scale modelled runs to the paper's wall-clock
    magnitudes (the paper does not state its iteration counts). *)

val tables_json : ?sweep:sweep -> unit -> Autocfd_obs.Json.t
(** Every table (1-5), the model-validation rows, the execution-engine
    benchmark (key ["engine"]), the chaos/resilience benchmark (key
    ["resilience"]), the default-grid auto-tune results (key ["tune"],
    {!Tune.result_to_json} per program) and the sweep's scheduler
    statistics (key ["sched"],
    {!Report.sched_summary_json}) as one JSON document (schema
    ["autocfd-bench/1"]) — the diffable perf trajectory written to
    [BENCH_tables.json] by [bench/main.exe --json].  All tables run
    through the given [sweep] (default: a fresh serial sweep).  The
    ["sched"] section is wall-clock (machine-dependent); the baseline
    gate ({!Baseline}) never gates on it. *)
