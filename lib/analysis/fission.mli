(** Loop fission (distribution).

    Splits perfect DO nests whose innermost body mixes kernel-fusable
    affine statements with non-fusable residue into maximal independent
    sub-nests, so the affine fragments reach the fused-kernel execution
    tier.  One sub-nest is emitted per strongly connected component of
    the statement-level dependence graph, in topological order;
    statements on a loop-carried dependence cycle stay together.  Nests
    where splitting could change semantics (control flow, targeted
    labels, bounds depending on body-written scalars, undecidable
    conflicts spanning every statement) are left intact, as are nests
    where no fragment would newly fuse (profitability guard).

    Fragments carry {!Autocfd_fortran.Ast.fission_tag} provenance on
    their outermost DO and keep the source nest's line number, so
    coverage, tracing and profiling can attribute them back to the
    original loop. *)

open Autocfd_fortran

type split = {
  sp_line : int;  (** source line of the original nest's outer DO *)
  sp_vars : string list;  (** loop variables, outermost first *)
  sp_nfrags : int;  (** fragments emitted *)
}

val distribute : Ast.program_unit -> Ast.program_unit * split list
(** [distribute u] returns [u] with every profitably-splittable nest
    replaced by its fragments, plus one {!split} record per nest that
    was distributed (in body order).  Unsplit statements are returned
    physically unchanged, so downstream memoization on statement ids
    stays valid for them. *)
