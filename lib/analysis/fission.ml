(* Loop fission / distribution.

   A perfect DO nest whose innermost body mixes kernel-fusable affine
   assignments with non-fusable residue (IF statements, I/O, integer
   quirks) is split into maximal independent sub-nests so the affine
   fragments reach the fused-kernel tier while only the genuine residue
   stays on the closure IR.  The pass is purely an AST transform applied
   before any analysis or engine sees the unit, so all four execution
   engines run the same fissioned program and cross-engine bit-identity
   is preserved by construction.

   Algorithm (classic loop distribution):
     1. summarize every body statement's accesses — scalars read/written,
        array references with per-dimension affine forms over the nest's
        loop variables, I/O;
     2. build a statement-level dependence graph: scalar conflicts and
        undecidable array conflicts merge statements (edges both ways);
        array conflicts with a provable distance vector give a directed
        edge from the lexically-earlier executed instance's statement;
     3. compute strongly connected components (Tarjan) — statements on a
        loop-carried cycle must stay in one nest — and emit one sub-nest
        per SCC group in topological order (stable: ties broken by the
        smallest original statement index).

   Legality is conservative: any construct the summarizer cannot prove
   independent keeps its statements together, and a nest is left alone
   entirely when splitting could change semantics (GOTO/CALL/RETURN/
   STOP/communication anywhere inside, labels targeted by GOTOs, loop
   bounds reading body-written scalars, assignments to loop variables).
   Scalar temporaries are not expanded: every statement touching a
   body-written scalar lands in the same fragment.

   One caveat, shared with classical distribution: a run that stops with
   a runtime error mid-nest observes a different partial state, because
   fragments execute their full trip space in sequence instead of
   interleaved.  Error-free executions — everything the equivalence
   suites and the bundled apps exercise — are bit-identical. *)

open Autocfd_fortran
module SS = Set.Make (String)

type split = {
  sp_line : int;  (** source line of the original nest's outer DO *)
  sp_vars : string list;  (** loop variables, outermost first *)
  sp_nfrags : int;  (** fragments emitted *)
}

(* ------------------------------------------------------------------ *)
(* Statement access summaries                                          *)
(* ------------------------------------------------------------------ *)

(* per-dimension subscript form over the nest's loop variables *)
type aff = {
  coeffs : int array;  (* per nest level, outer-first *)
  const : int;
  syms : (string * int) list;  (* entry-invariant integer scalars *)
}

type dim = Aff of aff | Opaque_dim

type aref = {
  ar_name : string;
  ar_write : bool;
  ar_dims : dim array option;  (* None: whole-array conflict *)
}

type acc = {
  mutable sreads : SS.t;
  mutable swrites : SS.t;
  mutable refs : aref list;
  mutable io : bool;
  mutable opaque : bool;  (* summary failed: conflicts with everything *)
}

type ctx = {
  c_lvl : (string, int) Hashtbl.t;  (* loop var -> level, outer-first *)
  c_m : int;
  c_consts : Env.t;  (* never-assigned PARAMETER constants *)
  c_arrays : (string, unit) Hashtbl.t;
  c_types : (string, Ast.dtype) Hashtbl.t;
  c_wrb : SS.t;  (* scalars assigned anywhere in the body *)
  c_steps : int option array;  (* per level: step sign, if known *)
}

let implicit_type name =
  if name = "" then Ast.Real
  else match name.[0] with 'i' .. 'n' -> Ast.Integer | _ -> Ast.Real

let type_of_scalar ctx x =
  match Hashtbl.find_opt ctx.c_types x with
  | Some t -> t
  | None -> implicit_type x

let cfold ctx e = Env.eval_int ctx.c_consts e

let dim_zero ctx = { coeffs = Array.make ctx.c_m 0; const = 0; syms = [] }

let dim_scale c (d : 'a) =
  match d with
  | Opaque_dim -> Opaque_dim
  | Aff a ->
      Aff
        {
          coeffs = Array.map (fun k -> c * k) a.coeffs;
          const = c * a.const;
          syms = List.map (fun (x, mu) -> (x, c * mu)) a.syms;
        }

let dim_add a b =
  match (a, b) with
  | Aff a, Aff b ->
      Aff
        {
          coeffs = Array.mapi (fun l k -> k + b.coeffs.(l)) a.coeffs;
          const = a.const + b.const;
          syms = a.syms @ b.syms;
        }
  | _ -> Opaque_dim

(* canonical form: syms sorted and combined, zero multipliers dropped *)
let dim_norm = function
  | Opaque_dim -> Opaque_dim
  | Aff a ->
      let tbl = Hashtbl.create 4 in
      List.iter
        (fun (x, mu) ->
          Hashtbl.replace tbl x
            (mu + Option.value ~default:0 (Hashtbl.find_opt tbl x)))
        a.syms;
      let syms =
        Hashtbl.fold (fun x mu l -> if mu = 0 then l else (x, mu) :: l) tbl []
        |> List.sort compare
      in
      Aff { a with syms }

(* affine decomposition of one subscript; [Opaque_dim] when the machine's
   value cannot be written as coeffs * loop vars + const + invariant
   integer scalars *)
let rec adec ctx (e : Ast.expr) : dim =
  match cfold ctx e with
  | Some c -> Aff { (dim_zero ctx) with const = c }
  | None -> (
      match e with
      | Ast.Const_int c -> Aff { (dim_zero ctx) with const = c }
      | Ast.Const_real r when Float.is_integer r ->
          Aff { (dim_zero ctx) with const = truncate r }
      | Ast.Var x -> (
          match Hashtbl.find_opt ctx.c_lvl x with
          | Some l ->
              let coeffs = Array.make ctx.c_m 0 in
              coeffs.(l) <- 1;
              Aff { (dim_zero ctx) with coeffs }
          | None ->
              if SS.mem x ctx.c_wrb then Opaque_dim
              else if type_of_scalar ctx x = Ast.Integer then
                Aff { (dim_zero ctx) with syms = [ (x, 1) ] }
              else Opaque_dim)
      | Ast.Unop (Ast.Neg, a) -> dim_scale (-1) (adec ctx a)
      | Ast.Binop (Ast.Add, a, b) -> dim_add (adec ctx a) (adec ctx b)
      | Ast.Binop (Ast.Sub, a, b) ->
          dim_add (adec ctx a) (dim_scale (-1) (adec ctx b))
      | Ast.Binop (Ast.Mul, a, b) -> (
          match cfold ctx a with
          | Some c -> dim_scale c (adec ctx b)
          | None -> (
              match cfold ctx b with
              | Some c -> dim_scale c (adec ctx a)
              | None -> Opaque_dim))
      | _ -> Opaque_dim)

let fresh_acc () =
  { sreads = SS.empty; swrites = SS.empty; refs = []; io = false;
    opaque = false }

let read_scalar ctx acc x =
  if not (Hashtbl.mem ctx.c_lvl x) then acc.sreads <- SS.add x acc.sreads

let add_ref ctx acc ~write name args =
  let dims = Array.of_list (List.map (fun e -> dim_norm (adec ctx e)) args) in
  acc.refs <- { ar_name = name; ar_write = write; ar_dims = Some dims }
              :: acc.refs

let rec expr_acc ctx acc (e : Ast.expr) =
  match e with
  | Ast.Const_int _ | Ast.Const_real _ | Ast.Const_bool _ | Ast.Const_str _ ->
      ()
  | Ast.Var x -> read_scalar ctx acc x
  | Ast.Ref (name, args) ->
      if Hashtbl.mem ctx.c_arrays name then
        add_ref ctx acc ~write:false name args
      else ();
      (* subscripts / intrinsic arguments are themselves reads *)
      List.iter (expr_acc ctx acc) args
  | Ast.Unop (_, a) -> expr_acc ctx acc a
  | Ast.Binop (_, a, b) ->
      expr_acc ctx acc a;
      expr_acc ctx acc b
  | Ast.Local_lo (_, a) | Ast.Local_hi (_, a) -> expr_acc ctx acc a

let rec stmt_acc ctx acc (s : Ast.stmt) =
  match s.Ast.s_kind with
  | Ast.Continue -> ()
  | Ast.Assign (Ast.Ref (name, args), rhs) ->
      expr_acc ctx acc rhs;
      List.iter (expr_acc ctx acc) args;
      if Hashtbl.mem ctx.c_arrays name then
        add_ref ctx acc ~write:true name args
      else acc.opaque <- true
  | Ast.Assign (Ast.Var x, rhs) ->
      expr_acc ctx acc rhs;
      acc.swrites <- SS.add x acc.swrites
  | Ast.Assign (_, _) -> acc.opaque <- true
  | Ast.If (branches, els) ->
      List.iter
        (fun (c, b) ->
          expr_acc ctx acc c;
          List.iter (stmt_acc ctx acc) b)
        branches;
      Option.iter (List.iter (stmt_acc ctx acc)) els
  | Ast.Read items ->
      acc.io <- true;
      List.iter
        (fun item ->
          match item with
          | Ast.Var x -> acc.swrites <- SS.add x acc.swrites
          | Ast.Ref (name, args) when Hashtbl.mem ctx.c_arrays name ->
              List.iter (expr_acc ctx acc) args;
              (* input element positions depend on the run, not the
                 subscript form: conflict with the whole array *)
              acc.refs <-
                { ar_name = name; ar_write = true; ar_dims = None }
                :: acc.refs
          | e -> expr_acc ctx acc e)
        items
  | Ast.Write items ->
      acc.io <- true;
      List.iter (expr_acc ctx acc) items
  | Ast.Do _ ->
      (* imperfect structure inside the candidate body: keep everything
         it could touch together *)
      acc.opaque <- true
  | Ast.Goto _ | Ast.Call _ | Ast.Return | Ast.Stop | Ast.Comm _
  | Ast.Pipeline_recv _ | Ast.Pipeline_send _ ->
      (* the eligibility scan rejects nests containing these *)
      acc.opaque <- true

(* ------------------------------------------------------------------ *)
(* Dependence test                                                     *)
(* ------------------------------------------------------------------ *)

type dir = No_dep | Fwd | Bwd | Both

(* direction of the dependence between reference [a] of a lexically
   earlier statement and reference [b] of a later one.  [Fwd]: every
   conflicting pair has a's instance executing no later than b's, so
   running a's fragment first preserves order; [Bwd]: the reverse;
   [Both]: undecided (or instances in both orders). *)
let dep_dir ctx (a : aref) (b : aref) : dir =
  match (a.ar_dims, b.ar_dims) with
  | None, _ | _, None -> Both
  | Some da, Some db ->
      if Array.length da <> Array.length db then Both
      else begin
        (* constraints on D = Ka - Kb, per level *)
        let m = ctx.c_m in
        let d = Array.make m None in
        let disjoint = ref false in
        let unknown = ref false in
        Array.iteri
          (fun i dim_a ->
            if not !disjoint then
              match (dim_a, db.(i)) with
              | Opaque_dim, _ | _, Opaque_dim -> unknown := true
              | Aff fa, Aff fb ->
                  if fa.coeffs <> fb.coeffs || fa.syms <> fb.syms then
                    unknown := true
                  else begin
                    let delta = fb.const - fa.const in
                    let nz =
                      Array.to_list fa.coeffs
                      |> List.mapi (fun l c -> (l, c))
                      |> List.filter (fun (_, c) -> c <> 0)
                    in
                    match nz with
                    | [] -> if delta <> 0 then disjoint := true
                    | [ (l, c) ] ->
                        if delta mod c <> 0 then disjoint := true
                        else begin
                          let k = delta / c in
                          match d.(l) with
                          | Some k' when k' <> k -> disjoint := true
                          | _ -> d.(l) <- Some k
                        end
                    | _ -> unknown := true
                  end)
          da;
        if !disjoint then No_dep
        else if !unknown then Both
        else begin
          (* lexicographic decision over levels, outer-first; an
             unconstrained level can take either sign *)
          let rec decide l =
            if l >= m then Fwd (* D = 0: loop-independent, source is a *)
            else
              match d.(l) with
              | None -> Both
              | Some 0 -> decide (l + 1)
              | Some k -> (
                  match ctx.c_steps.(l) with
                  | None -> Both
                  | Some sg ->
                      (* k * sg > 0: Ka executes after Kb, source is b *)
                      if k * sg > 0 then Bwd else Fwd)
          in
          decide 0
        end
      end

let scalar_conflict a b =
  (not (SS.is_empty (SS.inter a.swrites (SS.union b.sreads b.swrites))))
  || not (SS.is_empty (SS.inter a.sreads b.swrites))

(* dependence of later statement [j] (summary [b]) on earlier statement
   [i] (summary [a]), combined over every conflicting access pair *)
let stmt_dep ctx a b : dir =
  if a.opaque || b.opaque then Both
  else if scalar_conflict a b then Both
  else if a.io && b.io then Both
  else
    List.fold_left
      (fun acc (ra : aref) ->
        if acc = Both then Both
        else
          List.fold_left
            (fun acc (rb : aref) ->
              if acc = Both then Both
              else if ra.ar_name <> rb.ar_name
                      || ((not ra.ar_write) && not rb.ar_write)
              then acc
              else
                match (acc, dep_dir ctx ra rb) with
                | acc, No_dep -> acc
                | No_dep, d -> d
                | Fwd, Fwd -> Fwd
                | Bwd, Bwd -> Bwd
                | Both, _ | _, Both | Fwd, Bwd | Bwd, Fwd -> Both)
            acc b.refs)
      No_dep a.refs

(* ------------------------------------------------------------------ *)
(* Fusability heuristic (profitability only, never legality)           *)
(* ------------------------------------------------------------------ *)

let known_intrinsics =
  [ "abs"; "sqrt"; "exp"; "log"; "sin"; "cos"; "tan"; "atan"; "max";
    "amax1"; "min"; "amin1"; "max0"; "min0"; "mod"; "float"; "real";
    "dble"; "int"; "sign" ]

type ty = TInt | TReal | TUnknown

let rec type_of ctx (e : Ast.expr) : ty =
  match e with
  | Ast.Const_int _ -> TInt
  | Ast.Const_real _ -> TReal
  | Ast.Const_bool _ | Ast.Const_str _ -> TUnknown
  | Ast.Var x -> (
      if Hashtbl.mem ctx.c_lvl x then TInt
      else
        match type_of_scalar ctx x with
        | Ast.Integer -> TInt
        | Ast.Real | Ast.Double -> TReal
        | Ast.Logical -> TUnknown)
  | Ast.Ref (name, args) ->
      if Hashtbl.mem ctx.c_arrays name then TReal
      else if List.mem name [ "float"; "real"; "dble"; "sqrt"; "exp"; "log";
                              "sin"; "cos"; "tan"; "atan"; "amax1"; "amin1" ]
      then TReal
      else if List.mem name [ "int"; "max0"; "min0" ] then TInt
      else if List.mem name [ "abs"; "max"; "min"; "sign"; "mod" ] then
        List.fold_left
          (fun acc a ->
            match (acc, type_of ctx a) with
            | TInt, TInt -> TInt
            | TUnknown, _ | _, TUnknown -> TUnknown
            | _ -> TReal)
          TInt args
      else TUnknown
  | Ast.Unop (Ast.Neg, a) -> type_of ctx a
  | Ast.Unop (Ast.Lnot, _) -> TUnknown
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow), a, b) -> (
      match (type_of ctx a, type_of ctx b) with
      | TInt, TInt -> TInt
      | TUnknown, _ | _, TUnknown -> TUnknown
      | _ -> TReal)
  | Ast.Binop (_, _, _) -> TUnknown
  | Ast.Local_lo _ | Ast.Local_hi _ -> TUnknown

let rec fusable_expr ctx (e : Ast.expr) : bool =
  match e with
  | Ast.Const_int _ | Ast.Const_real _ -> true
  | Ast.Const_bool _ | Ast.Const_str _ -> false
  | Ast.Var x ->
      Hashtbl.mem ctx.c_lvl x
      || (match type_of_scalar ctx x with
         | Ast.Integer | Ast.Real | Ast.Double -> true
         | Ast.Logical -> false)
  | Ast.Ref (name, args) ->
      if Hashtbl.mem ctx.c_arrays name then
        List.for_all (fun a -> adec ctx a <> Opaque_dim) args
      else
        List.mem name known_intrinsics
        && List.for_all (fusable_expr ctx) args
        && (match (name, args) with
           | "mod", _ when type_of ctx e = TInt -> false
           | _ -> true)
  | Ast.Unop (Ast.Neg, a) -> fusable_expr ctx a
  | Ast.Unop (Ast.Lnot, _) -> false
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul) as _op, a, b) ->
      fusable_expr ctx a && fusable_expr ctx b
  | Ast.Binop (Ast.Div, a, b) ->
      fusable_expr ctx a && fusable_expr ctx b
      && (type_of ctx e = TReal
         || (match cfold ctx b with Some c -> c <> 0 | None -> false))
  | Ast.Binop (Ast.Pow, a, b) ->
      fusable_expr ctx a && fusable_expr ctx b
      && (type_of ctx e = TReal
         || (match b with Ast.Const_int y -> y >= 0 | _ -> false))
  | Ast.Binop (_, _, _) -> false
  | Ast.Local_lo _ | Ast.Local_hi _ -> false

let fusable_stmt ctx (s : Ast.stmt) : bool =
  match s.Ast.s_kind with
  | Ast.Continue -> true
  | Ast.Assign (Ast.Ref (name, args), rhs) ->
      Hashtbl.mem ctx.c_arrays name
      && List.for_all (fun a -> adec ctx a <> Opaque_dim) args
      && fusable_expr ctx rhs
  | Ast.Assign (Ast.Var x, rhs) ->
      (match type_of_scalar ctx x with
      | Ast.Integer | Ast.Real | Ast.Double -> true
      | Ast.Logical -> false)
      && fusable_expr ctx rhs
  | _ -> false

let writes_array ctx (s : Ast.stmt) =
  match s.Ast.s_kind with
  | Ast.Assign (Ast.Ref (name, _), _) -> Hashtbl.mem ctx.c_arrays name
  | _ -> false

(* ------------------------------------------------------------------ *)
(* SCC grouping (Tarjan) + stable topological order                    *)
(* ------------------------------------------------------------------ *)

(* returns the list of components, each a sorted list of node indices,
   topologically ordered (every edge src -> dst has src's component no
   later than dst's), ties broken by smallest member index *)
let scc_topo n (adj : int list array) : int list list =
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let comp_of = Array.make n (-1) in
  let ncomp = ref 0 in
  let rec strong v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strong w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      adj.(v);
    if low.(v) = index.(v) then begin
      let c = !ncomp in
      incr ncomp;
      let rec pop () =
        match !stack with
        | [] -> ()
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            comp_of.(w) <- c;
            if w <> v then pop ()
      in
      pop ()
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strong v
  done;
  let nc = !ncomp in
  let members = Array.make nc [] in
  for v = n - 1 downto 0 do
    members.(comp_of.(v)) <- v :: members.(comp_of.(v))
  done;
  (* condensation edges + Kahn with min-member priority *)
  let indeg = Array.make nc 0 in
  let cadj = Array.make nc [] in
  Array.iteri
    (fun v ws ->
      List.iter
        (fun w ->
          let cv = comp_of.(v) and cw = comp_of.(w) in
          if cv <> cw && not (List.mem cw cadj.(cv)) then begin
            cadj.(cv) <- cw :: cadj.(cv);
            indeg.(cw) <- indeg.(cw) + 1
          end)
        ws)
    adj;
  let minm = Array.map (function x :: _ -> x | [] -> max_int) members in
  let order = ref [] in
  let remaining = ref nc in
  let ready = Array.make nc false in
  for c = 0 to nc - 1 do
    ready.(c) <- indeg.(c) = 0
  done;
  while !remaining > 0 do
    (* pick the ready component whose smallest statement comes first *)
    let best = ref (-1) in
    for c = 0 to nc - 1 do
      if ready.(c) && (!best < 0 || minm.(c) < minm.(!best)) then best := c
    done;
    let c = !best in
    ready.(c) <- false;
    minm.(c) <- max_int;
    decr remaining;
    order := c :: !order;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then ready.(w) <- true)
      cadj.(c)
  done;
  List.rev_map (fun c -> members.(c)) !order

(* ------------------------------------------------------------------ *)
(* Nest eligibility and rebuilding                                     *)
(* ------------------------------------------------------------------ *)

let filter_continues body =
  List.filter
    (fun (s : Ast.stmt) ->
      match s.Ast.s_kind with Ast.Continue -> false | _ -> true)
    body

(* peel a perfect nest: outer-first levels plus the innermost body *)
let rec peel acc (d : Ast.do_loop) =
  let acc = d :: acc in
  match filter_continues d.Ast.do_body with
  | [ { Ast.s_kind = Ast.Do d'; _ } ] -> peel acc d'
  | body -> (List.rev acc, body)

let expr_vars e =
  Ast.fold_exprs
    (fun vs e -> match e with Ast.Var x -> SS.add x vs | _ -> vs)
    SS.empty e

let goto_targets (u : Ast.program_unit) =
  let t = ref [] in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.s_kind with Ast.Goto l -> t := l :: !t | _ -> ())
    u.Ast.u_body;
  !t

type uenv = {
  u_consts : Env.t;
  u_arrays : (string, unit) Hashtbl.t;
  u_types : (string, Ast.dtype) Hashtbl.t;
  u_goto_targets : int list;
}

let uenv_of (u : Ast.program_unit) =
  let arrays = Hashtbl.create 32 in
  let types = Hashtbl.create 64 in
  List.iter
    (fun (d : Ast.decl) ->
      if d.Ast.d_dims <> [] then Hashtbl.replace arrays d.Ast.d_name ()
      else Hashtbl.replace types d.Ast.d_name d.Ast.d_type)
    u.Ast.u_decls;
  (* only PARAMETER constants the body never reassigns are entry-invariant *)
  let assigned = Hashtbl.create 32 in
  Ast.iter_stmts
    (fun st ->
      match st.Ast.s_kind with
      | Ast.Assign (Ast.Var x, _) -> Hashtbl.replace assigned x ()
      | Ast.Do d -> Hashtbl.replace assigned d.Ast.do_var ()
      | Ast.Read items ->
          List.iter
            (function Ast.Var x -> Hashtbl.replace assigned x () | _ -> ())
            items
      | _ -> ())
    u.Ast.u_body;
  let acc = ref [] in
  List.iter
    (fun (name, e) ->
      if not (Hashtbl.mem assigned name) then
        match Env.eval_int (Env.of_alist !acc) e with
        | Some v -> acc := (name, v) :: !acc
        | None -> ())
    u.Ast.u_consts;
  {
    u_consts = Env.of_alist !acc;
    u_arrays = arrays;
    u_types = types;
    u_goto_targets = goto_targets u;
  }

(* statements (at any depth) of kinds that rule fission out wholesale *)
let has_forbidden (d : Ast.do_loop) =
  let bad = ref false in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.s_kind with
      | Ast.Goto _ | Ast.Call _ | Ast.Return | Ast.Stop | Ast.Comm _
      | Ast.Pipeline_recv _ | Ast.Pipeline_send _ ->
          bad := true
      | _ -> ())
    d.Ast.do_body;
  !bad

let has_targeted_label ue (d : Ast.do_loop) =
  ue.u_goto_targets <> []
  && begin
       let bad = ref false in
       Ast.iter_stmts
         (fun s ->
           match s.Ast.s_label with
           | Some l when List.mem l ue.u_goto_targets -> bad := true
           | _ -> ())
         d.Ast.do_body;
       !bad
     end

(* scalars assigned anywhere under the body statements (including inside
   IF branches) *)
let body_writes stmts =
  List.fold_left
    (fun ws s ->
      Ast.fold_stmts
        (fun ws s ->
          match s.Ast.s_kind with
          | Ast.Assign (Ast.Var x, _) -> SS.add x ws
          | Ast.Do d -> SS.add d.Ast.do_var ws
          | Ast.Read items ->
              List.fold_left
                (fun ws -> function Ast.Var x -> SS.add x ws | _ -> ws)
                ws items
          | _ -> ws)
        ws [ s ])
    SS.empty stmts

(* rebuild one fragment: duplicate every level (fresh statement ids, the
   source line preserved), provenance tag on the outermost *)
let rebuild ~line (levels : Ast.do_loop list) tag stmts =
  let rec go = function
    | [] -> assert false
    | [ (last : Ast.do_loop) ] ->
        Ast.mk_stmt ~line
          (Ast.Do { last with Ast.do_body = stmts; do_fission = None })
    | l :: rest ->
        Ast.mk_stmt ~line
          (Ast.Do { l with Ast.do_body = [ go rest ]; do_fission = None })
  in
  match go levels with
  | { Ast.s_kind = Ast.Do d; _ } as st ->
      { st with Ast.s_kind = Ast.Do { d with Ast.do_fission = Some tag } }
  | st -> st

(* attempt to distribute one nest; [None] when it must stay intact *)
let try_fission ue (st : Ast.stmt) (d : Ast.do_loop) :
    (Ast.stmt list * split) option =
  let levels, body = peel [] d in
  let n = List.length body in
  if n < 2 then None
  else if has_forbidden d || has_targeted_label ue d then None
  else begin
    let vars = List.map (fun (l : Ast.do_loop) -> l.Ast.do_var) levels in
    let m = List.length vars in
    let lvl = Hashtbl.create 8 in
    let dup = ref false in
    List.iteri
      (fun i v ->
        if Hashtbl.mem lvl v then dup := true else Hashtbl.add lvl v i)
      vars;
    if !dup then None
    else begin
      let wrb = body_writes body in
      let consts = ue.u_consts in
      let steps =
        Array.of_list
          (List.map
             (fun (l : Ast.do_loop) ->
               match l.Ast.do_step with
               | None -> Some 1
               | Some e -> (
                   match Env.eval_int consts e with
                   | Some s when s <> 0 -> Some (compare s 0)
                   | _ -> None))
             levels)
      in
      let ctx =
        {
          c_lvl = lvl;
          c_m = m;
          c_consts = consts;
          c_arrays = ue.u_arrays;
          c_types = ue.u_types;
          c_wrb = wrb;
          c_steps = steps;
        }
      in
      (* loop variables assigned in the body, or bounds/steps reading
         body-written scalars or the nest's own (same-or-inner) loop
         variables: leave the nest alone *)
      let bounds_ok =
        List.for_all (fun v -> not (SS.mem v wrb)) vars
        && List.for_all
             (fun i ->
               let l = List.nth levels i in
               let bvars =
                 SS.union (expr_vars l.Ast.do_lo)
                   (SS.union (expr_vars l.Ast.do_hi)
                      (match l.Ast.do_step with
                      | Some e -> expr_vars e
                      | None -> SS.empty))
               in
               SS.is_empty (SS.inter bvars wrb)
               && List.for_all
                    (fun j -> not (SS.mem (List.nth vars j) bvars))
                    (List.init (m - i) (fun k -> i + k)))
             (List.init m Fun.id)
      in
      if not bounds_ok then None
      else begin
        let stmts = Array.of_list body in
        let accs =
          Array.map
            (fun s ->
              let a = fresh_acc () in
              stmt_acc ctx a s;
              a)
            stmts
        in
        (* adjacency: edge i -> j means i's fragment must run first *)
        let adj = Array.make n [] in
        let edge i j = adj.(i) <- j :: adj.(i) in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            match stmt_dep ctx accs.(i) accs.(j) with
            | No_dep -> ()
            | Fwd -> edge i j
            | Bwd -> edge j i
            | Both ->
                edge i j;
                edge j i
          done
        done;
        let groups = scc_topo n adj in
        if List.length groups < 2 then None
        else begin
          (* profitability: at least one all-fusable fragment that writes
             an array, and at least one residue statement — otherwise
             splitting only duplicates loop overhead *)
          let fus = Array.map (fusable_stmt ctx) stmts in
          let promising =
            List.exists
              (fun g ->
                List.for_all (fun i -> fus.(i)) g
                && List.exists (fun i -> writes_array ctx stmts.(i)) g)
              groups
            && Array.exists not fus
          in
          if not promising then None
          else begin
            let nfrags = List.length groups in
            let line = st.Ast.s_line in
            let frags =
              List.mapi
                (fun k g ->
                  rebuild ~line levels
                    { Ast.fi_frag = k + 1; fi_nfrags = nfrags }
                    (List.map (fun i -> stmts.(i)) g))
                groups
            in
            Some (frags, { sp_line = line; sp_vars = vars; sp_nfrags = nfrags })
          end
        end
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Unit traversal                                                      *)
(* ------------------------------------------------------------------ *)

let distribute (u : Ast.program_unit) : Ast.program_unit * split list =
  let ue = uenv_of u in
  let splits = ref [] in
  let rec walk_block block = List.concat_map walk_stmt block
  and walk_stmt (s : Ast.stmt) : Ast.stmt list =
    match s.Ast.s_kind with
    | Ast.Do d -> (
        match try_fission ue s d with
        | Some (frags, sp) ->
            splits := sp :: !splits;
            frags
        | None ->
            [ { s with
                Ast.s_kind =
                  Ast.Do { d with Ast.do_body = walk_block d.Ast.do_body } } ])
    | Ast.If (branches, els) ->
        [ { s with
            Ast.s_kind =
              Ast.If
                ( List.map (fun (c, b) -> (c, walk_block b)) branches,
                  Option.map walk_block els ) } ]
    | _ -> [ s ]
  in
  let body = walk_block u.Ast.u_body in
  ({ u with Ast.u_body = body }, List.rev !splits)
