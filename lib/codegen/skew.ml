open Autocfd_fortran
module A = Autocfd_analysis

(* fresh wavefront variable; 'acfdsk' is reserved by convention *)
let tvar = "acfdsk"

(* the skewed order (d1+d2, d2) must stay lexicographically positive for
   every dependence distance vector *)
let distance_ok d1 d2 = d1 + d2 > 0 || (d1 + d2 = 0 && d2 > 0)

let skewable ~ndims env (s : A.Field_loop.summary) =
  (not s.A.Field_loop.fs_irregular)
  && (not s.A.Field_loop.fs_serial)
  && List.length s.A.Field_loop.fs_var_dims = 2
  && List.length (A.Mirror.nest_dim_order s) = 2
  && (let steps =
        List.map
          (fun (_, g) -> A.Mirror.sweep_step env s g)
          s.A.Field_loop.fs_var_dims
      in
      List.for_all (fun st -> st = Some 1) steps)
  && A.Mirror.self_arrays s <> []
  && List.for_all
       (fun v ->
         match A.Mirror.decompose ~ndims env s v with
         | None -> false
         | Some de ->
             de.A.Mirror.de_vectors <> []
             && List.for_all
                  (fun (vec, cls) ->
                    let nest = A.Mirror.nest_dim_order s in
                    match nest with
                    | [ g1; g2 ] ->
                        let o1 = vec.(g1) and o2 = vec.(g2) in
                        let d1, d2 =
                          match cls with
                          | A.Mirror.Flow -> (-o1, -o2)
                          | A.Mirror.Anti -> (o1, o2)
                        in
                        distance_ok d1 d2
                    | _ -> false)
                  de.A.Mirror.de_vectors)
       (A.Mirror.self_arrays s)

(* substitute Var [x] by [e] throughout an expression *)
let rec subst x e (expr : Ast.expr) =
  match expr with
  | Ast.Var y when y = x -> e
  | Ast.Var _ | Ast.Const_int _ | Ast.Const_real _ | Ast.Const_bool _
  | Ast.Const_str _ ->
      expr
  | Ast.Ref (n, args) -> Ast.Ref (n, List.map (subst x e) args)
  | Ast.Unop (op, a) -> Ast.Unop (op, subst x e a)
  | Ast.Binop (op, a, b) -> Ast.Binop (op, subst x e a, subst x e b)
  | Ast.Local_lo (d, a) -> Ast.Local_lo (d, subst x e a)
  | Ast.Local_hi (d, a) -> Ast.Local_hi (d, subst x e a)

let assigns_var x block =
  let found = ref false in
  Ast.iter_stmts
    (fun st ->
      match st.Ast.s_kind with
      | Ast.Assign (Ast.Var y, _) when y = x -> found := true
      | Ast.Do d when d.Ast.do_var = x -> found := true
      | _ -> ())
    block;
  !found

let uses_name x block =
  let found = ref false in
  Ast.iter_stmts
    (fun st ->
      List.iter
        (fun expr ->
          Ast.fold_exprs
            (fun () e ->
              match e with
              | Ast.Var y when y = x -> found := true
              | _ -> ())
            () expr)
        (Ast.stmt_exprs st))
    block;
  !found

let skew_stmt (st : Ast.stmt) =
  match st.Ast.s_kind with
  | Ast.Do outer -> (
      match outer.Ast.do_body with
      | [ { Ast.s_kind = Ast.Do inner; _ } ]
        when outer.Ast.do_step = None && inner.Ast.do_step = None
             && not (assigns_var outer.Ast.do_var inner.Ast.do_body)
             && not (uses_name tvar [ st ]) ->
          let i = outer.Ast.do_var and j = inner.Ast.do_var in
          let li = outer.Ast.do_lo and hi = outer.Ast.do_hi in
          let lj = inner.Ast.do_lo and hj = inner.Ast.do_hi in
          (* i := t - j throughout the inner body and the diagonal bounds *)
          let i_expr = Ast.Binop (Ast.Sub, Ast.Var tvar, Ast.Var j) in
          let body = Ast.map_block (subst i i_expr) inner.Ast.do_body in
          let new_inner =
            Ast.mk_stmt
              (Ast.Do
                 {
                   do_var = j;
                   do_lo =
                     Ast.Ref
                       ( "max",
                         [ lj; Ast.Binop (Ast.Sub, Ast.Var tvar, hi) ] );
                   do_hi =
                     Ast.Ref
                       ( "min",
                         [ hj; Ast.Binop (Ast.Sub, Ast.Var tvar, li) ] );
                   do_step = None;
                   do_body = body;
                   do_sched = Ast.Sched_seq;
                   do_fission = None;
                 })
          in
          Some
            (Ast.mk_stmt ?label:st.Ast.s_label ~line:st.Ast.s_line
               (Ast.Do
                  {
                    do_var = tvar;
                    do_lo = Ast.Binop (Ast.Add, li, lj);
                    do_hi = Ast.Binop (Ast.Add, hi, hj);
                    do_step = None;
                    do_body = [ new_inner ];
                    do_sched = Ast.Sched_seq;
                    do_fission = None;
                  }))
      | _ -> None)
  | _ -> None

let transform_unit gi (u : Ast.program_unit) =
  let env = A.Env.of_unit u in
  let summaries = A.Field_loop.analyze_unit gi u in
  let ndims = A.Grid_info.ndims gi in
  let skewable_ids =
    List.filter_map
      (fun (s : A.Field_loop.summary) ->
        if skewable ~ndims env s then
          Some s.A.Field_loop.fs_loop.A.Loops.lp_id
        else None)
      summaries
  in
  let count = ref 0 in
  let rec walk_block block = List.map walk_stmt block
  and walk_stmt st =
    if List.mem st.Ast.s_id skewable_ids then
      match skew_stmt st with
      | Some st' ->
          incr count;
          st'
      | None -> descend st
    else descend st
  and descend st =
    match st.Ast.s_kind with
    | Ast.Do d ->
        { st with
          Ast.s_kind = Ast.Do { d with do_body = walk_block d.Ast.do_body } }
    | Ast.If (branches, els) ->
        { st with
          Ast.s_kind =
            Ast.If
              ( List.map (fun (c, b) -> (c, walk_block b)) branches,
                Option.map walk_block els ) }
    | _ -> st
  in
  let body = walk_block u.Ast.u_body in
  ({ u with Ast.u_body = body }, !count)
