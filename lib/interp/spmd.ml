open Autocfd_fortran
open Autocfd_mpsim
module GI = Autocfd_analysis.Grid_info
module Topology = Autocfd_partition.Topology
module Trace = Autocfd_obs.Trace

type recovery = {
  rc_every : int;
  rc_max_restarts : int;
  rc_bandwidth : float;
}

let default_recovery =
  { rc_every = 8; rc_max_restarts = 3; rc_bandwidth = 400e6 }

type config = {
  gi : GI.t;
  topo : Topology.t;
  net : Netmodel.t;
  flop_time : float;
  input : float list;
  tracer : Trace.t option;
  faults : Fault.plan option;
  recovery : recovery option;
}

type resilience = {
  rs_restarts : int;
  rs_checkpoints : int;
  rs_restores : int;
  rs_retransmits : int;
  rs_dup_suppressed : int;
  rs_checksum_failures : int;
}

let no_resilience =
  {
    rs_restarts = 0;
    rs_checkpoints = 0;
    rs_restores = 0;
    rs_retransmits = 0;
    rs_dup_suppressed = 0;
    rs_checksum_failures = 0;
  }

type domain_stats = {
  ds_wall : float;
  ds_rank_wall : float array;
  ds_compute : float array;
  ds_barrier_wait : float array;
  ds_barrier_calls : int;
  ds_flops : float array;
  ds_comm_samples : (int * float) list;
}

type result = {
  stats : Sim.stats;
  output : string list;
  gathered : (string * Value.arr) list;
  scalars : (string * Value.scalar) list;
  flops_per_rank : float array;
  resilience : resilience;
  domains : domain_stats option;
}

(* One rank's coordinated checkpoint, taken outside the simulation when
   the rank passes a multiple-of-k sync-point visit.  Visits are counted
   identically on every rank (the SPMD unit's communication hooks fire in
   the same program order everywhere), so equal [ck_visits] across ranks
   is a consistent global cut — provided no pipeline stream is mid-flight,
   which the executor checks before snapshotting. *)
type snapshot = {
  ck_visits : int;
  ck_scalars : (string * Value.scalar) list;
  ck_arrays : (string * float array) list;
  ck_output : string list;  (* cumulative WRITE lines; rank 0 only *)
}

let snapshot_bytes s =
  8
  * (List.length s.ck_scalars
    + List.fold_left (fun acc (_, a) -> acc + Array.length a) 0 s.ck_arrays)

type engine = Tree | Compiled | Fused | Domains

let tag_exchange = 3
let tag_pipe = 5
let tag_gather = 7

(* ------------------------------------------------------------------ *)
(* Sync-point table: every communication statement of the SPMD unit,   *)
(* numbered in program order and labelled for tracing                  *)
(* ------------------------------------------------------------------ *)

type sync_info = {
  si_id : int;
  si_label : string;
  si_loop : string option;  (* enclosing DO variable *)
}

let dir_str = function Ast.Dplus -> "+" | Ast.Dminus -> "-"

let describe_comm = function
  | Ast.Exchange ts ->
      "halo "
      ^ String.concat " "
          (List.map
             (fun (t : Ast.transfer) ->
               Printf.sprintf "%s(d%d%s,%d)" t.Ast.xfer_array t.Ast.xfer_dim
                 (dir_str t.Ast.xfer_dir) t.Ast.xfer_depth)
             ts)
  | Ast.Allreduce_max v -> "allreduce max " ^ v
  | Ast.Allreduce_min v -> "allreduce min " ^ v
  | Ast.Allreduce_sum v -> "allreduce sum " ^ v
  | Ast.Broadcast vars -> "bcast " ^ String.concat "," vars
  | Ast.Allgather arrays -> "allgather " ^ String.concat "," arrays
  | Ast.Barrier -> "barrier"

(* one rank's profile summary of a nest as a trace event; loop-fission
   fragments are named "L<line> do <vars> #<frag>/<nfrags>" so all
   fragments of one source nest share a line and a name prefix *)
let kernel_event (k : Compile.kernel_stat) =
  let frag, nfrags =
    match k.Compile.ks_frag with
    | Some f -> (f.Ast.fi_frag, f.Ast.fi_nfrags)
    | None -> (0, 0)
  in
  let name =
    Printf.sprintf "L%d do %s%s" k.Compile.ks_line
      (String.concat "," k.Compile.ks_vars)
      (if nfrags = 0 then "" else Printf.sprintf " #%d/%d" frag nfrags)
  in
  Trace.Kernel
    {
      name;
      line = k.Compile.ks_line;
      fused = k.Compile.ks_fused;
      frag;
      nfrags;
      calls = k.Compile.ks_calls;
      flops = k.Compile.ks_flops;
      bytes = k.Compile.ks_bytes;
    }

let sync_points (u : Ast.program_unit) =
  let tbl = Hashtbl.create 32 in
  let next = ref 0 in
  let add sid label loop =
    Hashtbl.replace tbl sid
      { si_id = !next; si_label = label; si_loop = loop };
    incr next
  in
  let rec walk loop stmts =
    List.iter
      (fun (st : Ast.stmt) ->
        match st.Ast.s_kind with
        | Ast.Do d -> walk (Some d.Ast.do_var) d.Ast.do_body
        | Ast.If (branches, els) ->
            List.iter (fun (_, b) -> walk loop b) branches;
            Option.iter (walk loop) els
        | Ast.Comm c -> add st.Ast.s_id (describe_comm c) loop
        | Ast.Pipeline_recv { dim; dir; arrays } ->
            add st.Ast.s_id
              (Printf.sprintf "pipe recv d%d%s %s" dim (dir_str dir)
                 (String.concat "," (List.map fst arrays)))
              loop
        | Ast.Pipeline_send { dim; dir; arrays } ->
            add st.Ast.s_id
              (Printf.sprintf "pipe send d%d%s %s" dim (dir_str dir)
                 (String.concat "," (List.map fst arrays)))
              loop
        | _ -> ())
      stmts
  in
  walk None u.Ast.u_body;
  tbl

(* iterate an n-dimensional inclusive range *)
let iter_box ranges f =
  let n = Array.length ranges in
  let idx = Array.map fst ranges in
  if Array.for_all (fun (lo, hi) -> lo <= hi) ranges then begin
    let rec go d =
      if d = n then f idx
      else
        let lo, hi = ranges.(d) in
        for i = lo to hi do
          idx.(d) <- i;
          go (d + 1)
        done
    in
    go 0
  end

let box_size ranges =
  Array.fold_left (fun acc (lo, hi) -> acc * max 0 (hi - lo + 1)) 1 ranges

(* The array-dim ranges of the planes a given OWNER rank sends for one
   transfer.  [ext] extends already-refreshed lower grid dimensions so that
   diagonal (corner) stencil points are carried (sequenced exchange). *)
let plane_ranges gi topo ~owner_rank (arr : Value.arr)
    (xfer : Ast.transfer) ~ext_of_dim =
  let sa =
    match GI.find_status gi xfer.Ast.xfer_array with
    | Some sa -> sa
    | None -> invalid_arg ("Spmd: transfer of non-status " ^ xfer.Ast.xfer_array)
  in
  let block = Topology.block topo owner_rank in
  Array.init (Value.rank arr) (fun k ->
      let alo, ahi = arr.Value.bounds.(k) in
      match sa.GI.sa_dims.(k) with
      | None -> (alo, ahi) (* packed dimension: full extent *)
      | Some g when g = xfer.Ast.xfer_dim ->
          let blo = block.Autocfd_partition.Block.lo.(g)
          and bhi = block.Autocfd_partition.Block.hi.(g) in
          let lo, hi =
            match xfer.Ast.xfer_dir with
            | Ast.Dplus -> (max blo (bhi - xfer.Ast.xfer_depth + 1), bhi)
            | Ast.Dminus -> (blo, min bhi (blo + xfer.Ast.xfer_depth - 1))
          in
          (max alo lo, min ahi hi)
      | Some g ->
          let blo = block.Autocfd_partition.Block.lo.(g)
          and bhi = block.Autocfd_partition.Block.hi.(g) in
          let ext = if g < xfer.Ast.xfer_dim then ext_of_dim g else 0 in
          (max alo (blo - ext), min ahi (bhi + ext)))

(* ranges of the pipeline payload planes sent by [owner_rank]: the owned
   boundary planes of the sweep dimension over the owned ranges of the
   other status dimensions *)
let pipe_ranges gi topo ~owner_rank (arr : Value.arr) ~dim ~dir ~depth array_name =
  let sa =
    match GI.find_status gi array_name with
    | Some sa -> sa
    | None -> invalid_arg ("Spmd: pipeline of non-status " ^ array_name)
  in
  let block = Topology.block topo owner_rank in
  Array.init (Value.rank arr) (fun k ->
      let alo, ahi = arr.Value.bounds.(k) in
      match sa.GI.sa_dims.(k) with
      | None -> (alo, ahi)
      | Some g when g = dim ->
          let blo = block.Autocfd_partition.Block.lo.(g)
          and bhi = block.Autocfd_partition.Block.hi.(g) in
          let lo, hi =
            match dir with
            | Ast.Dplus -> (max blo (bhi - depth + 1), bhi)
            | Ast.Dminus -> (blo, min bhi (blo + depth - 1))
          in
          (max alo lo, min ahi hi)
      | Some g ->
          let blo = block.Autocfd_partition.Block.lo.(g)
          and bhi = block.Autocfd_partition.Block.hi.(g) in
          (max alo blo, min ahi bhi))

(* ------------------------------------------------------------------ *)
(* Cached message plans                                                *)
(* ------------------------------------------------------------------ *)

(* Everything a sync point's boxes depend on — grid info, topology, array
   bounds, the statement's transfer list — is fixed for the whole run, so
   the element offsets each message packs from / unpacks into are computed
   once per (rank, sync point) and every subsequent visit is a tight copy
   over a flat offset vector instead of an n-dimensional index walk. *)

let offsets_of arr ranges =
  let out = Array.make (box_size ranges) 0 in
  let i = ref 0 in
  iter_box ranges (fun idx ->
      out.(!i) <- Value.linear_index arr idx;
      incr i);
  out

(* A cached pack/unpack plan: the flat element offsets in payload order,
   compressed into maximal contiguous runs.  When runs are long enough
   (boundary planes along the fastest-varying dimension are fully
   contiguous) packing becomes a few [Array.blit]s into a reusable payload
   buffer instead of a per-element gather; the payload's element order is
   unchanged either way, so message contents, sizes and simulator
   statistics are identical.  Reusing [pp_buf] across visits is safe
   because [Sim.send] copies its payload. *)
type pack_plan = {
  pp_total : int;
  pp_offs : int array;
  pp_segs : (int * int) array;  (* (start offset, length) runs, in order *)
  pp_blit : bool;  (* segment copies win over the element walk *)
  pp_buf : float array;
}

(* average run length at which per-segment Array.blit beats the
   per-element loop (short runs pay blit's call overhead) *)
let blit_threshold = 4

let plan_of_offsets offs =
  let n = Array.length offs in
  let segs = ref [] in
  let nsegs = ref 0 in
  let i = ref 0 in
  while !i < n do
    let start = offs.(!i) in
    let j = ref (!i + 1) in
    while !j < n && offs.(!j) = offs.(!j - 1) + 1 do
      incr j
    done;
    segs := (start, !j - !i) :: !segs;
    incr nsegs;
    i := !j
  done;
  {
    pp_total = n;
    pp_offs = offs;
    pp_segs = Array.of_list (List.rev !segs);
    pp_blit = n > 0 && !nsegs * blit_threshold <= n;
    pp_buf = Array.make n 0.0;
  }

let plan_of arr ranges = plan_of_offsets (offsets_of arr ranges)

let pack p (data : float array) =
  let buf = p.pp_buf in
  if p.pp_blit then begin
    let pos = ref 0 in
    Array.iter
      (fun (start, len) ->
        Array.blit data start buf !pos len;
        pos := !pos + len)
      p.pp_segs
  end
  else begin
    let offs = p.pp_offs in
    for i = 0 to p.pp_total - 1 do
      Array.unsafe_set buf i (data.(Array.unsafe_get offs i))
    done
  end;
  buf

let unpack p (data : float array) payload =
  if p.pp_blit then begin
    let pos = ref 0 in
    Array.iter
      (fun (start, len) ->
        Array.blit payload !pos data start len;
        pos := !pos + len)
      p.pp_segs
  end
  else
    let offs = p.pp_offs in
    for i = 0 to p.pp_total - 1 do
      data.(Array.unsafe_get offs i) <- Array.unsafe_get payload i
    done

type xfer_plan = {
  xp_array : string;
  xp_dim : int;  (* grid dimension of the transfer, for phased blits *)
  xp_send : (int * pack_plan) option;  (* dest rank, pack plan *)
  xp_recv : (int * pack_plan) option;  (* src rank, unpack plan *)
}

type plan =
  | P_exchange of xfer_plan list
  | P_pipe of (int * (string * pack_plan) list) option  (* peer, per array *)
  | P_allgather of (string * pack_plan * pack_plan array) list
      (* per array: my pack plan, then per-peer unpack plans (index =
         peer rank; my own entry unused) *)

(* ------------------------------------------------------------------ *)
(* Process-wide plan cache                                             *)
(* ------------------------------------------------------------------ *)

(* A plan depends only on (engine, sync point, rank, grid, partition) —
   sync-point ids are process-unique, so the id pins down the program
   unit too.  Caching process-wide means switching engines on the same
   unit within one process (exactly what the bit-equivalence harness
   does) replans each sync point at most once per engine instead of once
   per run.  The cached offset/segment vectors are immutable and safe to
   share across domains; [pp_buf] is private to a run, so every lookup
   re-arms the plan with fresh buffers. *)
let plan_cache : (string * int * int * int list * int list, plan) Hashtbl.t =
  Hashtbl.create 256

let plan_cache_mutex = Mutex.create ()

(* far above any real sweep's working set; reset wholesale rather than
   tracking LRU order for a cache this cheap to refill *)
let plan_cache_cap = 4096

let refresh_pack p = { p with pp_buf = Array.make (Array.length p.pp_buf) 0.0 }

let refresh_plan = function
  | P_exchange l ->
      P_exchange
        (List.map
           (fun xp ->
             {
               xp with
               xp_send =
                 Option.map (fun (d, p) -> (d, refresh_pack p)) xp.xp_send;
               xp_recv =
                 Option.map (fun (s, p) -> (s, refresh_pack p)) xp.xp_recv;
             })
           l)
  | P_pipe o ->
      P_pipe
        (Option.map
           (fun (peer, per_array) ->
             (peer, List.map (fun (n, p) -> (n, refresh_pack p)) per_array))
           o)
  | P_allgather l ->
      P_allgather
        (List.map
           (fun (n, mine, peers) ->
             (n, refresh_pack mine, Array.map refresh_pack peers))
           l)

let cached_plan ~etag ~topo ~rank ~sid build =
  let key =
    ( etag,
      sid,
      rank,
      Array.to_list (Topology.grid topo),
      Array.to_list (Topology.parts topo) )
  in
  match
    Mutex.protect plan_cache_mutex (fun () -> Hashtbl.find_opt plan_cache key)
  with
  | Some p -> refresh_plan p
  | None ->
      let p = build () in
      Mutex.protect plan_cache_mutex (fun () ->
          if Hashtbl.length plan_cache >= plan_cache_cap then
            Hashtbl.reset plan_cache;
          Hashtbl.replace plan_cache key p);
      refresh_plan p

(* ------------------------------------------------------------------ *)
(* Engine-generic execution                                            *)
(* ------------------------------------------------------------------ *)

(* The per-rank body is written once against this interface and wired to
   either the tree-walking machine or the compiled engine; both raise
   [Machine.Runtime_error] on dynamic errors. *)

type 'm gen_hooks = {
  g_block : int -> int * int;
  g_comm : 'm -> sid:int -> Ast.comm -> unit;
  g_pipe_recv :
    'm -> sid:int -> dim:int -> dir:Ast.direction -> (string * int) list
    -> unit;
  g_pipe_send :
    'm -> sid:int -> dim:int -> dir:Ast.direction -> (string * int) list
    -> unit;
  g_read : 'm -> int -> float array;
  g_write : 'm -> Value.scalar list -> unit;
}

type 'm iface = {
  i_spawn : 'm gen_hooks -> float list -> 'm;
  i_run : 'm -> unit;
  i_flops : 'm -> float;
  i_array : 'm -> string -> Value.arr;
  i_scalar : 'm -> string -> Value.scalar;
  i_set_scalar : 'm -> string -> Value.scalar -> unit;
  i_scalar_bindings : 'm -> (string * Value.scalar) list;
  i_array_names : 'm -> string list;
  i_output : 'm -> string list;
  i_read0 : 'm -> int -> float array;  (* rank 0's actual READ source *)
  i_write0 : 'm -> Value.scalar list -> unit;
  i_kernels : 'm -> Compile.kernel_stat list;
      (* per-nest execution profile; [] on engines without one *)
}

(* keep at most this many checkpoint generations per rank: after a crash,
   surviving ranks may have raced ahead past further sync points before
   stalling, so the common restore point can lie a little behind their
   newest snapshot *)
let snapshot_history = 3

(* ------------------------------------------------------------------ *)
(* Plan construction (engine-independent)                              *)
(* ------------------------------------------------------------------ *)

let opposite_dir = function Ast.Dplus -> Ast.Dminus | Ast.Dminus -> Ast.Dplus

let topo_neighbor topo ~rank dim dir =
  let d =
    match dir with Ast.Dplus -> Topology.Plus | Ast.Dminus -> Topology.Minus
  in
  Topology.neighbor topo ~rank ~dim ~dir:d

let build_exchange_plan :
    'm.
    'm iface ->
    gi:GI.t ->
    topo:Topology.t ->
    rank:int ->
    'm ->
    Ast.transfer list ->
    plan =
 fun iface ~gi ~topo ~rank m transfers ->
  let transfers =
    List.sort
      (fun (a : Ast.transfer) b ->
        compare
          (a.Ast.xfer_dim, a.Ast.xfer_array, a.Ast.xfer_dir)
          (b.Ast.xfer_dim, b.Ast.xfer_array, b.Ast.xfer_dir))
      transfers
  in
  let ext_of_dim g =
    List.fold_left
      (fun acc (t : Ast.transfer) ->
        if t.Ast.xfer_dim = g then max acc t.Ast.xfer_depth else acc)
      0 transfers
  in
  P_exchange
    (List.map
       (fun (xfer : Ast.transfer) ->
         let arr = iface.i_array m xfer.Ast.xfer_array in
         let send =
           match topo_neighbor topo ~rank xfer.Ast.xfer_dim xfer.Ast.xfer_dir with
           | Some dest ->
               Some
                 ( dest,
                   plan_of arr
                     (plane_ranges gi topo ~owner_rank:rank arr xfer
                        ~ext_of_dim) )
           | None -> None
         in
         let recv =
           match
             topo_neighbor topo ~rank xfer.Ast.xfer_dim
               (opposite_dir xfer.Ast.xfer_dir)
           with
           | Some src ->
               Some
                 ( src,
                   plan_of arr
                     (plane_ranges gi topo ~owner_rank:src arr xfer
                        ~ext_of_dim) )
           | None -> None
         in
         {
           xp_array = xfer.Ast.xfer_array;
           xp_dim = xfer.Ast.xfer_dim;
           xp_send = send;
           xp_recv = recv;
         })
       transfers)

let build_pipe_plan :
    'm.
    'm iface ->
    gi:GI.t ->
    topo:Topology.t ->
    rank:int ->
    recv:bool ->
    dim:int ->
    dir:Ast.direction ->
    'm ->
    (string * int) list ->
    plan =
 fun iface ~gi ~topo ~rank ~recv ~dim ~dir m arrays ->
  let peer_dir = if recv then opposite_dir dir else dir in
  P_pipe
    (match topo_neighbor topo ~rank dim peer_dir with
    | None -> None
    | Some peer ->
        Some
          ( peer,
            List.map
              (fun (name, depth) ->
                let arr = iface.i_array m name in
                let owner = if recv then peer else rank in
                ( name,
                  plan_of arr
                    (pipe_ranges gi topo ~owner_rank:owner arr ~dim ~dir
                       ~depth name) ))
              arrays ))

let build_allgather_plan :
    'm.
    'm iface ->
    gi:GI.t ->
    topo:Topology.t ->
    rank:int ->
    nranks:int ->
    'm ->
    string list ->
    plan =
 fun iface ~gi ~topo ~rank ~nranks m arrays ->
  let owned_offsets owner arr name =
    let sa =
      match GI.find_status gi name with
      | Some sa -> sa
      | None -> invalid_arg ("Spmd: allgather of non-status " ^ name)
    in
    let b = Topology.block topo owner in
    plan_of arr
      (Array.init (Value.rank arr) (fun k ->
           let alo, ahi = arr.Value.bounds.(k) in
           match sa.GI.sa_dims.(k) with
           | None -> (alo, ahi)
           | Some g ->
               ( max alo b.Autocfd_partition.Block.lo.(g),
                 min ahi b.Autocfd_partition.Block.hi.(g) )))
  in
  P_allgather
    (List.map
       (fun name ->
         let arr = iface.i_array m name in
         let mine = owned_offsets rank arr name in
         let peers =
           Array.init nranks (fun peer ->
               if peer = rank then plan_of_offsets [||]
               else owned_offsets peer arr name)
         in
         (name, mine, peers))
       arrays)

(* assemble the final global state from the per-rank machines: status
   arrays stitched from their owners' blocks, scalars from rank 0 *)
let gather_results :
    'm.
    'm iface ->
    gi:GI.t ->
    topo:Topology.t ->
    nranks:int ->
    machine:(int -> 'm) ->
    Ast.program_unit ->
    (string * Value.arr) list * (string * Value.scalar) list =
 fun iface ~gi ~topo ~nranks ~machine u ->
  let m0 = machine 0 in
  let gathered =
    List.map
      (fun name ->
        let a0 = iface.i_array m0 name in
        match GI.find_status gi name with
        | None -> (name, Value.copy a0)
        | Some sa ->
            let out = Value.copy a0 in
            for r = 0 to nranks - 1 do
              let src = iface.i_array (machine r) name in
              let block = Topology.block topo r in
              let ranges =
                Array.init (Value.rank src) (fun k ->
                    let alo, ahi = src.Value.bounds.(k) in
                    match sa.GI.sa_dims.(k) with
                    | None -> (alo, ahi)
                    | Some g ->
                        ( max alo block.Autocfd_partition.Block.lo.(g),
                          min ahi block.Autocfd_partition.Block.hi.(g) ))
              in
              iter_box ranges (fun idx -> Value.set out idx (Value.get src idx))
            done;
            (name, out))
      (iface.i_array_names m0)
  in
  let scalars =
    List.filter_map
      (fun u_decl ->
        if u_decl.Ast.d_dims = [] then
          match iface.i_scalar m0 u_decl.Ast.d_name with
          | v -> Some (u_decl.Ast.d_name, v)
          | exception Machine.Runtime_error _ -> None
        else None)
      u.Ast.u_decls
  in
  (gathered, scalars)

let run_with : 'm. 'm iface -> etag:string -> config -> Ast.program_unit -> result =
 fun iface ~etag config u ->
  let topo = config.topo and gi = config.gi in
  let nranks = Topology.nranks topo in
  let machines = Array.make nranks None in
  let flops_per_rank = Array.make nranks 0.0 in
  let endpoints : Reliable.t option array = Array.make nranks None in
  (* per-rank checkpoint generations, most recent first; persists across
     restart attempts *)
  let snapshots : snapshot list array = Array.make nranks [] in
  let saved = ref 0 and restored = ref 0 in
  let output_prefix = ref [] in
  let nranks_total = nranks in
  let sync_tbl =
    match config.tracer with
    | None -> Hashtbl.create 1
    | Some _ -> sync_points u
  in
  (* newest visit count for which EVERY rank holds a snapshot: checkpoint
     decisions are deterministic in the visit counter, so a snapshot at
     visit v on one rank implies every rank that reached v also took one *)
  let restore_of () =
    if Array.exists (fun l -> l = []) snapshots then None
    else
      let target =
        Array.fold_left
          (fun acc l -> min acc (List.hd l).ck_visits)
          max_int snapshots
      in
      let picked =
        Array.map
          (List.find_opt (fun s -> s.ck_visits = target))
          snapshots
      in
      if Array.for_all Option.is_some picked then
        Some (Array.map Option.get picked)
      else None
  in
  let attempt restore =
    Array.fill machines 0 nranks None;
    Array.fill flops_per_rank 0 nranks 0.0;
    Array.fill endpoints 0 nranks None;
    let restore_target =
      match restore with
      | Some snaps ->
          output_prefix := snaps.(0).ck_output;
          snaps.(0).ck_visits
      | None ->
          output_prefix := [];
          0
    in
  let body (c : Sim.comm) =
    let r = Sim.rank c in
    let block = Topology.block topo r in
    let plans : (int, plan) Hashtbl.t = Hashtbl.create 16 in
    (* reliable transport: only paid for when faults are injected *)
    let ep =
      match config.faults with
      | Some _ -> Some (Reliable.create c)
      | None -> None
    in
    endpoints.(r) <- ep;
    let p2p_send ~dest ~tag payload =
      match ep with
      | Some e -> Reliable.send e ~dest ~tag payload
      | None -> Sim.send c ~dest ~tag payload
    in
    let p2p_recv ~src ~tag =
      match ep with
      | Some e -> Reliable.recv e ~src ~tag
      | None -> Sim.recv c ~src ~tag
    in
    let flush () = match ep with Some e -> Reliable.flush e | None -> () in
    (* recovery replay state: count sync-point visits (identical sequence
       on every rank); until the restore target is reached, communication
       is suppressed and the unit replays on local data only *)
    let visits = ref 0 in
    let pipe_open = ref 0 in
    let live = ref (restore_target = 0) in
    (* lazy compute-time accounting: charge accumulated flops before any
       blocking operation *)
    let last_flops = ref 0.0 in
    let machine_ref = ref None in
    let charge () =
      match !machine_ref with
      | None -> ()
      | Some m ->
          let f = iface.i_flops m in
          let delta = f -. !last_flops in
          last_flops := f;
          if !live && config.flop_time > 0.0 then
            Sim.advance c (delta *. config.flop_time)
    in
    let get_machine () = Option.get !machine_ref in
    let trace_ckpt ~save ~bytes =
      match config.tracer with
      | Some tr ->
          let now = Sim.time c in
          Trace.record tr ~rank:r ~t0:now ~t1:now
            (Trace.Checkpoint { save; bytes })
      | None -> ()
    in
    (* checkpoint I/O priced at the stable store's bandwidth (node-local
       storage, not the cluster interconnect) *)
    let ckpt_cost bytes =
      let bw =
        match config.recovery with
        | Some rc -> rc.rc_bandwidth
        | None -> default_recovery.rc_bandwidth
      in
      float_of_int bytes /. bw
    in
    let maybe_restore m =
      if (not !live) && !visits >= restore_target then begin
        (match restore with
        | Some snaps ->
            let s = snaps.(r) in
            List.iter (fun (n, v) -> iface.i_set_scalar m n v) s.ck_scalars;
            List.iter
              (fun (n, data) ->
                let dst = (iface.i_array m n).Value.data in
                Array.blit data 0 dst 0 (Array.length data))
              s.ck_arrays;
            last_flops := iface.i_flops m;
            let bytes = snapshot_bytes s in
            Sim.advance c (ckpt_cost bytes);
            trace_ckpt ~save:false ~bytes;
            if r = 0 then incr restored
        | None -> ());
        live := true
      end
    in
    let maybe_checkpoint m =
      match config.recovery with
      | Some rc
        when rc.rc_every > 0 && !pipe_open = 0
             && !visits mod rc.rc_every = 0 ->
          let s =
            {
              ck_visits = !visits;
              ck_scalars =
                List.filter
                  (fun (_, v) ->
                    match v with Value.Str _ -> false | _ -> true)
                  (iface.i_scalar_bindings m);
              ck_arrays =
                List.map
                  (fun n ->
                    (n, Array.copy (iface.i_array m n).Value.data))
                  (iface.i_array_names m);
              ck_output =
                (if r = 0 then !output_prefix @ iface.i_output m else []);
            }
          in
          snapshots.(r) <-
            s
            :: (List.filter (fun o -> o.ck_visits < s.ck_visits) snapshots.(r)
               |> List.filteri (fun i _ -> i < snapshot_history - 1));
          if r = 0 then incr saved;
          let bytes = snapshot_bytes s in
          Sim.advance c (ckpt_cost bytes);
          trace_ckpt ~save:true ~bytes
      | _ -> ()
    in
    (* run a communication hook body inside its sync-point phase: set the
       rank's sync context (so simulator events recorded within attribute
       their messages and blocked time to this point) and emit the phase
       span tagged with the enclosing loop variable and iteration *)
    let traced m sid f =
      match config.tracer with
      | None -> f ()
      | Some tr -> (
          match Hashtbl.find_opt sync_tbl sid with
          | None -> f ()
          | Some si ->
              let iter =
                match si.si_loop with
                | None -> None
                | Some v -> (
                    match iface.i_scalar m v with
                    | Value.Int i -> Some i
                    | Value.Real x -> Some (int_of_float x)
                    | Value.Bool _ | Value.Str _ -> None
                    | exception Machine.Runtime_error _ -> None)
              in
              let t0 = Sim.time c in
              Trace.set_sync tr ~rank:r ~sync:si.si_id;
              Fun.protect
                ~finally:(fun () -> Trace.clear_sync tr ~rank:r)
                f;
              Trace.phase tr ~rank:r ~t0 ~t1:(Sim.time c) ~sync:si.si_id
                ~label:si.si_label ?loop:si.si_loop ?iter ())
    in
    let exchange_plan m sid transfers =
      match Hashtbl.find_opt plans sid with
      | Some (P_exchange p) -> p
      | _ ->
          let p =
            cached_plan ~etag ~topo ~rank:r ~sid (fun () ->
                build_exchange_plan iface ~gi ~topo ~rank:r m transfers)
          in
          Hashtbl.replace plans sid p;
          (match p with P_exchange l -> l | _ -> assert false)
    in
    let do_exchange m sid transfers =
      List.iter
        (fun xp ->
          let data = (iface.i_array m xp.xp_array).Value.data in
          (* send my boundary planes towards xfer_dir, then receive the
             matching planes from the opposite neighbor *)
          (match xp.xp_send with
          | Some (dest, p) ->
              p2p_send ~dest ~tag:tag_exchange (pack p data)
          | None -> ());
          match xp.xp_recv with
          | Some (src, p) ->
              let payload = p2p_recv ~src ~tag:tag_exchange in
              if Array.length payload <> p.pp_total then
                failwith "Spmd: halo exchange size mismatch";
              unpack p data payload
          | None -> ())
        (exchange_plan m sid transfers)
    in
    let pipe_plan ~recv m sid ~dim ~dir arrays =
      match Hashtbl.find_opt plans sid with
      | Some (P_pipe p) -> p
      | _ ->
          let p =
            cached_plan ~etag ~topo ~rank:r ~sid (fun () ->
                build_pipe_plan iface ~gi ~topo ~rank:r ~recv ~dim ~dir m
                  arrays)
          in
          Hashtbl.replace plans sid p;
          (match p with P_pipe o -> o | _ -> assert false)
    in
    let do_pipe ~recv m sid ~dim ~dir arrays =
      (* recv: wait for the upstream neighbor's fresh planes before the
         sweep; send: forward my downstream boundary after it *)
      match pipe_plan ~recv m sid ~dim ~dir arrays with
      | None -> ()
      | Some (peer, per_array) ->
          List.iter
            (fun (name, p) ->
              let data = (iface.i_array m name).Value.data in
              if recv then begin
                let payload = p2p_recv ~src:peer ~tag:tag_pipe in
                if Array.length payload <> p.pp_total then
                  failwith "Spmd: pipeline message size mismatch";
                unpack p data payload
              end
              else p2p_send ~dest:peer ~tag:tag_pipe (pack p data))
            per_array
    in
    let allgather_plan m sid arrays =
      match Hashtbl.find_opt plans sid with
      | Some (P_allgather p) -> p
      | _ ->
          let p =
            cached_plan ~etag ~topo ~rank:r ~sid (fun () ->
                build_allgather_plan iface ~gi ~topo ~rank:r
                  ~nranks:nranks_total m arrays)
          in
          Hashtbl.replace plans sid p;
          (match p with P_allgather l -> l | _ -> assert false)
    in
    let do_allgather m sid arrays =
      (* exchange owned regions with every other rank so each rank holds
         the full fresh array *)
      List.iter
        (fun (name, mine, peers) ->
          let data = (iface.i_array m name).Value.data in
          let payload = pack mine data in
          for peer = 0 to nranks_total - 1 do
            if peer <> r then p2p_send ~dest:peer ~tag:tag_gather payload
          done;
          for peer = 0 to nranks_total - 1 do
            if peer <> r then begin
              let p = peers.(peer) in
              let pl = p2p_recv ~src:peer ~tag:tag_gather in
              if Array.length pl <> p.pp_total then
                failwith "Spmd: allgather size mismatch";
              unpack p data pl
            end
          done)
        (allgather_plan m sid arrays)
    in
    let hooks =
      {
        g_block =
          (fun d ->
            (block.Autocfd_partition.Block.lo.(d),
             block.Autocfd_partition.Block.hi.(d)));
        g_comm =
          (fun m ~sid comm ->
            charge ();
            incr visits;
            if not !live then maybe_restore m
            else begin
              (* an unacknowledged envelope must not survive into a
                 collective: its sender would park where no retransmit can
                 happen *)
              (match comm with
              | Ast.Allreduce_max _ | Ast.Allreduce_min _
              | Ast.Allreduce_sum _ | Ast.Broadcast _ | Ast.Barrier ->
                  flush ()
              | Ast.Exchange _ | Ast.Allgather _ -> ());
              traced m sid (fun () ->
                  match comm with
                  | Ast.Exchange ts -> do_exchange m sid ts
                  | Ast.Allreduce_max v ->
                      let x = Value.to_float (iface.i_scalar m v) in
                      iface.i_set_scalar m v
                        (Value.Real (Sim.allreduce c `Max x))
                  | Ast.Allreduce_min v ->
                      let x = Value.to_float (iface.i_scalar m v) in
                      iface.i_set_scalar m v
                        (Value.Real (Sim.allreduce c `Min x))
                  | Ast.Allreduce_sum v ->
                      let x = Value.to_float (iface.i_scalar m v) in
                      iface.i_set_scalar m v
                        (Value.Real (Sim.allreduce c `Sum x))
                  | Ast.Broadcast vars ->
                      let data =
                        if r = 0 then
                          Array.of_list
                            (List.map
                               (fun v -> Value.to_float (iface.i_scalar m v))
                               vars)
                        else Array.make (List.length vars) 0.0
                      in
                      let data = Sim.bcast c ~root:0 data in
                      List.iteri
                        (fun i v ->
                          iface.i_set_scalar m v (Value.Real data.(i)))
                        vars
                  | Ast.Allgather arrays -> do_allgather m sid arrays
                  | Ast.Barrier -> Sim.barrier c);
              maybe_checkpoint m
            end);
        g_pipe_recv =
          (fun m ~sid ~dim ~dir arrays ->
            charge ();
            incr visits;
            (* a pipeline stream is now mid-flight: the matching send sits
               at a LATER visit on the upstream rank, so a cut here would
               not be consistent — no checkpoint until it closes *)
            incr pipe_open;
            if not !live then maybe_restore m
            else
              traced m sid (fun () ->
                  do_pipe ~recv:true m sid ~dim ~dir arrays));
        g_pipe_send =
          (fun m ~sid ~dim ~dir arrays ->
            charge ();
            incr visits;
            decr pipe_open;
            if not !live then maybe_restore m
            else begin
              traced m sid (fun () ->
                  do_pipe ~recv:false m sid ~dim ~dir arrays);
              maybe_checkpoint m
            end);
        g_read =
          (fun m n ->
            charge ();
            incr visits;
            if not !live then begin
              (* replay: every rank reads its own copy of the input list —
                 same values the broadcast delivered, no communication *)
              let data = iface.i_read0 m n in
              maybe_restore m;
              data
            end
            else begin
              flush ();
              let data =
                if r = 0 then iface.i_read0 m n else Array.make n 0.0
              in
              let out = Sim.bcast c ~root:0 data in
              maybe_checkpoint m;
              out
            end);
        g_write =
          (fun m values -> if !live && r = 0 then iface.i_write0 m values);
      }
    in
    let m = iface.i_spawn hooks config.input in
    machine_ref := Some m;
    machines.(r) <- Some m;
    iface.i_run m;
    if not !live then
      failwith
        "Spmd: restart replay never reached the checkpointed sync point \
         (control flow depends on communication results?)";
    charge ();
    flush ();
    flops_per_rank.(r) <- iface.i_flops (get_machine ());
    (* per-nest profile summaries: one Kernel event per executed nest,
       spanning [0, self-time] on the virtual clock.  Emitted after the
       run so they are summaries, not timeline slices — Metrics folds
       them into its kernel table instead of the rank accounting *)
    match config.tracer with
    | None -> ()
    | Some tr ->
        List.iter
          (fun (k : Compile.kernel_stat) ->
            if k.Compile.ks_calls > 0 then
              Trace.record tr ~rank:r ~t0:0.0
                ~t1:(k.Compile.ks_flops *. config.flop_time)
                (kernel_event k))
          (iface.i_kernels (get_machine ()))
  in
  Sim.run ~net:config.net ?tracer:config.tracer ?faults:config.faults
    ~nranks body
  in
  let max_restarts =
    match config.recovery with Some rc -> rc.rc_max_restarts | None -> 0
  in
  let rec attempts restarts =
    let restore = if restarts = 0 then None else restore_of () in
    match attempt restore with
    | stats -> (stats, restarts)
    | exception Sim.Timeout msg ->
        if restarts >= max_restarts then raise (Sim.Timeout msg)
        else attempts (restarts + 1)
  in
  let stats, restarts = attempts 0 in
  let machine r = Option.get machines.(r) in
  let m0 = machine 0 in
  let gathered, scalars = gather_results iface ~gi ~topo ~nranks ~machine u in
  let resilience =
    let sum f =
      Array.fold_left
        (fun acc ep ->
          match ep with Some e -> acc + f (Reliable.stats e) | None -> acc)
        0 endpoints
    in
    {
      rs_restarts = restarts;
      rs_checkpoints = !saved;
      rs_restores = !restored;
      rs_retransmits = sum (fun s -> s.Reliable.rl_retransmits);
      rs_dup_suppressed = sum (fun s -> s.Reliable.rl_dup_suppressed);
      rs_checksum_failures = sum (fun s -> s.Reliable.rl_checksum_failures);
    }
  in
  {
    stats;
    output = !output_prefix @ iface.i_output m0;
    gathered;
    scalars;
    flops_per_rank;
    resilience;
    domains = None;
  }

(* ------------------------------------------------------------------ *)
(* Engine wiring                                                       *)
(* ------------------------------------------------------------------ *)

let tree_iface (u : Ast.program_unit) : Machine.t iface =
  {
    i_spawn =
      (fun g input ->
        let hooks =
          {
            Machine.h_block = Some g.g_block;
            h_comm = g.g_comm;
            h_pipe_recv = g.g_pipe_recv;
            h_pipe_send = g.g_pipe_send;
            h_read = g.g_read;
            h_write = g.g_write;
          }
        in
        Machine.create ~hooks ~input u);
    i_run = Machine.run;
    i_flops = Machine.flops;
    i_array = Machine.array;
    i_scalar = Machine.scalar;
    i_set_scalar = Machine.set_scalar;
    i_scalar_bindings = Machine.scalar_bindings;
    i_array_names = Machine.array_names;
    i_output = Machine.output;
    i_read0 = Machine.sequential_hooks.Machine.h_read;
    i_write0 = Machine.sequential_hooks.Machine.h_write;
    i_kernels = (fun _ -> []);
  }

let compiled_iface ?(fuse = false) (u : Ast.program_unit) :
    Compile.state iface =
  let cu = Compile.of_unit ~fuse u in
  {
    i_spawn =
      (fun g input ->
        let hooks =
          {
            Compile.h_block = Some g.g_block;
            h_comm = g.g_comm;
            h_pipe_recv = g.g_pipe_recv;
            h_pipe_send = g.g_pipe_send;
            h_read = g.g_read;
            h_write = g.g_write;
          }
        in
        Compile.create ~hooks ~input cu);
    i_run = Compile.run;
    i_flops = Compile.flops;
    i_array = Compile.array;
    i_scalar = Compile.scalar;
    i_set_scalar = Compile.set_scalar;
    i_scalar_bindings = Compile.scalar_bindings;
    i_array_names = Compile.array_names;
    i_output = Compile.output;
    i_read0 = Compile.sequential_hooks.Compile.h_read;
    i_write0 = Compile.sequential_hooks.Compile.h_write;
    i_kernels = Compile.kernel_stats;
  }

(* ------------------------------------------------------------------ *)
(* Domains engine: real parallel execution on OCaml 5 domains          *)
(* ------------------------------------------------------------------ *)

(* one wall-clock sync-point span, buffered per rank during the run (the
   tracer is not thread-safe) and replayed after the domains are joined *)
type pending_phase = {
  pe_t0 : float;
  pe_t1 : float;
  pe_sync : int;
  pe_label : string;
  pe_loop : string option;
  pe_iter : int option;
}

(* split an exchange plan (sorted by dim) into its dim groups *)
let dim_groups xps =
  let rec span d = function
    | x :: rest when x.xp_dim = d ->
        let g, tail = span d rest in
        (x :: g, tail)
    | l -> ([], l)
  in
  let rec go = function
    | [] -> []
    | x :: _ as l ->
        let g, tail = span x.xp_dim l in
        g :: go tail
  in
  go xps

(* Every rank executes on its own domain; fields stay plain [float
   array]s, which the OCaml 5 shared heap makes visible to every other
   domain, so a halo exchange is a bounds-checked blit straight out of
   the neighbour's array.  The element offsets are the PR 3 pack plans:
   both sides of a transfer compute identical offsets (all ranks allocate
   full-extent arrays), so the simulator's pack -> message -> unpack
   pipeline collapses to [dst.(o) <- src.(o)] over the recv plan.

   Ordering protocol: a barrier opens every exchange (the neighbours'
   producing compute must be complete) and closes every dim group —
   higher-dim transfers read lower-dim halo cells through the diagonal
   extension, so those writes must land first.  Within one group, cells
   written (my halo in that dim) and cells peers read from me (my owned
   boundary, plus lower-dim halo written in earlier groups) are disjoint,
   so no intra-group fence is needed.  Collectives run through {!Shm},
   whose allreduce folds contributions in rank order with exactly the
   simulator's combine — the whole run is bit-identical to [Fused]. *)
let run_domains : 'm. 'm iface -> config -> Ast.program_unit -> result =
 fun iface config u ->
  if config.faults <> None then
    invalid_arg "Spmd: the Domains engine does not support fault injection";
  if config.recovery <> None then
    invalid_arg "Spmd: the Domains engine does not support recovery";
  let etag = "domains" in
  let topo = config.topo and gi = config.gi in
  let nranks = Topology.nranks topo in
  let machines = Array.make nranks None in
  let flops_per_rank = Array.make nranks 0.0 in
  let compute_wall = Array.make nranks 0.0 in
  let comm_samples : (int * float) list array = Array.make nranks [] in
  let pending : pending_phase list array = Array.make nranks [] in
  let sync_tbl =
    match config.tracer with
    | None -> Hashtbl.create 1
    | Some _ -> sync_points u
  in
  let body (c : Shm.comm) =
    let r = Shm.rank c in
    let block = Topology.block topo r in
    let plans : (int, plan) Hashtbl.t = Hashtbl.create 16 in
    let last = ref 0.0 in
    let compute = ref 0.0 in
    let copy_bytes = ref 0 in
    let samples = ref [] in
    (* close the open compute interval at a communication hook; reopen
       it when the hook returns *)
    let enter () =
      let t = Shm.time c in
      compute := !compute +. (t -. !last);
      t
    in
    let leave () = last := Shm.time c in
    let peer_data name peer =
      match machines.(peer) with
      | Some m -> (iface.i_array m name).Value.data
      | None -> failwith "Spmd: Domains peer machine not published"
    in
    let blit_in p ~src ~dst =
      if Array.length src <> Array.length dst then
        failwith "Spmd: halo blit shape mismatch";
      if p.pp_blit then
        Array.iter
          (fun (start, len) -> Array.blit src start dst start len)
          p.pp_segs
      else begin
        let offs = p.pp_offs in
        for i = 0 to p.pp_total - 1 do
          let o = offs.(i) in
          dst.(o) <- src.(o)
        done
      end;
      copy_bytes := !copy_bytes + (8 * p.pp_total)
    in
    let get_plan sid build extract =
      match Hashtbl.find_opt plans sid with
      | Some p -> extract p
      | None ->
          let p = cached_plan ~etag ~topo ~rank:r ~sid build in
          Hashtbl.replace plans sid p;
          extract p
    in
    let do_exchange m sid transfers =
      let xps =
        get_plan sid
          (fun () -> build_exchange_plan iface ~gi ~topo ~rank:r m transfers)
          (function P_exchange l -> l | _ -> assert false)
      in
      Shm.barrier c;
      List.iter
        (fun group ->
          List.iter
            (fun xp ->
              match xp.xp_recv with
              | Some (src, p) ->
                  blit_in p ~src:(peer_data xp.xp_array src)
                    ~dst:(iface.i_array m xp.xp_array).Value.data
              | None -> ())
            group;
          Shm.barrier c)
        (dim_groups xps)
    in
    let do_allgather m sid arrays =
      let per_array =
        get_plan sid
          (fun () ->
            build_allgather_plan iface ~gi ~topo ~rank:r ~nranks m arrays)
          (function P_allgather l -> l | _ -> assert false)
      in
      Shm.barrier c;
      List.iter
        (fun (name, _mine, peers) ->
          let dst = (iface.i_array m name).Value.data in
          for peer = 0 to nranks - 1 do
            if peer <> r then blit_in peers.(peer) ~src:(peer_data name peer) ~dst
          done)
        per_array;
      Shm.barrier c
    in
    let do_pipe ~recv m sid ~dim ~dir arrays =
      let p =
        get_plan sid
          (fun () ->
            build_pipe_plan iface ~gi ~topo ~rank:r ~recv ~dim ~dir m arrays)
          (function P_pipe o -> o | _ -> assert false)
      in
      match p with
      | None -> ()
      | Some (peer, per_array) ->
          List.iter
            (fun (name, p) ->
              let data = (iface.i_array m name).Value.data in
              if recv then begin
                let payload = Shm.recv c ~src:peer ~tag:tag_pipe in
                if Array.length payload <> p.pp_total then
                  failwith "Spmd: pipeline message size mismatch";
                unpack p data payload
              end
              else Shm.send c ~dest:peer ~tag:tag_pipe (pack p data))
            per_array
    in
    let traced m sid f =
      match config.tracer with
      | None -> f ()
      | Some _ -> (
          match Hashtbl.find_opt sync_tbl sid with
          | None -> f ()
          | Some si ->
              let iter =
                match si.si_loop with
                | None -> None
                | Some v -> (
                    match iface.i_scalar m v with
                    | Value.Int i -> Some i
                    | Value.Real x -> Some (int_of_float x)
                    | Value.Bool _ | Value.Str _ -> None
                    | exception Machine.Runtime_error _ -> None)
              in
              let t0 = Shm.time c in
              f ();
              pending.(r) <-
                {
                  pe_t0 = t0;
                  pe_t1 = Shm.time c;
                  pe_sync = si.si_id;
                  pe_label = si.si_label;
                  pe_loop = si.si_loop;
                  pe_iter = iter;
                }
                :: pending.(r))
    in
    let hooks =
      {
        g_block =
          (fun d ->
            (block.Autocfd_partition.Block.lo.(d),
             block.Autocfd_partition.Block.hi.(d)));
        g_comm =
          (fun m ~sid comm ->
            let t_in = enter () in
            let b0 = !copy_bytes in
            traced m sid (fun () ->
                match comm with
                | Ast.Exchange ts -> do_exchange m sid ts
                | Ast.Allreduce_max v ->
                    let x = Value.to_float (iface.i_scalar m v) in
                    iface.i_set_scalar m v
                      (Value.Real (Shm.allreduce c `Max x))
                | Ast.Allreduce_min v ->
                    let x = Value.to_float (iface.i_scalar m v) in
                    iface.i_set_scalar m v
                      (Value.Real (Shm.allreduce c `Min x))
                | Ast.Allreduce_sum v ->
                    let x = Value.to_float (iface.i_scalar m v) in
                    iface.i_set_scalar m v
                      (Value.Real (Shm.allreduce c `Sum x))
                | Ast.Broadcast vars ->
                    let data =
                      if r = 0 then
                        Array.of_list
                          (List.map
                             (fun v -> Value.to_float (iface.i_scalar m v))
                             vars)
                      else Array.make (List.length vars) 0.0
                    in
                    let data = Shm.bcast c ~root:0 data in
                    List.iteri
                      (fun i v -> iface.i_set_scalar m v (Value.Real data.(i)))
                      vars
                | Ast.Allgather arrays -> do_allgather m sid arrays
                | Ast.Barrier -> Shm.barrier c);
            (match comm with
            | Ast.Exchange _ | Ast.Allgather _ ->
                samples :=
                  (!copy_bytes - b0, Shm.time c -. t_in) :: !samples
            | _ -> ());
            leave ());
        g_pipe_recv =
          (fun m ~sid ~dim ~dir arrays ->
            ignore (enter () : float);
            traced m sid (fun () -> do_pipe ~recv:true m sid ~dim ~dir arrays);
            leave ());
        g_pipe_send =
          (fun m ~sid ~dim ~dir arrays ->
            ignore (enter () : float);
            traced m sid (fun () ->
                do_pipe ~recv:false m sid ~dim ~dir arrays);
            leave ());
        g_read =
          (fun m n ->
            ignore (enter () : float);
            let data =
              if r = 0 then iface.i_read0 m n else Array.make n 0.0
            in
            let out = Shm.bcast c ~root:0 data in
            leave ();
            out);
        g_write = (fun m values -> if r = 0 then iface.i_write0 m values);
      }
    in
    let m = iface.i_spawn hooks config.input in
    machines.(r) <- Some m;
    (* publish before anyone's first exchange can read a peer's array *)
    Shm.barrier c;
    last := Shm.time c;
    iface.i_run m;
    let t_end = Shm.time c in
    compute := !compute +. (t_end -. !last);
    compute_wall.(r) <- !compute;
    comm_samples.(r) <- List.rev !samples;
    flops_per_rank.(r) <- iface.i_flops m
  in
  let shm =
    try Shm.run ~nranks body
    with Shm.Rank_failure (r, e) -> raise (Sim.Rank_failure (r, e))
  in
  let ranks = shm.Shm.ranks in
  let sum_i f = Array.fold_left (fun acc rs -> acc + f rs) 0 ranks in
  let stats =
    {
      Sim.elapsed = shm.Shm.elapsed;
      rank_times = Array.map (fun rs -> rs.Shm.rs_wall) ranks;
      messages = sum_i (fun rs -> rs.Shm.rs_sends);
      bytes = sum_i (fun rs -> rs.Shm.rs_bytes);
      collectives = ranks.(0).Shm.rs_collectives;
      rank_sends = Array.map (fun rs -> rs.Shm.rs_sends) ranks;
      rank_recvs = Array.map (fun rs -> rs.Shm.rs_recvs) ranks;
      rank_blocked =
        Array.map (fun rs -> rs.Shm.rs_barrier_wait +. rs.Shm.rs_recv_wait) ranks;
    }
  in
  let machine r = Option.get machines.(r) in
  (match config.tracer with
  | None -> ()
  | Some tr ->
      Trace.prepare tr ~nranks;
      Array.iteri
        (fun r pend ->
          List.iter
            (fun pe ->
              Trace.phase tr ~wall:true ~rank:r ~t0:pe.pe_t0 ~t1:pe.pe_t1
                ~sync:pe.pe_sync ~label:pe.pe_label ?loop:pe.pe_loop
                ?iter:pe.pe_iter ())
            (List.rev pend))
        pending;
      Array.iteri
        (fun r rs ->
          List.iter
            (fun (w : Shm.wait) ->
              if w.Shm.w_dur > 0.0 then
                Trace.record tr ~wall:true ~rank:r ~t0:w.Shm.w_start
                  ~t1:(w.Shm.w_start +. w.Shm.w_dur)
                  (Trace.Blocked
                     {
                       src = -1;
                       tag = (if w.Shm.w_barrier then -1 else tag_pipe);
                     }))
            rs.Shm.rs_waits)
        ranks;
      (* kernel summaries in measured wall seconds: the rank's compute
         wall split across nests by their flop shares *)
      Array.iteri
        (fun r _ ->
          let ks = iface.i_kernels (machine r) in
          let total =
            List.fold_left (fun a k -> a +. k.Compile.ks_flops) 0.0 ks
          in
          List.iter
            (fun (k : Compile.kernel_stat) ->
              if k.Compile.ks_calls > 0 then begin
                let frac =
                  if total > 0.0 then k.Compile.ks_flops /. total else 0.0
                in
                Trace.record tr ~wall:true ~rank:r ~t0:0.0
                  ~t1:(compute_wall.(r) *. frac)
                  (kernel_event k)
              end)
            ks)
        machines);
  let m0 = machine 0 in
  let gathered, scalars = gather_results iface ~gi ~topo ~nranks ~machine u in
  let dstats =
    {
      ds_wall = shm.Shm.elapsed;
      ds_rank_wall = Array.map (fun rs -> rs.Shm.rs_wall) ranks;
      ds_compute = Array.copy compute_wall;
      ds_barrier_wait = Array.map (fun rs -> rs.Shm.rs_barrier_wait) ranks;
      ds_barrier_calls = ranks.(0).Shm.rs_barrier_calls;
      ds_flops = Array.copy flops_per_rank;
      ds_comm_samples = List.concat (Array.to_list comm_samples);
    }
  in
  {
    stats;
    output = iface.i_output m0;
    gathered;
    scalars;
    flops_per_rank;
    resilience = no_resilience;
    domains = Some dstats;
  }

let run ?(engine = Fused) config (u : Ast.program_unit) =
  match engine with
  | Tree -> run_with (tree_iface u) ~etag:"tree" config u
  | Compiled -> run_with (compiled_iface u) ~etag:"compiled" config u
  | Fused -> run_with (compiled_iface ~fuse:true u) ~etag:"fused" config u
  | Domains -> run_domains (compiled_iface ~fuse:true u) config u
