open Autocfd_fortran
open Autocfd_mpsim
module GI = Autocfd_analysis.Grid_info
module Topology = Autocfd_partition.Topology
module Trace = Autocfd_obs.Trace

type config = {
  gi : GI.t;
  topo : Topology.t;
  net : Netmodel.t;
  flop_time : float;
  input : float list;
  tracer : Trace.t option;
}

type result = {
  stats : Sim.stats;
  output : string list;
  gathered : (string * Value.arr) list;
  scalars : (string * Value.scalar) list;
  flops_per_rank : float array;
}

let tag_exchange = 3
let tag_pipe = 5
let tag_gather = 7

(* ------------------------------------------------------------------ *)
(* Sync-point table: every communication statement of the SPMD unit,   *)
(* numbered in program order and labelled for tracing                  *)
(* ------------------------------------------------------------------ *)

type sync_info = {
  si_id : int;
  si_label : string;
  si_loop : string option;  (* enclosing DO variable *)
}

let dir_str = function Ast.Dplus -> "+" | Ast.Dminus -> "-"

let describe_comm = function
  | Ast.Exchange ts ->
      "halo "
      ^ String.concat " "
          (List.map
             (fun (t : Ast.transfer) ->
               Printf.sprintf "%s(d%d%s,%d)" t.Ast.xfer_array t.Ast.xfer_dim
                 (dir_str t.Ast.xfer_dir) t.Ast.xfer_depth)
             ts)
  | Ast.Allreduce_max v -> "allreduce max " ^ v
  | Ast.Allreduce_min v -> "allreduce min " ^ v
  | Ast.Allreduce_sum v -> "allreduce sum " ^ v
  | Ast.Broadcast vars -> "bcast " ^ String.concat "," vars
  | Ast.Allgather arrays -> "allgather " ^ String.concat "," arrays
  | Ast.Barrier -> "barrier"

let sync_points (u : Ast.program_unit) =
  let tbl = Hashtbl.create 32 in
  let next = ref 0 in
  let add sid label loop =
    Hashtbl.replace tbl sid
      { si_id = !next; si_label = label; si_loop = loop };
    incr next
  in
  let rec walk loop stmts =
    List.iter
      (fun (st : Ast.stmt) ->
        match st.Ast.s_kind with
        | Ast.Do d -> walk (Some d.Ast.do_var) d.Ast.do_body
        | Ast.If (branches, els) ->
            List.iter (fun (_, b) -> walk loop b) branches;
            Option.iter (walk loop) els
        | Ast.Comm c -> add st.Ast.s_id (describe_comm c) loop
        | Ast.Pipeline_recv { dim; dir; arrays } ->
            add st.Ast.s_id
              (Printf.sprintf "pipe recv d%d%s %s" dim (dir_str dir)
                 (String.concat "," (List.map fst arrays)))
              loop
        | Ast.Pipeline_send { dim; dir; arrays } ->
            add st.Ast.s_id
              (Printf.sprintf "pipe send d%d%s %s" dim (dir_str dir)
                 (String.concat "," (List.map fst arrays)))
              loop
        | _ -> ())
      stmts
  in
  walk None u.Ast.u_body;
  tbl

(* iterate an n-dimensional inclusive range *)
let iter_box ranges f =
  let n = Array.length ranges in
  let idx = Array.map fst ranges in
  if Array.for_all (fun (lo, hi) -> lo <= hi) ranges then begin
    let rec go d =
      if d = n then f idx
      else
        let lo, hi = ranges.(d) in
        for i = lo to hi do
          idx.(d) <- i;
          go (d + 1)
        done
    in
    go 0
  end

let box_size ranges =
  Array.fold_left (fun acc (lo, hi) -> acc * max 0 (hi - lo + 1)) 1 ranges

(* The array-dim ranges of the planes a given OWNER rank sends for one
   transfer.  [ext] extends already-refreshed lower grid dimensions so that
   diagonal (corner) stencil points are carried (sequenced exchange). *)
let plane_ranges gi topo ~owner_rank (arr : Value.arr)
    (xfer : Ast.transfer) ~ext_of_dim =
  let sa =
    match GI.find_status gi xfer.Ast.xfer_array with
    | Some sa -> sa
    | None -> invalid_arg ("Spmd: transfer of non-status " ^ xfer.Ast.xfer_array)
  in
  let block = Topology.block topo owner_rank in
  Array.init (Value.rank arr) (fun k ->
      let alo, ahi = arr.Value.bounds.(k) in
      match sa.GI.sa_dims.(k) with
      | None -> (alo, ahi) (* packed dimension: full extent *)
      | Some g when g = xfer.Ast.xfer_dim ->
          let blo = block.Autocfd_partition.Block.lo.(g)
          and bhi = block.Autocfd_partition.Block.hi.(g) in
          let lo, hi =
            match xfer.Ast.xfer_dir with
            | Ast.Dplus -> (max blo (bhi - xfer.Ast.xfer_depth + 1), bhi)
            | Ast.Dminus -> (blo, min bhi (blo + xfer.Ast.xfer_depth - 1))
          in
          (max alo lo, min ahi hi)
      | Some g ->
          let blo = block.Autocfd_partition.Block.lo.(g)
          and bhi = block.Autocfd_partition.Block.hi.(g) in
          let ext = if g < xfer.Ast.xfer_dim then ext_of_dim g else 0 in
          (max alo (blo - ext), min ahi (bhi + ext)))

let pack arr ranges =
  let out = Array.make (box_size ranges) 0.0 in
  let i = ref 0 in
  iter_box ranges (fun idx ->
      out.(!i) <- Value.get arr idx;
      incr i);
  out

let unpack arr ranges data =
  let i = ref 0 in
  iter_box ranges (fun idx ->
      Value.set arr idx data.(!i);
      incr i)

(* ranges of the pipeline payload planes sent by [owner_rank]: the owned
   boundary planes of the sweep dimension over the owned ranges of the
   other status dimensions *)
let pipe_ranges gi topo ~owner_rank (arr : Value.arr) ~dim ~dir ~depth array_name =
  let sa =
    match GI.find_status gi array_name with
    | Some sa -> sa
    | None -> invalid_arg ("Spmd: pipeline of non-status " ^ array_name)
  in
  let block = Topology.block topo owner_rank in
  Array.init (Value.rank arr) (fun k ->
      let alo, ahi = arr.Value.bounds.(k) in
      match sa.GI.sa_dims.(k) with
      | None -> (alo, ahi)
      | Some g when g = dim ->
          let blo = block.Autocfd_partition.Block.lo.(g)
          and bhi = block.Autocfd_partition.Block.hi.(g) in
          let lo, hi =
            match dir with
            | Ast.Dplus -> (max blo (bhi - depth + 1), bhi)
            | Ast.Dminus -> (blo, min bhi (blo + depth - 1))
          in
          (max alo lo, min ahi hi)
      | Some g ->
          let blo = block.Autocfd_partition.Block.lo.(g)
          and bhi = block.Autocfd_partition.Block.hi.(g) in
          (max alo blo, min ahi bhi))

let run config (u : Ast.program_unit) =
  let topo = config.topo and gi = config.gi in
  let nranks = Topology.nranks topo in
  let machines = Array.make nranks None in
  let flops_per_rank = Array.make nranks 0.0 in
  let nranks_total = nranks in
  let sync_tbl =
    match config.tracer with
    | None -> Hashtbl.create 1
    | Some _ -> sync_points u
  in
  let body (c : Sim.comm) =
    let r = Sim.rank c in
    let block = Topology.block topo r in
    (* lazy compute-time accounting: charge accumulated flops before any
       blocking operation *)
    let last_flops = ref 0.0 in
    let machine_ref = ref None in
    let charge () =
      match !machine_ref with
      | None -> ()
      | Some m ->
          let f = Machine.flops m in
          let delta = f -. !last_flops in
          last_flops := f;
          if config.flop_time > 0.0 then
            Sim.advance c (delta *. config.flop_time)
    in
    let get_machine () = Option.get !machine_ref in
    let neighbor dim dir =
      let d = match dir with Ast.Dplus -> Topology.Plus | Ast.Dminus -> Topology.Minus in
      Topology.neighbor topo ~rank:r ~dim ~dir:d
    in
    (* run a communication hook body inside its sync-point phase: set the
       rank's sync context (so simulator events recorded within attribute
       their messages and blocked time to this point) and emit the phase
       span tagged with the enclosing loop variable and iteration *)
    let traced m sid f =
      match config.tracer with
      | None -> f ()
      | Some tr -> (
          match Hashtbl.find_opt sync_tbl sid with
          | None -> f ()
          | Some si ->
              let iter =
                match si.si_loop with
                | None -> None
                | Some v -> (
                    match Machine.scalar m v with
                    | Value.Int i -> Some i
                    | Value.Real x -> Some (int_of_float x)
                    | Value.Bool _ | Value.Str _ -> None
                    | exception Machine.Runtime_error _ -> None)
              in
              let t0 = Sim.time c in
              Trace.set_sync tr ~rank:r ~sync:si.si_id;
              Fun.protect
                ~finally:(fun () -> Trace.clear_sync tr ~rank:r)
                f;
              Trace.phase tr ~rank:r ~t0 ~t1:(Sim.time c) ~sync:si.si_id
                ~label:si.si_label ?loop:si.si_loop ?iter ())
    in
    let opposite = function Ast.Dplus -> Ast.Dminus | Ast.Dminus -> Ast.Dplus in
    let do_exchange m transfers =
      let transfers =
        List.sort
          (fun (a : Ast.transfer) b ->
            compare
              (a.Ast.xfer_dim, a.Ast.xfer_array, a.Ast.xfer_dir)
              (b.Ast.xfer_dim, b.Ast.xfer_array, b.Ast.xfer_dir))
          transfers
      in
      let ext_of_dim g =
        List.fold_left
          (fun acc (t : Ast.transfer) ->
            if t.Ast.xfer_dim = g then max acc t.Ast.xfer_depth else acc)
          0 transfers
      in
      List.iter
        (fun (xfer : Ast.transfer) ->
          let arr = Machine.array m xfer.Ast.xfer_array in
          (* send my boundary planes towards xfer_dir *)
          (match neighbor xfer.Ast.xfer_dim xfer.Ast.xfer_dir with
          | Some dest ->
              let ranges =
                plane_ranges gi topo ~owner_rank:r arr xfer ~ext_of_dim
              in
              Sim.send c ~dest ~tag:tag_exchange (pack arr ranges)
          | None -> ());
          (* receive the matching planes from the opposite neighbor *)
          match neighbor xfer.Ast.xfer_dim (opposite xfer.Ast.xfer_dir) with
          | Some src ->
              let ranges =
                plane_ranges gi topo ~owner_rank:src arr xfer ~ext_of_dim
              in
              let data = Sim.recv c ~src ~tag:tag_exchange in
              if Array.length data <> box_size ranges then
                failwith "Spmd: halo exchange size mismatch";
              unpack arr ranges data
          | None -> ())
        transfers
    in
    let do_pipe ~recv m ~dim ~dir arrays =
      (* recv: wait for the upstream neighbor's fresh planes before the
         sweep; send: forward my downstream boundary after it *)
      let peer_dir = if recv then opposite dir else dir in
      match neighbor dim peer_dir with
      | None -> ()
      | Some peer ->
          List.iter
            (fun (name, depth) ->
              let arr = Machine.array m name in
              if recv then begin
                let ranges =
                  pipe_ranges gi topo ~owner_rank:peer arr ~dim ~dir ~depth
                    name
                in
                let data = Sim.recv c ~src:peer ~tag:tag_pipe in
                if Array.length data <> box_size ranges then
                  failwith "Spmd: pipeline message size mismatch";
                unpack arr ranges data
              end
              else
                let ranges =
                  pipe_ranges gi topo ~owner_rank:r arr ~dim ~dir ~depth name
                in
                Sim.send c ~dest:peer ~tag:tag_pipe (pack arr ranges))
            arrays
    in
    let do_allgather m arrays =
      (* exchange owned regions with every other rank so each rank holds
         the full fresh array *)
      let owned_ranges owner arr name =
        let sa =
          match GI.find_status gi name with
          | Some sa -> sa
          | None -> invalid_arg ("Spmd: allgather of non-status " ^ name)
        in
        let b = Topology.block topo owner in
        Array.init (Value.rank arr) (fun k ->
            let alo, ahi = arr.Value.bounds.(k) in
            match sa.GI.sa_dims.(k) with
            | None -> (alo, ahi)
            | Some g ->
                ( max alo b.Autocfd_partition.Block.lo.(g),
                  min ahi b.Autocfd_partition.Block.hi.(g) ))
      in
      List.iter
        (fun name ->
          let arr = Machine.array m name in
          for peer = 0 to nranks_total - 1 do
            if peer <> r then
              Sim.send c ~dest:peer ~tag:tag_gather
                (pack arr (owned_ranges r arr name))
          done;
          for peer = 0 to nranks_total - 1 do
            if peer <> r then begin
              let ranges = owned_ranges peer arr name in
              let data = Sim.recv c ~src:peer ~tag:tag_gather in
              if Array.length data <> box_size ranges then
                failwith "Spmd: allgather size mismatch";
              unpack arr ranges data
            end
          done)
        arrays
    in
    let hooks =
      {
        Machine.h_block =
          Some
            (fun d ->
              (block.Autocfd_partition.Block.lo.(d),
               block.Autocfd_partition.Block.hi.(d)));
        h_comm =
          (fun m ~sid comm ->
            charge ();
            traced m sid (fun () ->
                match comm with
                | Ast.Exchange ts -> do_exchange m ts
                | Ast.Allreduce_max v ->
                    let x = Value.to_float (Machine.scalar m v) in
                    Machine.set_scalar m v
                      (Value.Real (Sim.allreduce c `Max x))
                | Ast.Allreduce_min v ->
                    let x = Value.to_float (Machine.scalar m v) in
                    Machine.set_scalar m v
                      (Value.Real (Sim.allreduce c `Min x))
                | Ast.Allreduce_sum v ->
                    let x = Value.to_float (Machine.scalar m v) in
                    Machine.set_scalar m v
                      (Value.Real (Sim.allreduce c `Sum x))
                | Ast.Broadcast vars ->
                    let data =
                      if r = 0 then
                        Array.of_list
                          (List.map
                             (fun v -> Value.to_float (Machine.scalar m v))
                             vars)
                      else Array.make (List.length vars) 0.0
                    in
                    let data = Sim.bcast c ~root:0 data in
                    List.iteri
                      (fun i v ->
                        Machine.set_scalar m v (Value.Real data.(i)))
                      vars
                | Ast.Allgather arrays -> do_allgather m arrays
                | Ast.Barrier -> Sim.barrier c));
        h_pipe_recv =
          (fun m ~sid ~dim ~dir arrays ->
            charge ();
            traced m sid (fun () -> do_pipe ~recv:true m ~dim ~dir arrays));
        h_pipe_send =
          (fun m ~sid ~dim ~dir arrays ->
            charge ();
            traced m sid (fun () -> do_pipe ~recv:false m ~dim ~dir arrays));
        h_read =
          (fun m n ->
            charge ();
            let data =
              if r = 0 then Machine.sequential_hooks.Machine.h_read m n
              else Array.make n 0.0
            in
            Sim.bcast c ~root:0 data);
        h_write =
          (fun m values ->
            if r = 0 then Machine.sequential_hooks.Machine.h_write m values);
      }
    in
    let m = Machine.create ~hooks ~input:config.input u in
    machine_ref := Some m;
    machines.(r) <- Some m;
    Machine.run m;
    charge ();
    flops_per_rank.(r) <- Machine.flops (get_machine ())
  in
  let stats = Sim.run ~net:config.net ?tracer:config.tracer ~nranks body in
  let machine r = Option.get machines.(r) in
  let m0 = machine 0 in
  (* gather status arrays from their owners *)
  let gathered =
    List.map
      (fun name ->
        let a0 = Machine.array m0 name in
        match GI.find_status gi name with
        | None -> (name, Value.copy a0)
        | Some sa ->
            let out = Value.copy a0 in
            for r = 0 to nranks - 1 do
              let src = Machine.array (machine r) name in
              let block = Topology.block topo r in
              let ranges =
                Array.init (Value.rank src) (fun k ->
                    let alo, ahi = src.Value.bounds.(k) in
                    match sa.GI.sa_dims.(k) with
                    | None -> (alo, ahi)
                    | Some g ->
                        ( max alo block.Autocfd_partition.Block.lo.(g),
                          min ahi block.Autocfd_partition.Block.hi.(g) ))
              in
              iter_box ranges (fun idx ->
                  Value.set out idx (Value.get src idx))
            done;
            (name, out))
      (Machine.array_names m0)
  in
  let scalars =
    List.filter_map
      (fun u_decl ->
        if u_decl.Ast.d_dims = [] then
          match Machine.scalar m0 u_decl.Ast.d_name with
          | v -> Some (u_decl.Ast.d_name, v)
          | exception Machine.Runtime_error _ -> None
        else None)
      u.Ast.u_decls
  in
  {
    stats;
    output = Machine.output m0;
    gathered;
    scalars;
    flops_per_rank;
  }
