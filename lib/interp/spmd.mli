(** SPMD execution: runs the transformed parallel unit on every rank of the
    simulated cluster, implementing the inserted communication statements
    as halo exchanges, pipeline messages, reductions and broadcasts over
    {!Autocfd_mpsim.Sim}. *)

open Autocfd_fortran
open Autocfd_mpsim

type config = {
  gi : Autocfd_analysis.Grid_info.t;
  topo : Autocfd_partition.Topology.t;
  net : Netmodel.t;
  flop_time : float;
      (** seconds charged per floating-point operation (0 = correctness
          only) *)
  input : float list;  (** data served to READ statements (rank 0) *)
  tracer : Autocfd_obs.Trace.t option;
      (** when set, the run records a full execution trace: simulator
          events plus one phase span per combined synchronization point
          entry, tagged with the sync-point id (program order over the
          unit's communication statements), a human-readable label, the
          enclosing DO variable and its current iteration *)
}

type result = {
  stats : Sim.stats;
  output : string list;  (** rank 0's WRITE lines *)
  gathered : (string * Value.arr) list;
      (** status arrays assembled from their owners, plus replicated
          arrays taken from rank 0 *)
  scalars : (string * Value.scalar) list;  (** rank 0 final scalars *)
  flops_per_rank : float array;
}

type engine = Tree | Compiled | Fused
(** Which evaluator executes each rank's unit body: the tree-walking
    {!Machine}, the slot-resolved closure IR of {!Compile}, or the closure
    IR with the fused-kernel tier enabled ([Compile.of_unit ~fuse:true]):
    straight-line affine DO nests run as bounds-hoisted tight loops with
    batched flop charging.  Results of all three are bit-identical
    (enforced by the golden-equivalence suite); [Fused] is the default and
    the fastest. *)

val run : ?engine:engine -> config -> Ast.program_unit -> result
(** Executes the SPMD unit produced by [Transform.run] on
    [Topology.nranks config.topo] simulated ranks.  The unit is compiled
    (or analyzed) once and shared across ranks; halo-exchange, pipeline and
    allgather boxes are resolved once per (rank, sync point) into flat
    offset vectors — contiguous offset runs collapse to [Array.blit]
    segments over a reusable payload buffer — and reused by every
    subsequent visit.
    @raise Sim.Deadlock / [Machine.Runtime_error] on malformed programs. *)
