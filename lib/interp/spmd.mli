(** SPMD execution: runs the transformed parallel unit on every rank of the
    simulated cluster, implementing the inserted communication statements
    as halo exchanges, pipeline messages, reductions and broadcasts over
    {!Autocfd_mpsim.Sim}.

    With a fault plan installed the executor becomes fault-tolerant:
    point-to-point traffic travels over {!Reliable} (seq-numbered,
    checksummed, acknowledged, retransmitted), and with [recovery] set the
    run additionally takes coordinated checkpoints and restarts from the
    newest consistent one when a crashed rank surfaces as {!Sim.Timeout}. *)

open Autocfd_fortran
open Autocfd_mpsim

type recovery = {
  rc_every : int;
      (** take a coordinated checkpoint every [rc_every] sync-point visits
          (at a visit where no pipeline stream is mid-flight) *)
  rc_max_restarts : int;  (** give up and re-raise after this many *)
  rc_bandwidth : float;
      (** bytes/second of the stable store checkpoints are written to and
          restored from (node-local storage, not the interconnect) *)
}

val default_recovery : recovery
(** every 8 sync-point visits, at most 3 restarts, 400 MB/s store *)

type config = {
  gi : Autocfd_analysis.Grid_info.t;
  topo : Autocfd_partition.Topology.t;
  net : Netmodel.t;
  flop_time : float;
      (** seconds charged per floating-point operation (0 = correctness
          only) *)
  input : float list;  (** data served to READ statements (rank 0) *)
  tracer : Autocfd_obs.Trace.t option;
      (** when set, the run records a full execution trace: simulator
          events plus one phase span per combined synchronization point
          entry, tagged with the sync-point id (program order over the
          unit's communication statements), a human-readable label, the
          enclosing DO variable and its current iteration *)
  faults : Fault.plan option;
      (** deterministic fault schedule; when set, every point-to-point
          message travels over the {!Reliable} transport *)
  recovery : recovery option;
      (** checkpoint/restart; only meaningful together with [faults] *)
}

type resilience = {
  rs_restarts : int;  (** attempts abandoned to {!Sim.Timeout} *)
  rs_checkpoints : int;  (** coordinated snapshots taken (counted once) *)
  rs_restores : int;  (** restarts that resumed from a snapshot *)
  rs_retransmits : int;  (** envelopes retransmitted, summed over ranks *)
  rs_dup_suppressed : int;  (** duplicate envelopes discarded *)
  rs_checksum_failures : int;  (** corrupted envelopes discarded *)
}

val no_resilience : resilience
(** the all-zero record a fault-free run reports *)

type domain_stats = {
  ds_wall : float;  (** whole-run wall-clock seconds (spawn to join) *)
  ds_rank_wall : float array;  (** per-rank wall seconds inside the body *)
  ds_compute : float array;
      (** per-rank wall seconds spent outside communication hooks *)
  ds_barrier_wait : float array;
      (** per-rank wall seconds blocked in barriers/collectives *)
  ds_barrier_calls : int;  (** barrier entries per rank (identical) *)
  ds_flops : float array;  (** per-rank flop counts (same as simulator) *)
  ds_comm_samples : (int * float) list;
      (** (bytes moved, wall seconds) per halo-exchange / allgather
          episode on rank 0 — calibration input for
          {!Autocfd_perfmodel.Model.calibrate} *)
}
(** Measured wall-clock profile of a [Domains] run; the simulated-time
    fields of [stats] are synthesized from these measurements. *)

type result = {
  stats : Sim.stats;  (** of the final (successful) attempt *)
  output : string list;  (** rank 0's WRITE lines *)
  gathered : (string * Value.arr) list;
      (** status arrays assembled from their owners, plus replicated
          arrays taken from rank 0 *)
  scalars : (string * Value.scalar) list;  (** rank 0 final scalars *)
  flops_per_rank : float array;
  resilience : resilience;
  domains : domain_stats option;
      (** wall-clock measurements; [Some _] iff the engine was [Domains] *)
}

type engine = Tree | Compiled | Fused | Domains
(** Which evaluator executes each rank's unit body: the tree-walking
    {!Machine}, the slot-resolved closure IR of {!Compile}, or the closure
    IR with the fused-kernel tier enabled ([Compile.of_unit ~fuse:true]):
    straight-line affine DO nests run as bounds-hoisted tight loops with
    batched flop charging.  [Domains] runs the fused program for real: one
    OCaml 5 domain per rank, fields in shared memory, halo exchange as
    direct bounds-checked blits between neighbouring ranks' arrays, and
    sense-reversing barriers in place of the simulator's virtual-clock
    sync ({!Autocfd_mpsim.Shm}).  Results of all four are bit-identical
    (enforced by the golden-equivalence suite and the Domains identity
    gate); [Fused] is the default.  [Domains] rejects fault plans and
    recovery (simulator-only features). *)

val run : ?engine:engine -> config -> Ast.program_unit -> result
(** Executes the SPMD unit produced by [Transform.run] on
    [Topology.nranks config.topo] simulated ranks.  The unit is compiled
    (or analyzed) once and shared across ranks; halo-exchange, pipeline and
    allgather boxes are resolved once per (rank, sync point) into flat
    offset vectors — contiguous offset runs collapse to [Array.blit]
    segments over a reusable payload buffer — and reused by every
    subsequent visit.

    Recovery works by skip-replay: a restarted attempt re-executes the
    unit with communication suppressed, counting sync-point visits, and
    bulk-restores scalars and array data from the snapshot once the
    checkpointed visit is reached.  This requires the unit's control flow
    up to the restore point not to depend on communication results
    (unconditional sync points — true of the benchmark programs); a replay
    that never reaches the restore point fails loudly.  Under a fault
    schedule whose faults are all recoverable (no rank dead beyond
    [rc_max_restarts]), [gathered], [output] and [scalars] are
    bit-identical to the fault-free run.
    @raise Sim.Deadlock / [Machine.Runtime_error] on malformed programs.
    @raise Sim.Timeout when a crash or unrecoverable loss persists past
    [rc_max_restarts] (or immediately without [recovery]). *)
