type scalar = Int of int | Real of float | Bool of bool | Str of string

type arr = {
  bounds : (int * int) array;
  strides : int array;
  base : int;
  total : int;
  data : float array;
}

let make_array bounds =
  let n = Array.length bounds in
  let strides = Array.make n 1 in
  let size = ref 1 in
  for d = 0 to n - 1 do
    let lo, hi = bounds.(d) in
    if hi < lo then
      invalid_arg
        (Printf.sprintf "Value.make_array: empty dimension %d (%d:%d)" d lo hi);
    strides.(d) <- !size;
    size := !size * (hi - lo + 1)
  done;
  let base = ref 0 in
  for d = 0 to n - 1 do
    base := !base + (fst bounds.(d) * strides.(d))
  done;
  { bounds; strides; base = !base; total = !size; data = Array.make !size 0.0 }

let rank a = Array.length a.bounds
let size a = a.total

let linear_index a idx =
  if Array.length idx <> rank a then
    invalid_arg
      (Printf.sprintf "Value.linear_index: %d subscripts for rank %d"
         (Array.length idx) (rank a));
  (* fused offset: sum(i_d * stride_d) - precomputed base, one bounds
     check per dimension (messages must stay stable — tests rely on them) *)
  let li = ref 0 in
  for d = 0 to rank a - 1 do
    let lo, hi = a.bounds.(d) in
    let i = idx.(d) in
    if i < lo || i > hi then
      invalid_arg
        (Printf.sprintf
           "Value.linear_index: subscript %d out of bounds %d:%d in dim %d" i
           lo hi d);
    li := !li + (i * a.strides.(d))
  done;
  !li - a.base

let get a idx = a.data.(linear_index a idx)
let set a idx v = a.data.(linear_index a idx) <- v
let fill a v = Array.fill a.data 0 (Array.length a.data) v
let copy a = { a with data = Array.copy a.data }

let to_float = function
  | Int i -> float_of_int i
  | Real f -> f
  | Bool b -> if b then 1.0 else 0.0
  | Str _ -> invalid_arg "Value.to_float: string value"

let to_int = function
  | Int i -> i
  | Real f -> truncate f
  | Bool b -> if b then 1 else 0
  | Str _ -> invalid_arg "Value.to_int: string value"

let to_bool = function
  | Bool b -> b
  | Int i -> i <> 0
  | Real f -> f <> 0.0
  | Str _ -> invalid_arg "Value.to_bool: string value"

let pp_scalar ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Real f -> Format.fprintf ppf "%.6g" f
  | Bool b -> Format.pp_print_string ppf (if b then "T" else "F")
  | Str s -> Format.pp_print_string ppf s

let shape_string a =
  "("
  ^ String.concat ","
      (Array.to_list
         (Array.map (fun (lo, hi) -> Printf.sprintf "%d:%d" lo hi) a.bounds))
  ^ ")"

let same_shape a b =
  rank a = rank b
  && begin
       let ok = ref true in
       Array.iteri
         (fun d (lo, hi) ->
           let lo', hi' = b.bounds.(d) in
           if lo <> lo' || hi <> hi' then ok := false)
         a.bounds;
       !ok
     end

let max_abs_diff a b =
  if not (same_shape a b) then
    invalid_arg
      (Printf.sprintf "Value.max_abs_diff: shape mismatch: %s vs %s"
         (shape_string a) (shape_string b));
  let m = ref 0.0 in
  Array.iteri
    (fun i x -> m := Float.max !m (Float.abs (x -. b.data.(i))))
    a.data;
  !m
