open Autocfd_fortran

exception Stop_run
exception Runtime_error of string
exception Jump of int

let error fmt = Format.kasprintf (fun m -> raise (Runtime_error m)) fmt

type t = {
  unit_ : Ast.program_unit;
  scalars : (string, Value.scalar) Hashtbl.t;
  arrays : (string, Value.arr) Hashtbl.t;
  dtypes : (string, Ast.dtype) Hashtbl.t;  (* declared scalar types *)
  mutable input : float list;
  mutable out_rev : string list;
  mutable flops : float;
  mutable names_memo : string list option;
      (* sorted array names; declarations are fixed once the unit starts *)
  hooks : hooks;
}

and hooks = {
  h_block : (int -> int * int) option;
  h_comm : t -> sid:int -> Ast.comm -> unit;
  h_pipe_recv :
    t -> sid:int -> dim:int -> dir:Ast.direction -> (string * int) list -> unit;
  h_pipe_send :
    t -> sid:int -> dim:int -> dir:Ast.direction -> (string * int) list -> unit;
  h_read : t -> int -> float array;
  h_write : t -> Value.scalar list -> unit;
}

let default_read t n =
  let out = Array.make n 0.0 in
  for i = 0 to n - 1 do
    match t.input with
    | [] -> error "READ: input exhausted"
    | x :: rest ->
        out.(i) <- x;
        t.input <- rest
  done;
  out

let default_write t values =
  let line =
    String.concat " "
      (List.map (fun v -> Format.asprintf "%a" Value.pp_scalar v) values)
  in
  t.out_rev <- line :: t.out_rev

let sequential_hooks =
  {
    h_block = None;
    h_comm =
      (fun _ ~sid:_ _ ->
        error "communication statement on the sequential machine");
    h_pipe_recv =
      (fun _ ~sid:_ ~dim:_ ~dir:_ _ ->
        error "pipeline recv on the sequential machine");
    h_pipe_send =
      (fun _ ~sid:_ ~dim:_ ~dir:_ _ ->
        error "pipeline send on the sequential machine");
    h_read = default_read;
    h_write = default_write;
  }

let unit_of t = t.unit_
let flops t = t.flops
let reset_flops t = t.flops <- 0.0
let output t = List.rev t.out_rev

(* implicit typing: I-N integer, otherwise real *)
let implicit_type name =
  if name = "" then Ast.Real
  else match name.[0] with 'i' .. 'n' -> Ast.Integer | _ -> Ast.Real

let scalar_type t name =
  match Hashtbl.find_opt t.dtypes name with
  | Some ty -> ty
  | None -> implicit_type name

let scalar t name =
  match Hashtbl.find_opt t.scalars name with
  | Some v -> v
  | None -> error "variable '%s' used before being set" name

let set_scalar t name (v : Value.scalar) =
  let v =
    match scalar_type t name with
    | Ast.Integer -> Value.Int (Value.to_int v)
    | Ast.Real | Ast.Double -> Value.Real (Value.to_float v)
    | Ast.Logical -> Value.Bool (Value.to_bool v)
  in
  Hashtbl.replace t.scalars name v

let array t name =
  match Hashtbl.find_opt t.arrays name with
  | Some a -> a
  | None -> error "array '%s' is not declared" name

let has_array t name = Hashtbl.mem t.arrays name

let array_names t =
  match t.names_memo with
  | Some names -> names
  | None ->
      let names =
        Hashtbl.fold (fun k _ acc -> k :: acc) t.arrays []
        |> List.sort compare
      in
      t.names_memo <- Some names;
      names

let scalar_bindings t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.scalars []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let declared_type t name = scalar_type t name

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let charge t n = t.flops <- t.flops +. float_of_int n

(* iterations of DO var = lo, hi [, step]; the loop body runs exactly this
   many times and the variable's exit value is lo + trips*step *)
let trip_count ~lo ~hi ~step =
  if step = 0 then invalid_arg "Machine.trip_count: zero step"
  else if step > 0 then if lo > hi then 0 else ((hi - lo) / step) + 1
  else if lo < hi then 0
  else ((lo - hi) / -step) + 1

let rec eval t (e : Ast.expr) : Value.scalar =
  match e with
  | Ast.Const_int i -> Value.Int i
  | Ast.Const_real f -> Value.Real f
  | Ast.Const_bool b -> Value.Bool b
  | Ast.Const_str s -> Value.Str s
  | Ast.Var x -> scalar t x
  | Ast.Ref (name, args) ->
      if Hashtbl.mem t.arrays name then begin
        let idx = Array.of_list (List.map (eval_int t) args) in
        try Value.Real (Value.get (array t name) idx)
        with Invalid_argument m -> error "%s(%s): %s" name
               (String.concat "," (Array.to_list (Array.map string_of_int idx)))
               m
      end
      else eval_intrinsic t name args
  | Ast.Unop (Ast.Neg, a) -> (
      match eval t a with
      | Value.Int i -> Value.Int (-i)
      | v -> charge t 1; Value.Real (-.Value.to_float v))
  | Ast.Unop (Ast.Lnot, a) -> Value.Bool (not (Value.to_bool (eval t a)))
  | Ast.Binop (op, a, b) -> eval_binop t op a b
  | Ast.Local_lo (d, a) -> (
      let v = eval_int t a in
      match t.hooks.h_block with
      | None -> Value.Int v
      | Some f -> Value.Int (max v (fst (f d))))
  | Ast.Local_hi (d, a) -> (
      let v = eval_int t a in
      match t.hooks.h_block with
      | None -> Value.Int v
      | Some f -> Value.Int (min v (snd (f d))))

and eval_int t e = Value.to_int (eval t e)
and eval_float t e = Value.to_float (eval t e)

and eval_binop t op a b =
  let open Ast in
  match op with
  | And -> Value.Bool (Value.to_bool (eval t a) && Value.to_bool (eval t b))
  | Or -> Value.Bool (Value.to_bool (eval t a) || Value.to_bool (eval t b))
  | Lt | Le | Gt | Ge | Eq | Ne ->
      let va = eval t a and vb = eval t b in
      let x = Value.to_float va and y = Value.to_float vb in
      let r =
        match op with
        | Lt -> x < y
        | Le -> x <= y
        | Gt -> x > y
        | Ge -> x >= y
        | Eq -> x = y
        | Ne -> x <> y
        | _ -> assert false
      in
      Value.Bool r
  | Add | Sub | Mul | Div | Pow -> (
      let va = eval t a and vb = eval t b in
      match (va, vb) with
      | Value.Int x, Value.Int y -> (
          match op with
          | Add -> Value.Int (x + y)
          | Sub -> Value.Int (x - y)
          | Mul -> Value.Int (x * y)
          | Div ->
              if y = 0 then error "integer division by zero"
              else Value.Int (x / y)
          | Pow ->
              if y < 0 then
                Value.Real (Float.pow (float_of_int x) (float_of_int y))
              else
                let rec pow acc n = if n = 0 then acc else pow (acc * x) (n - 1) in
                Value.Int (pow 1 y)
          | _ -> assert false)
      | va, vb ->
          charge t 1;
          let x = Value.to_float va and y = Value.to_float vb in
          let r =
            match op with
            | Add -> x +. y
            | Sub -> x -. y
            | Mul -> x *. y
            | Div -> x /. y
            | Pow -> Float.pow x y
            | _ -> assert false
          in
          Value.Real r)

and eval_intrinsic t name args =
  let f1 g =
    match args with
    | [ a ] -> charge t 1; Value.Real (g (eval_float t a))
    | _ -> error "intrinsic %s expects 1 argument" name
  in
  let fold2 g =
    match args with
    | a :: rest when rest <> [] ->
        List.fold_left
          (fun acc e ->
            charge t 1;
            g acc (eval_float t e))
          (eval_float t a) rest
        |> fun x -> Value.Real x
    | _ -> error "intrinsic %s expects at least 2 arguments" name
  in
  match name with
  | "abs" -> (
      match args with
      | [ a ] -> (
          match eval t a with
          | Value.Int i -> Value.Int (abs i)
          | v -> charge t 1; Value.Real (Float.abs (Value.to_float v)))
      | _ -> error "abs expects 1 argument")
  | "sqrt" -> f1 Float.sqrt
  | "exp" -> f1 Float.exp
  | "log" -> f1 Float.log
  | "sin" -> f1 Float.sin
  | "cos" -> f1 Float.cos
  | "tan" -> f1 Float.tan
  | "atan" -> f1 Float.atan
  | "max" | "amax1" -> fold2 Float.max
  | "min" | "amin1" -> fold2 Float.min
  | "max0" -> (
      match args with
      | [ a; b ] -> Value.Int (max (eval_int t a) (eval_int t b))
      | _ -> error "max0 expects 2 arguments")
  | "min0" -> (
      match args with
      | [ a; b ] -> Value.Int (min (eval_int t a) (eval_int t b))
      | _ -> error "min0 expects 2 arguments")
  | "mod" -> (
      match args with
      | [ a; b ] -> (
          match (eval t a, eval t b) with
          | Value.Int x, Value.Int y ->
              if y = 0 then error "mod by zero" else Value.Int (x mod y)
          | va, vb ->
              charge t 1;
              Value.Real (Float.rem (Value.to_float va) (Value.to_float vb)))
      | _ -> error "mod expects 2 arguments")
  | "float" | "real" | "dble" -> (
      match args with
      | [ a ] -> Value.Real (eval_float t a)
      | _ -> error "%s expects 1 argument" name)
  | "int" -> (
      match args with
      | [ a ] -> Value.Int (eval_int t a)
      | _ -> error "int expects 1 argument")
  | "sign" -> (
      match args with
      | [ a; b ] ->
          charge t 1;
          let x = eval_float t a and y = eval_float t b in
          Value.Real (if y >= 0.0 then Float.abs x else -.Float.abs x)
      | _ -> error "sign expects 2 arguments")
  | _ ->
      error "'%s' is neither a declared array nor a supported intrinsic" name

(* ------------------------------------------------------------------ *)
(* Statement execution                                                 *)
(* ------------------------------------------------------------------ *)

let assign t lhs v =
  match lhs with
  | Ast.Var x -> set_scalar t x v
  | Ast.Ref (name, args) ->
      let idx = Array.of_list (List.map (eval_int t) args) in
      (try Value.set (array t name) idx (Value.to_float v)
       with Invalid_argument m -> error "%s: %s" name m)
  | _ -> error "invalid assignment target"

let rec exec_block t block =
  let arr = Array.of_list block in
  let n = Array.length arr in
  let rec go i =
    if i < n then
      match (try exec t arr.(i); None with Jump l -> Some l) with
      | None -> go (i + 1)
      | Some l -> (
          (* jump to a label within this block, else propagate *)
          match
            Array.to_seqi arr
            |> Seq.find (fun (_, st) -> st.Ast.s_label = Some l)
          with
          | Some (j, _) -> go j
          | None -> raise (Jump l))
  in
  go 0

and exec t st =
  match st.Ast.s_kind with
  | Ast.Assign (lhs, rhs) -> assign t lhs (eval t rhs)
  | Ast.Continue -> ()
  | Ast.Goto l -> raise (Jump l)
  | Ast.If (branches, els) -> (
      let rec pick = function
        | [] -> Option.iter (exec_block t) els
        | (c, b) :: rest ->
            if Value.to_bool (eval t c) then exec_block t b else pick rest
      in
      pick branches)
  | Ast.Do d ->
      let lo = eval_int t d.Ast.do_lo in
      let hi = eval_int t d.Ast.do_hi in
      let step =
        match d.Ast.do_step with Some e -> eval_int t e | None -> 1
      in
      if step = 0 then error "DO loop with zero step";
      let trips = trip_count ~lo ~hi ~step in
      for k = 0 to trips - 1 do
        set_scalar t d.Ast.do_var (Value.Int (lo + (k * step)));
        exec_block t d.Ast.do_body
      done;
      set_scalar t d.Ast.do_var (Value.Int (lo + (trips * step)))
  | Ast.Call (name, _) ->
      error "CALL %s: subroutine calls must be inlined before execution" name
  | Ast.Return | Ast.Stop -> raise Stop_run
  | Ast.Read items ->
      let values = t.hooks.h_read t (List.length items) in
      List.iteri (fun i it -> assign t it (Value.Real values.(i))) items
  | Ast.Write items -> t.hooks.h_write t (List.map (eval t) items)
  | Ast.Comm c -> t.hooks.h_comm t ~sid:st.Ast.s_id c
  | Ast.Pipeline_recv { dim; dir; arrays } ->
      t.hooks.h_pipe_recv t ~sid:st.Ast.s_id ~dim ~dir arrays
  | Ast.Pipeline_send { dim; dir; arrays } ->
      t.hooks.h_pipe_send t ~sid:st.Ast.s_id ~dim ~dir arrays

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create ?(hooks = sequential_hooks) ?(input = []) (u : Ast.program_unit) =
  let t =
    {
      unit_ = u;
      scalars = Hashtbl.create 64;
      arrays = Hashtbl.create 32;
      dtypes = Hashtbl.create 64;
      input;
      out_rev = [];
      flops = 0.0;
      names_memo = None;
      hooks;
    }
  in
  (* PARAMETER constants become pre-set scalars *)
  let cenv = Autocfd_analysis.Env.of_unit u in
  List.iter
    (fun (name, e) ->
      match Autocfd_analysis.Env.eval_int cenv e with
      | Some v ->
          Hashtbl.replace t.dtypes name (implicit_type name);
          Hashtbl.replace t.scalars name
            (match implicit_type name with
            | Ast.Integer -> Value.Int v
            | _ -> Value.Real (float_of_int v))
      | None -> (
          (* non-integer parameter (e.g. eps = 1.0e-6) *)
          match eval t e with
          | v -> Hashtbl.replace t.scalars name v
          | exception Runtime_error _ ->
              error "parameter '%s' is not a constant" name))
    u.Ast.u_consts;
  (* declarations *)
  List.iter
    (fun d ->
      Hashtbl.replace t.dtypes d.Ast.d_name d.Ast.d_type;
      if d.Ast.d_dims <> [] then begin
        let bounds =
          Array.of_list
            (List.map
               (fun (lo, hi) ->
                 let l =
                   try eval_int t lo
                   with Runtime_error _ ->
                     error "array '%s': non-constant lower bound" d.Ast.d_name
                 in
                 let h =
                   try eval_int t hi
                   with Runtime_error _ ->
                     error "array '%s': non-constant upper bound" d.Ast.d_name
                 in
                 (l, h))
               d.Ast.d_dims)
        in
        Hashtbl.replace t.arrays d.Ast.d_name (Value.make_array bounds)
      end)
    u.Ast.u_decls;
  (* DATA initialization *)
  List.iter
    (fun (name, values) ->
      match Hashtbl.find_opt t.arrays name with
      | Some a ->
          let vs = List.map (fun e -> Value.to_float (eval t e)) values in
          let n = Value.size a in
          if List.length vs = 1 then Value.fill a (List.hd vs)
          else if List.length vs = n then
            List.iteri (fun i v -> a.Value.data.(i) <- v) vs
          else
            error "DATA %s: %d values for %d elements" name (List.length vs) n
      | None -> (
          match values with
          | [ e ] -> set_scalar t name (eval t e)
          | _ -> error "DATA %s: scalar takes exactly one value" name))
    u.Ast.u_data;
  t

let run t =
  try exec_block t t.unit_.Ast.u_body with
  | Stop_run -> ()
  | Jump l -> error "jump to unknown label %d" l
