(** Runtime values of the Fortran-subset interpreter.

    Arrays are stored flat in Fortran column-major order with arbitrary
    per-dimension lower bounds. *)

type scalar = Int of int | Real of float | Bool of bool | Str of string

type arr = {
  bounds : (int * int) array;  (** inclusive (lower, upper) per dimension *)
  strides : int array;
  base : int;  (** [sum lo_d * stride_d]: subtracted by the fused offset *)
  total : int;  (** number of elements, [Array.length data] *)
  data : float array;
}

val make_array : (int * int) array -> arr
(** Zero-initialized, with strides, total size and the base offset
    precomputed once so element access never refolds [bounds].
    @raise Invalid_argument on an empty dimension. *)

val rank : arr -> int
val size : arr -> int
val linear_index : arr -> int array -> int
(** @raise Invalid_argument on an out-of-bounds subscript. *)

val get : arr -> int array -> float
val set : arr -> int array -> float -> unit
val fill : arr -> float -> unit
val copy : arr -> arr

val to_float : scalar -> float
(** @raise Invalid_argument on strings. *)

val to_int : scalar -> int
(** Truncation toward zero for reals ([truncate]), matching Fortran INT
    conversion; exact for every real whose truncation fits in [int]. *)

val to_bool : scalar -> bool
val pp_scalar : Format.formatter -> scalar -> unit

val same_shape : arr -> arr -> bool
(** Rank and every per-dimension bound pair agree. *)

val max_abs_diff : arr -> arr -> float
(** Largest pointwise difference.
    @raise Invalid_argument if shapes differ (ranks or any dimension's
    bounds); the message names both shapes. *)
